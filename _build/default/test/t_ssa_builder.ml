(* Tests for the Braun-style on-the-fly SSA builder. *)

open Skipflow_ir
module B = Ssa_builder

let test_straightline () =
  let b = B.create ~params:[ ("x", Ty.Int) ] in
  let e = B.entry_block b in
  let x = B.read_var b e "x" ~ty:Ty.Int in
  let c = B.const b e 1 in
  let s = B.arith b e Bl.Add x c in
  B.write_var b e "x" s;
  let x2 = B.read_var b e "x" ~ty:Ty.Int in
  Alcotest.(check bool) "read after write returns new var" true (Ids.Var.equal s x2);
  B.terminate b e (Bl.Return (Some x2));
  let body = B.finish b in
  Validate.run body;
  Alcotest.(check int) "no phis" 0
    (Array.fold_left (fun a blk -> a + List.length blk.Bl.b_phis) 0 body.Bl.blocks)

let diamond ~write_then ~write_else =
  (* if (x == x) { [y = 1] } else { [y = 2] }; return y  (y pre-set to 0) *)
  let b = B.create ~params:[ ("x", Ty.Int) ] in
  let e = B.entry_block b in
  let x = B.read_var b e "x" ~ty:Ty.Int in
  let z = B.const b e 0 in
  B.write_var b e "y" z;
  let l1 = B.label_block b and l2 = B.label_block b in
  let m = B.merge_block b in
  B.terminate b e (Bl.If { cond = Bl.Cmp (`Eq, x, x); then_ = l1.Bl.b_id; else_ = l2.Bl.b_id });
  if write_then then B.write_var b l1 "y" (B.const b l1 1);
  B.terminate b l1 (Bl.Jump m.Bl.b_id);
  if write_else then B.write_var b l2 "y" (B.const b l2 2);
  B.terminate b l2 (Bl.Jump m.Bl.b_id);
  B.seal b m;
  let y = B.read_var b m "y" ~ty:Ty.Int in
  B.terminate b m (Bl.Return (Some y));
  let body = B.finish b in
  Validate.run body;
  (body, m)

let phi_count body =
  Array.fold_left (fun a blk -> a + List.length blk.Bl.b_phis) 0 body.Bl.blocks

let test_diamond_phi () =
  let body, m = diamond ~write_then:true ~write_else:true in
  Alcotest.(check int) "one phi at the merge" 1 (List.length (Bl.block body m.Bl.b_id).Bl.b_phis);
  let phi = List.hd (Bl.block body m.Bl.b_id).Bl.b_phis in
  Alcotest.(check int) "two operands" 2 (List.length phi.Bl.phi_args)

let test_diamond_one_sided () =
  (* a write on one side only still needs a phi joining with the entry def *)
  let body, _ = diamond ~write_then:true ~write_else:false in
  Alcotest.(check int) "one phi" 1 (phi_count body)

let test_diamond_no_writes () =
  (* no conflicting definitions: no phi is needed *)
  let body, _ = diamond ~write_then:false ~write_else:false in
  Alcotest.(check int) "no phis" 0 (phi_count body)

let test_loop_incomplete_phi () =
  (* x = 0; while (x < 3) { x = x + 1 }; return x — reads the loop variable
     in the unsealed header, exercising incomplete phis *)
  let b = B.create ~params:[] in
  let e = B.entry_block b in
  B.write_var b e "x" (B.const b e 0);
  let header = B.merge_block b in
  B.terminate b e (Bl.Jump header.Bl.b_id);
  let x = B.read_var b header "x" ~ty:Ty.Int in
  let three = B.const b header 3 in
  let body_l = B.label_block b and exit_l = B.label_block b in
  B.terminate b header
    (Bl.If { cond = Bl.Cmp (`Lt, x, three); then_ = body_l.Bl.b_id; else_ = exit_l.Bl.b_id });
  let x1 = B.read_var b body_l "x" ~ty:Ty.Int in
  let one = B.const b body_l 1 in
  let x2 = B.arith b body_l Bl.Add x1 one in
  B.write_var b body_l "x" x2;
  B.terminate b body_l (Bl.Jump header.Bl.b_id);
  B.seal b header;
  let xr = B.read_var b exit_l "x" ~ty:Ty.Int in
  B.terminate b exit_l (Bl.Return (Some xr));
  let body = B.finish b in
  Validate.run body;
  let hphis = (Bl.block body header.Bl.b_id).Bl.b_phis in
  Alcotest.(check int) "loop phi at the header" 1 (List.length hphis);
  let phi = List.hd hphis in
  Alcotest.(check int) "phi has two operands (preheader + back edge)" 2
    (List.length phi.Bl.phi_args);
  (* the value read inside the loop is the header phi *)
  Alcotest.(check bool) "loop body reads the phi" true (Ids.Var.equal x1 phi.Bl.phi_var)

let test_read_undefined_fails () =
  let b = B.create ~params:[] in
  let e = B.entry_block b in
  Alcotest.(check bool) "undefined read raises" true
    (match B.read_var b e "nope" ~ty:Ty.Int with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_jump_to_label_rejected () =
  let b = B.create ~params:[] in
  let e = B.entry_block b in
  let l = B.label_block b in
  ignore l;
  Alcotest.(check bool) "jump must target a merge" true
    (match B.terminate b e (Bl.Jump l.Bl.b_id) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_finish_requires_termination () =
  let b = B.create ~params:[] in
  ignore (B.entry_block b);
  Alcotest.(check bool) "unterminated body rejected" true
    (match B.finish b with exception Invalid_argument _ -> true | _ -> false)

let test_var_tys_lowered () =
  let b = B.create ~params:[ ("f", Ty.Bool) ] in
  let e = B.entry_block b in
  B.terminate b e (Bl.Return None);
  let body = B.finish b in
  (* booleans are lowered to ints in the base language (Section 5) *)
  Alcotest.(check bool) "bool param lowered to int" true
    (Ty.equal (Bl.var_ty body (List.hd body.Bl.params)) Ty.Int)

let suite =
  ( "ssa_builder",
    [
      Alcotest.test_case "straight line" `Quick test_straightline;
      Alcotest.test_case "diamond creates phi" `Quick test_diamond_phi;
      Alcotest.test_case "one-sided write still phis" `Quick test_diamond_one_sided;
      Alcotest.test_case "no writes, no phi" `Quick test_diamond_no_writes;
      Alcotest.test_case "loop with incomplete phi" `Quick test_loop_incomplete_phi;
      Alcotest.test_case "undefined read fails" `Quick test_read_undefined_fails;
      Alcotest.test_case "jump-to-label rejected" `Quick test_jump_to_label_rejected;
      Alcotest.test_case "finish requires terminators" `Quick test_finish_requires_termination;
      Alcotest.test_case "boolean types lowered" `Quick test_var_tys_lowered;
    ] )
