(* Tests for the combined value-state lattice 𝕃 (Appendix B.2, Figure 11)
   and the Compare function (Appendix C) — including the paper's worked
   examples verbatim. *)

module V = Skipflow_core.Vstate
module TS = Skipflow_core.Typeset

let vs = Alcotest.testable V.pp V.equal
let tset l = V.types (TS.of_list l)

(* In these tests class ids are plain ints; 0 is null. *)

let test_join () =
  Alcotest.check vs "empty ∨ x" (V.const 5) (V.join V.empty (V.const 5));
  Alcotest.check vs "c ∨ c" (V.const 5) (V.join (V.const 5) (V.const 5));
  Alcotest.check vs "c ∨ c' = Any" V.any (V.join (V.const 5) (V.const 6));
  Alcotest.check vs "types union" (tset [ 1; 2; 3 ]) (V.join (tset [ 1; 2 ]) (tset [ 2; 3 ]));
  Alcotest.check vs "prim ∨ types = Any (⊤)" V.any (V.join (V.const 1) (tset [ 2 ]));
  Alcotest.check vs "any absorbs" V.any (V.join V.any (tset [ 2 ]))

let test_leq () =
  Alcotest.(check bool) "empty ≤ all" true (V.leq V.empty (V.const 1));
  Alcotest.(check bool) "ts ≤ bigger ts" true (V.leq (tset [ 1 ]) (tset [ 1; 2 ]));
  Alcotest.(check bool) "ts ≰ smaller" false (V.leq (tset [ 1; 2 ]) (tset [ 1 ]));
  Alcotest.(check bool) "ts ≤ Any" true (V.leq (tset [ 1; 2 ]) V.any);
  Alcotest.(check bool) "const ≤ Any" true (V.leq (V.const 9) V.any);
  Alcotest.(check bool) "const ≰ types" false (V.leq (V.const 9) (tset [ 1 ]))

(* ---- the Compare examples of Appendix C, verbatim ---- *)

let test_compare_paper_examples () =
  (* Compare('=', {Any}, {5}) = {5} *)
  Alcotest.check vs "eq any 5" (V.const 5) (V.compare_filter V.Eq V.any (V.const 5));
  (* Compare('=', {Any}, {Any}) = {Any} *)
  Alcotest.check vs "eq any any" V.any (V.compare_filter V.Eq V.any V.any);
  (* Compare('=', {A,B}, {B,C}) = {B} *)
  Alcotest.check vs "eq typesets" (tset [ 2 ])
    (V.compare_filter V.Eq (tset [ 1; 2 ]) (tset [ 2; 3 ]));
  (* Compare('=', {5}, {5}) = {5};  Compare('=', {5}, {3}) = {} *)
  Alcotest.check vs "eq 5 5" (V.const 5) (V.compare_filter V.Eq (V.const 5) (V.const 5));
  Alcotest.check vs "eq 5 3" V.empty (V.compare_filter V.Eq (V.const 5) (V.const 3));
  (* Compare('≠', {0}, {0}) = {};  Compare('≠', {5}, {3}) = {5} *)
  Alcotest.check vs "ne 0 0" V.empty (V.compare_filter V.Ne (V.const 0) (V.const 0));
  Alcotest.check vs "ne 5 3" (V.const 5) (V.compare_filter V.Ne (V.const 5) (V.const 3));
  (* Compare('<', {3}, {5}) = {3};  Compare('<', {3}, {1}) = {} *)
  Alcotest.check vs "lt 3 5" (V.const 3) (V.compare_filter V.Lt (V.const 3) (V.const 5));
  Alcotest.check vs "lt 3 1" V.empty (V.compare_filter V.Lt (V.const 3) (V.const 1))

let test_compare_empty_and_any () =
  Alcotest.check vs "empty left" V.empty (V.compare_filter V.Lt V.empty (V.const 1));
  Alcotest.check vs "empty right" V.empty (V.compare_filter V.Lt (V.const 1) V.empty);
  (* relational with Any anywhere: no filtering *)
  Alcotest.check vs "lt any r" (V.const 3) (V.compare_filter V.Lt (V.const 3) V.any);
  Alcotest.check vs "lt any l" V.any (V.compare_filter V.Lt V.any (V.const 3));
  Alcotest.check vs "ne any l" V.any (V.compare_filter V.Ne V.any (V.const 3));
  Alcotest.check vs "ne any r" (V.const 3) (V.compare_filter V.Ne (V.const 3) V.any)

let test_compare_null_checks () =
  let null = tset [ 0 ] in
  let maybe_null = tset [ 0; 4 ] in
  (* x == null keeps only null *)
  Alcotest.check vs "eq null" null (V.compare_filter V.Eq maybe_null null);
  (* x != null drops null *)
  Alcotest.check vs "ne null" (tset [ 4 ]) (V.compare_filter V.Ne maybe_null null);
  (* null != x where x may be null: null can still differ from an object;
     the paper's raw set difference would unsoundly return {} here (see the
     comment in Vstate.compare_filter) *)
  Alcotest.check vs "ne non-singleton rhs" null (V.compare_filter V.Ne null maybe_null);
  (* object != object on the type abstraction must not filter: two distinct
     objects of the same type are different references *)
  Alcotest.check vs "ne same typeset" (tset [ 4 ])
    (V.compare_filter V.Ne (tset [ 4 ]) (tset [ 4 ]))

let test_relational_ops () =
  let chk op l r expect =
    Alcotest.check vs
      (Format.asprintf "%a" V.pp_cmp_op op)
      expect
      (V.compare_filter op (V.const l) (V.const r))
  in
  chk V.Ge 5 5 (V.const 5);
  chk V.Ge 4 5 V.empty;
  chk V.Gt 6 5 (V.const 6);
  chk V.Gt 5 5 V.empty;
  chk V.Le 5 5 (V.const 5);
  chk V.Le 6 5 V.empty

let test_inv_flip () =
  Alcotest.(check bool) "inv eq" true (V.inv V.Eq = V.Ne);
  Alcotest.(check bool) "inv lt" true (V.inv V.Lt = V.Ge);
  Alcotest.(check bool) "inv involutive" true
    (List.for_all (fun o -> V.inv (V.inv o) = o) [ V.Eq; V.Ne; V.Lt; V.Ge; V.Gt; V.Le ]);
  Alcotest.(check bool) "flip lt = gt" true (V.flip V.Lt = V.Gt);
  Alcotest.(check bool) "flip ge = le" true (V.flip V.Ge = V.Le);
  Alcotest.(check bool) "flip involutive" true
    (List.for_all (fun o -> V.flip (V.flip o) = o) [ V.Eq; V.Ne; V.Lt; V.Ge; V.Gt; V.Le ])

let test_instanceof_filter () =
  let mask = TS.of_list [ 2; 3 ] in
  (* positive instanceof: null (bit 0) never passes *)
  Alcotest.check vs "positive" (tset [ 2 ])
    (V.filter_instanceof ~mask ~negated:false (tset [ 0; 1; 2 ]));
  (* negated: null passes, subtypes do not *)
  Alcotest.check vs "negated" (tset [ 0; 1 ])
    (V.filter_instanceof ~mask ~negated:true (tset [ 0; 1; 2 ]));
  Alcotest.check vs "prim passes through" (V.const 1)
    (V.filter_instanceof ~mask ~negated:false (V.const 1));
  Alcotest.check vs "empty stays empty" V.empty
    (V.filter_instanceof ~mask ~negated:false V.empty)

let test_declared_filter () =
  let mask_with_null = TS.of_list [ 0; 2; 3 ] in
  Alcotest.check vs "declared keeps null + subtypes" (tset [ 0; 2 ])
    (V.filter_declared ~mask_with_null (tset [ 0; 1; 2 ]));
  Alcotest.check vs "prim unchanged" V.any (V.filter_declared ~mask_with_null V.any)

(* ---------------------------- properties ------------------------------ *)

let gen_v =
  QCheck.Gen.(
    frequency
      [
        (1, return V.empty);
        (3, map V.const (int_range (-3) 3));
        (3, map (fun l -> V.types (TS.of_list l)) (list_size (int_bound 4) (int_bound 8)));
        (1, return V.any);
      ])

let arb_v = QCheck.make ~print:(Format.asprintf "%a" V.pp) gen_v

let arb_op =
  QCheck.make
    ~print:(Format.asprintf "%a" V.pp_cmp_op)
    QCheck.Gen.(oneofl [ V.Eq; V.Ne; V.Lt; V.Ge; V.Gt; V.Le ])

(* all states drawn from the same typed sublattice? (Empty and Any belong
   to both) *)
let same_kind vs =
  let prims = List.for_all (function V.Types _ -> false | _ -> true) vs in
  let objs = List.for_all (function V.Const _ -> false | _ -> true) vs in
  prims || objs

let prop name g f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:500 g f)

let props =
  [
    prop "join comm" (QCheck.pair arb_v arb_v) (fun (a, b) ->
        V.equal (V.join a b) (V.join b a));
    prop "join assoc" (QCheck.triple arb_v arb_v arb_v) (fun (a, b, c) ->
        V.equal (V.join a (V.join b c)) (V.join (V.join a b) c));
    prop "join idem" arb_v (fun a -> V.equal (V.join a a) a);
    prop "leq defines join" (QCheck.pair arb_v arb_v) (fun (a, b) ->
        V.leq a b = V.equal (V.join a b) b);
    prop "compare result ≤ lhs or rhs-bounded"
      (QCheck.triple arb_op arb_v arb_v)
      (fun (op, l, r) ->
        (* the filtered value never exceeds the unfiltered lhs *)
        V.leq (V.compare_filter op l r) l
        ||
        (* ...except Eq with Any on the left, which returns the rhs *)
        (op = V.Eq && V.equal l V.any));
    (* Monotonicity holds on the well-typed sublattices (all operands
       primitive, or all object type sets); the engine never compares a
       primitive with a type set in a type-checked program.  On ill-typed
       mixtures the paper's Compare (Eq-with-Any returning the lower value)
       is not monotone, so the generators here are kinded. *)
    prop "compare monotone in lhs (well-typed)"
      (QCheck.triple arb_op (QCheck.pair arb_v arb_v) arb_v)
      (fun (op, (l1, l2), r) ->
        QCheck.assume (same_kind [ l1; l2; r ]);
        let l2 = V.join l1 l2 in
        V.leq (V.compare_filter op l1 r) (V.compare_filter op l2 r));
    prop "compare monotone in rhs (well-typed)"
      (QCheck.triple arb_op (QCheck.pair arb_v arb_v) arb_v)
      (fun (op, (r1, r2), l) ->
        QCheck.assume (same_kind [ l; r1; r2 ]);
        let r2 = V.join r1 r2 in
        V.leq (V.compare_filter op l r1) (V.compare_filter op l r2));
    prop "instanceof filter monotone"
      (QCheck.triple (QCheck.pair arb_v arb_v) QCheck.bool
         (QCheck.make QCheck.Gen.(map TS.of_list (list_size (int_bound 4) (int_bound 8)))))
      (fun ((a, b), negated, mask) ->
        let b = V.join a b in
        V.leq (V.filter_instanceof ~mask ~negated a) (V.filter_instanceof ~mask ~negated b));
    prop "compare soundness on concrete ints"
      (QCheck.triple arb_op (QCheck.int_range (-3) 3) (QCheck.int_range (-3) 3))
      (fun (op, x, y) ->
        (* if concrete x op y holds, the abstraction of x survives
           filtering against the abstraction of y *)
        let holds =
          match op with
          | V.Eq -> x = y
          | V.Ne -> x <> y
          | V.Lt -> x < y
          | V.Ge -> x >= y
          | V.Gt -> x > y
          | V.Le -> x <= y
        in
        (not holds) || V.leq (V.const x) (V.compare_filter op (V.const x) (V.const y)));
    prop "compare soundness under Any rhs"
      (QCheck.pair arb_op (QCheck.int_range (-3) 3))
      (fun (op, x) -> V.leq (V.const x) (V.compare_filter op (V.const x) V.any));
  ]

let suite =
  ( "vstate",
    [
      Alcotest.test_case "join" `Quick test_join;
      Alcotest.test_case "leq" `Quick test_leq;
      Alcotest.test_case "Compare: paper examples" `Quick test_compare_paper_examples;
      Alcotest.test_case "Compare: empty and Any" `Quick test_compare_empty_and_any;
      Alcotest.test_case "Compare: null checks" `Quick test_compare_null_checks;
      Alcotest.test_case "Compare: relational" `Quick test_relational_ops;
      Alcotest.test_case "inv and flip" `Quick test_inv_flip;
      Alcotest.test_case "instanceof filter" `Quick test_instanceof_filter;
      Alcotest.test_case "declared-type filter" `Quick test_declared_filter;
    ]
    @ props )
