(* Lowering tests: the produced SSA must validate, satisfy the structural
   constraints of Appendix B.1, and encode the paper's condition
   normalizations. *)

open Skipflow_ir
module F = Skipflow_frontend
module W = Skipflow_workloads

let body_of src ~cls ~meth =
  let prog = F.Frontend.compile src in
  let c = Option.get (Program.find_class prog cls) in
  let m = Option.get (Program.find_meth prog c meth) in
  (prog, Option.get m.Program.m_body)

let wrap body = Printf.sprintf "class C { var int f; var C link; %s }" body

let all_insns body =
  Array.to_list body.Bl.blocks |> List.concat_map (fun b -> b.Bl.b_insns)

let all_conds body =
  Array.to_list body.Bl.blocks
  |> List.filter_map (fun b ->
         match b.Bl.b_term with Some (Bl.If { cond; _ }) -> Some cond | _ -> None)

let test_validates src cls meth =
  let _, body = body_of src ~cls ~meth in
  Validate.run body

let test_simple_bodies () =
  test_validates (wrap "int m(int a) { return a * 2 + this.f; }") "C" "m";
  test_validates (wrap "void m(C o) { o.link = this; this.f = o.f; }") "C" "m";
  test_validates
    (wrap "int m(int a) { int s = 0; while (a > 0) { s = s + a; a = a - 1; } return s; }")
    "C" "m"

let test_condition_normalization () =
  (* every surface comparison must lower to == or < only *)
  List.iter
    (fun op ->
      let src = wrap (Printf.sprintf "int m(int a, int b) { if (a %s b) { return 1; } return 0; }" op) in
      let _, body = body_of src ~cls:"C" ~meth:"m" in
      List.iter
        (fun c ->
          match c with
          | Bl.Cmp ((`Eq | `Lt), _, _) -> ()
          | Bl.InstanceOf _ -> Alcotest.fail "unexpected instanceof")
        (all_conds body))
    [ "=="; "!="; "<"; "<="; ">"; ">=" ]

let test_gt_swaps_operands () =
  (* a > b must become b < a (same operand set, swapped) *)
  let _, body =
    body_of (wrap "int m(int a, int b) { if (a > b) { return 1; } return 0; }") ~cls:"C"
      ~meth:"m"
  in
  match all_conds body with
  | [ Bl.Cmp (`Lt, l, r) ] ->
      (* params are v0=this, v1=a, v2=b: the lowered condition is b < a *)
      Alcotest.(check int) "lhs is b" 2 (Ids.Var.to_int l);
      Alcotest.(check int) "rhs is a" 1 (Ids.Var.to_int r)
  | _ -> Alcotest.fail "expected exactly one Lt condition"

let test_boolean_value_materialized () =
  (* 'return a < b' must materialize constants 1/0 through a phi
     (the isVirtual shape of Figure 7) *)
  let _, body =
    body_of (wrap "boolean m(int a, int b) { return a < b; }") ~cls:"C" ~meth:"m"
  in
  let consts =
    List.filter_map
      (function Bl.Assign (_, Bl.Const n) -> Some n | _ -> None)
      (all_insns body)
  in
  Alcotest.(check bool) "has const 1" true (List.mem 1 consts);
  Alcotest.(check bool) "has const 0" true (List.mem 0 consts);
  let phis = Array.fold_left (fun a b -> a + List.length b.Bl.b_phis) 0 body.Bl.blocks in
  Alcotest.(check bool) "has a phi" true (phis >= 1)

let test_bool_condition_becomes_cmp_zero () =
  (* if (flag) lowers to a comparison against the constant 0 *)
  let _, body =
    body_of (wrap "int m(boolean flag) { if (flag) { return 1; } return 0; }") ~cls:"C"
      ~meth:"m"
  in
  match all_conds body with
  | [ Bl.Cmp (`Eq, _, z) ] ->
      let def =
        List.find_map
          (function Bl.Assign (v, Bl.Const n) when Ids.Var.equal v z -> Some n | _ -> None)
          (all_insns body)
      in
      Alcotest.(check (option int)) "compared against 0" (Some 0) def
  | _ -> Alcotest.fail "expected a single == condition"

let test_shortcircuit_structure () =
  (* 'a && b' must not evaluate b when a is false: b's evaluation block is
     distinct from the condition entry *)
  let _, body =
    body_of
      (wrap
         "int m(C o, int a) { if (o != null && o.f > a) { return 1; } return 0; }")
      ~cls:"C" ~meth:"m"
  in
  Validate.run body;
  (* two conditions: the null test and the comparison *)
  Alcotest.(check int) "two conditions" 2 (List.length (all_conds body));
  (* the field load of o.f must be in a block dominated by the null check *)
  let load_block =
    Array.to_list body.Bl.blocks
    |> List.find (fun b ->
           List.exists (function Bl.Load _ -> true | _ -> false) b.Bl.b_insns)
  in
  Alcotest.(check bool) "load not in entry" false
    (Ids.Block.equal load_block.Bl.b_id body.Bl.entry)

let test_single_return () =
  (* multiple surface returns funnel through one return terminator *)
  let _, body =
    body_of (wrap "int m(int a) { if (a > 0) { return 1; } return 2; }") ~cls:"C" ~meth:"m"
  in
  let returns =
    Array.to_list body.Bl.blocks
    |> List.filter (fun b -> match b.Bl.b_term with Some (Bl.Return _) -> true | _ -> false)
  in
  Alcotest.(check int) "one return block" 1 (List.length returns)

let test_never_returning_method () =
  let _, body = body_of (wrap "int m() { while (true) { } }") ~cls:"C" ~meth:"m" in
  Validate.run body

let test_dead_tail_dropped () =
  (* statements after return are silently dropped *)
  let _, body =
    body_of (wrap "int m() { return 1; }") ~cls:"C" ~meth:"m"
  in
  Validate.run body

let test_arith_kept_concrete () =
  let _, body = body_of (wrap "int m(int a) { return a / 2 % 3; }") ~cls:"C" ~meth:"m" in
  let ops =
    List.filter_map
      (function Bl.Assign (_, Bl.Arith (op, _, _)) -> Some op | _ -> None)
      (all_insns body)
  in
  Alcotest.(check bool) "div present" true (List.mem Bl.Div ops);
  Alcotest.(check bool) "rem present" true (List.mem Bl.Rem ops)

let test_generated_programs_validate () =
  (* every method body of generated benchmark programs passes validation
     (lower_program already validates; this re-checks explicitly) *)
  List.iter
    (fun seed ->
      let prog, _ = W.Gen.compile { W.Gen.default_params with W.Gen.seed; live_units = 8 } in
      Program.iter_meths prog (fun m ->
          match m.Program.m_body with
          | Some b -> Validate.run b
          | None -> Alcotest.fail "method without body"))
    [ 21; 22 ];
  List.iter
    (fun seed ->
      let prog, _ = W.Gen_random.compile { W.Gen_random.default_cfg with W.Gen_random.seed } in
      Program.iter_meths prog (fun m ->
          match m.Program.m_body with Some b -> Validate.run b | None -> ()))
    [ 31; 32; 33; 34; 35 ]

let test_no_critical_edges_shape () =
  (* if-successors are label blocks with one predecessor; jumps target
     merges — on a program with loops, branches and short-circuits *)
  let _, body =
    body_of
      (wrap
         "int m(int a, C o) { int s = 0; while (a > 0 && o != null) { if (a % 2 == 0) { s = s + 1; } else { s = s - 1; } a = a - 1; } return s; }")
      ~cls:"C" ~meth:"m"
  in
  Array.iter
    (fun blk ->
      match blk.Bl.b_term with
      | Some (Bl.If { then_; else_; _ }) ->
          List.iter
            (fun t ->
              let tb = Bl.block body t in
              Alcotest.(check bool) "if target is label" true (tb.Bl.b_kind = Bl.Label);
              Alcotest.(check int) "single pred" 1 (List.length tb.Bl.b_preds))
            [ then_; else_ ]
      | Some (Bl.Jump t) ->
          Alcotest.(check bool) "jump target is merge" true
            ((Bl.block body t).Bl.b_kind = Bl.Merge)
      | _ -> ())
    body.Bl.blocks

let suite =
  ( "lower",
    [
      Alcotest.test_case "simple bodies validate" `Quick test_simple_bodies;
      Alcotest.test_case "condition normalization" `Quick test_condition_normalization;
      Alcotest.test_case "> swaps operands" `Quick test_gt_swaps_operands;
      Alcotest.test_case "boolean value materialized" `Quick test_boolean_value_materialized;
      Alcotest.test_case "bool condition == 0" `Quick test_bool_condition_becomes_cmp_zero;
      Alcotest.test_case "short-circuit structure" `Quick test_shortcircuit_structure;
      Alcotest.test_case "single return" `Quick test_single_return;
      Alcotest.test_case "never-returning method" `Quick test_never_returning_method;
      Alcotest.test_case "dead tail dropped" `Quick test_dead_tail_dropped;
      Alcotest.test_case "arithmetic kept concrete" `Quick test_arith_kept_concrete;
      Alcotest.test_case "generated programs validate" `Quick test_generated_programs_validate;
      Alcotest.test_case "no critical edges" `Quick test_no_critical_edges_shape;
    ] )
