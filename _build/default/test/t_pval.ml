(* Tests for the primitive-value lattice ℙ (paper, Figure 6). *)

module P = Skipflow_core.Pval

let pv = Alcotest.testable P.pp P.equal

let test_join_table () =
  Alcotest.check pv "bot ∨ c" (P.Const 3) (P.join P.Bot (P.Const 3));
  Alcotest.check pv "c ∨ bot" (P.Const 3) (P.join (P.Const 3) P.Bot);
  Alcotest.check pv "c ∨ c" (P.Const 3) (P.join (P.Const 3) (P.Const 3));
  (* the join of two different constants is immediately Any (Section 3) *)
  Alcotest.check pv "c ∨ c'" P.Top (P.join (P.Const 3) (P.Const 4));
  Alcotest.check pv "top absorbs" P.Top (P.join P.Top (P.Const 3));
  Alcotest.check pv "bot ∨ bot" P.Bot (P.join P.Bot P.Bot)

let test_leq () =
  Alcotest.(check bool) "bot ≤ c" true (P.leq P.Bot (P.Const 0));
  Alcotest.(check bool) "c ≤ top" true (P.leq (P.Const 0) P.Top);
  Alcotest.(check bool) "c ≤ c" true (P.leq (P.Const 0) (P.Const 0));
  Alcotest.(check bool) "c ≤ c' fails" false (P.leq (P.Const 0) (P.Const 1));
  Alcotest.(check bool) "top ≤ c fails" false (P.leq P.Top (P.Const 1))

let gen =
  QCheck.Gen.(
    frequency
      [ (1, return P.Bot); (4, map (fun n -> P.Const n) (int_range (-5) 5)); (1, return P.Top) ])

let arb = QCheck.make ~print:(Format.asprintf "%a" P.pp) gen
let prop name g f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:500 g f)

let props =
  [
    prop "join comm" (QCheck.pair arb arb) (fun (a, b) -> P.equal (P.join a b) (P.join b a));
    prop "join assoc" (QCheck.triple arb arb arb) (fun (a, b, c) ->
        P.equal (P.join a (P.join b c)) (P.join (P.join a b) c));
    prop "join idem" arb (fun a -> P.equal (P.join a a) a);
    prop "leq defines join" (QCheck.pair arb arb) (fun (a, b) ->
        P.leq a b = P.equal (P.join a b) b);
    prop "bot is bottom" arb (fun a -> P.leq P.Bot a);
    prop "top is top" arb (fun a -> P.leq a P.Top);
    prop "lattice height ≤ 3"
      (QCheck.triple arb arb arb)
      (fun (a, b, c) ->
        (* any strictly increasing chain has length at most 3 *)
        not (P.leq a b && P.leq b c && (not (P.equal a b)) && not (P.equal b c))
        || (P.equal a P.Bot && P.equal c P.Top));
  ]

let suite =
  ( "pval",
    [
      Alcotest.test_case "join table" `Quick test_join_table;
      Alcotest.test_case "leq" `Quick test_leq;
    ]
    @ props )
