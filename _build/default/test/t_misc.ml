(* Miscellaneous coverage: typed ids, DOT export, IR pretty-printing,
   engine statistics, and the reverse-postorder traversal. *)

open Skipflow_ir
module C = Skipflow_core
module F = Skipflow_frontend

(* ------------------------------- ids ----------------------------------- *)

let test_id_gen () =
  let g = Ids.Class.Gen.create () in
  let a = Ids.Class.Gen.fresh g and b = Ids.Class.Gen.fresh g in
  Alcotest.(check int) "dense from 0" 0 (Ids.Class.to_int a);
  Alcotest.(check int) "incrementing" 1 (Ids.Class.to_int b);
  Alcotest.(check int) "count" 2 (Ids.Class.Gen.count g);
  Alcotest.(check bool) "equal" true (Ids.Class.equal a (Ids.Class.of_int 0));
  Alcotest.(check bool) "distinct" false (Ids.Class.equal a b);
  Alcotest.(check string) "pp prefix" "C1" (Format.asprintf "%a" Ids.Class.pp b)

let test_id_collections () =
  let s =
    Ids.Meth.Set.of_list [ Ids.Meth.of_int 3; Ids.Meth.of_int 1; Ids.Meth.of_int 3 ]
  in
  Alcotest.(check int) "set dedups" 2 (Ids.Meth.Set.cardinal s);
  let tbl = Ids.Var.Tbl.create 4 in
  Ids.Var.Tbl.replace tbl (Ids.Var.of_int 7) "x";
  Alcotest.(check (option string)) "tbl" (Some "x")
    (Ids.Var.Tbl.find_opt tbl (Ids.Var.of_int 7))

(* ------------------------------- dot ----------------------------------- *)

let fixture () =
  let prog =
    F.Frontend.compile
      {|
class A { boolean flag() { return this instanceof B; } }
class B extends A { }
class Main {
  static void main() {
    A a = new A();
    if (a.flag()) { int dead = 1; }
  }
}
|}
  in
  let main = Option.get (F.Frontend.main_of prog) in
  let r = C.Analysis.run prog ~roots:[ main ] in
  (prog, r)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_dot_output () =
  let prog, r = fixture () in
  let dot = C.Dot.to_string prog (C.Engine.graphs r.C.Analysis.engine) in
  Alcotest.(check bool) "digraph" true (contains dot "digraph pvpg");
  Alcotest.(check bool) "has invoke node" true (contains dot "invoke A.flag");
  Alcotest.(check bool) "has instanceof filter" true (contains dot "instanceof B");
  Alcotest.(check bool) "predicate edges dashed" true (contains dot "style=dashed");
  Alcotest.(check bool) "observe edges dotted" true (contains dot "style=dotted");
  Alcotest.(check bool) "enabled flows red" true (contains dot "color=red");
  Alcotest.(check bool) "disabled flows grey" true (contains dot "color=grey");
  (* structurally parseable: balanced braces *)
  let opens = String.fold_left (fun a c -> if c = '{' then a + 1 else a) 0 dot in
  let closes = String.fold_left (fun a c -> if c = '}' then a + 1 else a) 0 dot in
  Alcotest.(check int) "balanced braces" opens closes

let test_dot_file () =
  let prog, r = fixture () in
  let path = Filename.temp_file "skipflow" ".dot" in
  C.Dot.write_file prog ~path (C.Engine.graphs r.C.Analysis.engine);
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "non-empty file" true (len > 100)

(* ------------------------------ ir pp ---------------------------------- *)

let test_ir_pp () =
  let prog, _ = fixture () in
  let s = Format.asprintf "%a" Ir_pp.pp_program prog in
  Alcotest.(check bool) "mentions classes" true (contains s "class A");
  Alcotest.(check bool) "shows instanceof" true (contains s "instanceof B");
  Alcotest.(check bool) "shows phis" true (contains s "phi(");
  Alcotest.(check bool) "shows start" true (contains s "start(")

(* ------------------------------ stats ---------------------------------- *)

let test_engine_stats () =
  let _, r = fixture () in
  let st = C.Engine.stats r.C.Analysis.engine in
  Alcotest.(check bool) "tasks processed" true (st.C.Engine.tasks_processed > 10);
  Alcotest.(check bool) "links made" true (st.C.Engine.links >= 1)

(* ------------------------------- rpo ----------------------------------- *)

let test_rpo () =
  let prog, _ = fixture () in
  Program.iter_meths prog (fun m ->
      match m.Program.m_body with
      | None -> ()
      | Some body ->
          let rpo = Bl.reverse_postorder body in
          (* entry first *)
          (match rpo with
          | first :: _ ->
              Alcotest.(check bool) "entry first" true
                (Ids.Block.equal first.Bl.b_id body.Bl.entry)
          | [] -> Alcotest.fail "empty rpo");
          (* every block appears at most once *)
          let ids = List.map (fun b -> Ids.Block.to_int b.Bl.b_id) rpo in
          Alcotest.(check int) "no duplicates" (List.length ids)
            (List.length (List.sort_uniq compare ids));
          (* forward edges respect the order except back edges to merges *)
          List.iteri
            (fun i blk ->
              List.iter
                (fun s ->
                  let j =
                    Option.get
                      (List.find_index
                         (fun b -> Ids.Block.equal b.Bl.b_id s)
                         rpo)
                  in
                  if j <= i then
                    (* must be a back edge: the target is a merge *)
                    Alcotest.(check bool) "back edges only into merges" true
                      ((Bl.block body s).Bl.b_kind = Bl.Merge))
                (Bl.successors blk))
            rpo)

let suite =
  ( "misc",
    [
      Alcotest.test_case "id generators" `Quick test_id_gen;
      Alcotest.test_case "id collections" `Quick test_id_collections;
      Alcotest.test_case "dot output" `Quick test_dot_output;
      Alcotest.test_case "dot file" `Quick test_dot_file;
      Alcotest.test_case "ir pretty-printer" `Quick test_ir_pp;
      Alcotest.test_case "engine stats" `Quick test_engine_stats;
      Alcotest.test_case "reverse postorder" `Quick test_rpo;
    ] )
