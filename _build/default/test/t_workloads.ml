(* Workload generator tests: determinism, PRNG behaviour, catalog
   integrity, and that generated benchmarks have the intended reachability
   structure (live units reachable under both analyses, dead-guarded units
   only under PTA, unused units under neither). *)

open Skipflow_ir
module C = Skipflow_core
module W = Skipflow_workloads

(* ------------------------------- rng ---------------------------------- *)

let test_rng_deterministic () =
  let a = W.Rng.create 42 and b = W.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (W.Rng.int a 1000) (W.Rng.int b 1000)
  done

let test_rng_split_independent () =
  let a = W.Rng.create 42 in
  let child = W.Rng.split a in
  let v1 = W.Rng.int child 1000000 in
  (* drawing more from the parent must not change what an identically
     derived child produces *)
  let b = W.Rng.create 42 in
  let child2 = W.Rng.split b in
  ignore (W.Rng.int b 7);
  Alcotest.(check int) "child stream stable" v1 (W.Rng.int child2 1000000)

let test_rng_bounds () =
  let r = W.Rng.create 1 in
  for _ = 1 to 1000 do
    let v = W.Rng.range r 3 9 in
    Alcotest.(check bool) "in range" true (v >= 3 && v <= 9)
  done;
  for _ = 1 to 100 do
    let v = W.Rng.pick r [ "a"; "b" ] in
    Alcotest.(check bool) "picked member" true (v = "a" || v = "b")
  done

let test_rng_weighted () =
  let r = W.Rng.create 5 in
  for _ = 1 to 200 do
    (* weight 0 choices are never taken *)
    let v = W.Rng.weighted r [ (0, `Never); (5, `Often) ] in
    Alcotest.(check bool) "never means never" true (v = `Often)
  done

(* ----------------------------- generator ------------------------------ *)

let test_gen_deterministic () =
  let p = { W.Gen.default_params with W.Gen.seed = 17 } in
  Alcotest.(check string) "same source for same seed" (W.Gen.source p) (W.Gen.source p);
  let p2 = { p with W.Gen.seed = 18 } in
  Alcotest.(check bool) "different seed, different source" false
    (String.equal (W.Gen.source p) (W.Gen.source p2))

let test_gen_structure () =
  let p =
    { W.Gen.default_params with W.Gen.live_units = 10; dead_units = 4; unused_units = 3 }
  in
  let prog, main = W.Gen.compile p in
  let sf = C.Analysis.run ~config:C.Config.skipflow prog ~roots:[ main ] in
  let pta = C.Analysis.run ~config:C.Config.pta prog ~roots:[ main ] in
  let reachable r u =
    let cls = Option.get (Program.find_class prog (Printf.sprintf "Unit%d" u)) in
    let m = Option.get (Program.find_meth prog cls "entry") in
    C.Engine.is_reachable r.C.Analysis.engine m.Program.m_id
  in
  (* live units: reachable under both *)
  for u = 0 to 9 do
    Alcotest.(check bool) (Printf.sprintf "unit %d live under PTA" u) true (reachable pta u);
    Alcotest.(check bool)
      (Printf.sprintf "unit %d live under SkipFlow" u)
      true (reachable sf u)
  done;
  (* dead-guarded units: PTA yes, SkipFlow no *)
  for u = 10 to 13 do
    Alcotest.(check bool) (Printf.sprintf "unit %d guarded: PTA reaches" u) true (reachable pta u);
    Alcotest.(check bool)
      (Printf.sprintf "unit %d guarded: SkipFlow prunes" u)
      false (reachable sf u)
  done;
  (* unused units: neither *)
  for u = 14 to 16 do
    Alcotest.(check bool) (Printf.sprintf "unit %d unused: PTA" u) false (reachable pta u);
    Alcotest.(check bool) (Printf.sprintf "unit %d unused: SkipFlow" u) false (reachable sf u)
  done

let test_gen_reduction_tracks_dead_fraction () =
  let p =
    { W.Gen.default_params with W.Gen.live_units = 45; dead_units = 5; unused_units = 4 }
  in
  let prog, main = W.Gen.compile p in
  let m cfg = (C.Analysis.run ~config:cfg prog ~roots:[ main ]).C.Analysis.metrics in
  let pta = (m C.Config.pta).C.Metrics.reachable_methods in
  let sf = (m C.Config.skipflow).C.Metrics.reachable_methods in
  let red = 100. *. float_of_int (pta - sf) /. float_of_int pta in
  (* 5/50 guarded units: the reduction should land near 10% *)
  Alcotest.(check bool)
    (Printf.sprintf "reduction %.1f%% in [6, 14]" red)
    true
    (red >= 6. && red <= 14.)

let test_gen_rejects_bad_params () =
  let bad f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "unit_size < 2" true
    (bad (fun () -> W.Gen.generate { W.Gen.default_params with W.Gen.unit_size = 1 }));
  Alcotest.(check bool) "poly_width < 2" true
    (bad (fun () -> W.Gen.generate { W.Gen.default_params with W.Gen.poly_width = 1 }))

(* ------------------------------ catalog ------------------------------- *)

let test_catalog () =
  Alcotest.(check int) "35 benchmarks" 35 (List.length W.Suites.all);
  Alcotest.(check int) "8 dacapo" 8 (List.length W.Suites.dacapo);
  Alcotest.(check int) "9 microservices" 9 (List.length W.Suites.microservices);
  Alcotest.(check int) "18 renaissance" 18 (List.length W.Suites.renaissance);
  (* names unique *)
  let names = List.map (fun b -> b.W.Suites.name) W.Suites.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  (* sunflow is the paper's outlier *)
  let sunflow = Option.get (W.Suites.find "sunflow") in
  Alcotest.(check bool) "sunflow > 50%" true (sunflow.W.Suites.paper_reduction_pct > 50.);
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (b.W.Suites.name ^ " reduction sane")
        true
        (b.W.Suites.paper_reduction_pct > 0. && b.W.Suites.paper_reduction_pct < 60.))
    W.Suites.all

let test_params_scaling () =
  let b = Option.get (W.Suites.find "fop") in
  let p1 = W.Suites.params_of ~scale:0.01 b in
  let p2 = W.Suites.params_of ~scale:0.02 b in
  Alcotest.(check bool) "scale grows units" true (p2.W.Gen.live_units > p1.W.Gen.live_units);
  (* dead fraction approximates the paper's reduction *)
  let frac =
    float_of_int p2.W.Gen.dead_units
    /. float_of_int (p2.W.Gen.dead_units + p2.W.Gen.live_units)
  in
  Alcotest.(check bool) "dead fraction ~ paper reduction" true
    (Float.abs ((100. *. frac) -. b.W.Suites.paper_reduction_pct) < 2.5)

(* --------------------------- random generator ------------------------- *)

let test_gen_random_compiles_and_runs () =
  List.iter
    (fun seed ->
      let cfg = { W.Gen_random.default_cfg with W.Gen_random.seed; classes = 6 } in
      let prog, main = W.Gen_random.compile cfg in
      let trace, _halt = Skipflow_interp.Interp.run ~fuel:30_000 prog main in
      Alcotest.(check bool) "main executed" true
        (Ids.Meth.Set.mem main.Program.m_id trace.Skipflow_interp.Interp.called))
    [ 101; 102; 103; 104; 105; 106; 107; 108 ]

let test_gen_random_deterministic () =
  let cfg = { W.Gen_random.default_cfg with W.Gen_random.seed = 55 } in
  let s1 = Skipflow_frontend.Ast_pp.to_string (W.Gen_random.generate cfg) in
  let s2 = Skipflow_frontend.Ast_pp.to_string (W.Gen_random.generate cfg) in
  Alcotest.(check string) "deterministic" s1 s2

let suite =
  ( "workloads",
    [
      Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
      Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
      Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
      Alcotest.test_case "rng weighted" `Quick test_rng_weighted;
      Alcotest.test_case "generator deterministic" `Quick test_gen_deterministic;
      Alcotest.test_case "generated structure (live/dead/unused)" `Quick test_gen_structure;
      Alcotest.test_case "reduction tracks dead fraction" `Quick
        test_gen_reduction_tracks_dead_fraction;
      Alcotest.test_case "bad params rejected" `Quick test_gen_rejects_bad_params;
      Alcotest.test_case "benchmark catalog" `Quick test_catalog;
      Alcotest.test_case "catalog params scaling" `Quick test_params_scaling;
      Alcotest.test_case "random programs compile and run" `Quick
        test_gen_random_compiles_and_runs;
      Alcotest.test_case "random generator deterministic" `Quick test_gen_random_deterministic;
    ] )
