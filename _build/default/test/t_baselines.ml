(* CHA / RTA baseline tests: hand-computed call graphs and the precision
   relationships the paper discusses in Section 6. *)

open Skipflow_ir
module F = Skipflow_frontend
module B = Skipflow_baselines

let setup src =
  let prog = F.Frontend.compile src in
  let main = Option.get (F.Frontend.main_of prog) in
  (prog, main)

let names prog set =
  Ids.Meth.Set.elements set |> List.map (Program.qualified_name prog)

let src_dispatch =
  {|
class A { void m() { } }
class B extends A { void m() { } }
class C extends A { void m() { } }
class Main {
  static void main() {
    A a = new B();
    a.m();
  }
}
|}

let test_cha_all_subtypes () =
  let prog, main = setup src_dispatch in
  let r = B.Cha.run prog ~roots:[ main ] in
  (* CHA dispatches to every concrete subtype implementation *)
  Alcotest.(check (slist string compare)) "cha reachable"
    [ "A.m"; "B.m"; "C.m"; "Main.main" ]
    (names prog r.B.Cha.reachable)

let test_rta_instantiated_only () =
  let prog, main = setup src_dispatch in
  let r = B.Rta.run prog ~roots:[ main ] in
  (* RTA only dispatches to implementations of instantiated classes *)
  Alcotest.(check (slist string compare)) "rta reachable" [ "B.m"; "Main.main" ]
    (names prog r.B.Rta.reachable);
  Alcotest.(check int) "one instantiated class" 1
    (Ids.Class.Set.cardinal r.B.Rta.instantiated)

let test_rta_late_instantiation () =
  (* a class instantiated in a method reached later must retroactively
     widen earlier call sites *)
  let prog, main = setup
    {|
class A { void m() { } }
class B extends A { void m() { Main.makeC(); } }
class C extends A { void m() { } }
class Main {
  static void makeC() { A c = new C(); }
  static void main() {
    A a = new B();
    a.m();
    a.m();
  }
}
|}
  in
  let r = B.Rta.run prog ~roots:[ main ] in
  Alcotest.(check bool) "C.m reachable after late instantiation" true
    (List.mem "C.m" (names prog r.B.Rta.reachable))

let test_static_calls () =
  let prog, main = setup
    {|
class Util { static void helper() { Util.helper2(); } static void helper2() { } }
class Main { static void main() { Util.helper(); } }
|}
  in
  let cha = B.Cha.run prog ~roots:[ main ] in
  let rta = B.Rta.run prog ~roots:[ main ] in
  Alcotest.(check int) "cha: 3 methods" 3 (Ids.Meth.Set.cardinal cha.B.Cha.reachable);
  Alcotest.(check int) "rta: 3 methods" 3 (Ids.Meth.Set.cardinal rta.B.Rta.reachable)

let test_unreached_code_excluded () =
  let prog, main = setup
    {|
class Dead { void never() { } }
class Main { static void main() { } }
|}
  in
  let cha = B.Cha.run prog ~roots:[ main ] in
  Alcotest.(check (slist string compare)) "only main" [ "Main.main" ]
    (names prog cha.B.Cha.reachable)

let test_abstract_not_dispatched () =
  let prog, main = setup
    {|
abstract class A { void m() { } }
class B extends A { void m() { } }
class Main { static void main() { A a = new B(); a.m(); } }
|}
  in
  let cha = B.Cha.run prog ~roots:[ main ] in
  (* A is abstract: CHA must not consider a receiver of dynamic type A,
     so A.m is not a dispatch target *)
  Alcotest.(check bool) "A.m not reachable" false
    (List.mem "A.m" (names prog cha.B.Cha.reachable))

(* the full precision spectrum on a program where every level differs *)
let test_spectrum_strict () =
  let prog, main = setup
    {|
class H { void handle() { } }
class H1 extends H { void handle() { } }
class H2 extends H { void handle() { } }
class H3 extends H { void handle() { } }
class Flags { static boolean extra() { return false; } }
class Main {
  static void main() {
    H h = new H1();
    if (Flags.extra()) { h = new H2(); }
    h.handle();
  }
}
|}
  in
  let module C = Skipflow_core in
  let cha = Ids.Meth.Set.cardinal (B.Cha.run prog ~roots:[ main ]).B.Cha.reachable in
  let rta = Ids.Meth.Set.cardinal (B.Rta.run prog ~roots:[ main ]).B.Rta.reachable in
  let pta =
    (C.Analysis.run ~config:C.Config.pta prog ~roots:[ main ]).C.Analysis.metrics
      .C.Metrics.reachable_methods
  in
  let sf =
    (C.Analysis.run ~config:C.Config.skipflow prog ~roots:[ main ]).C.Analysis.metrics
      .C.Metrics.reachable_methods
  in
  (* CHA sees H,H1,H2,H3 handle; RTA sees H1,H2; PTA sees H1,H2;
     SkipFlow proves the flag false: H1 only *)
  Alcotest.(check bool) "CHA > RTA" true (cha > rta);
  Alcotest.(check bool) "RTA >= PTA" true (rta >= pta);
  Alcotest.(check bool) "PTA > SkipFlow" true (pta > sf)

let suite =
  ( "baselines",
    [
      Alcotest.test_case "CHA dispatches to all subtypes" `Quick test_cha_all_subtypes;
      Alcotest.test_case "RTA needs instantiation" `Quick test_rta_instantiated_only;
      Alcotest.test_case "RTA late instantiation" `Quick test_rta_late_instantiation;
      Alcotest.test_case "static calls" `Quick test_static_calls;
      Alcotest.test_case "unreached code excluded" `Quick test_unreached_code_excluded;
      Alcotest.test_case "abstract receivers not dispatched" `Quick test_abstract_not_dispatched;
      Alcotest.test_case "precision spectrum strict" `Quick test_spectrum_strict;
    ] )
