test/t_ssa_builder.ml: Alcotest Array Bl Ids List Skipflow_ir Ssa_builder Ty Validate
