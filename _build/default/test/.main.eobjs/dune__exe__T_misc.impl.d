test/t_misc.ml: Alcotest Bl Filename Format Ids Ir_pp List Option Program Skipflow_core Skipflow_frontend Skipflow_ir String Sys
