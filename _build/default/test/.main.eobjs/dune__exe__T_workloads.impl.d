test/t_workloads.ml: Alcotest Float Ids List Option Printf Program Skipflow_core Skipflow_frontend Skipflow_interp Skipflow_ir Skipflow_workloads String
