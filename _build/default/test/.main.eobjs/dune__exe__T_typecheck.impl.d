test/t_typecheck.ml: Alcotest Printf Skipflow_frontend String
