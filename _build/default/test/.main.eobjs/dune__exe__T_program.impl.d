test/t_program.ml: Alcotest Ids List Option Program Skipflow_ir Ty
