test/t_metrics.ml: Alcotest Option Skipflow_core Skipflow_frontend
