test/t_build.ml: Alcotest Array Hashtbl List Option Program Skipflow_core Skipflow_frontend Skipflow_ir
