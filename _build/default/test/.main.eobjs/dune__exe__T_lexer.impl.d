test/t_lexer.ml: Alcotest Format List Skipflow_frontend
