test/t_validate.ml: Alcotest Array Bl Dominance Ids List Skipflow_ir Ssa_builder String Ty Validate
