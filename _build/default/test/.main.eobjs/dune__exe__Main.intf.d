test/main.mli:
