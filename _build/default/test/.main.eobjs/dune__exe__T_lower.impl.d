test/t_lower.ml: Alcotest Array Bl Ids List Option Printf Program Skipflow_frontend Skipflow_ir Skipflow_workloads Validate
