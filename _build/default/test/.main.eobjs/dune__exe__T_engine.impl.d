test/t_engine.ml: Alcotest List Option Program Skipflow_core Skipflow_frontend Skipflow_ir String
