test/t_properties.ml: Array Format Ids List Program QCheck QCheck_alcotest Skipflow_baselines Skipflow_core Skipflow_interp Skipflow_ir Skipflow_workloads
