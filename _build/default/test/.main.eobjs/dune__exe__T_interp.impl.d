test/t_interp.ml: Alcotest Format Ids List Option Program Skipflow_frontend Skipflow_interp Skipflow_ir String
