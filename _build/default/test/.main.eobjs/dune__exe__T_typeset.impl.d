test/t_typeset.ml: Alcotest Format List QCheck QCheck_alcotest Skipflow_core
