test/t_baselines.ml: Alcotest Ids List Option Program Skipflow_baselines Skipflow_core Skipflow_frontend Skipflow_ir
