test/t_verify.ml: Alcotest Format List Option QCheck QCheck_alcotest Skipflow_core Skipflow_frontend Skipflow_workloads String
