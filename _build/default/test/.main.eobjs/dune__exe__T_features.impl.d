test/t_features.ml: Alcotest List Option Program Skipflow_core Skipflow_frontend Skipflow_interp Skipflow_ir String
