test/t_vstate.ml: Alcotest Format List QCheck QCheck_alcotest Skipflow_core
