test/t_smoke.ml: Alcotest Bl List Program Skipflow_core Skipflow_ir Ssa_builder Ty Validate
