test/t_pval.ml: Alcotest Format QCheck QCheck_alcotest Skipflow_core
