test/t_parser.ml: Alcotest List Option Printf Skipflow_frontend Skipflow_workloads
