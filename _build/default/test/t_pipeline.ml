(* End-to-end pipeline tests: MiniJava source -> parse -> typecheck ->
   lower -> SkipFlow/PTA analysis, on the paper's two motivating examples
   (Figures 1 and 2) and a few control-flow-heavy programs. *)

open Skipflow_ir
module C = Skipflow_core
module F = Skipflow_frontend

let analyze ?(config = C.Config.skipflow) src =
  let prog = F.Frontend.compile src in
  let main = Option.get (F.Frontend.main_of prog) in
  (prog, C.Analysis.run ~config prog ~roots:[ main ])

let reachable (prog, r) qname =
  List.exists
    (fun (m : Program.meth) ->
      String.equal (Program.qualified_name prog m.Program.m_id) qname)
    (C.Engine.reachable_methods r.C.Analysis.engine)

(* ----- Figure 2: the JDK isVirtual example ----- *)

let jdk_src ~with_virtual =
  Printf.sprintf
    {|
class Thread {
  boolean isVirtual() { return this instanceof BaseVirtualThread; }
}
class BaseVirtualThread extends Thread { }
class Set {
  void remove(Thread t) { }
}
class Container {
  var Set virtualThreads;
  void onExit(Thread thread) {
    if (thread.isVirtual()) {
      this.virtualThreads.remove(thread);
    }
  }
}
class Main {
  static void main() {
    Container c = new Container();
    c.virtualThreads = new Set();
    Thread t = %s;
    c.onExit(t);
  }
}
|}
    (if with_virtual then "new BaseVirtualThread()" else "new Thread()")

let test_fig2_skipflow () =
  let res = analyze (jdk_src ~with_virtual:false) in
  Alcotest.(check bool) "onExit reachable" true (reachable res "Container.onExit");
  Alcotest.(check bool) "isVirtual reachable" true (reachable res "Thread.isVirtual");
  Alcotest.(check bool) "remove dead" false (reachable res "Set.remove")

let test_fig2_sound () =
  let res = analyze (jdk_src ~with_virtual:true) in
  Alcotest.(check bool) "remove reachable" true (reachable res "Set.remove")

let test_fig2_pta () =
  let res = analyze ~config:C.Config.pta (jdk_src ~with_virtual:false) in
  Alcotest.(check bool) "remove reachable under PTA" true (reachable res "Set.remove")

(* ----- Figure 1: the Sunflow guarded-default-allocation example ----- *)

let sunflow_src =
  {|
class Display {
  void imageBegin() { }
}
class FrameDisplay extends Display {
  void imageBegin() { this.initAwt(); }
  void initAwt() { }
}
class FileDisplay extends Display {
  void imageBegin() { }
}
class Scene {
  void render(Display display) {
    if (display == null) {
      display = new FrameDisplay();
    }
    BucketRenderer r = new BucketRenderer();
    r.render(display);
  }
}
class BucketRenderer {
  void render(Display display) {
    display.imageBegin();
  }
}
class Main {
  static void main() {
    Scene s = new Scene();
    s.render(new FileDisplay());
  }
}
|}

let test_fig1_skipflow () =
  let res = analyze sunflow_src in
  Alcotest.(check bool) "render reachable" true (reachable res "BucketRenderer.render");
  Alcotest.(check bool)
    "FileDisplay.imageBegin reachable" true
    (reachable res "FileDisplay.imageBegin");
  Alcotest.(check bool)
    "FrameDisplay.imageBegin dead (AWT removed)" false
    (reachable res "FrameDisplay.imageBegin");
  Alcotest.(check bool) "initAwt dead" false (reachable res "FrameDisplay.initAwt")

let test_fig1_pta () =
  let res = analyze ~config:C.Config.pta sunflow_src in
  Alcotest.(check bool)
    "FrameDisplay.imageBegin reachable under PTA" true
    (reachable res "FrameDisplay.imageBegin")

let test_fig1_null_path_sound () =
  (* when null actually flows, the allocation must be considered *)
  let src =
    String.concat ""
      [
        String.sub sunflow_src 0 (String.length sunflow_src);
        {|
class Main2 {
  static void main() {
    Scene s = new Scene();
    Display d = null;
    s.render(d);
  }
}
|};
      ]
  in
  let prog = F.Frontend.compile src in
  let main2 =
    Option.get (Program.find_class prog "Main2") |> fun c ->
    Option.get (Program.find_meth prog c "main")
  in
  let r = C.Analysis.run prog ~roots:[ main2 ] in
  let reach q =
    List.exists
      (fun (m : Program.meth) ->
        String.equal (Program.qualified_name prog m.Program.m_id) q)
      (C.Engine.reachable_methods r.C.Analysis.engine)
  in
  Alcotest.(check bool)
    "FrameDisplay.imageBegin reachable when null flows" true
    (reach "FrameDisplay.imageBegin")

(* ----- control flow: loops, short circuit, materialized booleans ----- *)

let test_loop_and_shortcircuit () =
  let src =
    {|
class Counter {
  var int n;
  boolean positive() { return this.n > 0; }
}
class Main {
  static int run(Counter c, int k) {
    int acc = 0;
    int i = 0;
    while (i < k && c.positive()) {
      acc = acc + i;
      i = i + 1;
    }
    boolean flag = c.positive() || k == 0;
    if (flag) { return acc; }
    return 0 - acc;
  }
  static void main() {
    Counter c = new Counter();
    c.n = 5;
    int r = Main.run(c, 10);
  }
}
|}
  in
  let res = analyze src in
  Alcotest.(check bool) "run reachable" true (reachable res "Main.run");
  Alcotest.(check bool) "positive reachable" true (reachable res "Counter.positive")

let test_never_returns_predicate () =
  (* invoke-as-predicate: code after a call to a non-returning method is
     unreachable (Section 5, exception/assert-fail pattern) *)
  let src =
    {|
class Util {
  static void hang() { while (true) { } }
  static void after() { }
}
class Main {
  static void main() {
    Util.hang();
    Util.after();
  }
}
|}
  in
  let res = analyze src in
  Alcotest.(check bool) "hang reachable" true (reachable res "Util.hang");
  Alcotest.(check bool) "after dead" false (reachable res "Util.after");
  let res_pta = analyze ~config:C.Config.pta src in
  Alcotest.(check bool)
    "after reachable under PTA" true
    (reachable res_pta "Util.after")

let test_constant_feature_flag () =
  (* interprocedural constant propagation through a static call *)
  let src =
    {|
class Features {
  static boolean useCache() { return false; }
}
class Cache { void init() { } }
class Main {
  static void main() {
    if (Features.useCache()) {
      Cache c = new Cache();
      c.init();
    }
  }
}
|}
  in
  let res = analyze src in
  Alcotest.(check bool) "init dead" false (reachable res "Cache.init");
  let res_pta = analyze ~config:C.Config.pta src in
  Alcotest.(check bool) "init reachable under PTA" true (reachable res_pta "Cache.init")

let test_prim_comparison_pruning () =
  (* Figure 4: x = 42; only the x > 10 branch is live *)
  let src =
    {|
class M { void m() { } void f() { } }
class Main {
  static void main() {
    int x = 42;
    M o = new M();
    if (x > 10) { o.m(); } else { o.f(); }
  }
}
|}
  in
  let res = analyze src in
  Alcotest.(check bool) "m reachable" true (reachable res "M.m");
  Alcotest.(check bool) "f dead" false (reachable res "M.f")

let suite =
  ( "pipeline",
    [
      Alcotest.test_case "fig2 skipflow kills remove()" `Quick test_fig2_skipflow;
      Alcotest.test_case "fig2 sound with virtual thread" `Quick test_fig2_sound;
      Alcotest.test_case "fig2 PTA keeps remove()" `Quick test_fig2_pta;
      Alcotest.test_case "fig1 skipflow kills FrameDisplay" `Quick test_fig1_skipflow;
      Alcotest.test_case "fig1 PTA keeps FrameDisplay" `Quick test_fig1_pta;
      Alcotest.test_case "fig1 sound when null flows" `Quick test_fig1_null_path_sound;
      Alcotest.test_case "loops and short-circuit" `Quick test_loop_and_shortcircuit;
      Alcotest.test_case "never-returning invoke as predicate" `Quick
        test_never_returns_predicate;
      Alcotest.test_case "constant feature flag" `Quick test_constant_feature_flag;
      Alcotest.test_case "figure 4 primitive pruning" `Quick test_prim_comparison_pruning;
    ] )
