(* Tests for the IR validator and dominance computation: accepted bodies
   stay accepted, hand-broken bodies are rejected with the right message. *)

open Skipflow_ir
module B = Ssa_builder

(* a valid diamond body to mutate *)
let mk_body () =
  let b = B.create ~params:[ ("x", Ty.Int) ] in
  let e = B.entry_block b in
  let x = B.read_var b e "x" ~ty:Ty.Int in
  let l1 = B.label_block b and l2 = B.label_block b in
  let m = B.merge_block b in
  B.terminate b e (Bl.If { cond = Bl.Cmp (`Eq, x, x); then_ = l1.Bl.b_id; else_ = l2.Bl.b_id });
  B.write_var b l1 "y" (B.const b l1 1);
  B.terminate b l1 (Bl.Jump m.Bl.b_id);
  B.write_var b l2 "y" (B.const b l2 2);
  B.terminate b l2 (Bl.Jump m.Bl.b_id);
  B.seal b m;
  let y = B.read_var b m "y" ~ty:Ty.Int in
  B.terminate b m (Bl.Return (Some y));
  B.finish b

(* substring check without extra deps *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let rejects msg_part body =
  match Validate.check body with
  | Ok () -> Alcotest.failf "expected rejection mentioning %S" msg_part
  | Error msg ->
      if not (contains msg msg_part) then
        Alcotest.failf "error %S does not mention %S" msg msg_part

let test_valid_accepted () =
  match Validate.check (mk_body ()) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "valid body rejected: %s" m

let test_double_definition () =
  let body = mk_body () in
  (* duplicate the first instruction of block l1 (defines the same var twice) *)
  let blk = body.Bl.blocks.(1) in
  blk.Bl.b_insns <- blk.Bl.b_insns @ blk.Bl.b_insns;
  rejects "defined twice" body

let test_missing_terminator () =
  let body = mk_body () in
  body.Bl.blocks.(1).Bl.b_term <- None;
  rejects "no terminator" body

let test_phi_arity () =
  let body = mk_body () in
  let m = body.Bl.blocks.(3) in
  (match m.Bl.b_phis with
  | phi :: _ -> phi.Bl.phi_args <- [ List.hd phi.Bl.phi_args ]
  | [] -> Alcotest.fail "expected a phi");
  rejects "predecessors" body

let test_phi_on_label_block () =
  let body = mk_body () in
  let l1 = body.Bl.blocks.(1) in
  l1.Bl.b_phis <- [ { Bl.phi_var = Ids.Var.of_int 0; phi_args = [] } ];
  rejects "contains phis" body

let test_use_before_def_in_block () =
  (* v <- v + 1 before v is defined *)
  let body = mk_body () in
  let e = body.Bl.blocks.(0) in
  (* use a variable defined only in l1 (block 1) from the entry *)
  let l1 = body.Bl.blocks.(1) in
  let defined_in_l1 =
    List.concat_map Bl.insn_defs l1.Bl.b_insns |> List.hd
  in
  e.Bl.b_insns <-
    e.Bl.b_insns @ [ Bl.Store { recv = defined_in_l1; field = Ids.Field.of_int 0; src = defined_in_l1 } ];
  rejects "dominated" body

let test_jump_to_label_rejected () =
  let body = mk_body () in
  (* retarget the merge's predecessors: make l2 jump to l1 (a label) *)
  let l2 = body.Bl.blocks.(2) in
  l2.Bl.b_term <- Some (Bl.Jump body.Bl.blocks.(1).Bl.b_id);
  rejects "not a merge block" body

let test_pred_list_consistency () =
  let body = mk_body () in
  let m = body.Bl.blocks.(3) in
  m.Bl.b_preds <- [ List.hd m.Bl.b_preds ];
  (match Validate.check body with
  | Ok () -> Alcotest.fail "expected rejection"
  | Error _ -> ())

(* ------------------------------ dominance ----------------------------- *)

let test_dominance_diamond () =
  let body = mk_body () in
  let dom = Dominance.compute body in
  let b n = body.Bl.blocks.(n).Bl.b_id in
  Alcotest.(check bool) "entry dominates all" true
    (List.for_all (fun i -> Dominance.dominates dom ~dom:(b 0) ~sub:(b i)) [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "branch does not dominate merge" false
    (Dominance.dominates dom ~dom:(b 1) ~sub:(b 3));
  Alcotest.(check bool) "merge idom is entry" true
    (match Dominance.idom dom (b 3) with
    | Some x -> Ids.Block.equal x (b 0)
    | None -> false);
  Alcotest.(check bool) "entry has no idom" true (Dominance.idom dom (b 0) = None);
  Alcotest.(check bool) "all reachable" true
    (List.for_all (fun i -> Dominance.reachable dom (b i)) [ 0; 1; 2; 3 ])

let suite =
  ( "validate",
    [
      Alcotest.test_case "valid body accepted" `Quick test_valid_accepted;
      Alcotest.test_case "double definition rejected" `Quick test_double_definition;
      Alcotest.test_case "missing terminator rejected" `Quick test_missing_terminator;
      Alcotest.test_case "phi arity mismatch rejected" `Quick test_phi_arity;
      Alcotest.test_case "phi on label block rejected" `Quick test_phi_on_label_block;
      Alcotest.test_case "undominated use rejected" `Quick test_use_before_def_in_block;
      Alcotest.test_case "jump to label rejected" `Quick test_jump_to_label_rejected;
      Alcotest.test_case "pred list consistency" `Quick test_pred_list_consistency;
      Alcotest.test_case "dominance on diamond" `Quick test_dominance_diamond;
    ] )
