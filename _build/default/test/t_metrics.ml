(* Counter-metric tests (the Table 1 columns): checks survive exactly when
   both branches stay live; calls are poly exactly when >= 2 targets link. *)

module C = Skipflow_core
module F = Skipflow_frontend

let metrics ?(config = C.Config.skipflow) src =
  let prog = F.Frontend.compile src in
  let main = Option.get (F.Frontend.main_of prog) in
  (C.Analysis.run ~config prog ~roots:[ main ]).C.Analysis.metrics

let test_dynamic_checks_counted () =
  let m =
    metrics
      {|
class A { }
class B extends A { }
class Main {
  static int f(A o, int x) {
    int r = 0;
    if (o == null) { r = 1; }
    if (o instanceof B) { r = 2; }
    if (x < 10) { r = 3; }
    return r;
  }
  static void main() {
    int x = 3 * 7;
    int a = Main.f(null, x);
    int b = Main.f(new B(), x);
  }
}
|}
  in
  Alcotest.(check int) "one null check" 1 m.C.Metrics.null_checks;
  Alcotest.(check int) "one type check" 1 m.C.Metrics.type_checks;
  Alcotest.(check int) "one prim check" 1 m.C.Metrics.prim_checks

let test_constant_checks_removed () =
  let src =
    {|
class A { }
class B extends A { }
class Main {
  static int f(A o, int x) {
    int r = 0;
    if (o == null) { r = 1; }
    if (o instanceof B) { r = 2; }
    if (x < 10) { r = 3; }
    return r;
  }
  static void main() {
    int a = Main.f(new B(), 3);
  }
}
|}
  in
  let m = metrics src in
  (* o is always B (never null), x is always 3: every check folds *)
  Alcotest.(check int) "null check removed" 0 m.C.Metrics.null_checks;
  Alcotest.(check int) "type check removed" 0 m.C.Metrics.type_checks;
  Alcotest.(check int) "prim check removed" 0 m.C.Metrics.prim_checks;
  (* the baseline can only remove the reference checks it can see through
     filters; the primitive check stays *)
  let mp = metrics ~config:C.Config.pta src in
  Alcotest.(check int) "pta keeps prim check" 1 mp.C.Metrics.prim_checks

let test_poly_and_mono () =
  let m =
    metrics
      {|
class H { int h() { return 0; } }
class H1 extends H { int h() { return 1; } }
class H2 extends H { int h() { return 2; } }
class Main {
  static void main() {
    H a = new H1();
    H b = new H2();
    H c = b;
    if (a.h() < b.h()) { c = a; }
    int r = c.h();        // 2 targets: poly
    int s = a.h();        // 1 target: mono (devirtualizable)
  }
}
|}
  in
  Alcotest.(check bool) "has poly calls" true (m.C.Metrics.poly_calls >= 1);
  Alcotest.(check bool) "has mono calls" true (m.C.Metrics.mono_calls >= 1)

let test_dead_invokes () =
  let m =
    metrics
      {|
class D { void run() { } }
class Flags { static boolean on() { return false; } }
class Main {
  static void main() {
    if (Flags.on()) { D d = new D(); d.run(); }
  }
}
|}
  in
  Alcotest.(check bool) "dead invoke counted" true (m.C.Metrics.dead_invokes >= 1)

let test_binary_size_is_reachable_size () =
  let src =
    {|
class Big { void a() { } void b() { } void c() { } }
class Flags { static boolean on() { return false; } }
class Main {
  static void main() {
    if (Flags.on()) { Big g = new Big(); g.a(); g.b(); g.c(); }
  }
}
|}
  in
  let m_sf = metrics src in
  let m_pta = metrics ~config:C.Config.pta src in
  Alcotest.(check bool) "skipflow smaller binary" true
    (m_sf.C.Metrics.binary_size < m_pta.C.Metrics.binary_size);
  Alcotest.(check bool) "skipflow fewer methods" true
    (m_sf.C.Metrics.reachable_methods < m_pta.C.Metrics.reachable_methods)

let test_instantiated_types_metric () =
  let m =
    metrics
      {|
class A { }
class B { }
class Flags { static boolean on() { return false; } }
class Main {
  static void main() {
    A a = new A();
    if (Flags.on()) { B b = new B(); }
  }
}
|}
  in
  (* only A is instantiated under SkipFlow *)
  Alcotest.(check int) "one instantiated type" 1 m.C.Metrics.instantiated_types

let suite =
  ( "metrics",
    [
      Alcotest.test_case "dynamic checks counted" `Quick test_dynamic_checks_counted;
      Alcotest.test_case "constant checks removed" `Quick test_constant_checks_removed;
      Alcotest.test_case "poly and mono calls" `Quick test_poly_and_mono;
      Alcotest.test_case "dead invokes" `Quick test_dead_invokes;
      Alcotest.test_case "binary size tracks reachable code" `Quick
        test_binary_size_is_reachable_size;
      Alcotest.test_case "instantiated types" `Quick test_instantiated_types_metric;
    ] )
