(* Lexer unit tests. *)

module L = Skipflow_frontend.Lexer
module T = Skipflow_frontend.Token

let toks src = List.map fst (L.tokenize src) |> List.filter (fun t -> t <> T.EOF)

let tok = Alcotest.testable (fun ppf t -> Format.pp_print_string ppf (T.to_string t)) ( = )

let test_keywords_and_idents () =
  Alcotest.(check (list tok)) "keywords"
    [ T.KW_CLASS; T.IDENT "Foo"; T.KW_EXTENDS; T.IDENT "Bar" ]
    (toks "class Foo extends Bar");
  Alcotest.(check (list tok)) "ident with keyword prefix"
    [ T.IDENT "classy"; T.IDENT "newt"; T.IDENT "nullx" ]
    (toks "classy newt nullx")

let test_numbers () =
  Alcotest.(check (list tok)) "ints" [ T.INT 0; T.INT 42; T.INT 1234567 ]
    (toks "0 42 1234567")

let test_operators () =
  Alcotest.(check (list tok)) "all operators"
    [
      T.EQ; T.NE; T.LE; T.GE; T.LT; T.GT; T.ASSIGN; T.BANG; T.ANDAND; T.OROR;
      T.PLUS; T.MINUS; T.STAR; T.SLASH; T.PERCENT;
    ]
    (toks "== != <= >= < > = ! && || + - * / %");
  Alcotest.(check (list tok)) "adjacent" [ T.IDENT "a"; T.EQ; T.MINUS; T.INT 1 ]
    (toks "a==-1")

let test_comments () =
  Alcotest.(check (list tok)) "line comment" [ T.INT 1; T.INT 2 ]
    (toks "1 // comment with class if else\n2");
  Alcotest.(check (list tok)) "block comment" [ T.INT 1; T.INT 2 ]
    (toks "1 /* multi\nline * stuff */ 2");
  Alcotest.(check (list tok)) "block comment with stars" [ T.INT 3 ]
    (toks "/* ** * ** */ 3")

let test_positions () =
  let all = L.tokenize "ab\n  cd" in
  match all with
  | [ (_, p1); (_, p2); _eof ] ->
      Alcotest.(check int) "line 1" 1 p1.L.line;
      Alcotest.(check int) "col 1" 1 p1.L.col;
      Alcotest.(check int) "line 2" 2 p2.L.line;
      Alcotest.(check int) "col 3" 3 p2.L.col
  | _ -> Alcotest.fail "unexpected token count"

let test_errors () =
  let fails src =
    match L.tokenize src with
    | exception L.Error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "bad char" true (fails "a # b");
  Alcotest.(check bool) "unterminated block comment" true (fails "1 /* never closed");
  Alcotest.(check bool) "lone pipe" true (fails "a | b");
  Alcotest.(check bool) "lone ampersand" true (fails "a & b")

let test_eof () =
  Alcotest.(check (list tok)) "empty input" [] (toks "");
  Alcotest.(check (list tok)) "whitespace only" [] (toks "  \n\t  ")

let suite =
  ( "lexer",
    [
      Alcotest.test_case "keywords and idents" `Quick test_keywords_and_idents;
      Alcotest.test_case "numbers" `Quick test_numbers;
      Alcotest.test_case "operators" `Quick test_operators;
      Alcotest.test_case "comments" `Quick test_comments;
      Alcotest.test_case "positions" `Quick test_positions;
      Alcotest.test_case "errors" `Quick test_errors;
      Alcotest.test_case "eof" `Quick test_eof;
    ] )
