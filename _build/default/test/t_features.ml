(* End-to-end tests for the extended language features: arrays (covariant
   array types with per-type element flows), static fields, checkcasts
   (filter flows in value position), and throw (abrupt termination /
   the Section 5 "method never returns" pattern). *)

open Skipflow_ir
module C = Skipflow_core
module F = Skipflow_frontend
module I = Skipflow_interp.Interp

let analyze ?(config = C.Config.skipflow) src =
  let prog = F.Frontend.compile src in
  let main = Option.get (F.Frontend.main_of prog) in
  (prog, C.Analysis.run ~config prog ~roots:[ main ], main)

let reachable (prog, r, _) q =
  List.exists
    (fun (m : Program.meth) -> String.equal (Program.qualified_name prog m.Program.m_id) q)
    (C.Engine.reachable_methods r.C.Analysis.engine)

let interp src =
  let prog = F.Frontend.compile src in
  let main = Option.get (F.Frontend.main_of prog) in
  I.run ~fuel:100_000 prog main

(* ------------------------------- arrays -------------------------------- *)

let test_array_interp () =
  let trace, halt =
    interp
      {|
class Main {
  static void main() {
    int[] a = new int[5];
    int i = 0;
    while (i < a.length) { a[i] = i * i; i = i + 1; }
    int sum = 0;
    i = 0;
    while (i < a.length) { sum = sum + a[i]; i = i + 1; }
    int witness = sum * 1000;
  }
}
|}
  in
  Alcotest.(check bool) "finished" true (halt = I.Finished);
  (* 0+1+4+9+16 = 30 -> witness 30000 *)
  Alcotest.(check bool) "sum correct" true
    (List.exists (fun (_, _, v) -> v = I.VInt 30000) trace.I.defs)

let test_array_oob () =
  let _, halt =
    interp {| class Main { static void main() { int[] a = new int[2]; int x = a[5]; } } |}
  in
  Alcotest.(check bool) "oob halts" true (halt = I.Index_oob)

let test_array_element_flow () =
  (* objects stored into arrays flow out of reads; dispatch follows *)
  let src =
    {|
class H { void go() { } }
class H1 extends H { void go() { } }
class H2 extends H { void go() { } }
class Main {
  static void main() {
    H[] hs = new H[2];
    hs[0] = new H1();
    H h = hs[1];
    if (h != null) { h.go(); }
  }
}
|}
  in
  let res = analyze src in
  (* H1 was stored: its go() is reachable; H2 was never stored *)
  Alcotest.(check bool) "H1.go reachable" true (reachable res "H1.go");
  Alcotest.(check bool) "H2.go dead" false (reachable res "H2.go");
  Alcotest.(check bool) "H.go dead (never instantiated)" false (reachable res "H.go")

let test_array_covariance () =
  (* a H1[] stored into a H[] variable: element reads through the H[]
     reference still see what was stored through the H1[] view *)
  let src =
    {|
class H { void go() { } }
class H1 extends H { void go() { } }
class Main {
  static void main() {
    H1[] a1 = new H1[3];
    a1[0] = new H1();
    H[] a = a1;
    H h = a[0];
    if (h != null) { h.go(); }
  }
}
|}
  in
  let res = analyze src in
  Alcotest.(check bool) "H1.go reachable through covariant read" true
    (reachable res "H1.go");
  (* and the interpreter agrees *)
  let trace, halt = interp src in
  ignore trace;
  Alcotest.(check bool) "runs fine" true (halt = I.Finished)

let test_array_of_arrays () =
  let trace, halt =
    interp
      {|
class Main {
  static void main() {
    int[][] grid = new int[3][];
    int i = 0;
    while (i < grid.length) { grid[i] = new int[4]; i = i + 1; }
    grid[1][2] = 42;
    int v = grid[1][2] * 100;
  }
}
|}
  in
  Alcotest.(check bool) "finished" true (halt = I.Finished);
  Alcotest.(check bool) "4200 observed" true
    (List.exists (fun (_, _, v) -> v = I.VInt 4200) trace.I.defs)

let test_array_types_checked () =
  let rejects src =
    match F.Frontend.compile src with
    | exception F.Frontend.Error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "int into H[]" true
    (rejects "class H { } class Main { static void main() { H[] a = new H[1]; a[0] = 5; } }");
  Alcotest.(check bool) "index non-array" true
    (rejects "class Main { static void main() { int x = 1; int y = x[0]; } }");
  Alcotest.(check bool) "non-int index" true
    (rejects
       "class Main { static void main() { int[] a = new int[1]; int y = a[null]; } }");
  Alcotest.(check bool) "non-int length" true
    (rejects "class Main { static void main() { int[] a = new int[null]; } }")

(* ---------------------------- static fields ---------------------------- *)

let test_static_fields_interp () =
  let trace, halt =
    interp
      {|
class Counter {
  static var int total;
  static void bump(int by) { Counter.total = Counter.total + by; }
}
class Main {
  static void main() {
    Counter.bump(3);
    Counter.bump(4);
    int witness = Counter.total * 1000;
  }
}
|}
  in
  Alcotest.(check bool) "finished" true (halt = I.Finished);
  Alcotest.(check bool) "7000 observed" true
    (List.exists (fun (_, _, v) -> v = I.VInt 7000) trace.I.defs)

let test_static_field_object_flow () =
  let src =
    {|
class Registry {
  static var Handler current;
}
class Handler { void handle() { } }
class SpecialHandler extends Handler { void handle() { } }
class Main {
  static void main() {
    Registry.current = new SpecialHandler();
    Handler h = Registry.current;
    if (h != null) { h.handle(); }
  }
}
|}
  in
  let res = analyze src in
  Alcotest.(check bool) "SpecialHandler.handle reachable" true
    (reachable res "SpecialHandler.handle");
  Alcotest.(check bool) "Handler.handle dead" false (reachable res "Handler.handle")

let test_static_field_never_written () =
  (* an unwritten static object field holds only null: calls through it
     are dead *)
  let src =
    {|
class G { static var H hook; }
class H { void fire() { } }
class Main {
  static void main() {
    H h = G.hook;
    if (h != null) { h.fire(); }
  }
}
|}
  in
  let res = analyze src in
  Alcotest.(check bool) "fire dead on null-only static" false (reachable res "H.fire")

(* -------------------------------- casts -------------------------------- *)

let test_cast_interp () =
  let _, halt =
    interp
      {|
class A { }
class B extends A { var int x; }
class Main {
  static void main() {
    A a = new B();
    B b = (B) a;
    b.x = 7;
    A an = null;
    B bn = (B) an;
  }
}
|}
  in
  (* both casts succeed (downcast of a B, cast of null) -> then NPE-free
     end *)
  Alcotest.(check bool) "finished" true (halt = I.Finished)

let test_cast_failure_halts () =
  let _, halt =
    interp
      {|
class A { }
class B extends A { }
class Main { static void main() { A a = new A(); B b = (B) a; } }
|}
  in
  Alcotest.(check bool) "bad cast halts" true (halt = I.Class_cast)

let test_cast_filters_types () =
  (* the cast narrows the value state in value position: dispatch through
     the cast only links subtypes of the cast type *)
  let src =
    {|
class A { void m() { } }
class B extends A { void m() { } }
class Cc extends A { void m() { } }
class Holder { var A v; }
class Main {
  static void main() {
    Holder h = new Holder();
    h.v = new B();
    h.v = new Cc();
    B b = (B) h.v;
    b.m();
  }
}
|}
  in
  let res = analyze src in
  Alcotest.(check bool) "B.m reachable" true (reachable res "B.m");
  (* {B, Cc, null} filtered by (B) keeps {B, null}: Cc.m is dead *)
  Alcotest.(check bool) "Cc.m dead after cast filter" false (reachable res "Cc.m")

(* -------------------------------- throw -------------------------------- *)

let test_throw_interp () =
  let _, halt =
    interp
      {|
class Oops { }
class Main { static void main() { throw new Oops(); } }
|}
  in
  Alcotest.(check bool) "uncaught" true (halt = I.Uncaught)

let test_always_throws_is_predicate () =
  (* a method that always throws never returns: code after the call is
     dead under SkipFlow (the Assert.fail() pattern of Section 5) *)
  let src =
    {|
class Err { }
class Assert {
  static void fail() { throw new Err(); }
}
class After { void work() { } }
class Main {
  static void main() {
    Assert.fail();
    After a = new After();
    a.work();
  }
}
|}
  in
  let res = analyze src in
  Alcotest.(check bool) "fail reachable" true (reachable res "Assert.fail");
  Alcotest.(check bool) "work dead after always-throw" false (reachable res "After.work");
  let res_pta = analyze ~config:C.Config.pta src in
  Alcotest.(check bool) "work reachable under PTA" true (reachable res_pta "After.work")

let test_conditional_throw_sound () =
  (* a method that only sometimes throws still returns: code after the
     call stays live *)
  let src =
    {|
class Err { }
class Checker {
  static void check(int x) { if (x < 0) { throw new Err(); } }
}
class After { void work() { } }
class Main {
  static void main() {
    int x = 5 * 3;
    Checker.check(x);
    After a = new After();
    a.work();
  }
}
|}
  in
  let res = analyze src in
  Alcotest.(check bool) "work live after conditional throw" true (reachable res "After.work")

(* ---------------------- parsing details of the features ----------------- *)

let test_cast_vs_parens () =
  (* '(x) - 1' must be a parenthesized expression, not a cast *)
  let trace, halt =
    interp
      {|
class Main { static void main() { int x = 10; int y = (x) - 1; int w = y * 1000; } }
|}
  in
  Alcotest.(check bool) "finished" true (halt = I.Finished);
  Alcotest.(check bool) "9000 observed" true
    (List.exists (fun (_, _, v) -> v = I.VInt 9000) trace.I.defs)

let test_feature_roundtrip () =
  let src =
    {|
class H { static var int n; var H[] kids; }
class H2 extends H { }
class Main {
  static void main() {
    H[] a = new H[3];
    H[][] aa = new H[2][];
    a[0] = new H2();
    H.n = a.length + aa.length;
    H h = (H2) a[0];
    if (h instanceof H2) { throw new H(); }
  }
}
|}
  in
  let p1 = F.Parser.parse_program src in
  let printed = F.Ast_pp.to_string p1 in
  let p2 = F.Parser.parse_program printed in
  Alcotest.(check string) "roundtrip fixpoint" printed (F.Ast_pp.to_string p2);
  (* and it compiles and analyzes *)
  let _, r, _ = analyze src in
  Alcotest.(check bool) "analyzes" true (r.C.Analysis.metrics.C.Metrics.reachable_methods >= 1)

let suite =
  ( "features",
    [
      Alcotest.test_case "array interp" `Quick test_array_interp;
      Alcotest.test_case "array out of bounds" `Quick test_array_oob;
      Alcotest.test_case "array element flows" `Quick test_array_element_flow;
      Alcotest.test_case "array covariance" `Quick test_array_covariance;
      Alcotest.test_case "arrays of arrays" `Quick test_array_of_arrays;
      Alcotest.test_case "array type errors" `Quick test_array_types_checked;
      Alcotest.test_case "static fields interp" `Quick test_static_fields_interp;
      Alcotest.test_case "static field object flow" `Quick test_static_field_object_flow;
      Alcotest.test_case "unwritten static is null" `Quick test_static_field_never_written;
      Alcotest.test_case "cast interp" `Quick test_cast_interp;
      Alcotest.test_case "cast failure halts" `Quick test_cast_failure_halts;
      Alcotest.test_case "cast filters value states" `Quick test_cast_filters_types;
      Alcotest.test_case "throw interp" `Quick test_throw_interp;
      Alcotest.test_case "always-throws is a predicate" `Quick test_always_throws_is_predicate;
      Alcotest.test_case "conditional throw sound" `Quick test_conditional_throw_sound;
      Alcotest.test_case "cast vs parens" `Quick test_cast_vs_parens;
      Alcotest.test_case "feature roundtrip" `Quick test_feature_roundtrip;
    ] )
