(* Unit and property tests for the bitset type-set representation. *)

module TS = Skipflow_core.Typeset

let set () = Alcotest.testable (fun ppf s -> TS.pp ppf s) TS.equal
let ts = set ()

let test_empty () =
  Alcotest.(check bool) "empty is empty" true (TS.is_empty TS.empty);
  Alcotest.(check int) "cardinal 0" 0 (TS.cardinal TS.empty);
  Alcotest.(check (list int)) "no elements" [] (TS.elements TS.empty)

let test_singleton () =
  let s = TS.singleton 5 in
  Alcotest.(check bool) "mem 5" true (TS.mem 5 s);
  Alcotest.(check bool) "not mem 4" false (TS.mem 4 s);
  Alcotest.(check bool) "not mem 500" false (TS.mem 500 s);
  Alcotest.(check int) "cardinal" 1 (TS.cardinal s)

let test_add_remove () =
  let s = TS.of_list [ 1; 63; 64; 200 ] in
  Alcotest.(check (list int)) "elements sorted" [ 1; 63; 64; 200 ] (TS.elements s);
  let s' = TS.remove 64 s in
  Alcotest.(check (list int)) "removed" [ 1; 63; 200 ] (TS.elements s');
  Alcotest.(check ts) "remove absent is id" s (TS.remove 77 s);
  (* removal must renormalize so equality stays structural *)
  let t = TS.remove 200 (TS.of_list [ 1; 200 ]) in
  Alcotest.(check ts) "normalization after remove" (TS.singleton 1) t

let test_ops () =
  let a = TS.of_list [ 0; 1; 70 ] and b = TS.of_list [ 1; 2; 200 ] in
  Alcotest.(check (list int)) "union" [ 0; 1; 2; 70; 200 ] (TS.elements (TS.union a b));
  Alcotest.(check (list int)) "inter" [ 1 ] (TS.elements (TS.inter a b));
  Alcotest.(check (list int)) "diff" [ 0; 70 ] (TS.elements (TS.diff a b));
  Alcotest.(check bool) "subset yes" true (TS.subset (TS.of_list [ 1; 70 ]) a);
  Alcotest.(check bool) "subset no" false (TS.subset b a)

let test_inter_normalizes () =
  (* intersection of disjoint high sets must equal empty structurally *)
  let a = TS.singleton 300 and b = TS.singleton 301 in
  Alcotest.(check ts) "disjoint inter = empty" TS.empty (TS.inter a b);
  Alcotest.(check bool) "equal empties" true (TS.equal (TS.inter a b) TS.empty)

let test_null_bit () =
  Alcotest.(check bool) "null bit" true (TS.has_null TS.null_bit);
  Alcotest.(check bool) "empty lacks null" false (TS.has_null TS.empty)

(* ---------------------------- properties ------------------------------ *)

let gen_set =
  QCheck.Gen.(
    map TS.of_list (list_size (int_bound 12) (int_bound 150)))

let arb_set = QCheck.make ~print:(Format.asprintf "%a" TS.pp) gen_set

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:300 gen f)

let props =
  [
    prop "union comm" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        TS.equal (TS.union a b) (TS.union b a));
    prop "union assoc" (QCheck.triple arb_set arb_set arb_set) (fun (a, b, c) ->
        TS.equal (TS.union a (TS.union b c)) (TS.union (TS.union a b) c));
    prop "union idem" arb_set (fun a -> TS.equal (TS.union a a) a);
    prop "inter comm" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        TS.equal (TS.inter a b) (TS.inter b a));
    prop "de morgan via diff" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        (* a \ b = a \ (a ∩ b) *)
        TS.equal (TS.diff a b) (TS.diff a (TS.inter a b)));
    prop "diff then union restores" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        TS.equal (TS.union (TS.diff a b) (TS.inter a b)) a);
    prop "subset union" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        TS.subset a (TS.union a b));
    prop "mem after add" (QCheck.pair arb_set (QCheck.int_bound 150)) (fun (a, i) ->
        TS.mem i (TS.add i a));
    prop "cardinal union inter" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        TS.cardinal (TS.union a b) + TS.cardinal (TS.inter a b)
        = TS.cardinal a + TS.cardinal b);
    prop "equal iff same elements" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        TS.equal a b = (TS.elements a = TS.elements b));
    prop "fold consistent with elements" arb_set (fun a ->
        List.rev (TS.fold (fun i acc -> i :: acc) a []) = TS.elements a);
  ]

let suite =
  ( "typeset",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "singleton" `Quick test_singleton;
      Alcotest.test_case "add/remove" `Quick test_add_remove;
      Alcotest.test_case "set operations" `Quick test_ops;
      Alcotest.test_case "inter normalizes" `Quick test_inter_normalizes;
      Alcotest.test_case "null bit" `Quick test_null_bit;
    ]
    @ props )
