lib/interp/interp.mli: Hashtbl Ids Program Skipflow_ir
