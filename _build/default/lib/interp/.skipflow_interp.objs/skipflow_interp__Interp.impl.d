lib/interp/interp.ml: Array Bl Hashtbl Ids List Program Skipflow_ir Ty
