(** Precomputed per-class subtype bit masks.

    Filtering flows apply [instanceof] and declared-type filters as bit-set
    intersections/differences; this module computes, once per program:

    - [sub c]: the set of subtypes of [c] including [c] itself, excluding
      [null] (so that intersecting implements a positive [instanceof], where
      [null] must not pass, and subtracting implements the negated check,
      where [null] does pass);
    - [decl c]: [sub c] plus [null] — the set of values assignable to a
      location of declared type [c]. *)

open Skipflow_ir

type t = { sub : Typeset.t array; decl : Typeset.t array }

let compute (p : Program.t) =
  let n = Program.num_classes p in
  let sub = Array.make n Typeset.empty in
  let decl = Array.make n Typeset.empty in
  for i = 0 to n - 1 do
    let c = Ids.Class.of_int i in
    if not (Program.is_null_class c) then begin
      let s = Typeset.of_classes (Program.all_subtypes p c) in
      sub.(i) <- s;
      decl.(i) <- Typeset.union s Typeset.null_bit
    end
  done;
  { sub; decl }

let sub t (c : Ids.Class.t) = t.sub.(Ids.Class.to_int c)
let decl t (c : Ids.Class.t) = t.decl.(Ids.Class.to_int c)
