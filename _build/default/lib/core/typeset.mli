(** Compact immutable sets of class ids — the object part of the
    value-state lattice (the subset lattice [S = (2^T, ⊆)] of
    Appendix B.2), implemented as normalized bit vectors.

    The special [null] type participates as bit 0 (its reserved class id in
    {!Skipflow_ir.Program}). *)

type t

val empty : t
val is_empty : t -> bool
val singleton : int -> t
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val union : t -> t -> t
val inter : t -> t -> t

val diff : t -> t -> t
(** [diff a b] is [a \ b]. *)

val equal : t -> t -> bool
(** Set equality (representations are normalized, so this is structural). *)

val subset : t -> t -> bool
(** [subset a b] iff [a ⊆ b]. *)

val cardinal : t -> int
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val elements : t -> int list
(** Members in increasing order. *)

val of_list : int list -> t
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** {2 Typed wrappers over class ids} *)

val class_mem : Skipflow_ir.Ids.Class.t -> t -> bool
val class_add : Skipflow_ir.Ids.Class.t -> t -> t
val class_singleton : Skipflow_ir.Ids.Class.t -> t
val of_classes : Skipflow_ir.Ids.Class.t list -> t
val classes : t -> Skipflow_ir.Ids.Class.t list
val iter_classes : (Skipflow_ir.Ids.Class.t -> unit) -> t -> unit

val null_bit : t
(** The singleton set containing only the [null] member (bit 0). *)

val has_null : t -> bool
