(** Graphviz export of PVPGs, in the visual style of the paper's Figures 7
    and 8: full lines are {e use} edges, dashed lines with empty arrowheads
    are {e predicate} edges, dotted lines are {e observe} edges; enabled
    flows are drawn red, disabled flows grey. *)

open Skipflow_ir

let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let flow_label prog (f : Flow.t) =
  let base =
    match f.Flow.kind with
    | Flow.Pred_on -> "pred_on"
    | Flow.Source v -> Format.asprintf "source %a" Vstate.pp v
    | Flow.Alloc c -> "new " ^ Program.class_name prog c
    | Flow.Param i -> Printf.sprintf "p%d" i
    | Flow.Phi -> "phi"
    | Flow.Phi_pred -> "phi_pred"
    | Flow.Field_load fa ->
        "load " ^ Program.qualified_field_name prog fa.Flow.fa_field
    | Flow.Field_store fa ->
        "store " ^ Program.qualified_field_name prog fa.Flow.fa_field
    | Flow.Field_state fid -> "field " ^ Program.qualified_field_name prog fid
    | Flow.Static_load fid -> "static load " ^ Program.qualified_field_name prog fid
    | Flow.Static_store fid -> "static store " ^ Program.qualified_field_name prog fid
    | Flow.Cast c -> "cast (" ^ Program.class_name prog c ^ ")"
    | Flow.Invoke inv ->
        "invoke " ^ Program.qualified_name prog inv.Flow.inv_target
    | Flow.Return -> "return"
    | Flow.Filter { branch_then; _ } -> (
        let sign = if branch_then then "" else "!" in
        match f.Flow.filter with
        | Flow.Instanceof { cls; negated; _ } ->
            Printf.sprintf "%sinstanceof %s"
              (if negated then "!" else "")
              (Program.class_name prog cls)
        | Flow.Compare { op; _ } -> Format.asprintf "filter %a" Vstate.pp_cmp_op op
        | _ -> sign ^ "filter")
    | Flow.All_instantiated c -> "all_instantiated " ^ Program.class_name prog c
  in
  Printf.sprintf "%s\\nVS=%s" (escape base)
    (escape (Format.asprintf "%a" (Vstate.pp_named ~class_name:(Program.class_name prog)) f.Flow.state))

let emit_graph prog ppf (graphs : Graph.method_graph list) =
  Format.fprintf ppf "digraph pvpg {@\n  node [shape=box, fontsize=10];@\n";
  let seen = Hashtbl.create 256 in
  let node (f : Flow.t) =
    if not (Hashtbl.mem seen f.Flow.id) then begin
      Hashtbl.replace seen f.Flow.id ();
      let color = if f.Flow.enabled then "red" else "grey" in
      Format.fprintf ppf "  n%d [label=\"%s\", color=%s];@\n" f.Flow.id
        (flow_label prog f) color
    end
  in
  let edges (f : Flow.t) =
    List.iter
      (fun (u : Flow.t) -> Format.fprintf ppf "  n%d -> n%d;@\n" f.Flow.id u.Flow.id)
      f.Flow.uses;
    List.iter
      (fun (p : Flow.t) ->
        Format.fprintf ppf "  n%d -> n%d [style=dashed, arrowhead=empty];@\n"
          f.Flow.id p.Flow.id)
      f.Flow.pred_out;
    List.iter
      (fun (o : Flow.t) ->
        Format.fprintf ppf "  n%d -> n%d [style=dotted];@\n" f.Flow.id o.Flow.id)
      f.Flow.observers
  in
  List.iter
    (fun (g : Graph.method_graph) ->
      Format.fprintf ppf "  subgraph cluster_%d {@\n    label=\"%s\";@\n"
        (Ids.Meth.to_int g.Graph.g_meth.Program.m_id)
        (escape (Program.qualified_name prog g.Graph.g_meth.Program.m_id));
      List.iter node g.Graph.g_flows;
      Format.fprintf ppf "  }@\n")
    graphs;
  (* second pass: edges (and any global flows they touch) *)
  let rec close (f : Flow.t) =
    List.iter
      (fun (x : Flow.t) ->
        if not (Hashtbl.mem seen x.Flow.id) then begin
          node x;
          close x
        end)
      (f.Flow.uses @ f.Flow.pred_out @ f.Flow.observers)
  in
  List.iter (fun g -> List.iter close g.Graph.g_flows) graphs;
  List.iter (fun g -> List.iter edges g.Graph.g_flows) graphs;
  Format.fprintf ppf "}@\n"

let to_string prog graphs = Format.asprintf "%a" (emit_graph prog) graphs

let write_file prog ~path graphs =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  emit_graph prog ppf graphs;
  Format.pp_print_flush ppf ();
  close_out oc
