(** Precomputed per-class subtype bit masks used by the filtering flows:
    [sub c] = subtypes of [c] (excluding [null], for [instanceof]);
    [decl c] = [sub c] plus [null] (for declared-type and cast filters). *)

type t

val compute : Skipflow_ir.Program.t -> t
(** Computed once per program; requires the program to be complete. *)

val sub : t -> Skipflow_ir.Ids.Class.t -> Typeset.t
val decl : t -> Skipflow_ir.Ids.Class.t -> Typeset.t
