(** Graphviz export of PVPGs in the visual style of the paper's Figures 7
    and 8: full lines = use edges, dashed empty-head lines = predicate
    edges, dotted lines = observe edges; enabled flows red, disabled
    grey. *)

val emit_graph :
  Skipflow_ir.Program.t -> Format.formatter -> Graph.method_graph list -> unit

val to_string : Skipflow_ir.Program.t -> Graph.method_graph list -> string
val write_file : Skipflow_ir.Program.t -> path:string -> Graph.method_graph list -> unit
