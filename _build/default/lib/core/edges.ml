(** Edge insertion with propagation tasks.

    Both PVPG construction ({!Build}) and interprocedural linking
    ({!Engine}) add edges to a graph whose fixed-point computation may
    already be under way, so adding an edge must schedule the propagation
    work the edge implies:

    - a {e use} edge from an enabled source with a non-empty state pushes
      that state to the new target;
    - a {e predicate} edge from an enabled, non-empty source immediately
      enables the target;
    - an {e observe} edge from a source with a non-empty state notifies the
      new observer.

    Tasks are drained FIFO by the engine; because all transfer functions
    are monotone joins over a finite-height lattice, the fixed point does
    not depend on the order (a property the test-suite checks by running
    with randomized orders). *)

type task =
  | Enable of Flow.t
  | Input of Flow.t * Vstate.t  (** join the value into the target's VS_in *)
  | Notify of Flow.t  (** re-run the observer's flow-specific action *)

type emit = task -> unit

let use_edge ~(emit : emit) (s : Flow.t) (t : Flow.t) =
  s.Flow.uses <- t :: s.Flow.uses;
  if s.Flow.enabled && not (Vstate.is_empty s.Flow.state) then
    emit (Input (t, s.Flow.state))

let pred_edge ~(emit : emit) (s : Flow.t) (t : Flow.t) =
  s.Flow.pred_out <- t :: s.Flow.pred_out;
  if s.Flow.enabled && not (Vstate.is_empty s.Flow.state) then emit (Enable t)

let obs_edge ~(emit : emit) (s : Flow.t) (t : Flow.t) =
  s.Flow.observers <- t :: s.Flow.observers;
  if not (Vstate.is_empty s.Flow.state) then emit (Notify t)
