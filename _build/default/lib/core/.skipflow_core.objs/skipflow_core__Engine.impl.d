lib/core/engine.ml: Array Bl Build Config Edges Flow Graph Ids List Masks Printf Program Queue Skipflow_ir Ty Typeset Vstate
