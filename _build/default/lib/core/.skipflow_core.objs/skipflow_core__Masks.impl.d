lib/core/masks.ml: Array Ids Program Skipflow_ir Typeset
