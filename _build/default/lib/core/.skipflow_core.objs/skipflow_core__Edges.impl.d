lib/core/edges.ml: Flow Vstate
