lib/core/masks.mli: Skipflow_ir Typeset
