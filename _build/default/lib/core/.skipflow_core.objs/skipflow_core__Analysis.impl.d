lib/core/analysis.ml: Config Engine List Metrics Program Skipflow_ir String Sys
