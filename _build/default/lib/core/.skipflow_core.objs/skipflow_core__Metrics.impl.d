lib/core/metrics.ml: Bl Engine Flow Format Graph Ids List Skipflow_ir
