lib/core/verify.ml: Engine Flow Format Graph Ids List Program Skipflow_ir Ty Typeset Vstate
