lib/core/analysis.mli: Config Engine Metrics Skipflow_ir
