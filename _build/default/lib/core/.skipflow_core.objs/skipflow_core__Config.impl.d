lib/core/config.ml: Format Printf
