lib/core/vstate.ml: Format Int Skipflow_ir Typeset
