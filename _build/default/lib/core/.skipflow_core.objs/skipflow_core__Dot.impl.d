lib/core/dot.ml: Flow Format Graph Hashtbl Ids List Printf Program Skipflow_ir String Vstate
