lib/core/engine.mli: Config Flow Graph Skipflow_ir
