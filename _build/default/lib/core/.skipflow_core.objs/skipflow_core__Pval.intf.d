lib/core/pval.mli: Format
