lib/core/metrics.mli: Engine Format
