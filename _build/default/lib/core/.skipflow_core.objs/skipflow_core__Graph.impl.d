lib/core/graph.ml: Bl Flow List Program Skipflow_ir Vstate
