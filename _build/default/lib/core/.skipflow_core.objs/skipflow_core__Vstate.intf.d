lib/core/vstate.mli: Format Skipflow_ir Typeset
