lib/core/pval.ml: Format Int
