lib/core/build.ml: Array Bl Config Edges Flow Graph Hashtbl Ids List Masks Option Printf Program Skipflow_ir Ty Vstate
