lib/core/dot.mli: Format Graph Skipflow_ir
