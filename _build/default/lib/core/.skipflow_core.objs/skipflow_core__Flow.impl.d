lib/core/flow.ml: Format Ids Printf Skipflow_ir Typeset Vstate
