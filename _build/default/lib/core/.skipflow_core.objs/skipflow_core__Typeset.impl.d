lib/core/typeset.ml: Array Format Hashtbl List Skipflow_ir Sys
