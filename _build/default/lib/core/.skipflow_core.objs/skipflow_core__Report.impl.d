lib/core/report.ml: Engine Flow Format Graph Ids List Program Skipflow_ir Ty Vstate
