lib/core/typeset.mli: Format Skipflow_ir
