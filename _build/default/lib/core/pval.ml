(** The lattice [ℙ] of primitive values (paper, Figure 6):

    {v
              Any
         /  /  |  \  \
      ... -1   0   1 ...
         \  \  |  /  /
             Empty
    v}

    Only concrete constants, [Empty], and [Any] are modelled — no intervals
    or sets; the join of two distinct constants is immediately [Any]
    (Section 3, "Abstractions for Primitive Values").  Booleans are the
    constants 1 ([true]) and 0 ([false]). *)

type t = Bot  (** Empty *) | Const of int | Top  (** Any *)

let equal a b =
  match (a, b) with
  | Bot, Bot | Top, Top -> true
  | Const x, Const y -> Int.equal x y
  | (Bot | Top | Const _), _ -> false

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Const x, Const y -> if Int.equal x y then a else Top

let leq a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Top -> true
  | Const x, Const y -> Int.equal x y
  | (Top | Const _), _ -> false

let is_bot = function Bot -> true | Const _ | Top -> false

let pp ppf = function
  | Bot -> Format.pp_print_string ppf "Empty"
  | Const n -> Format.pp_print_int ppf n
  | Top -> Format.pp_print_string ppf "Any"
