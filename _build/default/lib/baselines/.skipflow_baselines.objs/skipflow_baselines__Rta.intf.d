lib/baselines/rta.mli: Skipflow_ir
