lib/baselines/rta.ml: Array Bl Ids List Program Queue Skipflow_ir
