lib/baselines/cha.mli: Skipflow_ir
