lib/baselines/cha.ml: Array Bl Ids List Program Queue Skipflow_ir
