(** Class Hierarchy Analysis (Dean, Grove, Chambers 1995): the coarsest
    call-graph construction of the precision spectrum discussed in the
    paper's Section 6 — a virtual call may dispatch to the implementation
    selected by {e any} concrete subtype of the target's declaring class,
    regardless of instantiation. *)

type result = {
  reachable : Skipflow_ir.Ids.Meth.Set.t;
  edges : int;  (** resolved call edges, a rough precision indicator *)
}

val run : Skipflow_ir.Program.t -> roots:Skipflow_ir.Program.meth list -> result
