(** Rapid Type Analysis (Bacon & Sweeney 1996).

    Refines CHA by only dispatching virtual calls to implementations
    selected by classes that are actually instantiated somewhere in the
    reachable code.  Discovery of instantiations and of reachable methods
    is mutually recursive, so the computation iterates to a fixed point:
    when a new class is instantiated, virtual call sites already seen are
    reconsidered. *)

open Skipflow_ir

type result = {
  reachable : Ids.Meth.Set.t;
  instantiated : Ids.Class.Set.t;
  edges : int;
}

type state = {
  prog : Program.t;
  mutable reachable : Ids.Meth.Set.t;
  mutable instantiated : Ids.Class.Set.t;
  mutable pending_sites : (Ids.Meth.t * Ids.Class.t) list;
      (** virtual call sites seen so far: (declared target, declaring class
          of the receiver's static target) *)
  queue : Program.meth Queue.t;
  mutable edges : int;
}

let push st (m : Program.meth) =
  if not (Ids.Meth.Set.mem m.Program.m_id st.reachable) then begin
    st.reachable <- Ids.Meth.Set.add m.Program.m_id st.reachable;
    Queue.add m st.queue
  end

let link_site st (target : Ids.Meth.t) =
  let tm = Program.meth st.prog target in
  List.iter
    (fun c ->
      if Ids.Class.Set.mem c st.instantiated then
        match Program.resolve st.prog ~recv_cls:c ~target with
        | Some callee ->
            st.edges <- st.edges + 1;
            push st callee
        | None -> ())
    (Program.concrete_subtypes st.prog tm.Program.m_class)

let instantiate st (c : Ids.Class.t) =
  if not (Ids.Class.Set.mem c st.instantiated) then begin
    st.instantiated <- Ids.Class.Set.add c st.instantiated;
    (* reconsider every virtual site already seen *)
    List.iter (fun (target, _) -> link_site st target) st.pending_sites
  end

let scan_method st (m : Program.meth) =
  match m.Program.m_body with
  | None -> ()
  | Some body ->
      Array.iter
        (fun blk ->
          List.iter
            (fun i ->
              match i with
              | Bl.Assign (_, Bl.New c) -> instantiate st c
              | Bl.Invoke { target; virtual_; _ } ->
                  if virtual_ then begin
                    let tm = Program.meth st.prog target in
                    st.pending_sites <- (target, tm.Program.m_class) :: st.pending_sites;
                    link_site st target
                  end
                  else begin
                    st.edges <- st.edges + 1;
                    push st (Program.meth st.prog target)
                  end
              | _ -> ())
            blk.Bl.b_insns)
        body.Bl.blocks

let run prog ~(roots : Program.meth list) : result =
  let st =
    {
      prog;
      reachable = Ids.Meth.Set.empty;
      instantiated = Ids.Class.Set.empty;
      pending_sites = [];
      queue = Queue.create ();
      edges = 0;
    }
  in
  List.iter (push st) roots;
  while not (Queue.is_empty st.queue) do
    scan_method st (Queue.take st.queue)
  done;
  { reachable = st.reachable; instantiated = st.instantiated; edges = st.edges }
