(** Rapid Type Analysis (Bacon & Sweeney 1996): CHA restricted to classes
    actually instantiated in reachable code; instantiation discovery and
    reachability iterate to a mutual fixed point. *)

type result = {
  reachable : Skipflow_ir.Ids.Meth.Set.t;
  instantiated : Skipflow_ir.Ids.Class.Set.t;
  edges : int;
}

val run : Skipflow_ir.Program.t -> roots:Skipflow_ir.Program.meth list -> result
