(** Class Hierarchy Analysis (Dean, Grove, Chambers 1995).

    The coarsest call-graph construction discussed in the paper's
    evaluation (Section 6): a virtual call on a receiver of declared type
    [C] may dispatch to the implementation selected by {e any} concrete
    subtype of [C], regardless of which classes are instantiated.  Included
    as the lower end of the precision spectrum

      CHA ⊒ RTA ⊒ PTA ⊒ SkipFlow

    which the property-test suite checks on generated programs. *)

open Skipflow_ir

type result = {
  reachable : Ids.Meth.Set.t;
  edges : int;  (** resolved call edges, a rough precision indicator *)
}

let targets_of_call prog (i : Bl.insn) : Program.meth list =
  match i with
  | Bl.Invoke { target; virtual_; _ } ->
      let tm = Program.meth prog target in
      if virtual_ then
        (* any concrete subtype of the target's declaring class *)
        List.filter_map
          (fun c -> Program.resolve prog ~recv_cls:c ~target)
          (Program.concrete_subtypes prog tm.Program.m_class)
      else [ tm ]
  | _ -> []

let dedup ms =
  List.sort_uniq
    (fun (a : Program.meth) b -> Ids.Meth.compare a.Program.m_id b.Program.m_id)
    ms

let run prog ~(roots : Program.meth list) : result =
  let reachable = ref Ids.Meth.Set.empty in
  let edges = ref 0 in
  let queue = Queue.create () in
  let push m =
    if not (Ids.Meth.Set.mem m.Program.m_id !reachable) then begin
      reachable := Ids.Meth.Set.add m.Program.m_id !reachable;
      Queue.add m queue
    end
  in
  List.iter push roots;
  while not (Queue.is_empty queue) do
    let m = Queue.take queue in
    match m.Program.m_body with
    | None -> ()
    | Some body ->
        Array.iter
          (fun blk ->
            List.iter
              (fun i ->
                let ts = dedup (targets_of_call prog i) in
                edges := !edges + List.length ts;
                List.iter push ts)
              blk.Bl.b_insns)
          body.Bl.blocks
  done;
  { reachable = !reachable; edges = !edges }
