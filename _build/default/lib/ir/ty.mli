(** Static types of the base language and the MiniJava surface language.
    [Bool] is surface-only (booleans lower to 0/1 integers per the paper's
    Section 5); [Null] is the type of the [null] literal. *)

type t =
  | Int
  | Bool  (** surface-only; lowered to {!Int} *)
  | Void
  | Null  (** type of the [null] literal; assignable to every object type *)
  | Obj of Ids.Class.t

val equal : t -> t -> bool
val is_primitive : t -> bool
val is_object : t -> bool

val lower : t -> t
(** Base-language type of a surface type: [Bool] becomes [Int]. *)

val pp : class_name:(Ids.Class.t -> string) -> Format.formatter -> t -> unit
val to_string : class_name:(Ids.Class.t -> string) -> t -> string
