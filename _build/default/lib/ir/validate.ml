(** Structural validation of base-language method bodies.

    Checks the invariants assumed by the PVPG construction algorithm
    (Appendix B.1):

    - block-kind discipline: [jump] targets are merge blocks; [if] targets
      are label blocks with exactly one predecessor (hence no critical
      edges); the entry block has no predecessors;
    - phis only at merge blocks, with exactly one argument per predecessor,
      keyed by that predecessor;
    - SSA: every variable has a single defining occurrence, and every
      (reachable) use is dominated by its definition — phi uses are checked
      at the end of the corresponding predecessor block;
    - terminators present in every block; predecessor lists consistent with
      successor terminators.

    Validation failures raise {!Invalid} with a human-readable message; the
    test-suite asserts both acceptance of generated bodies and rejection of
    hand-broken ones. *)

open Ids

exception Invalid of string

let failf fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let run (body : Bl.body) =
  let n = Array.length body.blocks in
  Array.iteri
    (fun i blk ->
      if Block.to_int blk.Bl.b_id <> i then failf "block array misindexed at %d" i)
    body.blocks;
  (* terminators and kind discipline *)
  Array.iter
    (fun blk ->
      let bid = Block.to_int blk.Bl.b_id in
      (match blk.Bl.b_term with
      | None -> failf "block b%d has no terminator" bid
      | Some (Bl.Jump t) ->
          if (Bl.block body t).b_kind <> Bl.Merge then
            failf "b%d: jump target b%d is not a merge block" bid (Block.to_int t)
      | Some (Bl.If { then_; else_; _ }) ->
          List.iter
            (fun t ->
              let tb = Bl.block body t in
              if tb.b_kind <> Bl.Label then
                failf "b%d: if target b%d is not a label block" bid (Block.to_int t);
              if List.length tb.b_preds <> 1 then
                failf "label block b%d must have exactly one predecessor"
                  (Block.to_int t))
            [ then_; else_ ]
      | Some (Bl.Return _) | Some (Bl.Throw _) -> ());
      if blk.Bl.b_kind <> Bl.Merge && blk.Bl.b_phis <> [] then
        failf "non-merge block b%d contains phis" bid;
      if blk.Bl.b_kind = Bl.Entry && blk.Bl.b_preds <> [] then
        failf "entry block b%d has predecessors" bid)
    body.blocks;
  if (Bl.block body body.entry).b_kind <> Bl.Entry then failf "entry block kind mismatch";
  (* predecessor lists match successor edges *)
  let edge_count = Array.make n 0 in
  Array.iter
    (fun blk ->
      List.iter
        (fun s ->
          let sb = Bl.block body s in
          if not (List.exists (Block.equal blk.Bl.b_id) sb.Bl.b_preds) then
            failf "edge b%d -> b%d missing from predecessor list"
              (Block.to_int blk.Bl.b_id) (Block.to_int s);
          edge_count.(Block.to_int s) <- edge_count.(Block.to_int s) + 1)
        (Bl.successors blk))
    body.blocks;
  Array.iter
    (fun blk ->
      if List.length blk.Bl.b_preds <> edge_count.(Block.to_int blk.Bl.b_id) then
        failf "predecessor list of b%d does not match incoming edges"
          (Block.to_int blk.Bl.b_id))
    body.blocks;
  (* phi argument alignment *)
  Array.iter
    (fun blk ->
      List.iter
        (fun (phi : Bl.phi) ->
          if List.length phi.phi_args <> List.length blk.Bl.b_preds then
            failf "phi %a in b%d has %d args for %d predecessors" Var.pp
              phi.phi_var
              (Block.to_int blk.Bl.b_id)
              (List.length phi.phi_args)
              (List.length blk.Bl.b_preds);
          List.iter
            (fun (p, _) ->
              if not (List.exists (Block.equal p) blk.Bl.b_preds) then
                failf "phi %a has an argument for non-predecessor b%d" Var.pp
                  phi.phi_var (Block.to_int p))
            phi.phi_args)
        blk.Bl.b_phis)
    body.blocks;
  (* single static assignment *)
  let def_block = Array.make body.var_count (-1) in
  let define v (blk : Bl.block) =
    let vi = Var.to_int v in
    if vi < 0 || vi >= body.var_count then failf "variable %a out of range" Var.pp v;
    if def_block.(vi) >= 0 then failf "variable %a defined twice" Var.pp v;
    def_block.(vi) <- Block.to_int blk.b_id
  in
  List.iter (fun p -> define p (Bl.block body body.entry)) body.params;
  Array.iter
    (fun blk ->
      List.iter (fun (phi : Bl.phi) -> define phi.phi_var blk) blk.Bl.b_phis;
      List.iter (fun i -> List.iter (fun v -> define v blk) (Bl.insn_defs i)) blk.Bl.b_insns)
    body.blocks;
  (* defs dominate uses (reachable blocks only) *)
  let dom = Dominance.compute body in
  let check_use ~(at : Bl.block) ?(before : int option) v =
    let vi = Var.to_int v in
    if def_block.(vi) < 0 then
      failf "use of undefined variable %a in b%d" Var.pp v (Block.to_int at.Bl.b_id);
    if Dominance.reachable dom at.Bl.b_id then begin
      let db = Block.of_int def_block.(vi) in
      if not (Dominance.reachable dom db) then
        failf "use of %a defined in unreachable block" Var.pp v;
      if Block.equal db at.Bl.b_id then begin
        (* same-block use: definition must appear before [before] *)
        match before with
        | None -> ()
        | Some idx ->
            let pos = ref (-1) in
            List.iteri
              (fun i ins -> if List.exists (Var.equal v) (Bl.insn_defs ins) then pos := i)
              at.Bl.b_insns;
            let is_phi = List.exists (fun (p : Bl.phi) -> Var.equal p.phi_var v) at.Bl.b_phis in
            let is_param = List.exists (Var.equal v) body.params in
            if (not is_phi) && (not is_param) && !pos >= idx then
              failf "use of %a before its definition in b%d" Var.pp v
                (Block.to_int at.Bl.b_id)
      end
      else if not (Dominance.dominates dom ~dom:db ~sub:at.Bl.b_id) then
        failf "use of %a in b%d not dominated by its definition in b%d" Var.pp v
          (Block.to_int at.Bl.b_id) (Block.to_int db)
    end
  in
  Array.iter
    (fun blk ->
      List.iteri
        (fun idx ins ->
          List.iter (fun v -> check_use ~at:blk ~before:idx v) (Bl.insn_uses ins))
        blk.Bl.b_insns;
      (match blk.Bl.b_term with
      | Some t ->
          let idx = List.length blk.Bl.b_insns in
          List.iter (fun v -> check_use ~at:blk ~before:idx v) (Bl.term_uses t)
      | None -> ());
      (* Phi argument uses are checked at the end of the predecessor block;
         a self-referential loop phi is legal. *)
      List.iter
        (fun (phi : Bl.phi) ->
          List.iter
            (fun (p, v) ->
              if Dominance.reachable dom p then check_use ~at:(Bl.block body p) v)
            phi.phi_args)
        blk.Bl.b_phis)
    body.blocks

(** [check body] is [run body] returning a [result] instead of raising. *)
let check body = match run body with () -> Ok () | exception Invalid m -> Error m
