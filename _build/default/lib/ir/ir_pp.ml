(** Pretty-printers for the base language, in a syntax close to Appendix B's
    Figure 10.  Used by the CLI (`--dump-ir`), by error messages, and by
    golden tests. *)

open Ids

let pp_arith ppf (op : Bl.arith_op) =
  Format.pp_print_string ppf
    (match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%")

let pp_expr p ppf (e : Bl.expr) =
  match e with
  | Const n -> Format.fprintf ppf "%d" n
  | Null -> Format.fprintf ppf "null"
  | New c -> Format.fprintf ppf "new %s" (Program.class_name p c)
  | NewArr (c, n) ->
      Format.fprintf ppf "new %s(len=%a)" (Program.class_name p c) Var.pp n
  | Arith (op, a, b) -> Format.fprintf ppf "%a %a %a" Var.pp a pp_arith op Var.pp b
  | AnyInt -> Format.fprintf ppf "Any"

let pp_cond p ppf (c : Bl.cond) =
  match c with
  | Cmp (`Eq, a, b) -> Format.fprintf ppf "%a == %a" Var.pp a Var.pp b
  | Cmp (`Lt, a, b) -> Format.fprintf ppf "%a < %a" Var.pp a Var.pp b
  | InstanceOf (v, t) ->
      Format.fprintf ppf "%a instanceof %s" Var.pp v (Program.class_name p t)

let pp_insn p ppf (i : Bl.insn) =
  match i with
  | Assign (v, e) -> Format.fprintf ppf "%a <- %a" Var.pp v (pp_expr p) e
  | Load { dst; recv; field } ->
      Format.fprintf ppf "%a <- %a.%s" Var.pp dst Var.pp recv
        (Program.field p field).f_name
  | Store { recv; field; src } ->
      Format.fprintf ppf "%a.%s <- %a" Var.pp recv (Program.field p field).f_name
        Var.pp src
  | LoadStatic { dst; field } ->
      Format.fprintf ppf "%a <- %s" Var.pp dst (Program.qualified_field_name p field)
  | StoreStatic { field; src } ->
      Format.fprintf ppf "%s <- %a" (Program.qualified_field_name p field) Var.pp src
  | ArrLoad { dst; arr; idx; _ } ->
      Format.fprintf ppf "%a <- %a[%a]" Var.pp dst Var.pp arr Var.pp idx
  | ArrStore { arr; idx; src; _ } ->
      Format.fprintf ppf "%a[%a] <- %a" Var.pp arr Var.pp idx Var.pp src
  | ArrLen { dst; arr } -> Format.fprintf ppf "%a <- %a.length" Var.pp dst Var.pp arr
  | Cast { dst; src; cls } ->
      Format.fprintf ppf "%a <- (%s) %a" Var.pp dst (Program.class_name p cls) Var.pp src
  | Invoke { dst; recv; target; args; virtual_ } ->
      let pp_args = Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Var.pp in
      (match recv with
      | Some r ->
          Format.fprintf ppf "%a <- %a.%s(%a)%s" Var.pp dst Var.pp r
            (Program.meth_name p target) pp_args args
            (if virtual_ then "" else " [direct]")
      | None ->
          Format.fprintf ppf "%a <- %s(%a) [static]" Var.pp dst
            (Program.qualified_name p target) pp_args args)

let pp_term _p ppf (t : Bl.terminator) =
  match t with
  | Jump b -> Format.fprintf ppf "jump %a" Block.pp b
  | If { then_; else_; _ } ->
      Format.fprintf ppf "if ... then %a else %a" Block.pp then_ Block.pp else_
  | Return None -> Format.fprintf ppf "return"
  | Return (Some v) -> Format.fprintf ppf "return %a" Var.pp v
  | Throw v -> Format.fprintf ppf "throw %a" Var.pp v

let pp_block p ppf (blk : Bl.block) =
  let kind =
    match blk.Bl.b_kind with Entry -> "entry" | Label -> "label" | Merge -> "merge"
  in
  Format.fprintf ppf "@[<v 2>%a (%s) preds=[%a]:@," Block.pp blk.Bl.b_id kind
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") Block.pp)
    blk.Bl.b_preds;
  List.iter
    (fun (phi : Bl.phi) ->
      Format.fprintf ppf "%a <- phi(%a)@," Var.pp phi.phi_var
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (b, v) -> Format.fprintf ppf "%a:%a" Block.pp b Var.pp v))
        phi.phi_args)
    blk.Bl.b_phis;
  List.iter (fun i -> Format.fprintf ppf "%a@," (pp_insn p) i) blk.Bl.b_insns;
  (match blk.Bl.b_term with
  | Some t ->
      (match t with
      | Bl.If { cond; then_; else_ } ->
          Format.fprintf ppf "if %a then %a else %a" (pp_cond p) cond Block.pp then_
            Block.pp else_
      | _ -> Format.fprintf ppf "%a" (pp_term p) t)
  | None -> Format.fprintf ppf "<unterminated>");
  Format.fprintf ppf "@]"

let pp_body p ppf (body : Bl.body) =
  Format.fprintf ppf "@[<v 2>start(%a):@,"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Var.pp)
    body.Bl.params;
  Array.iter (fun blk -> Format.fprintf ppf "%a@," (pp_block p) blk) body.Bl.blocks;
  Format.fprintf ppf "@]"

let pp_meth p ppf (m : Program.meth) =
  Format.fprintf ppf "@[<v 2>%s %s.%s:@,"
    (if m.Program.m_static then "static" else "virtual")
    (Program.class_name p m.Program.m_class)
    m.Program.m_name;
  (match m.Program.m_body with
  | Some b -> pp_body p ppf b
  | None -> Format.fprintf ppf "<no body>");
  Format.fprintf ppf "@]"

let pp_program ppf (p : Program.t) =
  Program.iter_classes p (fun c ->
      if not (Program.is_null_class c.Program.c_id) then begin
        Format.fprintf ppf "@[<v 2>class %s%s:@," c.Program.c_name
          (match c.Program.c_super with
          | Some s -> " extends " ^ Program.class_name p s
          | None -> "");
        List.iter
          (fun (f : Program.field) ->
            Format.fprintf ppf "field %s : %a@," f.f_name (Program.pp_ty p) f.f_ty)
          c.Program.c_fields;
        List.iter (fun m -> Format.fprintf ppf "%a@," (pp_meth p) m) c.Program.c_methods;
        Format.fprintf ppf "@]@,"
      end)
