lib/ir/dominance.ml: Array Bl Block Ids List
