lib/ir/program.ml: Array Bl Class Field Hashtbl Ids List Meth Printf String Ty
