lib/ir/program.mli: Bl Class Field Format Ids Meth Ty
