lib/ir/ids.ml: Format Hashtbl Int Map Set
