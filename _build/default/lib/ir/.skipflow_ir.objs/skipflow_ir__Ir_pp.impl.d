lib/ir/ir_pp.ml: Array Bl Block Format Ids List Program Var
