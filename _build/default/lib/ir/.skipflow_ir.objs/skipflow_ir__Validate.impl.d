lib/ir/validate.ml: Array Bl Block Dominance Format Ids List Var
