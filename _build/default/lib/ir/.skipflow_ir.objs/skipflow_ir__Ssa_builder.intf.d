lib/ir/ssa_builder.mli: Bl Class Field Ids Meth Ty Var
