lib/ir/bl.ml: Array Block Class Field Ids List Meth Ty Var
