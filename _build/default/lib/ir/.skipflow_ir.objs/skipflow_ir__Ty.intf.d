lib/ir/ty.mli: Format Ids
