lib/ir/ty.ml: Format Ids
