lib/ir/ssa_builder.ml: Array Bl Block Hashtbl Ids List Printf Ty Var
