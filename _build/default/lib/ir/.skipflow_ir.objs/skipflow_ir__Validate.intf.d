lib/ir/validate.mli: Bl
