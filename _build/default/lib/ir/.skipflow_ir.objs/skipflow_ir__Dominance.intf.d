lib/ir/dominance.mli: Bl Ids
