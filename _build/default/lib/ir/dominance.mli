(** Dominator trees for base-language CFGs (Cooper–Harvey–Kennedy
    iterative algorithm).  Used by {!Validate} to check that SSA
    definitions dominate their uses. *)

type t

val compute : Bl.body -> t
val reachable : t -> Ids.Block.t -> bool

val dominates : t -> dom:Ids.Block.t -> sub:Ids.Block.t -> bool
(** Reflexive dominance; both blocks must be reachable. *)

val idom : t -> Ids.Block.t -> Ids.Block.t option
(** Immediate dominator; [None] for the entry or unreachable blocks. *)
