(** Strongly-typed integer identifiers for program entities.

    Every entity in the IR (classes, methods, fields, SSA variables, basic
    blocks) is identified by a dense integer id wrapped in its own abstract
    type, so that ids of different kinds cannot be confused.  Dense ids allow
    array-backed side tables throughout the analysis. *)

module type S = sig
  type t

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit

  module Set : Set.S with type elt = t
  module Map : Map.S with type key = t
  module Tbl : Hashtbl.S with type key = t

  (** A monotone id generator. *)
  module Gen : sig
    type id = t
    type t

    val create : unit -> t

    val fresh : t -> id
    (** [fresh g] returns the next unused id; ids are dense starting at 0. *)

    val count : t -> int
    (** [count g] is the number of ids generated so far. *)
  end
end

module Make (P : sig
  val prefix : string
end) : S = struct
  type t = int

  let of_int i = i
  let to_int i = i
  let equal = Int.equal
  let compare = Int.compare
  let hash i = i
  let pp ppf i = Format.fprintf ppf "%s%d" P.prefix i

  module Key = struct
    type nonrec t = t

    let equal = equal
    let compare = compare
    let hash = hash
  end

  module Set = Set.Make (Key)
  module Map = Map.Make (Key)
  module Tbl = Hashtbl.Make (Key)

  module Gen = struct
    type id = t
    type nonrec t = { mutable next : int }

    let create () = { next = 0 }

    let fresh g =
      let id = g.next in
      g.next <- id + 1;
      id

    let count g = g.next
  end
end

(** Class (type) identifiers.  [null] is modelled as a distinguished class id
    allocated by {!Program}. *)
module Class = Make (struct
  let prefix = "C"
end)

(** Method identifiers, unique across the whole program. *)
module Meth = Make (struct
  let prefix = "M"
end)

(** Field identifiers, unique across the whole program (one per declared
    field, i.e. per (class, field-name) pair). *)
module Field = Make (struct
  let prefix = "F"
end)

(** SSA variable identifiers, unique within a method body. *)
module Var = Make (struct
  let prefix = "v"
end)

(** Basic-block identifiers, unique within a method body. *)
module Block = Make (struct
  let prefix = "b"
end)
