(** Structural validation of method bodies against the invariants the PVPG
    construction assumes (Appendix B.1): block-kind discipline (merge-only
    jump targets, single-predecessor label branch targets — hence no
    critical edges), phi placement and arity, and SSA (single definitions
    that dominate every reachable use). *)

exception Invalid of string

val run : Bl.body -> unit
(** @raise Invalid with a human-readable message on the first violation. *)

val check : Bl.body -> (unit, string) result
(** Non-raising variant of {!run}. *)
