(** Dominator-tree computation for base-language CFGs, using the iterative
    algorithm of Cooper, Harvey and Kennedy ("A Simple, Fast Dominance
    Algorithm").  Used by {!Validate} to check that SSA definitions dominate
    their uses, and available to clients that want dominance information
    about analyzed programs. *)

open Ids

type t = {
  idom : int array;  (** immediate dominator per block index; entry maps to itself; -1 = unreachable *)
  rpo_index : int array;  (** position in reverse postorder; -1 = unreachable *)
}

let compute (body : Bl.body) =
  let n = Array.length body.blocks in
  let rpo = Bl.reverse_postorder body in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i blk -> rpo_index.(Block.to_int blk.Bl.b_id) <- i) rpo;
  let idom = Array.make n (-1) in
  let entry = Block.to_int body.entry in
  idom.(entry) <- entry;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while rpo_index.(!f1) > rpo_index.(!f2) do
        f1 := idom.(!f1)
      done;
      while rpo_index.(!f2) > rpo_index.(!f1) do
        f2 := idom.(!f2)
      done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun blk ->
        let b = Block.to_int blk.Bl.b_id in
        if b <> entry then begin
          let new_idom = ref (-1) in
          List.iter
            (fun p ->
              let p = Block.to_int p in
              if idom.(p) >= 0 then
                new_idom := if !new_idom < 0 then p else intersect p !new_idom)
            blk.Bl.b_preds;
          if !new_idom >= 0 && idom.(b) <> !new_idom then begin
            idom.(b) <- !new_idom;
            changed := true
          end
        end)
      rpo
  done;
  { idom; rpo_index }

let reachable t (b : Block.t) = t.rpo_index.(Block.to_int b) >= 0

(** [dominates t ~dom ~sub] tests whether block [dom] dominates block [sub]
    (reflexively).  Both blocks must be reachable. *)
let dominates t ~(dom : Block.t) ~(sub : Block.t) =
  let dom = Block.to_int dom in
  let rec up b = if b = dom then true else if t.idom.(b) = b then false else up t.idom.(b) in
  up (Block.to_int sub)

let idom t (b : Block.t) : Block.t option =
  let i = Block.to_int b in
  if t.idom.(i) < 0 || t.idom.(i) = i then None else Some (Block.of_int t.idom.(i))
