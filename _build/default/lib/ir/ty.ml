(** Static types of the base language and of the MiniJava surface language.

    The analysis itself (per the paper, Section 5 "Boolean Values") does not
    distinguish booleans from integers: booleans are lowered to the integers
    0/1 before the analysis runs.  [Bool] therefore only appears in surface
    programs; lowering replaces it with [Int].  [Null] is the type of the
    [null] literal during type checking and never appears as a declared
    type. *)

type t =
  | Int  (** primitive integer (also carries lowered booleans) *)
  | Bool  (** surface-only boolean; lowered to {!Int} *)
  | Void  (** method return type only *)
  | Null  (** type of the [null] literal; subtype of every object type *)
  | Obj of Ids.Class.t  (** reference to an instance of a class *)

let equal a b =
  match (a, b) with
  | Int, Int | Bool, Bool | Void, Void | Null, Null -> true
  | Obj c1, Obj c2 -> Ids.Class.equal c1 c2
  | (Int | Bool | Void | Null | Obj _), _ -> false

let is_primitive = function Int | Bool -> true | Void | Null | Obj _ -> false
let is_object = function Obj _ | Null -> true | Int | Bool | Void -> false

(** [lower t] is the base-language type corresponding to surface type [t]:
    booleans become integers, everything else is unchanged. *)
let lower = function Bool -> Int | (Int | Void | Null | Obj _) as t -> t

let pp ~class_name ppf = function
  | Int -> Format.pp_print_string ppf "int"
  | Bool -> Format.pp_print_string ppf "boolean"
  | Void -> Format.pp_print_string ppf "void"
  | Null -> Format.pp_print_string ppf "null"
  | Obj c -> Format.pp_print_string ppf (class_name c)

let to_string ~class_name t = Format.asprintf "%a" (pp ~class_name) t
