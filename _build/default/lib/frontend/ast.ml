(** Untyped abstract syntax of MiniJava, as produced by {!Parser}.

    MiniJava is the Java-like surface language of this reproduction: classes
    with single inheritance, fields, static and virtual methods, [int] /
    [boolean] primitives, [if] / [while] control flow, [instanceof], and
    short-circuit boolean operators.  It is expressive enough to encode
    every code pattern the paper's evaluation relies on (guarded default
    allocation, interprocedural boolean type tests, feature flags, dead
    library clusters) while lowering exactly to the base language of
    Appendix B. *)

type pos = Lexer.pos

type ty = Tint | Tbool | Tvoid | Tclass of string | Tarr of ty

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And  (** short-circuit [&&] *)
  | Or  (** short-circuit [||] *)

type expr = { e : expr_node; pos : pos }

and expr_node =
  | Int of int
  | Bool of bool
  | Null
  | This
  | Ident of string  (** local variable, or class name in [C.m(...)] position *)
  | New of string  (** [new C()] — no constructors; fields start at defaults *)
  | NewArr of ty * expr  (** [new T\[n\]]: array allocation *)
  | Index of expr * expr  (** [a\[i\]] *)
  | Cast of ty * expr  (** [(T) e]: checked downcast/upcast *)
  | Call of expr option * string * expr list
      (** [recv.m(args)]; [None] receiver = implicit [this] *)
  | FieldGet of expr * string
  | Binop of binop * expr * expr
  | Not of expr
  | Neg of expr
  | InstanceOf of expr * string

type stmt = { s : stmt_node; spos : pos }

and stmt_node =
  | LocalDecl of ty * string * expr option
  | AssignLocal of string * expr
  | AssignField of expr * string * expr  (** [recv.f = e] *)
  | AssignIndex of expr * expr * expr  (** [a\[i\] = e] *)
  | Throw of expr  (** [throw e;] — MiniJava has no handlers (Section 5) *)
  | ExprStmt of expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr option
  | Block of stmt list

type meth_decl = {
  md_name : string;
  md_static : bool;
  md_params : (ty * string) list;
  md_ret : ty;
  md_body : stmt list;
  md_pos : pos;
}

type field_decl = { fd_ty : ty; fd_name : string; fd_static : bool; fd_pos : pos }

type class_decl = {
  cd_name : string;
  cd_super : string option;
  cd_abstract : bool;
  cd_fields : field_decl list;
  cd_meths : meth_decl list;
  cd_pos : pos;
}

type program = class_decl list
