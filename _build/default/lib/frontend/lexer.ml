(** Hand-written lexer for MiniJava.  Supports [//] line comments and
    [/* ... */] block comments (non-nesting, as in Java). *)

type pos = { line : int; col : int }

let pp_pos ppf p = Format.fprintf ppf "%d:%d" p.line p.col

exception Error of string * pos

type t = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable bol : int;  (** offset of the beginning of the current line *)
}

let create src = { src; off = 0; line = 1; bol = 0 }
let pos lx = { line = lx.line; col = lx.off - lx.bol + 1 }
let errorf lx fmt = Format.kasprintf (fun s -> raise (Error (s, pos lx))) fmt
let peek lx = if lx.off < String.length lx.src then Some lx.src.[lx.off] else None

let advance lx =
  (match peek lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.bol <- lx.off + 1
  | _ -> ());
  lx.off <- lx.off + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_ws lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws lx
  | Some '/' when lx.off + 1 < String.length lx.src && lx.src.[lx.off + 1] = '/' ->
      while peek lx <> None && peek lx <> Some '\n' do
        advance lx
      done;
      skip_ws lx
  | Some '/' when lx.off + 1 < String.length lx.src && lx.src.[lx.off + 1] = '*' ->
      advance lx;
      advance lx;
      let rec close () =
        match peek lx with
        | None -> errorf lx "unterminated block comment"
        | Some '*' when lx.off + 1 < String.length lx.src && lx.src.[lx.off + 1] = '/' ->
            advance lx;
            advance lx
        | Some _ ->
            advance lx;
            close ()
      in
      close ();
      skip_ws lx
  | _ -> ()

(** [next lx] returns the next token with the position of its first
    character. *)
let next lx : Token.t * pos =
  skip_ws lx;
  let p = pos lx in
  match peek lx with
  | None -> (Token.EOF, p)
  | Some c when is_digit c ->
      let start = lx.off in
      while (match peek lx with Some c -> is_digit c | None -> false) do
        advance lx
      done;
      let s = String.sub lx.src start (lx.off - start) in
      (match int_of_string_opt s with
      | Some n -> (Token.INT n, p)
      | None -> errorf lx "integer literal out of range: %s" s)
  | Some c when is_ident_start c ->
      let start = lx.off in
      while (match peek lx with Some c -> is_ident_char c | None -> false) do
        advance lx
      done;
      let s = String.sub lx.src start (lx.off - start) in
      ((match List.assoc_opt s Token.keyword_table with
       | Some kw -> kw
       | None -> Token.IDENT s),
       p)
  | Some c ->
      let two tok = advance lx; advance lx; (tok, p) in
      let one tok = advance lx; (tok, p) in
      let ahead = if lx.off + 1 < String.length lx.src then Some lx.src.[lx.off + 1] else None in
      (match (c, ahead) with
      | '=', Some '=' -> two Token.EQ
      | '=', _ -> one Token.ASSIGN
      | '!', Some '=' -> two Token.NE
      | '!', _ -> one Token.BANG
      | '<', Some '=' -> two Token.LE
      | '<', _ -> one Token.LT
      | '>', Some '=' -> two Token.GE
      | '>', _ -> one Token.GT
      | '&', Some '&' -> two Token.ANDAND
      | '|', Some '|' -> two Token.OROR
      | '{', _ -> one Token.LBRACE
      | '}', _ -> one Token.RBRACE
      | '(', _ -> one Token.LPAREN
      | ')', _ -> one Token.RPAREN
      | '[', _ -> one Token.LBRACKET
      | ']', _ -> one Token.RBRACKET
      | ';', _ -> one Token.SEMI
      | ',', _ -> one Token.COMMA
      | '.', _ -> one Token.DOT
      | '+', _ -> one Token.PLUS
      | '-', _ -> one Token.MINUS
      | '*', _ -> one Token.STAR
      | '/', _ -> one Token.SLASH
      | '%', _ -> one Token.PERCENT
      | _ -> errorf lx "unexpected character %C" c)

(** Tokenize the whole input (used by tests and by the parser). *)
let tokenize src =
  let lx = create src in
  let rec go acc =
    let tok, p = next lx in
    if tok = Token.EOF then List.rev ((tok, p) :: acc) else go ((tok, p) :: acc)
  in
  go []
