(** Tokens of the MiniJava surface language. *)

type t =
  | INT of int
  | IDENT of string
  | KW_CLASS
  | KW_EXTENDS
  | KW_ABSTRACT
  | KW_STATIC
  | KW_VAR
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_RETURN
  | KW_NEW
  | KW_NULL
  | KW_THIS
  | KW_TRUE
  | KW_FALSE
  | KW_INSTANCEOF
  | KW_INT
  | KW_BOOLEAN
  | KW_VOID
  | KW_THROW
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | DOT
  | ASSIGN  (** [=] *)
  | EQ  (** [==] *)
  | NE  (** [!=] *)
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | BANG  (** [!] *)
  | ANDAND
  | OROR
  | EOF

let keyword_table =
  [
    ("class", KW_CLASS);
    ("extends", KW_EXTENDS);
    ("abstract", KW_ABSTRACT);
    ("static", KW_STATIC);
    ("var", KW_VAR);
    ("if", KW_IF);
    ("else", KW_ELSE);
    ("while", KW_WHILE);
    ("return", KW_RETURN);
    ("new", KW_NEW);
    ("null", KW_NULL);
    ("this", KW_THIS);
    ("true", KW_TRUE);
    ("false", KW_FALSE);
    ("instanceof", KW_INSTANCEOF);
    ("int", KW_INT);
    ("boolean", KW_BOOLEAN);
    ("void", KW_VOID);
    ("throw", KW_THROW);
  ]

let to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW_CLASS -> "class"
  | KW_EXTENDS -> "extends"
  | KW_ABSTRACT -> "abstract"
  | KW_STATIC -> "static"
  | KW_VAR -> "var"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_RETURN -> "return"
  | KW_NEW -> "new"
  | KW_NULL -> "null"
  | KW_THIS -> "this"
  | KW_TRUE -> "true"
  | KW_FALSE -> "false"
  | KW_INSTANCEOF -> "instanceof"
  | KW_INT -> "int"
  | KW_BOOLEAN -> "boolean"
  | KW_VOID -> "void"
  | KW_THROW -> "throw"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | DOT -> "."
  | ASSIGN -> "="
  | EQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | BANG -> "!"
  | ANDAND -> "&&"
  | OROR -> "||"
  | EOF -> "<eof>"
