(** Pretty-printer from the untyped AST back to MiniJava source.

    [Parser.parse_program (to_string prog)] yields the same AST up to
    positions — a property the test-suite checks on generated programs.
    The workload generators also use this printer to materialize benchmark
    programs as [.mj] files. *)

let prec_of_binop : Ast.binop -> int = function
  | Ast.Or -> 1
  | Ast.And -> 2
  | Ast.Eq | Ast.Ne -> 3
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 4
  | Ast.Add | Ast.Sub -> 5
  | Ast.Mul | Ast.Div | Ast.Rem -> 6

let binop_str : Ast.binop -> string = function
  | Ast.Or -> "||"
  | Ast.And -> "&&"
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Rem -> "%"

let rec ty_str : Ast.ty -> string = function
  | Ast.Tint -> "int"
  | Ast.Tbool -> "boolean"
  | Ast.Tvoid -> "void"
  | Ast.Tclass c -> c
  | Ast.Tarr t -> ty_str t ^ "[]"

(* [ctx] = minimal precedence the expression must have to avoid parens *)
let rec pp_expr ctx ppf (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Int n ->
      if n < 0 then Format.fprintf ppf "(0 - %d)" (-n) else Format.fprintf ppf "%d" n
  | Ast.Bool true -> Format.pp_print_string ppf "true"
  | Ast.Bool false -> Format.pp_print_string ppf "false"
  | Ast.Null -> Format.pp_print_string ppf "null"
  | Ast.This -> Format.pp_print_string ppf "this"
  | Ast.Ident x -> Format.pp_print_string ppf x
  | Ast.New c -> Format.fprintf ppf "new %s()" c
  | Ast.NewArr (elem, len) ->
      (* 'new T[n]' with any array suffixes of T after the length *)
      let rec split = function Ast.Tarr t -> let b, k = split t in (b, k + 1) | t -> (t, 0) in
      let base, depth = split elem in
      Format.fprintf ppf "new %s[%a]%s" (ty_str base) (pp_expr 0) len
        (String.concat "" (List.init depth (fun _ -> "[]")))
  | Ast.Index (a, i) -> Format.fprintf ppf "%a[%a]" (pp_expr 8) a (pp_expr 0) i
  | Ast.Cast (ty, e) ->
      let body ppf () = Format.fprintf ppf "(%s) %a" (ty_str ty) (pp_expr 7) e in
      if ctx > 7 then Format.fprintf ppf "(%a)" body () else body ppf ()
  | Ast.Call (recv, m, args) ->
      (match recv with
      | Some r -> Format.fprintf ppf "%a.%s" (pp_expr 8) r m
      | None -> Format.pp_print_string ppf m);
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (pp_expr 0))
        args
  | Ast.FieldGet (r, f) -> Format.fprintf ppf "%a.%s" (pp_expr 8) r f
  | Ast.Binop (op, a, b) ->
      let p = prec_of_binop op in
      let body ppf () =
        Format.fprintf ppf "%a %s %a" (pp_expr p) a (binop_str op) (pp_expr (p + 1)) b
      in
      if p < ctx then Format.fprintf ppf "(%a)" body () else body ppf ()
  | Ast.Not e -> Format.fprintf ppf "!%a" (pp_expr 8) e
  | Ast.Neg e -> Format.fprintf ppf "(0 - %a)" (pp_expr 8) e
  | Ast.InstanceOf (e, c) ->
      let body ppf () = Format.fprintf ppf "%a instanceof %s" (pp_expr 5) e c in
      if ctx > 4 then Format.fprintf ppf "(%a)" body () else body ppf ()

let rec pp_stmt ppf (s : Ast.stmt) =
  match s.Ast.s with
  | Ast.LocalDecl (ty, x, None) -> Format.fprintf ppf "@[<h>%s %s;@]" (ty_str ty) x
  | Ast.LocalDecl (ty, x, Some e) ->
      Format.fprintf ppf "@[<h>%s %s = %a;@]" (ty_str ty) x (pp_expr 0) e
  | Ast.AssignLocal (x, e) -> Format.fprintf ppf "@[<h>%s = %a;@]" x (pp_expr 0) e
  | Ast.AssignField (r, f, e) ->
      Format.fprintf ppf "@[<h>%a.%s = %a;@]" (pp_expr 8) r f (pp_expr 0) e
  | Ast.AssignIndex (a, i, e) ->
      Format.fprintf ppf "@[<h>%a[%a] = %a;@]" (pp_expr 8) a (pp_expr 0) i (pp_expr 0) e
  | Ast.Throw e -> Format.fprintf ppf "@[<h>throw %a;@]" (pp_expr 0) e
  | Ast.ExprStmt e -> Format.fprintf ppf "@[<h>%a;@]" (pp_expr 0) e
  | Ast.If (c, thn, []) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}" (pp_expr 0) c pp_stmts thn
  | Ast.If (c, thn, els) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}"
        (pp_expr 0) c pp_stmts thn pp_stmts els
  | Ast.While (c, body) ->
      Format.fprintf ppf "@[<v 2>while (%a) {@,%a@]@,}" (pp_expr 0) c pp_stmts body
  | Ast.Return None -> Format.pp_print_string ppf "return;"
  | Ast.Return (Some e) -> Format.fprintf ppf "@[<h>return %a;@]" (pp_expr 0) e
  | Ast.Block body -> Format.fprintf ppf "@[<v 2>{@,%a@]@,}" pp_stmts body

and pp_stmts ppf stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf stmts

let pp_meth ppf (m : Ast.meth_decl) =
  Format.fprintf ppf "@[<v 2>%s%s %s(%a) {@,%a@]@,}"
    (if m.Ast.md_static then "static " else "")
    (ty_str m.Ast.md_ret) m.Ast.md_name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (t, x) -> Format.fprintf ppf "%s %s" (ty_str t) x))
    m.Ast.md_params pp_stmts m.Ast.md_body

let pp_class ppf (c : Ast.class_decl) =
  Format.fprintf ppf "@[<v 2>%sclass %s%s {@,"
    (if c.Ast.cd_abstract then "abstract " else "")
    c.Ast.cd_name
    (match c.Ast.cd_super with Some s -> " extends " ^ s | None -> "");
  List.iter
    (fun (f : Ast.field_decl) ->
      Format.fprintf ppf "%svar %s %s;@,"
        (if f.Ast.fd_static then "static " else "")
        (ty_str f.Ast.fd_ty) f.Ast.fd_name)
    c.Ast.cd_fields;
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_meth ppf c.Ast.cd_meths;
  Format.fprintf ppf "@]@,}@,"

let pp_program ppf (p : Ast.program) =
  Format.fprintf ppf "@[<v>";
  List.iter (fun c -> pp_class ppf c) p;
  Format.fprintf ppf "@]"

let to_string (p : Ast.program) = Format.asprintf "%a" pp_program p
