(** Typed abstract syntax, as produced by {!Typecheck}.

    Every expression carries its static type; identifiers are resolved to
    program entities (classes, methods, fields), so {!Lower} needs no name
    lookups. *)

open Skipflow_ir

type texpr = { ty : Ty.t; node : tnode; pos : Lexer.pos }

and tnode =
  | TInt of int
  | TBool of bool
  | TNull
  | TThis
  | TLocal of string
  | TNew of Ids.Class.t
  | TNewArr of Ids.Class.t * texpr  (** array class, length *)
  | TArrGet of texpr * texpr * Program.field  (** array, index, $elem field *)
  | TArrLen of texpr
  | TCast of Ids.Class.t * texpr
  | TVirtualCall of texpr * Program.meth * texpr list
      (** receiver, statically resolved target, arguments *)
  | TStaticCall of Program.meth * texpr list
  | TFieldGet of texpr * Program.field
  | TStaticGet of Program.field
  | TArith of Bl.arith_op * texpr * texpr
  | TCmp of Ast.binop * texpr * texpr  (** Eq | Ne | Lt | Le | Gt | Ge only *)
  | TInstanceOf of texpr * Ids.Class.t
  | TNot of texpr
  | TAnd of texpr * texpr
  | TOr of texpr * texpr

type tstmt =
  | TSDecl of string * Ty.t * texpr option
  | TSAssignLocal of string * texpr
  | TSAssignField of texpr * Program.field * texpr
  | TSAssignIndex of texpr * texpr * texpr * Program.field  (** arr, idx, rhs, $elem *)
  | TSAssignStatic of Program.field * texpr
  | TSThrow of texpr
  | TSExpr of texpr
  | TSIf of texpr * tstmt list * tstmt list
  | TSWhile of texpr * tstmt list
  | TSReturn of texpr option

type tmeth = {
  tm_meth : Program.meth;
  tm_params : (string * Ty.t) list;  (** excluding the receiver *)
  tm_body : tstmt list;
}

type tprogram = { tp_prog : Program.t; tp_meths : tmeth list }

(** [is_bool_expr] — expressions of static type boolean need value
    materialization (0/1) when used outside a branch condition. *)
let is_bool e = Ty.equal e.ty Ty.Bool
