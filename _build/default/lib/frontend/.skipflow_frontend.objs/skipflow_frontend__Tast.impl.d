lib/frontend/tast.ml: Ast Bl Ids Lexer Program Skipflow_ir Ty
