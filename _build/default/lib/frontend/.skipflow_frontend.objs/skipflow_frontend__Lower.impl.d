lib/frontend/lower.ml: Ast Bl Ids List Printf Program Skipflow_ir Ssa_builder Tast Ty Validate
