lib/frontend/ast_pp.ml: Ast Format List String
