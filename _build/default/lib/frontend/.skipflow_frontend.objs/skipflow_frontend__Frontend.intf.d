lib/frontend/frontend.mli: Ast Skipflow_ir
