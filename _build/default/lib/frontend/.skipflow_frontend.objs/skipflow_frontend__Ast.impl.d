lib/frontend/ast.ml: Lexer
