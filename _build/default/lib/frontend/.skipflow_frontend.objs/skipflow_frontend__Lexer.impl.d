lib/frontend/lexer.ml: Format List String Token
