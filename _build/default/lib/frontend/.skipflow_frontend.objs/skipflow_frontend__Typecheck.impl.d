lib/frontend/typecheck.ml: Ast Bl Format Hashtbl Lexer List Option Program Skipflow_ir String Tast Ty
