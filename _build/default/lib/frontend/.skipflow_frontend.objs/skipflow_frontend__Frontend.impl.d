lib/frontend/frontend.ml: Ast Format Lexer Lower Parser Printexc Program Skipflow_ir String Typecheck
