lib/frontend/token.ml:
