lib/frontend/parser.ml: Array Ast Format Lexer List Token
