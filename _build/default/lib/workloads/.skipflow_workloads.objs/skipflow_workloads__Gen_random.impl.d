lib/workloads/gen_random.ml: Array Ast Dsl Frontend Fun List Option Printf Rng Skipflow_frontend Skipflow_ir String
