lib/workloads/gen_random.mli: Skipflow_frontend Skipflow_ir
