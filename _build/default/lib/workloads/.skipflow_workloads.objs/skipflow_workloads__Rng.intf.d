lib/workloads/rng.mli:
