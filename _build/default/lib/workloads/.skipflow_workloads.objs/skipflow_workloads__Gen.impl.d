lib/workloads/gen.ml: Array Ast Ast_pp Dsl Frontend Fun List Printf Rng Skipflow_frontend Skipflow_ir
