lib/workloads/suites.ml: Char Float Gen List String
