lib/workloads/gen.mli: Skipflow_frontend Skipflow_ir
