lib/workloads/suites.mli: Gen
