lib/workloads/dsl.ml: Ast Lexer Skipflow_frontend
