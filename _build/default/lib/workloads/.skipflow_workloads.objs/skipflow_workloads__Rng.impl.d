lib/workloads/rng.ml: Int64 List
