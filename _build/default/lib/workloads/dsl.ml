(** Terse AST-construction combinators used by the workload generators.
    Positions are synthetic (generated code has no source file). *)

open Skipflow_frontend

let pos : Lexer.pos = { line = 0; col = 0 }
let e node : Ast.expr = { Ast.e = node; pos }
let s node : Ast.stmt = { Ast.s = node; spos = pos }

(* expressions *)
let int n = e (Ast.Int n)
let bool_ b = e (Ast.Bool b)
let null_ = e Ast.Null
let this = e Ast.This
let var x = e (Ast.Ident x)
let new_ c = e (Ast.New c)
let vcall recv m args = e (Ast.Call (Some recv, m, args))
let scall cls m args = e (Ast.Call (Some (var cls), m, args))
let icall m args = e (Ast.Call (None, m, args))
let fget recv f = e (Ast.FieldGet (recv, f))
let binop op a b = e (Ast.Binop (op, a, b))
let ( +: ) a b = binop Ast.Add a b
let ( -: ) a b = binop Ast.Sub a b
let ( *: ) a b = binop Ast.Mul a b
let ( %: ) a b = binop Ast.Rem a b
let ( <: ) a b = binop Ast.Lt a b
let ( >: ) a b = binop Ast.Gt a b
let ( ==: ) a b = binop Ast.Eq a b
let ( <>: ) a b = binop Ast.Ne a b
let and_ a b = binop Ast.And a b
let or_ a b = binop Ast.Or a b
let not_ a = e (Ast.Not a)
let instanceof x c = e (Ast.InstanceOf (x, c))

(* statements *)
let decl ty x init = s (Ast.LocalDecl (ty, x, init))
let assign x rhs = s (Ast.AssignLocal (x, rhs))
let fset recv f rhs = s (Ast.AssignField (recv, f, rhs))
let expr ex = s (Ast.ExprStmt ex)
let if_ c thn els = s (Ast.If (c, thn, els))
let while_ c body = s (Ast.While (c, body))
let ret ex = s (Ast.Return (Some ex))
let ret_void = s (Ast.Return None)

(* declarations *)
let meth ?(static = false) ~ret name params body : Ast.meth_decl =
  { Ast.md_name = name; md_static = static; md_params = params; md_ret = ret; md_body = body; md_pos = pos }

let field ?(static = false) ty name : Ast.field_decl =
  { Ast.fd_ty = ty; fd_name = name; fd_static = static; fd_pos = pos }

let cls ?(abstract = false) ?super name fields meths : Ast.class_decl =
  {
    Ast.cd_name = name;
    cd_super = super;
    cd_abstract = abstract;
    cd_fields = fields;
    cd_meths = meths;
    cd_pos = pos;
  }
