(** Generator of small random — but always well-typed — MiniJava programs
    for the property-test suite (soundness against the interpreter,
    precision ordering, pipeline robustness).  Recursion is ruled out by a
    global order on method names; loops are bounded; arrays, casts, static
    fields and conditional throws are exercised.  Deterministic in
    [cfg]. *)

type cfg = {
  seed : int;
  classes : int;  (** number of user classes, >= 1 *)
  meths_per_class : int;  (** fresh method names per class, >= 1 *)
  max_stmts : int;  (** statement budget per body *)
}

val default_cfg : cfg
val generate : cfg -> Skipflow_frontend.Ast.program
val compile : cfg -> Skipflow_ir.Program.t * Skipflow_ir.Program.meth
