(** The benchmark catalog: one synthetic workload per benchmark of the
    paper's Table 1 (8 DaCapo + 9 microservices + 18 Renaissance), with the
    paper's own measured numbers recorded for paper-vs-measured reports.
    See the module body for why calibrating the dead-code fraction to the
    published reduction is not circular. *)

type bench = {
  suite : string;
  name : string;
  paper_pta_kmethods : float;  (** PTA reachable methods, thousands *)
  paper_reduction_pct : float;  (** SkipFlow reachable-method reduction, % *)
  paper_pta_time_s : float;  (** PTA analysis time, seconds *)
  paper_time_delta_pct : float;  (** SkipFlow analysis-time delta, % *)
}

val dacapo : bench list
val microservices : bench list
val renaissance : bench list
val all : bench list
val suites : (string * bench list) list
val find : string -> bench option

val params_of : ?scale:float -> bench -> Gen.params
(** Generator parameters reproducing this benchmark's shape at the given
    scale (default 0.05 = 1/20 of the paper's method counts). *)
