examples/sunflow.mli:
