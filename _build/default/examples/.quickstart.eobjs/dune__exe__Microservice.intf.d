examples/microservice.mli:
