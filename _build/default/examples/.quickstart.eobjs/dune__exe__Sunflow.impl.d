examples/sunflow.ml: List Option Printf Program Skipflow_core Skipflow_frontend Skipflow_ir String
