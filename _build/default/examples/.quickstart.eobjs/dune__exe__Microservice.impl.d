examples/microservice.ml: Ids Option Printf Program Skipflow_baselines Skipflow_core Skipflow_ir Skipflow_workloads Unix
