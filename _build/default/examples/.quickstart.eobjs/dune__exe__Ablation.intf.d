examples/ablation.mli:
