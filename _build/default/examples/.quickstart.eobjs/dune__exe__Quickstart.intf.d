examples/quickstart.mli:
