examples/jdk_threads.mli:
