examples/ablation.ml: List Option Printf Skipflow_core Skipflow_ir Skipflow_workloads
