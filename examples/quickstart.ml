(* Quickstart: compile a MiniJava program, run SkipFlow, inspect results.

   Run with:  dune exec examples/quickstart.exe
*)

open Skipflow_ir
module Api = Skipflow_api
module C = Skipflow_core
module F = Skipflow_frontend

let source =
  {|
class Greeter {
  var int count;
  boolean enabled() { return false; }
  void greet() {
    this.count = this.count + 1;
  }
}
class FancyGreeter extends Greeter {
  void greet() {
    this.expensiveSetup();
  }
  void expensiveSetup() { }
}
class Main {
  static void main() {
    Greeter g = new Greeter();
    if (g.enabled()) {
      g = new FancyGreeter();
    }
    g.greet();
  }
}
|}

let () =
  (* 1. compile MiniJava source to the SSA base language *)
  let prog = F.Frontend.compile source in
  let main = Option.get (F.Frontend.main_of prog) in

  (* 2. run the analysis (Config.skipflow = predicates + primitives;
        Config.pta = the baseline the paper compares against) *)
  let result = Result.get_ok (Api.analyze_program ~config:C.Config.skipflow prog ~roots:[ main ]) in

  (* 3. inspect reachable methods *)
  print_endline "Reachable methods under SkipFlow:";
  List.iter
    (fun (m : Program.meth) ->
      Printf.printf "  %s\n" (Program.qualified_name prog m.Program.m_id))
    (C.Engine.reachable_methods result.Api.engine);

  (* 'enabled' always returns false, so SkipFlow proves that FancyGreeter
     is never created: FancyGreeter.greet and expensiveSetup are absent
     above, and the g.greet() call devirtualizes to Greeter.greet. *)
  Format.printf "@.%a@." C.Metrics.pp result.Api.metrics;

  let baseline = Result.get_ok (Api.analyze_program ~config:C.Config.pta prog ~roots:[ main ]) in
  Printf.printf "\nBaseline PTA reaches %d methods; SkipFlow reaches %d.\n"
    baseline.Api.metrics.C.Metrics.reachable_methods
    result.Api.metrics.C.Metrics.reachable_methods
