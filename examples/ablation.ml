(* Ablation: which of SkipFlow's two ingredients does the work?

   The paper's contribution combines (1) predicate edges and (2) primitive
   value tracking.  This example runs all four combinations on one
   workload.  The interplay matters: primitive tracking without predicate
   edges cannot remove any code (values are more precise but everything
   still propagates), while predicate edges without primitive tracking
   miss every feature-flag/boolean pattern — only the combination removes
   the Figure 2 class of dead code.

   Run with:  dune exec examples/ablation.exe
*)

module Api = Skipflow_api
module C = Skipflow_core
module W = Skipflow_workloads

let () =
  let bench = Option.get (W.Suites.find "pmd") in
  let prog, main = W.Gen.compile (W.Suites.params_of ~scale:0.02 bench) in
  Printf.printf "workload: '%s'-shaped, %d methods total\n\n" bench.W.Suites.name
    (Skipflow_ir.Program.num_meths prog);
  Printf.printf "%-22s %10s %8s %8s %8s %8s\n" "configuration" "reachable" "type" "null"
    "prim" "poly";
  List.iter
    (fun (name, config) ->
      let r = Result.get_ok (Api.analyze_program ~config prog ~roots:[ main ]) in
      let m = r.Api.metrics in
      Printf.printf "%-22s %10d %8d %8d %8d %8d\n" name m.C.Metrics.reachable_methods
        m.C.Metrics.type_checks m.C.Metrics.null_checks m.C.Metrics.prim_checks
        m.C.Metrics.poly_calls)
    [
      ("PTA (baseline)", C.Config.pta);
      ("+ primitives only", C.Config.primitives_only);
      ("+ predicates only", C.Config.predicates_only);
      ("SkipFlow (both)", C.Config.skipflow);
      ("SkipFlow + saturation", { C.Config.skipflow with C.Config.saturation = Some 16 });
    ]
