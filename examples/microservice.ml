(* A microservice-shaped workload compared across four analyses.

   Generates a synthetic application in the shape of the paper's
   microservice suite (framework code with feature-flagged subsystems,
   default fallbacks, polymorphic handler dispatch), then runs the whole
   precision spectrum discussed in Section 6:

       CHA  ⊒  RTA  ⊒  PTA (baseline)  ⊒  SkipFlow

   Run with:  dune exec examples/microservice.exe
*)

open Skipflow_ir
module Api = Skipflow_api
module C = Skipflow_core
module W = Skipflow_workloads
module B = Skipflow_baselines

let () =
  let bench = Option.get (W.Suites.find "quarkus-helloworld") in
  let params = W.Suites.params_of ~scale:0.02 bench in
  let prog, main = W.Gen.compile params in
  Printf.printf "generated '%s'-shaped app: %d classes, %d methods\n\n"
    bench.W.Suites.name (Program.num_classes prog) (Program.num_meths prog);
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1000.)
  in
  let cha, t_cha = time (fun () -> B.Cha.run prog ~roots:[ main ]) in
  let rta, t_rta = time (fun () -> B.Rta.run prog ~roots:[ main ]) in
  let pta, t_pta = time (fun () -> Result.get_ok (Api.analyze_program ~config:C.Config.pta prog ~roots:[ main ])) in
  let sf, t_sf = time (fun () -> Result.get_ok (Api.analyze_program ~config:C.Config.skipflow prog ~roots:[ main ])) in
  Printf.printf "%-10s %10s %12s %10s\n" "analysis" "reachable" "vs PTA" "time[ms]";
  let p = float_of_int pta.Api.metrics.C.Metrics.reachable_methods in
  let row name n t =
    Printf.printf "%-10s %10d %11.1f%% %10.1f\n" name n
      (100. *. (float_of_int n -. p) /. p)
      t
  in
  row "CHA" (Ids.Meth.Set.cardinal cha.B.Cha.reachable) t_cha;
  row "RTA" (Ids.Meth.Set.cardinal rta.B.Rta.reachable) t_rta;
  row "PTA" pta.Api.metrics.C.Metrics.reachable_methods t_pta;
  row "SkipFlow" sf.Api.metrics.C.Metrics.reachable_methods t_sf;
  Printf.printf "\ncounter metrics (PTA -> SkipFlow):\n";
  let mp = pta.Api.metrics and ms = sf.Api.metrics in
  let c name f = Printf.printf "  %-12s %6d -> %6d\n" name (f mp) (f ms) in
  c "type checks" (fun m -> m.C.Metrics.type_checks);
  c "null checks" (fun m -> m.C.Metrics.null_checks);
  c "prim checks" (fun m -> m.C.Metrics.prim_checks);
  c "poly calls" (fun m -> m.C.Metrics.poly_calls);
  c "binary size" (fun m -> m.C.Metrics.binary_size)
