(* The DaCapo Sunflow motivating example (paper, Figure 1).

   Scene.render has a Display parameter that is assigned a newly allocated
   FrameDisplay when null — but no caller ever passes null.  FrameDisplay
   transitively drags in a GUI library (stand-ins for AWT/Swing below).
   SkipFlow's predicate edge  'display == null ~~>pred new FrameDisplay()'
   never triggers, so the entire GUI cluster is proven unreachable; the
   baseline flow-insensitive PTA keeps it alive.

   Run with:  dune exec examples/sunflow.exe
   (writes sunflow_pvpg.dot with the fixed-point graph of Scene.render)
*)

open Skipflow_ir
module Api = Skipflow_api
module C = Skipflow_core
module F = Skipflow_frontend

let source =
  {|
class Display {
  void imageBegin() { }
}
class FileDisplay extends Display {
  void imageBegin() { }
}
class FrameDisplay extends Display {
  void imageBegin() { this.initToolkit(); }
  void initToolkit() { Awt.init(); }
}
class Awt {
  static void init() { Awt.loadFonts(); Swing.init(); }
  static void loadFonts() { }
}
class Swing {
  static void init() { }
}
class Scene {
  void render(Display display) {
    if (display == null) {
      display = new FrameDisplay();
    }
    BucketRenderer r = new BucketRenderer();
    r.render(display);
  }
}
class BucketRenderer {
  void render(Display display) {
    display.imageBegin();
  }
}
class Main {
  static void main() {
    Scene scene = new Scene();
    scene.render(new FileDisplay());
  }
}
|}

let reachable prog r q =
  List.exists
    (fun (m : Program.meth) -> String.equal (Program.qualified_name prog m.Program.m_id) q)
    (C.Engine.reachable_methods r.Api.engine)

let () =
  let prog = F.Frontend.compile source in
  let main = Option.get (F.Frontend.main_of prog) in
  let sf = Result.get_ok (Api.analyze_program ~config:C.Config.skipflow prog ~roots:[ main ]) in
  let pta = Result.get_ok (Api.analyze_program ~config:C.Config.pta prog ~roots:[ main ]) in
  let gui = [ "FrameDisplay.imageBegin"; "FrameDisplay.initToolkit"; "Awt.init"; "Awt.loadFonts"; "Swing.init" ] in
  Printf.printf "%-28s %-10s %-10s\n" "method" "PTA" "SkipFlow";
  List.iter
    (fun q ->
      Printf.printf "%-28s %-10s %-10s\n" q
        (if reachable prog pta q then "reachable" else "dead")
        (if reachable prog sf q then "reachable" else "dead"))
    ([ "Scene.render"; "BucketRenderer.render"; "FileDisplay.imageBegin" ] @ gui);
  Printf.printf "\nreachable methods: PTA=%d SkipFlow=%d\n"
    pta.Api.metrics.C.Metrics.reachable_methods
    sf.Api.metrics.C.Metrics.reachable_methods;
  (* dump the PVPG of Scene.render at the fixed point *)
  let scene_render =
    List.filter
      (fun (g : C.Graph.method_graph) ->
        String.equal
          (Program.qualified_name prog g.C.Graph.g_meth.Program.m_id)
          "Scene.render")
      (C.Engine.graphs sf.Api.engine)
  in
  C.Dot.write_file prog ~path:"sunflow_pvpg.dot" scene_render;
  print_endline "\nwrote sunflow_pvpg.dot (render with: dot -Tsvg sunflow_pvpg.dot)"
