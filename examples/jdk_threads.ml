(* The JDK motivating example (paper, Figure 2; PVPGs in Figures 7 and 8).

   SharedThreadContainer.onExit removes a thread from the virtual-thread
   set only if thread.isVirtual() — and isVirtual() is implemented as
   'this instanceof BaseVirtualThread'.  When the application never
   creates a virtual thread, SkipFlow propagates the constant 0 out of
   isVirtual(), the '!= 0' filtering flow stays empty, and remove() is
   never linked (the grey flows of Figure 8).

   This example prints the fixed-point value state of every flow in the
   two methods, mirroring Figure 8, and writes the PVPG as DOT.

   Run with:  dune exec examples/jdk_threads.exe
*)

open Skipflow_ir
module Api = Skipflow_api
module C = Skipflow_core
module F = Skipflow_frontend

let source ~with_virtual =
  Printf.sprintf
    {|
class Thread {
  boolean isVirtual() { return this instanceof BaseVirtualThread; }
}
class BaseVirtualThread extends Thread { }
class VirtualThread extends BaseVirtualThread { }
class ThreadSet {
  void remove(Thread t) { }
}
class SharedThreadContainer {
  var ThreadSet virtualThreads;
  void onExit(Thread thread) {
    if (thread.isVirtual()) {
      this.virtualThreads.remove(thread);
    }
  }
}
class Main {
  static void main() {
    SharedThreadContainer c = new SharedThreadContainer();
    c.virtualThreads = new ThreadSet();
    Thread t = new Thread();
    c.onExit(t);
    %s
  }
}
|}
    (if with_virtual then "c.onExit(new VirtualThread());" else "")

let dump prog engine qname =
  Program.iter_meths prog (fun m ->
      if String.equal (Program.qualified_name prog m.Program.m_id) qname then
        match C.Engine.graph_of engine m.Program.m_id with
        | None -> Printf.printf "--- %s: UNREACHABLE ---\n" qname
        | Some g ->
            Printf.printf "--- %s ---\n" qname;
            List.iter
              (fun (f : C.Flow.t) ->
                Format.printf "  %-14s %-8s VS=%a@."
                  (C.Flow.kind_name f)
                  (if f.C.Flow.enabled then "enabled" else "disabled")
                  (C.Vstate.pp_named ~class_name:(Program.class_name prog))
                  f.C.Flow.state)
              g.C.Graph.g_flows)

let run ~with_virtual =
  Printf.printf "===== %s virtual threads =====\n"
    (if with_virtual then "WITH" else "WITHOUT");
  let prog = F.Frontend.compile (source ~with_virtual) in
  let main = Option.get (F.Frontend.main_of prog) in
  let r = Result.get_ok (Api.analyze_program ~config:C.Config.skipflow prog ~roots:[ main ]) in
  dump prog r.Api.engine "SharedThreadContainer.onExit";
  dump prog r.Api.engine "Thread.isVirtual";
  let remove_reachable =
    List.exists
      (fun (m : Program.meth) ->
        String.equal (Program.qualified_name prog m.Program.m_id) "ThreadSet.remove")
      (C.Engine.reachable_methods r.Api.engine)
  in
  Printf.printf "ThreadSet.remove: %s\n\n"
    (if remove_reachable then "REACHABLE" else "proven unreachable");
  (prog, r)

let () =
  let prog, r = run ~with_virtual:false in
  let _ = run ~with_virtual:true in
  let graphs =
    List.filter
      (fun (g : C.Graph.method_graph) ->
        List.mem
          (Program.qualified_name prog g.C.Graph.g_meth.Program.m_id)
          [ "SharedThreadContainer.onExit"; "Thread.isVirtual" ])
      (C.Engine.graphs r.Api.engine)
  in
  C.Dot.write_file prog ~path:"jdk_threads_pvpg.dot" graphs;
  print_endline "wrote jdk_threads_pvpg.dot (the Figure 7/8 graph)"
