(* Concrete interpreter unit tests: arithmetic, control flow, dispatch,
   fields, halting conditions, and trace contents. *)

open Skipflow_ir
module F = Skipflow_frontend
module I = Skipflow_interp.Interp

let run ?fuel src =
  let prog = F.Frontend.compile src in
  let main = Option.get (F.Frontend.main_of prog) in
  let trace, halt = I.run ?fuel prog main in
  (prog, trace, halt)

let halted = Alcotest.testable (fun ppf h ->
    Format.pp_print_string ppf
      (match h with
      | I.Finished -> "finished"
      | I.Null_deref -> "null"
      | I.Div_by_zero -> "div0"
      | I.Out_of_fuel -> "fuel"
      | I.Index_oob -> "oob"
      | I.Class_cast -> "cast"
      | I.Uncaught -> "throw"
      | I.Interp_error m -> "interp error: " ^ m)) ( = )

let called prog trace q =
  Ids.Meth.Set.exists
    (fun m -> String.equal (Program.qualified_name prog m) q)
    trace.I.called

(* observe computed int values through a defs-trace of a method variable *)
let observed_ints prog trace qmeth =
  List.filter_map
    (fun (m, _, v) ->
      if String.equal (Program.qualified_name prog m) qmeth then
        match v with I.VInt n -> Some n | _ -> None
      else None)
    trace.I.defs

let test_arith_and_loops () =
  let _, trace, halt =
    run
      {|
class Main {
  static int fact(int n) {
    int acc = 1;
    int i = 1;
    while (i <= n) { acc = acc * i; i = i + 1; }
    return acc;
  }
  static void main() { int r = Main.fact(5); }
}
|}
  in
  Alcotest.check halted "finished" I.Finished halt;
  (* 120 = 5! must appear among the observed values of fact *)
  Alcotest.(check bool) "computed 120" true
    (List.exists (fun (_, _, v) -> v = I.VInt 120) trace.I.defs)

let test_virtual_dispatch () =
  let prog, trace, halt =
    run
      {|
class A { int m() { return 1; } }
class B extends A { int m() { return 2; } }
class Main {
  static void main() {
    A a = new B();
    int r = a.m();
  }
}
|}
  in
  Alcotest.check halted "finished" I.Finished halt;
  Alcotest.(check bool) "B.m called" true (called prog trace "B.m");
  Alcotest.(check bool) "A.m not called" false (called prog trace "A.m")

let test_fields_and_defaults () =
  let _, trace, halt =
    run
      {|
class Box { var int n; var Box link; }
class Main {
  static void main() {
    Box b = new Box();
    int before = b.n;
    b.n = 7;
    int after = b.n;
    Box l = b.link;
    if (l == null) { int isnull = 1; }
  }
}
|}
  in
  Alcotest.check halted "finished" I.Finished halt;
  Alcotest.(check bool) "default int 0 observed" true
    (List.exists (fun (_, _, v) -> v = I.VInt 0) trace.I.defs);
  Alcotest.(check bool) "written 7 observed" true
    (List.exists (fun (_, _, v) -> v = I.VInt 7) trace.I.defs)

let test_instanceof_and_boolean () =
  let prog, trace, halt =
    run
      {|
class A { }
class B extends A { }
class Main {
  static int classify(A x) {
    if (x instanceof B) { return 2; }
    if (x == null) { return 0; }
    return 1;
  }
  static void main() {
    int a = Main.classify(new B());
    int b = Main.classify(new A());
    int c = Main.classify(null);
  }
}
|}
  in
  Alcotest.check halted "finished" I.Finished halt;
  let vals = observed_ints prog trace "Main.main" in
  Alcotest.(check bool) "classified 2" true (List.mem 2 vals);
  Alcotest.(check bool) "classified 1" true (List.mem 1 vals);
  Alcotest.(check bool) "classified 0" true (List.mem 0 vals)

let test_short_circuit_semantics () =
  (* '&&' must not evaluate its right operand when the left is false —
     otherwise this dereferences null *)
  let _, _, halt =
    run
      {|
class C { var int f; }
class Main {
  static void main() {
    C c = null;
    if (c != null && c.f > 0) { int x = 1; }
    int done_ = 1;
  }
}
|}
  in
  Alcotest.check halted "no NPE thanks to short circuit" I.Finished halt

let test_null_deref_halts () =
  let _, _, halt =
    run {| class C { var int f; } class Main { static void main() { C c = null; int x = c.f; } } |}
  in
  Alcotest.check halted "null deref" I.Null_deref halt

let test_div_by_zero_halts () =
  let _, _, halt =
    run {| class Main { static void main() { int z = 0; int x = 5 / z; } } |}
  in
  Alcotest.check halted "div by zero" I.Div_by_zero halt

let test_fuel_halts () =
  let _, _, halt =
    run ~fuel:200 {| class Main { static void main() { while (true) { } } } |}
  in
  Alcotest.check halted "out of fuel" I.Out_of_fuel halt

let test_instantiated_trace () =
  let prog, trace, _ =
    run
      {|
class A { }
class B { }
class Main { static void main() { A a = new A(); A a2 = new A(); } }
|}
  in
  let names =
    Ids.Class.Set.elements trace.I.created |> List.map (Program.class_name prog)
  in
  Alcotest.(check (slist string compare)) "only A instantiated" [ "A" ] names

let test_phi_swap () =
  (* simultaneous phi evaluation: a swap in a loop must not collapse *)
  let prog, trace, halt =
    run
      {|
class Main {
  static void main() {
    int a = 1;
    int b = 2;
    int i = 0;
    while (i < 3) { int t = a; a = b; b = t; i = i + 1; }
    int r = a * 10 + b;
  }
}
|}
  in
  Alcotest.check halted "finished" I.Finished halt;
  (* after 3 swaps: a=2, b=1 -> r = 21 *)
  Alcotest.(check bool) "swap preserved" true
    (List.mem 21 (observed_ints prog trace "Main.main"))

let suite =
  ( "interp",
    [
      Alcotest.test_case "arith and loops" `Quick test_arith_and_loops;
      Alcotest.test_case "virtual dispatch" `Quick test_virtual_dispatch;
      Alcotest.test_case "fields and defaults" `Quick test_fields_and_defaults;
      Alcotest.test_case "instanceof and booleans" `Quick test_instanceof_and_boolean;
      Alcotest.test_case "short-circuit semantics" `Quick test_short_circuit_semantics;
      Alcotest.test_case "null deref halts" `Quick test_null_deref_halts;
      Alcotest.test_case "div by zero halts" `Quick test_div_by_zero_halts;
      Alcotest.test_case "fuel halts" `Quick test_fuel_halts;
      Alcotest.test_case "instantiated classes traced" `Quick test_instantiated_trace;
      Alcotest.test_case "simultaneous phi (swap loop)" `Quick test_phi_swap;
    ] )
