(* End-to-end CLI contract tests against the built binary:

   - the exit-code matrix — every [Api.error] variant maps to its
     documented code, and under [--format json] the error is a
     machine-readable JSON object on stdout with nothing on stderr;
   - pause-on-budget via [--snapshot] (exit 3) and [--resume-from]
     reaching the same result as an uninterrupted run, with corrupt
     snapshots falling back to a full solve;
   - [skipflow batch]: journal + [--resume] reproduces the uninterrupted
     summary byte for byte, and a result cache turns the second run into
     hits. *)

module K = Skipflow_checks

let exe =
  (* tests run from [_build/default/test]; fall back to PATH-relative if
     the layout ever changes *)
  let candidate = Filename.concat (Sys.getcwd ()) "../bin/skipflow.exe" in
  if Sys.file_exists candidate then candidate else "skipflow"

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let in_temp_dir f =
  let dir = Filename.temp_dir "skipflow-cli" "" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(** Run the binary; returns (exit code, stdout, stderr). *)
let run_cli ~dir args =
  let out = Filename.concat dir "cli.out"
  and err = Filename.concat dir "cli.err" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> %s"
      (Filename.quote exe)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  (code, read_file out, read_file err)

let main_src = "class Main { static void main() { int x = 1; } }\n"
let no_main_src = "class Helper { int f() { return 1; } }\n"
let bad_src = "class Main { static void main() { int x = ; } }\n"

let json_of ~ctx s =
  match K.Json.of_string (String.trim s) with
  | j -> j
  | exception K.Json.Parse_error msg ->
      Alcotest.failf "%s: stdout is not JSON (%s): %s" ctx msg s

let str_member ~ctx name j =
  match K.Json.member name j with
  | Some (K.Json.Str s) -> s
  | _ -> Alcotest.failf "%s: missing string field %S" ctx name

let int_member ~ctx name j =
  match K.Json.member name j with
  | Some (K.Json.Int n) -> n
  | _ -> Alcotest.failf "%s: missing int field %S" ctx name

(* Every error variant: documented exit code, JSON error object on
   stdout, empty stderr. *)
let test_json_error_matrix () =
  in_temp_dir (fun dir ->
      let ok_mj = Filename.concat dir "ok.mj" in
      let bad_mj = Filename.concat dir "bad.mj" in
      let lib_mj = Filename.concat dir "lib.mj" in
      write_file ok_mj main_src;
      write_file bad_mj bad_src;
      write_file lib_mj no_main_src;
      let cases =
        [ (* a directory passes cmdliner's existence check but cannot be
             read as source: Io_error *)
          ("io_error", [ "analyze"; dir; "--format"; "json" ], 2);
          ("compile_error", [ "analyze"; bad_mj; "--format"; "json" ], 2);
          ( "unknown_root",
            [ "analyze"; ok_mj; "--root"; "Nope.x"; "--format"; "json" ],
            2 );
          ("no_main", [ "analyze"; lib_mj; "--format"; "json" ], 2);
        ]
      in
      List.iter
        (fun (kind, args, expected_code) ->
          let code, out, err = run_cli ~dir args in
          Alcotest.(check int) (kind ^ ": exit code") expected_code code;
          Alcotest.(check string) (kind ^ ": stderr is empty") "" err;
          let j = json_of ~ctx:kind out in
          Alcotest.(check int)
            (kind ^ ": schema version")
            K.Json.current_schema_version
            (int_member ~ctx:kind "schema_version" j);
          match K.Json.member "error" j with
          | Some e ->
              Alcotest.(check string) (kind ^ ": kind") kind
                (str_member ~ctx:kind "kind" e);
              Alcotest.(check int)
                (kind ^ ": embedded exit code matches real one")
                expected_code
                (int_member ~ctx:kind "exit_code" e);
              Alcotest.(check bool)
                (kind ^ ": has a message")
                true
                (String.length (str_member ~ctx:kind "message" e) > 0);
              if kind = "compile_error" then (
                match K.Json.member "diags" e with
                | Some (K.Json.Arr (_ :: _)) -> ()
                | _ -> Alcotest.fail "compile_error: no diagnostics")
          | None -> Alcotest.failf "%s: no error object: %s" kind out)
        cases;
      (* the same errors in text mode land on stderr and keep the codes *)
      let code, _, err = run_cli ~dir [ "analyze"; bad_mj ] in
      Alcotest.(check int) "text compile_error exit" 2 code;
      Alcotest.(check bool) "text error on stderr" true
        (String.length err > 0);
      (* the success path: exit 0, a completed schema-versioned summary *)
      let code, out, err = run_cli ~dir [ "analyze"; ok_mj; "--format"; "json" ] in
      Alcotest.(check int) "success exit" 0 code;
      Alcotest.(check string) "success stderr empty" "" err;
      let j = json_of ~ctx:"success" out in
      Alcotest.(check string) "outcome completed" "completed"
        (str_member ~ctx:"success" "outcome" j))

(* A budget trip with [--snapshot] pauses (exit 3) and writes a resumable
   state file; [--resume-from] finishes to the same metrics as an
   uninterrupted run; a corrupted snapshot falls back to a full solve
   with a warning. *)
let test_snapshot_pause_resume_cli () =
  in_temp_dir (fun dir ->
      let big = Filename.concat dir "big.mj" in
      let code, _, _ = run_cli ~dir [ "gen"; "-o"; big; "--seed"; "11" ] in
      Alcotest.(check int) "gen exits 0" 0 code;
      let metrics_of out =
        let j = json_of ~ctx:"summary" out in
        match K.Json.member "metrics" j with
        | Some m -> K.Json.to_string m
        | None -> Alcotest.fail "summary has no metrics"
      in
      let code, straight_out, _ =
        run_cli ~dir [ "analyze"; big; "--format"; "json" ]
      in
      Alcotest.(check int) "straight run exits 0" 0 code;
      let snap = Filename.concat dir "state.snap" in
      let code, _, err =
        run_cli ~dir
          [ "analyze"; big; "--max-tasks"; "500"; "--snapshot"; snap;
            "--format"; "json" ]
      in
      Alcotest.(check int) "paused run exits 3" 3 code;
      Alcotest.(check bool) "pause reported" true
        (String.length err > 0 && Sys.file_exists snap);
      let code, resumed_out, _ =
        run_cli ~dir [ "analyze"; big; "--resume-from"; snap; "--format"; "json" ]
      in
      Alcotest.(check int) "resumed run exits 0" 0 code;
      Alcotest.(check string) "resumed metrics equal straight metrics"
        (metrics_of straight_out) (metrics_of resumed_out);
      (* truncate the snapshot: the run must warn and fall back *)
      let intact = read_file snap in
      write_file snap (String.sub intact 0 (String.length intact / 2));
      let code, fallback_out, err =
        run_cli ~dir [ "analyze"; big; "--resume-from"; snap; "--format"; "json" ]
      in
      Alcotest.(check int) "fallback run exits 0" 0 code;
      Alcotest.(check bool) "fallback warned" true
        (String.length err > 0);
      Alcotest.(check string) "fallback metrics equal straight metrics"
        (metrics_of straight_out) (metrics_of fallback_out))

(* Batch: an interrupted journal resumed with [--resume] reproduces the
   uninterrupted summary byte for byte ([--no-timings] zeroes the only
   nondeterministic field), and a warm cache serves hits. *)
let test_batch_resume_and_cache () =
  in_temp_dir (fun dir ->
      let job i src =
        let p = Filename.concat dir (Printf.sprintf "job%d.mj" i) in
        write_file p src;
        p
      in
      let j0 = job 0 main_src in
      let j1 = job 1 "class A { int f() { return 2; } }\nclass Main { static void main() { A a = new A(); int x = a.f(); } }\n" in
      let j2 = job 2 bad_src in
      let manifest = Filename.concat dir "manifest.txt" in
      write_file manifest
        (String.concat "\n"
           [ Filename.basename j0; "# a comment"; Filename.basename j1;
             Filename.basename j2; "" ]);
      let s_full = Filename.concat dir "full.json" in
      let jl_full = Filename.concat dir "full.jsonl" in
      let code, _, _ =
        run_cli ~dir
          [ "batch"; manifest; "--no-timings"; "--journal"; jl_full; "-o"; s_full ]
      in
      Alcotest.(check int) "batch with a compile error exits 2" 2 code;
      (* keep only the first journal line, as if the run was killed *)
      let lines = String.split_on_char '\n' (read_file jl_full) in
      let jl_part = Filename.concat dir "part.jsonl" in
      write_file jl_part (List.hd lines ^ "\n");
      let s_resumed = Filename.concat dir "resumed.json" in
      let code, _, _ =
        run_cli ~dir
          [ "batch"; manifest; "--no-timings"; "--journal"; jl_part;
            "--resume"; "-o"; s_resumed ]
      in
      Alcotest.(check int) "resumed batch exits 2" 2 code;
      Alcotest.(check string) "resumed summary is byte-identical"
        (read_file s_full) (read_file s_resumed);
      (* a torn trailing journal line is skipped, not fatal *)
      let jl_torn = Filename.concat dir "torn.jsonl" in
      write_file jl_torn (List.hd lines ^ "\n{\"schema_version\":1,\"rec");
      let s_torn = Filename.concat dir "torn.json" in
      let code, _, _ =
        run_cli ~dir
          [ "batch"; manifest; "--no-timings"; "--journal"; jl_torn;
            "--resume"; "-o"; s_torn ]
      in
      Alcotest.(check int) "torn-journal batch exits 2" 2 code;
      Alcotest.(check string) "torn-journal summary matches"
        (read_file s_full) (read_file s_torn);
      (* cache: a second identical run serves the successful jobs as hits *)
      let cache = Filename.concat dir "cache" in
      let s_cold = Filename.concat dir "cold.json" in
      let s_warm = Filename.concat dir "warm.json" in
      ignore
        (run_cli ~dir
           [ "batch"; manifest; "--no-timings"; "--cache"; cache; "-o"; s_cold ]);
      ignore
        (run_cli ~dir
           [ "batch"; manifest; "--no-timings"; "--cache"; cache; "-o"; s_warm ]);
      let hits out =
        int_member ~ctx:"summary" "cache_hits" (json_of ~ctx:"summary" (read_file out))
      in
      Alcotest.(check int) "cold run has no hits" 0 (hits s_cold);
      Alcotest.(check int) "warm run hits both successful jobs" 2 (hits s_warm);
      (* the key is scoped by roots and engine mode: reusing the cache
         dir under a different --root or --engine must never hit — the
         cached reachable sets were computed from other roots *)
      let s_rooted = Filename.concat dir "rooted.json" in
      ignore
        (run_cli ~dir
           [ "batch"; manifest; "--no-timings"; "--cache"; cache; "--root";
             "Main.main"; "-o"; s_rooted ]);
      Alcotest.(check int) "explicit --root shares no entries" 0
        (hits s_rooted);
      let s_ref = Filename.concat dir "ref.json" in
      ignore
        (run_cli ~dir
           [ "batch"; manifest; "--no-timings"; "--cache"; cache; "--engine";
             "ref"; "-o"; s_ref ]);
      Alcotest.(check int) "--engine ref shares no entries" 0 (hits s_ref);
      (* pretty-printed summaries are one field per line: dropping the
         cache-bookkeeping lines must leave identical analysis results *)
      let scrub path =
        read_file path
        |> String.split_on_char '\n'
        |> List.filter (fun l ->
               let has needle =
                 let rec go i =
                   i + String.length needle <= String.length l
                   && (String.sub l i (String.length needle) = needle
                      || go (i + 1))
                 in
                 go 0
               in
               not (has "\"cache\"" || has "\"attempts\"" || has "\"cache_hits\""))
        |> String.concat "\n"
      in
      Alcotest.(check string) "warm summary matches cold except cache fields"
        (scrub s_cold) (scrub s_warm))

(* Fault isolation: a job that would exceed its per-job watchdog is
   killed and recorded; the batch itself survives and reports it. *)
let test_batch_watchdog () =
  in_temp_dir (fun dir ->
      let big = Filename.concat dir "big.mj" in
      (* the benchmark-sized program takes ~500ms to analyze — an order
         of magnitude past the 50ms watchdog, so the kill is reliable *)
      let code, _, _ = run_cli ~dir [ "gen"; "--bench"; "sunflow"; "-o"; big ] in
      Alcotest.(check int) "gen exits 0" 0 code;
      let quick = Filename.concat dir "quick.mj" in
      write_file quick main_src;
      let manifest = Filename.concat dir "manifest.txt" in
      write_file manifest
        (Filename.basename quick ^ "\n" ^ Filename.basename big ^ "\n");
      let out = Filename.concat dir "summary.json" in
      let qdir = Filename.concat dir "quarantine" in
      let code, _, _ =
        run_cli ~dir
          [ "batch"; manifest; "--no-timings"; "--timeout-per-job"; "0.05";
            "--quarantine"; qdir; "-o"; out ]
      in
      Alcotest.(check int) "batch with a killed job exits 1" 1 code;
      let j = json_of ~ctx:"watchdog" (read_file out) in
      Alcotest.(check int) "quick job still succeeded" 1
        (int_member ~ctx:"watchdog" "ok" j);
      Alcotest.(check int) "timed-out job quarantined" 1
        (int_member ~ctx:"watchdog" "quarantined" j);
      Alcotest.(check bool) "input copied for triage" true
        (Sys.file_exists (Filename.concat qdir ("1-" ^ Filename.basename big))))

(* [skipflow serve] end to end through the binary: a straight session's
   response stream, versus one killed with SIGKILL mid-session and
   restarted with --resume — the re-fed stream must come back byte for
   byte.  The transport, snapshotting, journaling and replay all cross
   the real process boundary here (the in-process variants live in
   t_serve). *)
let test_serve_kill9_resume_cli () =
  in_temp_dir (fun dir ->
      let src = Filename.concat dir "p.mj" in
      let base =
        "class Main { static void main() { Live l = new Live(); int x = \
         l.go(); } }\n\
         class Live { int go() { return 1; } }\n\
         class Dead { int never() { return 2; } }\n"
      in
      write_file src base;
      let edited = base ^ "class Extra { int pad() { return 9; } }\n" in
      let req fields = K.Json.to_compact_string (K.Json.Obj fields) in
      let requests =
        String.concat "\n"
          [ req [ ("op", K.Json.Str "health"); ("id", K.Json.Int 1) ];
            req [ ("op", K.Json.Str "analyze"); ("id", K.Json.Int 2) ];
            req
              [ ("op", K.Json.Str "edit"); ("id", K.Json.Int 3);
                ("source", K.Json.Str edited);
              ];
            req [ ("op", K.Json.Str "analyze"); ("id", K.Json.Int 4) ];
            req
              [ ("op", K.Json.Str "edit"); ("id", K.Json.Int 5);
                ("source", K.Json.Str base);
              ];
            req [ ("op", K.Json.Str "health"); ("id", K.Json.Int 6) ];
          ]
        ^ "\n"
      in
      let reqs = Filename.concat dir "requests.jsonl" in
      write_file reqs requests;
      let sh fmt = Printf.ksprintf (fun cmd -> Sys.command cmd) fmt in
      let straight = Filename.concat dir "straight.out" in
      let code =
        sh "%s serve %s --state %s --no-timings < %s > %s 2>/dev/null"
          (Filename.quote exe) (Filename.quote src)
          (Filename.quote (Filename.concat dir "sA"))
          (Filename.quote reqs) (Filename.quote straight)
      in
      Alcotest.(check int) "straight session exits 0" 0 code;
      (* feed three requests, then hang — the watchdog SIGKILLs the
         daemon mid-session, after snapshots and journal hit disk *)
      let killed =
        sh
          "( head -3 %s; sleep 30 ) | timeout -s KILL 4 %s serve %s --state \
           %s --no-timings > /dev/null 2>&1"
          (Filename.quote reqs) (Filename.quote exe) (Filename.quote src)
          (Filename.quote (Filename.concat dir "sB"))
      in
      Alcotest.(check int) "daemon died by SIGKILL" 137 killed;
      let resumed = Filename.concat dir "resumed.out" in
      let code =
        sh "%s serve --state %s --resume --no-timings < %s > %s 2>/dev/null"
          (Filename.quote exe)
          (Filename.quote (Filename.concat dir "sB"))
          (Filename.quote reqs) (Filename.quote resumed)
      in
      Alcotest.(check int) "resumed session exits 0" 0 code;
      Alcotest.(check string) "replayed responses byte-identical"
        (read_file straight) (read_file resumed))

(* [skipflow batch] under SIGTERM: the driver kills the in-flight worker,
   flushes the journal, and exits 143; a --resume run then finishes only
   the remaining jobs and reaches a complete summary. *)
let test_batch_sigterm_resume () =
  in_temp_dir (fun dir ->
      let big = Filename.concat dir "big.mj" in
      let code, _, _ = run_cli ~dir [ "gen"; "--bench"; "sunflow"; "-o"; big ] in
      Alcotest.(check int) "gen exits 0" 0 code;
      let n_jobs = 8 in
      let manifest = Filename.concat dir "manifest.txt" in
      write_file manifest
        (String.concat ""
           (List.init n_jobs (fun i ->
                let p = Filename.concat dir (Printf.sprintf "job%d.mj" i) in
                write_file p (read_file big);
                Filename.basename p ^ "\n")));
      let journal = Filename.concat dir "journal.jsonl" in
      let code_file = Filename.concat dir "term.code" in
      (* each job takes ~500ms, so at one second in the batch is mid-run;
         a slow machine only makes the race safer *)
      let script =
        Printf.sprintf
          "%s batch %s --journal %s --no-timings -o %s >/dev/null 2>&1 &\n\
           pid=$!\n\
           sleep 1\n\
           kill -TERM $pid\n\
           wait $pid\n\
           echo $? > %s\n"
          (Filename.quote exe) (Filename.quote manifest)
          (Filename.quote journal)
          (Filename.quote (Filename.concat dir "ignored.json"))
          (Filename.quote code_file)
      in
      let sh_file = Filename.concat dir "interrupt.sh" in
      write_file sh_file script;
      let rc = Sys.command (Printf.sprintf "sh %s" (Filename.quote sh_file)) in
      Alcotest.(check int) "interrupt script ran" 0 rc;
      Alcotest.(check string) "batch exited 143 on SIGTERM" "143"
        (String.trim (read_file code_file));
      (* the flushed journal parses line by line *)
      let journaled =
        List.filter (fun l -> String.trim l <> "")
          (String.split_on_char '\n' (read_file journal))
      in
      List.iter (fun l -> ignore (json_of ~ctx:"journal line" l)) journaled;
      Alcotest.(check bool) "interrupt landed mid-batch" true
        (List.length journaled < n_jobs);
      (* no stray worker temp files survive the interrupt *)
      Array.iter
        (fun name ->
          if Filename.check_suffix name ".tmp" then
            Alcotest.failf "stray temp file after interrupt: %s" name)
        (Sys.readdir dir);
      let out = Filename.concat dir "summary.json" in
      let code, _, _ =
        run_cli ~dir
          [ "batch"; manifest; "--journal"; journal; "--resume";
            "--no-timings"; "-o"; out ]
      in
      Alcotest.(check int) "resume completes" 0 code;
      let j = json_of ~ctx:"resume summary" (read_file out) in
      Alcotest.(check int) "all jobs accounted for" n_jobs
        (int_member ~ctx:"resume summary" "jobs" j);
      Alcotest.(check int) "all jobs ok" n_jobs
        (int_member ~ctx:"resume summary" "ok" j))

let suite =
  ( "cli",
    [
      Alcotest.test_case "json error matrix and exit codes" `Quick
        test_json_error_matrix;
      Alcotest.test_case "snapshot pause / resume / corrupt fallback" `Quick
        test_snapshot_pause_resume_cli;
      Alcotest.test_case "batch journal resume and result cache" `Quick
        test_batch_resume_and_cache;
      Alcotest.test_case "batch watchdog contains a slow job" `Quick
        test_batch_watchdog;
      Alcotest.test_case "serve: kill -9 and resume replay byte-identically"
        `Quick test_serve_kill9_resume_cli;
      Alcotest.test_case "batch: SIGTERM flushes the journal and resumes"
        `Quick test_batch_sigterm_resume;
    ] )
