(* Tests for the primitive-value lattice ℙ (paper, Figure 6), the
   interval domain, and the reduced product constants × intervals:
   qcheck lattice laws (join/meet commutativity, associativity,
   idempotence, leq-compatibility), reduce canonicality, and
   ascending-chain termination of widening. *)

module P = Skipflow_core.Pval
module I = Skipflow_core.Interval
module Pr = Skipflow_core.Prim

let pv = Alcotest.testable P.pp P.equal

let test_join_table () =
  Alcotest.check pv "bot ∨ c" (P.Const 3) (P.join P.Bot (P.Const 3));
  Alcotest.check pv "c ∨ bot" (P.Const 3) (P.join (P.Const 3) P.Bot);
  Alcotest.check pv "c ∨ c" (P.Const 3) (P.join (P.Const 3) (P.Const 3));
  (* the join of two different constants is immediately Any (Section 3) *)
  Alcotest.check pv "c ∨ c'" P.Top (P.join (P.Const 3) (P.Const 4));
  Alcotest.check pv "top absorbs" P.Top (P.join P.Top (P.Const 3));
  Alcotest.check pv "bot ∨ bot" P.Bot (P.join P.Bot P.Bot)

let test_leq () =
  Alcotest.(check bool) "bot ≤ c" true (P.leq P.Bot (P.Const 0));
  Alcotest.(check bool) "c ≤ top" true (P.leq (P.Const 0) P.Top);
  Alcotest.(check bool) "c ≤ c" true (P.leq (P.Const 0) (P.Const 0));
  Alcotest.(check bool) "c ≤ c' fails" false (P.leq (P.Const 0) (P.Const 1));
  Alcotest.(check bool) "top ≤ c fails" false (P.leq P.Top (P.Const 1))

let gen =
  QCheck.Gen.(
    frequency
      [ (1, return P.Bot); (4, map (fun n -> P.Const n) (int_range (-5) 5)); (1, return P.Top) ])

let arb = QCheck.make ~print:(Format.asprintf "%a" P.pp) gen
let prop name g f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:500 g f)

let props =
  [
    prop "join comm" (QCheck.pair arb arb) (fun (a, b) -> P.equal (P.join a b) (P.join b a));
    prop "join assoc" (QCheck.triple arb arb arb) (fun (a, b, c) ->
        P.equal (P.join a (P.join b c)) (P.join (P.join a b) c));
    prop "join idem" arb (fun a -> P.equal (P.join a a) a);
    prop "leq defines join" (QCheck.pair arb arb) (fun (a, b) ->
        P.leq a b = P.equal (P.join a b) b);
    prop "bot is bottom" arb (fun a -> P.leq P.Bot a);
    prop "top is top" arb (fun a -> P.leq a P.Top);
    prop "lattice height ≤ 3"
      (QCheck.triple arb arb arb)
      (fun (a, b, c) ->
        (* any strictly increasing chain has length at most 3 *)
        not (P.leq a b && P.leq b c && (not (P.equal a b)) && not (P.equal b c))
        || (P.equal a P.Bot && P.equal c P.Top));
  ]

(* ----------------------- interval lattice laws ----------------------- *)

let bnd = QCheck.Gen.(oneof [ return None; map Option.some (int_range (-8) 8) ])

let gen_itv =
  QCheck.Gen.(
    frequency [ (1, return I.bot); (6, map2 (fun lo hi -> I.of_bounds lo hi) bnd bnd) ])

let arb_itv = QCheck.make ~print:(Format.asprintf "%a" I.pp) gen_itv

let gen_prim =
  QCheck.Gen.(
    frequency
      [
        (1, return Pr.bot);
        (1, return Pr.top);
        (3, map Pr.const (int_range (-8) 8));
        (4, map Pr.of_interval gen_itv);
      ])

let arb_prim = QCheck.make ~print:(Format.asprintf "%a" Pr.pp) gen_prim

let arb_binop =
  QCheck.make QCheck.Gen.(oneofl [ Pr.Add; Pr.Sub; Pr.Mul; Pr.Div; Pr.Rem ])

let lattice_props name arb ~equal ~leq ~join ~meet ~bot ~top =
  let n s = Printf.sprintf "%s %s" name s in
  [
    prop (n "join comm") (QCheck.pair arb arb) (fun (a, b) ->
        equal (join a b) (join b a));
    prop (n "meet comm") (QCheck.pair arb arb) (fun (a, b) ->
        equal (meet a b) (meet b a));
    prop (n "join assoc") (QCheck.triple arb arb arb) (fun (a, b, c) ->
        equal (join a (join b c)) (join (join a b) c));
    prop (n "meet assoc") (QCheck.triple arb arb arb) (fun (a, b, c) ->
        equal (meet a (meet b c)) (meet (meet a b) c));
    prop (n "join idem") arb (fun a -> equal (join a a) a);
    prop (n "meet idem") arb (fun a -> equal (meet a a) a);
    prop (n "leq defines join") (QCheck.pair arb arb) (fun (a, b) ->
        leq a b = equal (join a b) b);
    prop (n "leq defines meet") (QCheck.pair arb arb) (fun (a, b) ->
        leq a b = equal (meet a b) a);
    prop (n "meet lower bound") (QCheck.pair arb arb) (fun (a, b) ->
        let m = meet a b in
        leq m a && leq m b);
    prop (n "bot is bottom") arb (fun a -> leq bot a);
    prop (n "top is top") arb (fun a -> leq a top);
  ]

let interval_props =
  lattice_props "interval" arb_itv ~equal:I.equal ~leq:I.leq ~join:I.join
    ~meet:I.meet ~bot:I.bot ~top:I.top
  @ [
      prop "interval widen upper-bounds both" (QCheck.pair arb_itv arb_itv)
        (fun (a, b) ->
          let w = I.widen a b in
          I.leq a w && I.leq b w);
      (* ascending-chain termination: widening any chain of joins
         stabilizes after finitely many steps (4 suffice for intervals:
         each unstable bound jumps to its infinity exactly once) *)
      prop "interval widen chain terminates"
        (QCheck.list_of_size (QCheck.Gen.return 12) arb_itv)
        (fun steps ->
          let x = List.fold_left (fun acc s -> I.widen acc (I.join acc s)) I.bot steps in
          List.for_all (fun s -> I.equal (I.widen x (I.join x s)) x)
            (List.concat [ steps; steps ]));
      prop "interval arith soundness"
        (QCheck.pair arb_binop
           (QCheck.pair
              (QCheck.pair (QCheck.int_range (-6) 6) (QCheck.int_range 0 3))
              (QCheck.pair (QCheck.int_range (-6) 6) (QCheck.int_range 0 3))))
        (fun (op, ((xl, xw), (yl, yw))) ->
          let ia = I.of_bounds (Some xl) (Some (xl + xw)) in
          let ib = I.of_bounds (Some yl) (Some (yl + yw)) in
          let f =
            match op with
            | Pr.Add -> I.add
            | Pr.Sub -> I.sub
            | Pr.Mul -> I.mul
            | Pr.Div -> I.div
            | Pr.Rem -> I.rem
          in
          let r = f ia ib in
          List.for_all
            (fun x ->
              List.for_all
                (fun y ->
                  match op with
                  | Pr.Add -> I.mem (x + y) r
                  | Pr.Sub -> I.mem (x - y) r
                  | Pr.Mul -> I.mem (x * y) r
                  | Pr.Div -> y = 0 || I.mem (x / y) r
                  | Pr.Rem -> y = 0 || I.mem (x mod y) r)
                (List.init (yw + 1) (fun i -> yl + i)))
            (List.init (xw + 1) (fun i -> xl + i)));
    ]

let prim_props =
  lattice_props "prim" arb_prim ~equal:Pr.equal ~leq:Pr.leq ~join:Pr.join
    ~meet:Pr.meet ~bot:Pr.bot ~top:Pr.top
  @ [
      (* reduce canonicality: every constructed value is in canonical
         form — bot is {Bot,Bot}; a singleton interval forces the
         constant; a constant forces the singleton interval *)
      prop "prim reduce canonical" arb_prim (fun p ->
          if Pr.is_bot p then P.is_bot p.Pr.c && I.is_bot p.Pr.itv
          else
            match (p.Pr.c, I.as_const p.Pr.itv) with
            | P.Const n, Some m -> n = m
            | P.Const _, None -> false
            | P.Top, Some _ -> false (* singleton must have reduced to Const *)
            | P.Top, None -> true
            | P.Bot, _ -> false);
      prop "prim reduce idempotent" arb_prim (fun p ->
          Pr.equal (Pr.reduce p.Pr.c p.Pr.itv) p);
      prop "prim widen upper-bounds both" (QCheck.pair arb_prim arb_prim)
        (fun (a, b) ->
          let w = Pr.widen a b in
          Pr.leq a w && Pr.leq b w);
      prop "prim widen chain terminates"
        (QCheck.list_of_size (QCheck.Gen.return 12) arb_prim)
        (fun steps ->
          let x =
            List.fold_left (fun acc s -> Pr.widen acc (Pr.join acc s)) Pr.bot steps
          in
          List.for_all (fun s -> Pr.equal (Pr.widen x (Pr.join x s)) x)
            (List.concat [ steps; steps ]));
      prop "prim arith soundness on constants"
        (QCheck.triple arb_binop (QCheck.int_range (-9) 9) (QCheck.int_range (-9) 9))
        (fun (op, x, y) ->
          let r = Pr.arith op (Pr.const x) (Pr.const y) in
          match op with
          | Pr.Add -> Pr.mem (x + y) r
          | Pr.Sub -> Pr.mem (x - y) r
          | Pr.Mul -> Pr.mem (x * y) r
          | Pr.Div -> if y = 0 then Pr.is_bot r else Pr.mem (x / y) r
          | Pr.Rem -> if y = 0 then Pr.is_bot r else Pr.mem (x mod y) r);
      prop "prim narrow sound"
        (QCheck.pair arb_prim arb_prim)
        (fun (l, r) ->
          (* every member of l that can satisfy < against some member of r
             survives narrowing (spot-check small witnesses) *)
          let nl = Pr.narrow Pr.Lt l r in
          List.for_all
            (fun x ->
              (not (Pr.mem x l))
              || not (List.exists (fun y -> Pr.mem y r && x < y) (List.init 17 (fun i -> i - 8)))
              || Pr.mem x nl)
            (List.init 17 (fun i -> i - 8)));
    ]

let suite =
  ( "pval",
    [
      Alcotest.test_case "join table" `Quick test_join_table;
      Alcotest.test_case "leq" `Quick test_leq;
    ]
    @ props @ interval_props @ prim_props )
