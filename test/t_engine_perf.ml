(* Differential tests for the deduplicated worklist engine against the
   retained reference engine (the pre-dedup boxed FIFO):

   - both modes must reach bit-identical fixed points — same reachable
     set and [Vstate.equal] state/raw plus the same enabled bit on every
     flow — across a fuzz corpus and both the SkipFlow and PTA configs;
   - deduplication must pay: [tasks_processed] strictly decreases (and
     by at least 2x on the benchmark-sized workload), with the collapsed
     emits accounted in the [dedup_*] counters;
   - degradation under a task budget still only ever widens: the dedup
     engine's budget-tripped reachable set is a superset of the precise
     one. *)

open Skipflow_ir
module C = Skipflow_core
module W = Skipflow_workloads
module F = Skipflow_frontend

let run ~mode ?config prog main = C.Analysis.run ?config ~mode prog ~roots:[ main ]

let reachable_ids e =
  List.fold_left
    (fun acc (m : Program.meth) -> Ids.Meth.Set.add m.Program.m_id acc)
    Ids.Meth.Set.empty (C.Engine.reachable_methods e)

(* Flow-by-flow fixed-point comparison.  Per-method flow lists are in
   construction order, which is deterministic for a given method, so
   zipping the two runs' graphs lines the flows up 1:1. *)
let check_same_fixed_point ~ctx (a : C.Analysis.result) (b : C.Analysis.result) =
  let ea = a.C.Analysis.engine and eb = b.C.Analysis.engine in
  if not (Ids.Meth.Set.equal (reachable_ids ea) (reachable_ids eb)) then
    Alcotest.failf "%s: reachable sets differ" ctx;
  List.iter
    (fun (ga : C.Graph.method_graph) ->
      let mid = ga.C.Graph.g_meth.Program.m_id in
      match C.Engine.graph_of eb mid with
      | None -> Alcotest.failf "%s: method missing in reference run" ctx
      | Some gb ->
          let fa = ga.C.Graph.g_flows and fb = gb.C.Graph.g_flows in
          if List.length fa <> List.length fb then
            Alcotest.failf "%s: flow counts differ for a method" ctx;
          List.iter2
            (fun (x : C.Flow.t) (y : C.Flow.t) ->
              if x.C.Flow.enabled <> y.C.Flow.enabled then
                Alcotest.failf "%s: enabled bit differs on flow %d/%d" ctx
                  x.C.Flow.id y.C.Flow.id;
              if not (C.Vstate.equal x.C.Flow.state y.C.Flow.state) then
                Alcotest.failf "%s: state differs on flow %d/%d: %a vs %a" ctx
                  x.C.Flow.id y.C.Flow.id C.Vstate.pp x.C.Flow.state C.Vstate.pp
                  y.C.Flow.state;
              if not (C.Vstate.equal x.C.Flow.raw y.C.Flow.raw) then
                Alcotest.failf "%s: raw state differs on flow %d/%d" ctx
                  x.C.Flow.id y.C.Flow.id)
            fa fb)
    (C.Engine.graphs ea)

let test_dedup_matches_reference_fuzz () =
  for seed = 0 to 11 do
    let prog, main =
      W.Gen_random.compile
        {
          W.Gen_random.seed;
          classes = 3 + (seed mod 7);
          meths_per_class = 1 + (seed mod 3);
          max_stmts = 4 + (seed mod 5);
        }
    in
    List.iter
      (fun (name, config) ->
        let d = run ~mode:C.Engine.Dedup ~config prog main in
        let r = run ~mode:C.Engine.Reference ~config prog main in
        check_same_fixed_point ~ctx:(Printf.sprintf "seed %d, %s" seed name) d r)
      [ ("skipflow", C.Config.skipflow); ("pta", C.Config.pta) ]
  done

let example_srcs =
  [
    ( "jdk-threads",
      {|
class Thread { boolean isVirtual() { return this instanceof BaseVirtualThread; } }
class BaseVirtualThread extends Thread { }
class Set { void remove(Thread t) { } }
class Container {
  var Set virtualThreads;
  void onExit(Thread thread) {
    if (thread.isVirtual()) { this.virtualThreads.remove(thread); }
  }
}
class Main {
  static void main() {
    Container c = new Container();
    c.virtualThreads = new Set();
    c.onExit(new Thread());
    c.onExit(new BaseVirtualThread());
  }
}
|}
    );
    ( "dispatch-loop",
      {|
class A { int f() { return 1; } }
class B extends A { int f() { return 2; } }
class C extends A { int f() { return 3; } }
class Main {
  static void main() {
    A a = new B();
    int i = 0;
    int s = 0;
    while (i < 10) {
      if (i == 5) { a = new C(); }
      s = s + a.f();
      i = i + 1;
    }
  }
}
|}
    );
  ]

let test_dedup_processes_fewer_tasks () =
  let check ctx prog main =
    let d = run ~mode:C.Engine.Dedup prog main in
    let r = run ~mode:C.Engine.Reference prog main in
    check_same_fixed_point ~ctx d r;
    let td = (C.Engine.stats d.C.Analysis.engine).C.Engine.tasks_processed
    and tr = (C.Engine.stats r.C.Analysis.engine).C.Engine.tasks_processed in
    if not (td < tr) then
      Alcotest.failf "%s: dedup drained %d tasks, reference %d" ctx td tr;
    Alcotest.(check bool)
      (ctx ^ ": collapsed emits recorded") true
      (C.Engine.dedup_hits (C.Engine.stats d.C.Analysis.engine) > 0);
    Alcotest.(check int)
      (ctx ^ ": reference mode records no dedup hits") 0
      (C.Engine.dedup_hits (C.Engine.stats r.C.Analysis.engine));
    (td, tr)
  in
  List.iter
    (fun (name, src) ->
      let prog = F.Frontend.compile src in
      let main = Option.get (F.Frontend.main_of prog) in
      ignore (check name prog main))
    example_srcs;
  (* on the benchmark-sized generated workload the reduction must be the
     committed >= 2x (this ratio is deterministic, not a timing) *)
  let prog, main =
    W.Gen.compile { W.Gen.default_params with W.Gen.live_units = 6; dead_units = 2 }
  in
  let td, tr = check "workload" prog main in
  if tr < 2 * td then
    Alcotest.failf "workload: task reduction below 2x (dedup %d, reference %d)" td tr

let test_dedup_budget_superset () =
  let prog, main =
    W.Gen.compile { W.Gen.default_params with W.Gen.live_units = 6; dead_units = 2 }
  in
  let precise = run ~mode:C.Engine.Dedup prog main in
  let config =
    { C.Config.skipflow with C.Config.budget = C.Budget.make ~max_tasks:400 () }
  in
  let degraded = run ~mode:C.Engine.Dedup ~config prog main in
  Alcotest.(check bool) "budget tripped" true
    degraded.C.Analysis.metrics.C.Metrics.degraded;
  (match C.Verify.run degraded.C.Analysis.engine with
  | [] -> ()
  | vs -> Alcotest.failf "degraded dedup run fails certification: %s" (List.hd vs));
  Alcotest.(check bool) "degradation only adds reachable methods" true
    (Ids.Meth.Set.subset
       (reachable_ids precise.C.Analysis.engine)
       (reachable_ids degraded.C.Analysis.engine))

(* -------------------- parallel solver equality ------------------------ *)

(* The correctness bar for the sharded solver ([Config.jobs > 1]): the
   fixed point must equal the sequential engine's flow by flow — same
   reachable set, same enabled bit, same state and raw on every flow —
   for every job count, both primitive lattices, and both the SkipFlow
   and PTA feature sets.  Scheduling (who drains what, message
   interleavings) is free to vary; results are not. *)

let par_configs =
  [
    ("skipflow", C.Config.skipflow);
    ("skipflow/product", { C.Config.skipflow with C.Config.pval = C.Pval.Product });
    ("pta", C.Config.pta);
  ]

let fuzz_prog seed =
  W.Gen_random.compile
    {
      W.Gen_random.seed;
      classes = 3 + (seed mod 7);
      meths_per_class = 1 + (seed mod 3);
      max_stmts = 4 + (seed mod 5);
    }

let test_parallel_matches_sequential_fuzz () =
  for seed = 0 to 11 do
    let prog, main = fuzz_prog seed in
    List.iter
      (fun (name, config) ->
        let seq = run ~mode:C.Engine.Dedup ~config prog main in
        List.iter
          (fun jobs ->
            let par =
              run ~mode:C.Engine.Dedup
                ~config:{ config with C.Config.jobs }
                prog main
            in
            check_same_fixed_point
              ~ctx:(Printf.sprintf "seed %d, %s, jobs %d" seed name jobs)
              seq par)
          [ 1; 2; 4 ])
      par_configs
  done

let test_parallel_matches_sequential_workload () =
  (* the benchmark-sized workload: enough cross-method traffic that the
     shards genuinely exchange messages *)
  let prog, main =
    W.Gen.compile { W.Gen.default_params with W.Gen.live_units = 6; dead_units = 2 }
  in
  let seq = run ~mode:C.Engine.Dedup prog main in
  List.iter
    (fun jobs ->
      let par =
        run ~mode:C.Engine.Dedup
          ~config:{ C.Config.skipflow with C.Config.jobs }
          prog main
      in
      check_same_fixed_point ~ctx:(Printf.sprintf "workload, jobs %d" jobs) seq
        par)
    [ 2; 4 ]

(* Property: the fixed point is independent of the shard partition.  The
   seed changes which SCC regions land on which shard (hence all message
   routing), so any ownership bug shows up as a state difference. *)
let test_parallel_shard_seed_property =
  let arb =
    QCheck.make
      ~print:(fun (p, s) -> Printf.sprintf "prog_seed=%d shard_seed=%d" p s)
      QCheck.Gen.(pair (int_bound 20) (int_bound 100_000))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"parallel fixed point is partition-independent"
       ~count:12 arb (fun (prog_seed, shard_seed) ->
         let prog, main = fuzz_prog prog_seed in
         let seq = run ~mode:C.Engine.Dedup prog main in
         let par =
           C.Analysis.run
             ~config:{ C.Config.skipflow with C.Config.jobs = 3 }
             ~mode:C.Engine.Dedup ~shard_seed prog ~roots:[ main ]
         in
         check_same_fixed_point
           ~ctx:
             (Printf.sprintf "prog seed %d, shard seed %d" prog_seed shard_seed)
           seq par;
         true))

let suite =
  ( "engine-perf",
    [
      Alcotest.test_case "dedup = reference fixed point (fuzz corpus)" `Quick
        test_dedup_matches_reference_fuzz;
      Alcotest.test_case "dedup drains strictly fewer tasks" `Quick
        test_dedup_processes_fewer_tasks;
      Alcotest.test_case "budgeted dedup reaches a reachable superset" `Quick
        test_dedup_budget_superset;
      Alcotest.test_case "parallel = sequential fixed point (fuzz corpus)"
        `Quick test_parallel_matches_sequential_fuzz;
      Alcotest.test_case "parallel = sequential fixed point (workload)" `Quick
        test_parallel_matches_sequential_workload;
      test_parallel_shard_seed_property;
    ] )
