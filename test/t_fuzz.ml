(* Randomized robustness harness (lib/fuzz) plus targeted tests of the
   budget/degradation machinery on a large generated workload:

   - the fuzz matrix (5 configs × {FIFO, random order} × {unlimited, tiny
     budget}) reports zero failures, exercises degradation, and checks the
     lint soundness oracle (dead blocks / methods never appear in traces)
     plus the primitive-value oracle (every concrete int the interpreter
     observed is contained in its defining flow's final value state);
   - a budget-tripped run on a benchmark-sized program terminates, is
     flagged degraded, still passes the independent certifier, and reaches
     a superset of the precise reachable set;
   - each budget dimension (tasks / wall-clock / flows) trips. *)

open Skipflow_ir
module C = Skipflow_core
module W = Skipflow_workloads
module Fz = Skipflow_fuzz.Fuzz

let certify name engine =
  match C.Verify.run engine with
  | [] -> ()
  | vs -> Alcotest.failf "%s: %d violations, first: %s" name (List.length vs) (List.hd vs)

let reachable_set (r : C.Analysis.result) =
  List.fold_left
    (fun acc (m : Program.meth) -> Ids.Meth.Set.add m.Program.m_id acc)
    Ids.Meth.Set.empty
    (C.Engine.reachable_methods r.C.Analysis.engine)

let test_fuzz_matrix () =
  let r = Fz.run ~seeds:25 () in
  (match r.Fz.r_failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "%d fuzz failures, first: %a" (List.length r.Fz.r_failures)
        Fz.pp_failure f);
  Alcotest.(check int) "all runs performed" (25 * 20) r.Fz.r_runs;
  (* the tiny budget must actually fault-inject the degradation path *)
  Alcotest.(check bool) "degradation exercised" true (r.Fz.r_degraded > 0);
  (* the lint soundness oracle must actually check dead-block / dead-method
     facts against the interpreter traces *)
  Alcotest.(check bool) "lint oracle exercised" true (r.Fz.r_lint_checked > 0);
  (* the primitive-value oracle must actually check concrete ints against
     the interval × constant states *)
  Alcotest.(check bool) "prim oracle exercised" true (r.Fz.r_prim_checked > 0)

let bench_workload () =
  W.Gen.compile { W.Gen.default_params with W.Gen.live_units = 8; dead_units = 3 }

let test_task_budget_superset () =
  let prog, main = bench_workload () in
  let precise = C.Analysis.run ~config:C.Config.skipflow prog ~roots:[ main ] in
  Alcotest.(check bool) "precise run is not degraded" false
    precise.C.Analysis.metrics.C.Metrics.degraded;
  let config =
    { C.Config.skipflow with C.Config.budget = C.Budget.make ~max_tasks:500 () }
  in
  let degraded = C.Analysis.run ~config prog ~roots:[ main ] in
  Alcotest.(check bool) "budget tripped" true
    degraded.C.Analysis.metrics.C.Metrics.degraded;
  Alcotest.(check bool) "trips recorded" true
    (degraded.C.Analysis.metrics.C.Metrics.budget_trips > 0);
  certify "degraded fixed point" degraded.C.Analysis.engine;
  Alcotest.(check bool) "degradation only adds reachable methods" true
    (Ids.Meth.Set.subset (reachable_set precise) (reachable_set degraded))

let test_time_budget_trips () =
  let prog, main = bench_workload () in
  let config =
    { C.Config.skipflow with C.Config.budget = C.Budget.make ~max_seconds:0.0 () }
  in
  let r = C.Analysis.run ~config prog ~roots:[ main ] in
  Alcotest.(check bool) "zero wall-clock budget trips deterministically" true
    r.C.Analysis.metrics.C.Metrics.degraded;
  certify "time-degraded fixed point" r.C.Analysis.engine

let test_flow_budget_trips () =
  let prog, main = bench_workload () in
  let config =
    { C.Config.skipflow with C.Config.budget = C.Budget.make ~max_flows:10 () }
  in
  let r = C.Analysis.run ~config prog ~roots:[ main ] in
  Alcotest.(check bool) "flow cap trips" true r.C.Analysis.metrics.C.Metrics.degraded;
  certify "flow-degraded fixed point" r.C.Analysis.engine

let test_unlimited_budget_never_degrades () =
  let prog, main = bench_workload () in
  let r = C.Analysis.run ~config:C.Config.skipflow prog ~roots:[ main ] in
  Alcotest.(check bool) "unlimited budget" false r.C.Analysis.metrics.C.Metrics.degraded;
  Alcotest.(check int) "no trips" 0 r.C.Analysis.metrics.C.Metrics.budget_trips

let test_crash_injection () =
  let r = Fz.run ~seeds:6 ~crash:true () in
  (match r.Fz.r_failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "%d crash-injection failures, first: %a"
        (List.length r.Fz.r_failures) Fz.pp_failure f);
  (* the matrix must actually probe: per seed, the intact round trip, the
     seven mutations (twice: snapshot + cache), the stale version, the
     quarantine check — skipped only when a program finishes under the
     pause budget *)
  Alcotest.(check bool) "crash probes performed" true (r.Fz.r_crash_checked >= 20)

let suite =
  ( "fuzz",
    [
      Alcotest.test_case "matrix: 25 seeds, zero failures" `Quick test_fuzz_matrix;
      Alcotest.test_case "crash injection: corrupt state is detected and recovered"
        `Quick test_crash_injection;
      Alcotest.test_case "task budget: degraded superset certifies" `Quick
        test_task_budget_superset;
      Alcotest.test_case "zero time budget trips" `Quick test_time_budget_trips;
      Alcotest.test_case "flow budget trips" `Quick test_flow_budget_trips;
      Alcotest.test_case "unlimited budget never degrades" `Quick
        test_unlimited_budget_never_degrades;
    ] )
