(* PVPG construction tests (Appendix B, Figures 12-14): structural
   assertions on the graphs built for known programs, including the
   Figure 7 shape for the JDK motivating example. *)

open Skipflow_ir
module C = Skipflow_core
module F = Skipflow_frontend

(* Build the graph of one method without running the solver: use an engine
   but only add the method as a root with no seeding, then inspect. *)
let graph_of ?(config = C.Config.skipflow) src ~cls ~meth =
  let prog = F.Frontend.compile src in
  let c = Option.get (Program.find_class prog cls) in
  let m = Option.get (Program.find_meth prog c meth) in
  let e = C.Engine.create prog config in
  C.Engine.add_root ~seed_params:false e m;
  let g = Option.get (C.Engine.graph_of e m.Program.m_id) in
  (prog, e, g)

let count_kind g pred =
  List.length (List.filter (fun (f : C.Flow.t) -> pred f.C.Flow.kind) g.C.Graph.g_flows)

(* transitive reachability along predicate edges (the lowering introduces
   landing-pad merges, so a filter often predicates a flow through one or
   more phi_pred hops) *)
let pred_reaches (src : C.Flow.t) (dst : C.Flow.t) =
  let seen = Hashtbl.create 16 in
  let rec go (f : C.Flow.t) =
    f == dst
    || (not (Hashtbl.mem seen f.C.Flow.id))
       && begin
            Hashtbl.replace seen f.C.Flow.id ();
            List.exists go f.C.Flow.pred_out
          end
  in
  go src

let is_invoke = function C.Flow.Invoke _ -> true | _ -> false
let is_filter = function C.Flow.Filter _ -> true | _ -> false
let is_phi = function C.Flow.Phi -> true | _ -> false
let is_phi_pred = function C.Flow.Phi_pred -> true | _ -> false
let is_param = function C.Flow.Param _ -> true | _ -> false
let is_load = function C.Flow.Field_load _ -> true | _ -> false
let is_alloc = function C.Flow.Alloc _ -> true | _ -> false

let fig2_src =
  {|
class Thread { boolean isVirtual() { return this instanceof BaseVirtualThread; } }
class BaseVirtualThread extends Thread { }
class Set { void remove(Thread t) { } }
class Container {
  var Set virtualThreads;
  void onExit(Thread thread) {
    if (thread.isVirtual()) { this.virtualThreads.remove(thread); }
  }
}
class Main { static void main() { } }
|}

let test_on_exit_shape () =
  (* Figure 7, left: onExit has params this+thread, the isVirtual invoke,
     the constant 0, two filter pairs (== 0 / != 0), the field load, and
     the remove invoke *)
  let _, _, g = graph_of fig2_src ~cls:"Container" ~meth:"onExit" in
  Alcotest.(check int) "2 params" 2 (count_kind g is_param);
  Alcotest.(check int) "2 invokes (isVirtual, remove)" 2 (count_kind g is_invoke);
  Alcotest.(check int) "1 field load" 1 (count_kind g is_load);
  Alcotest.(check int) "4 filter flows (two per branch side)" 4 (count_kind g is_filter);
  (* the invoke observes its receiver *)
  let params =
    List.filter (fun (f : C.Flow.t) -> is_param f.C.Flow.kind) g.C.Graph.g_flows
  in
  let p_thread = List.nth params 1 in
  Alcotest.(check bool) "p_thread observed by an invoke" true
    (List.exists (fun (o : C.Flow.t) -> is_invoke o.C.Flow.kind) p_thread.C.Flow.observers);
  (* the invoke is a predicate for subsequent flows (invoke-as-predicate) *)
  let invokes =
    List.filter (fun (f : C.Flow.t) -> is_invoke f.C.Flow.kind) g.C.Graph.g_flows
  in
  Alcotest.(check bool) "isVirtual invoke has predicate successors" true
    (List.exists (fun (f : C.Flow.t) -> f.C.Flow.pred_out <> []) invokes)

let test_is_virtual_shape () =
  (* Figure 7, right: two instanceof filter flows, each the predicate of a
     constant source; a phi joining 1/0 feeding the return *)
  let _, _, g = graph_of fig2_src ~cls:"Thread" ~meth:"isVirtual" in
  Alcotest.(check int) "1 param (this)" 1 (count_kind g is_param);
  Alcotest.(check int) "2 instanceof filters" 2 (count_kind g is_filter);
  Alcotest.(check bool) "at least one phi" true (count_kind g is_phi >= 1);
  let filters =
    List.filter (fun (f : C.Flow.t) -> is_filter f.C.Flow.kind) g.C.Graph.g_flows
  in
  let sources =
    List.filter
      (fun (f : C.Flow.t) ->
        match f.C.Flow.kind with C.Flow.Source _ -> true | _ -> false)
      g.C.Graph.g_flows
  in
  List.iter
    (fun (f : C.Flow.t) ->
      Alcotest.(check bool) "filter predicates a source (transitively)" true
        (List.exists (fun s -> pred_reaches f s) sources))
    filters;
  (* the two filters are one positive, one negated instanceof *)
  let negs =
    List.filter_map
      (fun (f : C.Flow.t) ->
        match f.C.Flow.filter with
        | C.Flow.Instanceof { negated; _ } -> Some negated
        | _ -> None)
      filters
  in
  Alcotest.(check (slist bool compare)) "pos + neg" [ false; true ] negs

let test_branch_site_recorded () =
  let _, _, g = graph_of fig2_src ~cls:"Container" ~meth:"onExit" in
  match g.C.Graph.g_branches with
  | [ bs ] ->
      (* the isVirtual() condition is a primitive (boolean) check *)
      Alcotest.(check bool) "prim check" true (bs.C.Graph.bs_kind = C.Flow.Prim_check)
  | l -> Alcotest.failf "expected 1 branch site, got %d" (List.length l)

let test_merge_phi_pred () =
  (* Figure 5: a value join gets a phi predicated by the block's phi_pred *)
  let src =
    {|
class C {
  int m(C x) {
    int y = 0;
    if (x == null) { y = 5; } else { y = 10; }
    return y + 1;
  }
}
class Main { static void main() { } }
|}
  in
  let _, _, g = graph_of src ~cls:"C" ~meth:"m" in
  Alcotest.(check bool) "has phi_pred flows" true (count_kind g is_phi_pred >= 1);
  let phis = List.filter (fun (f : C.Flow.t) -> is_phi f.C.Flow.kind) g.C.Graph.g_flows in
  Alcotest.(check bool) "has a phi" true (phis <> []);
  (* every phi is the predicate-target of some phi_pred *)
  let phi_preds =
    List.filter (fun (f : C.Flow.t) -> is_phi_pred f.C.Flow.kind) g.C.Graph.g_flows
  in
  List.iter
    (fun (phi : C.Flow.t) ->
      Alcotest.(check bool) "phi predicated by a phi_pred" true
        (List.exists
           (fun (pp : C.Flow.t) -> List.memq phi pp.C.Flow.pred_out)
           phi_preds))
    phis;
  (* branch classified as null check *)
  match g.C.Graph.g_branches with
  | [ bs ] -> Alcotest.(check bool) "null check" true (bs.C.Graph.bs_kind = C.Flow.Null_check)
  | _ -> Alcotest.fail "expected one branch site"

let test_alloc_predicated_by_filter () =
  (* Figure 1: the allocation in the then-branch is predicated (directly or
     transitively) by the null-check filter flow, not by pred_on *)
  let src =
    {|
class D { }
class C {
  void m(D d) {
    if (d == null) { d = new D(); }
    int x = 1;
  }
}
class Main { static void main() { } }
|}
  in
  let _, _, g = graph_of src ~cls:"C" ~meth:"m" in
  let allocs =
    List.filter (fun (f : C.Flow.t) -> is_alloc f.C.Flow.kind) g.C.Graph.g_flows
  in
  Alcotest.(check int) "one alloc" 1 (List.length allocs);
  let alloc = List.hd allocs in
  (* the allocation must be gated (possibly through landing-pad phi_preds)
     by the == null filter flow, and by that one only *)
  let filters =
    List.filter (fun (f : C.Flow.t) -> is_filter f.C.Flow.kind) g.C.Graph.g_flows
  in
  let gating = List.filter (fun f -> pred_reaches f alloc) filters in
  Alcotest.(check bool) "alloc gated by a filter" true (gating <> [])

let test_binary_filter_edges () =
  (* Figure 14 initBinary: f_l uses lhs and observes rhs; f_r uses rhs and
     observes lhs; predicates chain pred -> f_l -> f_r *)
  let src =
    {|
class C {
  int m(int a, int b) { if (a < b) { return 1; } return 0; }
}
class Main { static void main() { } }
|}
  in
  let _, _, g = graph_of src ~cls:"C" ~meth:"m" in
  let filters =
    List.filter (fun (f : C.Flow.t) -> is_filter f.C.Flow.kind) g.C.Graph.g_flows
  in
  Alcotest.(check int) "four filters (two per side)" 4 (List.length filters);
  (* each branch side: an f_l that predicates an f_r *)
  let chained =
    List.filter
      (fun (f : C.Flow.t) ->
        List.exists (fun (t : C.Flow.t) -> is_filter t.C.Flow.kind) f.C.Flow.pred_out)
      filters
  in
  Alcotest.(check int) "two f_l -> f_r predicate chains" 2 (List.length chained);
  (* observe edges between operand flows and filters exist *)
  let operand_params =
    List.filter
      (fun (f : C.Flow.t) ->
        match f.C.Flow.kind with C.Flow.Param i -> i >= 1 | _ -> false)
      g.C.Graph.g_flows
  in
  Alcotest.(check int) "two compared operands" 2 (List.length operand_params);
  List.iter
    (fun (p : C.Flow.t) ->
      Alcotest.(check bool) "operand observed by filters" true
        (List.exists (fun (o : C.Flow.t) -> is_filter o.C.Flow.kind) p.C.Flow.observers))
    operand_params

let test_void_return_flow () =
  let src = {| class C { void m() { } } class Main { static void main() { } } |} in
  let _, e, g = graph_of src ~cls:"C" ~meth:"m" in
  ignore (C.Engine.run e);
  (* the void return flow produces the artificial token once reachable *)
  Alcotest.(check bool) "return enabled" true g.C.Graph.g_return.C.Flow.enabled;
  Alcotest.(check bool) "return state non-empty (token)" false
    (C.Vstate.is_empty g.C.Graph.g_return.C.Flow.state)

let test_defs_recorded () =
  let _, _, g = graph_of fig2_src ~cls:"Container" ~meth:"onExit" in
  let defined = Array.to_list g.C.Graph.g_defs |> List.filter Option.is_some in
  Alcotest.(check bool) "most vars have defining flows" true (List.length defined >= 4)

let suite =
  ( "build",
    [
      Alcotest.test_case "onExit PVPG shape (Fig 7 left)" `Quick test_on_exit_shape;
      Alcotest.test_case "isVirtual PVPG shape (Fig 7 right)" `Quick test_is_virtual_shape;
      Alcotest.test_case "branch site recorded" `Quick test_branch_site_recorded;
      Alcotest.test_case "merge phi + phi_pred (Fig 5)" `Quick test_merge_phi_pred;
      Alcotest.test_case "alloc predicated by filter (Fig 1)" `Quick
        test_alloc_predicated_by_filter;
      Alcotest.test_case "binary filter edges (Fig 14)" `Quick test_binary_filter_edges;
      Alcotest.test_case "void return token" `Quick test_void_return_flow;
      Alcotest.test_case "per-var def flows recorded" `Quick test_defs_recorded;
    ] )
