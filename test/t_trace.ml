(* The observability layer and the library facade:

   - counters are monotone (negative deltas rejected) and agree across
     the dedup and reference engines wherever the semantics demand it
     (links, use edges, live flows are fixed-point facts; the dedup_*
     counters are identically zero in reference mode);
   - phase spans nest, accumulate on re-entry, and children sum to no
     more than the enclosing span's wall time;
   - the JSONL trace round-trips through the integer-only JSON parser
     and the Chrome trace is one valid schema-versioned document;
   - Skipflow_api.analyze returns typed errors — missing file, parse
     error, bad root — with no exception crossing the boundary. *)

module Api = Skipflow_api
module C = Skipflow_core
module K = Skipflow_checks
module W = Skipflow_workloads

let workload () =
  W.Gen.compile { W.Gen.default_params with live_units = 10; dead_units = 2 }

let run_with_trace ~mode prog main =
  let trace = C.Trace.create ~timers:true ~events:true () in
  match Api.analyze_program ~mode ~trace prog ~roots:[ main ] with
  | Ok s -> s
  | Error e -> Alcotest.failf "analyze_program failed: %s" (Api.error_message e)

let counter_value trace name =
  C.Trace.value (C.Trace.counter trace name)

(* ----- counters ----- *)

let test_counter_monotone () =
  let tr = C.Trace.create () in
  let c = C.Trace.counter tr "x" in
  C.Trace.incr c;
  C.Trace.add c 4;
  C.Trace.record_max c 3 (* below current: no-op *);
  Alcotest.(check int) "incr + add accumulate" 5 (C.Trace.value c);
  C.Trace.record_max c 9;
  Alcotest.(check int) "record_max raises" 9 (C.Trace.value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Trace.add: counters are monotonic (negative delta)")
    (fun () -> C.Trace.add c (-1));
  Alcotest.(check bool) "find-or-create returns the same box" true
    (C.Trace.counter tr "x" == c)

let test_counters_across_engines () =
  let prog, main = workload () in
  let d = run_with_trace ~mode:C.Engine.Dedup prog main in
  let r = run_with_trace ~mode:C.Engine.Reference prog main in
  let same name =
    Alcotest.(check int)
      (name ^ " equal across dedup/ref")
      (counter_value r.Api.trace name)
      (counter_value d.Api.trace name)
  in
  (* fixed-point facts: identical by the dedup==ref equivalence *)
  List.iter same
    [ "engine.links"; "engine.use_edges"; "engine.live_flows"; "build.methods";
      "build.flows"; "build.edges"; "engine.budget_trips" ];
  (* dedup accounting exists only in dedup mode *)
  List.iter
    (fun name ->
      Alcotest.(check int) (name ^ " is 0 in ref mode") 0
        (counter_value r.Api.trace name))
    [ "engine.dedup_input"; "engine.dedup_enable"; "engine.dedup_notify" ];
  Alcotest.(check bool) "dedup drains fewer tasks" true
    (counter_value d.Api.trace "engine.tasks_processed"
    < counter_value r.Api.trace "engine.tasks_processed");
  (* the stats snapshot is the counters *)
  let s = C.Engine.stats d.Api.engine in
  Alcotest.(check int) "stats snapshot mirrors counters"
    (counter_value d.Api.trace "engine.tasks_processed")
    s.C.Engine.tasks_processed

(* ----- phases ----- *)

let test_phase_nesting () =
  let tr = C.Trace.create ~timers:true () in
  let busy () = ignore (Sys.opaque_identity (Array.init 2000 (fun i -> i * i))) in
  C.Trace.with_phase tr "outer" (fun () ->
      C.Trace.with_phase tr "child_a" busy;
      C.Trace.with_phase tr "child_b" busy;
      C.Trace.with_phase tr "child_a" busy);
  let phases = C.Trace.phases tr in
  let find name =
    match List.find_opt (fun p -> p.C.Trace.ph_name = name) phases with
    | Some p -> p
    | None -> Alcotest.failf "phase %s not recorded" name
  in
  let outer = find "outer" and a = find "child_a" and b = find "child_b" in
  Alcotest.(check int) "outer at depth 0" 0 outer.C.Trace.ph_depth;
  Alcotest.(check int) "children at depth 1" 1 a.C.Trace.ph_depth;
  Alcotest.(check int) "re-entry accumulates into one record" 2 a.C.Trace.ph_count;
  Alcotest.(check bool) "children sum <= outer wall" true
    (a.C.Trace.ph_wall_us + b.C.Trace.ph_wall_us <= outer.C.Trace.ph_wall_us)

let test_phases_timed_off () =
  let tr = C.Trace.create () in
  C.Trace.with_phase tr "p" (fun () -> ());
  Alcotest.(check (list reject)) "no phases recorded when timers off" []
    (List.map (fun _ -> ()) (C.Trace.phases tr))

let test_analysis_phases () =
  let prog, main = workload () in
  let s = run_with_trace ~mode:C.Engine.Dedup prog main in
  let names = List.map (fun p -> p.C.Trace.ph_name) (C.Trace.phases s.Api.trace) in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " phase recorded") true (List.mem n names))
    [ "roots"; "solve"; "metrics" ]

(* ----- events ----- *)

let test_event_cap () =
  let tr = C.Trace.create ~events:true ~max_events:3 () in
  for i = 1 to 5 do
    C.Trace.event tr ~kind:"k" ~arg:i ()
  done;
  Alcotest.(check int) "buffer capped" 3 (C.Trace.event_count tr);
  Alcotest.(check int) "overflow counted" 2 (C.Trace.dropped_events tr);
  Alcotest.(check int) "by_kind sees the buffered ones" 3
    (List.assoc "k" (C.Trace.by_kind tr))

(* ----- serialization ----- *)

let test_jsonl_roundtrip () =
  let prog, main = workload () in
  let s = run_with_trace ~mode:C.Engine.Dedup prog main in
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (C.Trace.jsonl_string s.Api.trace))
  in
  Alcotest.(check bool) "has header + content" true (List.length lines > 3);
  let docs = List.map K.Json.of_string lines in
  (match docs with
  | header :: _ ->
      (match K.Json.check_schema_version header with
      | Ok v -> Alcotest.(check int) "header schema version" C.Trace.schema_version v
      | Error msg -> Alcotest.fail msg)
  | [] -> Alcotest.fail "empty trace");
  (* every event line's counters survive the parse *)
  let n_parsed_events =
    List.length
      (List.filter
         (fun d ->
           match K.Json.member "kind" d with
           | Some (K.Json.Str "event") -> true
           | _ -> false)
         docs)
  in
  Alcotest.(check int) "all events round-trip"
    (C.Trace.event_count s.Api.trace)
    n_parsed_events

let test_chrome_valid () =
  let prog, main = workload () in
  let s = run_with_trace ~mode:C.Engine.Dedup prog main in
  let doc = K.Json.of_string (C.Trace.chrome_string s.Api.trace) in
  (match K.Json.check_schema_version doc with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  match K.Json.member "traceEvents" doc with
  | Some (K.Json.Arr evs) ->
      Alcotest.(check bool) "has trace events" true (evs <> []);
      List.iter
        (fun ev ->
          match K.Json.member "ph" ev with
          | Some (K.Json.Str ("X" | "i")) -> ()
          | _ -> Alcotest.fail "trace event is not a complete span or instant")
        evs
  | _ -> Alcotest.fail "missing traceEvents array"

let test_schema_rejection () =
  let bad = K.Json.Obj [ ("schema_version", K.Json.Int 99) ] in
  (match K.Json.check_schema_version bad with
  | Ok _ -> Alcotest.fail "version 99 must be rejected"
  | Error _ -> ());
  match K.Json.check_schema_version (K.Json.Obj []) with
  | Ok _ -> Alcotest.fail "missing version must be rejected"
  | Error _ -> ()

(* ----- the facade's error contract ----- *)

let test_api_errors () =
  let input_error r =
    match r with
    | Ok _ -> Alcotest.fail "expected an error"
    | Error e ->
        Alcotest.(check int) "maps to input-error exit code" 2
          (Api.exit_code_of_error e);
        e
  in
  (match
     input_error (Api.analyze ~source:(`File "/nonexistent/x.mj") ~roots:[] ())
   with
  | Api.Io_error _ -> ()
  | e -> Alcotest.failf "expected Io_error, got: %s" (Api.error_message e));
  (match
     input_error (Api.analyze ~source:(`Text "class A { int f( }") ~roots:[] ())
   with
  | Api.Compile_error { diags; _ } ->
      Alcotest.(check bool) "diagnostics accumulated" true (diags <> [])
  | e -> Alcotest.failf "expected Compile_error, got: %s" (Api.error_message e));
  let ok_src = "class Main { static void main() { } }" in
  (match
     input_error (Api.analyze ~source:(`Text ok_src) ~roots:[ "Nope.main" ] ())
   with
  | Api.Unknown_root _ -> ()
  | e -> Alcotest.failf "expected Unknown_root, got: %s" (Api.error_message e));
  (match
     input_error
       (Api.analyze ~source:(`Text "class A { void f() { } }") ~roots:[] ())
   with
  | Api.No_main -> ()
  | e -> Alcotest.failf "expected No_main, got: %s" (Api.error_message e));
  match Api.analyze ~source:(`Text ok_src) ~roots:[] () with
  | Ok s ->
      Alcotest.(check int) "trivial program reaches main" 1
        (List.length s.Api.reachable)
  | Error e -> Alcotest.failf "valid program failed: %s" (Api.error_message e)

let suite =
  ( "trace",
    [
      Alcotest.test_case "counters monotone" `Quick test_counter_monotone;
      Alcotest.test_case "counters agree across dedup/ref" `Quick
        test_counters_across_engines;
      Alcotest.test_case "phase spans nest and accumulate" `Quick test_phase_nesting;
      Alcotest.test_case "timers off records nothing" `Quick test_phases_timed_off;
      Alcotest.test_case "analysis records its phases" `Quick test_analysis_phases;
      Alcotest.test_case "event buffer cap" `Quick test_event_cap;
      Alcotest.test_case "JSONL round-trips through the parser" `Quick
        test_jsonl_roundtrip;
      Alcotest.test_case "chrome trace is valid and versioned" `Quick
        test_chrome_valid;
      Alcotest.test_case "unknown schema versions rejected" `Quick
        test_schema_rejection;
      Alcotest.test_case "facade returns typed errors" `Quick test_api_errors;
    ] )
