(* Smoke tests: the JDK motivating example of Figure 2, built directly
   through the SSA builder, analyzed under SkipFlow and the baseline PTA.
   This exercises the full core pipeline (builder -> PVPG -> engine) before
   the frontend exists: the paper's headline behaviour is that
   [Set.remove] is unreachable under SkipFlow when no virtual thread is
   instantiated, but reachable under PTA. *)

open Skipflow_ir
module C = Skipflow_core

(* Builds:
     class Thread { boolean isVirtual() { return this instanceof BaseVirtualThread; } }
     class BaseVirtualThread extends Thread {}
     class Set { void remove(Thread t) {} }
     class Container { Set vts; void onExit(Thread t) { if (t.isVirtual()) { this.vts.remove(t); } } }
     class Main { static void main() { c = new Container(); c.vts = new Set();
                                       t = <new Thread() | new BaseVirtualThread()>; c.onExit(t); } }
*)
let mk_program ~with_virtual_thread =
  let p = Program.create () in
  let thread = Program.declare_class p ~name:"Thread" () in
  let bvt = Program.declare_class p ~name:"BaseVirtualThread" ~super:thread.Program.c_id () in
  let set_cls = Program.declare_class p ~name:"Set" () in
  let container = Program.declare_class p ~name:"Container" () in
  let main_cls = Program.declare_class p ~name:"Main" () in
  let vts =
    Program.declare_field p container ~name:"vts" ~ty:(Ty.Obj set_cls.Program.c_id) ()
  in
  let is_virtual =
    Program.declare_meth p thread ~name:"isVirtual" ~static:false ~param_tys:[]
      ~ret_ty:Ty.Bool ()
  in
  let remove =
    Program.declare_meth p set_cls ~name:"remove" ~static:false
      ~param_tys:[ Ty.Obj thread.Program.c_id ] ~ret_ty:Ty.Void ()
  in
  let on_exit =
    Program.declare_meth p container ~name:"onExit" ~static:false
      ~param_tys:[ Ty.Obj thread.Program.c_id ] ~ret_ty:Ty.Void ()
  in
  let main =
    Program.declare_meth p main_cls ~name:"main" ~static:true ~param_tys:[]
      ~ret_ty:Ty.Void ()
  in
  (* Thread.isVirtual: if (this instanceof BVT) r=1 else r=0; return r *)
  let () =
    let b = Ssa_builder.create ~params:[ ("this", Ty.Obj thread.Program.c_id) ] in
    let entry = Ssa_builder.entry_block b in
    let l1 = Ssa_builder.label_block b in
    let l2 = Ssa_builder.label_block b in
    let m = Ssa_builder.merge_block b in
    let this = Ssa_builder.read_var b entry "this" ~ty:(Ty.Obj thread.Program.c_id) in
    Ssa_builder.terminate b entry
      (Bl.If
         { cond = Bl.InstanceOf (this, bvt.Program.c_id); then_ = l1.Bl.b_id; else_ = l2.Bl.b_id });
    let one = Ssa_builder.const b l1 1 in
    Ssa_builder.write_var b l1 "r" one;
    Ssa_builder.terminate b l1 (Bl.Jump m.Bl.b_id);
    let zero = Ssa_builder.const b l2 0 in
    Ssa_builder.write_var b l2 "r" zero;
    Ssa_builder.terminate b l2 (Bl.Jump m.Bl.b_id);
    Ssa_builder.seal b m;
    let r = Ssa_builder.read_var b m "r" ~ty:Ty.Int in
    Ssa_builder.terminate b m (Bl.Return (Some r));
    let body = Ssa_builder.finish b in
    Validate.run body;
    Program.set_body is_virtual body
  in
  (* Set.remove: return *)
  let () =
    let b =
      Ssa_builder.create
        ~params:[ ("this", Ty.Obj set_cls.Program.c_id); ("t", Ty.Obj thread.Program.c_id) ]
    in
    let entry = Ssa_builder.entry_block b in
    Ssa_builder.terminate b entry (Bl.Return None);
    Program.set_body remove (Ssa_builder.finish b)
  in
  (* Container.onExit: v = t.isVirtual(); if (v == 0) {} else { s = this.vts; s.remove(t) } *)
  let () =
    let b =
      Ssa_builder.create
        ~params:
          [ ("this", Ty.Obj container.Program.c_id); ("t", Ty.Obj thread.Program.c_id) ]
    in
    let entry = Ssa_builder.entry_block b in
    let this = Ssa_builder.read_var b entry "this" ~ty:(Ty.Obj container.Program.c_id) in
    let t = Ssa_builder.read_var b entry "t" ~ty:(Ty.Obj thread.Program.c_id) in
    let v =
      Ssa_builder.invoke b entry ~ty:Ty.Int ~recv:(Some t) ~target:is_virtual.Program.m_id
        ~args:[] ~virtual_:true
    in
    let zero = Ssa_builder.const b entry 0 in
    let l_skip = Ssa_builder.label_block b in
    let l_rm = Ssa_builder.label_block b in
    let m = Ssa_builder.merge_block b in
    Ssa_builder.terminate b entry
      (Bl.If { cond = Bl.Cmp (`Eq, v, zero); then_ = l_skip.Bl.b_id; else_ = l_rm.Bl.b_id });
    Ssa_builder.terminate b l_skip (Bl.Jump m.Bl.b_id);
    let s =
      Ssa_builder.load b l_rm ~ty:(Ty.Obj set_cls.Program.c_id) ~recv:this
        ~field:vts.Program.f_id
    in
    let _ =
      Ssa_builder.invoke b l_rm ~ty:Ty.Void ~recv:(Some s) ~target:remove.Program.m_id
        ~args:[ t ] ~virtual_:true
    in
    Ssa_builder.terminate b l_rm (Bl.Jump m.Bl.b_id);
    Ssa_builder.seal b m;
    Ssa_builder.terminate b m (Bl.Return None);
    let body = Ssa_builder.finish b in
    Validate.run body;
    Program.set_body on_exit body
  in
  (* Main.main *)
  let () =
    let b = Ssa_builder.create ~params:[] in
    let entry = Ssa_builder.entry_block b in
    let c = Ssa_builder.new_ b entry container.Program.c_id in
    let s = Ssa_builder.new_ b entry set_cls.Program.c_id in
    Ssa_builder.store b entry ~recv:c ~field:vts.Program.f_id ~src:s;
    let t =
      if with_virtual_thread then Ssa_builder.new_ b entry bvt.Program.c_id
      else Ssa_builder.new_ b entry thread.Program.c_id
    in
    let _ =
      Ssa_builder.invoke b entry ~ty:Ty.Void ~recv:(Some c) ~target:on_exit.Program.m_id
        ~args:[ t ] ~virtual_:true
    in
    Ssa_builder.terminate b entry (Bl.Return None);
    let body = Ssa_builder.finish b in
    Validate.run body;
    Program.set_body main body
  in
  (p, main, remove, on_exit, is_virtual)

let qname prog m = Program.qualified_name prog m.Program.m_id

let run_with config ~with_virtual_thread =
  let prog, main, remove, on_exit, is_virtual = mk_program ~with_virtual_thread in
  let r = C.Analysis.run ~config prog ~roots:[ main ] in
  (prog, r, main, remove, on_exit, is_virtual)

let test_skipflow_removes_dead_call () =
  let _, r, _, remove, on_exit, is_virtual =
    run_with C.Config.skipflow ~with_virtual_thread:false
  in
  Alcotest.(check bool)
    "onExit reachable" true
    (C.Engine.is_reachable r.C.Analysis.engine on_exit.Program.m_id);
  Alcotest.(check bool)
    "isVirtual reachable" true
    (C.Engine.is_reachable r.C.Analysis.engine is_virtual.Program.m_id);
  Alcotest.(check bool)
    "remove NOT reachable under SkipFlow" false
    (C.Engine.is_reachable r.C.Analysis.engine remove.Program.m_id)

let test_skipflow_sound_with_virtual_thread () =
  let _, r, _, remove, _, _ = run_with C.Config.skipflow ~with_virtual_thread:true in
  Alcotest.(check bool)
    "remove reachable when a virtual thread exists" true
    (C.Engine.is_reachable r.C.Analysis.engine remove.Program.m_id)

let test_pta_keeps_spurious_call () =
  let _, r, _, remove, _, _ = run_with C.Config.pta ~with_virtual_thread:false in
  Alcotest.(check bool)
    "remove reachable under baseline PTA" false
    (not (C.Engine.is_reachable r.C.Analysis.engine remove.Program.m_id))

let test_metrics_shape () =
  let _, r, _, _, _, _ = run_with C.Config.skipflow ~with_virtual_thread:false in
  let m = r.C.Analysis.metrics in
  Alcotest.(check bool) "some methods reachable" true (m.C.Metrics.reachable_methods >= 3);
  let _, rp, _, _, _, _ = run_with C.Config.pta ~with_virtual_thread:false in
  let mp = rp.C.Analysis.metrics in
  Alcotest.(check bool)
    "SkipFlow reaches fewer or equal methods" true
    (m.C.Metrics.reachable_methods <= mp.C.Metrics.reachable_methods)

let test_reachable_names () =
  let prog, r, main, _, _, _ = run_with C.Config.skipflow ~with_virtual_thread:false in
  let names = C.Analysis.reachable_names r in
  Alcotest.(check bool) "main in reachable" true (List.mem (qname prog main) names)

let suite =
  ( "smoke",
    [
      Alcotest.test_case "skipflow removes dead remove()" `Quick test_skipflow_removes_dead_call;
      Alcotest.test_case "skipflow sound with virtual thread" `Quick
        test_skipflow_sound_with_virtual_thread;
      Alcotest.test_case "pta keeps spurious call" `Quick test_pta_keeps_spurious_call;
      Alcotest.test_case "metrics shape" `Quick test_metrics_shape;
      Alcotest.test_case "reachable names" `Quick test_reachable_names;
    ] )
