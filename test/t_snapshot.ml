(* The checkpoint/resume robustness matrix:

   - the Snapshot container rejects every corruption class (truncation,
     bit flips anywhere, foreign files, wrong kind, stale schema) with a
     typed error — no exception ever escapes a read;
   - pause-on-budget + resume reaches the *identical* fixed point as an
     uninterrupted run — same reachable set, same enabled bit and
     [Vstate] on every flow — across a fuzz corpus, both configs, and
     both engine modes; resuming twice (pause again mid-resume) also
     converges to the same point;
   - a snapshot survives a disk round trip through the container and the
     restored engine continues the paused run's counters. *)

open Skipflow_ir
module C = Skipflow_core
module W = Skipflow_workloads

(* ------------------------- container round trip ----------------------- *)

let in_temp_dir f =
  let dir = Filename.temp_dir "skipflow-snap" "" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let write_exn ~path ~kind ~version payload =
  match C.Snapshot.write ~path ~kind ~version payload with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write failed: %s" (C.Snapshot.error_message e)

let test_container_round_trip () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "blob" in
      let payload = String.init 4096 (fun i -> Char.chr (i * 7 land 0xff)) in
      write_exn ~path ~kind:"test-kind" ~version:3 payload;
      (match C.Snapshot.read ~path ~kind:"test-kind" ~version:3 with
      | Ok p -> Alcotest.(check string) "payload round-trips" payload p
      | Error e -> Alcotest.failf "read failed: %s" (C.Snapshot.error_message e));
      (* the empty payload is a valid blob too *)
      write_exn ~path ~kind:"test-kind" ~version:3 "";
      match C.Snapshot.read ~path ~kind:"test-kind" ~version:3 with
      | Ok p -> Alcotest.(check string) "empty payload round-trips" "" p
      | Error e -> Alcotest.failf "empty read failed: %s" (C.Snapshot.error_message e))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Every way of damaging a written blob must come back as a typed error.
   The taxonomy per damage site is part of the contract. *)
let test_container_rejects_corruption () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "blob" in
      let payload = String.init 1024 (fun i -> Char.chr (i land 0xff)) in
      let fresh () = write_exn ~path ~kind:"test-kind" ~version:1 payload in
      let expect ctx classify =
        match C.Snapshot.read ~path ~kind:"test-kind" ~version:1 with
        | Ok _ -> Alcotest.failf "%s: damaged blob read back Ok" ctx
        | Error e ->
            if not (classify e) then
              Alcotest.failf "%s: unexpected error %s" ctx
                (C.Snapshot.error_message e)
      in
      fresh ();
      let intact = read_file path in
      (* truncation at every region: empty, mid-header, mid-payload *)
      List.iter
        (fun keep ->
          write_file path (String.sub intact 0 keep);
          expect
            (Printf.sprintf "truncated to %d" keep)
            (function C.Snapshot.Truncated _ -> true | _ -> false))
        [ 0; 3; String.length intact / 2; String.length intact - 1 ];
      (* a bit flip in the magic is a foreign file; in the payload or
         trailing CRC it is a checksum mismatch *)
      let flip pos =
        let b = Bytes.of_string intact in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
        write_file path (Bytes.to_string b)
      in
      flip 0;
      expect "flipped magic"
        (function C.Snapshot.Bad_magic _ -> true | _ -> false);
      flip (String.length intact / 2);
      expect "flipped payload byte"
        (function C.Snapshot.Bad_checksum _ -> true | _ -> false);
      flip (String.length intact - 1);
      expect "flipped checksum byte"
        (function C.Snapshot.Bad_checksum _ -> true | _ -> false);
      (* wrong kind and stale schema version *)
      fresh ();
      (match C.Snapshot.read ~path ~kind:"other-kind" ~version:1 with
      | Error (C.Snapshot.Bad_kind { found = "test-kind"; _ }) -> ()
      | Error e -> Alcotest.failf "wrong kind: %s" (C.Snapshot.error_message e)
      | Ok _ -> Alcotest.fail "wrong kind read back Ok");
      (match C.Snapshot.read ~path ~kind:"test-kind" ~version:2 with
      | Error (C.Snapshot.Bad_version { found = 1; expected = 2; _ }) -> ()
      | Error e -> Alcotest.failf "stale version: %s" (C.Snapshot.error_message e)
      | Ok _ -> Alcotest.fail "stale version read back Ok");
      (* garbage that was never a blob *)
      write_file path "this is not a snapshot";
      expect "garbage file"
        (function
          | C.Snapshot.Bad_magic _ | C.Snapshot.Truncated _ -> true
          | _ -> false);
      (* a missing file is an I/O error, not an exception *)
      Sys.remove path;
      expect "missing file" (function C.Snapshot.Io _ -> true | _ -> false))

(* ----------------------- fixed-point equivalence ---------------------- *)

let reachable_ids e =
  List.fold_left
    (fun acc (m : Program.meth) -> Ids.Meth.Set.add m.Program.m_id acc)
    Ids.Meth.Set.empty (C.Engine.reachable_methods e)

(* Same flow-by-flow comparison as the dedup/reference differential
   tests: per-method flow lists are in deterministic construction order,
   so zipping lines them up 1:1. *)
let check_same_fixed_point ~ctx (ea : C.Engine.t) (eb : C.Engine.t) =
  if not (Ids.Meth.Set.equal (reachable_ids ea) (reachable_ids eb)) then
    Alcotest.failf "%s: reachable sets differ" ctx;
  List.iter
    (fun (ga : C.Graph.method_graph) ->
      let mid = ga.C.Graph.g_meth.Program.m_id in
      match C.Engine.graph_of eb mid with
      | None -> Alcotest.failf "%s: method missing in resumed run" ctx
      | Some gb ->
          let fa = ga.C.Graph.g_flows and fb = gb.C.Graph.g_flows in
          if List.length fa <> List.length fb then
            Alcotest.failf "%s: flow counts differ for a method" ctx;
          List.iter2
            (fun (x : C.Flow.t) (y : C.Flow.t) ->
              if x.C.Flow.enabled <> y.C.Flow.enabled then
                Alcotest.failf "%s: enabled bit differs on flow %d/%d" ctx
                  x.C.Flow.id y.C.Flow.id;
              if not (C.Vstate.equal x.C.Flow.state y.C.Flow.state) then
                Alcotest.failf "%s: state differs on flow %d/%d" ctx
                  x.C.Flow.id y.C.Flow.id;
              if not (C.Vstate.equal x.C.Flow.raw y.C.Flow.raw) then
                Alcotest.failf "%s: raw state differs on flow %d/%d" ctx
                  x.C.Flow.id y.C.Flow.id)
            fa fb)
    (C.Engine.graphs ea)

let corpus =
  List.map
    (fun seed ->
      W.Gen_random.compile
        {
          W.Gen_random.seed;
          classes = 4 + (seed mod 6);
          meths_per_class = 1 + (seed mod 3);
          max_stmts = 5 + (seed mod 4);
        })
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let resume_exn ~ctx ?budget ?on_budget bytes =
  match C.Analysis.resume ?budget ?on_budget bytes with
  | Ok r -> r
  | Error msg -> Alcotest.failf "%s: resume failed: %s" ctx msg

(* Pause under a tiny task budget, resume unlimited, and demand the
   resumed fixed point equals the uninterrupted run's — over the corpus,
   both configs, both engine modes.  Programs small enough to finish
   under the pause budget just complete; the final assertion guarantees
   the matrix actually exercised the pause path. *)
let test_pause_resume_identical_fixed_point () =
  let paused_cases = ref 0 in
  List.iteri
    (fun i (prog, main) ->
      List.iter
        (fun (cname, config) ->
          List.iter
            (fun (mname, mode) ->
              let ctx = Printf.sprintf "seed %d, %s, %s" i cname mname in
              let straight =
                C.Analysis.run ~config ~mode prog ~roots:[ main ]
              in
              let small =
                { config with C.Config.budget = C.Budget.make ~max_tasks:25 () }
              in
              let paused =
                C.Analysis.run ~config:small ~mode ~on_budget:`Pause prog
                  ~roots:[ main ]
              in
              let finished =
                match paused.C.Analysis.outcome with
                | C.Engine.Completed -> paused
                | C.Engine.Paused bytes ->
                    incr paused_cases;
                    Alcotest.(check bool)
                      (ctx ^ ": paused run is not degraded")
                      false
                      (C.Engine.is_degraded paused.C.Analysis.engine);
                    resume_exn ~ctx ~budget:C.Budget.unlimited bytes
              in
              (match finished.C.Analysis.outcome with
              | C.Engine.Completed -> ()
              | C.Engine.Paused _ ->
                  Alcotest.failf "%s: unlimited resume paused again" ctx);
              check_same_fixed_point ~ctx straight.C.Analysis.engine
                finished.C.Analysis.engine)
            [ ("dedup", C.Engine.Dedup); ("ref", C.Engine.Reference) ])
        [
          ("skipflow", C.Config.skipflow);
          ( "skipflow-product",
            { C.Config.skipflow with C.Config.pval = C.Pval.Product } );
          ("pta", C.Config.pta);
        ])
    corpus;
  Alcotest.(check bool)
    "the corpus exercised the pause path" true (!paused_cases >= 8)

(* Pausing a second time mid-resume must still converge to the same
   point: pause at 25 tasks, resume under 60 (pausing again on the big
   programs), then resume unlimited. *)
let test_double_resume_deterministic () =
  let double_paused = ref 0 in
  List.iteri
    (fun i (prog, main) ->
      let ctx = Printf.sprintf "seed %d" i in
      let straight = C.Analysis.run prog ~roots:[ main ] in
      let small =
        {
          C.Config.skipflow with
          C.Config.budget = C.Budget.make ~max_tasks:25 ();
        }
      in
      let first =
        C.Analysis.run ~config:small ~on_budget:`Pause prog ~roots:[ main ]
      in
      let finished =
        match first.C.Analysis.outcome with
        | C.Engine.Completed -> first
        | C.Engine.Paused bytes -> (
            let second =
              resume_exn ~ctx
                ~budget:(C.Budget.make ~max_tasks:60 ())
                ~on_budget:`Pause bytes
            in
            match second.C.Analysis.outcome with
            | C.Engine.Completed -> second
            | C.Engine.Paused bytes2 ->
                incr double_paused;
                resume_exn ~ctx ~budget:C.Budget.unlimited bytes2)
      in
      check_same_fixed_point ~ctx straight.C.Analysis.engine
        finished.C.Analysis.engine)
    corpus;
  Alcotest.(check bool)
    "the corpus exercised the double-pause path" true (!double_paused >= 1)

(* ------------------------- disk round trip ---------------------------- *)

let test_snapshot_disk_round_trip () =
  in_temp_dir (fun dir ->
      let prog, main = List.nth corpus 3 in
      let small =
        {
          C.Config.skipflow with
          C.Config.budget = C.Budget.make ~max_tasks:25 ();
        }
      in
      let paused =
        C.Analysis.run ~config:small ~on_budget:`Pause prog ~roots:[ main ]
      in
      (match paused.C.Analysis.outcome with
      | C.Engine.Paused _ -> ()
      | C.Engine.Completed -> Alcotest.fail "program too small to pause");
      let path = Filename.concat dir "engine.snap" in
      (match C.Engine.save_snapshot paused.C.Analysis.engine ~path with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save: %s" (C.Snapshot.error_message e));
      let trace = C.Trace.create () in
      let restored =
        match
          C.Engine.load_snapshot ~trace ~budget:C.Budget.unlimited path
        with
        | Ok e -> e
        | Error e -> Alcotest.failf "load: %s" (C.Snapshot.error_message e)
      in
      (* the restored engine continues the paused run's accounting … *)
      let before = (C.Engine.stats paused.C.Analysis.engine).C.Engine.tasks_processed in
      (match C.Engine.run restored with
      | C.Engine.Completed -> ()
      | C.Engine.Paused _ -> Alcotest.fail "unlimited restored run paused");
      let after = (C.Engine.stats restored).C.Engine.tasks_processed in
      Alcotest.(check bool) "counters continue, not restart" true (after > before);
      (* … and reaches the same fixed point as an uninterrupted solve *)
      let straight = C.Analysis.run prog ~roots:[ main ] in
      check_same_fixed_point ~ctx:"disk round trip"
        straight.C.Analysis.engine restored;
      (* feeding a cache entry to the engine loader is a kind mismatch,
         not a crash *)
      let entry = Filename.concat dir "foreign" in
      write_exn ~path:entry ~kind:"cache-entry" ~version:1 "k\nv";
      match C.Engine.load_snapshot entry with
      | Error (C.Snapshot.Bad_kind _) -> ()
      | Error e ->
          Alcotest.failf "foreign kind: %s" (C.Snapshot.error_message e)
      | Ok _ -> Alcotest.fail "cache entry loaded as an engine snapshot")

(* Snapshots written before the interval × constant primitive domain
   carry flat-only value states, so the payload schema was bumped; a
   pre-bump blob must be rejected as [Bad_version], never decoded into a
   product-domain engine. *)
let test_pre_product_snapshot_rejected () =
  Alcotest.(check bool)
    "payload schema bumped for the product domain" true
    (C.Engine.snapshot_version >= 2);
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "old.snap" in
      write_exn ~path ~kind:C.Engine.snapshot_kind
        ~version:(C.Engine.snapshot_version - 1)
        "flat-era payload";
      match C.Engine.load_snapshot path with
      | Error (C.Snapshot.Bad_version { found; expected; _ }) ->
          Alcotest.(check int) "found the stale version" (C.Engine.snapshot_version - 1) found;
          Alcotest.(check int) "expected the current version" C.Engine.snapshot_version expected
      | Error e ->
          Alcotest.failf "expected Bad_version, got %s" (C.Snapshot.error_message e)
      | Ok _ -> Alcotest.fail "flat-era snapshot decoded under the product schema")

(* An intact container whose payload is not a marshaled engine must be a
   reported [Bad_payload], never a segfault or exception. *)
let test_bad_payload_reported () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "bad.snap" in
      write_exn ~path ~kind:C.Engine.snapshot_kind
        ~version:C.Engine.snapshot_version "not a marshal image";
      match C.Engine.load_snapshot path with
      | Error (C.Snapshot.Bad_payload _) -> ()
      | Error e ->
          Alcotest.failf "expected Bad_payload, got %s"
            (C.Snapshot.error_message e)
      | Ok _ -> Alcotest.fail "garbage payload decoded")

let suite =
  ( "snapshot",
    [
      Alcotest.test_case "container round trip" `Quick test_container_round_trip;
      Alcotest.test_case "container rejects every corruption class" `Quick
        test_container_rejects_corruption;
      Alcotest.test_case "pause+resume = straight run (corpus x config x mode)"
        `Quick test_pause_resume_identical_fixed_point;
      Alcotest.test_case "double resume converges to the same point" `Quick
        test_double_resume_deterministic;
      Alcotest.test_case "snapshot survives a disk round trip" `Quick
        test_snapshot_disk_round_trip;
      Alcotest.test_case "pre-product snapshots are rejected by version" `Quick
        test_pre_product_snapshot_rejected;
      Alcotest.test_case "undecodable payload is a reported error" `Quick
        test_bad_payload_reported;
    ] )
