(* Tests for the program model: class hierarchy, subtyping, virtual method
   resolution (the paper's Resolve), and field lookup (LookUp). *)

open Skipflow_ir

(* Build:   A        (f, m, n)
           / \
          B   C      B overrides m; C overrides n, adds g
          |
          D          D overrides m again
   plus an unrelated root class E. *)
let fixture () =
  let p = Program.create () in
  let a = Program.declare_class p ~name:"A" () in
  let b = Program.declare_class p ~name:"B" ~super:a.Program.c_id () in
  let c = Program.declare_class p ~name:"C" ~super:a.Program.c_id () in
  let d = Program.declare_class p ~name:"D" ~super:b.Program.c_id () in
  let e = Program.declare_class p ~name:"E" () in
  let f_fld = Program.declare_field p a ~name:"f" ~ty:Ty.Int () in
  let g_fld = Program.declare_field p c ~name:"g" ~ty:(Ty.Obj a.Program.c_id) () in
  let m_a = Program.declare_meth p a ~name:"m" ~static:false ~param_tys:[] ~ret_ty:Ty.Int () in
  let n_a = Program.declare_meth p a ~name:"n" ~static:false ~param_tys:[] ~ret_ty:Ty.Void () in
  let m_b = Program.declare_meth p b ~name:"m" ~static:false ~param_tys:[] ~ret_ty:Ty.Int () in
  let n_c = Program.declare_meth p c ~name:"n" ~static:false ~param_tys:[] ~ret_ty:Ty.Void () in
  let m_d = Program.declare_meth p d ~name:"m" ~static:false ~param_tys:[] ~ret_ty:Ty.Int () in
  (p, (a, b, c, d, e), (f_fld, g_fld), (m_a, n_a, m_b, n_c, m_d))

let test_subtype () =
  let p, (a, b, c, d, e), _, _ = fixture () in
  let sub x y = Program.subtype p ~sub:x.Program.c_id ~sup:y.Program.c_id in
  Alcotest.(check bool) "reflexive" true (sub a a);
  Alcotest.(check bool) "B <: A" true (sub b a);
  Alcotest.(check bool) "D <: A transitively" true (sub d a);
  Alcotest.(check bool) "D <: B" true (sub d b);
  Alcotest.(check bool) "A not <: B" false (sub a b);
  Alcotest.(check bool) "C not <: B" false (sub c b);
  Alcotest.(check bool) "E unrelated" false (sub e a);
  Alcotest.(check bool) "A not <: E" false (sub a e)

let test_all_subtypes () =
  let p, (a, b, _c, _d, _e), _, _ = fixture () in
  let names cid = List.map (Program.class_name p) (Program.all_subtypes p cid) in
  Alcotest.(check (slist string compare)) "subtypes of A" [ "A"; "B"; "C"; "D" ]
    (names a.Program.c_id);
  Alcotest.(check (slist string compare)) "subtypes of B" [ "B"; "D" ] (names b.Program.c_id)

let test_concrete_subtypes_excludes_abstract () =
  let p = Program.create () in
  let a = Program.declare_class p ~name:"A" ~abstract:true () in
  let b = Program.declare_class p ~name:"B" ~super:a.Program.c_id () in
  ignore b;
  let names = List.map (Program.class_name p) (Program.concrete_subtypes p a.Program.c_id) in
  Alcotest.(check (list string)) "only concrete" [ "B" ] names

let test_resolve () =
  let p, (a, b, c, d, _e), _, (m_a, n_a, m_b, n_c, m_d) = fixture () in
  let resolve cls target =
    Option.map
      (fun (m : Program.meth) -> Ids.Meth.to_int m.Program.m_id)
      (Program.resolve p ~recv_cls:cls.Program.c_id ~target)
  in
  let id (m : Program.meth) = Some (Ids.Meth.to_int m.Program.m_id) in
  Alcotest.(check (option int)) "A.m -> A.m" (id m_a) (resolve a m_a.Program.m_id);
  Alcotest.(check (option int)) "B.m -> B.m" (id m_b) (resolve b m_a.Program.m_id);
  Alcotest.(check (option int)) "C.m -> A.m (inherited)" (id m_a) (resolve c m_a.Program.m_id);
  Alcotest.(check (option int)) "D.m -> D.m (deep override)" (id m_d) (resolve d m_a.Program.m_id);
  Alcotest.(check (option int)) "D.n -> A.n" (id n_a) (resolve d n_a.Program.m_id);
  Alcotest.(check (option int)) "C.n -> C.n" (id n_c) (resolve c n_a.Program.m_id);
  (* resolution on the null class returns nothing *)
  Alcotest.(check (option int)) "null receiver" None
    (Option.map
       (fun (m : Program.meth) -> Ids.Meth.to_int m.Program.m_id)
       (Program.resolve p ~recv_cls:Program.null_class ~target:m_a.Program.m_id))

let test_lookup_field () =
  let p, (a, _b, c, d, e), (f_fld, g_fld), _ = fixture () in
  let look cls fld =
    Option.map
      (fun (f : Program.field) -> f.Program.f_name)
      (Program.lookup_field p ~recv_cls:cls.Program.c_id ~field:fld.Program.f_id)
  in
  Alcotest.(check (option string)) "A.f" (Some "f") (look a f_fld);
  Alcotest.(check (option string)) "D inherits f" (Some "f") (look d f_fld);
  Alcotest.(check (option string)) "C.g" (Some "g") (look c g_fld);
  Alcotest.(check (option string)) "A has no g" None (look a g_fld);
  Alcotest.(check (option string)) "E has no f" None (look e f_fld)

let test_duplicates_rejected () =
  let p = Program.create () in
  let a = Program.declare_class p ~name:"A" () in
  Alcotest.check_raises "duplicate class" (Program.Duplicate "class A declared twice")
    (fun () -> ignore (Program.declare_class p ~name:"A" ()));
  ignore (Program.declare_field p a ~name:"x" ~ty:Ty.Int ());
  Alcotest.check_raises "duplicate field" (Program.Duplicate "field A.x declared twice")
    (fun () -> ignore (Program.declare_field p a ~name:"x" ~ty:Ty.Int ()));
  ignore (Program.declare_meth p a ~name:"m" ~static:false ~param_tys:[] ~ret_ty:Ty.Void ());
  Alcotest.check_raises "duplicate method" (Program.Duplicate "method A.m declared twice")
    (fun () ->
      ignore (Program.declare_meth p a ~name:"m" ~static:false ~param_tys:[] ~ret_ty:Ty.Void ()))

let test_null_class_reserved () =
  let p = Program.create () in
  Alcotest.(check bool) "id 0 is null" true (Program.is_null_class Program.null_class);
  Alcotest.(check string) "name" "null" (Program.class_name p Program.null_class);
  let a = Program.declare_class p ~name:"A" () in
  Alcotest.(check bool) "first user class is not null" false
    (Program.is_null_class a.Program.c_id)

let test_names () =
  let p, (a, _, _, _, _), (f_fld, _), (m_a, _, _, _, _) = fixture () in
  ignore a;
  Alcotest.(check string) "qualified meth" "A.m" (Program.qualified_name p m_a.Program.m_id);
  Alcotest.(check string) "qualified field" "A.f"
    (Program.qualified_field_name p f_fld.Program.f_id)

let test_freeze_idempotent () =
  let p, _, _, _ = fixture () in
  let z1 = Program.freeze p in
  let z2 = Program.freeze p in
  Alcotest.(check bool) "same frozen value" true (z1 == z2)

let suite =
  ( "program",
    [
      Alcotest.test_case "subtype" `Quick test_subtype;
      Alcotest.test_case "all_subtypes" `Quick test_all_subtypes;
      Alcotest.test_case "concrete excludes abstract" `Quick
        test_concrete_subtypes_excludes_abstract;
      Alcotest.test_case "virtual resolve" `Quick test_resolve;
      Alcotest.test_case "field lookup" `Quick test_lookup_field;
      Alcotest.test_case "duplicates rejected" `Quick test_duplicates_rejected;
      Alcotest.test_case "null class reserved" `Quick test_null_class_reserved;
      Alcotest.test_case "qualified names" `Quick test_names;
      Alcotest.test_case "freeze idempotent" `Quick test_freeze_idempotent;
    ] )
