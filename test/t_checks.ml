(* The lint subsystem (lib/checks): the JSON layer round-trips, the check
   registry honors selection, findings carry spans that match the golden
   CI output for the example programs, and the Diag additions (Note
   severity, warning/note constructors, position-stable render_all) behave.

   The golden files under test/golden/ are byte-for-byte what
   `skipflow lint <example> --format json --fail-on never` prints; the CI
   workflow diffs the same outputs, so a change in lint behavior must
   update both in one commit. *)

module C = Skipflow_core
module F = Skipflow_frontend
module K = Skipflow_checks

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* cwd at test runtime is _build/default/test *)
let example name = "../examples/" ^ name
let golden name = "golden/" ^ name

let lint_file path =
  let src = read_file path in
  let prog = F.Frontend.compile src in
  let main = Option.get (F.Frontend.main_of prog) in
  let r = C.Analysis.run ~config:C.Config.skipflow prog ~roots:[ main ] in
  let ctx = K.Checks.make_ctx ~engine:r.C.Analysis.engine ~roots:[ main ] in
  K.Checks.run ctx

(* ----- golden files: same JSON the CLI prints ----- *)

let check_golden ~example_file ~golden_file () =
  let findings = lint_file (example example_file) in
  let json =
    K.Finding.document_to_json ~file:example_file
      ~analysis:(C.Config.name C.Config.skipflow) findings
  in
  Alcotest.(check string)
    (example_file ^ " lint output matches golden")
    (read_file (golden golden_file))
    (K.Json.to_string json)

let test_demo_covers_all_checks () =
  let findings = lint_file (example "lint_demo.mj") in
  let kinds =
    List.sort_uniq String.compare (List.map (fun f -> f.K.Finding.check) findings)
  in
  Alcotest.(check (list string))
    "every registered check fires on the demo program"
    (List.sort String.compare (List.map (fun c -> c.K.Checks.id) K.Checks.all))
    kinds;
  Alcotest.(check bool) "every finding carries a span" true
    (List.for_all (fun f -> f.K.Finding.span <> None) findings)

(* ----- JSON round-trip ----- *)

let test_json_roundtrip () =
  let findings = lint_file (example "lint_demo.mj") in
  Alcotest.(check bool) "demo program yields findings" true (findings <> []);
  let reparsed =
    K.Finding.list_of_json
      (K.Json.of_string (K.Json.to_string (K.Finding.list_to_json findings)))
  in
  Alcotest.(check bool) "parse . print = id on findings" true (reparsed = findings)

let test_json_parse_errors () =
  let rejects s =
    Alcotest.(check bool)
      (Printf.sprintf "rejects %S" s)
      true
      (try
         ignore (K.Json.of_string s);
         false
       with K.Json.Parse_error _ -> true)
  in
  List.iter rejects [ ""; "{"; "[1,]"; "1.5"; "{\"a\" 1}"; "[1] trailing" ];
  Alcotest.(check bool) "accepts nested"
    true
    (K.Json.of_string "{\"a\": [1, null, true, \"x\"]}"
    = K.Json.Obj
        [ ("a", K.Json.Arr [ K.Json.Int 1; K.Json.Null; K.Json.Bool true; K.Json.Str "x" ]) ])

(* ----- registry selection ----- *)

let test_check_selection () =
  let src = read_file (example "lint_demo.mj") in
  let prog = F.Frontend.compile src in
  let main = Option.get (F.Frontend.main_of prog) in
  let r = C.Analysis.run ~config:C.Config.skipflow prog ~roots:[ main ] in
  let ctx = K.Checks.make_ctx ~engine:r.C.Analysis.engine ~roots:[ main ] in
  let only = K.Checks.run ~only:[ "dead-method"; "devirtualize" ] ctx in
  Alcotest.(check bool) "selection yields findings" true (only <> []);
  Alcotest.(check bool) "only selected checks fire" true
    (List.for_all
       (fun f -> List.mem f.K.Finding.check [ "dead-method"; "devirtualize" ])
       only);
  Alcotest.(check bool) "unknown check raises" true
    (try
       ignore (K.Checks.find "no-such-check");
       false
     with K.Checks.Unknown_check "no-such-check" -> true)

(* ----- severity machinery ----- *)

let test_severity () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (K.Finding.severity_name s ^ " round-trips")
        true
        (K.Finding.severity_of_name (K.Finding.severity_name s) = Some s))
    [ K.Finding.Error; K.Finding.Warning; K.Finding.Note ];
  Alcotest.(check bool) "unknown severity name" true
    (K.Finding.severity_of_name "fatal" = None);
  Alcotest.(check bool) "ranks order Note < Warning < Error" true
    (K.Finding.severity_rank K.Finding.Note < K.Finding.severity_rank K.Finding.Warning
    && K.Finding.severity_rank K.Finding.Warning < K.Finding.severity_rank K.Finding.Error)

(* ----- Diag: Note severity and position-stable rendering ----- *)

let test_diag_note_and_order () =
  let pos line col = { F.Lexer.line; col } in
  let d_err = F.Diag.error ~stage:F.Diag.Type (pos 5 3) "type mismatch" in
  let d_warn = F.Diag.warning ~stage:F.Diag.Lint (pos 2 1) "dead branch" in
  let d_note = F.Diag.note ~stage:F.Diag.Lint (pos 2 9) "devirtualizable" in
  Alcotest.(check bool) "note is not an error" false (F.Diag.is_error d_note);
  Alcotest.(check bool) "warning is not an error" false (F.Diag.is_error d_warn);
  let src = "line one\nline two!\n\n\nline 5\n" in
  let text =
    Format.asprintf "%a" (F.Diag.render_all ~file:"x.mj" ~src) [ d_err; d_note; d_warn ]
  in
  let index needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = if i + nl > tl then -1 else if String.sub text i nl = needle then i else go (i + 1) in
    go 0
  in
  let i_warn = index "x.mj:2:1" and i_note = index "x.mj:2:9" and i_err = index "x.mj:5:3" in
  Alcotest.(check bool) "all three rendered" true (i_warn >= 0 && i_note >= 0 && i_err >= 0);
  Alcotest.(check bool) "rendered in source order" true (i_warn < i_note && i_note < i_err);
  Alcotest.(check bool) "note severity named" true (index "note:" >= 0)

let suite =
  ( "checks",
    [
      Alcotest.test_case "golden: lint_demo.mj" `Quick
        (check_golden ~example_file:"lint_demo.mj" ~golden_file:"lint_demo.json");
      Alcotest.test_case "golden: threads.mj" `Quick
        (check_golden ~example_file:"threads.mj" ~golden_file:"threads.json");
      Alcotest.test_case "demo fires every check kind" `Quick test_demo_covers_all_checks;
      Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip;
      Alcotest.test_case "JSON parse errors" `Quick test_json_parse_errors;
      Alcotest.test_case "check selection" `Quick test_check_selection;
      Alcotest.test_case "severity names and ranks" `Quick test_severity;
      Alcotest.test_case "diag note + stable order" `Quick test_diag_note_and_order;
    ] )
