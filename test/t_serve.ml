(* The serve daemon: protocol parsing, the full error matrix (every
   facade error variant and every serve-specific error, each with its
   stable kind and exit code), incremental-vs-fresh flow-by-flow equality
   over an edit corpus that exercises every strategy, deadline rollback,
   overload shedding, and kill-9/warm-restart response byte-equality. *)

module C = Skipflow_core
module K = Skipflow_checks
module Api = Skipflow_api
module P = Skipflow_serve.Protocol
module I = Skipflow_serve.Incremental
module Sv = Skipflow_serve.Server

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_state_dir f =
  let dir = Filename.temp_dir "skipflow-serve" "" in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let req fields = K.Json.to_compact_string (K.Json.Obj fields)

let edit_req ?deadline_ms id source =
  req
    ([ ("op", K.Json.Str "edit"); ("id", K.Json.Int id) ]
    @ (match deadline_ms with
      | Some d -> [ ("deadline_ms", K.Json.Int d) ]
      | None -> [])
    @ [ ("source", K.Json.Str source) ])

let op_req ?(extra = []) id op =
  req ([ ("op", K.Json.Str op); ("id", K.Json.Int id) ] @ extra)

(* a response is exactly one line of parseable JSON *)
let one_response = function
  | [ line ] -> K.Json.of_string (String.trim line)
  | other -> Alcotest.failf "expected one response line, got %d" (List.length other)

let bool_member name j =
  match K.Json.member name j with
  | Some (K.Json.Bool b) -> b
  | _ -> Alcotest.failf "missing bool %S" name

let str_member name j =
  match K.Json.member name j with
  | Some (K.Json.Str s) -> s
  | _ -> Alcotest.failf "missing string %S" name

let int_member name j =
  match K.Json.member name j with
  | Some (K.Json.Int n) -> n
  | _ -> Alcotest.failf "missing int %S" name

let error_of j =
  match K.Json.member "error" j with
  | Some e -> e
  | None -> Alcotest.failf "response has no error object"

(* --------------------------- protocol parsing -------------------------- *)

let test_parse_requests () =
  (match P.parse_request {|{"op":"analyze","id":7,"deadline_ms":250}|} with
  | Ok { P.req_id = Some 7; req_deadline_ms = Some 250; req = P.Analyze { roots = None } } -> ()
  | _ -> Alcotest.fail "analyze envelope mis-parsed");
  (match P.parse_request {|{"op":"analyze","roots":["A.b","C.d"]}|} with
  | Ok { P.req = P.Analyze { roots = Some [ "A.b"; "C.d" ] }; _ } -> ()
  | _ -> Alcotest.fail "analyze roots mis-parsed");
  (match P.parse_request {|{"op":"lint","only":["dead-method"]}|} with
  | Ok { P.req = P.Lint { only = Some [ "dead-method" ] }; _ } -> ()
  | _ -> Alcotest.fail "lint only mis-parsed");
  (match P.parse_request {|{"op":"edit","source":"class A { }"}|} with
  | Ok { P.req = P.Edit { source = "class A { }" }; _ } -> ()
  | _ -> Alcotest.fail "edit mis-parsed");
  List.iter
    (fun (line, expect) ->
      match (P.parse_request line, expect) with
      | Error (P.Parse_error _), `Parse -> ()
      | Error (P.Unknown_op _), `Unknown -> ()
      | got, _ ->
          Alcotest.failf "%s: wrong classification (%s)" line
            (match got with
            | Ok _ -> "parsed"
            | Error e -> P.error_kind e))
    [
      ("{", `Parse);
      ("not json", `Parse);
      ("{\"id\":1}", `Parse);
      ({|{"op":"edit"}|}, `Parse);
      ({|{"op":"analyze","roots":[1]}|}, `Parse);
      ({|{"op":"analyze","schema_version":999}|}, `Parse);
      ({|{"op":"frobnicate"}|}, `Unknown);
    ]

(* ----------------------- the error matrix (kinds) ---------------------- *)

(* Every Api.error variant, produced through the facade (not hand-built),
   rendered through the protocol: stable kind, documented exit code, and
   for compile errors the positioned diagnostics. *)
let test_api_error_matrix () =
  let fields e = P.api_error_fields e in
  let kind e = str_member "kind" (K.Json.Obj (fields e)) in
  let code e = int_member "exit_code" (K.Json.Obj (fields e)) in
  let io =
    match Api.compile (`File "/nonexistent/skipflow-test.mj") with
    | Error e -> e
    | Ok _ -> Alcotest.fail "unreadable file compiled"
  in
  Alcotest.(check string) "io kind" "io_error" (kind io);
  Alcotest.(check int) "io exit" 2 (code io);
  let compile =
    match Api.compile (`Text "class Broken {") with
    | Error e -> e
    | Ok _ -> Alcotest.fail "broken source compiled"
  in
  Alcotest.(check string) "compile kind" "compile_error" (kind compile);
  Alcotest.(check int) "compile exit" 2 (code compile);
  (match K.Json.member "diags" (K.Json.Obj (fields compile)) with
  | Some (K.Json.Arr (d :: _)) ->
      ignore (int_member "line" d);
      ignore (int_member "col" d);
      ignore (str_member "message" d)
  | _ -> Alcotest.fail "compile error without positioned diags");
  let prog, _ = Result.get_ok (Api.compile (`Text "class A { static void main() { } }")) in
  let unknown_root =
    match Api.resolve_roots prog [ "Nope.nada" ] with
    | Error e -> e
    | Ok _ -> Alcotest.fail "bogus root resolved"
  in
  Alcotest.(check string) "root kind" "unknown_root" (kind unknown_root);
  Alcotest.(check int) "root exit" 2 (code unknown_root);
  let mainless, _ = Result.get_ok (Api.compile (`Text "class B { int f() { return 1; } }")) in
  let no_main =
    match Api.resolve_roots mainless [] with
    | Error e -> e
    | Ok _ -> Alcotest.fail "mainless program resolved a default root"
  in
  Alcotest.(check string) "no-main kind" "no_main" (kind no_main);
  Alcotest.(check int) "no-main exit" 2 (code no_main);
  let internal =
    match Api.protect (fun () -> failwith "boom") with
    | Error e -> e
    | Ok _ -> Alcotest.fail "protect let an exception through"
  in
  Alcotest.(check string) "internal kind" "internal_error" (kind internal);
  Alcotest.(check int) "internal exit" 1 (code internal)

(* The serve-specific errors: kind, exit code, and the structured extras
   (retry_after_ms, deadline_ms). *)
let test_serve_error_matrix () =
  let render e = P.error_json e in
  let check_one e ~kind ~exit_code =
    let j = render e in
    Alcotest.(check string) (kind ^ " kind") kind (str_member "kind" j);
    Alcotest.(check int) (kind ^ " exit") exit_code (int_member "exit_code" j)
  in
  check_one (P.Parse_error "bad") ~kind:"parse_error" ~exit_code:2;
  check_one (P.Unknown_op "zap") ~kind:"unknown_op" ~exit_code:2;
  check_one P.No_program ~kind:"no_program" ~exit_code:2;
  check_one (P.Deadline_exceeded { deadline_ms = 17 }) ~kind:"deadline_exceeded"
    ~exit_code:3;
  check_one (P.Overloaded { retry_after_ms = 40 }) ~kind:"overloaded"
    ~exit_code:1;
  check_one P.Shutting_down ~kind:"shutting_down" ~exit_code:1;
  Alcotest.(check int) "deadline carried" 17
    (int_member "deadline_ms" (render (P.Deadline_exceeded { deadline_ms = 17 })));
  Alcotest.(check int) "retry hint carried" 40
    (int_member "retry_after_ms" (render (P.Overloaded { retry_after_ms = 40 })))

(* ------------------- incremental vs fresh (the oracle) ----------------- *)

let base_src =
  "class Main {\n\
  \  static void main() {\n\
  \    Live l = new Live();\n\
  \    int x = l.go();\n\
  \  }\n\
   }\n\
   class Live { int go() { return 1; } }\n\
   class Dead { int never() { return 2; } }\n"

let replace ~sub ~by s =
  let n = String.length sub in
  let len = String.length s in
  let b = Buffer.create len in
  let i = ref 0 in
  while !i < len do
    if !i + n <= len && String.equal (String.sub s !i n) sub then begin
      Buffer.add_string b by;
      i := !i + n
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

let dead_edit = replace ~sub:"return 2" ~by:"return 3" base_src
let live_edit = replace ~sub:"return 1" ~by:"return 5" base_src

let config = C.Config.skipflow
let mode = C.Engine.Dedup

let fresh_engine ~source ~roots =
  match
    I.solve_full ~config ~mode ~deadline_ms:None ~generation:0 ~source ~roots ()
  with
  | Ok o -> o.I.o_state.I.engine
  | Error e -> Alcotest.failf "fresh solve failed: %s" (P.error_message e)

(* Drive the incremental layer through an edit corpus that reaches every
   strategy, certifying each committed state flow-by-flow against a
   from-scratch solve — the acceptance oracle. *)
let test_incremental_matches_fresh () =
  let memo = I.Memo.create 8 in
  let seen = ref [] in
  let commit (o : I.outcome) =
    List.iter (I.Memo.add memo) o.I.o_memo_adds;
    seen := I.strategy_name o.I.o_strategy :: !seen;
    o.I.o_state
  in
  let certify label (st : I.state) =
    match
      I.same_fixed_point st.I.engine
        (fresh_engine ~source:st.I.source ~roots:st.I.roots)
    with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "%s: diverged from fresh solve: %s" label msg
  in
  let edit label st source expect =
    match I.edit ~config ~mode ~deadline_ms:None ~memo st ~source with
    | Error e -> Alcotest.failf "%s: %s" label (P.error_message e)
    | Ok o ->
        Alcotest.(check string) label expect (I.strategy_name o.I.o_strategy);
        let st = commit o in
        certify label st;
        st
  in
  let analyze label st roots expect =
    match I.analyze_roots ~config ~mode ~deadline_ms:None ~memo st ~roots with
    | Error e -> Alcotest.failf "%s: %s" label (P.error_message e)
    | Ok o ->
        Alcotest.(check string) label expect (I.strategy_name o.I.o_strategy);
        let st = commit o in
        certify label st;
        st
  in
  let st =
    match
      I.solve_full ~config ~mode ~deadline_ms:None ~generation:0
        ~source:base_src ~roots:[] ()
    with
    | Ok o -> commit o
    | Error e -> Alcotest.failf "initial solve: %s" (P.error_message e)
  in
  certify "initial" st;
  let st = edit "same source is resident" st base_src "resident" in
  let st = edit "dead-body edit reuses" st dead_edit "reuse" in
  let st = edit "live-body edit resolves fully" st live_edit "full" in
  let st = edit "revert to reused state hits the memo" st dead_edit "memo" in
  let st = edit "revert to base hits the memo" st base_src "memo" in
  let st =
    analyze "grown roots re-drain" st [ "Main.main"; "Dead.never" ] "redrain"
  in
  let st = analyze "same roots are resident" st [ "Main.main"; "Dead.never" ] "resident" in
  let st = analyze "shrunk roots resolve fully" st [ "Main.main" ] "full" in
  ignore st;
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "strategy %s exercised" s)
        true
        (List.mem s !seen))
    [ "resident"; "memo"; "reuse"; "redrain"; "full" ]

(* A reuse or redrain outcome must have passed the certifier. *)
let test_incremental_verified_flag () =
  let memo = I.Memo.create 4 in
  let st =
    match
      I.solve_full ~config ~mode ~deadline_ms:None ~generation:0
        ~source:base_src ~roots:[] ()
    with
    | Ok o -> o.I.o_state
    | Error e -> Alcotest.failf "initial solve: %s" (P.error_message e)
  in
  (match I.edit ~config ~mode ~deadline_ms:None ~memo st ~source:dead_edit with
  | Ok o ->
      Alcotest.(check string) "reuse" "reuse" (I.strategy_name o.I.o_strategy);
      Alcotest.(check bool) "reuse is certified" true o.I.o_verified
  | Error e -> Alcotest.failf "edit: %s" (P.error_message e));
  match
    I.analyze_roots ~config ~mode ~deadline_ms:None ~memo st
      ~roots:[ "Main.main"; "Dead.never" ]
  with
  | Ok o ->
      Alcotest.(check string) "redrain" "redrain"
        (I.strategy_name o.I.o_strategy);
      Alcotest.(check bool) "redrain is certified" true o.I.o_verified
  | Error e -> Alcotest.failf "analyze: %s" (P.error_message e)

(* --------------------------- server behavior --------------------------- *)

let quiet_cfg = { Sv.default_cfg with Sv.sv_log = (fun _ -> ()) }

let create_exn ?initial ~resume cfg =
  match Sv.create ?initial ~resume cfg with
  | Ok srv -> srv
  | Error msg -> Alcotest.failf "create: %s" msg

let test_server_structured_errors () =
  let srv = create_exn ~resume:false quiet_cfg in
  let expect_err line kind =
    let j = one_response (Sv.handle_line srv line) in
    Alcotest.(check bool) (kind ^ " not ok") false (bool_member "ok" j);
    Alcotest.(check string) kind kind (str_member "kind" (error_of j))
  in
  expect_err (op_req 1 "analyze") "no_program";
  expect_err (op_req 2 "profile") "no_program";
  expect_err (op_req 3 "lint") "no_program";
  expect_err "{\"op\":" "parse_error";
  expect_err (op_req 4 "frobnicate") "unknown_op";
  expect_err (edit_req 5 "class Broken {") "compile_error";
  (* the daemon survives all of the above and still serves *)
  let j = one_response (Sv.handle_line srv (edit_req 6 base_src)) in
  Alcotest.(check bool) "daemon alive after errors" true (bool_member "ok" j);
  (* a lint with an unknown check id is a client error, not a crash *)
  let j =
    one_response
      (Sv.handle_line srv
         (op_req 7 "lint"
            ~extra:[ ("only", K.Json.Arr [ K.Json.Str "no-such-check" ]) ]))
  in
  Alcotest.(check string) "unknown check is a parse_error" "parse_error"
    (str_member "kind" (error_of j));
  (* shutdown, then everything is refused *)
  let j = one_response (Sv.handle_line srv (op_req 8 "shutdown")) in
  Alcotest.(check bool) "shutdown ok" true (bool_member "ok" j);
  Alcotest.(check bool) "wants shutdown" true (Sv.wants_shutdown srv);
  let j = one_response (Sv.handle_line srv (op_req 9 "health")) in
  Alcotest.(check string) "post-shutdown refused" "shutting_down"
    (str_member "kind" (error_of j))

let test_deadline_rollback () =
  let srv = create_exn ~initial:(`Text base_src) ~resume:false quiet_cfg in
  let gen0 = Sv.generation srv in
  let j =
    one_response (Sv.handle_line srv (edit_req ~deadline_ms:0 1 live_edit))
  in
  Alcotest.(check bool) "deadline trips" false (bool_member "ok" j);
  Alcotest.(check string) "deadline kind" "deadline_exceeded"
    (str_member "kind" (error_of j));
  Alcotest.(check int) "deadline exit code" 3
    (int_member "exit_code" (error_of j));
  Alcotest.(check int) "rolled back" gen0 (Sv.generation srv);
  (* the resident state still serves, and is the pre-edit one *)
  let j = one_response (Sv.handle_line srv (op_req 2 "analyze")) in
  Alcotest.(check bool) "resident survives" true (bool_member "ok" j);
  (match K.Json.member "result" j with
  | Some r ->
      Alcotest.(check string) "old state is resident" "resident"
        (str_member "strategy" r)
  | None -> Alcotest.fail "no result");
  (* without a deadline the same edit commits *)
  let j = one_response (Sv.handle_line srv (edit_req 3 live_edit)) in
  Alcotest.(check bool) "edit commits without deadline" true (bool_member "ok" j);
  Alcotest.(check int) "generation advanced" (gen0 + 1) (Sv.generation srv)

let test_overload_shedding () =
  let srv =
    create_exn ~initial:(`Text base_src) ~resume:false
      { quiet_cfg with Sv.sv_max_queue = 1; sv_retry_after_ms = 75 }
  in
  Alcotest.(check (list string)) "first enqueues" []
    (Sv.submit srv (op_req 1 "health"));
  Alcotest.(check int) "one pending" 1 (Sv.pending srv);
  let shed = one_response (Sv.submit srv (op_req 2 "health")) in
  Alcotest.(check bool) "shed not ok" false (bool_member "ok" shed);
  Alcotest.(check string) "shed kind" "overloaded"
    (str_member "kind" (error_of shed));
  Alcotest.(check int) "retry hint" 75
    (int_member "retry_after_ms" (error_of shed));
  Alcotest.(check int) "still one pending" 1 (Sv.pending srv);
  (match Sv.drain_one srv with
  | Some [ line ] ->
      let j = K.Json.of_string (String.trim line) in
      Alcotest.(check bool) "queued request served" true (bool_member "ok" j)
  | _ -> Alcotest.fail "drain_one served nothing");
  Alcotest.(check int) "queue drained" 0 (Sv.pending srv);
  Alcotest.(check bool) "drained dry" true (Sv.drain_one srv = None)

(* ----------------------- kill -9 and warm restart ----------------------- *)

let session_lines =
  [
    edit_req 1 base_src;
    op_req 2 "health";
    edit_req 3 dead_edit;
    op_req 4 "analyze";
    edit_req 5 live_edit;
    op_req 6 "analyze"
      ~extra:
        [ ("roots", K.Json.Arr [ K.Json.Str "Main.main"; K.Json.Str "Dead.never" ]) ];
    op_req 7 "profile";
  ]

let run_all srv lines = List.concat_map (Sv.handle_line srv) lines

(* The acceptance criterion: kill the daemon (abandon it mid-session,
   snapshots and journal on disk), restart with --resume, re-feed the
   same request stream, and the full response stream is byte-identical
   to an uninterrupted session's — for every kill point. *)
let test_kill_resume_byte_identical () =
  let straight =
    let srv = create_exn ~resume:false quiet_cfg in
    run_all srv session_lines
  in
  List.iteri
    (fun k _ ->
      with_state_dir (fun dir ->
          let cfg = { quiet_cfg with Sv.sv_state_dir = Some dir } in
          let prefix = List.filteri (fun i _ -> i <= k) session_lines in
          let srv_a = create_exn ~resume:false cfg in
          ignore (run_all srv_a prefix);
          (* no finalize, no shutdown: the kill -9 equivalent *)
          let srv_b = create_exn ~resume:true cfg in
          let replayed = run_all srv_b session_lines in
          if replayed <> straight then
            Alcotest.failf
              "killed-after-%d session's responses differ from the straight \
               run's"
              (k + 1)))
    session_lines

(* A corrupted serve snapshot must fall back to a cold start (logged, not
   fatal) and the daemon must still serve correct results. *)
let test_corrupt_snapshot_cold_start () =
  with_state_dir (fun dir ->
      let warned = ref 0 in
      let cfg =
        { quiet_cfg with
          Sv.sv_state_dir = Some dir;
          sv_log = (fun _ -> incr warned);
        }
      in
      let srv = create_exn ~resume:false cfg in
      ignore (run_all srv [ edit_req 1 base_src ]);
      Sv.finalize srv;
      let snap = Filename.concat dir "serve.snap" in
      (* truncate the snapshot to a torn prefix, and drop the journal so
         recovery cannot lean on replay *)
      let oc = open_out_bin snap in
      output_string oc "skipflow-snapshot corrupted beyond recognition";
      close_out oc;
      Sys.remove (Filename.concat dir "journal.jsonl");
      let srv2 = create_exn ~resume:true cfg in
      Alcotest.(check bool) "fallback was logged" true (!warned > 0);
      Alcotest.(check bool) "cold start has no resident state" true
        (Sv.state srv2 = None);
      let j = one_response (Sv.handle_line srv2 (edit_req 2 base_src)) in
      Alcotest.(check bool) "recovered daemon serves" true (bool_member "ok" j);
      match Sv.state srv2 with
      | None -> Alcotest.fail "no resident state after recovery edit"
      | Some st -> (
          match
            I.same_fixed_point st.I.engine
              (fresh_engine ~source:base_src ~roots:[])
          with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "recovered fixed point diverged: %s" msg))

let suite =
  ( "serve",
    [
      Alcotest.test_case "protocol: request parsing" `Quick test_parse_requests;
      Alcotest.test_case "protocol: facade error matrix" `Quick
        test_api_error_matrix;
      Alcotest.test_case "protocol: serve error matrix" `Quick
        test_serve_error_matrix;
      Alcotest.test_case "incremental matches fresh over the edit corpus"
        `Quick test_incremental_matches_fresh;
      Alcotest.test_case "reuse and redrain are certified" `Quick
        test_incremental_verified_flag;
      Alcotest.test_case "structured errors, daemon survives them all" `Quick
        test_server_structured_errors;
      Alcotest.test_case "deadline trips roll the resident state back" `Quick
        test_deadline_rollback;
      Alcotest.test_case "bounded queue sheds with a retry hint" `Quick
        test_overload_shedding;
      Alcotest.test_case "kill -9 / resume replays byte-identically" `Quick
        test_kill_resume_byte_identical;
      Alcotest.test_case "corrupt snapshot falls back to a cold start" `Quick
        test_corrupt_snapshot_cold_start;
    ] )
