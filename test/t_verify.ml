(* Fixed-point certification (lib/core/verify.ml) and the dead-code report
   client (lib/core/report.ml). *)

module C = Skipflow_core
module F = Skipflow_frontend
module W = Skipflow_workloads

let solve ?(config = C.Config.skipflow) src =
  let prog = F.Frontend.compile src in
  let main = Option.get (F.Frontend.main_of prog) in
  (C.Analysis.run ~config prog ~roots:[ main ]).C.Analysis.engine

let fig2 =
  {|
class Thread { boolean isVirtual() { return this instanceof BaseVirtualThread; } }
class BaseVirtualThread extends Thread { }
class Set { void remove(Thread t) { } }
class Container {
  var Set virtualThreads;
  void onExit(Thread thread) {
    if (thread.isVirtual()) { this.virtualThreads.remove(thread); }
  }
}
class Main {
  static void main() {
    Container c = new Container();
    c.virtualThreads = new Set();
    c.onExit(new Thread());
  }
}
|}

let certify name engine =
  match C.Verify.run engine with
  | [] -> ()
  | vs -> Alcotest.failf "%s: %d violations, first: %s" name (List.length vs) (List.hd vs)

let test_certify_examples () =
  List.iter
    (fun (cname, config) -> certify cname (solve ~config fig2))
    [
      ("skipflow", C.Config.skipflow);
      ("pta", C.Config.pta);
      ("preds-only", C.Config.predicates_only);
      ("prims-only", C.Config.primitives_only);
      ("saturated", { C.Config.skipflow with C.Config.saturation = Some 1 });
    ]

let test_certify_benchmark () =
  let prog, main =
    W.Gen.compile { W.Gen.default_params with W.Gen.live_units = 8; dead_units = 3 }
  in
  List.iter
    (fun config ->
      certify "benchmark"
        (C.Analysis.run ~config prog ~roots:[ main ]).C.Analysis.engine)
    [ C.Config.skipflow; C.Config.pta ]

let test_detects_corruption () =
  let engine = solve fig2 in
  (* corrupt one flow: shrink an enabled, non-empty state to Empty *)
  let corrupted = ref false in
  List.iter
    (fun (g : C.Graph.method_graph) ->
      List.iter
        (fun (f : C.Flow.t) ->
          if
            (not !corrupted) && f.C.Flow.enabled
            && (not (C.Vstate.is_empty f.C.Flow.state))
            && f.C.Flow.uses <> []
          then begin
            f.C.Flow.state <- C.Vstate.empty;
            f.C.Flow.raw <- C.Vstate.empty;
            corrupted := true
          end)
        g.C.Graph.g_flows)
    (C.Engine.graphs engine);
  Alcotest.(check bool) "corrupted something" true !corrupted;
  Alcotest.(check bool) "verifier notices" true (C.Verify.run engine <> [])

let contains sub text =
  let n = String.length text and m = String.length sub in
  let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
  go 0

(* clear the completion token of an enabled void return: the Return rule
   requires an enabled void return to carry its token *)
let test_detects_cleared_return_token () =
  let engine = solve fig2 in
  let prog = C.Engine.prog_of engine in
  let corrupted = ref false in
  List.iter
    (fun (g : C.Graph.method_graph) ->
      List.iter
        (fun (f : C.Flow.t) ->
          match (f.C.Flow.kind, f.C.Flow.meth) with
          | C.Flow.Return, Some m
            when (not !corrupted) && f.C.Flow.enabled
                 && Skipflow_ir.Ty.equal
                      (Skipflow_ir.Program.meth prog m).Skipflow_ir.Program.m_ret_ty
                      Skipflow_ir.Ty.Void ->
              f.C.Flow.state <- C.Vstate.empty;
              f.C.Flow.raw <- C.Vstate.empty;
              corrupted := true
          | _ -> ())
        g.C.Graph.g_flows)
    (C.Engine.graphs engine);
  Alcotest.(check bool) "corrupted a void return" true !corrupted;
  let vs = C.Verify.run engine in
  Alcotest.(check bool) "void-return violation reported" true
    (List.exists (contains "void return") vs)

(* drop the join along a use edge: pretend Propagate never ran for one
   edge by clearing the target's VS_in (and keeping its VS_out locally
   consistent, so only the edge rule can fire) *)
let test_detects_dropped_use_join () =
  let engine = solve fig2 in
  let corrupted = ref false in
  List.iter
    (fun (g : C.Graph.method_graph) ->
      List.iter
        (fun (f : C.Flow.t) ->
          if (not !corrupted) && f.C.Flow.enabled
             && not (C.Vstate.is_empty f.C.Flow.state) then
            match f.C.Flow.uses with
            | t :: _ ->
                t.C.Flow.raw <- C.Vstate.empty;
                t.C.Flow.state <- C.Flow.apply_filter ~pval:C.Pval.Flat t C.Vstate.empty;
                corrupted := true
            | [] -> ())
        g.C.Graph.g_flows)
    (C.Engine.graphs engine);
  Alcotest.(check bool) "dropped a use-edge join" true !corrupted;
  let vs = C.Verify.run engine in
  Alcotest.(check bool) "use-edge violation reported" true
    (List.exists (contains "use edge") vs)

let prop_certify =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random programs certify under all configs" ~count:60
       (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 50_000))
       (fun seed ->
         let cfg =
           { W.Gen_random.default_cfg with W.Gen_random.seed; classes = 3 + (seed mod 6) }
         in
         let prog, main = W.Gen_random.compile cfg in
         List.for_all
           (fun config ->
             C.Verify.run (C.Analysis.run ~config prog ~roots:[ main ]).C.Analysis.engine
             = [])
           [ C.Config.skipflow; C.Config.pta; C.Config.predicates_only ]))

(* ------------------------------- report -------------------------------- *)

let test_report () =
  let src =
    {|
class H { int h() { return 0; } }
class H1 extends H { int h() { return 1; } }
class H2 extends H { int h() { return 2; } }
class Flags { static boolean enabled() { return false; } }
class DeadLib { void init() { } }
class Main {
  static void main() {
    H x = new H1();
    if (Flags.enabled()) {
      DeadLib d = new DeadLib();
      d.init();
      x = new H2();
    }
    int r = x.h();
  }
}
|}
  in
  let prog = F.Frontend.compile src in
  let main = Option.get (F.Frontend.main_of prog) in
  let pta = C.Analysis.run ~config:C.Config.pta prog ~roots:[ main ] in
  let sf = C.Analysis.run ~config:C.Config.skipflow prog ~roots:[ main ] in
  let r =
    C.Report.compare_runs ~baseline:pta.C.Analysis.engine ~precise:sf.C.Analysis.engine
  in
  Alcotest.(check bool) "DeadLib.init removed" true
    (List.mem "DeadLib.init" r.C.Report.removed_methods);
  Alcotest.(check bool) "H2.h removed" true (List.mem "H2.h" r.C.Report.removed_methods);
  (* the feature-flag branch folds to one side (verdicts are in terms of
     the normalized IR branches: boolean conditions lower to '== 0' with
     swapped targets, so the surface-else is the IR-then here) *)
  Alcotest.(check bool) "a folded branch reported" true
    (List.exists
       (fun (m, _, v) ->
         m = "Main.main" && (v = C.Report.Then_only || v = C.Report.Else_only))
       r.C.Report.folded_branches);
  (* x.h() devirtualizes to H1.h *)
  Alcotest.(check bool) "devirtualized to H1.h" true
    (List.mem ("Main.main", "H1.h") r.C.Report.devirtualized);
  (* Flags.enabled returns the constant 0 *)
  Alcotest.(check bool) "constant return found" true
    (List.mem ("Flags.enabled", 0) r.C.Report.constant_returns);
  (* the pretty-printer produces all sections *)
  let text = Format.asprintf "%a" C.Report.pp r in
  Alcotest.(check bool) "pp sections" true
    (String.length text > 50
    && List.for_all
         (fun sub ->
           let n = String.length text and m = String.length sub in
           let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
           go 0)
         [ "methods removed"; "foldable branches"; "devirtualized"; "constant-returning" ])

let test_report_empty_when_equal () =
  (* on a program with no SkipFlow-only facts the removed list is empty *)
  let src = {| class Main { static void main() { int x = 1; } } |} in
  let prog = F.Frontend.compile src in
  let main = Option.get (F.Frontend.main_of prog) in
  let pta = C.Analysis.run ~config:C.Config.pta prog ~roots:[ main ] in
  let sf = C.Analysis.run ~config:C.Config.skipflow prog ~roots:[ main ] in
  let r =
    C.Report.compare_runs ~baseline:pta.C.Analysis.engine ~precise:sf.C.Analysis.engine
  in
  Alcotest.(check (list string)) "nothing removed" [] r.C.Report.removed_methods

let suite =
  ( "verify",
    [
      Alcotest.test_case "examples certify (all configs)" `Quick test_certify_examples;
      Alcotest.test_case "benchmark certifies" `Quick test_certify_benchmark;
      Alcotest.test_case "verifier detects corruption" `Quick test_detects_corruption;
      Alcotest.test_case "verifier detects a cleared return token" `Quick
        test_detects_cleared_return_token;
      Alcotest.test_case "verifier detects a dropped use-edge join" `Quick
        test_detects_dropped_use_join;
      prop_certify;
      Alcotest.test_case "dead-code report" `Quick test_report;
      Alcotest.test_case "report empty on trivial program" `Quick test_report_empty_when_equal;
    ] )
