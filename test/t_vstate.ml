(* Tests for the combined value-state lattice 𝕃 (Appendix B.2, Figure 11)
   and the Compare function (Appendix C) — including the paper's worked
   examples verbatim.  The deterministic filter tests and the qcheck
   properties run under both primitive lattices (--pval flat and
   product): on singleton constants the two must agree exactly, which is
   the byte-identity contract flat mode promises; mode-specific behaviour
   (interval joins, range narrowing) gets its own pinned cases. *)

module V = Skipflow_core.Vstate
module P = Skipflow_core.Pval
module Pr = Skipflow_core.Prim
module I = Skipflow_core.Interval
module TS = Skipflow_core.Typeset

let vs = Alcotest.testable V.pp V.equal
let tset l = V.types (TS.of_list l)
let modes = [ ("flat", P.Flat); ("product", P.Product) ]

(* the product-mode range [lo, hi] as a value state *)
let range lo hi = V.of_prim (Pr.of_interval (I.of_bounds (Some lo) (Some hi)))

(* In these tests class ids are plain ints; 0 is null. *)

let test_join ~pval () =
  let join = V.join ~pval in
  Alcotest.check vs "empty ∨ x" (V.const 5) (join V.empty (V.const 5));
  Alcotest.check vs "c ∨ c" (V.const 5) (join (V.const 5) (V.const 5));
  (match pval with
  | P.Flat ->
      Alcotest.check vs "c ∨ c' = Any" V.any (join (V.const 5) (V.const 6))
  | P.Product ->
      Alcotest.check vs "c ∨ c' = range" (range 5 6) (join (V.const 5) (V.const 6)));
  Alcotest.check vs "types union" (tset [ 1; 2; 3 ]) (join (tset [ 1; 2 ]) (tset [ 2; 3 ]));
  Alcotest.check vs "prim ∨ types = Any (⊤)" V.any (join (V.const 1) (tset [ 2 ]));
  Alcotest.check vs "any absorbs" V.any (join V.any (tset [ 2 ]))

let test_leq () =
  Alcotest.(check bool) "empty ≤ all" true (V.leq V.empty (V.const 1));
  Alcotest.(check bool) "ts ≤ bigger ts" true (V.leq (tset [ 1 ]) (tset [ 1; 2 ]));
  Alcotest.(check bool) "ts ≰ smaller" false (V.leq (tset [ 1; 2 ]) (tset [ 1 ]));
  Alcotest.(check bool) "ts ≤ Any" true (V.leq (tset [ 1; 2 ]) V.any);
  Alcotest.(check bool) "const ≤ Any" true (V.leq (V.const 9) V.any);
  Alcotest.(check bool) "const ≰ types" false (V.leq (V.const 9) (tset [ 1 ]));
  Alcotest.(check bool) "const ≤ covering range" true (V.leq (V.const 5) (range 0 9));
  Alcotest.(check bool) "const ≰ disjoint range" false (V.leq (V.const 5) (range 6 9))

(* ---- the Compare examples of Appendix C, verbatim ---- *)

let test_compare_paper_examples ~pval () =
  let cf = V.compare_filter ~pval in
  (* Compare('=', {Any}, {5}) = {5} *)
  Alcotest.check vs "eq any 5" (V.const 5) (cf V.Eq V.any (V.const 5));
  (* Compare('=', {Any}, {Any}) = {Any} *)
  Alcotest.check vs "eq any any" V.any (cf V.Eq V.any V.any);
  (* Compare('=', {A,B}, {B,C}) = {B} *)
  Alcotest.check vs "eq typesets" (tset [ 2 ])
    (cf V.Eq (tset [ 1; 2 ]) (tset [ 2; 3 ]));
  (* Compare('=', {5}, {5}) = {5};  Compare('=', {5}, {3}) = {} *)
  Alcotest.check vs "eq 5 5" (V.const 5) (cf V.Eq (V.const 5) (V.const 5));
  Alcotest.check vs "eq 5 3" V.empty (cf V.Eq (V.const 5) (V.const 3));
  (* Compare('≠', {0}, {0}) = {};  Compare('≠', {5}, {3}) = {5} *)
  Alcotest.check vs "ne 0 0" V.empty (cf V.Ne (V.const 0) (V.const 0));
  Alcotest.check vs "ne 5 3" (V.const 5) (cf V.Ne (V.const 5) (V.const 3));
  (* Compare('<', {3}, {5}) = {3};  Compare('<', {3}, {1}) = {} *)
  Alcotest.check vs "lt 3 5" (V.const 3) (cf V.Lt (V.const 3) (V.const 5));
  Alcotest.check vs "lt 3 1" V.empty (cf V.Lt (V.const 3) (V.const 1))

let test_compare_empty_and_any ~pval () =
  let cf = V.compare_filter ~pval in
  Alcotest.check vs "empty left" V.empty (cf V.Lt V.empty (V.const 1));
  Alcotest.check vs "empty right" V.empty (cf V.Lt (V.const 1) V.empty);
  (* relational with Any on the right: no filtering under either mode *)
  Alcotest.check vs "lt any r" (V.const 3) (cf V.Lt (V.const 3) V.any);
  (* relational with Any on the left: flat passes through (the paper's
     all-or-nothing Compare); product narrows to the implied range *)
  (match pval with
  | P.Flat -> Alcotest.check vs "lt any l" V.any (cf V.Lt V.any (V.const 3))
  | P.Product ->
      Alcotest.check vs "lt any l narrows"
        (V.of_prim (Pr.of_interval (I.of_bounds None (Some 2))))
        (cf V.Lt V.any (V.const 3)));
  Alcotest.check vs "ne any l" V.any (cf V.Ne V.any (V.const 3));
  Alcotest.check vs "ne any r" (V.const 3) (cf V.Ne (V.const 3) V.any)

let test_compare_null_checks ~pval () =
  let cf = V.compare_filter ~pval in
  let null = tset [ 0 ] in
  let maybe_null = tset [ 0; 4 ] in
  (* x == null keeps only null *)
  Alcotest.check vs "eq null" null (cf V.Eq maybe_null null);
  (* x != null drops null *)
  Alcotest.check vs "ne null" (tset [ 4 ]) (cf V.Ne maybe_null null);
  (* null != x where x may be null: null can still differ from an object;
     the paper's raw set difference would unsoundly return {} here (see the
     comment in Vstate.compare_filter) *)
  Alcotest.check vs "ne non-singleton rhs" null (cf V.Ne null maybe_null);
  (* object != object on the type abstraction must not filter: two distinct
     objects of the same type are different references *)
  Alcotest.check vs "ne same typeset" (tset [ 4 ]) (cf V.Ne (tset [ 4 ]) (tset [ 4 ]))

let test_relational_ops ~pval () =
  let chk op l r expect =
    Alcotest.check vs
      (Format.asprintf "%a" V.pp_cmp_op op)
      expect
      (V.compare_filter ~pval op (V.const l) (V.const r))
  in
  chk V.Ge 5 5 (V.const 5);
  chk V.Ge 4 5 V.empty;
  chk V.Gt 6 5 (V.const 6);
  chk V.Gt 5 5 V.empty;
  chk V.Le 5 5 (V.const 5);
  chk V.Le 6 5 V.empty

(* Product-only: range meets, endpoint trims, and the backward narrowing
   a flat lattice cannot express. *)
let test_product_ranges () =
  let cf = V.compare_filter ~pval:P.Product in
  (* Eq on overlapping ranges is the interval meet *)
  Alcotest.check vs "eq ranges meet" (range 3 5) (cf V.Eq (range 0 5) (range 3 9));
  Alcotest.check vs "eq disjoint ranges" V.empty (cf V.Eq (range 0 2) (range 5 9));
  (* Ne with a singleton rhs trims a matching endpoint *)
  Alcotest.check vs "ne trims low endpoint" (range 1 5) (cf V.Ne (range 0 5) (V.const 0));
  Alcotest.check vs "ne interior hole keeps range" (range 0 5)
    (cf V.Ne (range 0 5) (V.const 3));
  (* relational narrowing on both range sides: exists-semantics *)
  Alcotest.check vs "lt range range" (range 0 5) (cf V.Lt (range 0 5) (range 2 6));
  Alcotest.check vs "lt range cuts" (range 0 4) (cf V.Lt (range 0 9) (range 2 5));
  Alcotest.check vs "ge range cuts" (range 2 9) (cf V.Ge (range 0 9) (range 2 5));
  Alcotest.check vs "gt disjoint kills" V.empty (cf V.Gt (range 0 4) (V.const 9));
  (* the motivating example: x ∈ [0,3] can never be > 10 *)
  Alcotest.check vs "range guard dies" V.empty (cf V.Gt (range 0 3) (V.const 10))

let test_arith () =
  let a = V.arith in
  Alcotest.check vs "const fold" (V.const 7) (a Pr.Add (V.const 3) (V.const 4));
  Alcotest.check vs "range add" (range 3 14) (a Pr.Add (range 0 9) (range 3 5));
  Alcotest.check vs "empty operand" V.empty (a Pr.Mul V.empty (V.const 2));
  Alcotest.check vs "any operand" V.any (a Pr.Mul V.any (V.const 2));
  Alcotest.check vs "div by definite zero" V.empty (a Pr.Div (V.const 4) (V.const 0));
  Alcotest.check vs "rem bounds" (range 0 6) (a Pr.Rem (range 0 100) (V.const 7))

let test_inv_flip () =
  Alcotest.(check bool) "inv eq" true (V.inv V.Eq = V.Ne);
  Alcotest.(check bool) "inv lt" true (V.inv V.Lt = V.Ge);
  Alcotest.(check bool) "inv involutive" true
    (List.for_all (fun o -> V.inv (V.inv o) = o) [ V.Eq; V.Ne; V.Lt; V.Ge; V.Gt; V.Le ]);
  Alcotest.(check bool) "flip lt = gt" true (V.flip V.Lt = V.Gt);
  Alcotest.(check bool) "flip ge = le" true (V.flip V.Ge = V.Le);
  Alcotest.(check bool) "flip involutive" true
    (List.for_all (fun o -> V.flip (V.flip o) = o) [ V.Eq; V.Ne; V.Lt; V.Ge; V.Gt; V.Le ])

let test_instanceof_filter () =
  let mask = TS.of_list [ 2; 3 ] in
  (* positive instanceof: null (bit 0) never passes *)
  Alcotest.check vs "positive" (tset [ 2 ])
    (V.filter_instanceof ~mask ~negated:false (tset [ 0; 1; 2 ]));
  (* negated: null passes, subtypes do not *)
  Alcotest.check vs "negated" (tset [ 0; 1 ])
    (V.filter_instanceof ~mask ~negated:true (tset [ 0; 1; 2 ]));
  Alcotest.check vs "prim passes through" (V.const 1)
    (V.filter_instanceof ~mask ~negated:false (V.const 1));
  Alcotest.check vs "empty stays empty" V.empty
    (V.filter_instanceof ~mask ~negated:false V.empty)

let test_declared_filter () =
  let mask_with_null = TS.of_list [ 0; 2; 3 ] in
  Alcotest.check vs "declared keeps null + subtypes" (tset [ 0; 2 ])
    (V.filter_declared ~mask_with_null (tset [ 0; 1; 2 ]));
  Alcotest.check vs "prim unchanged" V.any (V.filter_declared ~mask_with_null V.any)

(* ---------------------------- properties ------------------------------ *)

let gen_v =
  QCheck.Gen.(
    frequency
      [
        (1, return V.empty);
        (3, map V.const (int_range (-3) 3));
        (2, map2 (fun a b -> range (min a b) (max a b)) (int_range (-3) 3) (int_range (-3) 3));
        (3, map (fun l -> V.types (TS.of_list l)) (list_size (int_bound 4) (int_bound 8)));
        (1, return V.any);
      ])

let arb_v = QCheck.make ~print:(Format.asprintf "%a" V.pp) gen_v

let arb_op =
  QCheck.make
    ~print:(Format.asprintf "%a" V.pp_cmp_op)
    QCheck.Gen.(oneofl [ V.Eq; V.Ne; V.Lt; V.Ge; V.Gt; V.Le ])

(* all states drawn from the same typed sublattice? (Empty and Any belong
   to both) *)
let same_kind vs =
  let prims = List.for_all (function V.Types _ -> false | _ -> true) vs in
  let objs = List.for_all (function V.Prim _ -> false | _ -> true) vs in
  prims || objs

let prop name g f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:500 g f)

(* Under the flat lattice only singleton primitive payloads arise (the
   engine never builds a range there); restrict the generated states so
   the flat properties quantify over the states flat runs can reach. *)
let flat_reachable v = match v with V.Prim p -> Pr.as_const p <> None | _ -> true

let props_of (mode_name, pval) =
  let join = V.join ~pval and cf = V.compare_filter ~pval in
  let n s = Printf.sprintf "%s [%s]" s mode_name in
  let assume_reachable vs =
    if pval = P.Flat then QCheck.assume (List.for_all flat_reachable vs)
  in
  [
    prop (n "join comm") (QCheck.pair arb_v arb_v) (fun (a, b) ->
        assume_reachable [ a; b ];
        V.equal (join a b) (join b a));
    prop (n "join assoc") (QCheck.triple arb_v arb_v arb_v) (fun (a, b, c) ->
        assume_reachable [ a; b; c ];
        V.equal (join a (join b c)) (join (join a b) c));
    prop (n "join idem") arb_v (fun a ->
        assume_reachable [ a ];
        V.equal (join a a) a);
    prop (n "leq defines join") (QCheck.pair arb_v arb_v) (fun (a, b) ->
        assume_reachable [ a; b ];
        V.leq a b = V.equal (join a b) b);
    prop
      (n "compare result ≤ lhs or rhs-bounded")
      (QCheck.triple arb_op arb_v arb_v)
      (fun (op, l, r) ->
        assume_reachable [ l; r ];
        (* the filtered value never exceeds the unfiltered lhs *)
        V.leq (cf op l r) l
        ||
        (* ...except Eq with Any on the left, which returns the rhs *)
        (op = V.Eq && V.equal l V.any));
    (* Monotonicity holds on the well-typed sublattices (all operands
       primitive, or all object type sets); the engine never compares a
       primitive with a type set in a type-checked program.  On ill-typed
       mixtures the paper's Compare (Eq-with-Any returning the lower value)
       is not monotone, so the generators here are kinded. *)
    prop
      (n "compare monotone in lhs (well-typed)")
      (QCheck.triple arb_op (QCheck.pair arb_v arb_v) arb_v)
      (fun (op, (l1, l2), r) ->
        QCheck.assume (same_kind [ l1; l2; r ]);
        assume_reachable [ l1; l2; r ];
        let l2 = join l1 l2 in
        V.leq (cf op l1 r) (cf op l2 r));
    prop
      (n "compare monotone in rhs (well-typed)")
      (QCheck.triple arb_op (QCheck.pair arb_v arb_v) arb_v)
      (fun (op, (r1, r2), l) ->
        QCheck.assume (same_kind [ l; r1; r2 ]);
        assume_reachable [ l; r1; r2 ];
        let r2 = join r1 r2 in
        V.leq (cf op l r1) (cf op l r2));
    prop
      (n "instanceof filter monotone")
      (QCheck.triple (QCheck.pair arb_v arb_v) QCheck.bool
         (QCheck.make QCheck.Gen.(map TS.of_list (list_size (int_bound 4) (int_bound 8)))))
      (fun ((a, b), negated, mask) ->
        assume_reachable [ a; b ];
        let b = join a b in
        V.leq (V.filter_instanceof ~mask ~negated a) (V.filter_instanceof ~mask ~negated b));
    prop
      (n "compare soundness on concrete ints")
      (QCheck.triple arb_op (QCheck.int_range (-3) 3) (QCheck.int_range (-3) 3))
      (fun (op, x, y) ->
        (* if concrete x op y holds, the abstraction of x survives
           filtering against the abstraction of y *)
        let holds =
          match op with
          | V.Eq -> x = y
          | V.Ne -> x <> y
          | V.Lt -> x < y
          | V.Ge -> x >= y
          | V.Gt -> x > y
          | V.Le -> x <= y
        in
        (not holds) || V.leq (V.const x) (cf op (V.const x) (V.const y)));
    prop (n "compare soundness under Any rhs")
      (QCheck.pair arb_op (QCheck.int_range (-3) 3))
      (fun (op, x) -> V.leq (V.const x) (cf op (V.const x) V.any));
    (* concrete soundness of relational narrowing: whatever x op y holds
       for members x of l and y of r, x survives the filter of l by r *)
    prop (n "compare soundness on range members")
      (QCheck.triple arb_op
         (QCheck.pair (QCheck.int_range (-3) 3) (QCheck.int_range 0 3))
         (QCheck.pair (QCheck.int_range (-3) 3) (QCheck.int_range 0 3)))
      (fun (op, (xl, xw), (yl, yw)) ->
        let l = range xl (xl + xw) and r = range yl (yl + yw) in
        assume_reachable [ l; r ];
        let filtered = cf op l r in
        List.for_all
          (fun x ->
            List.for_all
              (fun y ->
                let holds =
                  match op with
                  | V.Eq -> x = y
                  | V.Ne -> x <> y
                  | V.Lt -> x < y
                  | V.Ge -> x >= y
                  | V.Gt -> x > y
                  | V.Le -> x <= y
                in
                (not holds) || V.leq (V.const x) filtered)
              (List.init (yw + 1) (fun i -> yl + i)))
          (List.init (xw + 1) (fun i -> xl + i)));
  ]

let per_mode name f =
  List.map
    (fun (mn, pval) ->
      Alcotest.test_case (Printf.sprintf "%s [%s]" name mn) `Quick (f ~pval))
    modes

let suite =
  ( "vstate",
    per_mode "join" test_join
    @ [ Alcotest.test_case "leq" `Quick test_leq ]
    @ per_mode "Compare: paper examples" test_compare_paper_examples
    @ per_mode "Compare: empty and Any" test_compare_empty_and_any
    @ per_mode "Compare: null checks" test_compare_null_checks
    @ per_mode "Compare: relational" test_relational_ops
    @ [
        Alcotest.test_case "Compare: product ranges" `Quick test_product_ranges;
        Alcotest.test_case "arith transfer" `Quick test_arith;
        Alcotest.test_case "inv and flip" `Quick test_inv_flip;
        Alcotest.test_case "instanceof filter" `Quick test_instanceof_filter;
        Alcotest.test_case "declared-type filter" `Quick test_declared_filter;
      ]
    @ List.concat_map props_of modes )
