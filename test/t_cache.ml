(* The crash-safe result cache: hit/miss/evict/corrupt accounting, the
   content-hash key discipline (any config change, including the budget,
   changes the key), and the corruption contract — a damaged entry is
   quarantined and reported as a miss, never served and never an
   exception. *)

module C = Skipflow_core

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_cache ?max_entries f =
  let dir = Filename.temp_dir "skipflow-cache" "" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let trace = C.Trace.create () in
      let cache = C.Cache.create ~trace ?max_entries (Filename.concat dir "c") in
      f trace cache)

let counter trace name =
  match List.assoc_opt name (C.Trace.counters trace) with
  | Some v -> v
  | None -> 0

let test_store_find_round_trip () =
  with_cache (fun trace cache ->
      let k = C.Cache.key ~config:C.Config.skipflow ~scope:"" ~source:"class Main { }" in
      Alcotest.(check (option string)) "cold lookup misses" None
        (C.Cache.find cache k);
      (match C.Cache.store cache k "the summary" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "store: %s" (C.Snapshot.error_message e));
      Alcotest.(check (option string)) "stored value comes back"
        (Some "the summary") (C.Cache.find cache k);
      (* values may contain newlines — only the first line is the key *)
      let k2 = C.Cache.key ~config:C.Config.skipflow ~scope:"" ~source:"other" in
      (match C.Cache.store cache k2 "line1\nline2\n" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "store: %s" (C.Snapshot.error_message e));
      Alcotest.(check (option string)) "multi-line value intact"
        (Some "line1\nline2\n") (C.Cache.find cache k2);
      Alcotest.(check int) "hits counted" 2 (counter trace "cache.hit");
      Alcotest.(check int) "misses counted" 1 (counter trace "cache.miss");
      Alcotest.(check int) "nothing corrupt" 0 (counter trace "cache.corrupt"))

(* The key must separate source bytes, every configuration axis, and the
   budget — a degraded (budget-tripped) result must never be served to a
   run with a different budget. *)
let test_key_discipline () =
  let base = C.Cache.key ~config:C.Config.skipflow ~scope:"" ~source:"src" in
  let distinct ctx k =
    if String.equal base k then Alcotest.failf "%s: key collision" ctx
  in
  distinct "source change"
    (C.Cache.key ~config:C.Config.skipflow ~scope:"" ~source:"src2");
  distinct "different analysis" (C.Cache.key ~config:C.Config.pta ~scope:"" ~source:"src");
  (* a flat-domain result must never be served to a product-domain run:
     the two fixed points carry different value states *)
  distinct "primitive domain change"
    (C.Cache.key
       ~config:{ C.Config.skipflow with C.Config.pval = C.Pval.Product }
       ~scope:"" ~source:"src");
  distinct "budget change"
    (C.Cache.key
       ~config:
         {
           C.Config.skipflow with
           C.Config.budget = C.Budget.make ~max_tasks:100 ();
         }
       ~scope:"" ~source:"src");
  (* run-scoped inputs (roots, engine mode) live outside Config.t but
     change the result — the scope must separate keys too *)
  distinct "scope change"
    (C.Cache.key ~config:C.Config.skipflow ~scope:"roots=A.f;mode=dedup"
       ~source:"src");
  let scoped s = C.Cache.key ~config:C.Config.skipflow ~scope:s ~source:"src" in
  if String.equal (scoped "roots=A.f") (scoped "roots=B.g") then
    Alcotest.fail "different scopes: key collision";
  Alcotest.(check string) "key is deterministic" base
    (C.Cache.key ~config:C.Config.skipflow ~scope:"" ~source:"src")

let test_corrupt_entry_quarantined () =
  with_cache (fun trace cache ->
      let k = C.Cache.key ~config:C.Config.skipflow ~scope:"" ~source:"victim" in
      (match C.Cache.store cache k "value" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "store: %s" (C.Snapshot.error_message e));
      let path = C.Cache.entry_path cache k in
      (* flip one payload byte in place *)
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let bytes = Bytes.of_string (really_input_string ic n) in
      close_in ic;
      Bytes.set bytes (n - 2)
        (Char.chr (Char.code (Bytes.get bytes (n - 2)) lxor 0x01));
      let oc = open_out_bin path in
      output_bytes oc bytes;
      close_out oc;
      Alcotest.(check (option string)) "corrupt entry is a miss" None
        (C.Cache.find cache k);
      Alcotest.(check int) "corruption counted" 1 (counter trace "cache.corrupt");
      Alcotest.(check bool) "entry moved out of the live set" false
        (Sys.file_exists path);
      Alcotest.(check bool) "evidence kept in quarantine" true
        (Sys.file_exists
           (Filename.concat (C.Cache.quarantine_dir cache)
              (Filename.basename path)));
      (* the slot is usable again *)
      (match C.Cache.store cache k "value" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "re-store: %s" (C.Snapshot.error_message e));
      Alcotest.(check (option string)) "recomputed entry serves" (Some "value")
        (C.Cache.find cache k))

(* An entry whose container is intact but whose first line is another key
   (rename or collision) must not be served. *)
let test_wrong_key_not_served () =
  with_cache (fun trace cache ->
      let k1 = C.Cache.key ~config:C.Config.skipflow ~scope:"" ~source:"a" in
      let k2 = C.Cache.key ~config:C.Config.skipflow ~scope:"" ~source:"b" in
      (match C.Cache.store cache k1 "value-for-a" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "store: %s" (C.Snapshot.error_message e));
      Sys.rename (C.Cache.entry_path cache k1) (C.Cache.entry_path cache k2);
      Alcotest.(check (option string)) "renamed entry refused" None
        (C.Cache.find cache k2);
      Alcotest.(check int) "refusal counted as corrupt" 1
        (counter trace "cache.corrupt"))

let test_lru_eviction () =
  with_cache ~max_entries:3 (fun trace cache ->
      let keys =
        List.map
          (fun i ->
            let k =
              C.Cache.key ~config:C.Config.skipflow ~scope:""
                ~source:(Printf.sprintf "src-%d" i)
            in
            (match C.Cache.store cache k (Printf.sprintf "v%d" i) with
            | Ok () -> ()
            | Error e -> Alcotest.failf "store: %s" (C.Snapshot.error_message e));
            (* space out mtimes so LRU order is well defined on coarse
               filesystem clocks *)
            (try
               Unix.utimes (C.Cache.entry_path cache k) (float_of_int i)
                 (float_of_int i)
             with Unix.Unix_error _ -> ());
            k)
          [ 1; 2; 3 ]
      in
      (* a fourth store evicts the stalest entry (src-1) *)
      let k4 = C.Cache.key ~config:C.Config.skipflow ~scope:"" ~source:"src-4" in
      (match C.Cache.store cache k4 "v4" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "store: %s" (C.Snapshot.error_message e));
      Alcotest.(check int) "one eviction" 1 (counter trace "cache.evict");
      Alcotest.(check (option string)) "oldest entry evicted" None
        (C.Cache.find cache (List.nth keys 0));
      Alcotest.(check (option string)) "recent entries survive" (Some "v3")
        (C.Cache.find cache (List.nth keys 2));
      Alcotest.(check (option string)) "new entry present" (Some "v4")
        (C.Cache.find cache k4))

(* Entries whose mtimes tie (coarse filesystem clocks, or several stores
   within one tick) must still evict in a total, reproducible order: the
   tie breaks on the entry path, so which entry survives never depends
   on readdir order.  Pin that by forcing every mtime equal and checking
   the lexicographically-smallest entry is the one evicted. *)
let test_eviction_tie_break_on_path () =
  with_cache ~max_entries:3 (fun trace cache ->
      let keys =
        List.map
          (fun i ->
            let k =
              C.Cache.key ~config:C.Config.skipflow ~scope:""
                ~source:(Printf.sprintf "tie-%d" i)
            in
            (match C.Cache.store cache k (Printf.sprintf "v%d" i) with
            | Ok () -> ()
            | Error e -> Alcotest.failf "store: %s" (C.Snapshot.error_message e));
            Unix.utimes (C.Cache.entry_path cache k) 1000.0 1000.0;
            k)
          [ 1; 2; 3 ]
      in
      let victim =
        List.hd
          (List.sort
             (fun a b ->
               String.compare
                 (C.Cache.entry_path cache a)
                 (C.Cache.entry_path cache b))
             keys)
      in
      let k4 = C.Cache.key ~config:C.Config.skipflow ~scope:"" ~source:"tie-4" in
      (match C.Cache.store cache k4 "v4" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "store: %s" (C.Snapshot.error_message e));
      Unix.utimes (C.Cache.entry_path cache k4) 1000.0 1000.0;
      Alcotest.(check int) "one eviction" 1 (counter trace "cache.evict");
      Alcotest.(check (option string)) "smallest path evicted on mtime tie"
        None (C.Cache.find cache victim);
      List.iter
        (fun k ->
          if not (String.equal k victim) then
            Alcotest.(check bool)
              (Printf.sprintf "survivor %s still served"
                 (Filename.basename (C.Cache.entry_path cache k)))
              true
              (C.Cache.find cache k <> None))
        keys)

(* Leftover [<key>.entry.tmp.<pid>] files from a crash mid-write are
   outside the entry set — eviction must not let them accumulate
   forever, but a fresh tmp may belong to a live writer and must be
   left alone. *)
let test_stale_tmp_swept () =
  with_cache (fun _trace cache ->
      let dir = C.Cache.dir cache in
      let stale = Filename.concat dir "deadbeef.entry.tmp.999" in
      let fresh = Filename.concat dir "cafebabe.entry.tmp.998" in
      let touch p =
        let oc = open_out_bin p in
        output_string oc "partial write";
        close_out oc
      in
      touch stale;
      touch fresh;
      Unix.utimes stale 1.0 1.0;
      (* a store runs eviction, which sweeps aged tmp leftovers *)
      let k = C.Cache.key ~config:C.Config.skipflow ~scope:"" ~source:"sweep" in
      (match C.Cache.store cache k "v" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "store: %s" (C.Snapshot.error_message e));
      Alcotest.(check bool) "stale tmp removed" false (Sys.file_exists stale);
      Alcotest.(check bool) "fresh tmp kept (may be a live writer)" true
        (Sys.file_exists fresh);
      Alcotest.(check (option string)) "entries unaffected" (Some "v")
        (C.Cache.find cache k);
      (* reopening the cache dir sweeps too *)
      Unix.utimes fresh 1.0 1.0;
      let _reopened = C.Cache.create dir in
      Alcotest.(check bool) "reopen sweeps aged tmp" false
        (Sys.file_exists fresh))

let suite =
  ( "cache",
    [
      Alcotest.test_case "store/find round trip with counters" `Quick
        test_store_find_round_trip;
      Alcotest.test_case "key separates source, config, and budget" `Quick
        test_key_discipline;
      Alcotest.test_case "corrupt entry quarantined, then recomputable" `Quick
        test_corrupt_entry_quarantined;
      Alcotest.test_case "entry under the wrong key is refused" `Quick
        test_wrong_key_not_served;
      Alcotest.test_case "LRU eviction past max_entries" `Quick
        test_lru_eviction;
      Alcotest.test_case "eviction ties on mtime break on path" `Quick
        test_eviction_tie_break_on_path;
      Alcotest.test_case "stale tmp leftovers are swept" `Quick
        test_stale_tmp_swept;
    ] )
