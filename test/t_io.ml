(* The durable-IO layer's contract:

   - fault plans are deterministic: the decision for operation [i] is a
     pure function of [(seed, i)], so previews of same-seed plans are
     equal and a failing seed replays exactly;
   - absorbable faults (an extra EINTR, a short write) are invisible to
     callers; hard faults (EIO, ENOSPC) come back as typed errors with
     the temp file cleaned up and the destination untouched; a torn
     rename is caught downstream by the container CRC — every injected
     fault maps to a structured error or a clean recovery, never an
     escaping exception;
   - all three durability levels produce byte-identical files;
   - the appender buffers under [D_none] and publishes on flush;
   - injected faults surface at the API boundary as structured
     [Api.Io_error], not exceptions;
   - the crash-point matrix (fork a child, kill it before IO operation
     [k], inspect the disk) passes over the snapshot, cache, and serve
     journal sites with zero corrupt or unsound recoveries. *)

module C = Skipflow_core
module Api = Skipflow_api
module Io = C.Io

let in_temp_dir f =
  let dir = Filename.temp_dir "skipflow-io" "" in
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
      try Unix.rmdir p with Unix.Unix_error _ -> ()
    end
    else try Sys.remove p with Sys_error _ -> ()
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

let read_exn path =
  match Io.read_file path with
  | Ok s -> s
  | Error e -> Alcotest.failf "read %s: %s" path (Io.error_message e)

let write_exn path s =
  match Io.write_file_atomic ~path s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write %s: %s" path (Io.error_message e)

let tmp_droppings dir =
  Array.to_list (Sys.readdir dir)
  |> List.filter (fun n ->
         List.exists
           (fun part -> String.length part >= 3 && String.sub part 0 3 = "tmp")
           (String.split_on_char '.' n))

(* --------------------------- determinism ------------------------------ *)

let test_plan_determinism () =
  let p1 = Io.plan ~rate:3 ~seed:42 () in
  let p2 = Io.plan ~rate:3 ~seed:42 () in
  Alcotest.(check bool)
    "same seed, same decisions" true
    (Io.preview p1 ~n:500 = Io.preview p2 ~n:500);
  let p3 = Io.plan ~rate:3 ~seed:43 () in
  Alcotest.(check bool)
    "different seeds disagree somewhere" false
    (Io.preview p1 ~n:500 = Io.preview p3 ~n:500);
  let some = List.filter Option.is_some (Io.preview p1 ~n:500) in
  Alcotest.(check bool)
    "rate 3 injects in the right ballpark" true
    (List.length some > 80 && List.length some < 350);
  (* the op count of a fixed workload is reproducible — the property the
     crash matrix enumerates over *)
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "f" in
      let count () =
        Io.with_plan (Io.plan ~seed:7 ()) (fun () ->
            write_exn path "payload";
            ignore (read_exn path);
            Io.ops_performed ())
      in
      let a = count () in
      Alcotest.(check int) "op counts are workload-pure" a (count ());
      Alcotest.(check bool) "the workload ticks operations" true (a > 0))

(* ------------------------ durability levels --------------------------- *)

let test_durability_levels_byte_identical () =
  in_temp_dir (fun dir ->
      let payload = String.init 70000 (fun i -> Char.chr (i * 11 land 0xff)) in
      let prev = Io.durability () in
      Fun.protect ~finally:(fun () -> Io.set_durability prev) @@ fun () ->
      let bytes_at level name =
        Io.set_durability level;
        let path = Filename.concat dir name in
        write_exn path payload;
        read_exn path
      in
      let none = bytes_at Io.D_none "none" in
      let flush = bytes_at Io.D_flush "flush" in
      let fsync = bytes_at Io.D_fsync "fsync" in
      Alcotest.(check bool) "none = flush" true (String.equal none flush);
      Alcotest.(check bool) "flush = fsync" true (String.equal flush fsync);
      Alcotest.(check bool) "content survives" true (String.equal flush payload);
      Alcotest.(check (list string)) "no temp droppings" [] (tmp_droppings dir))

(* -------------------------- fault mapping ----------------------------- *)

let test_absorbable_faults_invisible () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "f" in
      let payload = String.init 9000 (fun i -> Char.chr (i land 0xff)) in
      (* every operation suffers an extra EINTR or a short write; the
         retry and chunk machinery must hide all of it *)
      let plan =
        Io.plan ~rate:1 ~faults:[ Io.F_eintr; Io.F_short_write ] ~seed:5 ()
      in
      Io.with_plan plan (fun () ->
          write_exn path payload;
          Alcotest.(check bool)
            "faults were actually injected" true
            (Io.injected () > 0);
          Alcotest.(check bool)
            "content intact under absorbed faults" true
            (String.equal (read_exn path) payload)))

let test_hard_faults_typed_and_clean () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "f" in
      write_exn path "old";
      List.iter
        (fun (fault, fname) ->
          let plan = Io.plan ~rate:1 ~faults:[ fault ] ~seed:9 () in
          (match
             Io.with_plan plan (fun () -> Io.write_file_atomic ~path "new")
           with
          | Ok () -> Alcotest.failf "%s: write reported success" fname
          | Error e ->
              Alcotest.(check bool)
                (fname ^ " names the path") true
                (e.Io.io_path <> "")
          | exception e ->
              Alcotest.failf "%s: exception escaped: %s" fname
                (Printexc.to_string e));
          Alcotest.(check string)
            (fname ^ " leaves the old content")
            "old" (read_exn path);
          Alcotest.(check (list string))
            (fname ^ " leaves no temp file")
            [] (tmp_droppings dir))
        [ (Io.F_eio, "EIO"); (Io.F_enospc, "ENOSPC") ])

let test_torn_rename_detected_by_container () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "blob" in
      let payload = String.make 2048 'x' in
      let plan = Io.plan ~rate:1 ~faults:[ Io.F_torn_rename ] ~seed:3 () in
      Io.with_plan plan (fun () ->
          ignore (C.Snapshot.write ~path ~kind:"t" ~version:1 payload));
      match C.Snapshot.read ~path ~kind:"t" ~version:1 with
      | Ok _ -> Alcotest.fail "torn blob read back Ok"
      | Error (C.Snapshot.Truncated _ | C.Snapshot.Bad_checksum _) -> ()
      | Error e ->
          Alcotest.failf "unexpected error class: %s"
            (C.Snapshot.error_message e))

let test_api_maps_faults_to_structured_errors () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "p.mj" in
      write_exn path "class Main { static int main() { return 0; } }";
      let plan = Io.plan ~rate:1 ~faults:[ Io.F_eio ] ~seed:1 () in
      match
        Io.with_plan plan (fun () ->
            Api.analyze ~source:(`File path) ~roots:[] ())
      with
      | Error (Api.Io_error _) -> ()
      | Error e -> Alcotest.failf "wrong error kind: %s" (Api.error_kind e)
      | Ok _ -> Alcotest.fail "analyze succeeded under EIO-everything"
      | exception e ->
          Alcotest.failf "exception escaped the API: %s" (Printexc.to_string e))

(* ---------------------------- appender -------------------------------- *)

let test_appender_levels () =
  in_temp_dir (fun dir ->
      let prev = Io.durability () in
      Fun.protect ~finally:(fun () -> Io.set_durability prev) @@ fun () ->
      Io.set_durability Io.D_none;
      let path = Filename.concat dir "sub" ^ "/journal" in
      let ap =
        match Io.open_append path with
        | Ok ap -> ap
        | Error e -> Alcotest.failf "open: %s" (Io.error_message e)
      in
      (match Io.append_line ap "one" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "append: %s" (Io.error_message e));
      Alcotest.(check string)
        "D_none buffers in user space" "" (read_exn path);
      (match Io.flush_append ap with
      | Ok () -> ()
      | Error e -> Alcotest.failf "flush: %s" (Io.error_message e));
      Alcotest.(check string) "flush publishes" "one\n" (read_exn path);
      Io.set_durability Io.D_fsync;
      (match Io.append_line ap "two" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "append 2: %s" (Io.error_message e));
      Alcotest.(check string)
        "D_fsync lands immediately" "one\ntwo\n" (read_exn path);
      Io.close_append ap;
      Io.close_append ap (* idempotent *))

(* ------------------------ crash-point matrix -------------------------- *)

(* The full matrix for one seed: forked children killed before every IO
   operation of the snapshot, cache, and serve journal sites, plus
   seeded fault plans on top; every recovery must be old bytes, new
   bytes, or a detected miss — the harness records anything else as a
   failure.  Run through the CLI: the matrix forks, which OCaml 5
   forbids in this process once the parallel-solver suites have spawned
   domains. *)
let test_crash_point_matrix () =
  in_temp_dir (fun dir ->
      let exe =
        let candidate = Filename.concat (Sys.getcwd ()) "../bin/skipflow.exe" in
        if Sys.file_exists candidate then candidate else "skipflow"
      in
      let out = Filename.concat dir "out" in
      let code =
        Sys.command
          (Printf.sprintf "%s fuzz --chaos --seeds 1 -q > %s 2>&1"
             (Filename.quote exe) (Filename.quote out))
      in
      let log = read_exn out in
      if code <> 0 then Alcotest.failf "fuzz --chaos failed:\n%s" log;
      let contains needle =
        let nl = String.length needle and hl = String.length log in
        let rec go i = i + nl <= hl && (String.sub log i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        ("the report counts chaos plans: " ^ log)
        true
        (contains "chaos plans" && not (contains " 0 chaos plans")))

(* [crash_exit:false] raises {!Io.Crash_point} instead of [_exit]ing:
   the in-process variant must still never leak a temp file or tear the
   destination, even though the exception unwinds through the writer. *)
let test_crash_point_exception_paths () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "f" in
      write_exn path "old";
      let total =
        Io.with_plan (Io.plan ~seed:11 ()) (fun () ->
            write_exn path "new";
            Io.ops_performed ())
      in
      for k = 0 to total - 1 do
        write_exn path "old";
        let plan = Io.plan ~crash_at:k ~crash_exit:false ~seed:11 () in
        (match Io.with_plan plan (fun () -> Io.write_file_atomic ~path "new") with
        | (exception Io.Crash_point k') ->
            Alcotest.(check int) "the plan's crash point fired" k k'
        | Ok () -> Alcotest.failf "crash at %d: write reported success" k
        | Error e ->
            Alcotest.failf "crash at %d: mapped to an error instead: %s" k
              (Io.error_message e));
        (match read_exn path with
        | "old" -> ()
        | other -> Alcotest.failf "crash at %d left %S" k other);
        Alcotest.(check (list string))
          (Printf.sprintf "crash at %d leaves no temp file" k)
          [] (tmp_droppings dir)
      done;
      Alcotest.(check bool) "matrix was non-trivial" true (total >= 3))

let suite =
  ( "io",
    [
      Alcotest.test_case "fault plans are deterministic" `Quick
        test_plan_determinism;
      Alcotest.test_case "durability levels are byte-identical" `Quick
        test_durability_levels_byte_identical;
      Alcotest.test_case "EINTR and short writes are invisible" `Quick
        test_absorbable_faults_invisible;
      Alcotest.test_case "EIO/ENOSPC are typed, clean, and atomic" `Quick
        test_hard_faults_typed_and_clean;
      Alcotest.test_case "a torn rename trips the container CRC" `Quick
        test_torn_rename_detected_by_container;
      Alcotest.test_case "faults surface as structured Api errors" `Quick
        test_api_maps_faults_to_structured_errors;
      Alcotest.test_case "appender buffers, flushes, and fsyncs" `Quick
        test_appender_levels;
      Alcotest.test_case "crash-point matrix: snapshot/cache/journal" `Quick
        test_crash_point_matrix;
      Alcotest.test_case "in-process crash points leak nothing" `Quick
        test_crash_point_exception_paths;
    ] )
