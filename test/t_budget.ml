(* The mega-flow overshoot regression: a single drained invoke task can
   resolve many callees, and without the in-task probe
   ([Budget.check_work] after every interprocedural link) the engine
   would only notice a tripped cap at the next task boundary — after
   building every callee's PVPG.  These tests pin the overshoot bound:
   the flow count recorded at trip time stays within one callee's worth
   of flows of the cap, even when one call site fans out to dozens of
   targets. *)

module C = Skipflow_core
module F = Skipflow_frontend

let n_subclasses = 40

(* One base class, [n_subclasses] overriders, and a single virtual call
   site whose receiver phi merges every allocation — the worst case for
   in-task fan-out: one drained invoke task links all 40 callees. *)
let megacall_source () =
  let b = Buffer.create 4096 in
  Buffer.add_string b "class A { int m() { return 0; } }\n";
  for i = 1 to n_subclasses do
    Buffer.add_string b
      (Printf.sprintf "class C%d extends A { int m() { return %d; } }\n" i i)
  done;
  Buffer.add_string b "class Main {\n  static void main() {\n";
  Buffer.add_string b "    int i = 0;\n    A a = new A();\n";
  for i = 1 to n_subclasses do
    Buffer.add_string b
      (Printf.sprintf "    if (i < %d) { a = new C%d(); }\n" i i)
  done;
  Buffer.add_string b "    int r = a.m();\n  }\n}\n";
  Buffer.contents b

let compile () =
  let prog = F.Frontend.compile (megacall_source ()) in
  (prog, Option.get (F.Frontend.main_of prog))

let run ?config ?on_budget ?mode prog main =
  C.Analysis.run ?config ?on_budget ?mode prog ~roots:[ main ]

let stats (r : C.Analysis.result) = C.Engine.stats r.C.Analysis.engine

(* The slack allowed past a cap: the flows one [link_callee] creates —
   the largest single callee graph plus the handful of linking flows on
   the invoke side. *)
let max_method_flows (r : C.Analysis.result) =
  List.fold_left
    (fun acc (g : C.Graph.method_graph) ->
      max acc (List.length g.C.Graph.g_flows))
    0
    (C.Engine.graphs r.C.Analysis.engine)

let test_flow_overshoot_bounded () =
  let prog, main = compile () in
  let straight = run prog main in
  let total = (stats straight).C.Engine.live_flows in
  let per_method = max_method_flows straight in
  (* a cap that trips mid-fan-out: past the root graphs, well short of
     the total *)
  let cap = (total / 2) + 1 in
  Alcotest.(check bool) "cap below the full flow count" true (cap < total);
  let config =
    { C.Config.skipflow with C.Config.budget = C.Budget.make ~max_flows:cap () }
  in
  let degraded = run ~config prog main in
  let s = stats degraded in
  Alcotest.(check bool) "run degraded" true s.C.Engine.degraded;
  (match s.C.Engine.first_trip with
  | Some C.Budget.Flows -> ()
  | Some t -> Alcotest.failf "tripped on %s, not flows" (C.Budget.trip_name t)
  | None -> Alcotest.fail "no trip recorded");
  if s.C.Engine.trip_flows > cap + per_method + 8 then
    Alcotest.failf
      "flow overshoot unbounded: %d live flows at trip, cap %d, largest \
       method %d flows"
      s.C.Engine.trip_flows cap per_method;
  Alcotest.(check bool) "trip actually exceeded the cap" true
    (s.C.Engine.trip_flows >= cap)

let test_task_overshoot_bounded () =
  let prog, main = compile () in
  let cap = 30 in
  let config =
    { C.Config.skipflow with C.Config.budget = C.Budget.make ~max_tasks:cap () }
  in
  let degraded = run ~config prog main in
  let s = stats degraded in
  Alcotest.(check bool) "run degraded" true s.C.Engine.degraded;
  (* the probe counts in-task links toward the task cap, so the drained
     task count at trip can never exceed it *)
  if s.C.Engine.trip_tasks > cap then
    Alcotest.failf "task overshoot: %d tasks drained at trip, cap %d"
      s.C.Engine.trip_tasks cap

(* Regression: the in-task probe must charge only the links made inside
   the current task toward [max_tasks], not the run-cumulative link
   counter.  A discovery chain — each callee's return value is the next
   call's receiver — keeps linking interleaved with propagation to the
   very end of the solve, so the final links probe with nearly the full
   task count *and* the full link total behind them.  With cumulative
   accounting a cap just past the straight-run task count trips there;
   with delta accounting each of those probes charges a single link and
   the run completes untripped. *)
let chain_length = 60

let chain_source () =
  let b = Buffer.create 4096 in
  for i = 1 to chain_length do
    Buffer.add_string b
      (Printf.sprintf "class C%d { C%d next() { return new C%d(); } }\n" i
         (i + 1) (i + 1))
  done;
  Buffer.add_string b (Printf.sprintf "class C%d { }\n" (chain_length + 1));
  Buffer.add_string b "class Main {\n  static void main() {\n";
  Buffer.add_string b "    C1 v1 = new C1();\n";
  for i = 1 to chain_length do
    Buffer.add_string b
      (Printf.sprintf "    C%d v%d = v%d.next();\n" (i + 1) (i + 1) i)
  done;
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b

let test_task_cap_ignores_cumulative_links () =
  let prog = F.Frontend.compile (chain_source ()) in
  let main = Option.get (F.Frontend.main_of prog) in
  let straight = run prog main in
  let s = stats straight in
  Alcotest.(check bool) "chain is link-heavy" true
    (s.C.Engine.links >= chain_length);
  (* small slack past the exact task count, well below the link total:
     cumulative accounting would need ~links worth of headroom *)
  let cap = s.C.Engine.tasks_processed + 4 in
  let config =
    { C.Config.skipflow with C.Config.budget = C.Budget.make ~max_tasks:cap () }
  in
  let capped = run ~config prog main in
  Alcotest.(check bool) "no trip at cap = straight tasks + slack" false
    (stats capped).C.Engine.degraded

(* Degradation stays sound under the mega-call: the widened run certifies
   and reaches at least the precise reachable set. *)
let test_megacall_degradation_sound () =
  let prog, main = compile () in
  let precise = run prog main in
  let config =
    { C.Config.skipflow with C.Config.budget = C.Budget.make ~max_flows:60 () }
  in
  let degraded = run ~config prog main in
  (match C.Verify.run degraded.C.Analysis.engine with
  | [] -> ()
  | vs -> Alcotest.failf "degraded mega-call fails certification: %s" (List.hd vs));
  Alcotest.(check bool) "reachable superset" true
    (C.Engine.reachable_count degraded.C.Analysis.engine
    >= C.Engine.reachable_count precise.C.Analysis.engine)

(* Pausing (instead of degrading) on the same cap must not widen: the
   paused engine is mid-solve, and resuming it unlimited lands on the
   precise fixed point with the precise reachable count. *)
let test_megacall_pause_stays_precise () =
  let prog, main = compile () in
  let precise = run prog main in
  let config =
    { C.Config.skipflow with C.Config.budget = C.Budget.make ~max_tasks:30 () }
  in
  let paused = run ~config ~on_budget:`Pause prog main in
  match paused.C.Analysis.outcome with
  | C.Engine.Completed -> Alcotest.fail "mega-call finished under 30 tasks"
  | C.Engine.Paused bytes -> (
      match C.Analysis.resume ~budget:C.Budget.unlimited bytes with
      | Error msg -> Alcotest.failf "resume: %s" msg
      | Ok finished ->
          Alcotest.(check bool) "not degraded" false
            (C.Engine.is_degraded finished.C.Analysis.engine);
          Alcotest.(check int) "precise reachable count"
            (C.Engine.reachable_count precise.C.Analysis.engine)
            (C.Engine.reachable_count finished.C.Analysis.engine))

let suite =
  ( "budget",
    [
      Alcotest.test_case "mega-call flow overshoot is bounded" `Quick
        test_flow_overshoot_bounded;
      Alcotest.test_case "mega-call task overshoot is bounded" `Quick
        test_task_overshoot_bounded;
      Alcotest.test_case "task cap ignores cumulative links" `Quick
        test_task_cap_ignores_cumulative_links;
      Alcotest.test_case "mega-call degradation is sound" `Quick
        test_megacall_degradation_sound;
      Alcotest.test_case "mega-call pause resumes precisely" `Quick
        test_megacall_pause_stays_precise;
    ] )
