(* Fixed-point engine tests (Appendix C, Figure 15): the Figure 8 final
   state, predicate semantics (Figure 4), value joins (Figure 5), field
   rules, AllInstantiated root seeding, saturation, and worklist-order
   independence on concrete programs. *)

open Skipflow_ir
module C = Skipflow_core
module F = Skipflow_frontend

let analyze ?(config = C.Config.skipflow) ?random_order src =
  let prog = F.Frontend.compile src in
  let main = Option.get (F.Frontend.main_of prog) in
  let r = C.Analysis.run ~config ?random_order prog ~roots:[ main ] in
  (prog, r.C.Analysis.engine, r.C.Analysis.metrics)

let flows_of e prog qname =
  let found = ref None in
  Program.iter_meths prog (fun m ->
      if String.equal (Program.qualified_name prog m.Program.m_id) qname then
        found := C.Engine.graph_of e m.Program.m_id);
  !found

let reachable e prog q =
  List.exists
    (fun (m : Program.meth) -> String.equal (Program.qualified_name prog m.Program.m_id) q)
    (C.Engine.reachable_methods e)

(* -------- Figure 8: the JDK example fixed point, flow by flow --------- *)

let test_fig8_fixed_point () =
  let src =
    {|
class Thread { boolean isVirtual() { return this instanceof BaseVirtualThread; } }
class BaseVirtualThread extends Thread { }
class Set { void remove(Thread t) { } }
class Container {
  var Set virtualThreads;
  void onExit(Thread thread) {
    if (thread.isVirtual()) { this.virtualThreads.remove(thread); }
  }
}
class Main {
  static void main() {
    Container c = new Container();
    c.virtualThreads = new Set();
    c.onExit(new Thread());
  }
}
|}
  in
  let prog, e, _ = analyze src in
  let g = Option.get (flows_of e prog "Container.onExit") in
  let find pred = List.filter pred g.C.Graph.g_flows in
  (* p_thread holds {Thread} only — no virtual thread instantiated *)
  let params = find (fun f -> match f.C.Flow.kind with C.Flow.Param _ -> true | _ -> false) in
  let thread_cls = (Option.get (Program.find_class prog "Thread")).Program.c_id in
  let p_thread = List.nth params 1 in
  Alcotest.(check bool) "VS(p_thread) = {Thread}" true
    (C.Vstate.equal p_thread.C.Flow.state (C.Vstate.of_class thread_cls));
  (* the isVirtual invoke returns exactly {0} *)
  let invokes =
    find (fun f ->
        match f.C.Flow.kind with
        | C.Flow.Invoke inv ->
            String.equal (Program.meth_name prog inv.C.Flow.inv_target) "isVirtual"
        | _ -> false)
  in
  let inv = List.hd invokes in
  Alcotest.(check bool) "isVirtual invoke enabled" true inv.C.Flow.enabled;
  Alcotest.(check bool) "VS(invoke) = {0}" true
    (C.Vstate.equal inv.C.Flow.state (C.Vstate.const 0));
  (* the remove() invoke stays disabled with an empty state (grey in Fig 8) *)
  let removes =
    find (fun f ->
        match f.C.Flow.kind with
        | C.Flow.Invoke inv ->
            String.equal (Program.meth_name prog inv.C.Flow.inv_target) "remove"
        | _ -> false)
  in
  let rm = List.hd removes in
  Alcotest.(check bool) "remove disabled" false rm.C.Flow.enabled;
  Alcotest.(check bool) "remove state empty" true (C.Vstate.is_empty rm.C.Flow.state);
  (* the load of virtualThreads is disabled too *)
  let loads =
    find (fun f -> match f.C.Flow.kind with C.Flow.Field_load _ -> true | _ -> false)
  in
  Alcotest.(check bool) "load disabled" false (List.hd loads).C.Flow.enabled;
  (* in isVirtual: the positive instanceof filter is enabled but EMPTY,
     the negated one holds {Thread} *)
  let gv = Option.get (flows_of e prog "Thread.isVirtual") in
  let filters =
    List.filter_map
      (fun (f : C.Flow.t) ->
        match f.C.Flow.filter with
        | C.Flow.Instanceof { negated; _ } -> Some (negated, f)
        | _ -> None)
      gv.C.Graph.g_flows
  in
  let pos = List.assoc false filters and neg = List.assoc true filters in
  Alcotest.(check bool) "positive filter empty" true (C.Vstate.is_empty pos.C.Flow.state);
  Alcotest.(check bool) "negated filter = {Thread}" true
    (C.Vstate.equal neg.C.Flow.state (C.Vstate.of_class thread_cls));
  (* the isVirtual return is exactly {0} — the constant 1 never flows *)
  Alcotest.(check bool) "return = {0}" true
    (C.Vstate.equal gv.C.Graph.g_return.C.Flow.state (C.Vstate.const 0))

(* ----------------- Figure 4: primitive predicate pruning --------------- *)

let test_fig4 () =
  let src =
    {|
class O { void m() { } void f() { } }
class Conf { static int x() { return 42; } }
class Main {
  static void main() {
    int x = Conf.x();
    O o = new O();
    if (x > 10) { o.m(); } else { o.f(); }
  }
}
|}
  in
  let prog, e, _ = analyze src in
  Alcotest.(check bool) "m reachable" true (reachable e prog "O.m");
  Alcotest.(check bool) "f dead" false (reachable e prog "O.f")

(* ----------------- Figure 5: value join through phis ------------------ *)

let test_fig5_join () =
  let src =
    {|
class C {
  int pick(C x) {
    int y = 0;
    if (x == null) { y = 10; } else { y = 5; }
    return y;
  }
}
class Main {
  static void main() {
    C c = new C();
    int a = c.pick(null);
  }
}
|}
  in
  let prog, e, _ = analyze src in
  let g = Option.get (flows_of e prog "C.pick") in
  (* only the x == null branch is live (the argument is always null), so
     the phi and the return hold exactly {10} *)
  Alcotest.(check bool) "return = {10}" true
    (C.Vstate.equal g.C.Graph.g_return.C.Flow.state (C.Vstate.const 10));
  (* both-branch variant: joining 5 and 10 gives Any (constants collapse) *)
  let src2 =
    {|
class C {
  int pick(C x) {
    int y = 0;
    if (x == null) { y = 10; } else { y = 5; }
    return y;
  }
}
class Main {
  static void main() {
    C c = new C();
    int a = c.pick(null);
    int b = c.pick(c);
  }
}
|}
  in
  let prog2, e2, _ = analyze src2 in
  let g2 = Option.get (flows_of e2 prog2 "C.pick") in
  Alcotest.(check bool) "return joins to Any" true
    (C.Vstate.equal g2.C.Graph.g_return.C.Flow.state C.Vstate.any)

(* --------------------------- field rules ------------------------------ *)

let test_field_flow_join () =
  (* values stored into a field from two places join at every load *)
  let src =
    {|
class Box { var O v; }
class O { }
class P extends O { }
class Main {
  static void main() {
    Box b1 = new Box();
    Box b2 = new Box();
    b1.v = new O();
    b2.v = new P();
    O r = b1.v;
  }
}
|}
  in
  let prog, e, _ = analyze src in
  let g = Option.get (flows_of e prog "Main.main") in
  let loads =
    List.filter
      (fun (f : C.Flow.t) ->
        match f.C.Flow.kind with C.Flow.Field_load _ -> true | _ -> false)
      g.C.Graph.g_flows
  in
  let o = (Option.get (Program.find_class prog "O")).Program.c_id in
  let p = (Option.get (Program.find_class prog "P")).Program.c_id in
  let expected =
    C.Vstate.join ~pval:C.Pval.Flat C.Vstate.null
      (C.Vstate.join ~pval:C.Pval.Flat (C.Vstate.of_class o) (C.Vstate.of_class p))
  in
  (* field-sensitive but context-insensitive: the load sees both stores
     plus the default null *)
  Alcotest.(check bool) "load = {null, O, P}" true
    (C.Vstate.equal (List.hd loads).C.Flow.state expected)

let test_unwritten_field_default () =
  let src =
    {|
class Box { var O v; var int n; }
class O { void m() { } }
class Main {
  static void main() {
    Box b = new Box();
    O r = b.v;
    int k = b.n;
    if (r == null) { int dead = k; } else { r.m(); }
  }
}
|}
  in
  let prog, e, _ = analyze src in
  (* the unwritten object field yields {null}: r.m() resolves to nothing *)
  Alcotest.(check bool) "O.m dead on null-only receiver" false (reachable e prog "O.m")

(* ------------------- root seeding (Section 5 policy) ------------------ *)

let test_root_param_seeding () =
  let src =
    {|
class H { void handle() { } }
class HSpecial extends H { void handle() { } }
class Api {
  void endpoint(H h) { h.handle(); }
}
class Main {
  static void main() {
    H x = new HSpecial();
  }
}
|}
  in
  let prog = F.Frontend.compile src in
  let main = Option.get (F.Frontend.main_of prog) in
  let api = Option.get (Program.find_class prog "Api") in
  let endpoint = Option.get (Program.find_meth prog api "endpoint") in
  (* endpoint is a reflection-style root: its H parameter is seeded with
     every instantiated subtype of H *)
  let e = C.Engine.create prog C.Config.skipflow in
  C.Engine.add_root e main;
  C.Engine.add_root ~seed_params:true e endpoint;
  ignore (C.Engine.run e);
  Alcotest.(check bool) "HSpecial.handle reachable via seeded root" true
    (reachable e prog "HSpecial.handle");
  (* H itself is never instantiated, so H.handle stays dead *)
  Alcotest.(check bool) "H.handle dead" false (reachable e prog "H.handle")

(* ------------------------------ saturation ---------------------------- *)

let test_saturation_sound () =
  (* with a tiny cutoff, type sets collapse to all-instantiated; the
     result must stay a superset of the precise one *)
  let src =
    {|
class B { void m() { } }
class B1 extends B { void m() { } }
class B2 extends B { void m() { } }
class B3 extends B { void m() { } }
class Main {
  static void main() {
    B b = new B1();
    if (b instanceof B1) { b = new B2(); } else { b = new B3(); }
    b.m();
  }
}
|}
  in
  let prog, e, _ = analyze src in
  let prog2, e2, _ =
    analyze ~config:{ C.Config.skipflow with C.Config.saturation = Some 1 } src
  in
  ignore prog2;
  List.iter
    (fun (m : Program.meth) ->
      let q = Program.qualified_name prog m.Program.m_id in
      if reachable e prog q then
        Alcotest.(check bool) (q ^ " still reachable under saturation") true
          (reachable e2 prog q))
    (C.Engine.reachable_methods e)

(* -------------------- worklist-order independence --------------------- *)

let test_order_independence () =
  let src =
    {|
class A { int f(A o, int d) { if (d < 3 && o != null) { return o.f(null, d + 1); } return d; } }
class B extends A { int f(A o, int d) { return d * 2; } }
class Main {
  static void main() {
    A a = new A();
    A b = new B();
    int r = a.f(b, 0);
  }
}
|}
  in
  let _, e0, m0 = analyze src in
  let baseline = List.length (C.Engine.reachable_methods e0) in
  List.iter
    (fun seed ->
      let _, e, m = analyze ~random_order:seed src in
      Alcotest.(check int) "same reachable count" baseline
        (List.length (C.Engine.reachable_methods e));
      Alcotest.(check int) "same type checks" m0.C.Metrics.type_checks m.C.Metrics.type_checks;
      Alcotest.(check int) "same poly calls" m0.C.Metrics.poly_calls m.C.Metrics.poly_calls)
    [ 1; 7; 1234; 99991 ]

(* --------------------- devirtualization info -------------------------- *)

let test_devirtualization () =
  let src =
    {|
class B { int m() { return 0; } }
class B1 extends B { int m() { return 1; } }
class B2 extends B { int m() { return 2; } }
class Flags { static boolean two() { return false; } }
class Main {
  static void main() {
    B b = new B1();
    if (Flags.two()) { b = new B2(); }
    int r = b.m();
  }
}
|}
  in
  let _, _, m_sf = analyze src in
  let _, _, m_pta = analyze ~config:C.Config.pta src in
  (* SkipFlow proves B2 never allocated: the call devirtualizes *)
  Alcotest.(check int) "skipflow: no poly calls" 0 m_sf.C.Metrics.poly_calls;
  Alcotest.(check bool) "pta: the call stays polymorphic" true (m_pta.C.Metrics.poly_calls >= 1)

let suite =
  ( "engine",
    [
      Alcotest.test_case "Figure 8 fixed point" `Quick test_fig8_fixed_point;
      Alcotest.test_case "Figure 4 primitive predicates" `Quick test_fig4;
      Alcotest.test_case "Figure 5 value joins" `Quick test_fig5_join;
      Alcotest.test_case "field flows join stores" `Quick test_field_flow_join;
      Alcotest.test_case "unwritten field defaults to null" `Quick test_unwritten_field_default;
      Alcotest.test_case "root parameter seeding" `Quick test_root_param_seeding;
      Alcotest.test_case "saturation stays sound" `Quick test_saturation_sound;
      Alcotest.test_case "worklist-order independence" `Quick test_order_independence;
      Alcotest.test_case "devirtualization" `Quick test_devirtualization;
    ] )
