(* Type checker tests: accepted programs, rejected programs with the
   expected diagnostic, resolution decisions. *)

module F = Skipflow_frontend

let accepts src =
  match F.Frontend.compile src with
  | _ -> ()
  | exception F.Frontend.Error m -> Alcotest.failf "expected acceptance, got: %s" m

let rejects_with part src =
  match F.Frontend.compile src with
  | _ -> Alcotest.failf "expected a type error mentioning %S" part
  | exception F.Frontend.Error m ->
      let contains s sub =
        let n = String.length s and k = String.length sub in
        let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
        k = 0 || go 0
      in
      if not (contains m part) then Alcotest.failf "error %S does not mention %S" m part

let wrap body = Printf.sprintf "class C { var int f; %s }" body

let test_accepted () =
  accepts (wrap "void m() { }");
  accepts (wrap "int m(int a, int b) { return a + b * 2; }");
  accepts (wrap "boolean m(C other) { return other == null || other == this; }");
  accepts (wrap "int m() { if (this.f > 0) { return 1; } else { return 2; } }");
  accepts (wrap "void m() { while (true) { } }");
  (* non-void method ending in an infinite loop needs no return *)
  accepts (wrap "int m() { while (true) { this.f = this.f + 1; } }");
  accepts
    {|
class A { int m() { return 1; } }
class B extends A { int m() { return 2; } }
class Main { static void main() { A a = new B(); int x = a.m(); } }
|};
  (* assigning a subtype to a supertype location *)
  accepts
    {|
class A { }
class B extends A { }
class Main { static void main() { A a = new B(); a = null; } }
|}

let test_scoping () =
  (* declarations are block-scoped: branch-local vars must not escape
     (this also protects the SSA lowering from undefined reads) *)
  rejects_with "unknown variable"
    (wrap "int m(boolean c) { if (c) { int y = 1; } return y; }");
  rejects_with "unknown variable"
    (wrap "int m() { while (this.f < 3) { int y = 1; } return y; }");
  accepts (wrap "int m(boolean c) { int y = 0; if (c) { y = 1; } return y; }");
  rejects_with "declared twice" (wrap "void m() { int x = 1; int x = 2; }");
  rejects_with "unknown variable" (wrap "void m() { x = 1; }")

let test_type_errors () =
  rejects_with "cannot assign" (wrap "void m() { int x = 0; x = null; }");
  rejects_with "boolean" (wrap "void m() { if (1) { } }");
  rejects_with "boolean" (wrap "void m() { while (this) { } }");
  rejects_with "cannot compare" (wrap "boolean m() { return this == 1; }");
  rejects_with "non-integer" (wrap "int m() { return -true; }");
  rejects_with "int was expected" (wrap "int m() { return 0 - true; }");
  rejects_with "instanceof" (wrap "boolean m() { return 1 instanceof C; }");
  rejects_with "return" (wrap "int m() { return; }");
  rejects_with "void method cannot return" (wrap "void m() { return 1; }");
  rejects_with "does not return" (wrap "int m(boolean c) { if (c) { return 1; } }");
  rejects_with "unknown class" (wrap "void m() { D d = null; }");
  rejects_with "abstract"
    "abstract class A { } class Main { static void main() { A a = new A(); } }"

let test_hierarchy_errors () =
  rejects_with "cycle" "class A extends B { } class B extends A { }";
  rejects_with "declared twice" "class A { } class A { }";
  rejects_with "unknown superclass" "class A extends Nope { }";
  rejects_with "changes the signature"
    "class A { int m() { return 1; } } class B extends A { boolean m() { return true; } }";
  rejects_with "changes the signature"
    "class A { int m() { return 1; } } class B extends A { int m(int x) { return x; } }"

let test_call_checking () =
  rejects_with "expects 2 arguments"
    {|
class A { int m(int a, int b) { return a; } }
class Main { static void main() { A a = new A(); int x = a.m(1); } }
|};
  rejects_with "argument of type"
    {|
class A { int m(int a) { return a; } }
class Main { static void main() { A a = new A(); int x = a.m(null); } }
|};
  rejects_with "no method"
    {|
class A { }
class Main { static void main() { A a = new A(); a.nope(); } }
|};
  rejects_with "is not static"
    {|
class A { int m() { return 1; } }
class Main { static void main() { int x = A.m(); } }
|};
  rejects_with "'this' in a static method" "class A { static void m() { this.m2(); } void m2() { } }";
  (* calling an inherited method through a subclass receiver *)
  accepts
    {|
class A { int m() { return 1; } }
class B extends A { }
class Main { static void main() { B b = new B(); int x = b.m(); } }
|}

let test_field_checking () =
  rejects_with "no field"
    "class A { } class Main { static void main() { A a = new A(); a.f = 1; } }";
  rejects_with "cannot assign"
    (wrap "void m() { this.f = null; }");
  accepts
    {|
class A { var B link; }
class B extends A { }
class Main { static void main() { B b = new B(); b.link = b; } }
|}

let test_static_vs_local_receiver () =
  (* 'Counter.n()' is a static call only when Counter is not a local *)
  accepts
    {|
class Counter { static int n() { return 1; } int inst() { return 2; } }
class Main {
  static void main() {
    int a = Counter.n();
    Counter Counterx = new Counter();
    int b = Counterx.inst();
  }
}
|};
  (* a local variable shadows the class-name interpretation *)
  accepts
    {|
class Counter { int inst() { return 2; } }
class Main {
  static void main() {
    Counter Counter = new Counter();
    int b = Counter.inst();
  }
}
|}

module D = Skipflow_frontend.Diag
module Fr = Skipflow_frontend.Frontend

let test_diags_accumulate_per_method () =
  (* independent type errors in different methods are all reported *)
  let src =
    {|
class A {
  int bad1() { return true; }
  void bad2() { unknown = 1; }
  int ok() { return 3; }
}
|}
  in
  match Fr.compile_diags src with
  | Ok _ -> Alcotest.fail "expected diagnostics"
  | Error ds ->
      Alcotest.(check int) "two type errors" 2 (List.length ds);
      List.iter
        (fun (d : D.t) -> Alcotest.(check bool) "type stage" true (d.D.stage = D.Type))
        ds

let test_diags_declaration_fail_fast () =
  (* a broken hierarchy reports a single declaration-phase diagnostic *)
  let src = "class A extends Missing { }" in
  match Fr.compile_diags src with
  | Ok _ -> Alcotest.fail "expected diagnostics"
  | Error ds -> Alcotest.(check int) "one diagnostic" 1 (List.length ds)

let test_diags_clean_compiles () =
  let src = "class Main { static void main() { int x = 1; } }" in
  match Fr.compile_diags src with
  | Ok prog -> Alcotest.(check bool) "has main" true (Fr.main_of prog <> None)
  | Error ds -> Alcotest.failf "unexpected diagnostics: %d" (List.length ds)

let suite =
  ( "typecheck",
    [
      Alcotest.test_case "accepted programs" `Quick test_accepted;
      Alcotest.test_case "block scoping" `Quick test_scoping;
      Alcotest.test_case "type errors" `Quick test_type_errors;
      Alcotest.test_case "hierarchy errors" `Quick test_hierarchy_errors;
      Alcotest.test_case "call checking" `Quick test_call_checking;
      Alcotest.test_case "field checking" `Quick test_field_checking;
      Alcotest.test_case "static vs local receiver" `Quick test_static_vs_local_receiver;
      Alcotest.test_case "diagnostics accumulate per method" `Quick
        test_diags_accumulate_per_method;
      Alcotest.test_case "declaration errors fail fast" `Quick
        test_diags_declaration_fail_fast;
      Alcotest.test_case "clean source compiles via diags" `Quick test_diags_clean_compiles;
    ] )
