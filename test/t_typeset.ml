(* Unit and property tests for the bitset type-set representation. *)

module TS = Skipflow_core.Typeset

let set () = Alcotest.testable (fun ppf s -> TS.pp ppf s) TS.equal
let ts = set ()

let test_empty () =
  Alcotest.(check bool) "empty is empty" true (TS.is_empty TS.empty);
  Alcotest.(check int) "cardinal 0" 0 (TS.cardinal TS.empty);
  Alcotest.(check (list int)) "no elements" [] (TS.elements TS.empty)

let test_singleton () =
  let s = TS.singleton 5 in
  Alcotest.(check bool) "mem 5" true (TS.mem 5 s);
  Alcotest.(check bool) "not mem 4" false (TS.mem 4 s);
  Alcotest.(check bool) "not mem 500" false (TS.mem 500 s);
  Alcotest.(check int) "cardinal" 1 (TS.cardinal s)

let test_add_remove () =
  let s = TS.of_list [ 1; 63; 64; 200 ] in
  Alcotest.(check (list int)) "elements sorted" [ 1; 63; 64; 200 ] (TS.elements s);
  let s' = TS.remove 64 s in
  Alcotest.(check (list int)) "removed" [ 1; 63; 200 ] (TS.elements s');
  Alcotest.(check ts) "remove absent is id" s (TS.remove 77 s);
  (* removal must renormalize so equality stays structural *)
  let t = TS.remove 200 (TS.of_list [ 1; 200 ]) in
  Alcotest.(check ts) "normalization after remove" (TS.singleton 1) t

let test_ops () =
  let a = TS.of_list [ 0; 1; 70 ] and b = TS.of_list [ 1; 2; 200 ] in
  Alcotest.(check (list int)) "union" [ 0; 1; 2; 70; 200 ] (TS.elements (TS.union a b));
  Alcotest.(check (list int)) "inter" [ 1 ] (TS.elements (TS.inter a b));
  Alcotest.(check (list int)) "diff" [ 0; 70 ] (TS.elements (TS.diff a b));
  Alcotest.(check bool) "subset yes" true (TS.subset (TS.of_list [ 1; 70 ]) a);
  Alcotest.(check bool) "subset no" false (TS.subset b a)

let test_inter_normalizes () =
  (* intersection of disjoint high sets must equal empty structurally *)
  let a = TS.singleton 300 and b = TS.singleton 301 in
  Alcotest.(check ts) "disjoint inter = empty" TS.empty (TS.inter a b);
  Alcotest.(check bool) "equal empties" true (TS.equal (TS.inter a b) TS.empty)

let test_null_bit () =
  Alcotest.(check bool) "null bit" true (TS.has_null TS.null_bit);
  Alcotest.(check bool) "empty lacks null" false (TS.has_null TS.empty)

let test_popcount () =
  List.iter
    (fun w ->
      Alcotest.(check int)
        (Printf.sprintf "popcount %d" w)
        (TS.popcount_naive w) (TS.popcount_word w))
    [ 0; 1; 2; 3; 255; 1 lsl 30; max_int; max_int - 1; (1 lsl 62) - 1 ]

let test_hash_consistent () =
  (* two structurally equal sets built along different paths must hash
     alike (the hash reads the normalized words directly) *)
  let a = TS.of_list [ 1; 63; 64; 200 ] in
  let b = TS.remove 300 (TS.add 300 (TS.of_list [ 200; 64; 63; 1 ])) in
  Alcotest.(check bool) "equal" true (TS.equal a b);
  Alcotest.(check int) "hash equal" (TS.hash a) (TS.hash b);
  Alcotest.(check int) "hash empty stable" (TS.hash TS.empty) (TS.hash (TS.remove 1 (TS.singleton 1)))

let test_sharing_fast_paths () =
  (* the binary ops must return an argument physically when it already is
     the result — engine hot paths rely on this to skip re-boxing *)
  let a = TS.of_list [ 1; 2; 70 ] and sub = TS.of_list [ 1; 70 ] in
  Alcotest.(check bool) "union superset shares" true (TS.union a sub == a);
  Alcotest.(check bool) "union subset shares" true (TS.union sub a == a);
  Alcotest.(check bool) "inter subset shares" true (TS.inter sub a == sub);
  Alcotest.(check bool) "inter superset shares" true (TS.inter a sub == sub);
  let other = TS.of_list [ 300; 301 ] in
  Alcotest.(check bool) "diff disjoint shares" true (TS.diff a other == a);
  (* union_unshared must agree extensionally while never sharing on
     non-trivial inputs (the reference engine's historical cost model) *)
  Alcotest.(check ts) "union_unshared agrees" (TS.union a sub) (TS.union_unshared a sub);
  Alcotest.(check bool) "union_unshared copies" true (TS.union_unshared a sub != a)

(* ---------------------------- properties ------------------------------ *)

let gen_set =
  QCheck.Gen.(
    map TS.of_list (list_size (int_bound 12) (int_bound 150)))

let arb_set = QCheck.make ~print:(Format.asprintf "%a" TS.pp) gen_set

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count:300 gen f)

let props =
  [
    prop "union comm" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        TS.equal (TS.union a b) (TS.union b a));
    prop "union assoc" (QCheck.triple arb_set arb_set arb_set) (fun (a, b, c) ->
        TS.equal (TS.union a (TS.union b c)) (TS.union (TS.union a b) c));
    prop "union idem" arb_set (fun a -> TS.equal (TS.union a a) a);
    prop "inter comm" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        TS.equal (TS.inter a b) (TS.inter b a));
    prop "de morgan via diff" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        (* a \ b = a \ (a ∩ b) *)
        TS.equal (TS.diff a b) (TS.diff a (TS.inter a b)));
    prop "diff then union restores" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        TS.equal (TS.union (TS.diff a b) (TS.inter a b)) a);
    prop "subset union" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        TS.subset a (TS.union a b));
    prop "mem after add" (QCheck.pair arb_set (QCheck.int_bound 150)) (fun (a, i) ->
        TS.mem i (TS.add i a));
    prop "cardinal union inter" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        TS.cardinal (TS.union a b) + TS.cardinal (TS.inter a b)
        = TS.cardinal a + TS.cardinal b);
    prop "equal iff same elements" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        TS.equal a b = (TS.elements a = TS.elements b));
    prop "fold consistent with elements" arb_set (fun a ->
        List.rev (TS.fold (fun i acc -> i :: acc) a []) = TS.elements a);
    prop "hash consistent with equal" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        (not (TS.equal a b)) || TS.hash a = TS.hash b);
    prop "disjoint iff empty inter" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        TS.disjoint a b = TS.is_empty (TS.inter a b));
    prop "union_unshared = union" (QCheck.pair arb_set arb_set) (fun (a, b) ->
        TS.equal (TS.union a b) (TS.union_unshared a b));
    prop "popcount_word = naive" (QCheck.make QCheck.Gen.int) (fun w ->
        let w = abs w in
        TS.popcount_word w = TS.popcount_naive w);
  ]

let suite =
  ( "typeset",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "singleton" `Quick test_singleton;
      Alcotest.test_case "add/remove" `Quick test_add_remove;
      Alcotest.test_case "set operations" `Quick test_ops;
      Alcotest.test_case "inter normalizes" `Quick test_inter_normalizes;
      Alcotest.test_case "null bit" `Quick test_null_bit;
      Alcotest.test_case "popcount word" `Quick test_popcount;
      Alcotest.test_case "hash/equality consistency" `Quick test_hash_consistent;
      Alcotest.test_case "sharing fast paths" `Quick test_sharing_fast_paths;
    ]
    @ props )
