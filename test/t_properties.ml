(* Whole-pipeline property tests on randomly generated programs.

   These check the paper's meta-level claims:
   - soundness: the analysis over-approximates every concrete execution,
     both for reachability (executed methods ∈ ℝ) and for value states
     (every observed value is covered by its defining flow's fixed point);
   - the precision spectrum: reachable(SkipFlow) ⊆ reachable(PTA) ⊆
     reachable(RTA) ⊆ reachable(CHA) as *sets*;
   - ablation monotonicity: each SkipFlow ingredient only removes methods;
   - fixed-point determinism: the result does not depend on worklist order;
   - pipeline totality: generated programs always compile, validate, and
     analyze without exceptions. *)

open Skipflow_ir
module C = Skipflow_core
module W = Skipflow_workloads
module I = Skipflow_interp.Interp
module B = Skipflow_baselines

let cfg_of_seed seed =
  {
    W.Gen_random.seed;
    classes = 3 + (seed mod 7);
    meths_per_class = 1 + (seed mod 3);
    max_stmts = 4 + (seed mod 5);
  }

let compile_seed seed = W.Gen_random.compile (cfg_of_seed seed)

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100_000)

let prop ?(count = 40) name f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb_seed f)

let meth_set_of_list l =
  List.fold_left
    (fun acc (m : Program.meth) -> Ids.Meth.Set.add m.Program.m_id acc)
    Ids.Meth.Set.empty l

let reachable_set r = meth_set_of_list (C.Engine.reachable_methods r.C.Analysis.engine)

(* ------------------------------ soundness ----------------------------- *)

let soundness_reachability seed =
  let prog, main = compile_seed seed in
  let trace, _halt = I.run ~fuel:30_000 prog main in
  let r = C.Analysis.run prog ~roots:[ main ] in
  Ids.Meth.Set.for_all
    (fun m -> C.Engine.is_reachable r.C.Analysis.engine m)
    trace.I.called

let value_covered (v : I.value) (state : C.Vstate.t) =
  match v with
  | I.VInt n -> C.Vstate.leq (C.Vstate.const n) state
  | I.VNull -> C.Vstate.leq C.Vstate.null state
  | I.VObj o -> C.Vstate.leq (C.Vstate.of_class o.I.o_cls) state
  | I.VArr a -> C.Vstate.leq (C.Vstate.of_class a.I.a_cls) state

let product_config = { C.Config.skipflow with C.Config.pval = C.Pval.Product }

let soundness_value_states_cfg config seed =
  let prog, main = compile_seed seed in
  let trace, _halt = I.run ~fuel:20_000 prog main in
  let r = C.Analysis.run ~config prog ~roots:[ main ] in
  List.for_all
    (fun (m, var, v) ->
      match C.Engine.graph_of r.C.Analysis.engine m with
      | None -> false (* executed method must be reachable *)
      | Some g -> (
          match g.C.Graph.g_defs.(Ids.Var.to_int var) with
          | Some flow -> flow.C.Flow.enabled && value_covered v flow.C.Flow.state
          | None -> true (* vars eliminated as trivial phis have no flow *)))
    trace.I.defs

let soundness_value_states = soundness_value_states_cfg C.Config.skipflow
let soundness_value_states_product = soundness_value_states_cfg product_config

let soundness_instantiated seed =
  let prog, main = compile_seed seed in
  let trace, _halt = I.run ~fuel:20_000 prog main in
  let r = C.Analysis.run prog ~roots:[ main ] in
  let inst =
    List.fold_left
      (fun acc c -> Ids.Class.Set.add c acc)
      Ids.Class.Set.empty
      (C.Engine.instantiated_types r.C.Analysis.engine)
  in
  Ids.Class.Set.subset trace.I.created inst

(* -------------------------- precision spectrum ------------------------ *)

let spectrum seed =
  let prog, main = compile_seed seed in
  let sf = reachable_set (C.Analysis.run ~config:C.Config.skipflow prog ~roots:[ main ]) in
  let pta = reachable_set (C.Analysis.run ~config:C.Config.pta prog ~roots:[ main ]) in
  let rta = (B.Rta.run prog ~roots:[ main ]).B.Rta.reachable in
  let cha = (B.Cha.run prog ~roots:[ main ]).B.Cha.reachable in
  Ids.Meth.Set.subset sf pta
  && Ids.Meth.Set.subset pta rta
  && Ids.Meth.Set.subset rta cha

let ablation_monotone seed =
  let prog, main = compile_seed seed in
  let reach c = reachable_set (C.Analysis.run ~config:c prog ~roots:[ main ]) in
  let sf = reach C.Config.skipflow in
  let preds = reach C.Config.predicates_only in
  let prims = reach C.Config.primitives_only in
  let pta = reach C.Config.pta in
  Ids.Meth.Set.subset sf preds
  && Ids.Meth.Set.subset preds pta
  && Ids.Meth.Set.subset sf prims
  && Ids.Meth.Set.subset prims pta

(* the interval × constant product only ever narrows states relative to
   the flat constant domain, so its reachable set refines SkipFlow's *)
let product_refines_flat seed =
  let prog, main = compile_seed seed in
  let flat =
    reachable_set (C.Analysis.run ~config:C.Config.skipflow prog ~roots:[ main ])
  in
  let product =
    reachable_set (C.Analysis.run ~config:product_config prog ~roots:[ main ])
  in
  Ids.Meth.Set.subset product flat

let saturation_superset seed =
  let prog, main = compile_seed seed in
  let sf = reachable_set (C.Analysis.run ~config:C.Config.skipflow prog ~roots:[ main ]) in
  let sat =
    reachable_set
      (C.Analysis.run
         ~config:{ C.Config.skipflow with C.Config.saturation = Some 2 }
         prog ~roots:[ main ])
  in
  Ids.Meth.Set.subset sf sat

(* ------------------------------ determinism --------------------------- *)

let state_signature r =
  (* per-method, per-flow (kind, enabled, state) in construction order *)
  List.map
    (fun (g : C.Graph.method_graph) ->
      ( Program.qualified_name
          (C.Engine.prog_of r.C.Analysis.engine)
          g.C.Graph.g_meth.Program.m_id,
        List.map
          (fun (f : C.Flow.t) ->
            (C.Flow.kind_name f, f.C.Flow.enabled, Format.asprintf "%a" C.Vstate.pp f.C.Flow.state))
          g.C.Graph.g_flows ))
    (C.Engine.graphs r.C.Analysis.engine)
  |> List.sort compare

let order_independence_cfg config seed =
  let prog, main = compile_seed seed in
  let base = C.Analysis.run ~config prog ~roots:[ main ] in
  let sig0 = state_signature base in
  List.for_all
    (fun ord ->
      (* a fresh program instance per run: flows are not shared *)
      let prog2, main2 = compile_seed seed in
      ignore prog;
      let r = C.Analysis.run ~config ~random_order:ord prog2 ~roots:[ main2 ] in
      state_signature r = sig0)
    [ 3; 911 ]

let order_independence = order_independence_cfg C.Config.skipflow

(* widening by threshold snapping keeps the product domain's fixed point
   order-independent too — the paper's determinism claim must survive
   the interval extension *)
let order_independence_product = order_independence_cfg product_config

let interp_deterministic seed =
  let prog, main = compile_seed seed in
  let t1, h1 = I.run ~fuel:20_000 prog main in
  let t2, h2 = I.run ~fuel:20_000 prog main in
  h1 = h2 && t1.I.steps = t2.I.steps
  && Ids.Meth.Set.equal t1.I.called t2.I.called

(* --------------------------- benchmark workloads ----------------------- *)

let bench_params_of_seed seed =
  {
    W.Gen.seed;
    live_units = 4 + (seed mod 10);
    dead_units = 1 + (seed mod 4);
    unused_units = seed mod 3;
    unit_size = 3 + (seed mod 4);
    poly_families = 1 + (seed mod 2);
    poly_width = 2 + (seed mod 3);
    check_density = 0.4;
    cross_calls = 1 + (seed mod 2);
    (* no range guards here: these props pin the *flat* bench contracts
       (SkipFlow < PTA on every metric), and a range-guarded dead unit
       is live under flat by design *)
    range_guards = 0;
  }

let bench_skipflow_below_pta seed =
  let prog, main = W.Gen.compile (bench_params_of_seed seed) in
  let m c = (C.Analysis.run ~config:c prog ~roots:[ main ]).C.Analysis.metrics in
  let sf = m C.Config.skipflow and pta = m C.Config.pta in
  sf.C.Metrics.reachable_methods < pta.C.Metrics.reachable_methods
  && sf.C.Metrics.binary_size <= pta.C.Metrics.binary_size
  && sf.C.Metrics.type_checks <= pta.C.Metrics.type_checks
  && sf.C.Metrics.null_checks <= pta.C.Metrics.null_checks
  && sf.C.Metrics.prim_checks <= pta.C.Metrics.prim_checks
  && sf.C.Metrics.poly_calls <= pta.C.Metrics.poly_calls

let bench_soundness seed =
  (* guard patterns must never hide genuinely live code: under the
     *virtual-thread* style variations the interpreter can reach, every
     executed method is reachable.  Generated benchmarks hang (loops are
     unbounded for Never_returns hosts), so run on a short fuel. *)
  let prog, main = W.Gen.compile (bench_params_of_seed seed) in
  let trace, _halt = I.run ~fuel:15_000 ~record_defs:false prog main in
  let r = C.Analysis.run prog ~roots:[ main ] in
  Ids.Meth.Set.for_all (fun m -> C.Engine.is_reachable r.C.Analysis.engine m) trace.I.called

let suite =
  ( "properties",
    [
      prop ~count:150 "soundness: executed methods reachable" soundness_reachability;
      prop ~count:100 "soundness: value states cover observed values" soundness_value_states;
      prop ~count:60 "soundness: product value states cover observed values"
        soundness_value_states_product;
      prop ~count:60 "precision: product ⊆ flat reachable" product_refines_flat;
      prop ~count:80 "soundness: instantiated types over-approximated" soundness_instantiated;
      prop ~count:100 "precision: SkipFlow ⊆ PTA ⊆ RTA ⊆ CHA" spectrum;
      prop ~count:60 "ablations monotone" ablation_monotone;
      prop ~count:25 "saturation yields superset" saturation_superset;
      prop ~count:20 "fixed point independent of worklist order" order_independence;
      prop ~count:15 "product fixed point independent of worklist order"
        order_independence_product;
      prop ~count:20 "interpreter deterministic" interp_deterministic;
      prop ~count:25 "benchmarks: SkipFlow dominates PTA on every metric"
        bench_skipflow_below_pta;
      prop ~count:25 "benchmarks: guarded code sound" bench_soundness;
    ] )
