(* Parser unit tests: precedence, statement disambiguation, error
   reporting, and pretty-printer round-trips (including on generated
   benchmark programs). *)

module P = Skipflow_frontend.Parser
module A = Skipflow_frontend.Ast
module PP = Skipflow_frontend.Ast_pp
module W = Skipflow_workloads

(* parse a single expression by wrapping it in a method *)
let parse_expr src =
  let prog =
    P.parse_program (Printf.sprintf "class X { int m() { return %s; } }" src)
  in
  match prog with
  | [ { A.cd_meths = [ { A.md_body = [ { A.s = A.Return (Some e); _ } ]; _ } ]; _ } ] -> e
  | _ -> Alcotest.fail "unexpected parse shape"

(* strip positions so ASTs compare structurally *)
let rec strip (e : A.expr) : A.expr =
  let n =
    match e.A.e with
    | A.Binop (op, a, b) -> A.Binop (op, strip a, strip b)
    | A.Not a -> A.Not (strip a)
    | A.Neg a -> A.Neg (strip a)
    | A.InstanceOf (a, c) -> A.InstanceOf (strip a, c)
    | A.Call (r, m, args) -> A.Call (Option.map strip r, m, List.map strip args)
    | A.FieldGet (r, f) -> A.FieldGet (strip r, f)
    | A.NewArr (t, n) -> A.NewArr (t, strip n)
    | A.Index (a, i) -> A.Index (strip a, strip i)
    | A.Cast (t, a) -> A.Cast (t, strip a)
    | (A.Int _ | A.Bool _ | A.Null | A.This | A.Ident _ | A.New _) as n -> n
  in
  { A.e = n; pos = { line = 0; col = 0 } }

let expr_eq a b = strip a = strip b

let check_expr_parses_as src expected_src =
  let a = parse_expr src and b = parse_expr expected_src in
  if not (expr_eq a b) then
    Alcotest.failf "%s did not parse like %s" src expected_src

let test_precedence () =
  check_expr_parses_as "1 + 2 * 3" "1 + (2 * 3)";
  check_expr_parses_as "1 * 2 + 3" "(1 * 2) + 3";
  check_expr_parses_as "1 - 2 - 3" "(1 - 2) - 3";
  check_expr_parses_as "a < b == c < d" "(a < b) == (c < d)";
  check_expr_parses_as "a == b && c == d" "(a == b) && (c == d)";
  check_expr_parses_as "a && b || c && d" "(a && b) || (c && d)";
  check_expr_parses_as "!a && b" "(!a) && b";
  check_expr_parses_as "1 + 2 % 3" "1 + (2 % 3)"

let test_postfix_chains () =
  check_expr_parses_as "a.b.c" "(a.b).c";
  check_expr_parses_as "a.m().f" "(a.m()).f";
  check_expr_parses_as "new C().m(1, 2).g" "((new C()).m(1, 2)).g"

let test_instanceof () =
  check_expr_parses_as "x instanceof T == true" "(x instanceof T) == true";
  check_expr_parses_as "x + 1 instanceof T" "(x + 1) instanceof T"

let test_negative_literals () =
  (* unary minus on literals folds to a negative constant *)
  match (parse_expr "-5").A.e with
  | A.Int (-5) -> ()
  | _ -> Alcotest.fail "expected folded Int (-5)"

let test_stmt_disambiguation () =
  let prog =
    P.parse_program
      {|
class X {
  void m() {
    C x = null;
    int y = 1;
    y = 2;
    x.f = null;
    x.g();
  }
}|}
  in
  match prog with
  | [ { A.cd_meths = [ { A.md_body = stmts; _ } ]; _ } ] ->
      let kinds =
        List.map
          (fun (s : A.stmt) ->
            match s.A.s with
            | A.LocalDecl _ -> "decl"
            | A.AssignLocal _ -> "assign"
            | A.AssignField _ -> "fset"
            | A.ExprStmt _ -> "expr"
            | _ -> "other")
          stmts
      in
      Alcotest.(check (list string)) "statement kinds"
        [ "decl"; "decl"; "assign"; "fset"; "expr" ]
        kinds
  | _ -> Alcotest.fail "unexpected parse shape"

let test_else_if_chain () =
  let prog =
    P.parse_program
      "class X { void m(int a) { if (a < 1) { } else if (a < 2) { } else { } } }"
  in
  match prog with
  | [ { A.cd_meths = [ { A.md_body = [ { A.s = A.If (_, _, [ { A.s = A.If (_, _, els); _ } ]); _ } ]; _ } ]; _ } ]
    ->
      Alcotest.(check int) "final else present" 0 (List.length els - List.length els)
  | _ -> Alcotest.fail "else-if chain shape"

let test_class_decls () =
  let prog =
    P.parse_program
      {|
abstract class A { var int x; int m(int a, boolean b) { return a; } }
class B extends A { static void s() { return; } C c; }
|}
  in
  match prog with
  | [ a; b ] ->
      Alcotest.(check bool) "A abstract" true a.A.cd_abstract;
      Alcotest.(check (option string)) "B extends A" (Some "A") b.A.cd_super;
      Alcotest.(check int) "A fields" 1 (List.length a.A.cd_fields);
      Alcotest.(check int) "B fields (typed decl without var)" 1 (List.length b.A.cd_fields);
      let m = List.hd a.A.cd_meths in
      Alcotest.(check int) "m params" 2 (List.length m.A.md_params);
      Alcotest.(check bool) "s static" true (List.hd b.A.cd_meths).A.md_static
  | _ -> Alcotest.fail "expected two classes"

let test_syntax_errors () =
  let fails src = match P.parse_program src with exception P.Error _ -> true | _ -> false in
  Alcotest.(check bool) "missing brace" true (fails "class X {");
  Alcotest.(check bool) "missing semi" true (fails "class X { void m() { int x = 1 } }");
  Alcotest.(check bool) "stray token at top" true (fails "42");
  Alcotest.(check bool) "bad assignment target" true
    (fails "class X { void m() { 1 = 2; } }");
  Alcotest.(check bool) "if without parens" true
    (fails "class X { void m() { if 1 < 2 { } } }")

(* -------- round trip: parse (pp (parse src)) = parse src ------------- *)

let roundtrip_program src =
  let p1 = P.parse_program src in
  let printed = PP.to_string p1 in
  let p2 =
    try P.parse_program printed
    with P.Error (m, pos) ->
      Alcotest.failf "re-parse failed at %d:%d: %s\n%s" pos.Skipflow_frontend.Lexer.line
        pos.Skipflow_frontend.Lexer.col m printed
  in
  let printed2 = PP.to_string p2 in
  Alcotest.(check string) "pretty-print fixpoint" printed printed2

let test_roundtrip_handwritten () =
  roundtrip_program
    {|
abstract class Shape { var int area; int grow(int by) { return this.area + by; } }
class Circle extends Shape {
  int grow(int by) {
    int a = 0 - 3;
    boolean big = this.area >= 100 || by != 0 && !(this instanceof Circle);
    while (a < by) { a = a + 1; }
    if (big) { return a * 2; } else { return a % 7; }
  }
}
class Main { static void main() { Shape s = new Circle(); int r = s.grow(5); } }
|}

let test_roundtrip_generated () =
  (* the benchmark generator's output must round-trip through the printer *)
  List.iter
    (fun seed ->
      let params = { W.Gen.default_params with W.Gen.seed; live_units = 6; dead_units = 3 } in
      roundtrip_program (W.Gen.source params))
    [ 1; 2; 3 ]

let test_roundtrip_random () =
  List.iter
    (fun seed ->
      let cfg = { W.Gen_random.default_cfg with W.Gen_random.seed } in
      roundtrip_program (PP.to_string (W.Gen_random.generate cfg)))
    [ 10; 11; 12; 13; 14 ]

(* ---------------------- recovery and diagnostics ---------------------- *)

module D = Skipflow_frontend.Diag

let test_recovery_accumulates () =
  (* two independent statement-level errors in one method: both reported,
     and the malformed statements do not desynchronize the rest *)
  let src =
    "class A {\n  int f(int x) {\n    int y = x +;\n    int z = 1;\n    return )z;\n  }\n}\n"
  in
  let classes, ds = P.parse_program_diags src in
  Alcotest.(check int) "both errors reported" 2 (List.length ds);
  Alcotest.(check int) "class still parsed" 1 (List.length classes);
  List.iter
    (fun (d : D.t) -> Alcotest.(check bool) "syntax stage" true (d.D.stage = D.Syntax))
    ds;
  (* spans point at the offending lines *)
  Alcotest.(check (list int)) "lines" [ 3; 5 ]
    (List.map (fun (d : D.t) -> d.D.pos.Skipflow_frontend.Lexer.line) ds)

let test_recovery_member_and_class () =
  (* a broken member resynchronizes to the next member; a broken class to
     the next class *)
  let src =
    "class A {\n  int int;\n  int ok() { return 1; }\n}\nclass % {\n}\nclass B { }\n"
  in
  let classes, ds = P.parse_program_diags src in
  Alcotest.(check bool) "multiple diagnostics" true (List.length ds >= 2);
  let names = List.map (fun (c : A.class_decl) -> c.A.cd_name) classes in
  Alcotest.(check bool) "A survived" true (List.mem "A" names);
  Alcotest.(check bool) "B survived" true (List.mem "B" names);
  let a = List.find (fun (c : A.class_decl) -> c.A.cd_name = "A") classes in
  Alcotest.(check int) "A.ok recovered" 1 (List.length a.A.cd_meths)

let test_clean_parse_no_diags () =
  let src = "class A { int f() { return 1; } }" in
  let classes, ds = P.parse_program_diags src in
  Alcotest.(check int) "no diagnostics" 0 (List.length ds);
  Alcotest.(check int) "one class" 1 (List.length classes)

let test_render_caret () =
  let src = "class A {\n  int f() { return }; }\n}\n" in
  let _, ds = P.parse_program_diags src in
  Alcotest.(check bool) "has diagnostics" true (ds <> []);
  let text = Format.asprintf "%a" (fun ppf -> D.render ~file:"t.mj" ~src ppf) (List.hd ds) in
  Alcotest.(check bool) "header" true
    (String.length text > 0 && String.sub text 0 5 = "t.mj:");
  Alcotest.(check bool) "caret line" true (String.contains text '^')

let suite =
  ( "parser",
    [
      Alcotest.test_case "precedence" `Quick test_precedence;
      Alcotest.test_case "postfix chains" `Quick test_postfix_chains;
      Alcotest.test_case "instanceof" `Quick test_instanceof;
      Alcotest.test_case "negative literals" `Quick test_negative_literals;
      Alcotest.test_case "statement disambiguation" `Quick test_stmt_disambiguation;
      Alcotest.test_case "else-if chain" `Quick test_else_if_chain;
      Alcotest.test_case "class declarations" `Quick test_class_decls;
      Alcotest.test_case "syntax errors" `Quick test_syntax_errors;
      Alcotest.test_case "roundtrip handwritten" `Quick test_roundtrip_handwritten;
      Alcotest.test_case "roundtrip generated benches" `Quick test_roundtrip_generated;
      Alcotest.test_case "roundtrip random programs" `Quick test_roundtrip_random;
      Alcotest.test_case "recovery accumulates statement errors" `Quick
        test_recovery_accumulates;
      Alcotest.test_case "recovery at member and class boundaries" `Quick
        test_recovery_member_and_class;
      Alcotest.test_case "clean parse has no diagnostics" `Quick test_clean_parse_no_diags;
      Alcotest.test_case "caret rendering" `Quick test_render_caret;
    ] )
