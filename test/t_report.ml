(* Direct coverage for lib/core/report.ml: branch_verdict on synthetic
   branch sites, compare_runs on a compiled program where SkipFlow proves
   strictly more than the points-to baseline (removed methods, folded
   branches, devirtualized sites, constant returns), and the printer. *)

open Skipflow_ir
module C = Skipflow_core
module F = Skipflow_frontend

(* ----- branch_verdict on hand-built sites ----- *)

let mk_flow ~enabled ~state =
  let f = C.Flow.make (C.Flow.Filter { check = C.Flow.Prim_check; branch_then = true }) in
  f.C.Flow.enabled <- enabled;
  f.C.Flow.state <- state;
  f

let site then_f else_f =
  {
    C.Graph.bs_kind = C.Flow.Prim_check;
    bs_then_live = then_f;
    bs_else_live = else_f;
    bs_span = None;
    bs_swapped = false;
    bs_synthetic = false;
    bs_then_block = Ids.Block.of_int 1;
    bs_else_block = Ids.Block.of_int 2;
  }

let verdict =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (C.Report.verdict_name v))
    ( = )

let test_branch_verdict () =
  let live = mk_flow ~enabled:true ~state:(C.Vstate.const 1) in
  let live' = mk_flow ~enabled:true ~state:(C.Vstate.const 0) in
  let disabled = mk_flow ~enabled:false ~state:(C.Vstate.const 1) in
  let empty = mk_flow ~enabled:true ~state:C.Vstate.empty in
  Alcotest.check verdict "both live" C.Report.Both_live
    (C.Report.branch_verdict (site live live'));
  Alcotest.check verdict "disabled else" C.Report.Then_only
    (C.Report.branch_verdict (site live disabled));
  Alcotest.check verdict "empty then" C.Report.Else_only
    (C.Report.branch_verdict (site empty live));
  Alcotest.check verdict "dead check" C.Report.Neither
    (C.Report.branch_verdict (site disabled empty))

(* ----- compare_runs on a compiled program ----- *)

let src =
  {|
class Shape {
  int kind() { return 1; }
}
class Circle extends Shape {
  int kind() { return 2; }
}
class Square extends Shape {
  int kind() { return 3; }
  int perimeter() { return 4; }
}
class Main {
  static void helper() { }
  static void main() {
    Shape s = new Circle();
    int k = s.kind();
    if (s instanceof Square) {
      Square q = (Square) s;
      int p = q.perimeter();
    }
    int flag = 0;
    if (flag == 1) {
      Main.helper();
    }
  }
}
|}

let runs () =
  let prog = F.Frontend.compile src in
  let main = Option.get (F.Frontend.main_of prog) in
  let run config = (C.Analysis.run ~config prog ~roots:[ main ]).C.Analysis.engine in
  (run C.Config.pta, run C.Config.skipflow)

let test_removed_methods () =
  let baseline, precise = runs () in
  let r = C.Report.compare_runs ~baseline ~precise in
  (* PTA does not track primitive values, so the [flag == 1] guard keeps
     Main.helper reachable under the baseline; SkipFlow folds it away. *)
  Alcotest.(check bool) "helper removed" true
    (List.mem "Main.helper" r.C.Report.removed_methods);
  (* Square.perimeter is NOT a delta: the cast's type filter already empties
     its receiver under plain points-to, so both analyses prove it dead. *)
  Alcotest.(check bool) "perimeter dead under both" false
    (List.mem "Square.perimeter" r.C.Report.removed_methods)

let test_folded_and_devirtualized () =
  let baseline, precise = runs () in
  let r = C.Report.compare_runs ~baseline ~precise in
  (* verdicts are IR-oriented: instanceof lowers with swapped targets, so
     the dead source-then branch is the IR then-successor (Else_only) *)
  Alcotest.(check bool) "instanceof branch folds one-sided" true
    (List.exists
       (fun (m, k, v) ->
         String.equal m "Main.main" && k = C.Flow.Type_check && v = C.Report.Else_only)
       r.C.Report.folded_branches);
  Alcotest.(check bool) "constant flag check folds one-sided" true
    (List.exists
       (fun (m, k, v) ->
         String.equal m "Main.main" && k = C.Flow.Prim_check && v <> C.Report.Both_live)
       r.C.Report.folded_branches);
  Alcotest.(check bool) "s.kind() devirtualizes to Circle.kind" true
    (List.mem ("Main.main", "Circle.kind") r.C.Report.devirtualized)

let test_constant_returns () =
  let baseline, precise = runs () in
  let r = C.Report.compare_runs ~baseline ~precise in
  Alcotest.(check bool) "Circle.kind returns the constant 2" true
    (List.mem ("Circle.kind", 2) r.C.Report.constant_returns)

let test_self_compare_removes_nothing () =
  let _, precise = runs () in
  let r = C.Report.compare_runs ~baseline:precise ~precise in
  Alcotest.(check (list string)) "no removals vs itself" [] r.C.Report.removed_methods

let test_names_and_pp () =
  Alcotest.(check string) "kind" "type check" (C.Report.kind_name C.Flow.Type_check);
  Alcotest.(check string) "kind" "null check" (C.Report.kind_name C.Flow.Null_check);
  Alcotest.(check string) "verdict" "else branch dead"
    (C.Report.verdict_name C.Report.Then_only);
  let baseline, precise = runs () in
  let r = C.Report.compare_runs ~baseline ~precise in
  let text = Format.asprintf "%a" C.Report.pp r in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "pp mentions %S" needle) true
        (contains needle))
    [ "methods removed"; "foldable branches"; "devirtualized"; "constant-returning" ]

let suite =
  ( "report",
    [
      Alcotest.test_case "branch_verdict truth table" `Quick test_branch_verdict;
      Alcotest.test_case "compare_runs: removed methods" `Quick test_removed_methods;
      Alcotest.test_case "compare_runs: folds + devirt" `Quick
        test_folded_and_devirtualized;
      Alcotest.test_case "compare_runs: constant returns" `Quick test_constant_returns;
      Alcotest.test_case "self-compare removes nothing" `Quick
        test_self_compare_removes_nothing;
      Alcotest.test_case "names and printer" `Quick test_names_and_pp;
    ] )
