(* Benchmark harness regenerating the paper's evaluation artifacts.

   Usage:
     dune exec bench/main.exe                 -- everything below
     dune exec bench/main.exe table1          -- Table 1 (PTA vs SkipFlow, all suites)
     dune exec bench/main.exe figure9         -- Figure 9 (normalized metrics per suite)
     dune exec bench/main.exe ablation        -- extra: feature ablation
     dune exec bench/main.exe product         -- flat vs product primitive domain
     dune exec bench/main.exe micro           -- bechamel micro-benchmarks
     dune exec bench/main.exe json [opts]     -- machine-readable perf rows
                                                 (--benches a,b  --min-dedup-ratio X
                                                  --check-product-live-flows
                                                  --jobs 1,4 (solver domains;
                                                  dedup rows per job count)
                                                  -o FILE; default BENCH_<n>.json)
     dune exec bench/main.exe speedup [opts]  -- parallel solver scaling table
                                                 (--benches a,b  --jobs 1,2,4,8)

   Environment:
     SKIPFLOW_SCALE   workload scale relative to the paper's method counts
                      (default 0.02; the paper's absolute sizes are 20-400k
                      methods — see EXPERIMENTS.md for scale sensitivity)

   Absolute numbers differ from the paper (different machine, synthetic
   workloads, OCaml vs Java); the *shape* is what must match: SkipFlow
   strictly reduces reachable methods on every benchmark, sunflow is a
   ~50% outlier, counters track reachable methods, and analysis time does
   not systematically increase. *)

module Api = Skipflow_api
module C = Skipflow_core
module W = Skipflow_workloads
module K = Skipflow_checks
open Skipflow_ir

let product_config = { C.Config.skipflow with C.Config.pval = C.Pval.Product }

let scale =
  match Sys.getenv_opt "SKIPFLOW_SCALE" with
  | Some s -> float_of_string s
  | None -> 0.02

(* modeled compile throughput for the "total time" proxy: the paper's total
   time is analysis + compilation, and compilation cost is proportional to
   reachable code volume *)
let compile_cost_per_insn = 20e-6

type row = {
  r_bench : W.Suites.bench;
  r_config : string;
  r_time_s : float;
  r_total_s : float;
  r_m : C.Metrics.t;
}

let median l =
  let a = List.sort compare l in
  List.nth a (List.length a / 2)

let analyze ?mode ?trace config prog main =
  match Api.analyze_program ~config ?mode ?trace prog ~roots:[ main ] with
  | Ok s -> s
  | Error e ->
      prerr_endline ("bench: " ^ Api.error_message e);
      exit 1

(* Each repetition carries its own timed trace, so the returned summary's
   phase breakdown belongs to the (last) measured run. *)
let measure ?mode ~reps config prog main =
  let times = ref [] in
  let result = ref None in
  for _ = 1 to max 1 reps do
    let trace = C.Trace.create ~timers:true () in
    let t0 = Unix.gettimeofday () in
    let s = analyze ?mode ~trace config prog main in
    times := (Unix.gettimeofday () -. t0) :: !times;
    result := Some s
  done;
  (Option.get !result, median !times)

(* per-phase wall milliseconds out of a run's trace *)
let phase_ms trace name =
  match
    List.find_opt (fun p -> String.equal p.C.Trace.ph_name name) (C.Trace.phases trace)
  with
  | Some p -> float_of_int p.C.Trace.ph_wall_us /. 1000.
  | None -> 0.

let build_ms trace =
  float_of_int (C.Trace.value (C.Trace.counter trace "build.wall_us")) /. 1000.

let run_bench (b : W.Suites.bench) : row * row =
  let params = W.Suites.params_of ~scale b in
  let prog, main = W.Gen.compile params in
  let n = Program.num_meths prog in
  let reps = if n < 2000 then 5 else if n < 10000 then 3 else 1 in
  let mk config name =
    let s, t = measure ~reps config prog main in
    let m = s.Api.metrics in
    {
      r_bench = b;
      r_config = name;
      r_time_s = t;
      r_total_s = t +. (float_of_int m.C.Metrics.binary_size *. compile_cost_per_insn);
      r_m = m;
    }
  in
  let pta = mk C.Config.pta "PTA" in
  let sf = mk C.Config.skipflow "SkipFlow" in
  (pta, sf)

let pct a b = if b = 0. then 0. else 100. *. (a -. b) /. b
let pcti a b = pct (float_of_int a) (float_of_int b)

(* ------------------------------- Table 1 ------------------------------ *)

let print_table1 (rows : (row * row) list) =
  Printf.printf "\n===== Table 1: PTA vs SkipFlow on all benchmark suites =====\n";
  Printf.printf "(scale %.3f of the paper's method counts; lower is better everywhere)\n\n"
    scale;
  Printf.printf "%-12s %-22s %-9s %8s %8s %7s %7s %7s %7s %7s %8s\n" "suite" "benchmark"
    "config" "time[ms]" "total[s]" "reach" "type" "null" "prim" "poly" "size";
  List.iter
    (fun (pta, sf) ->
      let b = pta.r_bench in
      let pr name (r : row) =
        let m = r.r_m in
        Printf.printf "%-12s %-22s %-9s %8.1f %8.2f %7d %7d %7d %7d %7d %8d\n"
          b.W.Suites.suite
          (if name = "PTA" then b.W.Suites.name else "")
          name (r.r_time_s *. 1000.) r.r_total_s m.C.Metrics.reachable_methods
          m.C.Metrics.type_checks m.C.Metrics.null_checks m.C.Metrics.prim_checks
          m.C.Metrics.poly_calls m.C.Metrics.binary_size
      in
      pr "PTA" pta;
      pr "SkipFlow" sf;
      let d f = pcti (f sf.r_m) (f pta.r_m) in
      Printf.printf "%-12s %-22s %-9s %7.1f%% %7.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %7.1f%%   (paper reach: %+.1f%%)\n"
        "" "" "delta"
        (pct sf.r_time_s pta.r_time_s)
        (pct sf.r_total_s pta.r_total_s)
        (d (fun m -> m.C.Metrics.reachable_methods))
        (d (fun m -> m.C.Metrics.type_checks))
        (d (fun m -> m.C.Metrics.null_checks))
        (d (fun m -> m.C.Metrics.prim_checks))
        (d (fun m -> m.C.Metrics.poly_calls))
        (d (fun m -> m.C.Metrics.binary_size))
        (-.b.W.Suites.paper_reduction_pct))
    rows

(* ------------------------------- Figure 9 ----------------------------- *)

let suite_rows rows suite =
  List.filter (fun (p, _) -> String.equal p.r_bench.W.Suites.suite suite) rows

let bar width ratio =
  (* ratio <= 1.0 is an improvement; draw |#####----| anchored at 1.0 *)
  let n = int_of_float (Float.min 1.2 ratio /. 1.2 *. float_of_int width) in
  String.init width (fun i -> if i < n then '#' else '-')

let print_figure9 (rows : (row * row) list) =
  Printf.printf "\n===== Figure 9: normalized metrics per bench suite =====\n";
  Printf.printf "(SkipFlow / PTA; below 1.0 is an improvement)\n";
  let metrics : (string * (row -> float)) list =
    [
      ("analysis time", fun r -> r.r_time_s);
      ("total time", fun r -> r.r_total_s);
      ("reach. methods", fun r -> float_of_int r.r_m.C.Metrics.reachable_methods);
      ("type checks", fun r -> float_of_int r.r_m.C.Metrics.type_checks);
      ("null checks", fun r -> float_of_int r.r_m.C.Metrics.null_checks);
      ("prim checks", fun r -> float_of_int r.r_m.C.Metrics.prim_checks);
      ("poly calls", fun r -> float_of_int r.r_m.C.Metrics.poly_calls);
      ("binary size", fun r -> float_of_int r.r_m.C.Metrics.binary_size);
    ]
  in
  List.iter
    (fun (suite, _) ->
      let srows = suite_rows rows suite in
      Printf.printf "\n--- %s ---\n" suite;
      List.iter
        (fun (name, f) ->
          let ratios = List.map (fun (p, s) -> f s /. Float.max 1e-9 (f p)) srows in
          let avg = List.fold_left ( +. ) 0. ratios /. float_of_int (List.length ratios) in
          let mn = List.fold_left Float.min infinity ratios in
          let mx = List.fold_left Float.max neg_infinity ratios in
          Printf.printf "%-15s avg %.3f  min %.3f  max %.3f  |%s|\n" name avg mn mx
            (bar 30 avg))
        metrics)
    W.Suites.suites;
  (* per-suite reachable-method averages vs the paper's *)
  Printf.printf "\n--- average reachable-method reduction vs paper ---\n";
  let paper_avgs = [ ("DaCapo", 13.3); ("Micro", 6.3); ("Renaissance", 8.4) ] in
  List.iter
    (fun (suite, _) ->
      let srows = suite_rows rows suite in
      let reds =
        List.map
          (fun (p, s) ->
            -.pcti s.r_m.C.Metrics.reachable_methods p.r_m.C.Metrics.reachable_methods)
          srows
      in
      let avg = List.fold_left ( +. ) 0. reds /. float_of_int (List.length reds) in
      Printf.printf "%-12s measured %5.1f%%   paper %5.1f%%\n" suite avg
        (List.assoc suite paper_avgs))
    W.Suites.suites;
  let all_times =
    List.map (fun (p, s) -> pct s.r_time_s p.r_time_s) rows
  in
  let avg_t = List.fold_left ( +. ) 0. all_times /. float_of_int (List.length all_times) in
  Printf.printf "%-12s measured %+5.1f%%   paper  -1.6%%\n" "analysis-time" avg_t;
  let all_tot = List.map (fun (p, s) -> pct s.r_total_s p.r_total_s) rows in
  let avg_tot = List.fold_left ( +. ) 0. all_tot /. float_of_int (List.length all_tot) in
  Printf.printf "%-12s measured %+5.1f%%   paper  -4.4%%\n" "total-time" avg_tot

(* ------------------------------- ablation ----------------------------- *)

let print_ablation () =
  Printf.printf "\n===== Ablation: predicates and primitives in isolation =====\n";
  Printf.printf "%-22s %-22s %9s %8s %8s %8s %8s\n" "benchmark" "configuration" "reach"
    "type" "null" "prim" "poly";
  List.iter
    (fun name ->
      let b = Option.get (W.Suites.find name) in
      let prog, main = W.Gen.compile (W.Suites.params_of ~scale:(scale /. 2.) b) in
      List.iter
        (fun (cname, config) ->
          let s = analyze config prog main in
          let m = s.Api.metrics in
          Printf.printf "%-22s %-22s %9d %8d %8d %8d %8d\n" name cname
            m.C.Metrics.reachable_methods m.C.Metrics.type_checks
            m.C.Metrics.null_checks m.C.Metrics.prim_checks m.C.Metrics.poly_calls)
        [
          ("PTA", C.Config.pta);
          ("primitives-only", C.Config.primitives_only);
          ("predicates-only", C.Config.predicates_only);
          ("SkipFlow", C.Config.skipflow);
          ("SkipFlow+sat64", { C.Config.skipflow with C.Config.saturation = Some 64 });
        ])
    [ "sunflow"; "pmd"; "spring-petclinic"; "chi-square" ]

(* --------------------- flat vs product primitive domain --------------- *)

(* The EXPERIMENTS.md flat-vs-product table: same program, same engine,
   only the primitive value domain switched.  Reachable methods and live
   flows may only shrink under the product; dead branches (the lint
   check) may only grow. *)
let print_product () =
  Printf.printf "\n===== Flat vs product primitive domain (--pval) =====\n";
  Printf.printf
    "(scale %.3f; the range-guarded units of each workload are removable \
     only under product)\n\n"
    scale;
  Printf.printf "%-12s %-22s %-8s %7s %11s %10s %10s\n" "suite" "benchmark" "pval"
    "reach" "live_flows" "dead_blks" "solve[ms]";
  List.iter
    (fun (b : W.Suites.bench) ->
      let params = W.Suites.params_of ~scale b in
      let prog, main = W.Gen.compile params in
      let line (pname, config) =
        let s, t = measure ~reps:3 config prog main in
        let st = C.Engine.stats s.Api.engine in
        let ctx = K.Checks.make_ctx ~engine:s.Api.engine ~roots:[ main ] in
        let dead_blocks = List.length (K.Checks.dead_blocks ctx) in
        Printf.printf "%-12s %-22s %-8s %7d %11d %10d %10.1f\n" b.W.Suites.suite
          (if pname = "flat" then b.W.Suites.name else "")
          pname
          (C.Engine.reachable_count s.Api.engine)
          st.C.Engine.live_flows dead_blocks (t *. 1000.);
        (C.Engine.reachable_count s.Api.engine, st.C.Engine.live_flows)
      in
      let fr, ff = line ("flat", C.Config.skipflow) in
      let pr, pf = line ("product", product_config) in
      if pr > fr || pf > ff then begin
        Printf.eprintf "product: %s regressed (reach %d->%d, flows %d->%d)\n"
          b.W.Suites.name fr pr ff pf;
        exit 1
      end)
    W.Suites.all

(* --------------------------- bechamel micro --------------------------- *)

let print_micro () =
  Printf.printf "\n===== Micro-benchmarks (bechamel) =====\n%!";
  let open Bechamel in
  let open Toolkit in
  (* fixed small workloads so bechamel can iterate *)
  let small = { W.Gen.default_params with live_units = 20; dead_units = 3; unused_units = 2 } in
  let src = W.Gen.source small in
  let prog, main = W.Gen.compile small in
  let tests =
    [
      Test.make ~name:"frontend: lex+parse+typecheck+lower"
        (Staged.stage (fun () -> Skipflow_frontend.Frontend.compile src));
      Test.make ~name:"analysis: PTA"
        (Staged.stage (fun () -> analyze C.Config.pta prog main));
      Test.make ~name:"analysis: SkipFlow"
        (Staged.stage (fun () -> analyze C.Config.skipflow prog main));
      Test.make ~name:"analysis: SkipFlow preds-only"
        (Staged.stage (fun () -> analyze C.Config.predicates_only prog main));
      Test.make ~name:"baseline: RTA"
        (Staged.stage (fun () -> Skipflow_baselines.Rta.run prog ~roots:[ main ]));
      Test.make ~name:"baseline: CHA"
        (Staged.stage (fun () -> Skipflow_baselines.Cha.run prog ~roots:[ main ]));
      Test.make ~name:"interpreter: run main (fuel 50k)"
        (Staged.stage (fun () ->
             Skipflow_interp.Interp.run ~fuel:50_000 ~record_defs:false prog main));
    ]
  in
  let test = Test.make_grouped ~name:"skipflow" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols (Instance.monotonic_clock) raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  List.iter
    (fun name ->
      let t = Hashtbl.find results name in
      match Analyze.OLS.estimates t with
      | Some [ est ] -> Printf.printf "%-45s %12.3f ms/run\n" name (est /. 1e6)
      | _ -> Printf.printf "%-45s (no estimate)\n" name)
    (List.sort compare names)

(* ------------------------------ json verb ----------------------------- *)

(* Machine-readable perf rows, one per (bench, config), written to
   BENCH_<n>.json so the perf trajectory is tracked across PRs.  Each
   bench runs under four configs: the two analyses of Table 1 with the
   deduplicated engine ("PTA", "SkipFlow") and the same analyses on the
   boxed-FIFO reference drain ("PTA-ref", "SkipFlow-ref"), so the file
   carries its own task-deduplication baseline. *)

type jrow = {
  j_suite : string;
  j_bench : string;
  j_config : string;
  j_pval : string;  (** primitive value domain: "flat" or "product" *)
  j_jobs : int;  (** solver worker domains ([Config.jobs]) for the row *)
  j_time_ms : float;
  j_build_ms : float;  (** PVPG construction (inside the solve) *)
  j_solve_ms : float;  (** worklist drain to the fixed point *)
  j_metrics_ms : float;  (** Table 1 metric collection *)
  j_tasks : int;
  j_dedup_hits : int;
  j_reachable : int;
  j_live_flows : int;
}

let json_configs =
  [
    ("PTA", C.Config.pta, C.Engine.Dedup);
    ("SkipFlow", C.Config.skipflow, C.Engine.Dedup);
    ("SkipFlow-product", product_config, C.Engine.Dedup);
    ("PTA-ref", C.Config.pta, C.Engine.Reference);
    ("SkipFlow-ref", C.Config.skipflow, C.Engine.Reference);
  ]

let json_bench ?(jobs_list = [ 1 ]) (b : W.Suites.bench) : jrow list =
  let params = W.Suites.params_of ~scale b in
  let prog, main = W.Gen.compile params in
  let n = Program.num_meths prog in
  (* json rows feed regression gates, so keep at least 5 repetitions even on
     the big programs: single measurements at scale 0.1 swing by 2x. *)
  let reps = if n < 2000 then 9 else if n < 60_000 then 5 else 3 in
  (* the parallel solver only shards the dedup engine, so the jobs axis
     multiplies the dedup configs only; reference rows stay sequential *)
  let measured =
    List.concat_map
      (fun (cname, config, mode) ->
        if mode = C.Engine.Dedup then
          List.map
            (fun j -> (cname, { config with C.Config.jobs = j }, mode))
            jobs_list
        else [ (cname, config, mode) ])
      json_configs
  in
  List.map
    (fun (cname, config, mode) ->
      let sum, t = measure ~mode ~reps config prog main in
      let s = C.Engine.stats sum.Api.engine in
      {
        j_suite = b.W.Suites.suite;
        j_bench = b.W.Suites.name;
        j_config = cname;
        j_pval = C.Pval.mode_name config.C.Config.pval;
        j_jobs = config.C.Config.jobs;
        j_time_ms = t *. 1000.;
        j_build_ms = build_ms sum.Api.trace;
        j_solve_ms = phase_ms sum.Api.trace "solve";
        j_metrics_ms = phase_ms sum.Api.trace "metrics";
        j_tasks = s.C.Engine.tasks_processed;
        j_dedup_hits = C.Engine.dedup_hits s;
        j_reachable = C.Engine.reachable_count sum.Api.engine;
        j_live_flows = s.C.Engine.live_flows;
      })
    measured

let next_bench_file () =
  let rec go n =
    let f = Printf.sprintf "BENCH_%d.json" n in
    if Sys.file_exists f then go (n + 1) else f
  in
  go 1

(* The dedup win on a config: reference tasks / dedup tasks, summed over
   the benches in the file (the CI smoke floor guards this number). *)
let dedup_ratio rows config =
  (* only sequential rows: with a --jobs list the same config appears once
     per job count, and shard scheduling perturbs its task total *)
  let sum c =
    List.fold_left
      (fun acc r ->
        if String.equal r.j_config c && r.j_jobs = 1 then acc + r.j_tasks
        else acc)
      0 rows
  in
  let ded = sum config and refr = sum (config ^ "-ref") in
  if ded = 0 then 0. else float_of_int refr /. float_of_int ded

let speedup rows config =
  let med c =
    match
      List.filter_map
        (fun r ->
          if String.equal r.j_config c && r.j_jobs = 1 then Some r.j_time_ms
          else None)
        rows
    with
    | [] -> 0.
    | l -> median l
  in
  let ded = med config and refr = med (config ^ "-ref") in
  if ded = 0. then 0. else refr /. ded

(* Wall-time speedup of the sharded solve at the file's highest job count
   over the sequential dedup engine, per config (0 when the file has no
   parallel rows). *)
let par_speedup rows config =
  let times j =
    List.filter_map
      (fun r ->
        if String.equal r.j_config config && r.j_jobs = j then
          Some r.j_time_ms
        else None)
      rows
  in
  let jmax =
    List.fold_left
      (fun acc r ->
        if String.equal r.j_config config then max acc r.j_jobs else acc)
      1 rows
  in
  if jmax = 1 then 0.
  else
    match (times 1, times jmax) with
    | [], _ | _, [] -> 0.
    | seq, par ->
        let s = median seq and p = median par in
        if p = 0. then 0. else s /. p

let emit_json ~out rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  (* v3: rows gained the "jobs" field (solver worker domains) *)
  Buffer.add_string b "  \"schema_version\": 3,\n";
  Printf.bprintf b "  \"scale\": %g,\n" scale;
  Buffer.add_string b "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Printf.bprintf b
        "    {\"suite\": %S, \"bench\": %S, \"config\": %S, \"pval\": %S, \
         \"jobs\": %d, \"time_ms\": %.3f, \
         \"build_ms\": %.3f, \"solve_ms\": %.3f, \"metrics_ms\": %.3f, \
         \"tasks\": %d, \"dedup_hits\": %d, \"reachable\": %d, \"live_flows\": %d}"
        r.j_suite r.j_bench r.j_config r.j_pval r.j_jobs r.j_time_ms r.j_build_ms
        r.j_solve_ms r.j_metrics_ms r.j_tasks r.j_dedup_hits r.j_reachable
        r.j_live_flows)
    rows;
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"summary\": {\n";
  Printf.bprintf b "    \"dedup_task_ratio_pta\": %.3f,\n" (dedup_ratio rows "PTA");
  Printf.bprintf b "    \"dedup_task_ratio_skipflow\": %.3f,\n"
    (dedup_ratio rows "SkipFlow");
  Printf.bprintf b "    \"median_speedup_pta\": %.3f,\n" (speedup rows "PTA");
  Printf.bprintf b "    \"median_speedup_skipflow\": %.3f,\n"
    (speedup rows "SkipFlow");
  Printf.bprintf b "    \"parallel_jobs_max\": %d,\n"
    (List.fold_left (fun acc r -> max acc r.j_jobs) 1 rows);
  Printf.bprintf b "    \"parallel_speedup_pta\": %.3f,\n"
    (par_speedup rows "PTA");
  Printf.bprintf b "    \"parallel_speedup_skipflow\": %.3f\n"
    (par_speedup rows "SkipFlow");
  Buffer.add_string b "  }\n}\n";
  let oc = open_out out in
  Buffer.output_buffer oc b;
  close_out oc

let run_json args =
  (* plain flag parsing, matching the harness style: [--benches a,b]
     restricts the run, [--min-dedup-ratio X] makes the process fail when
     the SkipFlow task-dedup ratio regresses below the floor (the CI smoke
     job), [-o FILE] overrides the auto-numbered output *)
  let benches = ref [] and floor_ = ref None and out = ref None in
  let check_product = ref false and jobs_list = ref [ 1 ] in
  let rec parse = function
    | "--benches" :: v :: rest ->
        benches := String.split_on_char ',' v;
        parse rest
    | "--jobs" :: v :: rest ->
        jobs_list :=
          List.map (fun j -> max 1 (int_of_string j)) (String.split_on_char ',' v);
        parse rest
    | "--min-dedup-ratio" :: v :: rest ->
        floor_ := Some (float_of_string v);
        parse rest
    | "--check-product-live-flows" :: rest ->
        check_product := true;
        parse rest
    | "-o" :: v :: rest ->
        out := Some v;
        parse rest
    | [] -> ()
    | other :: _ ->
        Printf.eprintf "json: unknown argument %s\n" other;
        exit 1
  in
  parse args;
  let selected =
    match !benches with
    | [] -> W.Suites.all
    | names ->
        List.map
          (fun n ->
            match W.Suites.find n with
            | Some b -> b
            | None ->
                Printf.eprintf "json: unknown benchmark %s\n" n;
                exit 1)
          names
  in
  let rows =
    List.concat_map
      (fun (b : W.Suites.bench) ->
        Printf.printf "  %-22s ...%!" b.W.Suites.name;
        let rows = json_bench ~jobs_list:!jobs_list b in
        Printf.printf " ok\n%!";
        rows)
      selected
  in
  let out = match !out with Some f -> f | None -> next_bench_file () in
  emit_json ~out rows;
  let ratio = dedup_ratio rows "SkipFlow" in
  Printf.printf
    "wrote %s (%d rows; SkipFlow dedup task ratio %.2fx, median speedup %.2fx)\n" out
    (List.length rows) ratio (speedup rows "SkipFlow");
  (* precision gate: on every bench the product primitive domain must
     reach a fixed point with no more live flows than the flat one, and
     it must strictly reduce at least one bench in the selection *)
  if !check_product then begin
    let find cfg bn =
      List.find_opt
        (fun r ->
          String.equal r.j_config cfg && String.equal r.j_bench bn
          && r.j_jobs = 1)
        rows
    in
    let bench_names = List.sort_uniq compare (List.map (fun r -> r.j_bench) rows) in
    let strict = ref 0 in
    List.iter
      (fun bn ->
        match (find "SkipFlow" bn, find "SkipFlow-product" bn) with
        | Some flat, Some prod ->
            if prod.j_live_flows > flat.j_live_flows then begin
              Printf.eprintf "json: %s: product live_flows %d exceeds flat %d\n"
                bn prod.j_live_flows flat.j_live_flows;
              exit 1
            end;
            if prod.j_reachable > flat.j_reachable then begin
              Printf.eprintf "json: %s: product reachable %d exceeds flat %d\n"
                bn prod.j_reachable flat.j_reachable;
              exit 1
            end;
            if prod.j_live_flows < flat.j_live_flows then incr strict
        | _ ->
            Printf.eprintf "json: %s: missing a SkipFlow/SkipFlow-product row\n" bn;
            exit 1)
      bench_names;
    Printf.printf "product live-flows gate: %d/%d benches strictly reduced\n"
      !strict (List.length bench_names);
    if !strict = 0 then begin
      Printf.eprintf "json: product domain reduced live_flows on no benchmark\n";
      exit 1
    end
  end;
  match !floor_ with
  | Some f when ratio < f ->
      Printf.eprintf "json: dedup task ratio %.2f below floor %.2f\n" ratio f;
      exit 1
  | _ -> ()

(* ----------------------------- speedup verb --------------------------- *)

(* Parallel solver scaling: the same workload solved at increasing --jobs,
   reported as wall-time speedup over jobs=1.  The verb doubles as a
   correctness gate — reachable methods and live flows must be identical
   at every job count (the fixed point does not depend on the partition),
   so a scheduling bug fails the benchmark run, not just the test suite. *)
let run_speedup args =
  let benches = ref [ "fop"; "pmd"; "luindex" ] in
  let jobs_list = ref [ 1; 2; 4; 8 ] in
  let rec parse = function
    | "--benches" :: v :: rest ->
        benches := String.split_on_char ',' v;
        parse rest
    | "--jobs" :: v :: rest ->
        jobs_list :=
          List.map (fun j -> max 1 (int_of_string j)) (String.split_on_char ',' v);
        parse rest
    | [] -> ()
    | other :: _ ->
        Printf.eprintf "speedup: unknown argument %s\n" other;
        exit 1
  in
  parse args;
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "\n===== Parallel solver scaling (scale %.3f, %d hardware core%s) =====\n"
    scale cores (if cores = 1 then "" else "s");
  if cores = 1 then
    Printf.printf
      "(single-core host: wall-time speedup cannot exceed 1.0x here; the \
       table still\n gates result equality and records coordination \
       overhead honestly)\n";
  Printf.printf "\n%-22s %5s %10s %10s %9s %8s %11s\n" "benchmark" "jobs"
    "time[ms]" "solve[ms]" "speedup" "reach" "live_flows";
  List.iter
    (fun name ->
      let b =
        match W.Suites.find name with
        | Some b -> b
        | None ->
            Printf.eprintf "speedup: unknown benchmark %s\n" name;
            exit 1
      in
      let prog, main = W.Gen.compile (W.Suites.params_of ~scale b) in
      let n = Program.num_meths prog in
      let reps = if n < 2000 then 9 else if n < 60_000 then 5 else 3 in
      let base = ref None in
      List.iter
        (fun jobs ->
          let config = { C.Config.skipflow with C.Config.jobs = jobs } in
          let sum, t = measure ~reps config prog main in
          let st = C.Engine.stats sum.Api.engine in
          let reach = C.Engine.reachable_count sum.Api.engine in
          let flows = st.C.Engine.live_flows in
          (match !base with
          | None -> base := Some (t, reach, flows)
          | Some (_, r0, f0) ->
              if reach <> r0 || flows <> f0 then begin
                Printf.eprintf
                  "speedup: %s at jobs=%d diverged (reach %d vs %d, flows \
                   %d vs %d)\n"
                  name jobs reach r0 flows f0;
                exit 1
              end);
          let t0 = match !base with Some (t0, _, _) -> t0 | None -> t in
          Printf.printf "%-22s %5d %10.1f %10.1f %8.2fx %8d %11d\n"
            (if jobs = List.hd !jobs_list then b.W.Suites.name else "")
            jobs (t *. 1000.)
            (phase_ms sum.Api.trace "solve")
            (t0 /. t) reach flows)
        !jobs_list)
    !benches

(* -------------------------------- driver ------------------------------ *)

let collect () =
  Printf.printf "running Table 1 workloads at scale %.3f (SKIPFLOW_SCALE to change)...\n%!"
    scale;
  List.map
    (fun b ->
      Printf.printf "  %-22s ...%!" b.W.Suites.name;
      let r = run_bench b in
      let p, s = r in
      Printf.printf " PTA %d -> SkipFlow %d (%.1f%%)\n%!"
        p.r_m.C.Metrics.reachable_methods s.r_m.C.Metrics.reachable_methods
        (pcti s.r_m.C.Metrics.reachable_methods p.r_m.C.Metrics.reachable_methods);
      r)
    W.Suites.all

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match what with
  | "table1" ->
      let rows = collect () in
      print_table1 rows
  | "figure9" ->
      let rows = collect () in
      print_figure9 rows
  | "ablation" -> print_ablation ()
  | "product" -> print_product ()
  | "micro" -> print_micro ()
  | "json" ->
      run_json (Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2)))
  | "speedup" ->
      run_speedup
        (Array.to_list (Array.sub Sys.argv 2 (Array.length Sys.argv - 2)))
  | "all" ->
      let rows = collect () in
      print_table1 rows;
      print_figure9 rows;
      print_ablation ();
      print_product ();
      print_micro ()
  | other ->
      Printf.eprintf
        "unknown command %s (table1|figure9|ablation|product|micro|json|speedup|all)\n"
        other;
      exit 1
