(** The [skipflow] command-line tool.

    Subcommands:
    - [analyze FILE.mj] — run an analysis on a MiniJava program and report
      reachable methods and metrics; optionally dump the PVPG as DOT or the
      lowered IR;
    - [compare FILE.mj] — run SkipFlow, PTA, RTA and CHA side by side;
    - [lint FILE.mj] — fixed-point-driven checks (dead methods/branches,
      impossible casts, null dereferences, devirtualizable calls) rendered
      as caret diagnostics or JSON;
    - [run FILE.mj] — execute the program in the concrete interpreter;
    - [fuzz] — randomized robustness harness over generated programs;
    - [gen] — emit a synthetic benchmark program as MiniJava source;
    - [bench-list] — list the benchmark catalog.

    Exit codes: 0 success; 1 analysis error (certifier violations, fuzz
    failures); 2 input error (bad source, bad roots — rendered as caret
    diagnostics); 3 a resource budget tripped and the result is degraded
    but [--allow-degraded] was not given. *)

open Skipflow_ir
module C = Skipflow_core
module F = Skipflow_frontend
module W = Skipflow_workloads
open Cmdliner

let exit_analysis_error = 1
let exit_input_error = 2
let exit_degraded = 3

(** Compile [file], rendering accumulated caret diagnostics on stderr and
    exiting with the input-error code if any are reported. *)
let load_program file =
  let src, result = F.Frontend.compile_file_diags file in
  match result with
  | Ok prog -> prog
  | Error ds ->
      F.Diag.render_all ~file ~src Format.err_formatter ds;
      exit exit_input_error

let roots_of prog = function
  | [] -> (
      match F.Frontend.main_of prog with
      | Some m -> [ m ]
      | None ->
          prerr_endline "error: no static main method found and no --root given";
          exit exit_input_error)
  | names -> (
      try C.Analysis.roots_by_name prog names
      with Not_found | Invalid_argument _ ->
        prerr_endline "error: a --root was not found (use Class.method)";
        exit exit_input_error)

(* ------------------------------- analyze ------------------------------ *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mj" ~doc:"MiniJava source file")

(* the enum maps names straight to configurations: there is no string to
   re-validate downstream *)
let analysis_arg =
  Arg.(
    value
    & opt (enum
             [ ("skipflow", C.Config.skipflow); ("pta", C.Config.pta);
               ("preds-only", C.Config.predicates_only);
               ("prims-only", C.Config.primitives_only) ])
        C.Config.skipflow
    & info [ "a"; "analysis" ] ~doc:"Analysis configuration: skipflow, pta, preds-only, prims-only")

let roots_arg =
  Arg.(value & opt_all string [] & info [ "root" ] ~docv:"Class.method" ~doc:"Root method (repeatable); defaults to the static main")

let list_arg = Arg.(value & flag & info [ "list-reachable" ] ~doc:"Print every reachable method")
let dot_arg = Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"OUT.dot" ~doc:"Dump the fixed-point PVPG as Graphviz")
let ir_arg = Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the lowered SSA base-language IR")
let sat_arg = Arg.(value & opt (some int) None & info [ "saturation" ] ~docv:"K" ~doc:"Enable type-set saturation with cutoff K")

let max_tasks_arg =
  Arg.(value & opt (some int) None & info [ "max-tasks" ] ~docv:"N" ~doc:"Budget: cap on worklist tasks; on trip the engine degrades to a sound, coarser fixed point")

let timeout_arg =
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Budget: wall-clock cap on the fixed-point solve")

let max_flows_arg =
  Arg.(value & opt (some int) None & info [ "max-flows" ] ~docv:"N" ~doc:"Budget: cap on live flows across all reachable methods")

let allow_degraded_arg =
  Arg.(value & flag & info [ "allow-degraded" ] ~doc:"Exit 0 instead of 3 when a budget trips and the result is degraded")

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("dedup", C.Engine.Dedup); ("ref", C.Engine.Reference) ])
        C.Engine.Dedup
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Worklist engine: dedup (deduplicated dirty-flow worklist, the default) or ref (the boxed-FIFO reference drain; same fixed point, more tasks)")

(** Per-task-kind and dedup breakdown of the solver work, printed after
    the Table 1 metrics. *)
let pp_engine_stats ppf (s : C.Engine.stats) =
  Format.fprintf ppf
    "@[<v>worklist drains:  %d (input %d, enable %d, notify %d)@,\
     dedup hits:       %d (input %d, enable %d, notify %d)@,\
     max queue:        %d@]"
    s.C.Engine.tasks_processed s.C.Engine.input_tasks s.C.Engine.enable_tasks
    s.C.Engine.notify_tasks (C.Engine.dedup_hits s) s.C.Engine.dedup_input
    s.C.Engine.dedup_enable s.C.Engine.dedup_notify s.C.Engine.max_queue

let budget_of ~max_tasks ~timeout ~max_flows =
  C.Budget.{ max_tasks; max_seconds = timeout; max_flows }

(** Shared tail: report degradation and exit 3 unless it was opted into. *)
let finish_degradation (r : C.Analysis.result) ~allow_degraded =
  if r.C.Analysis.metrics.C.Metrics.degraded then
    if allow_degraded then
      Format.eprintf "warning: budget exhausted; results are sound but degraded@."
    else begin
      Format.eprintf
        "error: budget exhausted; results are degraded (re-run with --allow-degraded to accept them)@.";
      exit exit_degraded
    end

let analyze_cmd =
  let run file config roots list_reachable dot dump_ir saturation max_tasks timeout
      max_flows allow_degraded mode =
    let prog = load_program file in
    if dump_ir then Format.printf "%a@." Ir_pp.pp_program prog;
    let config =
      { config with
        C.Config.saturation;
        budget = budget_of ~max_tasks ~timeout ~max_flows }
    in
    let roots = roots_of prog roots in
    let t0 = Unix.gettimeofday () in
    let r = C.Analysis.run ~config ~mode prog ~roots in
    let dt = Unix.gettimeofday () -. t0 in
    Format.printf "analysis: %s@." (C.Config.name config);
    Format.printf "%a@." C.Metrics.pp r.C.Analysis.metrics;
    Format.printf "%a@." pp_engine_stats (C.Engine.stats r.C.Analysis.engine);
    Format.printf "wall time:        %.3f s@." dt;
    if list_reachable then
      List.iter
        (fun (m : Program.meth) ->
          Format.printf "  %s@." (Program.qualified_name prog m.Program.m_id))
        (C.Engine.reachable_methods r.C.Analysis.engine);
    (match dot with
    | Some path ->
        C.Dot.write_file prog ~path (C.Engine.graphs r.C.Analysis.engine);
        Format.printf "PVPG written to %s@." path
    | None -> ());
    finish_degradation r ~allow_degraded
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Analyze a MiniJava program")
    Term.(
      const run $ file_arg $ analysis_arg $ roots_arg $ list_arg $ dot_arg $ ir_arg
      $ sat_arg $ max_tasks_arg $ timeout_arg $ max_flows_arg $ allow_degraded_arg
      $ engine_arg)

(* ------------------------------- compare ------------------------------ *)

let compare_cmd =
  let run file roots =
    let prog = load_program file in
    let roots = roots_of prog roots in
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let pta, t_pta = time (fun () -> C.Analysis.run ~config:C.Config.pta prog ~roots) in
    let sf, t_sf = time (fun () -> C.Analysis.run ~config:C.Config.skipflow prog ~roots) in
    let rta, t_rta = time (fun () -> Skipflow_baselines.Rta.run prog ~roots) in
    let cha, t_cha = time (fun () -> Skipflow_baselines.Cha.run prog ~roots) in
    Format.printf "%-10s %10s %10s@." "analysis" "reachable" "time[ms]";
    let row name n t = Format.printf "%-10s %10d %10.1f@." name n (t *. 1000.) in
    row "CHA" (Ids.Meth.Set.cardinal cha.Skipflow_baselines.Cha.reachable) t_cha;
    row "RTA" (Ids.Meth.Set.cardinal rta.Skipflow_baselines.Rta.reachable) t_rta;
    row "PTA" pta.C.Analysis.metrics.C.Metrics.reachable_methods t_pta;
    row "SkipFlow" sf.C.Analysis.metrics.C.Metrics.reachable_methods t_sf;
    let p = pta.C.Analysis.metrics.C.Metrics.reachable_methods in
    let s = sf.C.Analysis.metrics.C.Metrics.reachable_methods in
    if p > 0 then
      Format.printf "@.SkipFlow reduction over PTA: %.1f%%@."
        (100. *. float_of_int (p - s) /. float_of_int p)
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare CHA / RTA / PTA / SkipFlow on one program")
    Term.(const run $ file_arg $ roots_arg)

(* ------------------------------ deadcode ------------------------------ *)

let deadcode_cmd =
  let run file roots verify =
    let prog = load_program file in
    let roots = roots_of prog roots in
    let pta = C.Analysis.run ~config:C.Config.pta prog ~roots in
    let sf = C.Analysis.run ~config:C.Config.skipflow prog ~roots in
    let report =
      C.Report.compare_runs ~baseline:pta.C.Analysis.engine ~precise:sf.C.Analysis.engine
    in
    Format.printf "%a@." C.Report.pp report;
    if verify then begin
      match C.Verify.run sf.C.Analysis.engine with
      | [] -> Format.printf "fixed point certified: all Figure 15 rules hold@."
      | vs ->
          Format.printf "FIXED POINT VIOLATIONS:@.";
          List.iter (fun v -> Format.printf "  %s@." v) vs;
          exit exit_analysis_error
    end
  in
  let verify = Arg.(value & flag & info [ "verify" ] ~doc:"Re-check the Figure 15 rules over the fixed point") in
  Cmd.v
    (Cmd.info "deadcode"
       ~doc:"Report dead methods, foldable branches, and devirtualizable calls (SkipFlow vs PTA)")
    Term.(const run $ file_arg $ roots_arg $ verify)

(* -------------------------------- lint -------------------------------- *)

module K = Skipflow_checks

let lint_cmd =
  let list_checks () =
    String.concat ", " (List.map (fun c -> c.K.Checks.id) K.Checks.all)
  in
  let run file config roots checks format fail_on max_tasks timeout max_flows
      allow_degraded =
    let src, compiled = F.Frontend.compile_file_diags file in
    let prog =
      match compiled with
      | Ok prog -> prog
      | Error ds ->
          F.Diag.render_all ~file ~src Format.err_formatter ds;
          exit exit_input_error
    in
    let only =
      match checks with
      | None -> None
      | Some csv ->
          let ids =
            List.filter (fun s -> s <> "") (String.split_on_char ',' csv)
          in
          List.iter
            (fun id ->
              try ignore (K.Checks.find id)
              with K.Checks.Unknown_check id ->
                Format.eprintf "error: unknown check '%s' (available: %s)@." id
                  (list_checks ());
                exit exit_input_error)
            ids;
          Some ids
    in
    let config =
      { config with
        C.Config.budget = budget_of ~max_tasks ~timeout ~max_flows }
    in
    let roots = roots_of prog roots in
    let r = C.Analysis.run ~config prog ~roots in
    let ctx = K.Checks.make_ctx ~engine:r.C.Analysis.engine ~roots in
    let findings = K.Checks.run ?only ctx in
    let count sev =
      List.length (List.filter (fun f -> f.K.Finding.severity = sev) findings)
    in
    (match format with
    | `Text ->
        F.Diag.render_all ~file ~src Format.std_formatter
          (List.map K.Finding.to_diag findings);
        Format.printf "%d finding(s): %d error(s), %d warning(s), %d note(s)@."
          (List.length findings) (count K.Finding.Error)
          (count K.Finding.Warning) (count K.Finding.Note)
    | `Json ->
        print_string
          (K.Json.to_string
             (K.Json.Obj
                [ ("file", K.Json.Str (Filename.basename file));
                  ("analysis", K.Json.Str (C.Config.name config));
                  ("findings", K.Finding.list_to_json findings);
                ])));
    finish_degradation r ~allow_degraded;
    let fails =
      match fail_on with
      | `Never -> false
      | (`Note | `Warning | `Error) as threshold ->
          let rank =
            K.Finding.severity_rank
              (match threshold with
              | `Note -> K.Finding.Note
              | `Warning -> K.Finding.Warning
              | `Error -> K.Finding.Error)
          in
          List.exists
            (fun f -> K.Finding.severity_rank f.K.Finding.severity >= rank)
            findings
    in
    if fails then exit exit_analysis_error
  in
  let checks_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checks" ] ~docv:"IDS"
          ~doc:
            "Comma-separated checks to run (default: all): dead-method, \
             dead-branch, impossible-cast, null-deref, devirtualize")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text (caret diagnostics) or json")
  in
  let fail_on_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("never", `Never); ("note", `Note); ("warning", `Warning);
               ("error", `Error) ])
          `Warning
      & info [ "fail-on" ] ~docv:"SEV"
          ~doc:
            "Exit 1 when a finding at or above this severity is reported: \
             never, note, warning (default), error")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run fixed-point-driven checks on a MiniJava program (dead methods \
          and branches, impossible casts, null dereferences, \
          devirtualizable calls)")
    Term.(
      const run $ file_arg $ analysis_arg $ roots_arg $ checks_arg $ format_arg
      $ fail_on_arg $ max_tasks_arg $ timeout_arg $ max_flows_arg
      $ allow_degraded_arg)

(* --------------------------------- run -------------------------------- *)

let run_cmd =
  let run file fuel =
    let prog = load_program file in
    match F.Frontend.main_of prog with
    | None ->
        prerr_endline "error: no static main method";
        exit exit_input_error
    | Some main ->
        let trace, halt = Skipflow_interp.Interp.run ~fuel prog main in
        Format.printf "halt: %s@."
          (match halt with
          | Skipflow_interp.Interp.Finished -> "finished"
          | Null_deref -> "null dereference"
          | Div_by_zero -> "division by zero"
          | Out_of_fuel -> "out of fuel"
          | Index_oob -> "array index out of bounds"
          | Class_cast -> "class cast error"
          | Uncaught -> "uncaught exception"
          | Interp_error msg -> "internal interpreter error: " ^ msg);
        Format.printf "steps: %d@." trace.Skipflow_interp.Interp.steps;
        Format.printf "methods executed: %d@."
          (Ids.Meth.Set.cardinal trace.Skipflow_interp.Interp.called);
        Ids.Meth.Set.iter
          (fun m -> Format.printf "  %s@." (Program.qualified_name prog m))
          trace.Skipflow_interp.Interp.called
  in
  let fuel = Arg.(value & opt int 1_000_000 & info [ "fuel" ] ~doc:"Step budget") in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a MiniJava program in the concrete interpreter")
    Term.(const run $ file_arg $ fuel)

(* -------------------------------- fuzz -------------------------------- *)

let fuzz_cmd =
  let run seeds quiet =
    let progress =
      if quiet then fun _ -> ()
      else fun s ->
        if (s + 1) mod 25 = 0 then Format.eprintf "fuzz: %d/%d seeds@." (s + 1) seeds
    in
    let report = Skipflow_fuzz.Fuzz.run ~progress ~seeds () in
    Format.printf "%a@." Skipflow_fuzz.Fuzz.pp_report report;
    if report.Skipflow_fuzz.Fuzz.r_failures <> [] then exit exit_analysis_error
  in
  let seeds = Arg.(value & opt int 100 & info [ "seeds" ] ~docv:"N" ~doc:"Number of random programs to generate and check") in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No progress output") in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Fuzz the pipeline: generated programs, every configuration, random worklist orders, tiny budgets; certify every fixed point against the interpreter")
    Term.(const run $ seeds $ quiet)

(* --------------------------------- gen -------------------------------- *)

let gen_cmd =
  let run bench seed out =
    let params =
      match bench with
      | Some name -> (
          match W.Suites.find name with
          | Some b -> W.Suites.params_of b
          | None ->
              Printf.eprintf "unknown benchmark %s (see bench-list)\n" name;
              exit exit_input_error)
      | None -> { W.Gen.default_params with seed }
    in
    let src = W.Gen.source params in
    match out with
    | Some path ->
        let oc = open_out path in
        output_string oc src;
        close_out oc;
        Printf.printf "wrote %s\n" path
    | None -> print_string src
  in
  let bench = Arg.(value & opt (some string) None & info [ "bench" ] ~doc:"Generate a named Table 1 benchmark") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Seed for the default generator") in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file") in
  Cmd.v
    (Cmd.info "gen" ~doc:"Emit a synthetic benchmark program as MiniJava source")
    Term.(const run $ bench $ seed $ out)

let bench_list_cmd =
  let run () =
    List.iter
      (fun (b : W.Suites.bench) ->
        Printf.printf "%-12s %-22s paper: %6.1fk methods, -%4.1f%%\n" b.W.Suites.suite
          b.W.Suites.name b.W.Suites.paper_pta_kmethods b.W.Suites.paper_reduction_pct)
      W.Suites.all
  in
  Cmd.v (Cmd.info "bench-list" ~doc:"List the Table 1 benchmark catalog") Term.(const run $ const ())

let () =
  let info = Cmd.info "skipflow" ~version:"1.0.0" ~doc:"SkipFlow predicated points-to analysis (CGO 2025 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ analyze_cmd; compare_cmd; deadcode_cmd; lint_cmd; run_cmd; fuzz_cmd;
            gen_cmd; bench_list_cmd ]))
