(** The [skipflow] command-line tool.

    Subcommands:
    - [analyze FILE.mj] — run an analysis on a MiniJava program and report
      reachable methods and metrics; optionally dump the PVPG as DOT or the
      lowered IR;
    - [compare FILE.mj] — run SkipFlow, PTA, RTA and CHA side by side;
    - [lint FILE.mj] — fixed-point-driven checks (dead methods/branches,
      impossible casts, null dereferences, devirtualizable calls) rendered
      as caret diagnostics or JSON;
    - [run FILE.mj] — execute the program in the concrete interpreter;
    - [fuzz] — randomized robustness harness over generated programs;
    - [gen] — emit a synthetic benchmark program as MiniJava source;
    - [bench-list] — list the benchmark catalog.

    Exit codes: 0 success; 1 analysis error (certifier violations, fuzz
    failures); 2 input error (bad source, bad roots — rendered as caret
    diagnostics); 3 a resource budget tripped and the result is degraded
    but [--allow-degraded] was not given. *)

open Skipflow_ir
module Api = Skipflow_api
module C = Skipflow_core
module F = Skipflow_frontend
module W = Skipflow_workloads
module K = Skipflow_checks
module S = Skipflow_serve
open Cmdliner

let exit_analysis_error = 1
let exit_input_error = 2
let exit_degraded = 3

(** Render a facade error and exit with its documented code (the facade
    owns the error-to-exit-code contract). *)
let fail_api_error (e : Api.error) : 'a =
  Api.render_error Format.err_formatter e;
  exit (Api.exit_code_of_error e)

(** The machine-readable failure object: every {!Api.error} variant maps
    to a stable [kind] (see {!Api.error_kind}) plus its documented exit
    code; compile errors carry their positioned diagnostics.  The shape
    is owned by the serve protocol so the one-shot CLI and the daemon
    can never drift apart. *)
let error_json (e : Api.error) = S.Protocol.api_error_json e

(** Format-aware failure: under [--format json] the error object goes to
    stdout (machine-consumable, stderr left clean); under text, carets go
    to stderr as always.  Either way the exit code is the facade's. *)
let fail_error ~format (e : Api.error) : 'a =
  match format with
  | `Text -> fail_api_error e
  | `Json ->
      print_string (K.Json.to_string (error_json e));
      exit (Api.exit_code_of_error e)

let ok_or_fail = function Ok v -> v | Error e -> fail_api_error e

(** Compile [file] through the facade, rendering caret diagnostics on
    stderr and exiting with the input-error code on failure. *)
let load_program ?trace file =
  fst (ok_or_fail (Api.compile ?trace (`File file)))

let roots_of prog names = ok_or_fail (Api.resolve_roots prog names)

(* ------------------------------- analyze ------------------------------ *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.mj" ~doc:"MiniJava source file")

(* the enum maps names straight to configurations: there is no string to
   re-validate downstream *)
let pval_arg =
  Arg.(
    value
    & opt (enum [ ("flat", C.Pval.Flat); ("product", C.Pval.Product) ]) C.Pval.Flat
    & info [ "pval" ] ~docv:"DOMAIN"
        ~doc:
          "Primitive value domain: flat (constants only, the default) or \
           product (reduced product of constants and integer intervals — \
           predicate edges then filter ranges, not just constants)")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the fixed-point solve (default 1: the \
           sequential engine, unchanged).  With N > 1 the PVPG is \
           sharded by method over call-graph SCC regions and drained in \
           parallel; the fixed point is identical, flow by flow, for \
           every N")

let durability_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("none", C.Io.D_none); ("flush", C.Io.D_flush);
             ("fsync", C.Io.D_fsync) ])
        C.Io.D_flush
    & info [ "durability" ] ~docv:"LEVEL"
        ~doc:
          "How hard persisted state (snapshots, cache entries, journals, \
           trace exports) hits the disk: none (buffer in user space until \
           close), flush (complete every write(2) before reporting \
           success; the default, byte-identical to previous releases), or \
           fsync (additionally fsync files, parent directories, and every \
           journal line — survives power loss).  Never changes analysis \
           results, only when bytes are safe")

let analysis_arg =
  let base =
    Arg.(
      value
      & opt (enum
               [ ("skipflow", C.Config.skipflow); ("pta", C.Config.pta);
                 ("preds-only", C.Config.predicates_only);
                 ("prims-only", C.Config.primitives_only) ])
          C.Config.skipflow
      & info [ "a"; "analysis" ] ~doc:"Analysis configuration: skipflow, pta, preds-only, prims-only")
  in
  (* --pval and --jobs compose with every configuration, so every
     subcommand that takes --analysis accepts them with no extra
     plumbing.  --durability rides along the same way but is process
     state, not configuration: like jobs it can never change results
     (which is why the cache fingerprint ignores both). *)
  Term.(
    const (fun config pval jobs durability ->
        C.Io.set_durability durability;
        { config with C.Config.pval; jobs = max 1 jobs })
    $ base $ pval_arg $ jobs_arg $ durability_arg)

let roots_arg =
  Arg.(value & opt_all string [] & info [ "root" ] ~docv:"Class.method" ~doc:"Root method (repeatable); defaults to the static main")

let list_arg = Arg.(value & flag & info [ "list-reachable" ] ~doc:"Print every reachable method")
let dot_arg = Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"OUT.dot" ~doc:"Dump the fixed-point PVPG as Graphviz")
let ir_arg = Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the lowered SSA base-language IR")
let sat_arg = Arg.(value & opt (some int) None & info [ "saturation" ] ~docv:"K" ~doc:"Enable type-set saturation with cutoff K")

let max_tasks_arg =
  Arg.(value & opt (some int) None & info [ "max-tasks" ] ~docv:"N" ~doc:"Budget: cap on worklist tasks; on trip the engine degrades to a sound, coarser fixed point")

let timeout_arg =
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Budget: wall-clock cap on the fixed-point solve")

let max_flows_arg =
  Arg.(value & opt (some int) None & info [ "max-flows" ] ~docv:"N" ~doc:"Budget: cap on live flows across all reachable methods")

let allow_degraded_arg =
  Arg.(value & flag & info [ "allow-degraded" ] ~doc:"Exit 0 instead of 3 when a budget trips and the result is degraded")

let engine_arg =
  Arg.(
    value
    & opt (enum [ ("dedup", C.Engine.Dedup); ("ref", C.Engine.Reference) ])
        C.Engine.Dedup
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Worklist engine: dedup (deduplicated dirty-flow worklist, the default) or ref (the boxed-FIFO reference drain; same fixed point, more tasks)")

(** Per-task-kind and dedup breakdown of the solver work, printed after
    the Table 1 metrics. *)
let pp_engine_stats ppf (s : C.Engine.stats) =
  Format.fprintf ppf
    "@[<v>worklist drains:  %d (input %d, enable %d, notify %d)@,\
     dedup hits:       %d (input %d, enable %d, notify %d)@,\
     max queue:        %d@]"
    s.C.Engine.tasks_processed s.C.Engine.input_tasks s.C.Engine.enable_tasks
    s.C.Engine.notify_tasks (C.Engine.dedup_hits s) s.C.Engine.dedup_input
    s.C.Engine.dedup_enable s.C.Engine.dedup_notify s.C.Engine.max_queue

let budget_of ~max_tasks ~timeout ~max_flows =
  C.Budget.{ max_tasks; max_seconds = timeout; max_flows }

(** Shared tail: report degradation and exit 3 unless it was opted into. *)
let finish_degradation_metrics (m : C.Metrics.t) ~allow_degraded =
  if m.C.Metrics.degraded then
    if allow_degraded then
      Format.eprintf "warning: budget exhausted; results are sound but degraded@."
    else begin
      Format.eprintf
        "error: budget exhausted; results are degraded (re-run with --allow-degraded to accept them)@.";
      exit exit_degraded
    end

(* Shared by analyze and profile: serialize the run's phases and counters
   into the integer-only JSON tree (times are microseconds). *)
let phases_json trace =
  K.Json.Arr
    (List.map
       (fun (p : C.Trace.phase) ->
         K.Json.Obj
           [ ("name", K.Json.Str p.C.Trace.ph_name);
             ("depth", K.Json.Int p.C.Trace.ph_depth);
             ("wall_us", K.Json.Int p.C.Trace.ph_wall_us);
             ("cpu_us", K.Json.Int p.C.Trace.ph_cpu_us);
             ("count", K.Json.Int p.C.Trace.ph_count);
           ])
       (C.Trace.phases trace))

let counters_json trace =
  K.Json.Obj (List.map (fun (name, v) -> (name, K.Json.Int v)) (C.Trace.counters trace))

let analyze_summary_json ~file ~config ~mode ~timings (s : Api.summary) =
  let m = s.Api.metrics in
  K.Json.Obj
    ([
      ("schema_version", K.Json.Int K.Json.current_schema_version);
      ("file", K.Json.Str (Filename.basename file));
      ("analysis", K.Json.Str (C.Config.name config));
      ( "engine",
        K.Json.Str (match mode with C.Engine.Dedup -> "dedup" | C.Engine.Reference -> "ref") );
      ("degraded", K.Json.Bool m.C.Metrics.degraded);
      ( "outcome",
        K.Json.Str
          (match s.Api.outcome with
          | C.Engine.Completed -> "completed"
          | C.Engine.Paused _ -> "paused") );
      ( "metrics",
        K.Json.Obj
          [ ("reachable_methods", K.Json.Int m.C.Metrics.reachable_methods);
            ("type_checks", K.Json.Int m.C.Metrics.type_checks);
            ("null_checks", K.Json.Int m.C.Metrics.null_checks);
            ("prim_checks", K.Json.Int m.C.Metrics.prim_checks);
            ("poly_calls", K.Json.Int m.C.Metrics.poly_calls);
            ("mono_calls", K.Json.Int m.C.Metrics.mono_calls);
            ("binary_size", K.Json.Int m.C.Metrics.binary_size);
            ("flows", K.Json.Int m.C.Metrics.flows);
            ("instantiated_types", K.Json.Int m.C.Metrics.instantiated_types);
          ] );
    ]
    @
    (* timings, phases and counters are run-dependent (and, under
       --jobs, schedule-dependent); dropping them makes summaries
       byte-comparable across runs and job counts *)
    if not timings then []
    else
      [
        ("wall_us", K.Json.Int (int_of_float (s.Api.wall_s *. 1e6)));
        ("cpu_us", K.Json.Int (int_of_float (s.Api.cpu_s *. 1e6)));
        ("phases", phases_json s.Api.trace);
        ("counters", counters_json s.Api.trace);
      ])

let format_arg =
  let deprecated_json =
    Arg.(
      value
      & flag
      & info [ "json" ]
          ~deprecated:"use $(b,--format json) instead"
          ~doc:"Deprecated alias for $(b,--format json)")
  in
  let fmt =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:"Output format: text (human-readable) or json (schema-versioned summary)")
  in
  Term.(
    const (fun fmt deprecated -> if deprecated then `Json else fmt)
    $ fmt $ deprecated_json)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"OUT.json"
        ~doc:"Write a Chrome trace_event file (phases + solver events), loadable in chrome://tracing or Perfetto")

let trace_jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-jsonl" ] ~docv:"OUT.jsonl"
        ~doc:"Write the trace as JSON-lines (header, phases, counters, events)")

let timings_arg =
  Arg.(value & flag & info [ "timings" ] ~doc:"Print the per-phase wall/CPU breakdown and the counter registry")

let analyze_no_timings_arg =
  Arg.(
    value
    & flag
    & info [ "no-timings" ]
        ~doc:
          "Omit wall/CPU times, phases, and counters from the output, \
           making summaries byte-comparable across runs and across \
           $(b,--jobs) values (scheduling changes counters, never \
           results)")

let snapshot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot" ] ~docv:"OUT.snap"
        ~doc:
          "When a budget cap trips, pause at a task boundary instead of \
           degrading and write the complete solver state to $(docv) \
           (exit 3); resume with $(b,--resume-from)")

let resume_from_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume-from" ] ~docv:"SNAP"
        ~doc:
          "Continue a paused solve from a snapshot file; the resumed run \
           uses the budget flags given here (default: unlimited) and \
           reaches the same fixed point an uninterrupted run would.  A \
           corrupt, truncated, or stale snapshot falls back to a full \
           solve with a warning")

let analyze_cmd =
  let run file config roots list_reachable dot dump_ir saturation max_tasks timeout
      max_flows allow_degraded mode format trace_out trace_jsonl timings
      no_timings snapshot resume_from =
    let want_trace = trace_out <> None || trace_jsonl <> None in
    let trace =
      C.Trace.create
        ~timers:(timings || want_trace || format = `Json)
        ~events:want_trace ()
    in
    let fail e = fail_error ~format e in
    let config =
      { config with
        C.Config.saturation;
        budget = budget_of ~max_tasks ~timeout ~max_flows }
    in
    let on_budget = if snapshot <> None then `Pause else `Degrade in
    let resumed =
      match resume_from with
      | None -> None
      | Some path -> (
          match
            C.Snapshot.read ~path ~kind:C.Engine.snapshot_kind
              ~version:C.Engine.snapshot_version
          with
          | Error e ->
              Format.eprintf "warning: %s; falling back to a full solve@."
                (C.Snapshot.error_message e);
              None
          | Ok bytes -> (
              match
                Api.resume_snapshot ~budget:config.C.Config.budget ~on_budget
                  ~trace bytes
              with
              | Error e ->
                  Format.eprintf "warning: %s; falling back to a full solve@."
                    (Api.error_message e);
                  None
              | Ok s -> Some s))
    in
    let s =
      match resumed with
      | Some s -> s
      | None ->
          let prog =
            match Api.compile ~trace (`File file) with
            | Ok (p, _) -> p
            | Error e -> fail e
          in
          let roots =
            match Api.resolve_roots prog roots with
            | Ok r -> r
            | Error e -> fail e
          in
          (match
             Api.analyze_program ~config ~mode ~on_budget ~trace prog ~roots
           with
          | Ok s -> s
          | Error e -> fail e)
    in
    let prog = C.Engine.prog_of s.Api.engine in
    if dump_ir then Format.printf "%a@." Ir_pp.pp_program prog;
    let meth_name id = Program.qualified_name prog (Ids.Meth.of_int id) in
    let warn_trace = function
      | Ok () -> ()
      | Error e ->
          Format.eprintf "warning: trace export failed: %s@."
            (C.Io.error_message e)
    in
    (match trace_out with
    | Some path -> warn_trace (C.Trace.write_chrome ~meth_name trace path)
    | None -> ());
    (match trace_jsonl with
    | Some path -> warn_trace (C.Trace.write_jsonl ~meth_name trace path)
    | None -> ());
    (match format with
    | `Json ->
        print_string
          (K.Json.to_string
             (analyze_summary_json ~file ~config ~mode ~timings:(not no_timings)
                s))
    | `Text ->
        Format.printf "analysis: %s@." (C.Config.name config);
        Format.printf "%a@." C.Metrics.pp s.Api.metrics;
        Format.printf "%a@." pp_engine_stats (C.Engine.stats s.Api.engine);
        if not no_timings then
          Format.printf "wall time:        %.3f s@." s.Api.wall_s;
        if timings then
          Format.printf "@.%a@.%a@." C.Trace.pp_phases trace C.Trace.pp_counters trace;
        if list_reachable then
          List.iter (fun name -> Format.printf "  %s@." name) s.Api.reachable;
        (match dot with
        | Some path ->
            C.Dot.write_file prog ~path (C.Engine.graphs s.Api.engine);
            Format.printf "PVPG written to %s@." path
        | None -> ()));
    (match (s.Api.outcome, snapshot) with
    | C.Engine.Paused _, Some path -> (
        (* the engine behind a [Paused] outcome is at a task boundary;
           persist it in the checksummed container *)
        match C.Engine.save_snapshot s.Api.engine ~path with
        | Ok () ->
            Format.eprintf
              "budget tripped: solver paused; state written to %s (resume \
               with --resume-from %s)@."
              path path;
            exit exit_degraded
        | Error e ->
            Format.eprintf "error: cannot write snapshot: %s@."
              (C.Snapshot.error_message e);
            exit exit_analysis_error)
    | _ -> ());
    finish_degradation_metrics s.Api.metrics ~allow_degraded
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Analyze a MiniJava program")
    Term.(
      const run $ file_arg $ analysis_arg $ roots_arg $ list_arg $ dot_arg $ ir_arg
      $ sat_arg $ max_tasks_arg $ timeout_arg $ max_flows_arg $ allow_degraded_arg
      $ engine_arg $ format_arg $ trace_arg $ trace_jsonl_arg $ timings_arg
      $ analyze_no_timings_arg $ snapshot_arg $ resume_from_arg)

(* ------------------------------- compare ------------------------------ *)

let compare_cmd =
  let run file roots =
    let prog = load_program file in
    let roots = roots_of prog roots in
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Float.max 0.0 (Unix.gettimeofday () -. t0))
    in
    let pta, t_pta =
      time (fun () ->
          ok_or_fail (Api.analyze_program ~config:C.Config.pta prog ~roots))
    in
    let sf, t_sf =
      time (fun () ->
          ok_or_fail (Api.analyze_program ~config:C.Config.skipflow prog ~roots))
    in
    let rta, t_rta = time (fun () -> Skipflow_baselines.Rta.run prog ~roots) in
    let cha, t_cha = time (fun () -> Skipflow_baselines.Cha.run prog ~roots) in
    Format.printf "%-10s %10s %10s@." "analysis" "reachable" "time[ms]";
    let row name n t = Format.printf "%-10s %10d %10.1f@." name n (t *. 1000.) in
    row "CHA" (Ids.Meth.Set.cardinal cha.Skipflow_baselines.Cha.reachable) t_cha;
    row "RTA" (Ids.Meth.Set.cardinal rta.Skipflow_baselines.Rta.reachable) t_rta;
    row "PTA" pta.Api.metrics.C.Metrics.reachable_methods t_pta;
    row "SkipFlow" sf.Api.metrics.C.Metrics.reachable_methods t_sf;
    let p = pta.Api.metrics.C.Metrics.reachable_methods in
    let s = sf.Api.metrics.C.Metrics.reachable_methods in
    if p > 0 then
      Format.printf "@.SkipFlow reduction over PTA: %.1f%%@."
        (100. *. float_of_int (p - s) /. float_of_int p)
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare CHA / RTA / PTA / SkipFlow on one program")
    Term.(const run $ file_arg $ roots_arg)

(* ------------------------------ deadcode ------------------------------ *)

let deadcode_cmd =
  let run file roots verify =
    let prog = load_program file in
    let roots = roots_of prog roots in
    let pta = ok_or_fail (Api.analyze_program ~config:C.Config.pta prog ~roots) in
    let sf = ok_or_fail (Api.analyze_program ~config:C.Config.skipflow prog ~roots) in
    let report =
      C.Report.compare_runs ~baseline:pta.Api.engine ~precise:sf.Api.engine
    in
    Format.printf "%a@." C.Report.pp report;
    if verify then begin
      match C.Verify.run sf.Api.engine with
      | [] -> Format.printf "fixed point certified: all Figure 15 rules hold@."
      | vs ->
          Format.printf "FIXED POINT VIOLATIONS:@.";
          List.iter (fun v -> Format.printf "  %s@." v) vs;
          exit exit_analysis_error
    end
  in
  let verify = Arg.(value & flag & info [ "verify" ] ~doc:"Re-check the Figure 15 rules over the fixed point") in
  Cmd.v
    (Cmd.info "deadcode"
       ~doc:"Report dead methods, foldable branches, and devirtualizable calls (SkipFlow vs PTA)")
    Term.(const run $ file_arg $ roots_arg $ verify)

(* -------------------------------- lint -------------------------------- *)

let lint_cmd =
  let list_checks () =
    String.concat ", " (List.map (fun c -> c.K.Checks.id) K.Checks.all)
  in
  let run file config roots checks format fail_on max_tasks timeout max_flows
      allow_degraded =
    let prog, src = ok_or_fail (Api.compile (`File file)) in
    let only =
      match checks with
      | None -> None
      | Some csv ->
          let ids =
            List.filter (fun s -> s <> "") (String.split_on_char ',' csv)
          in
          List.iter
            (fun id ->
              try ignore (K.Checks.find id)
              with K.Checks.Unknown_check id ->
                Format.eprintf "error: unknown check '%s' (available: %s)@." id
                  (list_checks ());
                exit exit_input_error)
            ids;
          Some ids
    in
    let config =
      { config with
        C.Config.budget = budget_of ~max_tasks ~timeout ~max_flows }
    in
    let roots = roots_of prog roots in
    let s = ok_or_fail (Api.analyze_program ~config prog ~roots) in
    let ctx = K.Checks.make_ctx ~engine:s.Api.engine ~roots in
    let findings = K.Checks.run ?only ctx in
    let count sev =
      List.length (List.filter (fun f -> f.K.Finding.severity = sev) findings)
    in
    (match format with
    | `Text ->
        F.Diag.render_all ~file ~src Format.std_formatter
          (List.map K.Finding.to_diag findings);
        Format.printf "%d finding(s): %d error(s), %d warning(s), %d note(s)@."
          (List.length findings) (count K.Finding.Error)
          (count K.Finding.Warning) (count K.Finding.Note)
    | `Json ->
        print_string
          (K.Json.to_string
             (K.Finding.document_to_json ~file:(Filename.basename file)
                ~analysis:(C.Config.name config) findings)));
    finish_degradation_metrics s.Api.metrics ~allow_degraded;
    let fails =
      match fail_on with
      | `Never -> false
      | (`Note | `Warning | `Error) as threshold ->
          let rank =
            K.Finding.severity_rank
              (match threshold with
              | `Note -> K.Finding.Note
              | `Warning -> K.Finding.Warning
              | `Error -> K.Finding.Error)
          in
          List.exists
            (fun f -> K.Finding.severity_rank f.K.Finding.severity >= rank)
            findings
    in
    if fails then exit exit_analysis_error
  in
  let checks_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checks" ] ~docv:"IDS"
          ~doc:
            "Comma-separated checks to run (default: all): dead-method, \
             dead-branch, impossible-cast, null-deref, devirtualize")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text (caret diagnostics) or json")
  in
  let fail_on_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("never", `Never); ("note", `Note); ("warning", `Warning);
               ("error", `Error) ])
          `Warning
      & info [ "fail-on" ] ~docv:"SEV"
          ~doc:
            "Exit 1 when a finding at or above this severity is reported: \
             never, note, warning (default), error")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run fixed-point-driven checks on a MiniJava program (dead methods \
          and branches, impossible casts, null dereferences, \
          devirtualizable calls)")
    Term.(
      const run $ file_arg $ analysis_arg $ roots_arg $ checks_arg $ format_arg
      $ fail_on_arg $ max_tasks_arg $ timeout_arg $ max_flows_arg
      $ allow_degraded_arg)

(* --------------------------------- run -------------------------------- *)

let run_cmd =
  let run file fuel =
    let prog = load_program file in
    match F.Frontend.main_of prog with
    | None ->
        prerr_endline "error: no static main method";
        exit exit_input_error
    | Some main ->
        let trace, halt = Skipflow_interp.Interp.run ~fuel prog main in
        Format.printf "halt: %s@."
          (match halt with
          | Skipflow_interp.Interp.Finished -> "finished"
          | Null_deref -> "null dereference"
          | Div_by_zero -> "division by zero"
          | Out_of_fuel -> "out of fuel"
          | Index_oob -> "array index out of bounds"
          | Class_cast -> "class cast error"
          | Uncaught -> "uncaught exception"
          | Interp_error msg -> "internal interpreter error: " ^ msg);
        Format.printf "steps: %d@." trace.Skipflow_interp.Interp.steps;
        Format.printf "methods executed: %d@."
          (Ids.Meth.Set.cardinal trace.Skipflow_interp.Interp.called);
        Ids.Meth.Set.iter
          (fun m -> Format.printf "  %s@." (Program.qualified_name prog m))
          trace.Skipflow_interp.Interp.called
  in
  let fuel = Arg.(value & opt int 1_000_000 & info [ "fuel" ] ~doc:"Step budget") in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a MiniJava program in the concrete interpreter")
    Term.(const run $ file_arg $ fuel)

(* -------------------------------- fuzz -------------------------------- *)

let fuzz_cmd =
  let run seeds quiet crash chaos jobs =
    let progress =
      if quiet then fun _ -> ()
      else if chaos then fun s ->
        Format.eprintf "fuzz: %d/%d seeds@." (s + 1) seeds
      else fun s ->
        if (s + 1) mod 25 = 0 then Format.eprintf "fuzz: %d/%d seeds@." (s + 1) seeds
    in
    let report =
      Skipflow_fuzz.Fuzz.run ~progress ~crash ~chaos ~jobs:(max 1 jobs) ~seeds ()
    in
    Format.printf "%a@." Skipflow_fuzz.Fuzz.pp_report report;
    if report.Skipflow_fuzz.Fuzz.r_failures <> [] then exit exit_analysis_error
  in
  let seeds = Arg.(value & opt int 100 & info [ "seeds" ] ~docv:"N" ~doc:"Number of random programs to generate and check") in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No progress output") in
  let crash =
    Arg.(
      value
      & flag
      & info [ "crash" ]
          ~doc:
            "Also run the crash-injection matrix: truncate and bit-flip \
             persisted snapshots and cache entries, and check every damaged \
             file is detected, quarantined, and recoverable")
  in
  let chaos =
    Arg.(
      value
      & flag
      & info [ "chaos" ]
          ~doc:
            "Also run the syscall-level crash-point matrix: enumerate \
             every IO operation of every durable-write site (engine \
             snapshot, cache store, serve journal + snapshot), fork a \
             child per operation and kill it there, then demand \
             recovery is the old bytes, the new bytes, or a detected \
             miss — never a torn read; seeded EIO/ENOSPC/EINTR/\
             short-write/torn-rename fault plans run on top")
  in
  let fuzz_jobs =
    Arg.(
      value
      & opt int 1
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Run the deterministic-order cases of the matrix on the \
             sharded parallel solver with N worker domains (same \
             oracles, same expected fixed points)")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Fuzz the pipeline: generated programs, every configuration, random worklist orders, tiny budgets; certify every fixed point against the interpreter")
    Term.(const run $ seeds $ quiet $ crash $ chaos $ fuzz_jobs)

(* -------------------------------- batch ------------------------------- *)

(* The batch driver: [analyze] over a manifest of jobs with fault
   isolation.  Each job runs in a forked child by default, so a crash (or
   the per-job watchdog's SIGKILL) is contained to a per-job error record
   instead of taking the batch down; transient I/O errors retry with
   exponential backoff; successful results can be cached by content hash;
   every completed job is journaled so an interrupted batch re-run with
   [--resume] skips finished work and produces the same summary. *)

let batch_schema_version = 1

let mkdir_p path = ignore (C.Io.mkdir_p path)

(** What one job produced, as exchanged between the forked worker and the
    driver (a single JSON object on a temp file). *)
type job_result = {
  b_status : string;  (** ["ok" | "degraded" | "failed" | "quarantined"] *)
  b_exit : int;  (** the job's own exit-code contract: 0, 1, or 2 *)
  b_error_kind : string option;
      (** {!Api.error_kind}, or the driver's ["crash"] / ["timeout"] *)
  b_detail : string option;
  b_reachable : int option;
  b_wall_us : int;
}

let job_result_json r =
  K.Json.Obj
    ([ ("status", K.Json.Str r.b_status);
       ("exit_code", K.Json.Int r.b_exit);
       ("wall_us", K.Json.Int r.b_wall_us);
     ]
    @ (match r.b_reachable with
      | Some n -> [ ("reachable_methods", K.Json.Int n) ]
      | None -> [])
    @ (match r.b_error_kind with
      | Some k -> [ ("error_kind", K.Json.Str k) ]
      | None -> [])
    @ match r.b_detail with Some d -> [ ("detail", K.Json.Str d) ] | None -> [])

let job_result_of_json j =
  let str name =
    match K.Json.member name j with Some (K.Json.Str s) -> Some s | _ -> None
  in
  let int name =
    match K.Json.member name j with Some (K.Json.Int n) -> Some n | _ -> None
  in
  match (str "status", int "exit_code") with
  | Some b_status, Some b_exit ->
      Some
        {
          b_status;
          b_exit;
          b_error_kind = str "error_kind";
          b_detail = str "detail";
          b_reachable = int "reachable_methods";
          b_wall_us = Option.value ~default:0 (int "wall_us");
        }
  | _ -> None

(** A journaled record: the job result plus its identity in the batch. *)
type job_record = {
  r_index : int;
  r_path : string;
  r_result : job_result;
  r_attempts : int;  (** executions, 0 for a cache hit *)
  r_cache : string;  (** ["hit" | "miss" | "off"] *)
}

let record_json ~timings r =
  let res =
    if timings then r.r_result else { r.r_result with b_wall_us = 0 }
  in
  match job_result_json res with
  | K.Json.Obj fields ->
      K.Json.Obj
        ([ ("job", K.Json.Int r.r_index);
           ("path", K.Json.Str r.r_path);
           ("attempts", K.Json.Int r.r_attempts);
           ("cache", K.Json.Str r.r_cache);
         ]
        @ fields)
  | _ -> assert false

let record_of_json rj =
  match
    (K.Json.member "job" rj, K.Json.member "path" rj, job_result_of_json rj)
  with
  | Some (K.Json.Int r_index), Some (K.Json.Str r_path), Some r_result ->
      let r_attempts =
        match K.Json.member "attempts" rj with
        | Some (K.Json.Int n) -> n
        | _ -> 1
      in
      let r_cache =
        match K.Json.member "cache" rj with
        | Some (K.Json.Str s) -> s
        | _ -> "off"
      in
      Some { r_index; r_path; r_result; r_attempts; r_cache }
  | _ -> None

(** Parse a journal, skipping unparseable lines (a SIGKILL mid-append
    leaves a torn last line; skipping it merely re-runs that job — replay
    is idempotent). *)
let read_journal path =
  match C.Io.read_file path with
  | Error _ -> []
  | Ok contents ->
      List.filter_map
        (fun line ->
          if String.trim line = "" then None
          else
            match K.Json.of_string line with
            | exception K.Json.Parse_error _ -> None
            | j -> (
                match
                  (K.Json.member "schema_version" j, K.Json.member "record" j)
                with
                | Some (K.Json.Int v), Some rj when v = batch_schema_version ->
                    record_of_json rj
                | _ -> None))
        (String.split_on_char '\n' contents)

(** One in-process job execution.  The facade's guard means every failure
    — unreadable file, compile error, bad root, internal exception —
    comes back as a typed error, never an escape. *)
let execute_job ~config ~mode ~roots path =
  let t0 = Unix.gettimeofday () in
  let wall_us () =
    int_of_float (Float.max 0.0 (Unix.gettimeofday () -. t0) *. 1e6)
  in
  match Api.analyze ~config ~mode ~source:(`File path) ~roots () with
  | Ok s ->
      let degraded = s.Api.metrics.C.Metrics.degraded in
      {
        b_status = (if degraded then "degraded" else "ok");
        b_exit = 0;
        b_error_kind = None;
        b_detail = None;
        b_reachable = Some s.Api.metrics.C.Metrics.reachable_methods;
        b_wall_us = wall_us ();
      }
  | Error e ->
      {
        b_status = "failed";
        b_exit = Api.exit_code_of_error e;
        b_error_kind = Some (Api.error_kind e);
        b_detail = Some (Api.error_message e);
        b_reachable = None;
        b_wall_us = wall_us ();
      }

(** Set (to the signal number) by the batch SIGINT/SIGTERM handlers; the
    driver polls it between jobs and inside the watchdog wait loop so an
    interrupt lands at a clean point: the in-flight worker is SIGKILLed,
    its temp files are swept, the journal is flushed, and the process
    exits with the conventional 128+signal code.  A re-run with
    [--resume] picks up exactly where the journal stops. *)
let batch_interrupted : int option ref = ref None

exception Batch_interrupted

(** Run one job in a forked child under a wall-clock watchdog.  The
    child's only channel back is the result file; a worker that dies (or
    is killed by the watchdog) yields a synthesized failure record. *)
let execute_isolated ~timeout_per_job run =
  let result_file = Filename.temp_file "skipflow-job" ".json" in
  let t0 = Unix.gettimeofday () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (* a terminal Ctrl-C signals the whole foreground process group:
         the worker must die by default, not run the driver's handler *)
      Sys.set_signal Sys.sigint Sys.Signal_default;
      Sys.set_signal Sys.sigterm Sys.Signal_default;
      (try
         let r = run () in
         (* atomic tmp + rename via the IO layer: the parent either sees
            the whole result or the empty pre-created file, never a torn
            write *)
         ignore
           (C.Io.write_file_atomic ~path:result_file
              (K.Json.to_compact_string (job_result_json r)))
       with _ -> ());
      (* _exit, not exit: the child inherited the parent's at_exit
         handlers and buffered channels, and must not flush or run them *)
      Unix._exit 0
  | pid ->
      let rec wait () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ when !batch_interrupted <> None ->
            Unix.kill pid Sys.sigkill;
            ignore (Unix.waitpid [] pid);
            (try Sys.remove result_file with Sys_error _ -> ());
            (try Sys.remove (result_file ^ ".tmp") with Sys_error _ -> ());
            raise Batch_interrupted
        | 0, _ -> (
            (* elapsed-vs-limit, with the delta clamped at zero: a
               backwards clock step must neither kill the job early nor
               produce a negative elapsed time *)
            match timeout_per_job with
            | Some limit
              when Float.max 0.0 (Unix.gettimeofday () -. t0) > limit ->
                Unix.kill pid Sys.sigkill;
                ignore (Unix.waitpid [] pid);
                `Timeout
            | _ ->
                Unix.sleepf 0.002;
                wait ())
        | _, Unix.WEXITED 0 -> `Exited
        | _, (Unix.WEXITED _ | Unix.WSIGNALED _ | Unix.WSTOPPED _) -> `Crashed
      in
      let verdict = wait () in
      let wall_us =
        int_of_float (Float.max 0.0 (Unix.gettimeofday () -. t0) *. 1e6)
      in
      let failure kind detail =
        {
          b_status = "failed";
          b_exit = exit_analysis_error;
          b_error_kind = Some kind;
          b_detail = Some detail;
          b_reachable = None;
          b_wall_us = wall_us;
        }
      in
      let r =
        match verdict with
        | `Timeout ->
            failure "timeout"
              "job exceeded --timeout-per-job and was killed"
        | `Exited | `Crashed -> (
            match C.Io.read_file result_file with
            | Error _ ->
                failure "crash" "worker died without reporting a result"
            | Ok "" -> failure "crash" "worker died without reporting a result"
            | Ok contents -> (
                match K.Json.of_string contents with
                | exception K.Json.Parse_error _ ->
                    failure "crash" "worker wrote a torn result"
                | j -> (
                    match job_result_of_json j with
                    | Some r -> r
                    | None -> failure "crash" "worker wrote a malformed result")))
      in
      (try Sys.remove result_file with Sys_error _ -> ());
      (* a watchdog-killed worker can leave its tmp file behind *)
      (try Sys.remove (result_file ^ ".tmp") with Sys_error _ -> ());
      r

(** A manifest is a directory (all [*.mj] inside, sorted) or a file of
    paths — one per line, [#] comments, resolved relative to the
    manifest's directory. *)
let load_manifest path =
  if Sys.is_directory path then begin
    let names = Sys.readdir path in
    Array.sort compare names;
    Array.to_list names
    |> List.filter (fun n -> Filename.check_suffix n ".mj")
    |> List.map (Filename.concat path)
  end
  else
    F.Frontend.read_file path
    |> String.split_on_char '\n'
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    |> List.map (fun l ->
           if Filename.is_relative l then
             Filename.concat (Filename.dirname path) l
           else l)

let batch_cmd =
  let run manifest config roots mode max_tasks timeout max_flows allow_degraded
      timeout_per_job retries cache_dir journal resume quarantine no_isolate
      no_timings solver_jobs out =
    let timings = not no_timings in
    let config =
      { config with C.Config.budget = budget_of ~max_tasks ~timeout ~max_flows }
    in
    (* [--solver-jobs] overrides [--jobs]; either way the value rides in
       the config into each forked worker *)
    let config =
      match solver_jobs with
      | Some n -> { config with C.Config.jobs = max 1 n }
      | None -> config
    in
    if resume && journal = None then begin
      Format.eprintf "error: --resume needs --journal@.";
      exit exit_input_error
    end;
    let jobs =
      try load_manifest manifest
      with Sys_error message ->
        Format.eprintf "error: cannot read manifest %s: %s@." manifest message;
        exit exit_input_error
    in
    let completed = Hashtbl.create 16 in
    if resume then
      Option.iter
        (fun jp ->
          List.iter
            (fun r -> Hashtbl.replace completed (r.r_index, r.r_path) r)
            (read_journal jp))
        journal;
    (* the journal goes through the durable-IO appender: one write(2)
       per record (SIGKILL tears at most the last line), fsync per line
       under --durability fsync *)
    let journal_ap =
      Option.map
        (fun jp ->
          match C.Io.open_append jp with
          | Ok ap -> ap
          | Error e ->
              Format.eprintf "error: cannot open journal: %s@."
                (C.Io.error_message e);
              exit exit_input_error)
        journal
    in
    let trace = C.Trace.create () in
    let cache = Option.map (fun d -> C.Cache.create ~trace d) cache_dir in
    (* job results depend on the roots and engine mode, which Config.t
       does not carry — fold them into the key so a cache dir reused
       across batches with different --root / --engine never serves one
       run's results to the other *)
    let cache_scope =
      Printf.sprintf "roots=%s;mode=%s"
        (String.concat "," roots)
        (match mode with C.Engine.Dedup -> "dedup" | C.Engine.Reference -> "ref")
    in
    let cache_lookup path =
      match cache with
      | None -> (None, None)
      | Some c -> (
          match C.Io.read_file path with
          | Error _ -> (None, None)
          | Ok source ->
              let k = C.Cache.key ~config ~scope:cache_scope ~source in
              (Some k, C.Cache.find c k))
    in
    let run_fresh i path =
      let cache_key, cached = cache_lookup path in
      let cached_result =
        match cached with
        | None -> None
        | Some v -> (
            match K.Json.of_string v with
            | exception K.Json.Parse_error _ -> None
            | j -> job_result_of_json j)
      in
      match cached_result with
      | Some res ->
          {
            r_index = i;
            r_path = path;
            (* a hit costs a lookup, not a solve; don't report the
               original compute time as this run's *)
            r_result = { res with b_wall_us = 0 };
            r_attempts = 0;
            r_cache = "hit";
          }
      | None ->
          let run_once () =
            if no_isolate then execute_job ~config ~mode ~roots path
            else
              execute_isolated ~timeout_per_job (fun () ->
                  execute_job ~config ~mode ~roots path)
          in
          let rec attempt n =
            let res = run_once () in
            if res.b_error_kind = Some "io_error" && n < retries then begin
              (* transient I/O: back off exponentially, then retry *)
              Unix.sleepf (0.05 *. (2. ** float_of_int n));
              attempt (n + 1)
            end
            else (res, n + 1)
          in
          let res, attempts = attempt 0 in
          (match (cache, cache_key, res.b_status) with
          | Some c, Some k, ("ok" | "degraded") ->
              (* best-effort: a failed store must not fail the job *)
              ignore
                (C.Cache.store c k
                   (K.Json.to_compact_string (job_result_json res)))
          | _ -> ());
          let res =
            match (quarantine, res.b_error_kind) with
            | Some qdir, Some ("crash" | "timeout" | "internal_error" | "io_error")
              -> (
                mkdir_p qdir;
                let dst =
                  Filename.concat qdir
                    (Printf.sprintf "%d-%s" i (Filename.basename path))
                in
                match C.Io.read_file path with
                | Error _ -> res
                | Ok contents -> (
                    match C.Io.write_file_atomic ~path:dst contents with
                    | Ok () -> { res with b_status = "quarantined" }
                    | Error _ -> res))
            | _ -> res
          in
          {
            r_index = i;
            r_path = path;
            r_result = res;
            r_attempts = attempts;
            r_cache = (if cache = None then "off" else "miss");
          }
    in
    (* from here on an interrupt must leave a resumable journal, not a
       half-written mess: note the signal, let the driver reach a clean
       point, then flush and exit 128+signal *)
    batch_interrupted := None;
    let note s = Sys.Signal_handle (fun _ -> batch_interrupted := Some s) in
    Sys.set_signal Sys.sigint (note Sys.sigint);
    Sys.set_signal Sys.sigterm (note Sys.sigterm);
    let on_interrupt () =
      Option.iter C.Io.close_append journal_ap;
      let signal_name, code =
        if !batch_interrupted = Some Sys.sigterm then ("SIGTERM", 143)
        else ("SIGINT", 130)
      in
      Format.eprintf
        "batch: interrupted (%s); journal flushed — re-run with --resume to \
         continue@."
        signal_name;
      exit code
    in
    let records =
      try
        List.mapi
          (fun i path ->
            if !batch_interrupted <> None then raise Batch_interrupted;
            match Hashtbl.find_opt completed (i, path) with
            | Some r -> r (* journaled by the interrupted run; don't redo *)
            | None ->
                let r = run_fresh i path in
              (* journal before moving on: a crash between jobs loses at
                 most the in-flight one *)
                Option.iter
                  (fun ap ->
                    match
                      C.Io.append_line ap
                        (K.Json.to_compact_string
                           (K.Json.Obj
                              [ ( "schema_version",
                                  K.Json.Int batch_schema_version );
                                ("record", record_json ~timings r);
                              ]))
                    with
                    | Ok () -> ()
                    | Error e ->
                        Format.eprintf
                          "warning: journal append failed: %s@."
                          (C.Io.error_message e))
                  journal_ap;
                r)
          jobs
      with Batch_interrupted -> on_interrupt ()
    in
    if !batch_interrupted <> None then on_interrupt ();
    Option.iter C.Io.close_append journal_ap;
    let count st =
      List.length
        (List.filter (fun r -> r.r_result.b_status = st) records)
    in
    let cache_hits =
      List.length (List.filter (fun r -> r.r_cache = "hit") records)
    in
    let summary =
      K.Json.Obj
        [ ("schema_version", K.Json.Int batch_schema_version);
          ("manifest", K.Json.Str (Filename.basename manifest));
          ("jobs", K.Json.Int (List.length records));
          ("ok", K.Json.Int (count "ok"));
          ("degraded", K.Json.Int (count "degraded"));
          ("failed", K.Json.Int (count "failed"));
          ("quarantined", K.Json.Int (count "quarantined"));
          ("cache_hits", K.Json.Int cache_hits);
          ("records", K.Json.Arr (List.map (record_json ~timings) records));
        ]
    in
    (match out with
    | Some path -> (
        match C.Io.write_file_atomic ~path (K.Json.to_string summary) with
        | Ok () -> ()
        | Error e ->
            Format.eprintf "error: cannot write summary: %s@."
              (C.Io.error_message e);
            exit exit_input_error)
    | None -> print_string (K.Json.to_string summary));
    Format.eprintf
      "batch: %d job(s) — %d ok, %d degraded, %d failed, %d quarantined, %d \
       cache hit(s)@."
      (List.length records) (count "ok") (count "degraded") (count "failed")
      (count "quarantined") cache_hits;
    let has code =
      List.exists (fun r -> r.r_result.b_exit = code) records
    in
    if has exit_analysis_error then exit exit_analysis_error
    else if has exit_input_error then exit exit_input_error
    else if count "degraded" > 0 && not allow_degraded then exit exit_degraded
  in
  let manifest_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"MANIFEST"
          ~doc:
            "A manifest file (one .mj path per line, # comments, paths \
             relative to the manifest) or a directory of .mj files")
  in
  let timeout_per_job_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-per-job" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock watchdog per job; a job past it is SIGKILLed and \
             recorded as failed (isolated mode only)")
  in
  let retries_arg =
    Arg.(
      value
      & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry a job whose failure is a transient I/O error up to N \
             times, with exponential backoff")
  in
  let cache_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Cache successful job results in $(docv), keyed by a content \
             hash of source + configuration + roots + engine; corrupt \
             entries are quarantined and recomputed")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"OUT.jsonl"
          ~doc:
            "Append one JSON record per completed job to $(docv) \
             (crash-tolerant; consumed by --resume)")
  in
  let resume_arg =
    Arg.(
      value
      & flag
      & info [ "resume" ]
          ~doc:
            "Skip jobs already recorded in the journal (from an \
             interrupted run) and re-use their records")
  in
  let quarantine_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "quarantine" ] ~docv:"DIR"
          ~doc:
            "Copy the input of every crashed, timed-out, or \
             internally-failing job into $(docv) for later triage")
  in
  let no_isolate_arg =
    Arg.(
      value
      & flag
      & info [ "no-isolate" ]
          ~doc:
            "Run jobs in-process instead of forked workers (faster; no \
             crash containment or per-job watchdog)")
  in
  let no_timings_arg =
    Arg.(
      value
      & flag
      & info [ "no-timings" ]
          ~doc:
            "Zero all wall_us fields, making summaries byte-comparable \
             across runs")
  in
  let solver_jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "solver-jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the fixed-point solve $(i,inside) each \
             job's worker process (overrides $(b,--jobs)).  Batch has \
             two distinct parallelism levels: the driver forks one \
             isolated worker process per manifest job (crash \
             containment, per-job watchdog; jobs still run one at a \
             time), and within a worker the solver can shard the PVPG \
             across N domains.  This flag sets only the inner, \
             per-solve level; it never changes results (the result \
             cache deliberately ignores it)")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "summary" ] ~docv:"OUT.json"
          ~doc:"Write the batch summary to $(docv) instead of stdout")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Analyze a manifest of MiniJava programs with per-job fault \
          isolation, watchdogs, retries, result caching, and a \
          resumable journal")
    Term.(
      const run $ manifest_arg $ analysis_arg $ roots_arg $ engine_arg
      $ max_tasks_arg $ timeout_arg $ max_flows_arg $ allow_degraded_arg
      $ timeout_per_job_arg $ retries_arg $ cache_arg $ journal_arg
      $ resume_arg $ quarantine_arg $ no_isolate_arg $ no_timings_arg
      $ solver_jobs_arg $ out_arg)

(* -------------------------------- serve ------------------------------- *)

(* The analysis daemon: the state machine lives in [Skipflow_serve.Server];
   this is only the transport — a select-based line pump over stdin/stdout
   or a Unix domain socket, with prompt SIGINT/SIGTERM handling (the
   handlers set a flag; the pump polls it between 250ms select windows, so
   a signal never tears a response or skips the final snapshot). *)

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off len =
    if len > 0 then
      match Unix.write fd b off len with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      | n -> go (off + n) (len - n)
  in
  go 0 (Bytes.length b)

(** Pump request lines from [in_fd] through the daemon until EOF, a
    served shutdown request, or a signal ([quit]). *)
let serve_fd srv ~quit ~in_fd ~out_fd =
  let buf = Bytes.create 65536 in
  let acc = Buffer.create 256 in
  let respond line = List.iter (write_all out_fd) (S.Server.handle_line srv line) in
  let drain_complete_lines () =
    let s = Buffer.contents acc in
    let n = String.length s in
    let rec go start =
      if start >= n then Buffer.clear acc
      else
        match String.index_from_opt s start '\n' with
        | None ->
            Buffer.clear acc;
            Buffer.add_substring acc s start (n - start)
        | Some i ->
            respond (String.sub s start (i - start));
            go (i + 1)
    in
    go 0
  in
  let rec loop () =
    if !quit <> None || S.Server.wants_shutdown srv then ()
    else
      match Unix.select [ in_fd ] [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> loop ()
      | _ -> (
          match Unix.read in_fd buf 0 (Bytes.length buf) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | 0 ->
              (* EOF; a final unterminated line still deserves an answer *)
              let rest = Buffer.contents acc in
              Buffer.clear acc;
              if String.trim rest <> "" then respond rest
          | n ->
              Buffer.add_subbytes acc buf 0 n;
              drain_complete_lines ();
              loop ())
  in
  try loop ()
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
    (* the client vanished mid-response; the daemon outlives it *)
    ()

let serve_socket srv ~quit path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  let rec accept_loop () =
    if !quit <> None || S.Server.wants_shutdown srv then ()
    else
      match Unix.select [ sock ] [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | [], _, _ -> accept_loop ()
      | _ ->
          let client, _ = Unix.accept sock in
          serve_fd srv ~quit ~in_fd:client ~out_fd:client;
          (try Unix.close client with Unix.Unix_error _ -> ());
          accept_loop ()
  in
  accept_loop ();
  (try Unix.close sock with Unix.Unix_error _ -> ());
  try Unix.unlink path with Unix.Unix_error _ -> ()

(** The supervisor: fork the server, wait, and restart it when it dies
    abnormally.  Clean exits (0), signal-driven shutdowns the child
    itself chose (130/143), and input errors (2) pass through — only
    crashes (any other exit, or death by signal: SIGKILL, SIGSEGV, the
    OOM killer) consume the restart budget.  Backoff doubles from 100ms
    up to 5s; a child that survives {!supervise_healthy_s} earns the
    budget and backoff back.  Restarted children always resume, so the
    snapshot + journal machinery turns a kill storm into warm restarts. *)
let supervise_healthy_s = 30.0

let supervise ~max_restarts ~log serve_child =
  let child = ref (-1) in
  let forward sg =
    Sys.Signal_handle
      (fun _ -> if !child > 0 then try Unix.kill !child sg with Unix.Unix_error _ -> ())
  in
  Sys.set_signal Sys.sigint (forward Sys.sigint);
  Sys.set_signal Sys.sigterm (forward Sys.sigterm);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let rec loop ~restarts ~used =
    flush stdout;
    flush stderr;
    let born = Unix.gettimeofday () in
    (match Unix.fork () with
    | 0 ->
        (* the child is a fresh server: default signal disposition back
           (serve installs its own), then never returns *)
        Sys.set_signal Sys.sigint Sys.Signal_default;
        Sys.set_signal Sys.sigterm Sys.Signal_default;
        serve_child ~restarts;
        exit 0
    | pid -> child := pid);
    let rec wait () =
      match Unix.waitpid [] !child with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      | _, status -> status
    in
    let status = wait () in
    child := -1;
    let lived = Float.max 0.0 (Unix.gettimeofday () -. born) in
    let used = if lived >= supervise_healthy_s then 0 else used in
    match status with
    | Unix.WEXITED ((0 | 130 | 143 | 2) as code) -> exit code
    | Unix.WEXITED _ | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
        let describe =
          match status with
          | Unix.WEXITED c -> Printf.sprintf "exited %d" c
          | Unix.WSIGNALED sg -> Printf.sprintf "killed by signal %d" sg
          | Unix.WSTOPPED sg -> Printf.sprintf "stopped by signal %d" sg
        in
        if used >= max_restarts then begin
          log
            (Printf.sprintf
               "server %s; restart budget (%d) exhausted, giving up" describe
               max_restarts);
          exit exit_analysis_error
        end
        else begin
          let backoff = Float.min 5.0 (0.1 *. (2. ** float_of_int used)) in
          log
            (Printf.sprintf "server %s; restarting in %.1fs (%d/%d used)"
               describe backoff (used + 1) max_restarts);
          Unix.sleepf backoff;
          loop ~restarts:(restarts + 1) ~used:(used + 1)
        end
  in
  loop ~restarts:0 ~used:0

let serve_cmd =
  let run file config roots mode max_tasks timeout max_flows state resume
      socket deadline_ms max_queue retry_after_ms snapshot_every memo_entries
      no_timings max_heap_mb supervise_flag max_restarts =
    let config =
      { config with C.Config.budget = budget_of ~max_tasks ~timeout ~max_flows }
    in
    let serve_once ~resume ~restarts =
      let cfg =
        {
          S.Server.sv_config = config;
          sv_mode = mode;
          sv_roots = roots;
          sv_state_dir = state;
          sv_snapshot_every = snapshot_every;
          sv_deadline_ms = deadline_ms;
          sv_max_queue = max_queue;
          sv_retry_after_ms = retry_after_ms;
          sv_memo_entries = memo_entries;
          sv_timings = not no_timings;
          sv_max_heap_mb = max_heap_mb;
          sv_restarts = restarts;
          sv_log = (fun msg -> Format.eprintf "serve: %s@." msg);
        }
      in
      let initial = Option.map (fun f -> `File f) file in
      match S.Server.create ?initial ~resume cfg with
      | Error msg ->
          Format.eprintf "error: %s@." msg;
          exit exit_input_error
      | Ok srv ->
          let quit = ref None in
          let note code = Sys.Signal_handle (fun _ -> quit := Some code) in
          Sys.set_signal Sys.sigint (note 130);
          Sys.set_signal Sys.sigterm (note 143);
          (* a client that hangs up must cost a response, not the daemon *)
          Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
          (match socket with
          | Some path -> serve_socket srv ~quit path
          | None -> serve_fd srv ~quit ~in_fd:Unix.stdin ~out_fd:Unix.stdout);
          S.Server.finalize srv;
          match !quit with Some code -> exit code | None -> ()
    in
    if not supervise_flag then serve_once ~resume ~restarts:0
    else
      supervise ~max_restarts
        ~log:(fun msg -> Format.eprintf "supervise: %s@." msg)
        (fun ~restarts ->
          (* a restarted child must warm-start or the kill would have
             cost the resident state; the first child honors --resume *)
          serve_once ~resume:(resume || restarts > 0) ~restarts)
  in
  let file_opt =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE.mj"
          ~doc:
            "Initial MiniJava program to load and solve before serving \
             (optional; an $(i,edit) request can load one later)")
  in
  let state_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "state" ] ~docv:"DIR"
          ~doc:
            "State directory: atomic snapshots of the resident solved \
             state plus a response journal, enabling --resume after a \
             crash or kill")
  in
  let resume_arg =
    Arg.(
      value
      & flag
      & info [ "resume" ]
          ~doc:
            "Warm-start from the --state snapshot and re-emit journaled \
             responses byte for byte when their requests arrive again")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Serve on a Unix domain socket (one client at a time) instead \
             of stdin/stdout")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request deadline; a request past it gets a \
             structured deadline_exceeded error and the resident state \
             rolls back (requests can override with their own \
             $(i,deadline_ms) field)")
  in
  let max_queue_arg =
    Arg.(
      value
      & opt int S.Server.default_cfg.S.Server.sv_max_queue
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Bounded request queue capacity; past it requests are shed \
             with an overloaded error carrying a retry_after_ms hint")
  in
  let retry_after_arg =
    Arg.(
      value
      & opt int S.Server.default_cfg.S.Server.sv_retry_after_ms
      & info [ "retry-after-ms" ] ~docv:"MS"
          ~doc:"The hint carried by shed (overloaded) responses")
  in
  let snapshot_every_arg =
    Arg.(
      value
      & opt int S.Server.default_cfg.S.Server.sv_snapshot_every
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:"Snapshot the resident state every N mutations (default 1)")
  in
  let memo_entries_arg =
    Arg.(
      value
      & opt int S.Server.default_cfg.S.Server.sv_memo_entries
      & info [ "memo-entries" ] ~docv:"N"
          ~doc:
            "Capacity of the in-memory memo of previously solved states \
             (content-hash keyed; makes edit-and-revert cycles hits)")
  in
  let no_timings_arg =
    Arg.(
      value
      & flag
      & info [ "no-timings" ]
          ~doc:
            "Zero all wall_us fields and drop wall-clock counters, making \
             responses byte-comparable across runs")
  in
  let max_heap_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-heap-mb" ] ~docv:"MB"
          ~doc:
            "Memory ceiling: past it the daemon degrades gracefully — \
             drops the memo and buffered trace events, compacts the \
             heap, and if still over sheds mutating requests with a \
             retry_after_ms hint (health and shutdown always answer) — \
             instead of meeting the OOM killer")
  in
  let supervise_arg =
    Arg.(
      value
      & flag
      & info [ "supervise" ]
          ~doc:
            "Fork the server and restart it when it crashes (exponential \
             backoff from 100ms to 5s, budget of --max-restarts; clean \
             exits and signal-driven shutdowns pass through).  Restarted \
             servers warm-start from --state, so a crash costs at most \
             the in-flight request")
  in
  let max_restarts_arg =
    Arg.(
      value
      & opt int 5
      & info [ "max-restarts" ] ~docv:"N"
          ~doc:
            "Supervisor restart budget; earned back by a server that \
             stays up 30s.  Surfaced as restarts in health responses")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the crash-tolerant incremental analysis daemon: JSONL \
          requests (analyze, lint, profile, edit, health, shutdown) over \
          stdin/stdout or a Unix socket, with a resident solved program, \
          incremental re-analysis on edit, per-request deadlines, \
          overload shedding, snapshot/journal recovery, an optional \
          supervisor, and a graceful memory ceiling")
    Term.(
      const run $ file_opt $ analysis_arg $ roots_arg $ engine_arg
      $ max_tasks_arg $ timeout_arg $ max_flows_arg $ state_arg $ resume_arg
      $ socket_arg $ deadline_arg $ max_queue_arg $ retry_after_arg
      $ snapshot_every_arg $ memo_entries_arg $ no_timings_arg $ max_heap_arg
      $ supervise_arg $ max_restarts_arg)

(* --------------------------------- gen -------------------------------- *)

let gen_cmd =
  let run bench seed out =
    let params =
      match bench with
      | Some name -> (
          match W.Suites.find name with
          | Some b -> W.Suites.params_of b
          | None ->
              Printf.eprintf "unknown benchmark %s (see bench-list)\n" name;
              exit exit_input_error)
      | None -> { W.Gen.default_params with seed }
    in
    let src = W.Gen.source params in
    match out with
    | Some path ->
        let oc = open_out path in
        output_string oc src;
        close_out oc;
        Printf.printf "wrote %s\n" path
    | None -> print_string src
  in
  let bench = Arg.(value & opt (some string) None & info [ "bench" ] ~doc:"Generate a named Table 1 benchmark") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Seed for the default generator") in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file") in
  Cmd.v
    (Cmd.info "gen" ~doc:"Emit a synthetic benchmark program as MiniJava source")
    Term.(const run $ bench $ seed $ out)

(* ------------------------------- profile ------------------------------ *)

(** Validate a trace document previously written by [--trace] /
    [--trace-jsonl]: parses it with the integer-only JSON reader and
    checks the schema version.  Returns a short description, or an error
    message. *)
let validate_trace_file path =
  let contents = F.Frontend.read_file path in
  let check_doc j =
    match K.Json.check_schema_version j with
    | Error msg -> Error msg
    | Ok v -> Ok v
  in
  (* Chrome form: one object with a traceEvents array.  JSONL form: one
     document per line, schema version on the header line. *)
  match K.Json.of_string contents with
  | j -> (
      match check_doc j with
      | Error msg -> Error msg
      | Ok v -> (
          match K.Json.member "traceEvents" j with
          | Some (K.Json.Arr evs) ->
              Ok (Printf.sprintf "chrome trace (schema %d): %d trace events" v (List.length evs))
          | _ -> Error "chrome trace: missing traceEvents array"))
  | exception K.Json.Parse_error _ -> (
      (* not a single document — try JSON-lines *)
      let lines =
        List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' contents)
      in
      match lines with
      | [] -> Error "empty trace file"
      | header :: rest -> (
          match K.Json.of_string header with
          | exception K.Json.Parse_error msg -> Error ("bad header line: " ^ msg)
          | h -> (
              match check_doc h with
              | Error msg -> Error msg
              | Ok v -> (
                  try
                    List.iter (fun l -> ignore (K.Json.of_string l)) rest;
                    Ok
                      (Printf.sprintf "jsonl trace (schema %d): %d lines" v
                         (1 + List.length rest))
                  with K.Json.Parse_error msg -> Error ("bad trace line: " ^ msg)))))

let profile_cmd =
  let run file config roots top mode from_trace =
    match from_trace with
    | Some path -> (
        match validate_trace_file path with
        | Ok desc -> Format.printf "%s: valid %s@." path desc
        | Error msg ->
            Format.eprintf "error: %s: %s@." path msg;
            exit exit_input_error)
    | None -> (
        match file with
        | None ->
            prerr_endline "error: profile needs FILE.mj (or --from-trace)";
            exit exit_input_error
        | Some file ->
            let trace = C.Trace.create ~timers:true ~events:true () in
            let prog = load_program ~trace file in
            let roots = roots_of prog roots in
            let s = ok_or_fail (Api.analyze_program ~config ~mode ~trace prog ~roots) in
            let name_of id = Program.qualified_name prog (Ids.Meth.of_int id) in
            Format.printf "analysis: %s (%d reachable methods)@.@."
              (C.Config.name config)
              s.Api.metrics.C.Metrics.reachable_methods;
            Format.printf "%a@.%a@." C.Trace.pp_phases trace C.Trace.pp_counters trace;
            (* per-shard utilization of the parallel pre-pass (the
               ["par.*"] counters exist only when --jobs > 1 actually
               sharded the solve) *)
            (let cs = C.Trace.counters trace in
             let v name = Option.value ~default:0 (List.assoc_opt name cs) in
             let shards = v "par.shards" in
             if shards > 0 then begin
               Format.printf
                 "@.parallel shards (%d domains over %d call-graph regions):@."
                 shards (v "par.regions");
               Format.printf "  %5s %10s %8s %9s %9s %7s %9s@." "shard"
                 "weight" "tasks" "sent" "recv" "q_hwm" "idle_us";
               for i = 0 to shards - 1 do
                 let sv name = v (Printf.sprintf "par.shard%d.%s" i name) in
                 Format.printf "  %5d %10d %8d %9d %9d %7d %9d@." i
                   (sv "weight") (sv "tasks") (sv "msgs_sent")
                   (sv "msgs_recv") (sv "queue_hwm") (sv "idle_us")
               done
             end);
            let take n l = List.filteri (fun i _ -> i < n) l in
            Format.printf "@.event kinds:@.";
            List.iter
              (fun (kind, n) -> Format.printf "  %-12s %8d@." kind n)
              (C.Trace.by_kind trace);
            Format.printf "@.hot methods (top %d by solver events):@." top;
            List.iter
              (fun (id, n) -> Format.printf "  %-40s %8d@." (name_of id) n)
              (take top (C.Trace.by_meth trace));
            Format.printf "@.hot flows (top %d by solver events):@." top;
            List.iter
              (fun (id, n) -> Format.printf "  flow %-8d %8d@." id n)
              (take top (C.Trace.by_flow trace));
            if C.Trace.dropped_events trace > 0 then
              Format.printf "@.(%d events dropped past the buffer cap)@."
                (C.Trace.dropped_events trace))
  in
  let file_opt =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.mj" ~doc:"MiniJava source file (omit with --from-trace)")
  in
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"How many hot methods/flows to list")
  in
  let from_trace_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "from-trace" ] ~docv:"TRACE"
          ~doc:"Validate and summarize a previously written trace file (Chrome or JSONL) instead of running an analysis")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run a fully traced analysis and print phase timings, counters, and top-N hot methods/flows")
    Term.(
      const run $ file_opt $ analysis_arg $ roots_arg $ top_arg $ engine_arg
      $ from_trace_arg)

let bench_list_cmd =
  let run () =
    List.iter
      (fun (b : W.Suites.bench) ->
        Printf.printf "%-12s %-22s paper: %6.1fk methods, -%4.1f%%\n" b.W.Suites.suite
          b.W.Suites.name b.W.Suites.paper_pta_kmethods b.W.Suites.paper_reduction_pct)
      W.Suites.all
  in
  Cmd.v (Cmd.info "bench-list" ~doc:"List the Table 1 benchmark catalog") Term.(const run $ const ())

let () =
  let info = Cmd.info "skipflow" ~version:"1.0.0" ~doc:"SkipFlow predicated points-to analysis (CGO 2025 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group info
          [ analyze_cmd; batch_cmd; compare_cmd; deadcode_cmd; lint_cmd;
            profile_cmd; run_cmd; serve_cmd; fuzz_cmd; gen_cmd;
            bench_list_cmd ]))
