(** Randomized robustness harness for the whole analysis pipeline.

    For every seed, generate a well-typed random program
    ({!Skipflow_workloads.Gen_random}), execute it in the concrete
    interpreter, and then analyze it under every configuration
    (skipflow / pta / preds-only / prims-only) crossed with
    {FIFO, random worklist order} × {unlimited, deliberately tiny budget}.
    Every run must satisfy, with no exception escaping:

    - the final state passes the independent certifier ({!C.Verify.run}),
      degraded or not;
    - every method the interpreter actually executed is in the reachable
      set (the differential soundness oracle);
    - with the same config, a random worklist order reaches exactly the
      FIFO fixed point, and a budget-degraded run reaches a {e superset}
      of it (degradation may only lose precision, never soundness).

    Used by [skipflow fuzz] and by the [t_fuzz] suite; a {!failure} record
    carries the seed so any finding replays deterministically. *)

open Skipflow_ir
module C = Skipflow_core
module W = Skipflow_workloads
module I = Skipflow_interp.Interp
module K = Skipflow_checks

type failure = {
  f_seed : int;
  f_config : string;  (** configuration name, or ["-"] for pre-analysis stages *)
  f_case : string;  (** which run of the matrix, e.g. ["random+budget"] *)
  f_detail : string;
}

type report = {
  r_seeds : int;
  r_runs : int;  (** engine runs performed *)
  r_degraded : int;  (** runs that tripped their budget and degraded *)
  r_lint_checked : int;
      (** lint facts (dead blocks / dead methods) checked against
          interpreter traces by the lint soundness oracle *)
  r_prim_checked : int;
      (** concrete primitive values from interpreter traces checked for
          containment in the defining flow's final value state (the
          interval/constant soundness oracle) *)
  r_crash_checked : int;
      (** crash-injection probes: corrupted snapshot / cache files that
          had to come back as reported errors with a sound fallback *)
  r_serve_checked : int;
      (** daemon probes: abandoned (kill -9-equivalent) serve sessions
          resumed and replayed byte-identically, truncated / garbage
          request lines answered with structured errors, corrupt serve
          snapshots recovered by cold start, and every final resident
          fixed point certified flow-by-flow against a fresh solve *)
  r_chaos_checked : int;
      (** crash-point-matrix probes: one per fault plan exercised —
          forked children killed before each IO operation of each
          durable-write site (engine snapshot, cache store, serve
          journal + snapshot), plus seeded EIO / ENOSPC / EINTR /
          short-write / torn-rename plans run in process — every one of
          which had to recover to old bytes, new bytes, or a detected
          miss, never a torn read, never an escaping exception *)
  r_failures : failure list;
}

let pp_failure ppf f =
  Format.fprintf ppf "seed %d / %s / %s: %s" f.f_seed f.f_config f.f_case f.f_detail

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>fuzz: %d seeds, %d runs (%d degraded), %d lint facts, %d prim \
     values, %d crash probes, %d daemon probes, %d chaos plans, %d failure%s"
    r.r_seeds r.r_runs r.r_degraded r.r_lint_checked r.r_prim_checked
    r.r_crash_checked r.r_serve_checked r.r_chaos_checked
    (List.length r.r_failures)
    (if List.length r.r_failures = 1 then "" else "s");
  List.iter (fun f -> Format.fprintf ppf "@,  %a" pp_failure f) r.r_failures;
  Format.fprintf ppf "@]"

(** Same seed-to-shape mapping as the property-test suite, so a failing
    seed reported by either harness replays in the other. *)
let cfg_of_seed seed =
  {
    W.Gen_random.seed;
    classes = 3 + (seed mod 7);
    meths_per_class = 1 + (seed mod 3);
    max_stmts = 4 + (seed mod 5);
  }

let configs =
  [
    ("skipflow", C.Config.skipflow);
    ("skipflow-product", { C.Config.skipflow with C.Config.pval = C.Pval.Product });
    ("pta", C.Config.pta);
    ("preds-only", C.Config.predicates_only);
    ("prims-only", C.Config.primitives_only);
  ]

let reachable_set (r : C.Analysis.result) =
  List.fold_left
    (fun acc (m : Program.meth) -> Ids.Meth.Set.add m.Program.m_id acc)
    Ids.Meth.Set.empty
    (C.Engine.reachable_methods r.C.Analysis.engine)

(** How a run's reachable set must relate to the reference (the FIFO,
    unlimited-budget fixed point of the same configuration). *)
type expect = Exact | Superset

let fuzz_seed ?(jobs = 1) seed =
  let failures = ref [] in
  let runs = ref 0 and degraded = ref 0 and lint_checked = ref 0 in
  let prim_checked = ref 0 in
  let fail ~config ~case fmt =
    Format.kasprintf
      (fun f_detail ->
        failures := { f_seed = seed; f_config = config; f_case = case; f_detail } :: !failures)
      fmt
  in
  (match W.Gen_random.compile (cfg_of_seed seed) with
  | exception e ->
      fail ~config:"-" ~case:"generate" "exception escaped the generator/frontend: %s"
        (Printexc.to_string e)
  | prog, main ->
      let trace =
        match I.run ~fuel:20_000 prog main with
        | trace, I.Interp_error msg ->
            fail ~config:"-" ~case:"interp" "internal interpreter error: %s" msg;
            trace
        | trace, _ -> trace
        | exception e ->
            fail ~config:"-" ~case:"interp" "exception escaped the interpreter: %s"
              (Printexc.to_string e);
            {
              I.called = Ids.Meth.Set.empty;
              created = Ids.Class.Set.empty;
              defs = [];
              visited = Ids.Meth.Map.empty;
              steps = 0;
            }
      in
      List.iter
        (fun (cname, base_cfg) ->
          (* [jobs] rides into every case: the FIFO ones exercise the
             sharded parallel solve (including budget trips mid-pre-pass),
             the random-order ones fall back to the sequential drain by
             design *)
          let base_cfg = { base_cfg with C.Config.jobs } in
          let tiny = { base_cfg with C.Config.budget = C.Budget.tiny } in
          let cases =
            [
              ("fifo", base_cfg, None, Exact);
              ("random", base_cfg, Some ((seed * 31) + 1), Exact);
              ("fifo+budget", tiny, None, Superset);
              ("random+budget", tiny, Some ((seed * 31) + 1), Superset);
            ]
          in
          let reference = ref None in
          List.iter
            (fun (case, config, random_order, expect) ->
              incr runs;
              match C.Analysis.run ~config ?random_order prog ~roots:[ main ] with
              | exception e ->
                  fail ~config:cname ~case "exception escaped the engine: %s"
                    (Printexc.to_string e)
              | r ->
                  if C.Engine.is_degraded r.C.Analysis.engine then incr degraded;
                  (match C.Verify.run r.C.Analysis.engine with
                  | [] -> ()
                  | v :: _ as vs ->
                      fail ~config:cname ~case "%d certifier violation%s (first: %s)"
                        (List.length vs)
                        (if List.length vs = 1 then "" else "s")
                        v);
                  let reach = reachable_set r in
                  Ids.Meth.Set.iter
                    (fun m ->
                      if not (Ids.Meth.Set.mem m reach) then
                        fail ~config:cname ~case "executed method %s is not reachable"
                          (Program.qualified_name prog m))
                    trace.I.called;
                  (match (!reference, expect) with
                  | None, _ -> reference := Some reach
                  | Some r0, Exact ->
                      if not (Ids.Meth.Set.equal reach r0) then
                        fail ~config:cname ~case
                          "fixed point depends on worklist order (%d vs %d reachable)"
                          (Ids.Meth.Set.cardinal reach)
                          (Ids.Meth.Set.cardinal r0)
                  | Some r0, Superset ->
                      if not (Ids.Meth.Set.subset r0 reach) then
                        fail ~config:cname ~case
                          "degraded reachable set is not a superset (%d vs %d reachable)"
                          (Ids.Meth.Set.cardinal reach)
                          (Ids.Meth.Set.cardinal r0));
                  (* primitive-value soundness oracle: every concrete int
                     the interpreter observed must be contained in the
                     defining flow's final value state — this is what
                     keeps the interval × constant reduced product
                     honest, and degradation may only widen states, so
                     every case of the matrix is fair game *)
                  List.iter
                    (fun (m, var, v) ->
                      match v with
                      | I.VInt n -> (
                          incr prim_checked;
                          match C.Engine.graph_of r.C.Analysis.engine m with
                          | None ->
                              fail ~config:cname ~case
                                "prim: %s defined a value but is unreachable"
                                (Program.qualified_name prog m)
                          | Some g -> (
                              match g.C.Graph.g_defs.(Ids.Var.to_int var) with
                              | Some flow ->
                                  if
                                    not
                                      (flow.C.Flow.enabled
                                      && C.Vstate.leq (C.Vstate.const n)
                                           flow.C.Flow.state)
                                  then
                                    fail ~config:cname ~case
                                      "prim: observed value %d escapes its \
                                       flow's state in %s"
                                      n
                                      (Program.qualified_name prog m)
                              | None -> ()))
                      | _ -> ())
                    trace.I.defs;
                  (* lint soundness oracle: anything the checks prove dead
                     at this fixed point must be absent from the concrete
                     trace (degradation only shrinks the dead sets, so
                     every case of the matrix is fair game) *)
                  let ctx =
                    K.Checks.make_ctx ~engine:r.C.Analysis.engine
                      ~roots:[ main ]
                  in
                  List.iter
                    (fun (m, b) ->
                      incr lint_checked;
                      if I.visited_block trace m b then
                        fail ~config:cname ~case
                          "lint: dead block b%d of %s was executed"
                          (Ids.Block.to_int b)
                          (Program.qualified_name prog m))
                    (K.Checks.dead_blocks ctx);
                  List.iter
                    (fun m ->
                      incr lint_checked;
                      if Ids.Meth.Set.mem m trace.I.called then
                        fail ~config:cname ~case
                          "lint: dead method %s was executed"
                          (Program.qualified_name prog m))
                    (K.Checks.dead_methods ctx))
            cases)
        configs);
  (List.rev !failures, !runs, !degraded, !lint_checked, !prim_checked)

(* --------------------------- crash injection -------------------------- *)

(* Corrupt persisted state — a paused-solver snapshot and a result-cache
   entry — in every seed-varied way, and demand the robustness contract:
   a damaged file is a typed, reported error (never an escaping
   exception), the fallback full solve reaches the straight run's fixed
   point, and a damaged cache entry is quarantined and recomputed. *)

(* corpus IO rides the durable-IO layer like every other persistence
   path; errors surface as [Sys_error] to keep the probes' exception
   accounting unchanged *)
let read_bytes path =
  match C.Io.read_file path with
  | Ok s -> s
  | Error e -> raise (Sys_error (C.Io.error_message e))

let write_bytes path s =
  match C.Io.write_file_atomic ~path s with
  | Ok () -> ()
  | Error e -> raise (Sys_error (C.Io.error_message e))

(** The mutation schedule for a file of [len] bytes: truncations at the
    start, a third, and two thirds, plus seed-derived single-bit flips in
    the header, the middle, and the tail. *)
let mutations ~seed ~len intact =
  let truncate keep =
    (Printf.sprintf "truncate@%d" keep, String.sub intact 0 keep)
  in
  let flip pos =
    let pos = max 0 (min (len - 1) pos) in
    let b = Bytes.of_string intact in
    let bit = 1 lsl (seed mod 8) in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor bit));
    (Printf.sprintf "bitflip@%d" pos, Bytes.to_string b)
  in
  [
    truncate 0;
    truncate (min 5 len);
    truncate (len / 3);
    truncate (2 * len / 3);
    flip (seed mod 8);
    flip ((len / 2) + (seed mod 7));
    flip (len - 1 - (seed mod 3));
  ]

let crash_seed seed =
  let failures = ref [] in
  let checked = ref 0 in
  let fail ~case fmt =
    Format.kasprintf
      (fun f_detail ->
        failures :=
          { f_seed = seed; f_config = "skipflow"; f_case = case; f_detail }
          :: !failures)
      fmt
  in
  (match W.Gen_random.compile (cfg_of_seed seed) with
  | exception e ->
      fail ~case:"crash:generate" "exception escaped the generator: %s"
        (Printexc.to_string e)
  | prog, main -> (
      let straight = C.Analysis.run prog ~roots:[ main ] in
      let oracle =
        C.Engine.reachable_count straight.C.Analysis.engine
      in
      (* --- snapshot corruption --- *)
      let small =
        {
          C.Config.skipflow with
          C.Config.budget = C.Budget.make ~max_tasks:25 ();
        }
      in
      let paused =
        C.Analysis.run ~config:small ~on_budget:`Pause prog ~roots:[ main ]
      in
      (match paused.C.Analysis.outcome with
      | C.Engine.Completed -> () (* too small to pause; nothing to corrupt *)
      | C.Engine.Paused _ ->
          let path = Filename.temp_file "skipflow-crash" ".snap" in
          Fun.protect
            ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
            (fun () ->
              (match
                 C.Engine.save_snapshot paused.C.Analysis.engine ~path
               with
              | Ok () -> ()
              | Error e ->
                  fail ~case:"crash:save" "snapshot write failed: %s"
                    (C.Snapshot.error_message e));
              let intact = read_bytes path in
              (* the intact snapshot must load and resume to the oracle *)
              incr checked;
              (match
                 C.Engine.load_snapshot ~budget:C.Budget.unlimited path
               with
              | Ok engine ->
                  ignore (C.Engine.run engine);
                  if C.Engine.reachable_count engine <> oracle then
                    fail ~case:"crash:resume"
                      "resumed run reached %d methods, straight run %d"
                      (C.Engine.reachable_count engine)
                      oracle
              | Error e ->
                  fail ~case:"crash:resume" "intact snapshot refused: %s"
                    (C.Snapshot.error_message e)
              | exception e ->
                  fail ~case:"crash:resume" "exception on intact load: %s"
                    (Printexc.to_string e));
              (* every mutation must be a typed error + sound fallback *)
              List.iter
                (fun (mname, damaged) ->
                  incr checked;
                  write_bytes path damaged;
                  match C.Engine.load_snapshot path with
                  | Ok _ ->
                      (* a flipped bit the CRC caught anyway is the only
                         acceptable Ok: it must decode to a resumable
                         engine — but CRC-32 catches all single-bit
                         flips, so reaching here is a contract breach *)
                      fail ~case:("crash:" ^ mname)
                        "damaged snapshot loaded as if intact"
                  | Error _ -> (
                      (* reported, not raised: now the caller's fallback
                         — a full solve — must still reach the oracle *)
                      let fallback = C.Analysis.run prog ~roots:[ main ] in
                      if
                        C.Engine.reachable_count fallback.C.Analysis.engine
                        <> oracle
                      then
                        fail ~case:("crash:" ^ mname)
                          "fallback solve diverged from the oracle"
                      else
                        match fallback.C.Analysis.outcome with
                        | C.Engine.Completed -> ()
                        | C.Engine.Paused _ ->
                            fail ~case:("crash:" ^ mname)
                              "unlimited fallback paused")
                  | exception e ->
                      fail ~case:("crash:" ^ mname)
                        "exception escaped the snapshot loader: %s"
                        (Printexc.to_string e))
                (mutations ~seed ~len:(String.length intact) intact);
              (* a stale schema version must be rejected as such *)
              incr checked;
              (match
                 C.Snapshot.write ~path ~kind:C.Engine.snapshot_kind
                   ~version:(C.Engine.snapshot_version + 1)
                   (C.Engine.snapshot_bytes paused.C.Analysis.engine)
               with
              | Ok () -> (
                  match C.Engine.load_snapshot path with
                  | Error (C.Snapshot.Bad_version _) -> ()
                  | Error e ->
                      fail ~case:"crash:stale-version"
                        "expected Bad_version, got %s"
                        (C.Snapshot.error_message e)
                  | Ok _ ->
                      fail ~case:"crash:stale-version"
                        "future-versioned snapshot loaded"
                  | exception e ->
                      fail ~case:"crash:stale-version" "exception: %s"
                        (Printexc.to_string e))
              | Error e ->
                  fail ~case:"crash:stale-version" "re-write failed: %s"
                    (C.Snapshot.error_message e))));
      (* --- cache-entry corruption --- *)
      let dir = Filename.temp_file "skipflow-crash" ".cache" in
      Sys.remove dir;
      let trace = C.Trace.create () in
      let cache = C.Cache.create ~trace dir in
      let k = C.Cache.key ~config:C.Config.skipflow ~scope:"" ~source:(string_of_int seed) in
      match C.Cache.store cache k "cached-summary" with
      | Error e ->
          fail ~case:"crash:cache-store" "store failed: %s"
            (C.Snapshot.error_message e)
      | Ok () ->
          let entry = C.Cache.entry_path cache k in
          let intact = read_bytes entry in
          List.iter
            (fun (mname, damaged) ->
              incr checked;
              (* restore a fresh entry, then damage it *)
              (match C.Cache.store cache k "cached-summary" with
              | Ok () -> ()
              | Error _ -> ());
              write_bytes entry damaged;
              match C.Cache.find cache k with
              | Some _ ->
                  fail ~case:("crash:cache-" ^ mname)
                    "damaged cache entry served"
              | None -> ()
              | exception e ->
                  fail ~case:("crash:cache-" ^ mname)
                    "exception escaped the cache: %s" (Printexc.to_string e))
            (mutations ~seed ~len:(String.length intact) intact);
          (* damaged entries were quarantined, and the slot recomputes *)
          incr checked;
          (match Sys.readdir (C.Cache.quarantine_dir cache) with
          | [||] ->
              fail ~case:"crash:cache-quarantine"
                "no damaged entry was quarantined"
          | _ -> ()
          | exception Sys_error m ->
              fail ~case:"crash:cache-quarantine" "quarantine unreadable: %s" m);
          (match C.Cache.store cache k "recomputed" with
          | Ok () ->
              if C.Cache.find cache k <> Some "recomputed" then
                fail ~case:"crash:cache-recompute"
                  "recomputed entry does not serve"
          | Error e ->
              fail ~case:"crash:cache-recompute" "re-store failed: %s"
                (C.Snapshot.error_message e));
          (* best-effort cleanup of the temp cache tree *)
          let rec rm p =
            if Sys.file_exists p then
              if Sys.is_directory p then begin
                Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
                try Unix.rmdir p with Unix.Unix_error _ -> ()
              end
              else try Sys.remove p with Sys_error _ -> ()
          in
          rm dir));
  (List.rev !failures, !checked)

(* ---------------------------- daemon mode ----------------------------- *)

(* Fuzz the serve daemon the way production kills it: abandon sessions
   without shutdown (the in-process equivalent of kill -9 — snapshots and
   journal are on disk, the process state is gone), resume them, and
   demand byte-identical responses for the replayed prefix plus a final
   resident fixed point flow-identical to a fresh solve; feed truncated
   and garbage request lines and demand structured errors with the daemon
   still serving; corrupt the serve snapshot in seed-varied ways and
   demand a logged cold start, never an escape. *)

module Sv = Skipflow_serve.Server
module Incr = Skipflow_serve.Incremental

let rec rm_tree p =
  if Sys.file_exists p then
    if Sys.is_directory p then begin
      Array.iter (fun n -> rm_tree (Filename.concat p n)) (Sys.readdir p);
      try Unix.rmdir p with Unix.Unix_error _ -> ()
    end
    else try Sys.remove p with Sys_error _ -> ()

let temp_state_dir () =
  let p = Filename.temp_file "skipflow-fuzz-serve" ".state" in
  Sys.remove p;
  p

let req fields = K.Json.to_compact_string (K.Json.Obj fields)

let edit_req id source =
  req
    [ ("op", K.Json.Str "edit"); ("id", K.Json.Int id);
      ("source", K.Json.Str source);
    ]

let serve_cfg dir =
  { Sv.default_cfg with Sv.sv_state_dir = dir; sv_log = (fun _ -> ()) }

let serve_seed seed =
  let failures = ref [] in
  let checked = ref 0 in
  let fail ~case fmt =
    Format.kasprintf
      (fun f_detail ->
        failures :=
          { f_seed = seed; f_config = "skipflow"; f_case = case; f_detail }
          :: !failures)
      fmt
  in
  let probe () = incr checked in
  (* the edit corpus: two random programs plus a revert, so the session
     exercises full solves, the memo, and the resident fast path *)
  let src_of cfg = Skipflow_frontend.Ast_pp.to_string (W.Gen_random.generate cfg) in
  match
    ( src_of (cfg_of_seed seed),
      src_of { (cfg_of_seed (seed + 1)) with W.Gen_random.seed = seed + 1001 } )
  with
  | exception e ->
      fail ~case:"serve:generate" "exception escaped the generator: %s"
        (Printexc.to_string e);
      (List.rev !failures, !checked)
  | base, alt ->
      let lines =
        [ edit_req 1 base;
          req [ ("op", K.Json.Str "health"); ("id", K.Json.Int 2) ];
          edit_req 3 alt;
          req [ ("op", K.Json.Str "analyze"); ("id", K.Json.Int 4) ];
          edit_req 5 base;
          req [ ("op", K.Json.Str "analyze"); ("id", K.Json.Int 6) ];
        ]
      in
      let run_session ~resume dir ls =
        match Sv.create ~resume (serve_cfg dir) with
        | Error msg -> Error msg
        | Ok srv -> Ok (srv, List.concat_map (Sv.handle_line srv) ls)
      in
      let take n l = List.filteri (fun i _ -> i < n) l in
      (* the straight session: no interruption, no state dir *)
      (match run_session ~resume:false None lines with
      | exception e ->
          fail ~case:"serve:straight" "exception escaped the daemon: %s"
            (Printexc.to_string e)
      | Error msg -> fail ~case:"serve:straight" "create failed: %s" msg
      | Ok (straight_srv, straight_out) -> (
          probe ();
          (* kill after a seed-varied prefix, resume, re-feed everything *)
          let dir = temp_state_dir () in
          let k = 1 + (seed mod List.length lines) in
          (match run_session ~resume:false (Some dir) (take k lines) with
          | exception e ->
              fail ~case:"serve:prefix" "exception escaped the daemon: %s"
                (Printexc.to_string e)
          | Error msg -> fail ~case:"serve:prefix" "create failed: %s" msg
          | Ok (_abandoned, _) -> (
              (* no finalize, no shutdown: the session is simply gone *)
              match run_session ~resume:true (Some dir) lines with
              | exception e ->
                  fail ~case:"serve:resume" "exception escaped the resumed daemon: %s"
                    (Printexc.to_string e)
              | Error msg -> fail ~case:"serve:resume" "create failed: %s" msg
              | Ok (resumed_srv, resumed_out) ->
                  probe ();
                  if resumed_out <> straight_out then
                    fail ~case:"serve:resume"
                      "killed-after-%d/resumed responses differ from the \
                       straight session's"
                      k
                  else probe ();
                  (match (Sv.state resumed_srv, Sv.state straight_srv) with
                  | Some a, Some b -> (
                      match
                        Incr.same_fixed_point a.Incr.engine b.Incr.engine
                      with
                      | Ok () -> probe ()
                      | Error msg ->
                          fail ~case:"serve:resume"
                            "resumed resident fixed point diverged: %s" msg)
                  | _ ->
                      fail ~case:"serve:resume"
                        "a session ended without a resident state")));
          (* torn and garbage request lines: structured errors, daemon
             lives on and still answers *)
          (match Sv.create ~resume:false (serve_cfg None) with
          | Error msg -> fail ~case:"serve:garbage" "create failed: %s" msg
          | Ok srv ->
              let torn =
                String.sub (edit_req 1 base)
                  0
                  (1 + (seed mod String.length (edit_req 1 base)))
              in
              List.iter
                (fun line ->
                  match Sv.handle_line srv line with
                  | exception e ->
                      fail ~case:"serve:garbage"
                        "exception escaped on %S: %s" line
                        (Printexc.to_string e)
                  | [ resp ] -> (
                      match K.Json.of_string resp with
                      | exception K.Json.Parse_error m ->
                          fail ~case:"serve:garbage"
                            "unparseable response to %S: %s" line m
                      | j -> (
                          match K.Json.member "ok" j with
                          | Some (K.Json.Bool false) -> probe ()
                          | _ ->
                              fail ~case:"serve:garbage"
                                "garbage line %S was not answered with a \
                                 structured error"
                                line))
                  | _ -> fail ~case:"serve:garbage" "no response to %S" line)
                [ torn; "{\"op\":"; "not json at all"; "{\"op\":\"frobnicate\"}" ];
              (* and a valid request afterwards must still be served *)
              (match Sv.handle_line srv (edit_req 9 base) with
              | exception e ->
                  fail ~case:"serve:garbage"
                    "daemon died after garbage input: %s" (Printexc.to_string e)
              | [] -> fail ~case:"serve:garbage" "no response after garbage"
              | _ -> probe ()));
          (* corrupt serve snapshots: every mutation must come back as a
             cold start (or an intact-prefix recovery), never an escape,
             and the daemon must re-solve to the straight fixed point *)
          let dir2 = temp_state_dir () in
          (match run_session ~resume:false (Some dir2) [ edit_req 1 base ] with
          | Error msg -> fail ~case:"serve:corrupt" "create failed: %s" msg
          | Ok (srv, _) -> (
              Sv.finalize srv;
              let snap = Filename.concat dir2 "serve.snap" in
              (* drop the journal: this probe is about snapshot damage,
                 not replay *)
              (try Sys.remove (Filename.concat dir2 "journal.jsonl")
               with Sys_error _ -> ());
              match read_bytes snap with
              | exception Sys_error m ->
                  fail ~case:"serve:corrupt" "snapshot unreadable: %s" m
              | intact ->
                  List.iter
                    (fun (mname, damaged) ->
                      write_bytes snap damaged;
                      match Sv.create ~resume:true (serve_cfg (Some dir2)) with
                      | exception e ->
                          fail ~case:("serve:" ^ mname)
                            "exception escaped the resume: %s"
                            (Printexc.to_string e)
                      | Error msg ->
                          fail ~case:("serve:" ^ mname)
                            "damaged snapshot refused instead of cold start: \
                             %s"
                            msg
                      | Ok srv -> (
                          match Sv.handle_line srv (edit_req 1 base) with
                          | exception e ->
                              fail ~case:("serve:" ^ mname)
                                "exception escaped the recovered daemon: %s"
                                (Printexc.to_string e)
                          | _ -> (
                              match (Sv.state srv, Sv.state straight_srv) with
                              | Some a, Some b ->
                                  (* straight_srv's last edit was [base]
                                     too, so the fixed points must agree *)
                                  (match
                                     Incr.same_fixed_point a.Incr.engine
                                       b.Incr.engine
                                   with
                                  | Ok () -> probe ()
                                  | Error msg ->
                                      fail ~case:("serve:" ^ mname)
                                        "recovered fixed point diverged: %s"
                                        msg)
                              | _ ->
                                  fail ~case:("serve:" ^ mname)
                                    "recovered daemon has no resident state")))
                    (mutations ~seed ~len:(String.length intact) intact)));
          rm_tree dir;
          rm_tree dir2));
      (List.rev !failures, !checked)

(* ------------------------- crash-point matrix -------------------------- *)

(* The syscall-level counterpart of the corruption probes above: instead
   of damaging bytes after the fact, enumerate every IO operation a
   durable-write site performs (via a counting {!C.Io.plan}), then for
   each operation index [k] fork a child, let the fault plan [_exit] it
   at point [k] — the faithful kill -9, no cleanup, no at_exit — and
   demand recovery in the parent:

   - the engine-snapshot site: the file holds the old bytes or the new
     bytes, never a mixture, and always loads and resumes to the
     straight run's fixed point;
   - the cache site: a lookup serves the old value, the new value, or a
     miss — never a torn entry, never an exception;
   - the serve site (journal + serve snapshot): a resumed daemon always
     comes up (replay or cold start), serves the full request stream,
     and lands on the same resident fixed point as an uninterrupted
     session.

   On top of the crash matrix, seeded fault plans (EIO / ENOSPC / EINTR
   / short writes / torn renames at rate 1-in-2) run each site in
   process and demand structured errors or clean absorption — never an
   escaping exception, never an undetected torn file.  The whole matrix
   runs at [D_fsync] so the fsync operations are enumerated too. *)

let chaos_fault_plans = 3

let chaos_seed seed =
  let failures = ref [] in
  let checked = ref 0 in
  let fail ~case fmt =
    Format.kasprintf
      (fun f_detail ->
        failures :=
          { f_seed = seed; f_config = "skipflow"; f_case = case; f_detail }
          :: !failures)
      fmt
  in
  (* one in-process run of [work] under a seeded fault plan: the only
     acceptable outcomes are a normal return (faults absorbed or
     reported) — anything escaping is a contract breach *)
  let fault_probe ~case ~plan_seed work =
    let plan = C.Io.plan ~rate:2 ~seed:plan_seed () in
    match C.Io.with_plan plan work with
    | _ -> ()
    | exception e ->
        fail ~case "exception escaped under injected faults: %s"
          (Printexc.to_string e)
  in
  let with_temp_dir f =
    let dir = Filename.temp_file "skipflow-chaos" ".d" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    Fun.protect ~finally:(fun () -> rm_tree dir) (fun () -> f dir)
  in
  (* count the IO operations one run of [work] performs, plan-governed *)
  let count_ops work =
    C.Io.with_plan
      (C.Io.plan ~seed ())
      (fun () ->
        work ();
        C.Io.ops_performed ())
  in
  let prev_durability = C.Io.durability () in
  C.Io.set_durability C.Io.D_fsync;
  Fun.protect ~finally:(fun () -> C.Io.set_durability prev_durability)
  @@ fun () ->
  (match W.Gen_random.compile (cfg_of_seed seed) with
  | exception e ->
      fail ~case:"chaos:generate" "exception escaped the generator: %s"
        (Printexc.to_string e)
  | prog, main ->
      let straight = C.Analysis.run prog ~roots:[ main ] in
      let oracle = C.Engine.reachable_count straight.C.Analysis.engine in
      (* --- site 1: the engine snapshot ------------------------------- *)
      with_temp_dir (fun dir ->
          let path = Filename.concat dir "engine.snap" in
          let small =
            {
              C.Config.skipflow with
              C.Config.budget = C.Budget.make ~max_tasks:25 ();
            }
          in
          let paused =
            C.Analysis.run ~config:small ~on_budget:`Pause prog ~roots:[ main ]
          in
          match paused.C.Analysis.outcome with
          | C.Engine.Completed -> () (* too small to pause; nothing to kill *)
          | C.Engine.Paused _ -> (
              let engine = paused.C.Analysis.engine in
              let save () = ignore (C.Engine.save_snapshot engine ~path) in
              (* the pre-state: a complete snapshot already on disk *)
              save ();
              match read_bytes path with
              | exception Sys_error m ->
                  fail ~case:"chaos:snap" "cannot establish pre-state: %s" m
              | old_bytes ->
                  let total = count_ops save in
                  if total = 0 then
                    fail ~case:"chaos:snap"
                      "snapshot write ticked no IO operations";
                  (* recovering (load + resume) mints flow ids through
                     the global counter, which the next snapshot
                     captures — so the expected "new" bytes must be
                     recomputed right before each run, while parent and
                     child still share the exact same state *)
                  let expected_new () =
                    save ();
                    let b = read_bytes path in
                    write_bytes path old_bytes;
                    b
                  in
                  let check_recovered ~case ~new_bytes k =
                    match read_bytes path with
                    | exception Sys_error m ->
                        fail ~case "snapshot missing after op %d: %s" k m
                    | b -> (
                        match
                          C.Engine.load_snapshot ~budget:C.Budget.unlimited
                            path
                        with
                        | Ok eng ->
                            if
                              not
                                (String.equal b old_bytes
                                || String.equal b new_bytes)
                            then
                              fail ~case "op %d left a mixed snapshot" k
                            else begin
                              ignore (C.Engine.run eng);
                              if C.Engine.reachable_count eng <> oracle then
                                fail ~case
                                  "op %d: recovered resume reached %d \
                                   methods, straight run %d"
                                  k
                                  (C.Engine.reachable_count eng)
                                  oracle
                            end
                        | Error _ ->
                            (* detected damage (e.g. a torn rename's CRC
                               trip) is a clean recovery: the caller
                               falls back to a full solve, which
                               [crash_seed] already certifies *)
                            ()
                        | exception e ->
                            fail ~case
                              "op %d: exception escaped the loader: %s" k
                              (Printexc.to_string e))
                  in
                  for k = 0 to total - 1 do
                    incr checked;
                    let new_bytes = expected_new () in
                    C.Io.fork_crashing
                      ~plan:(C.Io.plan ~crash_at:k ~seed ())
                      save;
                    check_recovered ~case:"chaos:snap-crash" ~new_bytes k
                  done;
                  for i = 0 to chaos_fault_plans - 1 do
                    incr checked;
                    let new_bytes = expected_new () in
                    fault_probe ~case:"chaos:snap-fault"
                      ~plan_seed:((seed * 97) + i)
                      save;
                    check_recovered ~case:"chaos:snap-fault" ~new_bytes i
                  done));
      (* --- site 2: a cache store ------------------------------------- *)
      with_temp_dir (fun dir ->
          let trace = C.Trace.create () in
          let cache = C.Cache.create ~trace dir in
          let key =
            C.Cache.key ~config:C.Config.skipflow ~scope:""
              ~source:(string_of_int seed)
          in
          let reset () = ignore (C.Cache.store cache key "v-old") in
          let store_new () = ignore (C.Cache.store cache key "v-new") in
          reset ();
          let total = count_ops store_new in
          if total = 0 then
            fail ~case:"chaos:cache" "cache store ticked no IO operations";
          let check_recovered ~case k =
            (* a fresh open sweeps crashed writers' droppings, exactly
               what the next process would do *)
            let reopened = C.Cache.create ~trace dir in
            match C.Cache.find reopened key with
            | Some ("v-old" | "v-new") | None -> ()
            | Some other ->
                fail ~case "op %d served a torn entry %S" k other
            | exception e ->
                fail ~case "op %d: exception escaped the lookup: %s" k
                  (Printexc.to_string e)
          in
          for k = 0 to total - 1 do
            incr checked;
            reset ();
            C.Io.fork_crashing ~plan:(C.Io.plan ~crash_at:k ~seed ()) store_new;
            check_recovered ~case:"chaos:cache-crash" k
          done;
          for i = 0 to chaos_fault_plans - 1 do
            incr checked;
            reset ();
            fault_probe ~case:"chaos:cache-fault"
              ~plan_seed:((seed * 89) + i)
              store_new;
            check_recovered ~case:"chaos:cache-fault" i
          done);
      (* --- site 3: a serve session (journal + serve snapshot) --------- *)
      with_temp_dir (fun dir ->
          let src_of cfg =
            Skipflow_frontend.Ast_pp.to_string (W.Gen_random.generate cfg)
          in
          match
            ( src_of (cfg_of_seed seed),
              src_of
                { (cfg_of_seed (seed + 1)) with W.Gen_random.seed = seed + 1001 }
            )
          with
          | exception e ->
              fail ~case:"chaos:serve" "exception escaped the generator: %s"
                (Printexc.to_string e)
          | base, alt -> (
              let lines =
                [ edit_req 1 base;
                  req [ ("op", K.Json.Str "health"); ("id", K.Json.Int 2) ];
                  edit_req 3 alt;
                ]
              in
              let session ~resume dir lines =
                match Sv.create ~resume (serve_cfg dir) with
                | Error msg -> Error msg
                | Ok srv ->
                    List.iter (fun l -> ignore (Sv.handle_line srv l)) lines;
                    Sv.finalize srv;
                    Ok srv
              in
              let work () =
                ignore (session ~resume:true (Some dir) lines)
              in
              (* the uninterrupted session's resident fixed point is the
                 oracle every recovery must land on *)
              match session ~resume:false None lines with
              | exception e ->
                  fail ~case:"chaos:serve" "exception escaped the daemon: %s"
                    (Printexc.to_string e)
              | Error msg -> fail ~case:"chaos:serve" "create failed: %s" msg
              | Ok straight_srv ->
                  let reset () =
                    rm_tree dir;
                    Unix.mkdir dir 0o755
                  in
                  let total = count_ops work in
                  reset ();
                  if total = 0 then
                    fail ~case:"chaos:serve"
                      "serve session ticked no IO operations";
                  let check_recovered ~case k =
                    match session ~resume:true (Some dir) lines with
                    | exception e ->
                        fail ~case
                          "op %d: exception escaped the recovered daemon: %s"
                          k (Printexc.to_string e)
                    | Error msg -> fail ~case "op %d: recovery refused: %s" k msg
                    | Ok srv -> (
                        match (Sv.state srv, Sv.state straight_srv) with
                        | Some a, Some b -> (
                            match
                              Incr.same_fixed_point a.Incr.engine b.Incr.engine
                            with
                            | Ok () -> ()
                            | Error msg ->
                                fail ~case
                                  "op %d: recovered fixed point diverged: %s"
                                  k msg)
                        | _ ->
                            fail ~case
                              "op %d: recovered daemon has no resident state"
                              k)
                  in
                  for k = 0 to total - 1 do
                    incr checked;
                    reset ();
                    C.Io.fork_crashing
                      ~plan:(C.Io.plan ~crash_at:k ~seed ())
                      work;
                    check_recovered ~case:"chaos:serve-crash" k
                  done;
                  for i = 0 to chaos_fault_plans - 1 do
                    incr checked;
                    reset ();
                    fault_probe ~case:"chaos:serve-fault"
                      ~plan_seed:((seed * 83) + i)
                      work;
                    check_recovered ~case:"chaos:serve-fault" i
                  done)));
  (List.rev !failures, !checked)

(** [run ~seeds ()] fuzzes seeds [0 .. seeds-1]; [progress] is called
    after each seed (for CLI feedback).  [crash] additionally runs the
    crash-injection matrix (snapshot + cache corruption) on every seed.
    [chaos] additionally runs the syscall-level crash-point matrix
    ({!chaos_seed}: forked kills before every IO operation of every
    durable-write site, plus seeded fault plans).  [jobs] (default 1)
    runs every deterministic-order case of the matrix on the sharded
    parallel solver instead — same oracles, same expected fixed
    points. *)
let run ?(progress = fun _ -> ()) ?(crash = false) ?(chaos = false)
    ?(jobs = 1) ~seeds () : report =
  let failures = ref [] and runs = ref 0 and degraded = ref 0 in
  let lint_checked = ref 0 and crash_checked = ref 0 in
  let prim_checked = ref 0 in
  let serve_checked = ref 0 in
  let chaos_checked = ref 0 in
  for s = 0 to seeds - 1 do
    let fs, r, d, l, p = fuzz_seed ~jobs s in
    failures := List.rev_append fs !failures;
    runs := !runs + r;
    degraded := !degraded + d;
    lint_checked := !lint_checked + l;
    prim_checked := !prim_checked + p;
    if crash then begin
      let cfs, c = crash_seed s in
      failures := List.rev_append cfs !failures;
      crash_checked := !crash_checked + c;
      let sfs, sc = serve_seed s in
      failures := List.rev_append sfs !failures;
      serve_checked := !serve_checked + sc
    end;
    if chaos then begin
      let hfs, hc = chaos_seed s in
      failures := List.rev_append hfs !failures;
      chaos_checked := !chaos_checked + hc
    end;
    progress s
  done;
  {
    r_seeds = seeds;
    r_runs = !runs;
    r_degraded = !degraded;
    r_lint_checked = !lint_checked;
    r_prim_checked = !prim_checked;
    r_crash_checked = !crash_checked;
    r_serve_checked = !serve_checked;
    r_chaos_checked = !chaos_checked;
    r_failures = List.rev !failures;
  }
