(** Randomized robustness harness for the whole analysis pipeline.

    For every seed, generate a well-typed random program
    ({!Skipflow_workloads.Gen_random}), execute it in the concrete
    interpreter, and then analyze it under every configuration
    (skipflow / pta / preds-only / prims-only) crossed with
    {FIFO, random worklist order} × {unlimited, deliberately tiny budget}.
    Every run must satisfy, with no exception escaping:

    - the final state passes the independent certifier ({!C.Verify.run}),
      degraded or not;
    - every method the interpreter actually executed is in the reachable
      set (the differential soundness oracle);
    - with the same config, a random worklist order reaches exactly the
      FIFO fixed point, and a budget-degraded run reaches a {e superset}
      of it (degradation may only lose precision, never soundness).

    Used by [skipflow fuzz] and by the [t_fuzz] suite; a {!failure} record
    carries the seed so any finding replays deterministically. *)

open Skipflow_ir
module C = Skipflow_core
module W = Skipflow_workloads
module I = Skipflow_interp.Interp
module K = Skipflow_checks

type failure = {
  f_seed : int;
  f_config : string;  (** configuration name, or ["-"] for pre-analysis stages *)
  f_case : string;  (** which run of the matrix, e.g. ["random+budget"] *)
  f_detail : string;
}

type report = {
  r_seeds : int;
  r_runs : int;  (** engine runs performed *)
  r_degraded : int;  (** runs that tripped their budget and degraded *)
  r_lint_checked : int;
      (** lint facts (dead blocks / dead methods) checked against
          interpreter traces by the lint soundness oracle *)
  r_failures : failure list;
}

let pp_failure ppf f =
  Format.fprintf ppf "seed %d / %s / %s: %s" f.f_seed f.f_config f.f_case f.f_detail

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>fuzz: %d seeds, %d runs (%d degraded), %d lint facts, %d failure%s"
    r.r_seeds r.r_runs r.r_degraded r.r_lint_checked
    (List.length r.r_failures)
    (if List.length r.r_failures = 1 then "" else "s");
  List.iter (fun f -> Format.fprintf ppf "@,  %a" pp_failure f) r.r_failures;
  Format.fprintf ppf "@]"

(** Same seed-to-shape mapping as the property-test suite, so a failing
    seed reported by either harness replays in the other. *)
let cfg_of_seed seed =
  {
    W.Gen_random.seed;
    classes = 3 + (seed mod 7);
    meths_per_class = 1 + (seed mod 3);
    max_stmts = 4 + (seed mod 5);
  }

let configs =
  [
    ("skipflow", C.Config.skipflow);
    ("pta", C.Config.pta);
    ("preds-only", C.Config.predicates_only);
    ("prims-only", C.Config.primitives_only);
  ]

let reachable_set (r : C.Analysis.result) =
  List.fold_left
    (fun acc (m : Program.meth) -> Ids.Meth.Set.add m.Program.m_id acc)
    Ids.Meth.Set.empty
    (C.Engine.reachable_methods r.C.Analysis.engine)

(** How a run's reachable set must relate to the reference (the FIFO,
    unlimited-budget fixed point of the same configuration). *)
type expect = Exact | Superset

let fuzz_seed seed =
  let failures = ref [] in
  let runs = ref 0 and degraded = ref 0 and lint_checked = ref 0 in
  let fail ~config ~case fmt =
    Format.kasprintf
      (fun f_detail ->
        failures := { f_seed = seed; f_config = config; f_case = case; f_detail } :: !failures)
      fmt
  in
  (match W.Gen_random.compile (cfg_of_seed seed) with
  | exception e ->
      fail ~config:"-" ~case:"generate" "exception escaped the generator/frontend: %s"
        (Printexc.to_string e)
  | prog, main ->
      let trace =
        match I.run ~fuel:20_000 prog main with
        | trace, I.Interp_error msg ->
            fail ~config:"-" ~case:"interp" "internal interpreter error: %s" msg;
            trace
        | trace, _ -> trace
        | exception e ->
            fail ~config:"-" ~case:"interp" "exception escaped the interpreter: %s"
              (Printexc.to_string e);
            {
              I.called = Ids.Meth.Set.empty;
              created = Ids.Class.Set.empty;
              defs = [];
              visited = Ids.Meth.Map.empty;
              steps = 0;
            }
      in
      List.iter
        (fun (cname, base_cfg) ->
          let tiny = { base_cfg with C.Config.budget = C.Budget.tiny } in
          let cases =
            [
              ("fifo", base_cfg, None, Exact);
              ("random", base_cfg, Some ((seed * 31) + 1), Exact);
              ("fifo+budget", tiny, None, Superset);
              ("random+budget", tiny, Some ((seed * 31) + 1), Superset);
            ]
          in
          let reference = ref None in
          List.iter
            (fun (case, config, random_order, expect) ->
              incr runs;
              match C.Analysis.run ~config ?random_order prog ~roots:[ main ] with
              | exception e ->
                  fail ~config:cname ~case "exception escaped the engine: %s"
                    (Printexc.to_string e)
              | r ->
                  if C.Engine.is_degraded r.C.Analysis.engine then incr degraded;
                  (match C.Verify.run r.C.Analysis.engine with
                  | [] -> ()
                  | v :: _ as vs ->
                      fail ~config:cname ~case "%d certifier violation%s (first: %s)"
                        (List.length vs)
                        (if List.length vs = 1 then "" else "s")
                        v);
                  let reach = reachable_set r in
                  Ids.Meth.Set.iter
                    (fun m ->
                      if not (Ids.Meth.Set.mem m reach) then
                        fail ~config:cname ~case "executed method %s is not reachable"
                          (Program.qualified_name prog m))
                    trace.I.called;
                  (match (!reference, expect) with
                  | None, _ -> reference := Some reach
                  | Some r0, Exact ->
                      if not (Ids.Meth.Set.equal reach r0) then
                        fail ~config:cname ~case
                          "fixed point depends on worklist order (%d vs %d reachable)"
                          (Ids.Meth.Set.cardinal reach)
                          (Ids.Meth.Set.cardinal r0)
                  | Some r0, Superset ->
                      if not (Ids.Meth.Set.subset r0 reach) then
                        fail ~config:cname ~case
                          "degraded reachable set is not a superset (%d vs %d reachable)"
                          (Ids.Meth.Set.cardinal reach)
                          (Ids.Meth.Set.cardinal r0));
                  (* lint soundness oracle: anything the checks prove dead
                     at this fixed point must be absent from the concrete
                     trace (degradation only shrinks the dead sets, so
                     every case of the matrix is fair game) *)
                  let ctx =
                    K.Checks.make_ctx ~engine:r.C.Analysis.engine
                      ~roots:[ main ]
                  in
                  List.iter
                    (fun (m, b) ->
                      incr lint_checked;
                      if I.visited_block trace m b then
                        fail ~config:cname ~case
                          "lint: dead block b%d of %s was executed"
                          (Ids.Block.to_int b)
                          (Program.qualified_name prog m))
                    (K.Checks.dead_blocks ctx);
                  List.iter
                    (fun m ->
                      incr lint_checked;
                      if Ids.Meth.Set.mem m trace.I.called then
                        fail ~config:cname ~case
                          "lint: dead method %s was executed"
                          (Program.qualified_name prog m))
                    (K.Checks.dead_methods ctx))
            cases)
        configs);
  (List.rev !failures, !runs, !degraded, !lint_checked)

(** [run ~seeds ()] fuzzes seeds [0 .. seeds-1]; [progress] is called
    after each seed (for CLI feedback). *)
let run ?(progress = fun _ -> ()) ~seeds () : report =
  let failures = ref [] and runs = ref 0 and degraded = ref 0 in
  let lint_checked = ref 0 in
  for s = 0 to seeds - 1 do
    let fs, r, d, l = fuzz_seed s in
    failures := List.rev_append fs !failures;
    runs := !runs + r;
    degraded := !degraded + d;
    lint_checked := !lint_checked + l;
    progress s
  done;
  {
    r_seeds = seeds;
    r_runs = !runs;
    r_degraded = !degraded;
    r_lint_checked = !lint_checked;
    r_failures = List.rev !failures;
  }
