(** A fuel-bounded concrete interpreter for the base language.

    This substrate exists to test the analysis: the paper's soundness claim
    is that the computed value states conservatively over-approximate every
    runtime behaviour, and that every method executed at runtime is in the
    reachable set ℝ.  The property test suite runs generated programs here
    and checks both claims against the fixed point.

    Semantics notes (matching the analysis's assumptions):
    - no exceptions exist in MiniJava; a null dereference, division by
      zero, or fuel exhaustion {e halts} the run (the trace collected so
      far remains a valid witness);
    - fields are default-initialized ([null] / [0]) at allocation;
    - [==] on references is physical identity; [instanceof] is a dynamic
      subtype test on which [null] fails;
    - phi instructions are evaluated simultaneously on block entry. *)

open Skipflow_ir

type value = VInt of int | VNull | VObj of obj | VArr of arr
and obj = { o_cls : Ids.Class.t; o_fields : (int, value) Hashtbl.t }
and arr = { a_cls : Ids.Class.t; cells : value array }

(** Why a run stopped. *)
type halt =
  | Finished  (** the root method returned normally *)
  | Null_deref
  | Div_by_zero
  | Out_of_fuel
  | Index_oob  (** array index out of bounds, or negative array size *)
  | Class_cast  (** failed checkcast *)
  | Uncaught  (** an executed [throw] (MiniJava has no handlers) *)
  | Interp_error of string
      (** an internal invariant failed (ill-formed input program); the
          interpreter halts with a message instead of leaking an exception
          into its caller — fuzzing feeds it adversarial programs *)

(** Everything observed during a run, used by soundness checks. *)
type trace = {
  mutable called : Ids.Meth.Set.t;  (** every method whose body started *)
  mutable created : Ids.Class.Set.t;  (** every class instantiated *)
  mutable defs : (Ids.Meth.t * Ids.Var.t * value) list;
      (** every SSA variable definition observed (method, variable, value) *)
  mutable visited : Ids.Block.Set.t Ids.Meth.Map.t;
      (** every basic block entered, per method; the lint soundness oracle
          checks branches proved dead at the fixed point against this *)
  mutable steps : int;
}

let visited_block tr m b =
  match Ids.Meth.Map.find_opt m tr.visited with
  | Some bs -> Ids.Block.Set.mem b bs
  | None -> false

exception Halt of halt

type t = {
  prog : Program.t;
  trace : trace;
  statics : (int, value) Hashtbl.t;  (** static field storage, by field id *)
  mutable fuel : int;
  record_defs : bool;
}

let create ?(fuel = 100_000) ?(record_defs = true) prog =
  {
    prog;
    trace =
      {
        called = Ids.Meth.Set.empty;
        created = Ids.Class.Set.empty;
        defs = [];
        visited = Ids.Meth.Map.empty;
        steps = 0;
      };
    statics = Hashtbl.create 16;
    fuel;
    record_defs;
  }

let tick st =
  st.trace.steps <- st.trace.steps + 1;
  if st.fuel <= 0 then raise (Halt Out_of_fuel);
  st.fuel <- st.fuel - 1

let default_of (ty : Ty.t) =
  match ty with Ty.Int | Ty.Bool | Ty.Void -> VInt 0 | Ty.Obj _ | Ty.Null -> VNull

let obj_of = function
  | VObj o -> o
  | VNull -> raise (Halt Null_deref)
  | VInt _ | VArr _ -> invalid_arg "Interp: object expected"

let arr_of = function
  | VArr a -> a
  | VNull -> raise (Halt Null_deref)
  | VInt _ | VObj _ -> invalid_arg "Interp: array expected"

let int_of = function VInt n -> n | VNull | VObj _ | VArr _ -> invalid_arg "Interp: int expected"

type frame = {
  meth : Program.meth;
  body : Bl.body;
  regs : value array;  (** per SSA variable *)
}

let set_reg st fr (v : Ids.Var.t) value =
  fr.regs.(Ids.Var.to_int v) <- value;
  if st.record_defs then
    st.trace.defs <- (fr.meth.Program.m_id, v, value) :: st.trace.defs

let get_reg fr (v : Ids.Var.t) = fr.regs.(Ids.Var.to_int v)

let rec call st (m : Program.meth) (args : value list) : value =
  tick st;
  st.trace.called <- Ids.Meth.Set.add m.Program.m_id st.trace.called;
  let body =
    match m.Program.m_body with
    | Some b -> b
    | None -> invalid_arg ("Interp: method without body: " ^ m.Program.m_name)
  in
  let fr = { meth = m; body; regs = Array.make body.Bl.var_count VNull } in
  (try List.iter2 (fun p a -> set_reg st fr p a) body.Bl.params args
   with Invalid_argument _ -> invalid_arg "Interp: arity mismatch");
  exec_block st fr (Bl.block body body.Bl.entry) ~from:None

and exec_block st fr (blk : Bl.block) ~from : value =
  tick st;
  st.trace.visited <-
    Ids.Meth.Map.update fr.meth.Program.m_id
      (fun prev ->
        Some
          (Ids.Block.Set.add blk.Bl.b_id
             (Option.value prev ~default:Ids.Block.Set.empty)))
      st.trace.visited;
  (* simultaneous phi evaluation on entry from [from] *)
  (match from with
  | Some src ->
      let vals =
        List.map
          (fun (phi : Bl.phi) ->
            match List.assoc_opt src phi.Bl.phi_args with
            | Some arg -> Some (phi.Bl.phi_var, get_reg fr arg)
            | None -> None)
          blk.Bl.b_phis
      in
      List.iter
        (function Some (v, value) -> set_reg st fr v value | None -> ())
        vals
  | None -> ());
  List.iter (exec_insn st fr) blk.Bl.b_insns;
  match blk.Bl.b_term with
  | None -> invalid_arg "Interp: unterminated block"
  | Some (Bl.Return None) -> VInt 0
  | Some (Bl.Return (Some v)) -> get_reg fr v
  | Some (Bl.Jump t) ->
      exec_block st fr (Bl.block fr.body t) ~from:(Some blk.Bl.b_id)
  | Some (Bl.If { cond; then_; else_ }) ->
      let taken = if eval_cond st fr cond then then_ else else_ in
      exec_block st fr (Bl.block fr.body taken) ~from:(Some blk.Bl.b_id)
  | Some (Bl.Throw _) -> raise (Halt Uncaught)

and eval_cond st fr (c : Bl.cond) =
  tick st;
  match c with
  | Bl.Cmp (op, a, b) -> (
      match (get_reg fr a, get_reg fr b, op) with
      | VInt x, VInt y, `Eq -> x = y
      | VInt x, VInt y, `Lt -> x < y
      | VNull, VNull, `Eq -> true
      | VNull, (VObj _ | VArr _), `Eq | (VObj _ | VArr _), VNull, `Eq -> false
      | VObj o1, VObj o2, `Eq -> o1 == o2
      | VArr a1, VArr a2, `Eq -> a1 == a2
      | _, _, `Eq -> false
      | _, _, `Lt -> invalid_arg "Interp: '<' on non-integers")
  | Bl.InstanceOf (v, cls) -> (
      match get_reg fr v with
      | VObj o -> Program.subtype st.prog ~sub:o.o_cls ~sup:cls
      | VArr a -> Program.subtype st.prog ~sub:a.a_cls ~sup:cls
      | VNull | VInt _ -> false)

and exec_insn st fr (i : Bl.insn) =
  tick st;
  match i with
  | Bl.Assign (v, e) -> set_reg st fr v (eval_expr st fr e)
  | Bl.Load { dst; recv; field } ->
      let o = obj_of (get_reg fr recv) in
      let fld = Program.field st.prog field in
      let value =
        match Hashtbl.find_opt o.o_fields (Ids.Field.to_int field) with
        | Some v -> v
        | None -> default_of fld.Program.f_ty
      in
      set_reg st fr dst value
  | Bl.Store { recv; field; src } ->
      let o = obj_of (get_reg fr recv) in
      Hashtbl.replace o.o_fields (Ids.Field.to_int field) (get_reg fr src)
  | Bl.LoadStatic { dst; field } ->
      let fld = Program.field st.prog field in
      let value =
        match Hashtbl.find_opt st.statics (Ids.Field.to_int field) with
        | Some v -> v
        | None -> default_of fld.Program.f_ty
      in
      set_reg st fr dst value
  | Bl.StoreStatic { field; src } ->
      Hashtbl.replace st.statics (Ids.Field.to_int field) (get_reg fr src)
  | Bl.ArrLoad { dst; arr; idx; _ } ->
      let a = arr_of (get_reg fr arr) in
      let i = int_of (get_reg fr idx) in
      if i < 0 || i >= Array.length a.cells then raise (Halt Index_oob);
      set_reg st fr dst a.cells.(i)
  | Bl.ArrStore { arr; idx; src; _ } ->
      let a = arr_of (get_reg fr arr) in
      let i = int_of (get_reg fr idx) in
      if i < 0 || i >= Array.length a.cells then raise (Halt Index_oob);
      a.cells.(i) <- get_reg fr src
  | Bl.ArrLen { dst; arr } ->
      let a = arr_of (get_reg fr arr) in
      set_reg st fr dst (VInt (Array.length a.cells))
  | Bl.Cast { dst; src; cls } -> (
      match get_reg fr src with
      | VNull -> set_reg st fr dst VNull  (* a cast passes null *)
      | VObj o when Program.subtype st.prog ~sub:o.o_cls ~sup:cls ->
          set_reg st fr dst (VObj o)
      | VArr a when Program.subtype st.prog ~sub:a.a_cls ~sup:cls ->
          set_reg st fr dst (VArr a)
      | VObj _ | VArr _ -> raise (Halt Class_cast)
      | VInt _ -> invalid_arg "Interp: cast on a primitive")
  | Bl.Invoke { dst; recv; target; args; virtual_ } ->
      let callee, actuals =
        match recv with
        | None -> (Program.meth st.prog target, List.map (get_reg fr) args)
        | Some r -> (
            let rv = get_reg fr r in
            let o = obj_of rv in
            let callee =
              if virtual_ then
                match Program.resolve st.prog ~recv_cls:o.o_cls ~target with
                | Some m -> m
                | None -> invalid_arg "Interp: virtual resolution failed"
              else Program.meth st.prog target
            in
            (callee, rv :: List.map (get_reg fr) args))
      in
      set_reg st fr dst (call st callee actuals)

and eval_expr st fr (e : Bl.expr) : value =
  match e with
  | Bl.Const n -> VInt n
  | Bl.Null -> VNull
  | Bl.AnyInt -> VInt 0
  | Bl.New c ->
      st.trace.created <- Ids.Class.Set.add c st.trace.created;
      VObj { o_cls = c; o_fields = Hashtbl.create 4 }
  | Bl.NewArr (c, n) ->
      let len = int_of (get_reg fr n) in
      if len < 0 then raise (Halt Index_oob);
      st.trace.created <- Ids.Class.Set.add c st.trace.created;
      let default =
        match Program.array_elem_ty st.prog c with
        | Some ty -> default_of ty
        | None -> invalid_arg "Interp: NewArr on a non-array class"
      in
      VArr { a_cls = c; cells = Array.make len default }
  | Bl.Arith (op, a, b) -> (
      let x = int_of (get_reg fr a) and y = int_of (get_reg fr b) in
      match op with
      | Bl.Add -> VInt (x + y)
      | Bl.Sub -> VInt (x - y)
      | Bl.Mul -> VInt (x * y)
      | Bl.Div -> if y = 0 then raise (Halt Div_by_zero) else VInt (x / y)
      | Bl.Rem -> if y = 0 then raise (Halt Div_by_zero) else VInt (x mod y))

(** [run prog root] executes a zero-parameter root method and returns the
    trace together with how the run ended.  Internal invariant failures
    (ill-formed bodies, arity mismatches) surface as [Interp_error] rather
    than escaping as exceptions: the trace collected so far is still a
    valid soundness witness. *)
let run ?fuel ?record_defs prog (root : Program.meth) : trace * halt =
  let st = create ?fuel ?record_defs prog in
  match call st root [] with
  | _ -> (st.trace, Finished)
  | exception Halt h -> (st.trace, h)
  | exception Invalid_argument msg -> (st.trace, Interp_error msg)
  | exception Failure msg -> (st.trace, Interp_error msg)
