(** A fuel-bounded concrete interpreter for the base language — the
    soundness oracle of the test-suite: every method it executes must be in
    the analysis's reachable set, and every value it observes must be
    covered by the corresponding flow's fixed-point value state.

    Semantics match the analysis's assumptions: no exception handlers (a
    [throw], null dereference, failed cast, division by zero, out-of-bounds
    index, or fuel exhaustion halts the run — the trace so far remains a
    valid witness); fields default to [null]/[0]; [==] on references is
    physical identity; phis evaluate simultaneously on block entry. *)

open Skipflow_ir

type value = VInt of int | VNull | VObj of obj | VArr of arr
and obj = { o_cls : Ids.Class.t; o_fields : (int, value) Hashtbl.t }
and arr = { a_cls : Ids.Class.t; cells : value array }

(** Why a run stopped. *)
type halt =
  | Finished  (** the root method returned normally *)
  | Null_deref
  | Div_by_zero
  | Out_of_fuel
  | Index_oob  (** out-of-bounds index or negative array size *)
  | Class_cast  (** failed checkcast *)
  | Uncaught  (** an executed [throw] (MiniJava has no handlers) *)
  | Interp_error of string
      (** an internal invariant failed (ill-formed input program); the run
          halts with a message instead of leaking an exception *)

(** Everything observed during a run. *)
type trace = {
  mutable called : Ids.Meth.Set.t;  (** every method whose body started *)
  mutable created : Ids.Class.Set.t;  (** every class instantiated *)
  mutable defs : (Ids.Meth.t * Ids.Var.t * value) list;
      (** every SSA variable definition observed (method, variable, value);
          only recorded when [record_defs] *)
  mutable visited : Ids.Block.Set.t Ids.Meth.Map.t;
      (** every basic block entered, per method; the lint soundness oracle
          checks branches proved dead at the fixed point against this *)
  mutable steps : int;
}

val visited_block : trace -> Ids.Meth.t -> Ids.Block.t -> bool
(** Whether the run entered block [b] of method [m]. *)

val run :
  ?fuel:int ->
  ?record_defs:bool ->
  Program.t ->
  Program.meth ->
  trace * halt
(** [run prog root] executes a zero-parameter root method (default fuel
    100_000 steps; [record_defs] defaults to [true]). *)
