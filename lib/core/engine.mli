(** The fixed-point propagation engine: an operational implementation of
    the inference rules of Figure 15 (Appendix C).

    The engine drains a worklist of enable / input / notify work over the
    predicated value propagation graphs built by {!Build}.  Methods become
    reachable ([ℝ]) when their PVPG is built — as roots or when an invoke
    links them; virtual invokes resolve every type in the receiver's value
    state and link actual arguments to formal parameters and the callee
    return back to the invoke flow.

    All transfer functions are monotone over the finite-height lattice, so
    the fixed point is unique regardless of work order — which is why the
    default {!Dedup} mode may collapse redundant work items (joins that
    change nothing, enables of already-enabled flows, notifies of
    already-queued observers) without changing any result. *)

(** How the worklist is driven.  {!Dedup} (the default) joins input
    values into VS_in eagerly at emit time and queues at most one entry
    per flow, with dirty-kind bits stored on the flow itself.
    {!Reference} retains the original boxed FIFO (one task per emit,
    joins at processing time) for differential testing and as a perf
    baseline.  Both modes reach bit-identical fixed points. *)
type mode = Dedup | Reference

(** How {!run} ended.  [Paused payload] is returned only in
    pause-on-budget mode: the engine stopped at a task boundary and
    [payload] is its complete serialized state — feed it to
    {!of_snapshot_bytes} (or persist it with {!Snapshot.write} /
    {!save_snapshot}) and [run] the restored engine to continue to the
    {e identical} fixed point. *)
type outcome = Completed | Paused of string

(** An immutable snapshot of the run's counters (see {!Trace}); the
    engine's live accounting is a set of registered {!Trace.counter}s in
    the trace passed to {!create}, under the ["engine."] name prefix. *)
type stats = {
  tasks_processed : int;
      (** worklist entries drained (deduplicated flow drains in {!Dedup}
          mode, boxed tasks in {!Reference} mode) *)
  input_tasks : int;  (** input work items processed *)
  enable_tasks : int;  (** enable work items processed *)
  notify_tasks : int;  (** notify work items processed *)
  dedup_input : int;  (** input emits collapsed into pending work *)
  dedup_enable : int;  (** enable emits collapsed (already enabled/queued) *)
  dedup_notify : int;  (** notify emits collapsed (already queued) *)
  use_edges : int;  (** counted at link time only *)
  links : int;
  max_queue : int;
  live_flows : int;  (** flows created across all reachable PVPGs *)
  budget_trips : int;  (** budget-cap trip events (0 or 1 per run) *)
  trip_tasks : int;
      (** tasks drained when the first cap tripped (0 when none did) —
          with {!Budget.check_work} probing inside the re-resolution
          loops, bounded by the cap plus one task's pre-trip links *)
  trip_flows : int;
      (** live flows when the first cap tripped (0 when none did); the
          budget regression test pins its distance from [max_flows] *)
  degraded : bool;  (** a budget trip switched the run to degradation mode *)
  first_trip : Budget.trip option;  (** which cap tripped first *)
}

val dedup_hits : stats -> int
(** Total emits collapsed into already-pending work
    ([dedup_input + dedup_enable + dedup_notify]); always 0 in
    {!Reference} mode. *)

type t

val create : ?mode:mode -> ?trace:Trace.t -> Skipflow_ir.Program.t -> Config.t -> t
(** [mode] defaults to {!Dedup}.  [trace] (default a fresh quiet
    {!Trace.t}) receives the engine's counters and — when its events are
    enabled — the solver event stream (joins, enables, links, invoke
    resolutions, saturation trips, budget degradations). *)

val add_root : ?seed_params:bool -> t -> Skipflow_ir.Program.meth -> unit
(** Make a method an analysis root (building its PVPG).  [seed_params]
    (default from the config) seeds object parameters with all
    instantiated subtypes of their declared type and primitives with
    [Any] — the Section 5 reflection/JNI root policy. *)

val run :
  ?random_order:int ->
  ?on_budget:[ `Degrade | `Pause ] ->
  ?shard_seed:int ->
  t ->
  outcome
(** Drain the worklist to the fixed point.  With [random_order:seed],
    pending work is picked pseudo-randomly instead of FIFO; the fixed
    point must not change (checked by the property tests).

    With [Config.jobs > 1] (and the default {!Dedup} mode, no
    [random_order]) the drain starts with a parallel pre-pass: the PVPG
    is sharded by method over the call graph's SCC regions ({!Shard}),
    each worker domain drains its shard with cross-shard work flowing
    through bounded message queues, and a monitor stops the fleet at
    global quiescence.  A sequential closure sweep then re-seeds any
    propagation a racy edge-list read could have dropped and the ordinary
    sequential drain closes the fixed point — the result is the same,
    flow by flow, as [jobs = 1] (pinned by the [t_engine_perf] suite).
    [shard_seed] varies the partition's tie-breaking only; it can change
    scheduling, never results.  A budget trip during the pre-pass is
    handled exactly like a sequential trip: workers stop at task
    boundaries, their state merges back, and [`Degrade]/[`Pause] below
    proceeds on the merged (resume-compatible) state.

    The run honors the configuration's {!Budget.t}; [on_budget] selects
    the reaction when a cap trips:

    - [`Degrade] (default): the engine does not abort — it switches to
      degradation mode (all flows enabled, object flows saturated to the
      all-instantiated set, primitive flows widened to [Any]) and
      finishes at a sound but coarser fixed point.  [stats.degraded]
      records that this happened; the degraded reachable-method set is
      always a superset of the precise one.
    - [`Pause]: nothing is widened — the engine stops at the next task
      boundary and returns [Paused snapshot].  Resuming the snapshot
      (under a larger or unlimited budget) continues to the identical
      fixed point, flow by flow.

    Budget caps are checked after every drained task {e and}, via an
    in-task probe, after every interprocedural link
    ({!Budget.check_work}), so a single invoke resolving many callees
    cannot overshoot a cap unboundedly. *)

(** {2 Checkpointing}

    A paused engine serializes to a byte string (all solver state: flow
    value states, predicate enablement, pending dirty work in queue
    order, link/seen sets, saturation flags, counters).  The bytes are a
    [Marshal] image — treat them as opaque and, when persisting, wrap
    them in the {!Snapshot} container ({!save_snapshot} /
    {!load_snapshot}), which adds the magic, schema version, and CRC that
    make stale or corrupt files a reported error instead of undefined
    behavior. *)

val snapshot_kind : string
(** The {!Snapshot} container kind tag for engine state (["engine-state"]). *)

val snapshot_version : int
(** The engine-state payload schema version; {!load_snapshot} rejects
    files written by a build with a different one. *)

val snapshot_bytes : t -> string
(** Serialize the engine's complete solver state (non-destructively; the
    engine remains usable).  Meaningful at task boundaries — i.e. on a
    fresh engine, after [run] returned, or on the engine a [Paused]
    outcome was produced from. *)

val of_snapshot_bytes :
  ?trace:Trace.t -> ?budget:Budget.t -> string -> (t, string) result
(** Rebuild an engine from {!snapshot_bytes} output (or a [Paused]
    payload).  [trace] (default: a fresh quiet one) receives the restored
    counter values, so a resumed run's totals continue from the paused
    run's.  [budget] replaces the snapshotted configuration's budget —
    pass {!Budget.unlimited} to let the resumed run finish.  Returns
    [Error message] if the bytes cannot be decoded. *)

val save_snapshot : t -> path:string -> (unit, Snapshot.error) result
(** {!snapshot_bytes} wrapped in the {!Snapshot} container (kind
    ["engine-state"]), written atomically. *)

val load_snapshot :
  ?trace:Trace.t -> ?budget:Budget.t -> string -> (t, Snapshot.error) result
(** Read back a {!save_snapshot} file.  Truncation, bit flips, foreign
    files, and stale schema versions come back as the corresponding
    {!Snapshot.error}; an intact container whose payload fails to decode
    is {!Snapshot.Bad_payload}. *)

val clone : ?trace:Trace.t -> ?budget:Budget.t -> t -> t
(** An independent deep copy of the complete solver state (a
    {!snapshot_bytes} round trip): mutating the clone — e.g.
    {!add_root} + {!run} on a solved engine — leaves the original
    untouched.  [budget] replaces the clone's budget.  Meaningful at task
    boundaries, like {!snapshot_bytes}. *)

(** {2 Results} *)

val prog_of : t -> Skipflow_ir.Program.t
val config_of : t -> Config.t

val mode_of : t -> mode

val roots : t -> Skipflow_ir.Ids.Meth.Set.t
(** The methods registered via {!add_root} (never reported dead by
    clients — they are reachable by assumption). *)

val is_reachable : t -> Skipflow_ir.Ids.Meth.t -> bool

val reachable_methods : t -> Skipflow_ir.Program.meth list
(** In discovery order. *)

val reachable_count : t -> int

val graphs : t -> Graph.method_graph list
(** The per-method PVPGs with their fixed-point flow states, in discovery
    order. *)

val graph_of : t -> Skipflow_ir.Ids.Meth.t -> Graph.method_graph option
val instantiated_types : t -> Skipflow_ir.Ids.Class.t list

val instantiated : t -> Typeset.t
(** The instantiated-type set as a typeset (what virtual resolution and
    the certifier iterate for conservative [Any] receivers). *)

val is_degraded : t -> bool
(** Whether a budget trip switched this run to degradation mode. *)

val stats : t -> stats
(** A snapshot of the engine counters at the moment of the call. *)

val trace_of : t -> Trace.t
(** The trace this engine accounts into (the one given to {!create}). *)

(** {2 Internals exposed for {!Build} and white-box tests} *)

val all_inst_flow : t -> Skipflow_ir.Ids.Class.t -> Flow.t
(** The always-enabled global flow holding all instantiated subtypes of a
    class (grows as allocations are discovered). *)

val field_flow : t -> Skipflow_ir.Ids.Field.t -> Flow.t
(** The global per-declared-field flow ([LookUp]'s codomain), created on
    first use with the field's Java default value. *)
