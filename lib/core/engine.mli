(** The fixed-point propagation engine: an operational implementation of
    the inference rules of Figure 15 (Appendix C).

    The engine drains a worklist of enable / input / notify work over the
    predicated value propagation graphs built by {!Build}.  Methods become
    reachable ([ℝ]) when their PVPG is built — as roots or when an invoke
    links them; virtual invokes resolve every type in the receiver's value
    state and link actual arguments to formal parameters and the callee
    return back to the invoke flow.

    All transfer functions are monotone over the finite-height lattice, so
    the fixed point is unique regardless of work order — which is why the
    default {!Dedup} mode may collapse redundant work items (joins that
    change nothing, enables of already-enabled flows, notifies of
    already-queued observers) without changing any result. *)

(** How the worklist is driven.  {!Dedup} (the default) joins input
    values into VS_in eagerly at emit time and queues at most one entry
    per flow, with dirty-kind bits stored on the flow itself.
    {!Reference} retains the original boxed FIFO (one task per emit,
    joins at processing time) for differential testing and as a perf
    baseline.  Both modes reach bit-identical fixed points. *)
type mode = Dedup | Reference

(** An immutable snapshot of the run's counters (see {!Trace}); the
    engine's live accounting is a set of registered {!Trace.counter}s in
    the trace passed to {!create}, under the ["engine."] name prefix. *)
type stats = {
  tasks_processed : int;
      (** worklist entries drained (deduplicated flow drains in {!Dedup}
          mode, boxed tasks in {!Reference} mode) *)
  input_tasks : int;  (** input work items processed *)
  enable_tasks : int;  (** enable work items processed *)
  notify_tasks : int;  (** notify work items processed *)
  dedup_input : int;  (** input emits collapsed into pending work *)
  dedup_enable : int;  (** enable emits collapsed (already enabled/queued) *)
  dedup_notify : int;  (** notify emits collapsed (already queued) *)
  use_edges : int;  (** counted at link time only *)
  links : int;
  max_queue : int;
  live_flows : int;  (** flows created across all reachable PVPGs *)
  budget_trips : int;  (** budget-cap trip events (0 or 1 per run) *)
  degraded : bool;  (** a budget trip switched the run to degradation mode *)
  first_trip : Budget.trip option;  (** which cap tripped first *)
}

val dedup_hits : stats -> int
(** Total emits collapsed into already-pending work
    ([dedup_input + dedup_enable + dedup_notify]); always 0 in
    {!Reference} mode. *)

type t

val create : ?mode:mode -> ?trace:Trace.t -> Skipflow_ir.Program.t -> Config.t -> t
(** [mode] defaults to {!Dedup}.  [trace] (default a fresh quiet
    {!Trace.t}) receives the engine's counters and — when its events are
    enabled — the solver event stream (joins, enables, links, invoke
    resolutions, saturation trips, budget degradations). *)

val add_root : ?seed_params:bool -> t -> Skipflow_ir.Program.meth -> unit
(** Make a method an analysis root (building its PVPG).  [seed_params]
    (default from the config) seeds object parameters with all
    instantiated subtypes of their declared type and primitives with
    [Any] — the Section 5 reflection/JNI root policy. *)

val run : ?random_order:int -> t -> unit
(** Drain the worklist to the fixed point.  With [random_order:seed],
    pending work is picked pseudo-randomly instead of FIFO; the fixed
    point must not change (checked by the property tests).

    The run honors the configuration's {!Budget.t}: when a cap trips, the
    engine does not abort — it switches to degradation mode (all flows
    enabled, object flows saturated to the all-instantiated set, primitive
    flows widened to [Any]) and finishes at a sound but coarser fixed
    point.  [stats.degraded] records that this happened; the degraded
    reachable-method set is always a superset of the precise one. *)

(** {2 Results} *)

val prog_of : t -> Skipflow_ir.Program.t
val config_of : t -> Config.t

val mode_of : t -> mode

val roots : t -> Skipflow_ir.Ids.Meth.Set.t
(** The methods registered via {!add_root} (never reported dead by
    clients — they are reachable by assumption). *)

val is_reachable : t -> Skipflow_ir.Ids.Meth.t -> bool

val reachable_methods : t -> Skipflow_ir.Program.meth list
(** In discovery order. *)

val reachable_count : t -> int

val graphs : t -> Graph.method_graph list
(** The per-method PVPGs with their fixed-point flow states, in discovery
    order. *)

val graph_of : t -> Skipflow_ir.Ids.Meth.t -> Graph.method_graph option
val instantiated_types : t -> Skipflow_ir.Ids.Class.t list

val instantiated : t -> Typeset.t
(** The instantiated-type set as a typeset (what virtual resolution and
    the certifier iterate for conservative [Any] receivers). *)

val is_degraded : t -> bool
(** Whether a budget trip switched this run to degradation mode. *)

val stats : t -> stats
(** A snapshot of the engine counters at the moment of the call. *)

val trace_of : t -> Trace.t
(** The trace this engine accounts into (the one given to {!create}). *)

(** {2 Internals exposed for {!Build} and white-box tests} *)

val all_inst_flow : t -> Skipflow_ir.Ids.Class.t -> Flow.t
(** The always-enabled global flow holding all instantiated subtypes of a
    class (grows as allocations are discovered). *)

val field_flow : t -> Skipflow_ir.Ids.Field.t -> Flow.t
(** The global per-declared-field flow ([LookUp]'s codomain), created on
    first use with the field's Java default value. *)
