(** Crash-safe on-disk result cache (see the interface for the
    contract).  An entry is one {!Snapshot} blob per key, so atomicity,
    versioning and corruption detection all come from the container; this
    module adds the content-hash key discipline, the quarantine policy,
    and LRU eviction. *)

let schema_version = 1
let entry_kind = "cache-entry"
let entry_suffix = ".entry"

type t = {
  dir : string;
  max_entries : int;
  c_hit : Trace.counter;
  c_miss : Trace.counter;
  c_evict : Trace.counter;
  c_corrupt : Trace.counter;
}

let dir t = t.dir
let quarantine_dir t = Filename.concat t.dir "quarantine"

(** A crash mid-{!Snapshot.write} leaves a [<key>.entry.tmp.<pid>] file
    behind.  Such files are never served (lookups go by exact entry
    name), but they are not entries either, so eviction would ignore
    them forever.  Sweep any old enough that no live writer can still
    own them; the age threshold protects a concurrent store racing in
    another process. *)
let tmp_marker = entry_suffix ^ ".tmp."

let stale_tmp_age_s = 600.0

let is_tmp_name name =
  let n = String.length name and m = String.length tmp_marker in
  let rec scan i =
    i + m <= n && (String.sub name i m = tmp_marker || scan (i + 1))
  in
  scan 0

let sweep_stale_tmp dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
      let now = Unix.gettimeofday () in
      Array.iter
        (fun name ->
          if is_tmp_name name then begin
            let p = Filename.concat dir name in
            let stale =
              match Unix.stat p with
              | exception Unix.Unix_error _ -> false
              | st -> now -. st.Unix.st_mtime > stale_tmp_age_s
            in
            if stale then ignore (Io.unlink p)
          end)
        names

(** The quarantine directory preserves evidence, but evidence must not
    fill the disk: a workload that corrupts entries repeatedly (or a
    fault-injection run) would otherwise grow [quarantine/] without
    bound, since nothing ever read it back.  Two caps, both swept at
    {!create} and after every {!quarantine}: entries older than
    {!quarantine_max_age_s} go first, then the oldest beyond
    {!quarantine_max_entries} (newest kept — recent corruption is the
    evidence worth keeping).  Ordering ties on [st_mtime] break by path,
    same rationale as {!evict}. *)
let quarantine_max_entries = 64

let quarantine_max_age_s = 7. *. 24. *. 3600.

let sweep_quarantine t =
  let qdir = quarantine_dir t in
  match Sys.readdir qdir with
  | exception Sys_error _ -> ()
  | names ->
      let now = Unix.gettimeofday () in
      let stamped =
        Array.map
          (fun name ->
            let p = Filename.concat qdir name in
            let mtime =
              try (Unix.stat p).Unix.st_mtime with Unix.Unix_error _ -> 0.0
            in
            (mtime, p))
          names
      in
      let order (ma, pa) (mb, pb) =
        let c = Float.compare ma mb in
        if c <> 0 then c else String.compare pa pb
      in
      Array.sort order stamped;
      Array.iteri
        (fun i (mtime, p) ->
          let age = Float.max 0.0 (now -. mtime) in
          let excess = Array.length stamped - i > quarantine_max_entries in
          if age > quarantine_max_age_s || excess then ignore (Io.unlink p))
        stamped

let create ?trace ?(max_entries = 512) dir =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  let t =
    {
      dir;
      max_entries = max max_entries 1;
      c_hit = Trace.counter trace "cache.hit";
      c_miss = Trace.counter trace "cache.miss";
      c_evict = Trace.counter trace "cache.evict";
      c_corrupt = Trace.counter trace "cache.corrupt";
    }
  in
  ignore (Io.mkdir_p dir);
  ignore (Io.mkdir_p (quarantine_dir t));
  sweep_stale_tmp dir;
  sweep_quarantine t;
  t

(** Every result-affecting configuration field goes into the fingerprint —
    including the budget: a degraded (budget-tripped) result must never be
    served to a run with a larger budget.  [jobs] is deliberately left
    out: the parallel solver reaches the same fixed point for every job
    count, so a result computed at one is valid at any other. *)
let fingerprint (config : Config.t) =
  Format.asprintf
    "cache-v%d;predicates=%b;primitives=%b;pval=%s;saturation=%s;seed_root_params=%b;budget=%a"
    schema_version config.Config.predicates config.Config.primitives
    (Pval.mode_name config.Config.pval)
    (match config.Config.saturation with
    | None -> "none"
    | Some n -> string_of_int n)
    config.Config.seed_root_params Budget.pp config.Config.budget

let key ~config ~scope ~source =
  Digest.to_hex
    (Digest.string (fingerprint config ^ "\x00" ^ scope ^ "\x00" ^ source))

let entry_path t k = Filename.concat t.dir (k ^ entry_suffix)

(** Move a corrupt entry aside (never delete evidence); if even the
    rename fails, fall back to removing it so it cannot poison later
    lookups. *)
let quarantine t path =
  let dst = Filename.concat (quarantine_dir t) (Filename.basename path) in
  (match Io.rename ~src:path ~dst with
  | Ok () -> ()
  | Error _ -> ignore (Io.unlink path));
  sweep_quarantine t

let find t k =
  let path = entry_path t k in
  if not (Sys.file_exists path) then begin
    Trace.incr t.c_miss;
    None
  end
  else
    match
      Snapshot.read ~path ~kind:entry_kind ~version:schema_version
    with
    | Ok payload -> (
        match String.index_opt payload '\n' with
        | Some i when String.sub payload 0 i = k ->
            Trace.incr t.c_hit;
            (* refresh the LRU clock; best-effort *)
            (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
            Some (String.sub payload (i + 1) (String.length payload - i - 1))
        | _ ->
            (* intact container holding another key: a hash collision or
               a renamed file — treat as corrupt, do not serve it *)
            Trace.incr t.c_corrupt;
            quarantine t path;
            None)
    | Error (Snapshot.Io _) ->
        (* raced away or unreadable: indistinguishable from absent *)
        Trace.incr t.c_miss;
        None
    | Error _ ->
        Trace.incr t.c_corrupt;
        quarantine t path;
        None

let evict t =
  sweep_stale_tmp t.dir;
  match Sys.readdir t.dir with
  | exception Sys_error _ -> ()
  | names ->
      let entries =
        Array.of_seq
          (Seq.filter
             (fun n -> Filename.check_suffix n entry_suffix)
             (Array.to_seq names))
      in
      let excess = Array.length entries - t.max_entries in
      if excess > 0 then begin
        let stamped =
          Array.map
            (fun name ->
              let p = Filename.concat t.dir name in
              let mtime =
                try (Unix.stat p).Unix.st_mtime
                with Unix.Unix_error _ -> 0.0
              in
              (mtime, p))
            entries
        in
        (* oldest first; ties broken by path.  [st_mtime] ties are common
           in practice — coarse-granularity filesystems, and several
           stores landing within one clock tick — and an unordered tie
           would make which entry survives eviction depend on [readdir]
           order, i.e. on the filesystem.  The path (the content-hash
           key) makes the order total and reproducible. *)
        let lru_order (ma, pa) (mb, pb) =
          let c = Float.compare ma mb in
          if c <> 0 then c else String.compare pa pb
        in
        Array.sort lru_order stamped;
        for i = 0 to excess - 1 do
          let _, p = stamped.(i) in
          ignore (Io.unlink p);
          Trace.incr t.c_evict
        done
      end

let store t k v =
  let r =
    Snapshot.write ~path:(entry_path t k) ~kind:entry_kind
      ~version:schema_version (k ^ "\n" ^ v)
  in
  (match r with Ok () -> evict t | Error _ -> ());
  r
