(** Dead-code and optimization-opportunity reports — the compiler-client
    view of Section 6 ("Impact on Compiler Optimizations"): which methods a
    more precise analysis removes, which branches fold to one side, which
    virtual calls devirtualize, and which parameters are interprocedural
    constants. *)

open Skipflow_ir

type branch_verdict =
  | Both_live
  | Then_only  (** else branch removable *)
  | Else_only  (** then branch removable *)
  | Neither  (** the whole check is in dead code *)

type t = {
  removed_methods : string list;
      (** reachable under the baseline, dead under the precise analysis *)
  folded_branches : (string * Flow.check_kind * branch_verdict) list;
      (** per reachable method: branch sites with a one-sided verdict *)
  devirtualized : (string * string) list;
      (** (caller, unique target) for virtual sites with exactly one target *)
  constant_returns : (string * int) list;
      (** methods whose fixed-point return state is a single constant *)
}

let live (f : Flow.t) = f.Flow.enabled && not (Vstate.is_empty f.Flow.state)

let branch_verdict (bs : Graph.branch_site) =
  match (live bs.Graph.bs_then_live, live bs.Graph.bs_else_live) with
  | true, true -> Both_live
  | true, false -> Then_only
  | false, true -> Else_only
  | false, false -> Neither

(** [compare_runs ~baseline ~precise] lists what the precise analysis
    proves beyond the baseline plus the precise run's own folding /
    devirtualization facts. *)
let compare_runs ~(baseline : Engine.t) ~(precise : Engine.t) : t =
  let prog = Engine.prog_of precise in
  let removed_methods =
    List.filter_map
      (fun (m : Program.meth) ->
        if Engine.is_reachable precise m.Program.m_id then None
        else Some (Program.qualified_name prog m.Program.m_id))
      (Engine.reachable_methods baseline)
  in
  let folded = ref [] and devirt = ref [] and consts = ref [] in
  List.iter
    (fun (g : Graph.method_graph) ->
      let qname = Program.qualified_name prog g.Graph.g_meth.Program.m_id in
      List.iter
        (fun bs ->
          match branch_verdict bs with
          | Both_live -> ()
          | v -> folded := (qname, bs.Graph.bs_kind, v) :: !folded)
        g.Graph.g_branches;
      List.iter
        (fun (f : Flow.t) ->
          match f.Flow.kind with
          | Flow.Invoke inv
            when inv.Flow.inv_virtual
                 && Ids.Meth.Set.cardinal inv.Flow.inv_linked = 1 ->
              let target = Ids.Meth.Set.choose inv.Flow.inv_linked in
              devirt := (qname, Program.qualified_name prog target) :: !devirt
          | _ -> ())
        g.Graph.g_invokes;
      match g.Graph.g_return.Flow.state with
      | Vstate.Prim p when not (Ty.equal g.Graph.g_meth.Program.m_ret_ty Ty.Void)
        -> (
          match Prim.as_const p with
          | Some n -> consts := (qname, n) :: !consts
          | None -> ())
      | _ -> ())
    (Engine.graphs precise);
  {
    removed_methods;
    folded_branches = List.rev !folded;
    devirtualized = List.rev !devirt;
    constant_returns = List.rev !consts;
  }

let kind_name = function
  | Flow.Type_check -> "type check"
  | Flow.Null_check -> "null check"
  | Flow.Prim_check -> "prim check"

let verdict_name = function
  | Both_live -> "both live"
  | Then_only -> "else branch dead"
  | Else_only -> "then branch dead"
  | Neither -> "entire check dead"

let pp ppf (r : t) =
  Format.fprintf ppf "@[<v>== methods removed vs baseline: %d ==@,"
    (List.length r.removed_methods);
  List.iter (fun m -> Format.fprintf ppf "  %s@," m) r.removed_methods;
  Format.fprintf ppf "== foldable branches: %d ==@," (List.length r.folded_branches);
  List.iter
    (fun (m, k, v) -> Format.fprintf ppf "  %s: %s, %s@," m (kind_name k) (verdict_name v))
    r.folded_branches;
  Format.fprintf ppf "== devirtualized call sites: %d ==@," (List.length r.devirtualized);
  List.iter (fun (m, t) -> Format.fprintf ppf "  %s -> %s@," m t) r.devirtualized;
  Format.fprintf ppf "== constant-returning methods: %d ==@,"
    (List.length r.constant_returns);
  List.iter (fun (m, n) -> Format.fprintf ppf "  %s = %d@," m n) r.constant_returns;
  Format.fprintf ppf "@]"
