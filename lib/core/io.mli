(** The durable-IO effect layer: every byte the analysis persists —
    solver snapshots, cache entries, serve and batch journals, trace
    exports, fuzz corpus files — goes through this module and nothing
    else.  Centralizing the syscalls buys three things:

    - {b correctness under hostile kernels}: every operation retries
      [EINTR] transparently and backs off (bounded, exponential) on
      transient [EAGAIN]/[EWOULDBLOCK]; writes are chunked and continue
      after short writes; atomic writes go tmp-file + [rename] with the
      temp file unlinked on {e every} failure path, so no error can leak
      a stray [.tmp.*] or a torn destination;
    - {b configurable durability}: a process-wide level chosen at the
      CLI ([--durability none|flush|fsync]) decides whether an
      operation merely hands bytes to the kernel ([flush], the default
      — byte-identical behavior to every release before this layer
      existed), also [fsync]s the file and its parent directory before
      reporting success ([fsync]), or buffers in user space until close
      ([none], for throwaway scratch work);
    - {b deterministic fault injection}: a seeded {!plan} can make any
      operation fail with EIO/ENOSPC, suffer an extra EINTR or a short
      write (which the retry machinery must absorb), tear a rename, or
      die outright at operation [k] — the crash-point matrix.  The
      decision for operation [i] is a pure function of [(seed, i)], so
      a failing seed replays exactly.

    Everything here is total: no exception escapes a [(_, error) result]
    operation (injected crashes excepted — that is their point). *)

(* ----------------------------- durability ----------------------------- *)

type durability =
  | D_none  (** buffer in user space; bytes may sit unflushed until close *)
  | D_flush
      (** every operation completes its [write(2)]s before reporting
          success; no [fsync].  The default, matching the pre-layer
          behavior of [open_out]/[close_out] + [Sys.rename]. *)
  | D_fsync
      (** additionally [fsync] file contents before the publishing
          [rename], [fsync] the parent directory after it, and [fsync]
          after every journal append *)

val set_durability : durability -> unit
(** Process-wide; set once at CLI startup.  Deliberately {e not} part of
    {!Config.t}: durability changes when bytes are safe, never what they
    are, exactly like [Config.jobs]. *)

val durability : unit -> durability

val durability_name : durability -> string
(** ["none" | "flush" | "fsync"], the CLI vocabulary. *)

(* ------------------------------- errors ------------------------------- *)

type error = {
  io_op : string;  (** the failing operation, e.g. ["write"], ["rename"] *)
  io_path : string;
  io_message : string;  (** the rendered errno or [Sys_error] message *)
}

val error_message : error -> string
(** ["<path>: <op>: <message>"]. *)

(* --------------------------- fault injection -------------------------- *)

type fault =
  | F_eio  (** the operation fails with [EIO] *)
  | F_enospc  (** a write-side operation fails with [ENOSPC] *)
  | F_eintr
      (** the operation fails once with [EINTR], then succeeds — must be
          invisible to callers (the retry loop absorbs it) *)
  | F_short_write
      (** one [write(2)] transfers only half its bytes — must be
          invisible to callers (the chunk loop continues) *)
  | F_torn_rename
      (** the source file is truncated to half before the rename lands:
          the torn-page crash a missing fsync exposes.  Readers must
          detect the damage (CRC) and fall back cleanly. *)

val fault_name : fault -> string

type plan
(** A deterministic schedule of faults over the operation sequence. *)

val plan :
  ?rate:int ->
  ?faults:fault list ->
  ?crash_at:int ->
  ?crash_exit:bool ->
  seed:int ->
  unit ->
  plan
(** [plan ~seed ()] builds a fault plan.  [rate] (default [0] = never)
    injects a fault on roughly one in [rate] operations; which
    operations, and which [fault] from [faults] (default: all),
    is a pure function of [(seed, op_index)].  [crash_at] simulates
    process death {e before} operation [k] is attempted: with
    [crash_exit] (the default, for forked children) the process
    [_exit]s with code 137 — no [at_exit], no cleanup, the faithful
    [kill -9]; without it {!Crash_point} is raised instead, which
    unwinds exception-safely (temp files unlinked, descriptors closed)
    and so additionally exercises the cleanup paths. *)

exception Crash_point of int
(** Raised at the crash point when [crash_exit] is false. *)

val install : plan -> unit
(** Make [plan] govern subsequent operations (process-global). *)

val uninstall : unit -> unit

val with_plan : plan -> (unit -> 'a) -> 'a
(** Install, run, uninstall (also on exception). *)

val ops_performed : unit -> int
(** Operations ticked by the installed plan ([0] when none): the count
    to enumerate crash points over. *)

val injected : unit -> int
(** Faults injected by the installed plan so far. *)

val preview : plan -> n:int -> fault option list
(** The decisions the plan would take for operations [0 .. n-1], without
    performing anything — the determinism oracle ([preview] of two plans
    with the same seed are equal). *)

val fork_crashing : plan:plan -> (unit -> unit) -> unit
(** [fork_crashing ~plan f] runs [f] in a forked child with [plan]
    installed and waits for it.  The child [_exit]s 0 if [f] returns or
    raises, 137 if the plan's crash point fired — either way the parent
    returns normally and inspects the disk.  The building block of the
    crash-point matrix. *)

(* ------------------------------ statistics ---------------------------- *)

type stats = {
  writes : int;  (** atomic whole-file writes completed *)
  appends : int;  (** journal lines appended *)
  fsyncs : int;  (** [fsync(2)] calls issued (files and directories) *)
  renames : int;
  retries : int;  (** EINTR/EAGAIN retries absorbed *)
  faults : int;  (** faults injected (all plans since reset) *)
}

val stats : unit -> stats
val reset_stats : unit -> unit

(* ------------------------------ operations ---------------------------- *)

val read_file : string -> (string, error) result
(** Whole-file read (binary).  A missing file is an [error] whose
    [io_message] is the rendered [ENOENT] — callers that treat absence
    as a miss match on the result, not on an exception. *)

val write_file_atomic : path:string -> string -> (unit, error) result
(** Write bytes to [path ^ ".tmp.<pid>"], honor the durability level
    ([D_fsync]: fsync file, then rename, then fsync the parent
    directory), and rename over [path].  On {e any} failure the temp
    file is closed and unlinked before the error is returned: no crash
    or fault can leak it, and [path] is either its old content or the
    complete new content, never a mixture. *)

val rename : src:string -> dst:string -> (unit, error) result
val unlink : string -> (unit, error) result
(** [unlink] of a missing file is [Ok ()]. *)

val mkdir_p : string -> (unit, error) result

val fsync_dir : string -> unit
(** Best-effort directory fsync (no-op below [D_fsync]; errors are
    swallowed — some filesystems refuse directory fsync). *)

(* ------------------------------- appender ----------------------------- *)

(** An append-only line sink for journals.  Writes are raw [write(2)]
    on an [O_APPEND] descriptor (one line per call, so a crashed writer
    tears at most the final line); [D_fsync] syncs after every line,
    [D_none] buffers in user space until {!flush_append}/{!close_append}. *)
type appender

val open_append : string -> (appender, error) result
(** Opens (creating, [0o644]) for appending; creates parent directories
    as needed. *)

val append_line : appender -> string -> (unit, error) result
(** Writes [line ^ "\n"] and makes it as durable as the level demands. *)

val flush_append : appender -> (unit, error) result
val close_append : appender -> unit
(** Flush and close; errors are swallowed (idempotent). *)
