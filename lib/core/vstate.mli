(** Value states: the combined lattice [𝕃] of Appendix B.2 (Figure 11),
    and the [Compare] filtering function of Appendix C.

    A value state conservatively over-approximates the values a base-
    language element can hold at runtime: empty (⊥), a single primitive
    constant, a non-empty set of types (with [null] as a special member),
    or the global top [Any].  All operations are monotone over the typed
    sublattices the engine uses, which with the finite lattice height
    guarantees termination of the fixed point. *)

type t =
  | Empty
  | Prim of Prim.t
      (** primitive content; invariant: the payload is proper — never
          {!Prim.bot} ([Empty] represents that) and never {!Prim.top}
          ([Any] does).  Under [--pval flat] every payload is a
          singleton constant — the paper's [Const of int], exactly. *)
  | Types of Typeset.t  (** invariant: the set is non-empty *)
  | Any  (** ⊤ = [{Any}] *)

val empty : t
val any : t

val const : int -> t
(** The fully-reduced singleton [{n}], whatever the pval mode — so
    [leq (const n) s] tests membership of [n] in [s] under either
    lattice (the fuzz oracle relies on this). *)

val vtrue : t
val vfalse : t

val of_prim : Prim.t -> t
(** Re-establish the properness invariant: {!Prim.bot} ↦ [Empty],
    {!Prim.top} ↦ [Any], proper payloads boxed as [Prim]. *)

val null : t
(** The state containing exactly the [null] reference. *)

val types : Typeset.t -> t
(** [types ts] is [Empty] when [ts] is empty, [Types ts] otherwise. *)

val of_class : Skipflow_ir.Ids.Class.t -> t
val is_empty : t -> bool
val equal : t -> t -> bool

val join : pval:Pval.mode -> t -> t -> t
(** Least upper bound.  [pval] selects the primitive sublattice: flat
    tops distinct constants out to [Any] (paper, Figure 6), product
    joins intervals ({!Prim.join}).  On singleton payloads the two
    agree, so flat reproduces the pre-product behaviour exactly. *)

val join_unshared : pval:Pval.mode -> t -> t -> t
(** Like {!join} but without the physical-sharing fast paths: the
    type-set case always materializes a fresh set.  Used by the
    reference engine to keep the baseline's historical cost profile. *)

val leq : t -> t -> bool

val type_set : t -> Typeset.t
(** The type-set content; empty for primitive states. *)

val pp : Format.formatter -> t -> unit

val pp_named :
  class_name:(Skipflow_ir.Ids.Class.t -> string) -> Format.formatter -> t -> unit
(** Like {!pp} but printing class names instead of ids. *)

(** {2 Filters} *)

val filter_instanceof : mask:Typeset.t -> negated:bool -> t -> t
(** The [TypeCheck] rule of Figure 15.  [mask] must be the subtypes of the
    checked class excluding [null]: the positive check keeps exactly those
    ([null] fails [instanceof]); the negated check keeps the complement
    including [null].  Primitive states pass through. *)

val filter_declared : mask_with_null:Typeset.t -> t -> t
(** Declared-type restriction for formal-parameter and cast flows:
    intersects object states with the subtypes of the declared type plus
    [null]; primitive states pass through. *)

(** Comparison operators of filtering flows.  Branch conditions are
    normalized to [==] and [<] (Appendix B.1); the other variants arise
    from {!inv} (else-branches) and {!flip} (mirrored operand). *)
type cmp_op = Eq | Ne | Lt | Ge | Gt | Le

val inv : cmp_op -> cmp_op
(** Logical negation (the operator of the [else] branch). *)

val flip : cmp_op -> cmp_op
(** Operand mirror: filtering [y] by [x < y] uses [flip Lt = Gt]. *)

val pp_cmp_op : Format.formatter -> cmp_op -> unit

val compare_filter : pval:Pval.mode -> cmp_op -> t -> t -> t
(** [compare_filter ~pval op vl vr] is the [Compare] function of Appendix
    C: the content of [vl] that can satisfy [op] against some value of
    [vr].  Under [--pval product] the primitive cases narrow ranges
    ({!Prim.meet} / {!Prim.narrow}) instead of the flat lattice's
    all-or-nothing answer; under [--pval flat] the result is bit-for-bit
    the paper's function.  Deviation for soundness: on type sets, ['≠']
    applies the paper's set difference only when [vr] is exactly
    [{null}] (the only type denoting a single runtime value) and passes
    [vl] through otherwise — see DESIGN.md §7. *)

val arith : Prim.binop -> t -> t -> t
(** Forward arithmetic transfer ([Arith] flows, [--pval product] only):
    {!Prim.arith} on primitive operands, [Empty] when either operand is
    still empty, conservative [Any] otherwise. *)
