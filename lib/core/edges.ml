(** Edge insertion with propagation scheduling.

    Both PVPG construction ({!Build}) and interprocedural linking
    ({!Engine}) add edges to a graph whose fixed-point computation may
    already be under way, so adding an edge must schedule the propagation
    work the edge implies:

    - a {e use} edge from an enabled source with a non-empty state pushes
      that state to the new target;
    - a {e predicate} edge from an enabled, non-empty source immediately
      enables the target;
    - an {e observe} edge from a source with a non-empty state notifies the
      new observer.

    Scheduling goes through an {!emit} record supplied by the engine, so
    this module does not allocate task values: the deduplicated engine
    joins input values into the target's VS_in eagerly and enqueues only a
    dirty flow id, while its retained reference drain boxes FIFO tasks the
    way the original implementation did.  Because all transfer functions
    are monotone joins over a finite-height lattice, the fixed point does
    not depend on drain order (a property the test-suite checks by running
    with randomized orders). *)

type emit = {
  input : Flow.t -> Vstate.t -> unit;
      (** join the value into the target's VS_in and schedule it *)
  enable : Flow.t -> unit;  (** schedule the target to become executable *)
  notify : Flow.t -> unit;  (** schedule the observer's flow-specific action *)
}

(** An emit that drops everything; placeholder while an engine ties the
    knot between its record and its emit closures. *)
let null_emit = { input = (fun _ _ -> ()); enable = ignore; notify = ignore }

let use_edge ~(emit : emit) (s : Flow.t) (t : Flow.t) =
  s.Flow.uses <- t :: s.Flow.uses;
  if s.Flow.enabled && not (Vstate.is_empty s.Flow.state) then
    emit.input t s.Flow.state

let pred_edge ~(emit : emit) (s : Flow.t) (t : Flow.t) =
  s.Flow.pred_out <- t :: s.Flow.pred_out;
  if s.Flow.enabled && not (Vstate.is_empty s.Flow.state) then emit.enable t

let obs_edge ~(emit : emit) (s : Flow.t) (t : Flow.t) =
  s.Flow.observers <- t :: s.Flow.observers;
  if not (Vstate.is_empty s.Flow.state) then emit.notify t
