(** Versioned, checksummed on-disk blobs — the shared container format
    for solver snapshots ({!Engine.save_snapshot}) and result-cache
    entries ({!Cache}).

    A blob is a header (magic, a short ASCII {e kind} tag, a caller-owned
    schema version, the payload length) followed by the payload and
    guarded by a CRC-32 of the payload.  Writes are {e atomic} and go
    through the durable-IO layer ({!Io.write_file_atomic}): the bytes go
    to a temporary file in the target directory which is then [rename]d
    over the destination, so a reader never observes a half-written
    blob; every in-process failure closes and unlinks the temp file
    before the error is returned, and the write honors the process
    durability level ([--durability]).

    Reads are {e total}: every way a file can be wrong — unreadable,
    truncated (including mid-header), foreign (bad magic), of another
    kind, of an unknown schema version, or bit-flipped anywhere in the
    payload — comes back as a typed {!error}, never an exception.  This
    is the contract the crash-injection fuzz matrix exercises. *)

type error =
  | Io of { path : string; message : string }
      (** the file could not be read or written *)
  | Truncated of { path : string; expected : int; got : int }
      (** shorter than its header claims (or than any valid header) *)
  | Bad_magic of { path : string }  (** not a SkipFlow blob at all *)
  | Bad_kind of { path : string; found : string; expected : string }
      (** a valid blob of another kind (e.g. a cache entry offered as an
          engine snapshot) *)
  | Bad_version of { path : string; found : int; expected : int }
      (** stale or future schema; the payload layout cannot be trusted *)
  | Bad_checksum of { path : string }
      (** payload CRC-32 mismatch: bit rot or a torn write *)
  | Bad_payload of { path : string; message : string }
      (** the container was intact but the payload failed to decode
          (raised by the caller's decoder, e.g. {!Engine.load_snapshot}) *)

val error_message : error -> string
(** One-line human-readable rendering, prefixed with the path. *)

val write : path:string -> kind:string -> version:int -> string -> (unit, error) result
(** [write ~path ~kind ~version payload] atomically writes a blob.
    [kind] is a short ASCII tag (at most 255 bytes) naming the payload
    schema; [version] is the caller's schema version for that kind. *)

val read : path:string -> kind:string -> version:int -> (string, error) result
(** [read ~path ~kind ~version] loads and verifies a blob, returning the
    payload.  Rejects wrong kinds, wrong versions, truncation, and
    checksum mismatches with the corresponding {!error}. *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3) of a string, exposed for tests. *)
