(** Top-level analysis driver: build the engine, register roots, solve to
    the fixed point, collect metrics.  This is the main entry point for
    examples, tests, the CLI, and the benchmark harness. *)

type result = {
  config : Config.t;
  engine : Engine.t;
      (** the solved engine: reachable methods, per-flow value states *)
  metrics : Metrics.t;
  cpu_time_s : float;
      (** CPU time of graph construction + solving ([Sys.time]-based) *)
}

val run :
  ?config:Config.t ->
  ?random_order:int ->
  ?mode:Engine.mode ->
  Skipflow_ir.Program.t ->
  roots:Skipflow_ir.Program.meth list ->
  result
(** [run ~config prog ~roots] analyzes [prog] from the given root methods
    (default config: {!Config.skipflow}).  [random_order] processes the
    worklist in a seeded pseudo-random order instead of FIFO — the fixed
    point must not change; used by determinism tests.  [mode] selects the
    worklist engine ({!Engine.Dedup} by default; {!Engine.Reference} keeps
    the original boxed FIFO for differential testing). *)

val roots_by_name : Skipflow_ir.Program.t -> string list -> Skipflow_ir.Program.meth list
(** Resolve roots from ["Class.method"] names.
    @raise Not_found if a name does not exist. *)

val reachable_names : result -> string list
(** Qualified names of the reachable methods, in discovery order. *)
