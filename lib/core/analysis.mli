(** Top-level analysis driver: build the engine, register roots, solve to
    the fixed point, collect metrics.  This is the main entry point for
    examples, tests, the CLI, and the benchmark harness. *)

type result = {
  config : Config.t;
  engine : Engine.t;
      (** the solved engine: reachable methods, per-flow value states *)
  outcome : Engine.outcome;
      (** {!Engine.Paused} only under [on_budget:`Pause] when a budget
          cap tripped; pass the payload to {!resume} (optionally after a
          {!Snapshot.write} round trip) to finish the solve *)
  metrics : Metrics.t;
  trace : Trace.t;
      (** the run's counters, and — when requested at creation — its
          phase timings and solver event stream *)
  cpu_time_s : float;
      (** CPU time of graph construction + solving ([Sys.time]-based) *)
}

val run :
  ?config:Config.t ->
  ?random_order:int ->
  ?on_budget:[ `Degrade | `Pause ] ->
  ?shard_seed:int ->
  ?mode:Engine.mode ->
  ?trace:Trace.t ->
  Skipflow_ir.Program.t ->
  roots:Skipflow_ir.Program.meth list ->
  result
(** [run ~config prog ~roots] analyzes [prog] from the given root methods
    (default config: {!Config.skipflow}).  [random_order] processes the
    worklist in a seeded pseudo-random order instead of FIFO — the fixed
    point must not change; used by determinism tests.  [mode] selects the
    worklist engine ({!Engine.Dedup} by default; {!Engine.Reference} keeps
    the original boxed FIFO for differential testing).  [trace] (default a
    fresh quiet {!Trace.t}) receives the run's counters; when created with
    timers the driver records ["roots"] / ["solve"] / ["metrics"] phases
    into it, and with events the engine streams solver activity.
    [on_budget] selects the budget-trip reaction (see {!Engine.run}):
    [`Degrade] (default) finishes at a sound coarser fixed point;
    [`Pause] returns with [result.outcome = Paused snapshot] instead.
    With [config.jobs > 1] the solve starts with the parallel pre-pass
    (see {!Engine.run}); [shard_seed] varies only the partition's
    tie-breaking, never the result. *)

val rerun :
  ?random_order:int ->
  ?on_budget:[ `Degrade | `Pause ] ->
  ?shard_seed:int ->
  ?trace:Trace.t ->
  Engine.t ->
  result
(** Drive an already-constructed engine (back) to its fixed point and
    recompute metrics.  This is the incremental re-analysis step: on a
    solved engine that just gained roots via {!Engine.add_root}, the
    worklist re-drains from the new roots' boundary flows only, and
    monotone chaotic iteration guarantees the fixed point equals a
    from-scratch solve over the grown root set (pinned flow by flow by
    the serve tests).  [trace] defaults to the engine's own trace. *)

val resume :
  ?random_order:int ->
  ?on_budget:[ `Degrade | `Pause ] ->
  ?shard_seed:int ->
  ?budget:Budget.t ->
  ?trace:Trace.t ->
  string ->
  (result, string) Stdlib.result
(** Continue a paused solve from a {!Engine.Paused} payload (or
    {!Engine.snapshot_bytes} output).  [budget] — commonly
    {!Budget.unlimited} — replaces the snapshotted budget so the resumed
    run can finish; metrics are recomputed on the resumed engine, whose
    fixed point is identical, flow by flow, to an uninterrupted run's.
    [Error msg] when the payload cannot be decoded. *)

val roots_by_name :
  Skipflow_ir.Program.t ->
  string list ->
  (Skipflow_ir.Program.meth list, string) Stdlib.result
(** Resolve roots from ["Class.method"] names.  [Error msg] names the
    first root that does not resolve (unknown class, unknown method, or a
    name not of the form [Class.method]); no exception escapes. *)

val reachable_names : result -> string list
(** Qualified names of the reachable methods, in discovery order. *)
