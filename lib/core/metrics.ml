(** The evaluation metrics of Section 6 (the columns of Table 1).

    Counter metrics count "specific instructions in all reachable methods
    that cannot be removed or simplified using the results of the
    analysis":

    - a branch check (type / null / primitive) survives iff {e both} of its
      filtered branches are live at the fixed point;
    - a virtual call survives as a {e PolyCall} iff it links two or more
      target methods (it cannot be devirtualized).

    {e Binary size} is proxied by the total instruction count of reachable
    methods (the paper reports that binary size follows the reachable-
    methods trend; our substrate has no machine-code backend). *)

open Skipflow_ir

type t = {
  reachable_methods : int;
  type_checks : int;
  null_checks : int;
  prim_checks : int;
  poly_calls : int;
  mono_calls : int;  (** virtual call sites devirtualized to one target *)
  dead_invokes : int;  (** invoke flows never enabled / never linked *)
  binary_size : int;  (** Σ instruction count over reachable methods *)
  flows : int;  (** total flows created *)
  instantiated_types : int;
  degraded : bool;
      (** the run exhausted its {!Budget.t} and finished at a coarser,
          still-sound fixed point *)
  budget_trips : int;  (** budget-cap trip events recorded by the engine *)
  tasks : int;  (** worklist entries the engine drained *)
  dedup_hits : int;
      (** emits the deduplicated worklist collapsed into pending work *)
}

let compute (e : Engine.t) : t =
  let type_checks = ref 0
  and null_checks = ref 0
  and prim_checks = ref 0
  and poly = ref 0
  and mono = ref 0
  and dead = ref 0
  and size = ref 0
  and flows = ref 0 in
  List.iter
    (fun (g : Graph.method_graph) ->
      size := !size + Bl.size g.Graph.g_body;
      flows := !flows + Graph.flow_count g;
      List.iter
        (fun bs ->
          if Graph.both_branches_live bs then
            match bs.Graph.bs_kind with
            | Flow.Type_check -> incr type_checks
            | Flow.Null_check -> incr null_checks
            | Flow.Prim_check -> incr prim_checks)
        g.Graph.g_branches;
      List.iter
        (fun (f : Flow.t) ->
          match f.Flow.kind with
          | Flow.Invoke inv ->
              let n = Ids.Meth.Set.cardinal inv.Flow.inv_linked in
              if inv.Flow.inv_virtual then
                if n >= 2 then incr poly else if n = 1 then incr mono;
              if n = 0 then incr dead
          | _ -> ())
        g.Graph.g_invokes)
    (Engine.graphs e);
  {
    reachable_methods = Engine.reachable_count e;
    type_checks = !type_checks;
    null_checks = !null_checks;
    prim_checks = !prim_checks;
    poly_calls = !poly;
    mono_calls = !mono;
    dead_invokes = !dead;
    binary_size = !size;
    flows = !flows;
    instantiated_types = List.length (Engine.instantiated_types e);
    degraded = (Engine.stats e).Engine.degraded;
    budget_trips = (Engine.stats e).Engine.budget_trips;
    tasks = (Engine.stats e).Engine.tasks_processed;
    dedup_hits = Engine.dedup_hits (Engine.stats e);
  }

let pp ppf m =
  Format.fprintf ppf
    "@[<v>reachable methods: %d@,type checks:      %d@,null checks:      \
     %d@,prim checks:      %d@,poly calls:       %d@,mono calls:       \
     %d@,dead invokes:     %d@,binary size:      %d insns@,flows:            \
     %d@,instantiated:     %d types@,tasks:            %d@,dedup hits:       \
     %d@,degraded:         %s@]"
    m.reachable_methods m.type_checks m.null_checks m.prim_checks m.poly_calls
    m.mono_calls m.dead_invokes m.binary_size m.flows m.instantiated_types
    m.tasks m.dedup_hits
    (if m.degraded then
       Printf.sprintf "yes (%d budget trip%s)" m.budget_trips
         (if m.budget_trips = 1 then "" else "s")
     else "no")
