(** The reduced product of the flat constant lattice {!Pval} and the
    interval domain {!Interval} — the primitive component a [Vstate]
    carries when the analysis runs [--pval product] (and, degenerately,
    the singleton forms it carries under [--pval flat]).

    Every value of type {!t} is *reduced* (canonical):
    - if either component is bottom, both are ([{Bot; Bot}] = {!bot});
    - if the interval is a singleton [{n}], the constant is [Const n];
    - if the constant is [Const n], the interval is exactly [{n}].

    So a proper value is either [(Const n, {n})] or
    [(Top, non-singleton interval)].  {!reduce} is the only
    canonicalizing constructor; all operations route through it, which
    keeps {!equal} structural and {!leq} componentwise-sound. *)

type t = private { c : Pval.t; itv : Interval.t }

(** Arithmetic operators, mirroring the IR's [Bl.arith_op]. *)
type binop = Add | Sub | Mul | Div | Rem

(** Relations for backward narrowing (equality and disequality are
    handled by {!meet} and {!remove_const}). *)
type rel = Lt | Le | Gt | Ge

val bot : t
val top : t
val const : int -> t

(** Canonicalize a component pair (see the module doc). *)
val reduce : Pval.t -> Interval.t -> t

(** [of_interval i] = [reduce Top i]. *)
val of_interval : Interval.t -> t

val is_bot : t -> bool
val is_top : t -> bool
val as_const : t -> int option
val mem : int -> t -> bool
val equal : t -> t -> bool
val leq : t -> t -> bool

val join : t -> t -> t
(** Least upper bound; returns one of its arguments physically when the
    join equals it, so callers can cheaply detect no-change. *)

val meet : t -> t -> t

val widen : t -> t -> t
(** [widen old next]: componentwise (flat join × interval widening),
    then reduced.  Stabilizes every ascending chain. *)

val arith : binop -> t -> t -> t
(** Forward transfer, matching the concrete interpreter: exact native
    arithmetic on constants, interval transfer otherwise; division or
    remainder by a definite zero is {!bot}. *)

val narrow : rel -> t -> t -> t
(** [narrow r l rv]: the part of [l] that can stand in relation [r]
    with at least one element of [rv] — the backward transfer a
    predicate filter applies to the left operand of [l r rv]. *)

val remove_const : t -> int -> t
(** Disequality narrowing: [remove_const v n] drops [n] from [v] when
    the representation allows (singleton kill or endpoint trim). *)

val pp : Format.formatter -> t -> unit
