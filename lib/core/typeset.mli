(** Compact immutable sets of class ids — the object part of the
    value-state lattice (the subset lattice [S = (2^T, ⊆)] of
    Appendix B.2), implemented as normalized bit vectors.

    The special [null] type participates as bit 0 (its reserved class id in
    {!Skipflow_ir.Program}). *)

type t

val empty : t
val is_empty : t -> bool
val singleton : int -> t
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t
val union : t -> t -> t

val union_unshared : t -> t -> t
(** Like {!union} but always materializes a fresh vector when both
    operands are non-empty — the pre-sharing implementation, used by the
    reference engine so its cost profile stays faithful to the historical
    baseline. *)

val inter : t -> t -> t

val diff : t -> t -> t
(** [diff a b] is [a \ b]. *)

val equal : t -> t -> bool
(** Set equality (representations are normalized, so this is structural). *)

val subset : t -> t -> bool
(** [subset a b] iff [a ⊆ b]. *)

val disjoint : t -> t -> bool
(** [disjoint a b] iff [a ∩ b = ∅].

    The binary operations ({!union}, {!inter}, {!diff}) return one of
    their arguments physically unchanged whenever it already is the
    result, so no-op joins and filters — the common case near the fixed
    point — allocate nothing. *)

val cardinal : t -> int
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val elements : t -> int list
(** Members in increasing order. *)

val of_list : int list -> t

val hash : t -> int
(** Allocation-free; consistent with {!equal} (normalized representation). *)

val pp : Format.formatter -> t -> unit

(** {2 Word-level primitives (exposed for the unit tests)} *)

val popcount_word : int -> int
(** Number of set bits in one machine word (parallel-bit SWAR counting on
    63-bit ints, naive shift loop otherwise). *)

val popcount_naive : int -> int
(** Reference implementation for differential testing. *)

(** {2 Typed wrappers over class ids} *)

val class_mem : Skipflow_ir.Ids.Class.t -> t -> bool
val class_add : Skipflow_ir.Ids.Class.t -> t -> t
val class_singleton : Skipflow_ir.Ids.Class.t -> t
val of_classes : Skipflow_ir.Ids.Class.t list -> t
val classes : t -> Skipflow_ir.Ids.Class.t list
val iter_classes : (Skipflow_ir.Ids.Class.t -> unit) -> t -> unit

val null_bit : t
(** The singleton set containing only the [null] member (bit 0). *)

val has_null : t -> bool
