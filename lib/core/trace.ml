(** Solver observability (see the interface for the design contract).

    Cost model, enforced here:

    - counters are mutable int boxes — an increment is a load, an add, a
      store; no allocation, no branching on trace state;
    - [with_phase] / [timed] test one boolean before touching a clock;
    - [event] tests one boolean before allocating anything.

    Time is kept as integer microseconds throughout so every document this
    module prints stays within the integer-only JSON subset the findings
    parser accepts. *)

(* ------------------------------ counters ------------------------------ *)

type counter = { c_name : string; mutable c_value : int }

let counter_name c = c.c_name
let value c = c.c_value
let incr c = c.c_value <- c.c_value + 1

let add c n =
  if n < 0 then invalid_arg "Trace.add: counters are monotonic (negative delta)";
  c.c_value <- c.c_value + n

let record_max c n = if n > c.c_value then c.c_value <- n

(* ------------------------------- phases ------------------------------- *)

type phase = {
  ph_name : string;
  ph_depth : int;
  ph_wall_us : int;
  ph_cpu_us : int;
  ph_count : int;
  ph_first_start_us : int;
}

(* internal accumulating representation *)
type phase_acc = {
  pa_name : string;
  pa_depth : int;
  mutable pa_wall_us : int;
  mutable pa_cpu_us : int;
  mutable pa_count : int;
  pa_first_start_us : int;
}

type event = {
  ev_ts_us : int;
  ev_kind : string;
  ev_flow : int;
  ev_meth : int;
  ev_arg : int;
}

type t = {
  tr_timers : bool;
  tr_events : bool;
  tr_max_events : int;
  tr_t0_wall : float;  (** wall clock at creation, seconds *)
  counters_tbl : (string, counter) Hashtbl.t;
  mutable counters_rev : counter list;
  phases_tbl : (string * int, phase_acc) Hashtbl.t;
  mutable phases_rev : phase_acc list;
  mutable depth : int;
  mutable events_rev : event list;
  mutable n_events : int;
  mutable n_dropped : int;
}

let create ?(timers = false) ?(events = false) ?(max_events = 1_000_000) () =
  {
    tr_timers = timers;
    tr_events = events;
    tr_max_events = max_events;
    tr_t0_wall = Unix.gettimeofday ();
    counters_tbl = Hashtbl.create 32;
    counters_rev = [];
    phases_tbl = Hashtbl.create 16;
    phases_rev = [];
    depth = 0;
    events_rev = [];
    n_events = 0;
    n_dropped = 0;
  }

let timers_on t = t.tr_timers
let events_on t = t.tr_events

let counter t name =
  match Hashtbl.find_opt t.counters_tbl name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace t.counters_tbl name c;
      t.counters_rev <- c :: t.counters_rev;
      c

let counters t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.rev_map (fun c -> (c.c_name, c.c_value)) t.counters_rev)

(* Wall-clock deltas are clamped at zero: [gettimeofday] is not
   monotone (NTP steps, VM migrations), and a backwards jump must not
   produce negative durations — the JSON consumers treat the integer-us
   fields as unsigned, and [add] rejects negative deltas by contract. *)
let elapsed_us since =
  int_of_float (Float.max 0.0 (Unix.gettimeofday () -. since) *. 1e6)

let now_us t = elapsed_us t.tr_t0_wall

let phase_acc t name =
  let key = (name, t.depth) in
  match Hashtbl.find_opt t.phases_tbl key with
  | Some p -> p
  | None ->
      let p =
        {
          pa_name = name;
          pa_depth = t.depth;
          pa_wall_us = 0;
          pa_cpu_us = 0;
          pa_count = 0;
          pa_first_start_us = now_us t;
        }
      in
      Hashtbl.replace t.phases_tbl key p;
      t.phases_rev <- p :: t.phases_rev;
      p

let with_phase t name f =
  if not t.tr_timers then f ()
  else begin
    let p = phase_acc t name in
    let w0 = Unix.gettimeofday () and c0 = Sys.time () in
    t.depth <- t.depth + 1;
    Fun.protect
      ~finally:(fun () ->
        t.depth <- t.depth - 1;
        p.pa_wall_us <- p.pa_wall_us + elapsed_us w0;
        p.pa_cpu_us <-
          p.pa_cpu_us + int_of_float (Float.max 0.0 (Sys.time () -. c0) *. 1e6);
        p.pa_count <- p.pa_count + 1)
      f
  end

let phases t =
  List.rev_map
    (fun p ->
      {
        ph_name = p.pa_name;
        ph_depth = p.pa_depth;
        ph_wall_us = p.pa_wall_us;
        ph_cpu_us = p.pa_cpu_us;
        ph_count = p.pa_count;
        ph_first_start_us = p.pa_first_start_us;
      })
    t.phases_rev

let timed t c f =
  if not t.tr_timers then f ()
  else begin
    let w0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> add c (elapsed_us w0)) f
  end

(* ------------------------------- events ------------------------------- *)

let event t ~kind ?(flow = -1) ?(meth = -1) ?(arg = 0) () =
  if t.tr_events then begin
    if t.n_events >= t.tr_max_events then t.n_dropped <- t.n_dropped + 1
    else begin
      t.events_rev <-
        { ev_ts_us = now_us t; ev_kind = kind; ev_flow = flow; ev_meth = meth;
          ev_arg = arg }
        :: t.events_rev;
      t.n_events <- t.n_events + 1
    end
  end

let events t = List.rev t.events_rev
let event_count t = t.n_events
let dropped_events t = t.n_dropped

(* memory-pressure relief: the buffer is the only unbounded-ish
   allocation a trace holds.  Dropped events are still accounted. *)
let drop_events t =
  t.n_dropped <- t.n_dropped + t.n_events;
  t.n_events <- 0;
  t.events_rev <- []

let count_by key_of t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      match key_of ev with
      | None -> ()
      | Some k ->
          Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    t.events_rev;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl []
  |> List.sort (fun (ka, a) (kb, b) ->
         match Int.compare b a with 0 -> compare ka kb | c -> c)

let by_kind t = count_by (fun ev -> Some ev.ev_kind) t

let by_flow t =
  count_by (fun ev -> if ev.ev_flow >= 0 then Some ev.ev_flow else None) t

let by_meth t =
  count_by (fun ev -> if ev.ev_meth >= 0 then Some ev.ev_meth else None) t

(* ---------------------------- serialization --------------------------- *)

let schema_version = 1

let default_meth_name id = Printf.sprintf "m%d" id

(* Minimal JSON string escaping, mirroring the findings emitter: phase and
   counter names are plain identifiers, but method names come from user
   source, so escape defensively. *)
let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | ch when Char.code ch < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.add_char b '"'

let jsonl_string ?(meth_name = default_meth_name) t =
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "{\"schema_version\": %d, \"kind\": \"header\", \"format\": \"skipflow-trace\", \"clock\": \"us\", \"events\": %d, \"dropped\": %d}\n"
    schema_version t.n_events t.n_dropped;
  List.iter
    (fun p ->
      Buffer.add_string b "{\"kind\": \"phase\", \"name\": ";
      escape b p.ph_name;
      Printf.bprintf b
        ", \"depth\": %d, \"wall_us\": %d, \"cpu_us\": %d, \"count\": %d, \"start_us\": %d}\n"
        p.ph_depth p.ph_wall_us p.ph_cpu_us p.ph_count p.ph_first_start_us)
    (phases t);
  List.iter
    (fun (name, v) ->
      Buffer.add_string b "{\"kind\": \"counter\", \"name\": ";
      escape b name;
      Printf.bprintf b ", \"value\": %d}\n" v)
    (counters t);
  List.iter
    (fun ev ->
      Printf.bprintf b "{\"kind\": \"event\", \"ev\": ";
      escape b ev.ev_kind;
      Printf.bprintf b ", \"ts_us\": %d, \"flow\": %d, \"meth\": " ev.ev_ts_us
        ev.ev_flow;
      if ev.ev_meth >= 0 then escape b (meth_name ev.ev_meth)
      else Buffer.add_string b "null";
      Printf.bprintf b ", \"meth_id\": %d, \"arg\": %d}\n" ev.ev_meth ev.ev_arg)
    (events t);
  Buffer.contents b

(* Chrome trace_event object format.  Perfetto and chrome://tracing accept
   an object with a "traceEvents" array and ignore unknown top-level keys,
   which is where the schema version and the counter dump go.  Phases
   become complete ("X") events; aggregated multi-entry phases are emitted
   as one span covering their total wall time, anchored at first entry.
   Solver events become instants ("i") with thread scope. *)
let chrome_string ?(meth_name = default_meth_name) t =
  let b = Buffer.create 4096 in
  Printf.bprintf b "{\n  \"schema_version\": %d,\n" schema_version;
  Buffer.add_string b "  \"displayTimeUnit\": \"ms\",\n";
  Buffer.add_string b "  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string b ", ";
      escape b name;
      Printf.bprintf b ": %d" v)
    (counters t);
  Buffer.add_string b "},\n";
  Buffer.add_string b "  \"traceEvents\": [\n";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b "    "
  in
  List.iter
    (fun p ->
      sep ();
      Buffer.add_string b "{\"name\": ";
      escape b p.ph_name;
      Printf.bprintf b
        ", \"ph\": \"X\", \"ts\": %d, \"dur\": %d, \"pid\": 1, \"tid\": %d, \"args\": {\"count\": %d, \"cpu_us\": %d}}"
        p.ph_first_start_us p.ph_wall_us (1 + p.ph_depth) p.ph_count p.ph_cpu_us)
    (phases t);
  List.iter
    (fun ev ->
      sep ();
      Buffer.add_string b "{\"name\": ";
      escape b ev.ev_kind;
      Printf.bprintf b
        ", \"ph\": \"i\", \"ts\": %d, \"pid\": 1, \"tid\": 1, \"s\": \"t\", \"args\": {\"flow\": %d, \"meth\": "
        ev.ev_ts_us ev.ev_flow;
      if ev.ev_meth >= 0 then escape b (meth_name ev.ev_meth)
      else Buffer.add_string b "null";
      Printf.bprintf b ", \"arg\": %d}}" ev.ev_arg)
    (events t);
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* Exports go through the durable-IO layer: atomic tmp+rename (a crash
   mid-export never leaves a half-written trace for tooling to choke
   on), durability per [--durability], and fault-injection coverage. *)
let write_jsonl ?meth_name t path =
  Io.write_file_atomic ~path (jsonl_string ?meth_name t)

let write_chrome ?meth_name t path =
  Io.write_file_atomic ~path (chrome_string ?meth_name t)

(* ----------------------------- pretty print --------------------------- *)

let pp_phases ppf t =
  Format.fprintf ppf "@[<v>%-24s %10s %10s %7s@," "phase" "wall[ms]" "cpu[ms]" "count";
  List.iter
    (fun p ->
      let indent = String.make (2 * p.ph_depth) ' ' in
      Format.fprintf ppf "%-24s %10.3f %10.3f %7d@,"
        (indent ^ p.ph_name)
        (float_of_int p.ph_wall_us /. 1000.)
        (float_of_int p.ph_cpu_us /. 1000.)
        p.ph_count)
    (phases t);
  Format.fprintf ppf "@]"

let pp_counters ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (name, v) -> Format.fprintf ppf "%-32s %12d@," name v) (counters t);
  Format.fprintf ppf "@]"
