(** The lattice [ℙ] of primitive values (paper, Figure 6):

    {v
              Any
         /  /  |  \  \
      ... -1   0   1 ...
         \  \  |  /  /
             Empty
    v}

    Only concrete constants, [Empty], and [Any] are modelled — no intervals
    or sets; the join of two distinct constants is immediately [Any]
    (Section 3, "Abstractions for Primitive Values").  Booleans are the
    constants 1 ([true]) and 0 ([false]). *)

type t = Bot  (** Empty *) | Const of int | Top  (** Any *)

let equal a b =
  match (a, b) with
  | Bot, Bot | Top, Top -> true
  | Const x, Const y -> Int.equal x y
  | (Bot | Top | Const _), _ -> false

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Const x, Const y -> if Int.equal x y then a else Top

let leq a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Top -> true
  | Const x, Const y -> Int.equal x y
  | (Top | Const _), _ -> false

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Top, x | x, Top -> x
  | Const x, Const y -> if Int.equal x y then a else Bot

let is_bot = function Bot -> true | Const _ | Top -> false

(** Which primitive lattice the analysis runs: the paper's flat
    constants ([Flat], Figure 6) or the reduced product of constants
    and intervals ([Product], {!Prim}).  Threaded through
    {!Config.t}. *)
type mode = Flat | Product

let equal_mode (a : mode) (b : mode) = a = b
let mode_name = function Flat -> "flat" | Product -> "product"

let pp ppf = function
  | Bot -> Format.pp_print_string ppf "Empty"
  | Const n -> Format.pp_print_int ppf n
  | Top -> Format.pp_print_string ppf "Any"
