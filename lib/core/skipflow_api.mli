(** The stable library facade for embedding the SkipFlow analysis.

    This is the one entry point external consumers (the CLI, the benchmark
    harness, the examples) are expected to use: compile a MiniJava source,
    resolve roots, solve to the fixed point, and collect metrics — with
    every failure returned as a typed {!error}.  No exception crosses this
    boundary: [Not_found], [Failure], frontend errors and I/O errors all
    map into the [result].

    Observability is threaded through: pass a {!Trace.t} created with
    timers and/or events to get per-phase wall/CPU spans
    ([parse]/[typecheck]/[lower]/[roots]/[solve]/[metrics]), the counter
    registry, and the solver event stream (see {!Trace}). *)

(** Re-exports, so consumers need only this library for the common path. *)

module Config = Skipflow_core.Config
module Trace = Skipflow_core.Trace
module Engine = Skipflow_core.Engine
module Metrics = Skipflow_core.Metrics
module Analysis = Skipflow_core.Analysis
module Budget = Skipflow_core.Budget
module Report = Skipflow_core.Report
module Frontend = Skipflow_frontend.Frontend
module Diag = Skipflow_frontend.Diag

(** {1 Inputs} *)

type source = [ `File of string | `Text of string ]
(** A MiniJava program: a path to a [.mj] file, or the source text
    itself. *)

(** {1 Errors} *)

type error =
  | Io_error of { path : string; message : string }
      (** the source file could not be read *)
  | Compile_error of {
      file : string option;  (** the path, when the source was [`File] *)
      src : string;  (** the source text, for caret rendering *)
      diags : Diag.t list;  (** accumulated, position-carrying diagnostics *)
    }
  | Unknown_root of string  (** a root name did not resolve; the message
                                names it *)
  | No_main
      (** no roots were given and the program has no static [main] *)
  | Internal_error of string
      (** any unexpected exception, captured at the boundary *)

val error_message : error -> string
(** A one-line human-readable rendering (compile errors are summarized;
    use {!render_error} for carets). *)

val render_error : Format.formatter -> error -> unit
(** Full rendering: compile errors as caret diagnostics, everything else
    as [error: <message>]. *)

val exit_code_of_error : error -> int
(** The CLI exit-code contract: input errors ({!Io_error},
    {!Compile_error}, {!Unknown_root}, {!No_main}) map to 2, internal
    errors to 1.  (Exit 3 — degraded results not opted into — is a policy
    of the caller, applied to an [Ok] summary via
    {!Metrics.t}[.degraded].) *)

val error_kind : error -> string
(** A stable machine-readable tag for each variant — ["io_error"],
    ["compile_error"], ["unknown_root"], ["no_main"],
    ["internal_error"] — used by the CLI's JSON error objects and the
    batch journal. *)

val protect : (unit -> ('a, error) result) -> ('a, error) result
(** Run [f] under the facade's exception boundary: any exception except
    [Stack_overflow] / [Out_of_memory] becomes {!Internal_error}.  This is
    the same guard every entry point below runs under, exposed so
    long-lived embedders (the serve daemon) can extend the
    no-exception-crosses-the-boundary guarantee to their own
    per-request work. *)

(** {1 Results} *)

type summary = {
  config : Config.t;
  engine : Engine.t;  (** the solved engine (reachable set, flow states) *)
  outcome : Engine.outcome;
      (** {!Engine.Paused} only under [on_budget:`Pause]; resume with
          {!resume_snapshot} *)
  metrics : Metrics.t;
  trace : Trace.t;  (** counters always; phases/events when enabled *)
  reachable : string list;  (** qualified reachable-method names, in
                                discovery order *)
  wall_s : float;  (** wall-clock time of compile + solve + metrics *)
  cpu_s : float;  (** CPU time of the same span *)
}

(** {1 Entry points} *)

val compile :
  ?trace:Trace.t -> source -> (Skipflow_ir.Program.t * string, error) result
(** Compile a source to a lowered, validated program (returned with the
    source text, for rendering).  When [trace] has timers, records the
    [parse] / [typecheck] / [lower] phases. *)

val resolve_roots :
  Skipflow_ir.Program.t ->
  string list ->
  (Skipflow_ir.Program.meth list, error) result
(** Resolve ["Class.method"] root names; an empty list selects the
    conventional static [main] ({!No_main} if there is none). *)

val analyze :
  ?config:Config.t ->
  ?mode:Engine.mode ->
  ?random_order:int ->
  ?on_budget:[ `Degrade | `Pause ] ->
  ?trace:Trace.t ->
  source:source ->
  roots:string list ->
  unit ->
  (summary, error) result
(** The full pipeline: {!compile}, {!resolve_roots}, solve, metrics.
    Defaults: [config] {!Config.skipflow}, [mode] {!Engine.Dedup}, a
    fresh quiet trace.  [on_budget] is {!Engine.run}'s budget-trip
    reaction: [`Degrade] (default) or [`Pause] (the summary then carries
    [outcome = Paused snapshot]).  [config.jobs > 1] engages the sharded
    parallel solver (see {!Engine.run}) — same fixed point, flow by
    flow, so every facade client (CLI, serve, batch, bench) gets the
    knob with no API change.  (The trailing [unit] makes the optional
    arguments erasable — all other parameters are labeled.) *)

val analyze_program :
  ?config:Config.t ->
  ?mode:Engine.mode ->
  ?random_order:int ->
  ?on_budget:[ `Degrade | `Pause ] ->
  ?trace:Trace.t ->
  Skipflow_ir.Program.t ->
  roots:Skipflow_ir.Program.meth list ->
  (summary, error) result
(** {!analyze} for an already-lowered program with resolved root methods
    (workload generators hand these out directly). *)

val resume_snapshot :
  ?budget:Budget.t ->
  ?random_order:int ->
  ?on_budget:[ `Degrade | `Pause ] ->
  ?trace:Trace.t ->
  string ->
  (summary, error) result
(** Continue a paused solve from a {!Engine.Paused} payload.  [budget]
    (commonly {!Budget.unlimited}) replaces the snapshotted budget so the
    resumed run can finish; an undecodable payload is an
    {!Internal_error}.  The resumed fixed point is identical, flow by
    flow, to an uninterrupted run's. *)
