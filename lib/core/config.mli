(** Analysis configurations: SkipFlow, the baseline PTA the paper compares
    against, and the two single-ingredient ablations.  See the module body
    for the exact semantics of each feature bit. *)

type t = {
  predicates : bool;
      (** when false every flow is enabled at creation — the
          flow-insensitive baseline behaviour *)
  primitives : bool;
      (** when false primitive constants are abstracted to [Any], so
          comparison filters degenerate to pass-through *)
  pval : Pval.mode;
      (** the primitive lattice [primitives] tracking runs on:
          [Pval.Flat] is the paper's constant lattice (the default in
          every preset); [Pval.Product] runs the reduced product
          constants × intervals, so comparison filters narrow ranges
          and arithmetic produces intervals instead of [Any] *)
  saturation : int option;
      (** optional type-set growth cutoff (Wimmer et al. 2024); [None]
          matches the paper's evaluated configuration *)
  seed_root_params : bool;
      (** seed root-method object parameters with all instantiated
          subtypes of their declared type (the Section 5 reflection/JNI
          policy) *)
  budget : Budget.t;
      (** resource caps for {!Engine.run}; when a cap trips the engine
          switches to degradation mode — saturate object flows, widen
          primitive flows to [Any], and finish at a sound but coarser
          fixed point — instead of aborting *)
  jobs : int;
      (** worker domains for the solve; 1 (the default in every preset)
          runs the sequential engine unchanged.  With [jobs > 1] the
          deduplicated engine shards the PVPG by method ({!Shard}) and
          drains in parallel — same fixed point, flow by flow *)
}

val skipflow : t
(** The paper's contribution: predicates + primitives. *)

val pta : t
(** The baseline type-based flow-insensitive context-insensitive points-to
    analysis of the evaluation. *)

val predicates_only : t
val primitives_only : t
val name : t -> string
val pp : Format.formatter -> t -> unit
