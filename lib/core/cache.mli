(** A crash-safe on-disk result cache for analysis summaries.

    Entries are keyed by a content hash of (source bytes, configuration,
    run scope, schema version) — see {!key} — so a cache hit can only
    serve a result computed from byte-identical inputs under an
    identical configuration {e and} identical run-scoped inputs (analysis
    roots, engine mode) by a compatible build.  The stored value is
    opaque to this module (the CLI stores its analysis-summary JSON).

    Robustness contract, exercised by the crash-injection fuzz matrix:

    - writes are atomic ({!Snapshot.write}: tmp file + rename), so a
      crash mid-store leaves at worst a stray [.tmp.*] file, never a
      half-written entry;
    - a corrupt entry (truncated, bit-flipped, foreign, or of a stale
      schema version) is detected by the {!Snapshot} container checks,
      {e quarantined} (moved aside into [quarantine/]) and reported as a
      miss — never an exception, never a wrong hit; the quarantine
      directory itself is bounded ({!sweep_quarantine}) so repeated
      corruption cannot fill the disk;
    - lookups and stores count into the owning {!Trace.t} as
      [cache.hit] / [cache.miss] / [cache.evict] / [cache.corrupt]. *)

type t

val create : ?trace:Trace.t -> ?max_entries:int -> string -> t
(** [create dir] opens (creating directories as needed) a cache rooted at
    [dir].  [max_entries] (default 512) caps the number of entries;
    {!store} evicts the least-recently-used entries beyond it.  [trace]
    receives the [cache.*] counters. *)

val dir : t -> string

val quarantine_dir : t -> string
(** Where corrupt entries are moved ([<dir>/quarantine]). *)

val sweep_quarantine : t -> unit
(** Bound the quarantine directory: drop entries older than seven days,
    then the oldest beyond 64 (newest kept).  Runs automatically at
    {!create} and after every quarantine; exposed for tests. *)

val key : config:Config.t -> scope:string -> source:string -> string
(** The content hash (hex): digest of the source bytes, every
    configuration field (including the budget — a degraded result must
    not be served to an unlimited run), the cache schema version, and
    [scope] — any run input the configuration does not carry but the
    result depends on (the CLI folds in the resolved analysis roots and
    the engine mode, so the same source analyzed from different roots
    never shares an entry).  Pass [""] when no such input exists. *)

val entry_path : t -> string -> string
(** The file a key is stored at (exposed so tests can corrupt it). *)

val find : t -> string -> string option
(** [find t k] returns the stored value, or [None] on a miss.  Corrupt
    entries are quarantined and reported as misses.  A hit refreshes the
    entry's LRU clock. *)

val store : t -> string -> string -> (unit, Snapshot.error) result
(** [store t k v] atomically persists [v] under [k], then evicts
    least-recently-used entries past [max_entries].  Errors are reported
    (and counted) but leave the cache consistent. *)
