(* Integer intervals with infinite bounds (see the interface).  The
   encoding keeps one invariant: in [Itv { lo; hi }], whenever both
   bounds are finite, [lo <= hi].  [of_bounds] is the only normalizing
   constructor; everything else routes through it. *)

type t = Bot | Itv of { lo : int option; hi : int option }

let bot = Bot
let top = Itv { lo = None; hi = None }
let singleton n = Itv { lo = Some n; hi = Some n }

let of_bounds lo hi =
  match (lo, hi) with
  | Some l, Some h when l > h -> Bot
  | _ -> Itv { lo; hi }

let is_bot t = t = Bot
let is_top = function Itv { lo = None; hi = None } -> true | _ -> false

let mem n = function
  | Bot -> false
  | Itv { lo; hi } ->
      (match lo with None -> true | Some l -> l <= n)
      && (match hi with None -> true | Some h -> n <= h)

let as_const = function
  | Itv { lo = Some l; hi = Some h } when l = h -> Some l
  | _ -> None

let equal (a : t) (b : t) = a = b

(* Bound orderings: a lower bound of [None] is -inf, an upper bound of
   [None] is +inf.  The [lo_*] helpers compare lower bounds, [hi_*]
   upper bounds — they differ only in which side [None] dominates. *)
let lo_le a b =
  match (a, b) with
  | None, _ -> true
  | _, None -> false
  | Some x, Some y -> x <= y

let hi_le a b =
  match (a, b) with
  | _, None -> true
  | None, _ -> false
  | Some x, Some y -> x <= y

let lo_min a b = if lo_le a b then a else b
let lo_max a b = if lo_le a b then b else a
let hi_min a b = if hi_le a b then a else b
let hi_max a b = if hi_le a b then b else a

let leq a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | Itv a, Itv b -> lo_le b.lo a.lo && hi_le a.hi b.hi

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Itv ia, Itv ib ->
      if leq a b then b
      else if leq b a then a
      else Itv { lo = lo_min ia.lo ib.lo; hi = hi_max ia.hi ib.hi }

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv ia, Itv ib ->
      if leq a b then a
      else if leq b a then b
      else of_bounds (lo_max ia.lo ib.lo) (hi_min ia.hi ib.hi)

let widen a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Itv ia, Itv ib ->
      let lo = if lo_le ia.lo ib.lo then ia.lo else None in
      let hi = if hi_le ib.hi ia.hi then ia.hi else None in
      Itv { lo; hi }

(* ------------------------- threshold snapping -------------------------

   Non-singleton transfer results round their bounds outward to the
   ladder T = [-64, 64] ∪ {±2^k} ∪ {min_int, ±inf}.  T is finite and
   snapping is monotone, so the arith transfer stays monotone and every
   chain of joined transfer outputs climbs T at most ~130 times before
   hitting infinity — termination without per-flow widening state. *)

(* Smallest power of two >= x, for x > 64; [None] past the largest
   representable power. *)
let pow2_ceil x =
  let rec go p = if p >= x then Some p else if p > max_int / 2 then None else go (p * 2) in
  go 64

(* Largest power of two <= x, for x > 64. *)
let pow2_floor x =
  let rec go p = if p > max_int / 2 || p * 2 > x then p else go (p * 2) in
  go 64

let snap_up x =
  if x >= -64 && x <= 64 then Some x
  else if x > 64 then pow2_ceil x
  else if x = min_int then Some min_int
  else Some (-pow2_floor (-x))

let snap_down x =
  if x >= -64 && x <= 64 then Some x
  else if x > 64 then Some (pow2_floor x)
  else if x = min_int then Some min_int
  else match pow2_ceil (-x) with Some p -> Some (-p) | None -> None

let snap_lo = function None -> None | Some x -> snap_down x
let snap_hi = function None -> None | Some x -> snap_up x

(* ------------------------------ arithmetic --------------------------- *)

(* Bound arithmetic signals overflow instead of wrapping: a wrapped
   concrete result lands at the far end of the integer range, so a
   partially-overflowed interval would be unsound — the whole result
   degrades to [top]. *)
exception Overflow

let add_b x y =
  match (x, y) with
  | None, _ | _, None -> None
  | Some a, Some b ->
      let s = a + b in
      if (b > 0 && s < a) || (b < 0 && s > a) then raise Overflow else Some s

let sub_b x y =
  match (x, y) with
  | None, _ | _, None -> None
  | Some a, Some b ->
      let s = a - b in
      if (b > 0 && s > a) || (b < 0 && s < a) then raise Overflow else Some s

let add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv ia, Itv ib -> (
      match (as_const a, as_const b) with
      | Some x, Some y -> singleton (x + y)
      | _ -> (
          try of_bounds (snap_lo (add_b ia.lo ib.lo)) (snap_hi (add_b ia.hi ib.hi))
          with Overflow -> top))

let sub a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv ia, Itv ib -> (
      match (as_const a, as_const b) with
      | Some x, Some y -> singleton (x - y)
      | _ -> (
          try of_bounds (snap_lo (sub_b ia.lo ib.hi)) (snap_hi (sub_b ia.hi ib.lo))
          with Overflow -> top))

let mul a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | _ -> (
      match (as_const a, as_const b) with
      | Some x, Some y -> singleton (x * y)
      | _ -> (
          match (a, b) with
          | Itv { lo = Some la; hi = Some ha }, Itv { lo = Some lb; hi = Some hb }
            -> (
              let mul_chk x y =
                if (x = -1 && y = min_int) || (y = -1 && x = min_int) then
                  raise Overflow;
                let p = x * y in
                if x <> 0 && p / x <> y then raise Overflow;
                p
              in
              try
                let c1 = mul_chk la lb in
                let c2 = mul_chk la hb in
                let c3 = mul_chk ha lb in
                let c4 = mul_chk ha hb in
                let mn = min (min c1 c2) (min c3 c4) in
                let mx = max (max c1 c2) (max c3 c4) in
                of_bounds (snap_lo (Some mn)) (snap_hi (Some mx))
              with Overflow -> top)
          | _ -> top))

(* Division and remainder match the interpreter: definite zero divisor
   means every concrete run halts with [Div_by_zero] before a value
   flows, so the abstract result is [Bot].  A divisor that merely
   *contains* zero still has non-halting runs — those degrade to
   [top].  [min_int / -1] (and [mod]) is a hardware trap on most
   targets; degrade rather than evaluate it. *)
let div a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | _ -> (
      match as_const b with
      | Some 0 -> Bot
      | Some d -> (
          match a with
          | Itv { lo = Some la; hi = Some ha } ->
              if d = -1 && la = min_int then top
              else
                let q1 = la / d and q2 = ha / d in
                if la = ha then singleton q1
                else of_bounds (snap_lo (Some (min q1 q2))) (snap_hi (Some (max q1 q2)))
          | _ -> top)
      | None -> top)

let rem a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | _ -> (
      match as_const b with
      | Some 0 -> Bot
      | Some d ->
          if d = 1 || d = -1 then singleton 0
          else if d = min_int then top
          else (
            match as_const a with
            | Some x -> singleton (x mod d)
            | None ->
                let m = abs d - 1 in
                let nonneg =
                  match a with Itv { lo = Some l; _ } -> l >= 0 | _ -> false
                in
                of_bounds
                  (snap_lo (Some (if nonneg then 0 else -m)))
                  (snap_hi (Some m)))
      | None -> top)

(* --------------------------- backward narrowing ---------------------- *)

(* "Exists" semantics: the integers that can stand in the relation with
   at least one element of [r].  An infinite bound on the relevant side
   of [r] constrains nothing. *)

let implied_lt = function
  | Bot -> Bot
  | Itv { hi = None; _ } -> top
  | Itv { hi = Some h; _ } ->
      if h = min_int then Bot else Itv { lo = None; hi = Some (h - 1) }

let implied_le = function
  | Bot -> Bot
  | Itv { hi; _ } -> Itv { lo = None; hi }

let implied_gt = function
  | Bot -> Bot
  | Itv { lo = None; _ } -> top
  | Itv { lo = Some l; _ } ->
      if l = max_int then Bot else Itv { lo = Some (l + 1); hi = None }

let implied_ge = function
  | Bot -> Bot
  | Itv { lo; _ } -> Itv { lo; hi = None }

let remove n t =
  match t with
  | Bot -> Bot
  | Itv { lo; hi } -> (
      match as_const t with
      | Some c -> if c = n then Bot else t
      | None ->
          (* non-singleton: a trimmed endpoint cannot overflow because
             the other bound lies strictly beyond it *)
          let lo = if lo = Some n then Some (n + 1) else lo in
          let hi = if hi = Some n then Some (n - 1) else hi in
          of_bounds lo hi)

let pp ppf = function
  | Bot -> Format.pp_print_string ppf "[]"
  | Itv { lo; hi } ->
      let bound ppf inf = function
        | None -> Format.pp_print_string ppf inf
        | Some n -> Format.pp_print_int ppf n
      in
      Format.fprintf ppf "[%a,%a]"
        (fun ppf -> bound ppf "-inf")
        lo
        (fun ppf -> bound ppf "+inf")
        hi
