(** The fixed-point propagation engine: an operational implementation of
    the inference rules of Figure 15 (Appendix C).

    The engine maintains a FIFO worklist of three task kinds:

    - [Input (f, v)]: join [v] into [f]'s VS_in (the Propagate / Load /
      Store / Invoke-linking rules push values this way);
    - [Enable f]: mark [f] executable (the Predicate rule);
    - [Notify f]: re-run [f]'s flow-specific action because an observed
      flow's state changed (method resolution and linking for invokes,
      field linking for loads/stores, re-filtering for comparison filters).

    Methods become reachable ([ℝ] in the paper) when their PVPG is built:
    either as analysis roots or when an invoke links them.  Virtual invokes
    resolve every type in the receiver's value state with [Resolve] and link
    actual-argument flows to formal-parameter flows and the callee's return
    flow back to the invoke flow (which represents the returned value in the
    caller).

    All transfer functions are monotone over the finite-height lattice [𝕃],
    so the worklist drains to a unique fixed point regardless of task
    order. *)

open Skipflow_ir

type stats = {
  mutable tasks_processed : int;
  mutable use_edges : int;  (** counted at link time only *)
  mutable links : int;
  mutable max_queue : int;
  mutable live_flows : int;  (** flows created across all reachable PVPGs *)
  mutable budget_trips : int;  (** budget-cap trip events (0 or 1 per run) *)
  mutable degraded : bool;  (** a budget trip switched the run to degradation mode *)
  mutable first_trip : Budget.trip option;  (** which cap tripped first *)
}

type t = {
  prog : Program.t;
  config : Config.t;
  masks : Masks.t;
  queue : Edges.task Queue.t;
  graphs : Graph.method_graph Ids.Meth.Tbl.t;
  mutable reachable_order : Program.meth list;  (** reverse discovery order *)
  mutable roots : Ids.Meth.Set.t;  (** methods registered via {!add_root} *)
  field_flows : Flow.t Ids.Field.Tbl.t;
  all_inst : Flow.t Ids.Class.Tbl.t;
  all_inst_any : Flow.t;
      (** all instantiated types, regardless of declared type; feeds
          saturated flows *)
  mutable instantiated : Typeset.t;
  pred_on : Flow.t;
  stats : stats;
}

let always_on kind state =
  let f = Flow.make kind in
  f.Flow.enabled <- true;
  f.Flow.raw <- state;
  f.Flow.state <- state;
  f

let create prog config =
  ignore (Program.freeze prog);
  {
    prog;
    config;
    masks = Masks.compute prog;
    queue = Queue.create ();
    graphs = Ids.Meth.Tbl.create 256;
    reachable_order = [];
    roots = Ids.Meth.Set.empty;
    field_flows = Ids.Field.Tbl.create 64;
    all_inst = Ids.Class.Tbl.create 32;
    all_inst_any = always_on (Flow.All_instantiated Program.null_class) Vstate.empty;
    instantiated = Typeset.empty;
    pred_on = always_on Flow.Pred_on (Vstate.const 1);
    stats =
      {
        tasks_processed = 0;
        use_edges = 0;
        links = 0;
        max_queue = 0;
        live_flows = 0;
        budget_trips = 0;
        degraded = false;
        first_trip = None;
      };
  }

let emit t task = Queue.add task t.queue

(* ------------------------- global flows ------------------------------ *)

(** The global flow holding all instantiated subtypes of [c] (including
    types instantiated later).  Implements the "any instantiated subtype of
    the declared type" policy for root-method parameters (Section 5). *)
let all_inst_flow t (c : Ids.Class.t) =
  match Ids.Class.Tbl.find_opt t.all_inst c with
  | Some f -> f
  | None ->
      let init =
        Vstate.types (Typeset.inter t.instantiated (Masks.sub t.masks c))
      in
      let f = always_on (Flow.All_instantiated c) init in
      Ids.Class.Tbl.replace t.all_inst c f;
      f

(** Default value of a field before any store is observed: [null] for
    object fields, [0] for primitive fields (Java default initialization;
    needed for soundness with respect to the concrete interpreter). *)
let field_default t (fld : Program.field) =
  match fld.Program.f_ty with
  | Ty.Obj _ | Ty.Null -> Vstate.null
  | Ty.Int | Ty.Bool -> if t.config.Config.primitives then Vstate.const 0 else Vstate.any
  | Ty.Void -> Vstate.empty

let field_flow t (fid : Ids.Field.t) =
  match Ids.Field.Tbl.find_opt t.field_flows fid with
  | Some f -> f
  | None ->
      let fld = Program.field t.prog fid in
      let f = always_on (Flow.Field_state fid) (field_default t fld) in
      Ids.Field.Tbl.replace t.field_flows fid f;
      f

(* --------------------------- propagation ------------------------------ *)

let gen_value t (f : Flow.t) =
  match f.Flow.kind with
  | Flow.Source v -> v
  | Flow.Alloc c -> Vstate.of_class c
  | Flow.Phi_pred -> Vstate.const 1 (* reachability token *)
  | Flow.Return -> (
      (* A method with void return type still returns the predicate of the
         return instruction as an artificial value (Section 3). *)
      match f.Flow.meth with
      | Some m when Ty.equal (Program.meth t.prog m).Program.m_ret_ty Ty.Void ->
          Vstate.const 0
      | _ -> Vstate.empty)
  | _ -> Vstate.empty

let saturate_check t (f : Flow.t) (s : Vstate.t) =
  match (t.config.Config.saturation, s) with
  | Some cutoff, Vstate.Types ts
    when (not f.Flow.saturated) && Typeset.cardinal ts > cutoff ->
      f.Flow.saturated <- true;
      Edges.use_edge ~emit:(emit t) t.all_inst_any f
  | _ -> ()

let on_state_change t (f : Flow.t) =
  if f.Flow.enabled then begin
    if not (Vstate.is_empty f.Flow.state) then begin
      List.iter (fun u -> emit t (Edges.Input (u, f.Flow.state))) f.Flow.uses;
      List.iter (fun p -> emit t (Edges.Enable p)) f.Flow.pred_out
    end
  end;
  List.iter (fun o -> emit t (Edges.Notify o)) f.Flow.observers

let recompute t (f : Flow.t) =
  let s = Flow.apply_filter f f.Flow.raw in
  (* Joining with the previous state keeps the per-flow state monotone even
     while an observed operand is still growing. *)
  let s = Vstate.join f.Flow.state s in
  if not (Vstate.equal s f.Flow.state) then begin
    f.Flow.state <- s;
    saturate_check t f s;
    on_state_change t f
  end

let input t (f : Flow.t) v =
  let raw = Vstate.join f.Flow.raw v in
  if not (Vstate.equal raw f.Flow.raw) then begin
    f.Flow.raw <- raw;
    recompute t f
  end

(* --------------------------- degradation ------------------------------ *)

(** Degradation mode (budget exhaustion): precision is abandoned, never
    soundness.  Every flow is force-enabled (as in the no-predicates
    baseline); flows holding type sets are saturated onto the global
    all-instantiated flow — exactly the paper's saturation mechanism with
    cutoff 0 — and everything else is widened to the lattice top [Any].
    The result, once the worklist re-drains, is a sound but much coarser
    fixed point: the degraded reachable-method set is a superset of the
    precise one (a property the fuzz harness asserts). *)
let degrade_flow t (f : Flow.t) =
  emit t (Edges.Enable f);
  (if not f.Flow.saturated then
     match f.Flow.raw with
     | Vstate.Types _ ->
         f.Flow.saturated <- true;
         Edges.use_edge ~emit:(emit t) t.all_inst_any f
     | Vstate.Empty | Vstate.Const _ | Vstate.Any ->
         emit t (Edges.Input (f, Vstate.any)));
  (* re-run the flow-specific action against the widened operand states *)
  match f.Flow.kind with
  | Flow.Invoke _ | Flow.Field_load _ | Flow.Field_store _ ->
      emit t (Edges.Notify f)
  | _ -> ()

let degrade t (trip : Budget.trip) =
  t.stats.budget_trips <- t.stats.budget_trips + 1;
  if not t.stats.degraded then begin
    t.stats.degraded <- true;
    t.stats.first_trip <- Some trip;
    Ids.Meth.Tbl.iter
      (fun _ g -> List.iter (degrade_flow t) g.Graph.g_flows)
      t.graphs
  end

(* ----------------------- reachability & linking ----------------------- *)

let rec ensure_reachable t (m : Program.meth) =
  match Ids.Meth.Tbl.find_opt t.graphs m.Program.m_id with
  | Some g -> g
  | None ->
      let g =
        Build.run
          {
            Build.prog = t.prog;
            config = t.config;
            masks = t.masks;
            pred_on = t.pred_on;
            emit = emit t;
            field_flow = field_flow t;
          }
          m
      in
      Ids.Meth.Tbl.replace t.graphs m.Program.m_id g;
      t.reachable_order <- m :: t.reachable_order;
      t.stats.live_flows <- t.stats.live_flows + Graph.flow_count g;
      (* Degradation mode: methods discovered after the budget tripped are
         coarsened on arrival, like everything built before the trip. *)
      if t.stats.degraded then List.iter (degrade_flow t) g.Graph.g_flows
      else if not t.config.Config.predicates then
        (* Baseline configuration: no predicate edges — every flow of a
           reachable method propagates unconditionally. *)
        List.iter (fun f -> emit t (Edges.Enable f)) g.Graph.g_flows;
      g

and link_callee t (inv_flow : Flow.t) (inv : Flow.invoke_site) (callee : Program.meth) =
  if not (Ids.Meth.Set.mem callee.Program.m_id inv.Flow.inv_linked) then begin
    inv.Flow.inv_linked <- Ids.Meth.Set.add callee.Program.m_id inv.Flow.inv_linked;
    t.stats.links <- t.stats.links + 1;
    let cg = ensure_reachable t callee in
    let actuals =
      match inv.Flow.inv_recv with
      | Some r when not callee.Program.m_static -> r :: inv.Flow.inv_args
      | _ -> inv.Flow.inv_args
    in
    (if List.length actuals <> List.length cg.Graph.g_params then
       invalid_arg
         (Printf.sprintf "Engine: arity mismatch calling %s (%d actuals, %d formals)"
            (Program.qualified_name t.prog callee.Program.m_id)
            (List.length actuals)
            (List.length cg.Graph.g_params)));
    List.iter2
      (fun a p ->
        t.stats.use_edges <- t.stats.use_edges + 1;
        Edges.use_edge ~emit:(emit t) a p)
      actuals cg.Graph.g_params;
    (* the invoke flow represents the returned value in the caller *)
    Edges.use_edge ~emit:(emit t) cg.Graph.g_return inv_flow
  end

(** The Invoke rule: resolve and link every possible callee.  Virtual
    invokes resolve per receiver type; [null] receivers resolve to nothing
    (a would-be NullPointerException, which the analysis does not model). *)
and try_link t (f : Flow.t) =
  match f.Flow.kind with
  | Flow.Invoke inv when f.Flow.enabled ->
      if inv.Flow.inv_virtual then begin
        let recv =
          match inv.Flow.inv_recv with
          | Some r -> r
          | None -> invalid_arg "Engine: virtual invoke without receiver"
        in
        let tyset =
          match recv.Flow.state with
          | Vstate.Types ts -> ts
          | Vstate.Any ->
              (* Object flows never reach [Any] in well-typed programs;
                 be conservative if they do. *)
              t.instantiated
          | Vstate.Empty | Vstate.Const _ -> Typeset.empty
        in
        Typeset.iter_classes
          (fun c ->
            if not (Program.is_null_class c) then
              match Program.resolve t.prog ~recv_cls:c ~target:inv.Flow.inv_target with
              | Some callee -> link_callee t f inv callee
              | None -> ())
          tyset
      end
      else
        link_callee t f inv (Program.meth t.prog inv.Flow.inv_target)
  | _ -> ()

(** The Load / Store rules: connect the instruction flow with the global
    per-declared-field flows ([LookUp]) of every type in the receiver's
    value state. *)
and try_field t (f : Flow.t) =
  if f.Flow.enabled then
    match f.Flow.kind with
    | Flow.Field_load fa | Flow.Field_store fa ->
        let tyset =
          match fa.Flow.fa_recv.Flow.state with
          | Vstate.Any ->
              (* Object flows only reach [Any] under degradation mode; be
                 conservative, as the Invoke rule is. *)
              t.instantiated
          | s -> Vstate.type_set s
        in
        Typeset.iter_classes
          (fun c ->
            if not (Program.is_null_class c) then
              match Program.lookup_field t.prog ~recv_cls:c ~field:fa.Flow.fa_field with
              | Some fld ->
                  if not (List.mem fld.Program.f_id fa.Flow.fa_linked) then begin
                    fa.Flow.fa_linked <- fld.Program.f_id :: fa.Flow.fa_linked;
                    let ff = field_flow t fld.Program.f_id in
                    match f.Flow.kind with
                    | Flow.Field_load _ -> Edges.use_edge ~emit:(emit t) ff f
                    | _ -> Edges.use_edge ~emit:(emit t) f ff
                  end
              | None -> ())
          tyset
    | _ -> ()

and mark_instantiated t (c : Ids.Class.t) =
  if not (Typeset.class_mem c t.instantiated) then begin
    t.instantiated <- Typeset.class_add c t.instantiated;
    let v = Vstate.of_class c in
    input t t.all_inst_any v;
    Ids.Class.Tbl.iter
      (fun cls f ->
        if Typeset.class_mem c (Masks.sub t.masks cls) then input t f v)
      t.all_inst
  end

and enable t (f : Flow.t) =
  if not f.Flow.enabled then begin
    f.Flow.enabled <- true;
    (match f.Flow.kind with Flow.Alloc c -> mark_instantiated t c | _ -> ());
    let gv = gen_value t f in
    if not (Vstate.is_empty gv) then f.Flow.raw <- Vstate.join f.Flow.raw gv;
    let s = Vstate.join f.Flow.state (Flow.apply_filter f f.Flow.raw) in
    f.Flow.state <- s;
    saturate_check t f s;
    (* Becoming enabled makes the (possibly previously accumulated) state
       visible to use/predicate successors for the first time, and counts
       as a state change for observers. *)
    on_state_change t f;
    (* enabling gates the flow-specific actions of Figure 15 *)
    match f.Flow.kind with
    | Flow.Invoke _ -> try_link t f
    | Flow.Field_load _ | Flow.Field_store _ -> try_field t f
    | _ -> ()
  end

and notify t (f : Flow.t) =
  match f.Flow.kind with
  | Flow.Invoke _ -> try_link t f
  | Flow.Field_load _ | Flow.Field_store _ -> try_field t f
  | _ ->
      (* comparison filters re-apply their condition against the observed
         operand's new state *)
      recompute t f

(* ------------------------------ driver -------------------------------- *)

let add_root ?seed_params t (m : Program.meth) =
  t.roots <- Ids.Meth.Set.add m.Program.m_id t.roots;
  let seed =
    match seed_params with Some s -> s | None -> t.config.Config.seed_root_params
  in
  let g = ensure_reachable t m in
  if seed then begin
    let body = g.Graph.g_body in
    List.iter2
      (fun v pf ->
        match Bl.var_ty body v with
        | Ty.Obj c ->
            Edges.use_edge ~emit:(emit t) (all_inst_flow t c) pf;
            emit t (Edges.Input (pf, Vstate.null))
        | Ty.Int | Ty.Bool -> emit t (Edges.Input (pf, Vstate.any))
        | Ty.Null | Ty.Void -> ())
      body.Bl.params g.Graph.g_params
  end

(** [run ?random_order t] drains the worklist to the fixed point.

    By default tasks are processed FIFO.  With [random_order:seed] tasks
    are picked pseudo-randomly instead — the fixed point must not change
    (all transfer functions are monotone joins over a finite lattice),
    which the property-test suite verifies by comparing runs.

    The run is subject to [t.config.budget]: when a cap trips, the engine
    switches to degradation mode ({!degrade}) and finishes at a sound but
    coarser fixed point instead of aborting. *)
let run ?random_order t =
  let budget = t.config.Config.budget in
  let start = Unix.gettimeofday () in
  let elapsed_s () = Unix.gettimeofday () -. start in
  let process task =
    t.stats.tasks_processed <- t.stats.tasks_processed + 1;
    let q = Queue.length t.queue in
    if q > t.stats.max_queue then t.stats.max_queue <- q;
    match task with
    | Edges.Enable f -> enable t f
    | Edges.Input (f, v) -> input t f v
    | Edges.Notify f -> notify t f
  in
  (* Checked after every task while un-degraded; once degraded, the
     remaining (fast: everything is saturated) drain runs to completion so
     the final state is a genuine fixed point. *)
  let step_budget () =
    if (not t.stats.degraded) && not (Budget.is_unlimited budget) then
      match
        Budget.check budget ~tasks:t.stats.tasks_processed
          ~flows:t.stats.live_flows ~elapsed_s
      with
      | Some trip -> degrade t trip
      | None -> ()
  in
  let drain_fifo () =
    let continue_ = ref true in
    while !continue_ do
      match Queue.take_opt t.queue with
      | None -> continue_ := false
      | Some task ->
          process task;
          step_budget ()
    done
  in
  let drain_random seed =
    (* array-backed bag with swap-remove; deterministic LCG *)
    let state = ref (seed land 0x3FFFFFFF) in
    let next bound =
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      !state mod bound
    in
    let bag = ref [||] in
    let len = ref 0 in
    let refill () =
      let l = Queue.length t.queue in
      if l > 0 then begin
        bag := Array.init l (fun _ -> Queue.pop t.queue);
        len := l
      end
    in
    refill ();
    while !len > 0 do
      let i = next !len in
      let task = !bag.(i) in
      !bag.(i) <- !bag.(!len - 1);
      decr len;
      process task;
      step_budget ();
      if !len = 0 then refill ()
    done
  in
  let drain () =
    match random_order with None -> drain_fifo () | Some s -> drain_random s
  in
  drain ();
  if t.stats.degraded then begin
    (* Degradation introduces [Any] object states.  An invoke (or field
       access) observing an [Any] receiver no longer sees incremental
       notifications when further types are instantiated (its receiver
       state cannot grow past top), so close the fixed point explicitly:
       re-run every flow-specific action and re-drain until the linked
       sets stop changing.  Each pass only adds links/graphs, so this
       terminates. *)
    let signature () =
      let field_links = ref 0 in
      Ids.Meth.Tbl.iter
        (fun _ g ->
          List.iter
            (fun (f : Flow.t) ->
              match f.Flow.kind with
              | Flow.Field_load fa | Flow.Field_store fa ->
                  field_links := !field_links + List.length fa.Flow.fa_linked
              | _ -> ())
            g.Graph.g_flows)
        t.graphs;
      (Ids.Meth.Tbl.length t.graphs, t.stats.links, !field_links)
    in
    let rec close prev =
      Ids.Meth.Tbl.iter
        (fun _ g -> List.iter (fun f -> notify t f) g.Graph.g_flows)
        t.graphs;
      drain ();
      let s = signature () in
      if s <> prev then close s
    in
    close (signature ())
  end

(* ------------------------------ results ------------------------------- *)

let prog_of t = t.prog
let config_of t = t.config

let roots t = t.roots
let is_reachable t (m : Ids.Meth.t) = Ids.Meth.Tbl.mem t.graphs m

let reachable_methods t = List.rev t.reachable_order

let reachable_count t = Ids.Meth.Tbl.length t.graphs

let graphs t =
  List.rev_map
    (fun m -> Ids.Meth.Tbl.find t.graphs m.Program.m_id)
    t.reachable_order

let graph_of t (m : Ids.Meth.t) = Ids.Meth.Tbl.find_opt t.graphs m

let instantiated_types t = Typeset.classes t.instantiated

let instantiated t = t.instantiated

let is_degraded t = t.stats.degraded

let stats t = t.stats
