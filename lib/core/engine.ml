(** The fixed-point propagation engine: an operational implementation of
    the inference rules of Figure 15 (Appendix C).

    The engine schedules three kinds of propagation work:

    - {e input}: join a value into a flow's VS_in (the Propagate / Load /
      Store / Invoke-linking rules push values this way);
    - {e enable}: mark a flow executable (the Predicate rule);
    - {e notify}: re-run a flow's flow-specific action because an observed
      flow's state changed (method resolution and linking for invokes,
      field linking for loads/stores, re-filtering for comparison filters).

    In the default {!Dedup} mode the worklist is deduplicated: an input
    emit performs the value join into [Flow.raw] {e eagerly} and enqueues
    the flow id only if the join changed something and the flow is not
    already pending (scheduling bits live on {!Flow.t}); an enable emit on
    an already-enabled flow and a notify emit on an already-queued
    observer collapse to no-ops.  The queue itself is {!Worklist}: an
    int-indexed ring buffer of flow ids, not boxed task values.  The
    {!Reference} mode retains the original boxed-FIFO drain (one task per
    emit, joins at processing time) — the fixed points of the two modes
    are bit-identical (all transfer functions are monotone over the
    finite-height lattice [𝕃]), which the test-suite certifies flow by
    flow.

    Methods become reachable ([ℝ] in the paper) when their PVPG is built:
    either as analysis roots or when an invoke links them.  Virtual invokes
    resolve every type in the receiver's value state with [Resolve] and link
    actual-argument flows to formal-parameter flows and the callee's return
    flow back to the invoke flow (which represents the returned value in the
    caller). *)

open Skipflow_ir

(** How the worklist is driven: the production deduplicated dirty-bit
    engine, or the retained reference drain (boxed FIFO of one task per
    emit) kept for differential testing and perf baselines. *)
type mode = Dedup | Reference

(** Reference-mode tasks — the original engine's boxed queue entries. *)
type rtask =
  | REnable of Flow.t
  | RInput of Flow.t * Vstate.t
  | RNotify of Flow.t

(** How {!run} ended: at the fixed point, or — in pause-on-budget mode —
    suspended at a task boundary with the whole solver state serialized
    ({!of_snapshot_bytes} continues to the {e identical} fixed point). *)
type outcome = Completed | Paused of string

(** Work and graph-growth accounting, snapshotted from the engine's
    {!Trace} counter registry by {!stats}.  The record is immutable: the
    live, always-updating values are the registry counters themselves
    (names under ["engine."], readable through {!trace_of}). *)
type stats = {
  tasks_processed : int;
      (** worklist entries drained (deduplicated flow drains in {!Dedup}
          mode, boxed tasks in {!Reference} mode) *)
  input_tasks : int;  (** input work items processed *)
  enable_tasks : int;  (** enable work items processed *)
  notify_tasks : int;  (** notify work items processed *)
  dedup_input : int;  (** input emits collapsed into pending work *)
  dedup_enable : int;  (** enable emits collapsed (already enabled/queued) *)
  dedup_notify : int;  (** notify emits collapsed (already queued) *)
  use_edges : int;  (** counted at link time only *)
  links : int;
  max_queue : int;
  live_flows : int;  (** flows created across all reachable PVPGs *)
  budget_trips : int;  (** budget-cap trip events (0 or 1 per run) *)
  trip_tasks : int;  (** tasks drained when the first cap tripped (0: no trip) *)
  trip_flows : int;  (** live flows when the first cap tripped (0: no trip) *)
  degraded : bool;  (** a budget trip switched the run to degradation mode *)
  first_trip : Budget.trip option;  (** which cap tripped first *)
}

let dedup_hits s = s.dedup_input + s.dedup_enable + s.dedup_notify

(** The engine's registered counters — monotonic boxes in the run's
    {!Trace} registry; incrementing one is a single store, exactly what
    the old mutable stats fields cost. *)
type counters = {
  c_tasks : Trace.counter;
  c_input : Trace.counter;
  c_enable : Trace.counter;
  c_notify : Trace.counter;
  c_dedup_input : Trace.counter;
  c_dedup_enable : Trace.counter;
  c_dedup_notify : Trace.counter;
  c_use_edges : Trace.counter;
  c_links : Trace.counter;
  c_max_queue : Trace.counter;
  c_live_flows : Trace.counter;
  c_budget_trips : Trace.counter;
  c_trip_tasks : Trace.counter;
  c_trip_flows : Trace.counter;
  c_build_us : Trace.counter;
      (** wall time spent constructing PVPGs, accumulated across every
          {!Build.run} call (only ticks when the trace has timers on) *)
}

let register_counters tr =
  {
    c_tasks = Trace.counter tr "engine.tasks_processed";
    c_input = Trace.counter tr "engine.input_tasks";
    c_enable = Trace.counter tr "engine.enable_tasks";
    c_notify = Trace.counter tr "engine.notify_tasks";
    c_dedup_input = Trace.counter tr "engine.dedup_input";
    c_dedup_enable = Trace.counter tr "engine.dedup_enable";
    c_dedup_notify = Trace.counter tr "engine.dedup_notify";
    c_use_edges = Trace.counter tr "engine.use_edges";
    c_links = Trace.counter tr "engine.links";
    c_max_queue = Trace.counter tr "engine.max_queue";
    c_live_flows = Trace.counter tr "engine.live_flows";
    c_budget_trips = Trace.counter tr "engine.budget_trips";
    c_trip_tasks = Trace.counter tr "engine.trip_tasks";
    c_trip_flows = Trace.counter tr "engine.trip_flows";
    c_build_us = Trace.counter tr "build.wall_us";
  }

(* ------------------------- parallel runtime --------------------------- *)

(** Cross-shard work, routed between worker domains by bounded MPSC
    inboxes.  Every message is {e defer-mode} absorbable by the owner: it
    turns into a dirty bit (plus, for inputs, the eager VS_in join the
    deduplicated engine always performs) without emitting anything
    further, which is what makes the send-retry/absorb backpressure loop
    deadlock-free. *)
type msg =
  | MInput of Flow.t * Vstate.t  (** join [v] into the flow's VS_in *)
  | MEnable of Flow.t
  | MNotify of Flow.t

type inbox = {
  ib_mutex : Mutex.t;
  ib_cond : Condition.t;  (** signaled on push; the owner idles here *)
  ib_q : msg Queue.t;
  mutable ib_hwm : int;  (** queue high-water mark (written under the mutex) *)
}

(** Shared state of one parallel drain ([Config.jobs] worker domains). *)
type hub = {
  h_shard : Shard.t;  (** method -> owning shard *)
  h_inboxes : inbox array;
  h_inflight : int Atomic.t;
      (** credit counter: incremented before a message is pushed,
          decremented after the owner absorbed it into its worklist —
          quiescence requires it to be 0 *)
  h_idle : bool Atomic.t array;  (** per-shard "parked on the inbox" flags *)
  h_act : int Atomic.t;
      (** idle->active transition counter; the monitor reads it around
          its quiescence check to detect wake-ups racing the check *)
  h_stop : bool Atomic.t;
  h_struct : Mutex.t;
      (** the structural lock: graph building, interprocedural linking,
          field linking, instantiation, saturation edges, and every write
          to a global (method-less) flow happen under it *)
  h_trip : Budget.trip option Atomic.t;
      (** set by the monitor when a budget cap trips (the reaction runs
          sequentially after the workers join) *)
  h_exn : exn option Atomic.t;  (** first worker failure, re-raised after join *)
}

(** Per-worker view of the engine: counters, worklist, emit hooks, and
    scheduling depths.  The sequential engine is exactly one lane
    ([lane0], hubless); a parallel drain spawns [jobs] fresh lanes and
    merges them back into [lane0]'s registry afterwards. *)
type lane = {
  lid : int;  (** shard index; 0 for the sequential lane *)
  lc : counters;
  ltrace : Trace.t;  (** [lane0]: the engine's trace; workers: private quiet traces *)
  lwl : Worklist.t;  (** this lane's ring of dirty flow ids *)
  mutable lemit : Edges.emit;  (** scheduling hooks, routing cross-shard when parallel *)
  mutable lsync_depth : int;
      (** current depth of synchronous (drain-free) processing; beyond
          {!sync_depth_limit} the work is scheduled instead, keeping the
          OCaml stack bounded on deep predicate/call chains *)
  mutable llock_depth : int;
      (** structural-lock re-entrancy depth (lane-local: one lane is one
          domain); 0 = not held by this lane *)
  mutable lprobe : unit -> unit;
      (** in-flight budget probe, installed by {!run} for the duration of
          the drain and called inside the invoke/field re-resolution loops
          so a single mega-flow cannot overshoot the budget by more than
          one link's worth of work; a no-op outside a run (and in worker
          lanes, where the monitor samples the caps instead) *)
  mutable llinks_at_task : int;
      (** [c_links] value at the current task's start, so the in-task
          probe charges only the links made {e inside} this task toward
          [max_tasks] — [c_links] itself is run-cumulative (and restored
          across resumes), and charging it whole would trip the task cap
          near [tasks + total_links] instead of [tasks] *)
  mutable lhub : hub option;  (** [Some] only while a parallel drain runs *)
  mutable lmsgs_sent : int;  (** cross-shard messages sent (single-writer) *)
  mutable lmsgs_recv : int;  (** cross-shard messages absorbed *)
  mutable lidle_us : int;  (** wall time parked on the inbox, microseconds *)
}

type t = {
  prog : Program.t;
  config : Config.t;
  masks : Masks.t;
  mode : mode;
  trace : Trace.t;  (** counter registry + optional timers / event buffer *)
  lane0 : lane;
      (** the sequential lane: its counters/worklist/emit are the
          engine's own (registered in [trace]); parallel drains merge
          their per-shard lanes back into it *)
  rqueue : rtask Queue.t;  (** reference-mode boxed FIFO *)
  graphs : Graph.method_graph Ids.Meth.Tbl.t;
  mutable reachable_order : Program.meth list;  (** reverse discovery order *)
  mutable roots : Ids.Meth.Set.t;  (** methods registered via {!add_root} *)
  field_flows : Flow.t Ids.Field.Tbl.t;
  all_inst : Flow.t Ids.Class.Tbl.t;
  all_inst_rev : Flow.t list array;
      (** reverse subtype index: class id -> the [all_inst] flows whose
          subtype mask contains it, so {!mark_instantiated} updates exactly
          the affected flows instead of scanning the whole table *)
  all_inst_any : Flow.t;
      (** all instantiated types, regardless of declared type; feeds
          saturated flows *)
  mutable instantiated : Typeset.t;
  pred_on : Flow.t;
  mutable degraded : bool;  (** a budget trip switched the run to degradation mode *)
  mutable first_trip : Budget.trip option;  (** which cap tripped first *)
  mutable pause_pending : bool;
      (** pause-on-budget mode: a cap tripped; stop at the next task
          boundary and snapshot instead of degrading *)
}

let flow_meth_id (f : Flow.t) =
  match f.Flow.meth with Some m -> Ids.Meth.to_int m | None -> -1

let sync_depth_limit = 200

let always_on kind state =
  let f = Flow.make kind in
  f.Flow.enabled <- true;
  f.Flow.raw <- state;
  f.Flow.state <- state;
  f

let make_lane ?base ~lid ltrace =
  {
    lid;
    lc = register_counters ltrace;
    ltrace;
    lwl = Worklist.create ?base ();
    lemit = Edges.null_emit;
    lsync_depth = 0;
    llock_depth = 0;
    lprobe = (fun () -> ());
    llinks_at_task = 0;
    lhub = None;
    lmsgs_sent = 0;
    lmsgs_recv = 0;
    lidle_us = 0;
  }

(* ---------------------------- scheduling ------------------------------ *)

let track_queue ln len = Trace.record_max ln.lc.c_max_queue len

(** Set a dirty bit and enqueue the flow unless it is already pending.
    Returns [false] when the work merged into an existing entry. *)
let schedule ln (f : Flow.t) bit =
  let w = f.Flow.work in
  f.Flow.work <- w lor bit lor Flow.wk_pending;
  if w land Flow.wk_pending = 0 then begin
    Worklist.push ln.lwl f;
    track_queue ln (Worklist.length ln.lwl);
    true
  end
  else false

(* ----------------------- ownership and locking ------------------------ *)

(** Global flows — field states, all-instantiated flows, [pred^on] — have
    no owning method; during a parallel drain they belong to shard 0 and
    every write to them goes through the structural lock. *)
let is_global (f : Flow.t) = f.Flow.meth = None

let owner_shard h (f : Flow.t) =
  match f.Flow.meth with
  | Some m -> h.h_shard.Shard.owner.(Ids.Meth.to_int m)
  | None -> 0

(** Run [fn] holding the hub's structural lock, re-entrantly (the depth
    counter is lane-local, and a lane is a single domain).  Lock ordering:
    the structural lock is only ever taken with {e no} inbox mutex held;
    sends made while holding it bypass the inbox bound so the holder can
    never block on a slower shard. *)
let with_struct_lock ln h fn =
  if ln.llock_depth > 0 then fn ()
  else begin
    Mutex.lock h.h_struct;
    ln.llock_depth <- 1;
    Fun.protect
      ~finally:(fun () ->
        ln.llock_depth <- 0;
        Mutex.unlock h.h_struct)
      fn
  end

(** Soft bound on each inbox.  Senders over the bound drain their own
    inbox and retry — backpressure without deadlock — except when they
    hold the structural lock or the drain is stopping (then the push goes
    through unconditionally; see {!send}). *)
let inbox_cap = 8192

(* ------------------------- global flows ------------------------------ *)

(** The global flow holding all instantiated subtypes of [c] (including
    types instantiated later).  Implements the "any instantiated subtype of
    the declared type" policy for root-method parameters (Section 5). *)
let all_inst_flow t (c : Ids.Class.t) =
  match Ids.Class.Tbl.find_opt t.all_inst c with
  | Some f -> f
  | None ->
      let mask = Masks.sub t.masks c in
      let init = Vstate.types (Typeset.inter t.instantiated mask) in
      let f = always_on (Flow.All_instantiated c) init in
      Ids.Class.Tbl.replace t.all_inst c f;
      (* register in the reverse index so later instantiations of any
         subtype reach this flow directly *)
      Typeset.iter
        (fun ci -> t.all_inst_rev.(ci) <- f :: t.all_inst_rev.(ci))
        mask;
      f

(** Default value of a field before any store is observed: [null] for
    object fields, [0] for primitive fields (Java default initialization;
    needed for soundness with respect to the concrete interpreter). *)
let field_default t (fld : Program.field) =
  match fld.Program.f_ty with
  | Ty.Obj _ | Ty.Null -> Vstate.null
  | Ty.Int | Ty.Bool -> if t.config.Config.primitives then Vstate.const 0 else Vstate.any
  | Ty.Void -> Vstate.empty

let field_flow t (fid : Ids.Field.t) =
  match Ids.Field.Tbl.find_opt t.field_flows fid with
  | Some f -> f
  | None ->
      let fld = Program.field t.prog fid in
      let f = always_on (Flow.Field_state fid) (field_default t fld) in
      Ids.Field.Tbl.replace t.field_flows fid f;
      f

(* --------------------------- propagation ------------------------------ *)

let gen_value t (f : Flow.t) =
  match f.Flow.kind with
  | Flow.Source v -> v
  | Flow.Alloc c -> Vstate.of_class c
  | Flow.Phi_pred -> Vstate.const 1 (* reachability token *)
  | Flow.Return -> (
      (* A method with void return type still returns the predicate of the
         return instruction as an artificial value (Section 3). *)
      match f.Flow.meth with
      | Some m when Ty.equal (Program.meth t.prog m).Program.m_ret_ty Ty.Void ->
          Vstate.const 0
      | _ -> Vstate.empty)
  | _ -> Vstate.empty

(* The emit functions, state-change propagation, and the reachability /
   linking rules are one mutually recursive block: the deduplicated
   engine processes cheap-to-collapse work {e synchronously} instead of
   scheduling a drain for it —

   - an input emit on a {e disabled} flow folds the filter in place
     (disabled flows push nothing to uses/preds, so only observers must
     hear about the growth, and notifying them is itself an emit);
   - an enable emit runs {!enable} immediately (a flow is enabled at most
     once, so there is never a second enable to merge with), up to
     {!sync_depth_limit} — past it, deep predicate/call chains fall back
     to the worklist so the OCaml stack stays bounded.

   Both are just different schedules of the same chaotic iteration: all
   transfer functions are monotone joins, so the fixed point is unchanged
   (the differential tests against {!Reference} mode check this). *)

(* Which primitive sublattice joins and comparison filters run on —
   threaded from the configuration into every join/filter site so flat
   runs stay bit-identical to the pre-product engine. *)
let pval_of t = t.config.Config.pval

(* ------------------------ cross-shard messages ------------------------ *)

(* Defer-mode absorption: a message becomes a dirty bit on the owner's
   worklist (plus the eager VS_in join for inputs) and emits NOTHING — no
   sends, no recursion into the propagation block.  That restriction is
   what lets {!send}'s backpressure loop absorb the sender's own inbox
   while it waits, without deadlock.  The work itself (recompute / enable
   / notify) runs later, from {!process_flow}, with the full machinery. *)
let absorb t ln msg =
  ln.lmsgs_recv <- ln.lmsgs_recv + 1;
  match msg with
  | MEnable f ->
      if f.Flow.enabled || f.Flow.work land Flow.wk_enable <> 0 then
        Trace.incr ln.lc.c_dedup_enable
      else ignore (schedule ln f Flow.wk_enable)
  | MNotify f ->
      if f.Flow.work land Flow.wk_notify <> 0 then
        Trace.incr ln.lc.c_dedup_notify
      else ignore (schedule ln f Flow.wk_notify)
  | MInput (f, v) ->
      let join () =
        if Vstate.leq v f.Flow.raw then Trace.incr ln.lc.c_dedup_input
        else begin
          f.Flow.raw <- Vstate.join ~pval:(pval_of t) f.Flow.raw v;
          ignore (schedule ln f Flow.wk_recompute)
        end
      in
      if is_global f then
        (* shard 0's global flows also take direct locked writes from
           [mark_instantiated]; the join must not race them *)
        match ln.lhub with
        | Some h -> with_struct_lock ln h join
        | None -> join ()
      else join ()

(** Absorb every message currently in this lane's inbox (defer mode).
    The in-flight credit is released only {e after} a message landed in
    the worklist, so quiescence detection can never miss it. *)
let absorb_own t ln =
  match ln.lhub with
  | None -> ()
  | Some h ->
      let ib = h.h_inboxes.(ln.lid) in
      if Queue.length ib.ib_q > 0 (* racy hint; the mutex decides *) then begin
        let batch = Queue.create () in
        Mutex.lock ib.ib_mutex;
        Queue.transfer ib.ib_q batch;
        Mutex.unlock ib.ib_mutex;
        Queue.iter
          (fun m ->
            absorb t ln m;
            Atomic.decr h.h_inflight)
          batch
      end

(** Send a message to [dest]'s inbox.  The credit counter is incremented
    before the push (send precedes receive, so in-flight work is always
    visible to the termination detector).  A full inbox blocks the sender
    in an absorb-own/retry loop — unless the sender holds the structural
    lock (it must never wait on another shard) or the drain is stopping
    (the merge collects leftovers). *)
let send t h ln dest msg =
  Atomic.incr h.h_inflight;
  ln.lmsgs_sent <- ln.lmsgs_sent + 1;
  let ib = h.h_inboxes.(dest) in
  let rec push () =
    Mutex.lock ib.ib_mutex;
    let len = Queue.length ib.ib_q in
    if
      len < inbox_cap || ln.llock_depth > 0 || dest = ln.lid
      || Atomic.get h.h_stop
    then begin
      Queue.add msg ib.ib_q;
      if len + 1 > ib.ib_hwm then ib.ib_hwm <- len + 1;
      Condition.signal ib.ib_cond;
      Mutex.unlock ib.ib_mutex
    end
    else begin
      Mutex.unlock ib.ib_mutex;
      absorb_own t ln;
      Domain.cpu_relax ();
      push ()
    end
  in
  push ()

let rec emit_input t ln (f : Flow.t) v =
  match t.mode with
  | Reference ->
      Queue.add (RInput (f, v)) t.rqueue;
      track_queue ln (Queue.length t.rqueue)
  | Dedup -> (
      match ln.lhub with
      | Some h when owner_shard h f <> ln.lid ->
          send t h ln (owner_shard h f) (MInput (f, v))
      | Some h when is_global f ->
          (* our own (shard 0) global flow: locked defer-mode join, so the
             write cannot race [mark_instantiated] on another shard *)
          with_struct_lock ln h (fun () -> local_input t ln f v)
      | _ -> local_input t ln f v)

(* the join happens here, eagerly: a value already below VS_in needs
   no task at all, and concurrent growth merges into one drain.  The
   [leq] test first keeps the common already-subsumed case
   allocation-free (no union is built); when it fails the join is a
   strict growth, so no equality re-check is needed either. *)
and local_input t ln (f : Flow.t) v =
  if Vstate.leq v f.Flow.raw then Trace.incr ln.lc.c_dedup_input
  else begin
    f.Flow.raw <- Vstate.join ~pval:(pval_of t) f.Flow.raw v;
    if not f.Flow.enabled then begin
      Trace.incr ln.lc.c_input;
      recompute t ln f
    end
    else if not (schedule ln f Flow.wk_recompute) then
      Trace.incr ln.lc.c_dedup_input
  end

and emit_enable t ln (f : Flow.t) =
  match t.mode with
  | Reference ->
      Queue.add (REnable f) t.rqueue;
      track_queue ln (Queue.length t.rqueue)
  | Dedup -> (
      match ln.lhub with
      | Some h when owner_shard h f <> ln.lid ->
          if f.Flow.enabled (* racy fast path: enabled never reverts *) then
            Trace.incr ln.lc.c_dedup_enable
          else send t h ln (owner_shard h f) (MEnable f)
      | _ ->
          if f.Flow.enabled || f.Flow.work land Flow.wk_enable <> 0 then
            Trace.incr ln.lc.c_dedup_enable
          else if ln.lsync_depth < sync_depth_limit then begin
            Trace.incr ln.lc.c_enable;
            ln.lsync_depth <- ln.lsync_depth + 1;
            enable t ln f;
            ln.lsync_depth <- ln.lsync_depth - 1
          end
          else if not (schedule ln f Flow.wk_enable) then
            Trace.incr ln.lc.c_dedup_enable)

and emit_notify t ln (f : Flow.t) =
  match t.mode with
  | Reference ->
      Queue.add (RNotify f) t.rqueue;
      track_queue ln (Queue.length t.rqueue)
  | Dedup -> (
      match ln.lhub with
      | Some h when owner_shard h f <> ln.lid ->
          send t h ln (owner_shard h f) (MNotify f)
      | _ ->
          if f.Flow.work land Flow.wk_notify <> 0 then
            Trace.incr ln.lc.c_dedup_notify
          else if not (schedule ln f Flow.wk_notify) then
            Trace.incr ln.lc.c_dedup_notify)

and saturate_check t ln (f : Flow.t) (s : Vstate.t) =
  match (t.config.Config.saturation, s) with
  | Some cutoff, Vstate.Types ts
    when (not f.Flow.saturated) && Typeset.cardinal ts > cutoff -> (
      f.Flow.saturated <- true;
      if Trace.events_on ln.ltrace then
        Trace.event ln.ltrace ~kind:"saturate" ~flow:f.Flow.id
          ~meth:(flow_meth_id f) ~arg:(Typeset.cardinal ts) ();
      (* appends to the global all-instantiated flow's use list — a
         structural mutation *)
      match ln.lhub with
      | None -> Edges.use_edge ~emit:ln.lemit t.all_inst_any f
      | Some h ->
          with_struct_lock ln h (fun () ->
              Edges.use_edge ~emit:ln.lemit t.all_inst_any f))
  | _ -> ()

and on_state_change t ln (f : Flow.t) =
  if f.Flow.enabled then begin
    if not (Vstate.is_empty f.Flow.state) then begin
      List.iter (fun u -> emit_input t ln u f.Flow.state) f.Flow.uses;
      List.iter (fun p -> emit_enable t ln p) f.Flow.pred_out
    end
  end;
  List.iter (fun o -> emit_notify t ln o) f.Flow.observers

and recompute t ln (f : Flow.t) =
  match t.mode with
  | Reference ->
      (* The original implementation, retained verbatim so the reference
         baseline keeps its pre-optimization cost profile: join first,
         compare after (one transient value-state allocation per call). *)
      let pval = pval_of t in
      let s' =
        Vstate.join_unshared ~pval f.Flow.state (Flow.apply_filter ~pval f f.Flow.raw)
      in
      if not (Vstate.equal s' f.Flow.state) then begin
        f.Flow.state <- s';
        if Trace.events_on ln.ltrace then
          Trace.event ln.ltrace ~kind:"join" ~flow:f.Flow.id ~meth:(flow_meth_id f) ();
        saturate_check t ln f s';
        on_state_change t ln f
      end
  | Dedup ->
      let s = Flow.apply_filter ~pval:(pval_of t) f f.Flow.raw in
      (* Joining with the previous state keeps the per-flow state monotone
         even while an observed operand is still growing; the [leq] test
         makes the already-covered case allocation-free. *)
      if not (Vstate.leq s f.Flow.state) then begin
        let s = Vstate.join ~pval:(pval_of t) f.Flow.state s in
        f.Flow.state <- s;
        if Trace.events_on ln.ltrace then
          Trace.event ln.ltrace ~kind:"join" ~flow:f.Flow.id ~meth:(flow_meth_id f) ();
        saturate_check t ln f s;
        on_state_change t ln f
      end

(** Synchronous join-and-recompute, used by reference-mode input tasks and
    by {!mark_instantiated} (which updates global flows directly). *)
and input t ln (f : Flow.t) v =
  match t.mode with
  | Reference ->
      (* original join-then-compare form (see {!recompute}) *)
      let raw' = Vstate.join_unshared ~pval:(pval_of t) f.Flow.raw v in
      if not (Vstate.equal raw' f.Flow.raw) then begin
        f.Flow.raw <- raw';
        recompute t ln f
      end
  | Dedup ->
      if not (Vstate.leq v f.Flow.raw) then begin
        f.Flow.raw <- Vstate.join ~pval:(pval_of t) f.Flow.raw v;
        recompute t ln f
      end

(** Degradation mode (budget exhaustion): precision is abandoned, never
    soundness.  Every flow is force-enabled (as in the no-predicates
    baseline); flows holding type sets are saturated onto the global
    all-instantiated flow — exactly the paper's saturation mechanism with
    cutoff 0 — and everything else is widened to the lattice top [Any].
    The result, once the worklist re-drains, is a sound but much coarser
    fixed point: the degraded reachable-method set is a superset of the
    precise one (a property the fuzz harness asserts). *)
and degrade_flow t ln (f : Flow.t) =
  emit_enable t ln f;
  (if not f.Flow.saturated then
     match f.Flow.raw with
     | Vstate.Types _ ->
         f.Flow.saturated <- true;
         Edges.use_edge ~emit:ln.lemit t.all_inst_any f
     | Vstate.Empty | Vstate.Prim _ | Vstate.Any -> emit_input t ln f Vstate.any);
  (* re-run the flow-specific action against the widened operand states *)
  match f.Flow.kind with
  | Flow.Invoke _ | Flow.Field_load _ | Flow.Field_store _ -> emit_notify t ln f
  | _ -> ()

(* ----------------------- reachability & linking ----------------------- *)

and ensure_reachable t ln (m : Program.meth) =
  match ln.lhub with
  | None -> ensure_reachable_locked t ln m
  | Some h -> with_struct_lock ln h (fun () -> ensure_reachable_locked t ln m)

and ensure_reachable_locked t ln (m : Program.meth) =
  match Ids.Meth.Tbl.find_opt t.graphs m.Program.m_id with
  | Some g -> g
  | None ->
      let g =
        Trace.timed ln.ltrace ln.lc.c_build_us (fun () ->
            Build.run
              {
                Build.prog = t.prog;
                config = t.config;
                masks = t.masks;
                pred_on = t.pred_on;
                emit = ln.lemit;
                field_flow = field_flow t;
                trace = ln.ltrace;
              }
              m)
      in
      Ids.Meth.Tbl.replace t.graphs m.Program.m_id g;
      t.reachable_order <- m :: t.reachable_order;
      Trace.add ln.lc.c_live_flows (Graph.flow_count g);
      if Trace.events_on ln.ltrace then
        Trace.event ln.ltrace ~kind:"reachable" ~meth:(Ids.Meth.to_int m.Program.m_id)
          ~arg:(Graph.flow_count g) ();
      (* Degradation mode: methods discovered after the budget tripped are
         coarsened on arrival, like everything built before the trip. *)
      if t.degraded then List.iter (degrade_flow t ln) g.Graph.g_flows
      else if not t.config.Config.predicates then
        (* Baseline configuration: no predicate edges — every flow of a
           reachable method propagates unconditionally. *)
        List.iter (fun f -> emit_enable t ln f) g.Graph.g_flows;
      g

and link_callee t ln (inv_flow : Flow.t) (inv : Flow.invoke_site) (callee : Program.meth) =
  if not (Ids.Meth.Set.mem callee.Program.m_id inv.Flow.inv_linked) then begin
    inv.Flow.inv_linked <- Ids.Meth.Set.add callee.Program.m_id inv.Flow.inv_linked;
    Trace.incr ln.lc.c_links;
    if Trace.events_on ln.ltrace then
      Trace.event ln.ltrace ~kind:"link" ~flow:inv_flow.Flow.id
        ~meth:(flow_meth_id inv_flow)
        ~arg:(Ids.Meth.to_int callee.Program.m_id) ();
    let cg = ensure_reachable t ln callee in
    let actuals =
      match inv.Flow.inv_recv with
      | Some r when not callee.Program.m_static -> r :: inv.Flow.inv_args
      | _ -> inv.Flow.inv_args
    in
    (if List.length actuals <> List.length cg.Graph.g_params then
       invalid_arg
         (Printf.sprintf "Engine: arity mismatch calling %s (%d actuals, %d formals)"
            (Program.qualified_name t.prog callee.Program.m_id)
            (List.length actuals)
            (List.length cg.Graph.g_params)));
    List.iter2
      (fun a p ->
        Trace.incr ln.lc.c_use_edges;
        Edges.use_edge ~emit:ln.lemit a p)
      actuals cg.Graph.g_params;
    (* the invoke flow represents the returned value in the caller *)
    Edges.use_edge ~emit:ln.lemit cg.Graph.g_return inv_flow
  end

(** The Invoke rule: resolve and link every possible callee.  Virtual
    invokes resolve per receiver type; [null] receivers resolve to nothing
    (a would-be NullPointerException, which the analysis does not model). *)
and try_link t ln (f : Flow.t) =
  match ln.lhub with
  | None -> try_link_locked t ln f
  | Some h -> with_struct_lock ln h (fun () -> try_link_locked t ln f)

and try_link_locked t ln (f : Flow.t) =
  match f.Flow.kind with
  | Flow.Invoke inv when f.Flow.enabled ->
      if inv.Flow.inv_virtual then begin
        let recv =
          match inv.Flow.inv_recv with
          | Some r -> r
          | None -> invalid_arg "Engine: virtual invoke without receiver"
        in
        let tyset =
          match recv.Flow.state with
          | Vstate.Types ts -> ts
          | Vstate.Any ->
              (* Object flows never reach [Any] in well-typed programs;
                 be conservative if they do. *)
              t.instantiated
          | Vstate.Empty | Vstate.Prim _ -> Typeset.empty
        in
        let fresh =
          match t.mode with
          | Reference -> tyset (* pre-PR behavior: re-resolve everything *)
          | Dedup ->
              (* difference propagation: the receiver state only grows, and
                 [Resolve] is deterministic, so types resolved on an
                 earlier notify can be skipped without changing the fixed
                 point *)
              let d = Typeset.diff tyset inv.Flow.inv_seen in
              inv.Flow.inv_seen <- Typeset.union inv.Flow.inv_seen tyset;
              d
        in
        if Trace.events_on ln.ltrace && not (Typeset.is_empty fresh) then
          Trace.event ln.ltrace ~kind:"resolve" ~flow:f.Flow.id
            ~meth:(flow_meth_id f) ~arg:(Typeset.cardinal fresh) ();
        Typeset.iter_classes
          (fun c ->
            if not (Program.is_null_class c) then
              match Program.resolve t.prog ~recv_cls:c ~target:inv.Flow.inv_target with
              | Some callee ->
                  link_callee t ln f inv callee;
                  (* a single invoke task can resolve arbitrarily many
                     callees; let the budget see each one *)
                  ln.lprobe ()
              | None -> ())
          fresh
      end
      else
        link_callee t ln f inv (Program.meth t.prog inv.Flow.inv_target)
  | _ -> ()

(** The Load / Store rules: connect the instruction flow with the global
    per-declared-field flows ([LookUp]) of every type in the receiver's
    value state. *)
and try_field t ln (f : Flow.t) =
  match ln.lhub with
  | None -> try_field_locked t ln f
  | Some h -> with_struct_lock ln h (fun () -> try_field_locked t ln f)

and try_field_locked t ln (f : Flow.t) =
  if f.Flow.enabled then
    match f.Flow.kind with
    | Flow.Field_load fa | Flow.Field_store fa ->
        let tyset =
          match fa.Flow.fa_recv.Flow.state with
          | Vstate.Any ->
              (* Object flows only reach [Any] under degradation mode; be
                 conservative, as the Invoke rule is. *)
              t.instantiated
          | s -> Vstate.type_set s
        in
        let tyset =
          match t.mode with
          | Reference -> tyset (* pre-PR behavior: re-look-up everything *)
          | Dedup ->
              (* delta processing, as in the Invoke rule: [LookUp] is
                 deterministic, so seen receiver types can be skipped *)
              let d = Typeset.diff tyset fa.Flow.fa_seen in
              fa.Flow.fa_seen <- Typeset.union fa.Flow.fa_seen tyset;
              d
        in
        Typeset.iter_classes
          (fun c ->
            if not (Program.is_null_class c) then
              match Program.lookup_field t.prog ~recv_cls:c ~field:fa.Flow.fa_field with
              | Some fld ->
                  if not (Ids.Field.Set.mem fld.Program.f_id fa.Flow.fa_linked) then begin
                    fa.Flow.fa_linked <-
                      Ids.Field.Set.add fld.Program.f_id fa.Flow.fa_linked;
                    let ff = field_flow t fld.Program.f_id in
                    (match f.Flow.kind with
                    | Flow.Field_load _ -> Edges.use_edge ~emit:ln.lemit ff f
                    | _ -> Edges.use_edge ~emit:ln.lemit f ff);
                    ln.lprobe ()
                  end
              | None -> ())
          tyset
    | _ -> ()

and mark_instantiated t ln (c : Ids.Class.t) =
  match ln.lhub with
  | None -> mark_instantiated_locked t ln c
  | Some h -> with_struct_lock ln h (fun () -> mark_instantiated_locked t ln c)

and mark_instantiated_locked t ln (c : Ids.Class.t) =
  if not (Typeset.class_mem c t.instantiated) then begin
    t.instantiated <- Typeset.class_add c t.instantiated;
    let v = Vstate.of_class c in
    input t ln t.all_inst_any v;
    (* only the all-inst flows whose subtype mask contains [c], via the
       reverse index — not the whole table *)
    List.iter (fun f -> input t ln f v) t.all_inst_rev.(Ids.Class.to_int c)
  end

and enable t ln (f : Flow.t) =
  if not f.Flow.enabled then begin
    f.Flow.enabled <- true;
    if Trace.events_on ln.ltrace then
      Trace.event ln.ltrace ~kind:"enable" ~flow:f.Flow.id ~meth:(flow_meth_id f) ();
    (match f.Flow.kind with Flow.Alloc c -> mark_instantiated t ln c | _ -> ());
    let gv = gen_value t f in
    let pval = pval_of t in
    if not (Vstate.is_empty gv) then
      f.Flow.raw <- Vstate.join ~pval f.Flow.raw gv;
    let s = Vstate.join ~pval f.Flow.state (Flow.apply_filter ~pval f f.Flow.raw) in
    f.Flow.state <- s;
    saturate_check t ln f s;
    (* Becoming enabled makes the (possibly previously accumulated) state
       visible to use/predicate successors for the first time, and counts
       as a state change for observers. *)
    on_state_change t ln f;
    (* enabling gates the flow-specific actions of Figure 15 *)
    match f.Flow.kind with
    | Flow.Invoke _ -> try_link t ln f
    | Flow.Field_load _ | Flow.Field_store _ -> try_field t ln f
    | _ -> ()
  end

and notify t ln (f : Flow.t) =
  match f.Flow.kind with
  | Flow.Invoke _ -> try_link t ln f
  | Flow.Field_load _ | Flow.Field_store _ -> try_field t ln f
  | _ ->
      (* comparison filters re-apply their condition against the observed
         operand's new state *)
      recompute t ln f

let degrade t (trip : Budget.trip) =
  let ln = t.lane0 in
  Trace.incr ln.lc.c_budget_trips;
  if Trace.events_on t.trace then
    Trace.event t.trace ~kind:"degrade"
      ~arg:(match trip with Budget.Tasks -> 0 | Budget.Seconds -> 1 | Budget.Flows -> 2)
      ();
  if not t.degraded then begin
    t.degraded <- true;
    t.first_trip <- Some trip;
    Trace.record_max ln.lc.c_trip_tasks (Trace.value ln.lc.c_tasks);
    Trace.record_max ln.lc.c_trip_flows (Trace.value ln.lc.c_live_flows);
    (* iterate a snapshot of the discovery list, not the table: degrading
       a flow can link new callees synchronously, growing [t.graphs]
       mid-walk (methods added during the walk are degraded on arrival by
       {!ensure_reachable}) *)
    List.iter
      (fun (m : Program.meth) ->
        match Ids.Meth.Tbl.find_opt t.graphs m.Program.m_id with
        | Some g -> List.iter (degrade_flow t ln) g.Graph.g_flows
        | None -> ())
      t.reachable_order
  end

(** Tie a lane's emit record to the engine (the knot between the lane and
    the mutually recursive propagation block). *)
let tie_emit t ln =
  ln.lemit <-
    {
      Edges.input = emit_input t ln;
      enable = emit_enable t ln;
      notify = emit_notify t ln;
    }

let create ?(mode = Dedup) ?trace prog config =
  ignore (Program.freeze prog);
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  let lane0 = make_lane ~lid:0 trace in
  let t =
    {
      prog;
      config;
      masks = Masks.compute prog;
      mode;
      trace;
      lane0;
      rqueue = Queue.create ();
      graphs = Ids.Meth.Tbl.create 256;
      reachable_order = [];
      roots = Ids.Meth.Set.empty;
      field_flows = Ids.Field.Tbl.create 64;
      all_inst = Ids.Class.Tbl.create 32;
      all_inst_rev = Array.make (Program.num_classes prog) [];
      all_inst_any = always_on (Flow.All_instantiated Program.null_class) Vstate.empty;
      instantiated = Typeset.empty;
      pred_on = always_on Flow.Pred_on (Vstate.const 1);
      degraded = false;
      first_trip = None;
      pause_pending = false;
    }
  in
  tie_emit t lane0;
  t

(* --------------------------- checkpointing ---------------------------- *)

(** The marshalable image of a paused engine: every piece of [t] except
    the trace registry (counters travel as a name/value list), the
    worklist/queue containers (pending work travels as the flows / boxed
    tasks themselves, dirty bits intact), and the [emit] closures
    (re-tied by {!restore}, like {!create} does).  Flow ids are
    process-global, so the image also records the id counter and the
    worklist base; {!restore} bumps {!Flow.next_id} so ids minted after a
    resume never collide with snapshotted ones. *)
type frozen = {
  fz_prog : Program.t;
  fz_config : Config.t;
  fz_mode : mode;
  fz_graphs : Graph.method_graph Ids.Meth.Tbl.t;
  fz_reachable_order : Program.meth list;
  fz_roots : Ids.Meth.Set.t;
  fz_field_flows : Flow.t Ids.Field.Tbl.t;
  fz_all_inst : Flow.t Ids.Class.Tbl.t;
  fz_all_inst_rev : Flow.t list array;
  fz_all_inst_any : Flow.t;
  fz_instantiated : Typeset.t;
  fz_pred_on : Flow.t;
  fz_pending : Flow.t array;  (** worklist contents, queue order *)
  fz_rpending : rtask list;  (** reference-mode queue contents *)
  fz_counters : (string * int) list;
  fz_wl_base : int;
  fz_next_flow_id : int;
  fz_degraded : bool;
  fz_first_trip : Budget.trip option;
}

let capture t =
  {
    fz_prog = t.prog;
    fz_config = t.config;
    fz_mode = t.mode;
    fz_graphs = t.graphs;
    fz_reachable_order = t.reachable_order;
    fz_roots = t.roots;
    fz_field_flows = t.field_flows;
    fz_all_inst = t.all_inst;
    fz_all_inst_rev = t.all_inst_rev;
    fz_all_inst_any = t.all_inst_any;
    fz_instantiated = t.instantiated;
    fz_pred_on = t.pred_on;
    fz_pending = Worklist.pending t.lane0.lwl;
    fz_rpending = List.of_seq (Queue.to_seq t.rqueue);
    fz_counters = Trace.counters t.trace;
    fz_wl_base = Worklist.base t.lane0.lwl;
    fz_next_flow_id = !Flow.next_id;
    fz_degraded = t.degraded;
    fz_first_trip = t.first_trip;
  }

(** Every shared structure — flows appearing both in graphs and in edge
    lists, global tables, the pending queue — is one object graph,
    marshaled in a single call, so sharing and cycles survive the round
    trip.  [frozen] holds no closures (the Marshal invariant). *)
let snapshot_bytes t = Marshal.to_string (capture t) []

let restore ?trace ?budget fz =
  (* ids minted after the resume must not collide with restored flows:
     the worklist side table is indexed by [id - base] *)
  if !Flow.next_id < fz.fz_next_flow_id then Flow.next_id := fz.fz_next_flow_id;
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  let config =
    match budget with
    | None -> fz.fz_config
    | Some b -> { fz.fz_config with Config.budget = b }
  in
  ignore (Program.freeze fz.fz_prog);
  let lane0 = make_lane ~base:fz.fz_wl_base ~lid:0 trace in
  let t =
    {
      prog = fz.fz_prog;
      config;
      masks = Masks.compute fz.fz_prog;
      mode = fz.fz_mode;
      trace;
      lane0;
      rqueue = Queue.create ();
      graphs = fz.fz_graphs;
      reachable_order = fz.fz_reachable_order;
      roots = fz.fz_roots;
      field_flows = fz.fz_field_flows;
      all_inst = fz.fz_all_inst;
      all_inst_rev = fz.fz_all_inst_rev;
      all_inst_any = fz.fz_all_inst_any;
      instantiated = fz.fz_instantiated;
      pred_on = fz.fz_pred_on;
      degraded = fz.fz_degraded;
      first_trip = fz.fz_first_trip;
      pause_pending = false;
    }
  in
  tie_emit t lane0;
  (* the resumed run's counters continue from the snapshotted values *)
  List.iter
    (fun (name, v) -> if v <> 0 then Trace.add (Trace.counter trace name) v)
    fz.fz_counters;
  (* pending flows still carry their dirty bits; re-ring them in order *)
  Array.iter (fun f -> Worklist.push t.lane0.lwl f) fz.fz_pending;
  List.iter (fun task -> Queue.add task t.rqueue) fz.fz_rpending;
  t

let snapshot_kind = "engine-state"

(* v3: [Config.t] gained the [jobs] field (the frozen image embeds the
   config, so its Marshal layout changed) *)
let snapshot_version = 3

let of_snapshot_bytes ?trace ?budget s =
  match (Marshal.from_string s 0 : frozen) with
  | exception _ -> Error "cannot decode engine snapshot payload"
  | fz -> Ok (restore ?trace ?budget fz)

let save_snapshot t ~path =
  Snapshot.write ~path ~kind:snapshot_kind ~version:snapshot_version
    (snapshot_bytes t)

let load_snapshot ?trace ?budget path =
  match Snapshot.read ~path ~kind:snapshot_kind ~version:snapshot_version with
  | Error e -> Error e
  | Ok payload -> (
      match of_snapshot_bytes ?trace ?budget payload with
      | Ok t -> Ok t
      | Error message -> Error (Snapshot.Bad_payload { path; message }))

let clone ?trace ?budget t =
  (* [capture]'s frozen record aliases the live mutable flows; only a
     Marshal round trip yields an independent copy.  Bytes we just
     produced always decode. *)
  match of_snapshot_bytes ?trace ?budget (snapshot_bytes t) with
  | Ok t' -> t'
  | Error message -> invalid_arg ("Engine.clone: " ^ message)

(* ------------------------------ driver -------------------------------- *)

let add_root ?seed_params t (m : Program.meth) =
  let ln = t.lane0 in
  t.roots <- Ids.Meth.Set.add m.Program.m_id t.roots;
  let seed =
    match seed_params with Some s -> s | None -> t.config.Config.seed_root_params
  in
  let g = ensure_reachable t ln m in
  if seed then begin
    let body = g.Graph.g_body in
    List.iter2
      (fun v pf ->
        match Bl.var_ty body v with
        | Ty.Obj c ->
            Edges.use_edge ~emit:ln.lemit (all_inst_flow t c) pf;
            emit_input t ln pf Vstate.null
        | Ty.Int | Ty.Bool -> emit_input t ln pf Vstate.any
        | Ty.Null | Ty.Void -> ())
      body.Bl.params g.Graph.g_params
  end

(** Drain one deduplicated worklist entry: clear the flow's scheduling
    bits, then run every dirty kind.  Enable first (it folds the pending
    VS_in into the state and runs the flow action), then recompute (a
    no-op if enable just covered it), then notify. *)
let process_flow_bits t ln (f : Flow.t) =
  let w = f.Flow.work in
  f.Flow.work <- 0;
  if w land Flow.wk_enable <> 0 then begin
    Trace.incr ln.lc.c_enable;
    enable t ln f
  end;
  if w land Flow.wk_recompute <> 0 then begin
    Trace.incr ln.lc.c_input;
    recompute t ln f
  end;
  if w land Flow.wk_notify <> 0 then begin
    Trace.incr ln.lc.c_notify;
    notify t ln f
  end

let process_flow t ln (f : Flow.t) =
  Trace.incr ln.lc.c_tasks;
  ln.llinks_at_task <- Trace.value ln.lc.c_links;
  match ln.lhub with
  | Some h when is_global f ->
      (* shard 0 draining a global flow: its raw/state writes must not
         race the locked writes other shards make through
         [mark_instantiated] / message absorption *)
      with_struct_lock ln h (fun () -> process_flow_bits t ln f)
  | _ -> process_flow_bits t ln f

let process_rtask t task =
  let ln = t.lane0 in
  Trace.incr ln.lc.c_tasks;
  ln.llinks_at_task <- Trace.value ln.lc.c_links;
  match task with
  | REnable f ->
      Trace.incr ln.lc.c_enable;
      enable t ln f
  | RInput (f, v) ->
      Trace.incr ln.lc.c_input;
      input t ln f v
  | RNotify f ->
      Trace.incr ln.lc.c_notify;
      notify t ln f

(* ------------------------- parallel drain ----------------------------- *)

(* The parallel phase is a {e pre-pass}: worker domains drain their shards
   to (approximate) quiescence, then the ordinary sequential machinery
   closes the fixed point.  Correctness does not rest on the workers
   finishing everything:

   - every write is either owner-only (a shard only mutates flows of its
     own methods), or under the structural lock (graph building, linking,
     instantiation, global flows) — so all joins apply legitimately
     derived values and the state stays below the least fixed point;
   - the one remaining loss channel is a {e stale read}: an owner pushing
     a flow's state can miss a use/predicate edge another shard just
     linked (edge-list reads are unlocked).  [Domain.join] synchronizes
     memory, after which {!closure_sweep} re-pushes every edge's current
     source state and re-notifies every observer — re-seeding exactly the
     work any stale read could have dropped;
   - the sequential drain then runs to a fixed point that contains all
     seeds and sits below the lfp, hence {e is} the lfp — the same one,
     flow by flow, the sequential engine computes.

   Workers stop only at task boundaries, so compound actions (linking a
   callee, enabling a flow) are never half-done. *)

let worker_batch = 64

let worker_loop t ln h =
  let ib = h.h_inboxes.(ln.lid) in
  try
    while not (Atomic.get h.h_stop) do
      absorb_own t ln;
      if not (Worklist.is_empty ln.lwl) then begin
        let n = ref 0 in
        while !n < worker_batch && not (Worklist.is_empty ln.lwl) do
          process_flow t ln (Worklist.pop_exn ln.lwl);
          incr n
        done
      end
      else begin
        (* out of local work: park on the inbox until a sender signals or
           the monitor stops the drain *)
        Mutex.lock ib.ib_mutex;
        if Queue.is_empty ib.ib_q && not (Atomic.get h.h_stop) then begin
          Atomic.set h.h_idle.(ln.lid) true;
          let t0 = Unix.gettimeofday () in
          while Queue.is_empty ib.ib_q && not (Atomic.get h.h_stop) do
            Condition.wait ib.ib_cond ib.ib_mutex
          done;
          ln.lidle_us <-
            ln.lidle_us
            + int_of_float (Float.max 0.0 (Unix.gettimeofday () -. t0) *. 1e6);
          Atomic.set h.h_idle.(ln.lid) false;
          Atomic.incr h.h_act
        end;
        Mutex.unlock ib.ib_mutex
      end
    done
  with exn ->
    (* first failure wins; the monitor notices [h_stop] and shuts the
       drain down, and the main domain re-raises after the join *)
    ignore (Atomic.compare_and_set h.h_exn None (Some exn));
    Atomic.set h.h_stop true

(** Termination detection: the drain is quiescent when every worker is
    parked on its inbox and no message credit is outstanding.  The
    transition counter [h_act] guards against a wake-up racing the check:
    a worker that went idle, was woken and went idle again between our
    two reads bumps it, invalidating this round. *)
let monitor t h lanes ~budget ~elapsed_s =
  let base_tasks = Trace.value t.lane0.lc.c_tasks in
  let base_flows = Trace.value t.lane0.lc.c_live_flows in
  let total sel base =
    Array.fold_left (fun acc ln -> acc + Trace.value (sel ln.lc)) base lanes
  in
  while not (Atomic.get h.h_stop) do
    (if not (Budget.is_unlimited budget) then
       match
         Budget.check budget
           ~tasks:(total (fun c -> c.c_tasks) base_tasks)
           ~flows:(total (fun c -> c.c_live_flows) base_flows)
           ~elapsed_s
       with
       | Some trip ->
           Atomic.set h.h_trip (Some trip);
           Atomic.set h.h_stop true
       | None -> ());
    if not (Atomic.get h.h_stop) then begin
      let a1 = Atomic.get h.h_act in
      let quiet =
        Atomic.get h.h_inflight = 0 && Array.for_all Atomic.get h.h_idle
      in
      if quiet && Atomic.get h.h_act = a1 then Atomic.set h.h_stop true
      else Unix.sleepf 0.0002
    end
  done;
  (* wake every parked worker so it can observe the stop flag *)
  Array.iter
    (fun ib ->
      Mutex.lock ib.ib_mutex;
      Condition.broadcast ib.ib_cond;
      Mutex.unlock ib.ib_mutex)
    h.h_inboxes

(** Fold the per-shard lanes back into the sequential lane: leftover
    messages and pending rings become [lane0] worklist entries (dirty
    bits travel on the flows themselves), counters merge into the
    engine's trace, and per-shard utilization is published under
    ["par.shard<i>.*"] for the profiler. *)
let merge_lanes t h lanes =
  let ln0 = t.lane0 in
  Array.iter
    (fun ln ->
      (* leftover cross-shard messages (only on a budget stop): absorb
         them on the lane so the dirty bits are set, then move the ring *)
      ln.lhub <- None;
      Queue.iter (fun m -> absorb t ln m) h.h_inboxes.(ln.lid).ib_q;
      Queue.clear h.h_inboxes.(ln.lid).ib_q;
      Array.iter (fun f -> Worklist.push ln0.lwl f) (Worklist.pop_all ln.lwl))
    lanes;
  track_queue ln0 (Worklist.length ln0.lwl);
  Array.iter
    (fun ln ->
      List.iter
        (fun (name, v) ->
          if v <> 0 then begin
            let c = Trace.counter t.trace name in
            (* high-water marks merge as maxima, everything else sums *)
            let is_max =
              (* cheap substring test for ".max"/"max_" counter names *)
              let n = String.length name in
              let rec find i =
                i + 3 <= n
                && (String.sub name i 3 = "max" || find (i + 1))
              in
              find 0
            in
            if is_max then Trace.record_max c v else Trace.add c v
          end)
        (Trace.counters ln.ltrace))
    lanes;
  (* per-shard utilization, for [skipflow profile] *)
  let reg name v =
    if v <> 0 then Trace.add (Trace.counter t.trace name) v
  in
  reg "par.shards" (Array.length lanes);
  reg "par.regions" h.h_shard.Shard.regions;
  Array.iteri
    (fun i ln ->
      let p = Printf.sprintf "par.shard%d." i in
      reg (p ^ "tasks") (Trace.value ln.lc.c_tasks);
      reg (p ^ "msgs_sent") ln.lmsgs_sent;
      reg (p ^ "msgs_recv") ln.lmsgs_recv;
      reg (p ^ "idle_us") ln.lidle_us;
      Trace.record_max
        (Trace.counter t.trace (p ^ "queue_hwm"))
        h.h_inboxes.(i).ib_hwm;
      reg (p ^ "weight")
        (if i < Array.length h.h_shard.Shard.weights then
           h.h_shard.Shard.weights.(i)
         else 0))
    lanes

(** Re-seed every propagation obligation a stale edge-list read could
    have dropped during the parallel phase: push each enabled flow's
    state along its use and predicate edges and re-notify each observer.
    One sequential pass over all edges; the subsequent drain closes the
    fixed point.  (Newly linked methods keep growing [reachable_order]
    mid-walk; they were built after the join, sequentially, so the
    snapshot of the list taken here is enough.) *)
let closure_sweep t =
  let ln = t.lane0 in
  let sweep (f : Flow.t) =
    if f.Flow.enabled && not (Vstate.is_empty f.Flow.state) then begin
      List.iter (fun u -> emit_input t ln u f.Flow.state) f.Flow.uses;
      List.iter (fun p -> emit_enable t ln p) f.Flow.pred_out
    end;
    List.iter (fun o -> emit_notify t ln o) f.Flow.observers
  in
  sweep t.pred_on;
  sweep t.all_inst_any;
  Ids.Field.Tbl.iter (fun _ f -> sweep f) t.field_flows;
  Ids.Class.Tbl.iter (fun _ f -> sweep f) t.all_inst;
  List.iter
    (fun (m : Program.meth) ->
      match Ids.Meth.Tbl.find_opt t.graphs m.Program.m_id with
      | Some g -> List.iter sweep g.Graph.g_flows
      | None -> ())
    t.reachable_order

(** The parallel pre-pass: partition, spawn, monitor to quiescence (or a
    budget stop), join, merge.  Returns the budget trip the monitor
    observed, if any. *)
let par_prepass t ~shard_seed ~budget ~elapsed_s =
  let jobs = t.config.Config.jobs in
  let shard = Shard.compute ~seed:shard_seed ~jobs t.prog in
  let h =
    {
      h_shard = shard;
      h_inboxes =
        Array.init jobs (fun _ ->
            {
              ib_mutex = Mutex.create ();
              ib_cond = Condition.create ();
              ib_q = Queue.create ();
              ib_hwm = 0;
            });
      h_inflight = Atomic.make 0;
      h_idle = Array.init jobs (fun _ -> Atomic.make false);
      h_act = Atomic.make 0;
      h_stop = Atomic.make false;
      h_struct = Mutex.create ();
      h_trip = Atomic.make None;
      h_exn = Atomic.make None;
    }
  in
  (* lanes (and their worklists, which allocate a flow id for the dummy
     slot) are created on the main domain, before any spawn.  Lane traces
     carry their own counter registries (merged into [t.trace] after the
     join) and inherit the session's timer switch so per-shard PVPG
     construction still ticks [build.wall_us]; they never share the
     parent's phase stack or event buffer, which are not domain-safe. *)
  let lanes =
    Array.init jobs (fun i ->
        make_lane ~base:0 ~lid:i
          (Trace.create ~timers:(Trace.timers_on t.trace) ()))
  in
  Array.iter
    (fun ln ->
      ln.lhub <- Some h;
      tie_emit t ln)
    lanes;
  (* distribute the pending ring by ownership (dirty bits ride on the
     flows, so a plain push preserves the pending work exactly) *)
  Array.iter
    (fun f -> Worklist.push lanes.(owner_shard h f).lwl f)
    (Worklist.pop_all t.lane0.lwl);
  let domains =
    Array.map (fun ln -> Domain.spawn (fun () -> worker_loop t ln h)) lanes
  in
  monitor t h lanes ~budget ~elapsed_s;
  Array.iter Domain.join domains;
  merge_lanes t h lanes;
  (match Atomic.get h.h_exn with Some exn -> raise exn | None -> ());
  Atomic.get h.h_trip

(** [run ?random_order ?on_budget t] drains the worklist to the fixed
    point.

    By default pending work is processed FIFO.  With [random_order:seed]
    pending entries are picked pseudo-randomly instead — the fixed point
    must not change (all transfer functions are monotone joins over a
    finite lattice), which the property-test suite verifies by comparing
    runs.

    The run is subject to [t.config.budget].  When a cap trips, the
    reaction is [on_budget]:

    - [`Degrade] (default): switch to degradation mode ({!degrade}) and
      finish at a sound but coarser fixed point instead of aborting;
    - [`Pause]: stop at the next task boundary and return
      [Paused (snapshot)] — no state is widened, and resuming the
      snapshot ({!of_snapshot_bytes} + [run]) continues to the
      {e identical} fixed point, because a fixed point of a monotone
      chaotic iteration does not depend on where the drain was cut.

    Budget checks run after every drained entry and, through the in-task
    probe, after every interprocedural link, so even a single task that
    resolves many callees cannot overshoot a cap by more than one link's
    worth of work.  Once degraded (or once a pause is pending), checks
    stop and the remaining drain runs to its boundary so the final state
    is consistent. *)
let run ?random_order ?(on_budget = `Degrade) ?(shard_seed = 0) t =
  let ln = t.lane0 in
  let budget = t.config.Config.budget in
  let start = Unix.gettimeofday () in
  (* clamped against backwards clock steps: a negative elapsed time
     would make the wall budget unreachable *)
  let elapsed_s () = Float.max 0.0 (Unix.gettimeofday () -. start) in
  let trip_reaction trip =
    match on_budget with
    | `Degrade -> degrade t trip
    | `Pause ->
        if not t.pause_pending then begin
          t.pause_pending <- true;
          Trace.incr ln.lc.c_budget_trips;
          if t.first_trip = None then t.first_trip <- Some trip;
          Trace.record_max ln.lc.c_trip_tasks (Trace.value ln.lc.c_tasks);
          Trace.record_max ln.lc.c_trip_flows (Trace.value ln.lc.c_live_flows);
          if Trace.events_on t.trace then
            Trace.event t.trace ~kind:"pause"
              ~arg:
                (match trip with
                | Budget.Tasks -> 0
                | Budget.Seconds -> 1
                | Budget.Flows -> 2)
              ()
        end
  in
  let live () = (not t.degraded) && not t.pause_pending in
  let step_budget () =
    if live () && not (Budget.is_unlimited budget) then
      match
        Budget.check budget ~tasks:(Trace.value ln.lc.c_tasks)
          ~flows:(Trace.value ln.lc.c_live_flows) ~elapsed_s
      with
      | Some trip -> trip_reaction trip
      | None -> ()
  in
  (* installed on the lane for the duration of the run; called from the
     invoke/field re-resolution loops (see {!Budget.check_work}) *)
  let probe () =
    if live () && not (Budget.is_unlimited budget) then
      match
        Budget.check_work budget ~tasks:(Trace.value ln.lc.c_tasks)
          ~links:(Trace.value ln.lc.c_links - ln.llinks_at_task)
          ~flows:(Trace.value ln.lc.c_live_flows) ~elapsed_s
      with
      | Some trip -> trip_reaction trip
      | None -> ()
  in
  ln.lprobe <- probe;
  (* links made before the first task (root seeding, restored counters)
     are not this task's work *)
  ln.llinks_at_task <- Trace.value ln.lc.c_links;
  (* The parallel pre-pass runs only for the deduplicated engine in FIFO
     order (the randomized drain exists to exercise order-independence
     sequentially, and the reference engine is a specification, not a
     performance surface).  Whatever the workers leave behind — nothing
     on a clean quiescent stop, the un-drained remainder on a budget
     stop — lands back on [lane0] and the sequential tail below finishes
     exactly as it always has. *)
  if
    t.config.Config.jobs > 1 && t.mode = Dedup && random_order = None
    && not (Worklist.is_empty ln.lwl)
  then begin
    match par_prepass t ~shard_seed ~budget ~elapsed_s with
    | Some trip -> trip_reaction trip
    | None -> closure_sweep t
  end;
  let drain_fifo () =
    match t.mode with
    | Dedup ->
        while (not t.pause_pending) && not (Worklist.is_empty ln.lwl) do
          process_flow t ln (Worklist.pop_exn ln.lwl);
          step_budget ()
        done
    | Reference ->
        let continue_ = ref true in
        while !continue_ && not t.pause_pending do
          match Queue.take_opt t.rqueue with
          | None -> continue_ := false
          | Some task ->
              process_rtask t task;
              step_budget ()
        done
  in
  let drain_random seed =
    (* array-backed bag with swap-remove; deterministic LCG.  In dedup
       mode the bag holds pending flows (their [wk_pending] bit stays set
       while bagged, so emits keep merging into them); in reference mode
       it holds boxed tasks, as the original implementation did. *)
    let state = ref (seed land 0x3FFFFFFF) in
    let next bound =
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      !state mod bound
    in
    let swap_drain :
        'a. 'a array ref -> int ref -> (unit -> unit) -> ('a -> unit) ->
        ('a -> unit) -> unit =
     fun bag len refill process reschedule ->
      refill ();
      while !len > 0 do
        let i = next !len in
        let x = !bag.(i) in
        !bag.(i) <- !bag.(!len - 1);
        decr len;
        process x;
        step_budget ();
        if t.pause_pending then begin
          (* hand the still-bagged entries back to the queue so the
             snapshot sees them as pending work *)
          for k = 0 to !len - 1 do
            reschedule !bag.(k)
          done;
          len := 0
        end
        else if !len = 0 then refill ()
      done
    in
    match t.mode with
    | Dedup ->
        let bag = ref [||] and len = ref 0 in
        let refill () =
          let a = Worklist.pop_all ln.lwl in
          if Array.length a > 0 then begin
            bag := a;
            len := Array.length a
          end
        in
        swap_drain bag len refill (process_flow t ln) (Worklist.push ln.lwl)
    | Reference ->
        let bag = ref [||] and len = ref 0 in
        let refill () =
          let l = Queue.length t.rqueue in
          if l > 0 then begin
            bag := Array.init l (fun _ -> Queue.pop t.rqueue);
            len := l
          end
        in
        swap_drain bag len refill (process_rtask t) (fun task ->
            Queue.add task t.rqueue)
  in
  let drain () =
    match random_order with None -> drain_fifo () | Some s -> drain_random s
  in
  drain ();
  if t.pause_pending then begin
    t.pause_pending <- false;
    ln.lprobe <- (fun () -> ());
    Paused (snapshot_bytes t)
  end
  else if t.degraded then begin
    (* Degradation introduces [Any] object states.  An invoke (or field
       access) observing an [Any] receiver no longer sees incremental
       notifications when further types are instantiated (its receiver
       state cannot grow past top), so close the fixed point explicitly:
       re-run every flow-specific action and re-drain until the linked
       sets stop changing.  Each pass only adds links/graphs, so this
       terminates. *)
    let signature () =
      let field_links = ref 0 in
      Ids.Meth.Tbl.iter
        (fun _ g ->
          List.iter
            (fun (f : Flow.t) ->
              match f.Flow.kind with
              | Flow.Field_load fa | Flow.Field_store fa ->
                  field_links := !field_links + Ids.Field.Set.cardinal fa.Flow.fa_linked
              | _ -> ())
            g.Graph.g_flows)
        t.graphs;
      (Ids.Meth.Tbl.length t.graphs, Trace.value ln.lc.c_links, !field_links)
    in
    let rec close prev =
      (* snapshot: notifying can link new callees and grow [t.graphs]
         mid-walk; the next round covers the newcomers *)
      List.iter
        (fun (m : Program.meth) ->
          match Ids.Meth.Tbl.find_opt t.graphs m.Program.m_id with
          | Some g -> List.iter (fun f -> notify t ln f) g.Graph.g_flows
          | None -> ())
        t.reachable_order;
      drain ();
      let s = signature () in
      if s <> prev then close s
    in
    close (signature ());
    ln.lprobe <- (fun () -> ());
    Completed
  end
  else begin
    ln.lprobe <- (fun () -> ());
    Completed
  end

(* ------------------------------ results ------------------------------- *)

let prog_of t = t.prog
let config_of t = t.config
let mode_of t = t.mode

let roots t = t.roots
let is_reachable t (m : Ids.Meth.t) = Ids.Meth.Tbl.mem t.graphs m

let reachable_methods t = List.rev t.reachable_order

let reachable_count t = Ids.Meth.Tbl.length t.graphs

let graphs t =
  List.rev_map
    (fun m -> Ids.Meth.Tbl.find t.graphs m.Program.m_id)
    t.reachable_order

let graph_of t (m : Ids.Meth.t) = Ids.Meth.Tbl.find_opt t.graphs m

let instantiated_types t = Typeset.classes t.instantiated

let instantiated t = t.instantiated

let is_degraded t = t.degraded

let trace_of t = t.trace

let stats t =
  let c = t.lane0.lc in
  {
    tasks_processed = Trace.value c.c_tasks;
    input_tasks = Trace.value c.c_input;
    enable_tasks = Trace.value c.c_enable;
    notify_tasks = Trace.value c.c_notify;
    dedup_input = Trace.value c.c_dedup_input;
    dedup_enable = Trace.value c.c_dedup_enable;
    dedup_notify = Trace.value c.c_dedup_notify;
    use_edges = Trace.value c.c_use_edges;
    links = Trace.value c.c_links;
    max_queue = Trace.value c.c_max_queue;
    live_flows = Trace.value c.c_live_flows;
    budget_trips = Trace.value c.c_budget_trips;
    trip_tasks = Trace.value c.c_trip_tasks;
    trip_flows = Trace.value c.c_trip_flows;
    degraded = t.degraded;
    first_trip = t.first_trip;
  }
