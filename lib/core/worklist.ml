(** The deduplicated worklist backing {!Engine}: an int-indexed ring
    buffer of flow ids plus a side table mapping ids back to flows.

    The engine stores the dirty kinds (pending / recompute / enable /
    notify) as bits on {!Flow.t} itself ([Flow.work]); this module only
    owns the queue order.  Pushing records the flow in the side table the
    first time it is scheduled, so popping is a pair of array reads — no
    boxed task values, no hashing.

    Ids are global across engines ({!Flow.next_id} is a process-wide
    counter), so the side table is indexed by [id - base] where [base] is
    the first id that can be created after this worklist: every flow an
    engine schedules is created after its worklist, which keeps the table
    dense per engine. *)

type t = {
  mutable ring : int array;  (** flow ids, circular; capacity is a power of 2 *)
  mutable head : int;  (** index of the next id to pop *)
  mutable size : int;
  mutable flows : Flow.t array;  (** side table: [id - base] -> flow *)
  base : int;
  dummy : Flow.t;  (** padding value for unregistered side-table slots *)
}

let initial_capacity = 1024

let create ?base () =
  let dummy = Flow.make Flow.Pred_on in
  (* the dummy flow above just consumed an id, so the default base is the
     next id that can still be handed out; a resume ({!Engine.restore})
     passes the paused worklist's base instead, because the flows it will
     re-push were created in the snapshotted process *)
  let base = match base with Some b -> b | None -> !Flow.next_id + 1 in
  {
    ring = Array.make initial_capacity 0;
    head = 0;
    size = 0;
    flows = Array.make initial_capacity dummy;
    base;
    dummy;
  }

let base t = t.base

let length t = t.size
let is_empty t = t.size = 0

let register t (f : Flow.t) =
  let i = f.Flow.id - t.base in
  if i >= Array.length t.flows then begin
    let n = ref (Array.length t.flows * 2) in
    while i >= !n do
      n := !n * 2
    done;
    let a = Array.make !n t.dummy in
    Array.blit t.flows 0 a 0 (Array.length t.flows);
    t.flows <- a
  end;
  t.flows.(i) <- f

let grow_ring t =
  let cap = Array.length t.ring in
  let a = Array.make (cap * 2) 0 in
  for k = 0 to t.size - 1 do
    a.(k) <- t.ring.((t.head + k) land (cap - 1))
  done;
  t.ring <- a;
  t.head <- 0

let push t (f : Flow.t) =
  register t f;
  if t.size = Array.length t.ring then grow_ring t;
  t.ring.((t.head + t.size) land (Array.length t.ring - 1)) <- f.Flow.id;
  t.size <- t.size + 1

(** [pop_exn t] removes and returns the oldest pending flow.  The caller
    must check {!is_empty} first (keeps the hot loop allocation-free). *)
let pop_exn t =
  if t.size = 0 then invalid_arg "Worklist.pop_exn: empty";
  let id = t.ring.(t.head) in
  t.head <- (t.head + 1) land (Array.length t.ring - 1);
  t.size <- t.size - 1;
  t.flows.(id - t.base)

(** [pending t] returns the pending flows in queue order without removing
    them ({!Engine.snapshot_bytes} serializing a paused engine). *)
let pending t =
  let cap = Array.length t.ring in
  Array.init t.size (fun k ->
      t.flows.(t.ring.((t.head + k) land (cap - 1)) - t.base))

(** [pop_all t] empties the worklist and returns the pending flows in
    queue order (the random-order drain's refill). *)
let pop_all t =
  let n = t.size in
  let cap = Array.length t.ring in
  let a = Array.init n (fun k -> t.flows.(t.ring.((t.head + k) land (cap - 1)) - t.base)) in
  t.head <- 0;
  t.size <- 0;
  a
