(** The deduplicated worklist backing {!Engine}: an int-indexed ring
    buffer of flow ids plus a side table mapping ids back to flows.

    The engine stores the dirty kinds (pending / recompute / enable /
    notify) as bits on {!Flow.t} itself ([Flow.work]); this module only
    owns the queue order.  Pushing records the flow in the side table the
    first time it is scheduled, so popping is a pair of array reads — no
    boxed task values, no hashing.

    Every flow pushed here must have been created {e after} the worklist
    (ids are global, and the side table is indexed by [id - base] where
    [base] snapshots the id counter at creation). *)

type t

val create : ?base:int -> unit -> t
(** [base] (default: the next {!Flow} id that will be allocated) is the
    smallest flow id this worklist may ever see; every pushed flow must
    have [id >= base].  {!Engine.load_snapshot} passes the snapshotted
    worklist's base so restored flows keep their dense side-table slots. *)

val base : t -> int

val length : t -> int
val is_empty : t -> bool

val push : t -> Flow.t -> unit
(** Schedule a flow.  The caller is responsible for not double-queuing
    (the engine's dirty bits make pushes idempotent at its layer). *)

val pop_exn : t -> Flow.t
(** Remove and return the oldest pending flow.  The caller must check
    {!is_empty} first (keeps the hot loop allocation-free).
    @raise Invalid_argument when empty. *)

val pending : t -> Flow.t array
(** The pending flows in queue order, without removing them (used to
    serialize a paused engine). *)

val pop_all : t -> Flow.t array
(** Empty the worklist and return the pending flows in queue order (the
    random-order drain's refill). *)
