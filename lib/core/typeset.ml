(** Compact immutable sets of class ids, used as the object part of the
    value-state lattice (the subset lattice [S = (2^T, ⊆)] of Appendix B.2).

    Implemented as normalized immutable bit vectors: the representation has
    no trailing zero words, so structural equality coincides with set
    equality and hashing is cheap.  The special [null] type participates as
    bit 0 (its class id in {!Skipflow_ir.Program}). *)

type t = int array
(** word [i] holds members [64*i .. 64*i+62] (OCaml ints); normalized. *)

let bits_per_word = Sys.int_size

let empty : t = [||]

let is_empty (s : t) = Array.length s = 0

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let singleton i =
  if i < 0 then invalid_arg "Typeset.singleton";
  let w = i / bits_per_word in
  let a = Array.make (w + 1) 0 in
  a.(w) <- 1 lsl (i mod bits_per_word);
  a

let mem i (s : t) =
  let w = i / bits_per_word in
  w < Array.length s && s.(w) land (1 lsl (i mod bits_per_word)) <> 0

let add i (s : t) =
  let w = i / bits_per_word in
  let len = max (Array.length s) (w + 1) in
  let a = Array.make len 0 in
  Array.blit s 0 a 0 (Array.length s);
  a.(w) <- a.(w) lor (1 lsl (i mod bits_per_word));
  a (* adding a bit never creates trailing zeros *)

let remove i (s : t) =
  let w = i / bits_per_word in
  if w >= Array.length s then s
  else begin
    let a = Array.copy s in
    a.(w) <- a.(w) land lnot (1 lsl (i mod bits_per_word));
    normalize a
  end

let equal (a : t) (b : t) =
  let la = Array.length a in
  la = Array.length b
  &&
  let rec go i = i >= la || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let subset (a : t) (b : t) =
  let la = Array.length a in
  la <= Array.length b
  &&
  let rec go i = i >= la || (a.(i) land lnot b.(i) = 0 && go (i + 1)) in
  go 0

let disjoint (a : t) (b : t) =
  let l = min (Array.length a) (Array.length b) in
  let rec go i = i >= l || (a.(i) land b.(i) = 0 && go (i + 1)) in
  go 0

(* The binary operations return one of their arguments (physically) when
   it already is the result.  Near the fixed point almost every join and
   filter is a no-op, so these subset pre-checks turn the inner loop of
   the engine allocation-free; callers can also use the physical identity
   to skip re-boxing (see {!Vstate}). *)

let union (a : t) (b : t) =
  if subset b a then a
  else if subset a b then b
  else begin
    let la = Array.length a and lb = Array.length b in
    let big, small = if la >= lb then (a, b) else (b, a) in
    let r = Array.copy big in
    Array.iteri (fun i w -> r.(i) <- r.(i) lor w) small;
    r
  end

(* The historical union, kept for the reference engine: it materializes a
   fresh vector whenever both operands are non-empty, so measurements
   against [Engine.Reference] reproduce the allocation behavior the solver
   had before the sharing fast paths above were added. *)
let union_unshared (a : t) (b : t) =
  if is_empty a then b
  else if is_empty b then a
  else begin
    let la = Array.length a and lb = Array.length b in
    let big, small = if la >= lb then (a, b) else (b, a) in
    let r = Array.copy big in
    Array.iteri (fun i w -> r.(i) <- r.(i) lor w) small;
    r
  end

let inter (a : t) (b : t) =
  if subset a b then a
  else if subset b a then b
  else begin
    let l = min (Array.length a) (Array.length b) in
    let r = Array.make l 0 in
    for i = 0 to l - 1 do
      r.(i) <- a.(i) land b.(i)
    done;
    normalize r
  end

let diff (a : t) (b : t) =
  if disjoint a b then a
  else begin
    let r = Array.copy a in
    let l = min (Array.length a) (Array.length b) in
    for i = 0 to l - 1 do
      r.(i) <- r.(i) land lnot b.(i)
    done;
    normalize r
  end

(* Parallel-bit (SWAR) popcount.  The repeating-mask constants cannot be
   written as literals on 63-bit OCaml ints (0x5555... overflows
   [max_int]), so build them by shifting; the resulting bit patterns are
   exactly the usual masks truncated to [Sys.int_size] bits, which is all
   the algorithm needs. *)
let rep16 x = (((((x lsl 16) lor x) lsl 16) lor x) lsl 16) lor x
let m55 = rep16 0x5555
let m33 = rep16 0x3333
let m0f = rep16 0x0f0f
let h01 = rep16 0x0101

let popcount_naive w =
  let rec go w acc = if w = 0 then acc else go (w lsr 1) (acc + (w land 1)) in
  go w 0

let popcount_word =
  if bits_per_word = 63 then fun w ->
    let w = w - ((w lsr 1) land m55) in
    let w = (w land m33) + ((w lsr 2) land m33) in
    let w = (w + (w lsr 4)) land m0f in
    (* the high byte of [w * h01] accumulates all byte sums; bytes 0..6
       are complete bytes of the 63-bit word, byte 7 is the single top
       bit, already included by the multiply *)
    (w * h01) lsr 56
  else popcount_naive

let cardinal (s : t) = Array.fold_left (fun acc w -> acc + popcount_word w) 0 s

(* Iterate set bits via lowest-set-bit extraction: [w land -w] isolates
   the lowest bit, whose index is the popcount of the bits below it. *)
let iter f (s : t) =
  for wi = 0 to Array.length s - 1 do
    let base = wi * bits_per_word in
    let w = ref s.(wi) in
    while !w <> 0 do
      let b = !w land - !w in
      f (base + popcount_word (b - 1));
      w := !w lxor b
    done
  done

let fold f (s : t) init =
  let acc = ref init in
  for wi = 0 to Array.length s - 1 do
    let base = wi * bits_per_word in
    let w = ref s.(wi) in
    while !w <> 0 do
      let b = !w land - !w in
      acc := f (base + popcount_word (b - 1)) !acc;
      w := !w lxor b
    done
  done;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])
let of_list l = List.fold_left (fun s i -> add i s) empty l

(* Allocation-free word mixing; normalization makes it equality-compatible. *)
let hash (s : t) =
  let h = ref 0 in
  for i = 0 to Array.length s - 1 do
    h := (!h * 31) + s.(i)
  done;
  !h land max_int

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (elements s)

(* Typed wrappers over class ids. *)

let class_mem (c : Skipflow_ir.Ids.Class.t) s = mem (Skipflow_ir.Ids.Class.to_int c) s
let class_add c s = add (Skipflow_ir.Ids.Class.to_int c) s
let class_singleton c = singleton (Skipflow_ir.Ids.Class.to_int c)
let of_classes l = List.fold_left (fun s c -> class_add c s) empty l
let classes s = List.map Skipflow_ir.Ids.Class.of_int (elements s)
let iter_classes f s = iter (fun i -> f (Skipflow_ir.Ids.Class.of_int i)) s

(** The [null] member (bit 0, the reserved null class id). *)
let null_bit = singleton 0

let has_null s = mem 0 s
