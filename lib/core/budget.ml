(** Resource budgets for the fixed-point engine (see the interface for the
    degradation contract).  A budget is pure data; enforcement lives in
    {!Engine.run} so that the trip reaction — saturate, widen, re-drain —
    can reuse the engine's own propagation machinery. *)

type t = {
  max_tasks : int option;
  max_seconds : float option;
  max_flows : int option;
}

type trip = Tasks | Seconds | Flows

let unlimited = { max_tasks = None; max_seconds = None; max_flows = None }

let is_unlimited b =
  b.max_tasks = None && b.max_seconds = None && b.max_flows = None

let make ?max_tasks ?max_seconds ?max_flows () =
  { max_tasks; max_seconds; max_flows }

(** Small enough to trip on anything beyond a handful of statements, large
    enough that the engine has real in-flight state to degrade. *)
let tiny = { unlimited with max_tasks = Some 25 }

let check b ~tasks ~flows ~elapsed_s =
  let tripped cap v = match cap with Some c -> v >= c | None -> false in
  if tripped b.max_tasks tasks then Some Tasks
  else if tripped b.max_flows flows then Some Flows
  else
    match b.max_seconds with
    | Some cap when elapsed_s () >= cap -> Some Seconds
    | _ -> None

(** Work-unit accounting for the engine's in-task probe: a single drained
    task can resolve an unbounded number of callees/fields, so between
    task boundaries the interprocedural links made {e inside the current
    task} count toward the task cap.  [links] must be that in-task delta,
    not a run-cumulative counter — the caller tracks the counter value at
    the last task boundary.  This bounds the overshoot of [max_tasks] by
    the work of one link, not one task, while tripping no earlier than
    the boundary check itself. *)
let check_work b ~tasks ~links ~flows ~elapsed_s =
  check b ~tasks:(tasks + links) ~flows ~elapsed_s

let trip_name = function
  | Tasks -> "task budget"
  | Seconds -> "time budget"
  | Flows -> "flow budget"

let pp_trip ppf t = Format.pp_print_string ppf (trip_name t)

let pp ppf b =
  if is_unlimited b then Format.pp_print_string ppf "unlimited"
  else begin
    let sep = ref "" in
    let item fmt = Format.fprintf ppf "%s" !sep; sep := ", "; Format.fprintf ppf fmt in
    Option.iter (fun n -> item "tasks<=%d" n) b.max_tasks;
    Option.iter (fun s -> item "time<=%gs" s) b.max_seconds;
    Option.iter (fun n -> item "flows<=%d" n) b.max_flows
  end
