(** Static shard partition for the parallel solver: methods are grouped
    into strongly connected regions of the CHA call graph and the regions
    are distributed over [jobs] shards by greedy weight balancing.

    The partition is computed {e before} the drain starts, from the class
    hierarchy alone (no value states), so it is deterministic given
    [(program, jobs, seed)] — and any partition whatsoever is sound: the
    engine's cross-shard messages and its sequential closure sweep make
    the fixed point independent of who owns which flow (a property the
    qcheck suite exercises by randomizing [seed]).

    Keeping a call-graph SCC on one shard is a throughput heuristic, not a
    correctness requirement: mutually recursive methods exchange the most
    propagation traffic, and co-locating them turns that traffic into
    plain worklist pushes instead of cross-shard messages. *)

open Skipflow_ir

type t = {
  shards : int;  (** number of shards (= [jobs]) *)
  owner : int array;  (** method id -> owning shard, [0 .. shards-1] *)
  regions : int;  (** SCC regions of the call graph that were distributed *)
  weights : int array;  (** per-shard total instruction weight *)
}

let owner_of t (m : Ids.Meth.t) = t.owner.(Ids.Meth.to_int m)

(** Instruction count of a method body (phis included); bodiless methods
    still weigh 1 so every region has positive weight. *)
let meth_weight (m : Program.meth) =
  match m.Program.m_body with
  | None -> 1
  | Some body ->
      let w = ref 1 in
      Array.iter
        (fun (b : Bl.block) ->
          w := !w + List.length b.Bl.b_insns + List.length b.Bl.b_phis)
        body.Bl.blocks;
      !w

(** CHA call-graph successors: every implementation a virtual invoke could
    dispatch to (all subtypes of the static target's declaring class),
    the static target itself otherwise. *)
let succs_of prog (m : Program.meth) =
  match m.Program.m_body with
  | None -> []
  | Some body ->
      let seen = Hashtbl.create 16 in
      let out = ref [] in
      let add (callee : Program.meth) =
        let id = Ids.Meth.to_int callee.Program.m_id in
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.replace seen id ();
          out := id :: !out
        end
      in
      Array.iter
        (fun (b : Bl.block) ->
          List.iter
            (fun (i : Bl.insn) ->
              match i with
              | Bl.Invoke { target; virtual_; _ } ->
                  if virtual_ then
                    let decl = (Program.meth prog target).Program.m_class in
                    List.iter
                      (fun c ->
                        match Program.resolve prog ~recv_cls:c ~target with
                        | Some callee -> add callee
                        | None -> ())
                      (Program.all_subtypes prog decl)
                  else add (Program.meth prog target)
              | _ -> ())
            b.Bl.b_insns)
        body.Bl.blocks;
      !out

(** Iterative Tarjan SCC (explicit stack: method counts reach ~100k at
    scale 1.0, far past the OCaml call stack).  Returns the component id
    per node and the component count; component ids are assigned in
    completion order. *)
let tarjan n succs =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let ncomps = ref 0 in
  (* work item: (node, remaining successor list) *)
  let work = Stack.create () in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      Stack.push root stack;
      on_stack.(root) <- true;
      Stack.push (root, succs.(root)) work;
      while not (Stack.is_empty work) do
        let v, rest = Stack.pop work in
        match rest with
        | w :: rest' ->
            Stack.push (v, rest') work;
            if index.(w) < 0 then begin
              index.(w) <- !next_index;
              lowlink.(w) <- !next_index;
              incr next_index;
              Stack.push w stack;
              on_stack.(w) <- true;
              Stack.push (w, succs.(w)) work
            end
            else if on_stack.(w) then
              lowlink.(v) <- min lowlink.(v) index.(w)
        | [] ->
            if lowlink.(v) = index.(v) then begin
              let continue_ = ref true in
              while !continue_ do
                let w = Stack.pop stack in
                on_stack.(w) <- false;
                comp.(w) <- !ncomps;
                if w = v then continue_ := false
              done;
              incr ncomps
            end;
            (* propagate the lowlink into the parent frame, if any *)
            if not (Stack.is_empty work) then begin
              let p, _ = Stack.top work in
              lowlink.(p) <- min lowlink.(p) lowlink.(v)
            end
      done
    end
  done;
  (comp, !ncomps)

(* Deterministic LCG, used only to vary tie-breaking between equal-weight
   regions across seeds (the partition must be reproducible, so no
   [Random]). *)
let lcg state =
  let s = ((state * 1103515245) + 12345) land 0x3FFFFFFF in
  (s, s)

let compute ?(seed = 0) ~jobs prog =
  let n = Program.num_meths prog in
  let jobs = max 1 jobs in
  if jobs = 1 || n = 0 then
    { shards = jobs; owner = Array.make n 0; regions = n; weights = [| |] }
  else begin
    let weight = Array.make n 1 in
    let succs = Array.make n [] in
    Program.iter_meths prog (fun m ->
        let i = Ids.Meth.to_int m.Program.m_id in
        weight.(i) <- meth_weight m;
        succs.(i) <- succs_of prog m);
    let comp, ncomps = tarjan n succs in
    let cweight = Array.make ncomps 0 in
    for i = 0 to n - 1 do
      cweight.(comp.(i)) <- cweight.(comp.(i)) + weight.(i)
    done;
    (* Seeded Fisher-Yates over the region ids, then a stable sort by
       weight: the shuffle only decides ties, so every seed yields a
       balanced partition and equal-weight regions move between shards. *)
    let order = Array.init ncomps (fun i -> i) in
    let state = ref (seed land 0x3FFFFFFF) in
    for i = ncomps - 1 downto 1 do
      let s, r = lcg !state in
      state := s;
      let j = r mod (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(j);
      order.(j) <- tmp
    done;
    let order_l = Array.to_list order in
    let sorted =
      List.stable_sort (fun a b -> compare cweight.(b) cweight.(a)) order_l
    in
    (* LPT greedy: each region goes to the least-loaded shard. *)
    let load = Array.make jobs 0 in
    let shard_of_comp = Array.make ncomps 0 in
    List.iter
      (fun c ->
        let best = ref 0 in
        for s = 1 to jobs - 1 do
          if load.(s) < load.(!best) then best := s
        done;
        shard_of_comp.(c) <- !best;
        load.(!best) <- load.(!best) + cweight.(c))
      sorted;
    let owner = Array.init n (fun i -> shard_of_comp.(comp.(i))) in
    { shards = jobs; owner; regions = ncomps; weights = load }
  end
