(** Resource budgets for the fixed-point engine.

    A budget caps how much work {!Engine.run} may spend before it gives up
    on full precision.  Exceeding a cap does {e not} abort the analysis:
    the engine switches to {e degradation mode} — it force-saturates every
    object flow to the set of all instantiated types, widens primitive
    flows to [Any], and drains the remaining work to a sound but coarser
    fixed point (the same degrade-precision-never-correctness policy as the
    paper's saturation mechanism, Section 5).

    All caps are optional; {!unlimited} never trips. *)

type t = {
  max_tasks : int option;
      (** cap on worklist tasks processed before degradation *)
  max_seconds : float option;
      (** wall-clock cap; checked while draining the worklist *)
  max_flows : int option;
      (** cap on live flows (PVPG vertices) across all reachable methods *)
}

(** Why a budget tripped. *)
type trip = Tasks | Seconds | Flows

val unlimited : t
(** No caps; {!check} never trips. *)

val is_unlimited : t -> bool

val make :
  ?max_tasks:int -> ?max_seconds:float -> ?max_flows:int -> unit -> t

val tiny : t
(** A deliberately minuscule task cap, used by the fuzz harness to
    fault-inject the degradation path on every non-trivial input. *)

val check : t -> tasks:int -> flows:int -> elapsed_s:(unit -> float) -> trip option
(** [check b ~tasks ~flows ~elapsed_s] returns the first exceeded cap, if
    any.  [elapsed_s] is a thunk so the clock is only read when a
    wall-clock cap is actually configured. *)

val check_work :
  t -> tasks:int -> links:int -> flows:int -> elapsed_s:(unit -> float) -> trip option
(** [check_work] is {!check} with work-unit accounting for checks made
    {e inside} a task: a single drained invoke/field task can resolve an
    unbounded number of callees (a "mega-flow"), during which the task
    counter is frozen — so the interprocedural links made so far {e in
    the current task} (and only those — [links] is the delta since the
    last task boundary, never a run-cumulative count) are counted toward
    [max_tasks] too.  {!Engine.run} calls this from the re-resolution
    loops, bounding the [max_tasks] overshoot by one link's worth of
    work instead of one task's (a property the budget regression test
    pins down). *)

val trip_name : trip -> string
val pp_trip : Format.formatter -> trip -> unit
val pp : Format.formatter -> t -> unit
