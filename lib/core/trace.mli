(** Solver observability: a counters registry, nestable phase timers, and
    an event trace of solver activity.

    One {!t} accompanies one analysis run.  It has three independent
    facilities, each priced for its use:

    - {e counters} — named monotonic counters the engine, the build pass,
      and the lint checks register into.  A counter is a mutable box; an
      increment is one store, so counters are always on (they replace the
      hand-rolled stats fields the engine used to carry).
    - {e phase timers} — wall + CPU spans (parse / typecheck / lower /
      solve / metrics, nestable).  Re-entering a phase name at the same
      nesting depth accumulates into the same record, so a per-method
      activity like PVPG construction shows up as one aggregate line.
      Disabled timers cost one boolean test per {!with_phase}.
    - {e event trace} — per-flow solver activity (joins, predicate
      enables, invoke re-resolutions, saturation trips, budget
      degradations), buffered in memory and written as JSONL or as Chrome
      [trace_event] JSON loadable in [chrome://tracing] / Perfetto.
      Disabled events cost one boolean test per emission site.

    All JSON emitted here is integer-only (timestamps in microseconds), so
    the dependency-free JSON parser used for the findings interchange
    format can validate it. *)

(** {1 Counters} *)

type counter
(** A named monotonic counter registered in some trace's registry. *)

val counter_name : counter -> string
val value : counter -> int

val incr : counter -> unit

val add : counter -> int -> unit
(** Add [n >= 0].  @raise Invalid_argument on a negative delta — counters
    are monotonic by contract. *)

val record_max : counter -> int -> unit
(** High-water-mark update: raise the counter to [n] if [n] is larger
    (used for queue depths; still monotone). *)

(** {1 Traces} *)

type t

val create : ?timers:bool -> ?events:bool -> ?max_events:int -> unit -> t
(** A fresh trace.  [timers] (default [false]) enables phase timing;
    [events] (default [false]) enables the event buffer, capped at
    [max_events] (default 1_000_000; past it events are counted but
    dropped).  Counters are always available. *)

val timers_on : t -> bool
val events_on : t -> bool

val counter : t -> string -> counter
(** Find-or-create the named counter in this trace's registry. *)

val counters : t -> (string * int) list
(** Every registered counter with its current value, sorted by name. *)

(** {1 Phase timers} *)

type phase = {
  ph_name : string;
  ph_depth : int;  (** nesting depth at first entry (0 = top level) *)
  ph_wall_us : int;  (** total wall time, microseconds, across entries *)
  ph_cpu_us : int;  (** total CPU time, microseconds, across entries *)
  ph_count : int;  (** number of entries accumulated *)
  ph_first_start_us : int;  (** first entry time, relative to trace creation *)
}

val with_phase : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside the named phase.  When timers are off this is
    just an application.  Exceptions propagate; time is recorded either
    way.  Re-entering the same name at the same depth accumulates. *)

val phases : t -> phase list
(** Phases in first-entry order. *)

val timed : t -> counter -> (unit -> 'a) -> 'a
(** Accumulate the thunk's wall time (microseconds) into a counter — the
    cheap aggregate form of {!with_phase} for sub-phases that run many
    times (e.g. one PVPG construction per reachable method).  When timers
    are off this is just an application. *)

(** {1 Events} *)

type event = {
  ev_ts_us : int;  (** microseconds since trace creation *)
  ev_kind : string;  (** e.g. ["enable"], ["join"], ["link"], ["resolve"] *)
  ev_flow : int;  (** subject flow id, or -1 *)
  ev_meth : int;  (** owning method id, or -1 *)
  ev_arg : int;  (** kind-specific payload (callee id, delta size, ...) *)
}

val event : t -> kind:string -> ?flow:int -> ?meth:int -> ?arg:int -> unit -> unit
(** Buffer one event (no-op unless {!events_on}; hot emission sites should
    also pre-check {!events_on} to skip argument evaluation). *)

val events : t -> event list
(** Buffered events, oldest first. *)

val event_count : t -> int
val dropped_events : t -> int

val drop_events : t -> unit
(** Discard the buffered events (they count as dropped) — the memory
    ceiling's relief valve; counters and phases are untouched. *)

val by_kind : t -> (string * int) list
(** Event counts per kind, most frequent first. *)

val by_flow : t -> (int * int) list
(** Event counts per flow id (flows with ids only), most active first. *)

val by_meth : t -> (int * int) list
(** Event counts per method id (attributed events only), most active
    first. *)

(** {1 Serialization}

    [meth_name] maps a method id to a printable name (defaults to
    ["m<id>"]); pass [Program.qualified_name] at the call site. *)

val schema_version : int
(** Version stamped on every trace document this module writes. *)

val jsonl_string : ?meth_name:(int -> string) -> t -> string
(** The trace as JSON-lines: a header line carrying [schema_version],
    then one line per phase, counter, and event. *)

val chrome_string : ?meth_name:(int -> string) -> t -> string
(** The trace in Chrome [trace_event] format (the object form:
    [{"traceEvents": [...], ...}]): phases as complete ["X"] events,
    solver events as instants ["i"], counters in the top-level metadata. *)

val write_jsonl : ?meth_name:(int -> string) -> t -> string -> (unit, Io.error) result
val write_chrome : ?meth_name:(int -> string) -> t -> string -> (unit, Io.error) result
(** Atomic writes through the durable-IO layer; a failed export is
    reported, never raised and never a half-written file. *)

val pp_phases : Format.formatter -> t -> unit
(** Human-readable phase table (name indented by depth, wall/CPU ms,
    entry count). *)

val pp_counters : Format.formatter -> t -> unit
(** Human-readable counter dump, sorted by name. *)
