(** The evaluation metrics of the paper's Section 6 (the columns of
    Table 1), computed from an engine's fixed point.  A branch check
    "remains" iff both filtered branches are live; a virtual call is a
    {e PolyCall} iff at least two targets linked. *)

type t = {
  reachable_methods : int;
  type_checks : int;
  null_checks : int;
  prim_checks : int;
  poly_calls : int;
  mono_calls : int;  (** virtual call sites devirtualized to one target *)
  dead_invokes : int;  (** invoke flows never enabled / never linked *)
  binary_size : int;  (** Σ instruction count over reachable methods *)
  flows : int;  (** total flows created *)
  instantiated_types : int;
  degraded : bool;
      (** the run exhausted its {!Budget.t} and finished at a coarser,
          still-sound fixed point *)
  budget_trips : int;  (** budget-cap trip events recorded by the engine *)
  tasks : int;  (** worklist entries the engine drained *)
  dedup_hits : int;
      (** emits the deduplicated worklist collapsed into pending work *)
}

val compute : Engine.t -> t
val pp : Format.formatter -> t -> unit
