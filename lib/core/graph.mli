(** Per-method PVPGs and the bookkeeping the metrics need.

    A {!method_graph} owns every flow created for one reachable method,
    its parameter and return flows (the interprocedural linking points),
    and an index of its branch sites and invoke sites used to compute the
    Table 1 counter metrics. *)

open Skipflow_ir

(** One conditional branch in the source method: the pair of filtering
    flows that decide whether each successor branch is live.  A check
    "remains" in the compiled code (counter metrics of Section 6) iff both
    branches are live at the fixed point. *)
type branch_site = {
  bs_kind : Flow.check_kind;
  bs_then_live : Flow.t;  (** the then-branch's entry predicate (filter flow) *)
  bs_else_live : Flow.t;  (** the else-branch's entry predicate *)
  bs_span : Span.t option;  (** source position of the branch condition *)
  bs_swapped : bool;
      (** condition normalization swapped the targets: the IR then-successor
          is the {e source} else-branch (see {!Bl.block.b_term_swapped}) *)
  bs_synthetic : bool;
      (** branch introduced by lowering a literal boolean condition; lint
          clients must not report its one-sidedness *)
  bs_then_block : Ids.Block.t;  (** IR then-successor (label block) *)
  bs_else_block : Ids.Block.t;  (** IR else-successor (label block) *)
}

type method_graph = {
  g_meth : Program.meth;
  g_body : Bl.body;
  mutable g_params : Flow.t list;  (** receiver first for instance methods *)
  g_return : Flow.t;
  mutable g_flows : Flow.t list;  (** every flow of this method *)
  mutable g_branches : branch_site list;
  mutable g_invokes : Flow.t list;  (** flows with [Flow.Invoke] kind *)
  mutable g_defs : Flow.t option array;
      (** canonical defining flow per SSA variable (index = variable id);
          used by tests to compare fixed-point value states against
          concretely observed values *)
}

val flow_count : method_graph -> int

val both_branches_live : branch_site -> bool
(** A branch site is "live on both sides" when both its filter flows are
    enabled with a non-empty value state. *)
