(** Analysis configurations.

    The paper evaluates two configurations of the same framework: the
    baseline type-based flow-insensitive context-insensitive points-to
    analysis ("PTA", Wimmer et al. 2024) and SkipFlow = PTA + predicate
    edges + primitive value tracking.  We expose both feature bits
    separately, which also gives the two ablations used by the extra
    benchmarks:

    - [predicates]: when false, every flow is enabled at creation and
      predicate edges have no effect (flow-insensitive propagation);
    - [primitives]: when false, primitive constant sources produce [Any]
      instead of their constant, so comparison filters degenerate to
      pass-through (exactly the baseline's behaviour — type-check and
      null-check filtering flows are part of the baseline typeflow graphs
      and remain active).

    [saturation] optionally bounds type-set growth (after Wimmer et al.):
    a flow whose type set exceeds the cutoff is coarsened to "all
    instantiated types" and tracks the global instantiated-type flow from
    then on.  The paper's evaluated configuration runs without saturation,
    so the default is [None].

    [seed_root_params] implements the reflection/JNI root policy of
    Section 5: value states of root-method parameters contain any
    instantiated subtype of their declared type. *)

type t = {
  predicates : bool;
  primitives : bool;
  pval : Pval.mode;
      (** which primitive lattice [primitives] tracking runs on: the
          paper's flat constants ([Flat], the default) or the reduced
          product constants × intervals ([Product], {!Prim}) whose
          comparison filters narrow ranges *)
  saturation : int option;
  seed_root_params : bool;
  budget : Budget.t;
      (** resource caps for {!Engine.run}; on trip the engine degrades
          precision (never correctness) instead of aborting *)
  jobs : int;
      (** worker domains for the solve ({!Engine.run}); 1 (the default)
          is the sequential engine, byte-identical to every release
          before the parallel solver existed.  The fixed point is the
          same for every value — [jobs] is a throughput knob, never a
          precision knob — which is why {!Cache} deliberately leaves it
          out of its key *)
}

let skipflow =
  {
    predicates = true;
    primitives = true;
    pval = Pval.Flat;
    saturation = None;
    seed_root_params = true;
    budget = Budget.unlimited;
    jobs = 1;
  }

(** The baseline points-to analysis of the paper's evaluation. *)
let pta = { skipflow with predicates = false; primitives = false }

(** Ablation: predicate edges without primitive tracking. *)
let predicates_only = { skipflow with primitives = false }

(** Ablation: primitive tracking without predicate edges (primitive values
    still flow interprocedurally and filters still apply, but no code is
    ever considered unreachable because of them). *)
let primitives_only = { skipflow with predicates = false }

let name c =
  match (c.predicates, c.primitives) with
  | true, true -> "SkipFlow"
  | false, false -> "PTA"
  | true, false -> "SkipFlow[preds-only]"
  | false, true -> "SkipFlow[prims-only]"

let pp ppf c =
  Format.fprintf ppf "%s%s%s" (name c)
    (match c.pval with Pval.Flat -> "" | Pval.Product -> "[pval=product]")
    (match c.saturation with None -> "" | Some k -> Printf.sprintf "+sat%d" k);
  if c.jobs > 1 then Format.fprintf ppf "[jobs=%d]" c.jobs;
  if not (Budget.is_unlimited c.budget) then
    Format.fprintf ppf "[%a]" Budget.pp c.budget
