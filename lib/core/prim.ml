(* Reduced product constants × intervals (see the interface). *)

type t = { c : Pval.t; itv : Interval.t }
type binop = Add | Sub | Mul | Div | Rem
type rel = Lt | Le | Gt | Ge

let bot = { c = Pval.Bot; itv = Interval.bot }
let top = { c = Pval.Top; itv = Interval.top }
let const n = { c = Pval.Const n; itv = Interval.singleton n }

let reduce c itv =
  if Pval.is_bot c || Interval.is_bot itv then bot
  else
    match c with
    | Pval.Const n ->
        if Interval.mem n itv then const n else bot
    | Pval.Top -> (
        match Interval.as_const itv with
        | Some n -> const n
        | None -> { c = Pval.Top; itv })
    | Pval.Bot -> bot

let of_interval itv = reduce Pval.Top itv
let is_bot p = Pval.is_bot p.c
let is_top p = (match p.c with Pval.Top -> true | _ -> false) && Interval.is_top p.itv
let as_const p = match p.c with Pval.Const n -> Some n | _ -> None

let mem n p =
  (match p.c with
  | Pval.Bot -> false
  | Pval.Const m -> Int.equal m n
  | Pval.Top -> true)
  && Interval.mem n p.itv

let equal a b = Pval.equal a.c b.c && Interval.equal a.itv b.itv
let leq a b = Pval.leq a.c b.c && Interval.leq a.itv b.itv

let join a b =
  if leq a b then b
  else if leq b a then a
  else reduce (Pval.join a.c b.c) (Interval.join a.itv b.itv)

let meet a b =
  if leq a b then a
  else if leq b a then b
  else reduce (Pval.meet a.c b.c) (Interval.meet a.itv b.itv)

let widen a b = reduce (Pval.join a.c b.c) (Interval.widen a.itv b.itv)

let arith op a b =
  if is_bot a || is_bot b then bot
  else
    let f =
      match op with
      | Add -> Interval.add
      | Sub -> Interval.sub
      | Mul -> Interval.mul
      | Div -> Interval.div
      | Rem -> Interval.rem
    in
    of_interval (f a.itv b.itv)

let narrow r l rv =
  if is_bot l || is_bot rv then bot
  else
    let implied =
      match r with
      | Lt -> Interval.implied_lt rv.itv
      | Le -> Interval.implied_le rv.itv
      | Gt -> Interval.implied_gt rv.itv
      | Ge -> Interval.implied_ge rv.itv
    in
    meet l (of_interval implied)

let remove_const v n =
  match as_const v with
  | Some m -> if Int.equal m n then bot else v
  | None -> reduce v.c (Interval.remove n v.itv)

let pp ppf p =
  match as_const p with
  | Some n -> Format.pp_print_int ppf n
  | None ->
      if is_bot p then Format.pp_print_string ppf "Empty"
      else Interval.pp ppf p.itv
