(** Value states: the combined lattice [𝕃] of Appendix B.2 (Figure 11).

    A value state is either empty (⊥), a single primitive constant, a
    non-empty set of types (with [null] as a special type member), or the
    global top [Any].  Primitive constants are conceptually 1-element sets,
    so all value states can be treated uniformly as sets; [{Any}] is the top
    element sitting above both all primitive constants and all type sets.

    This module also implements the [Compare] auxiliary function of
    Appendix C, used by the filtering flows created for branch conditions,
    and the [instanceof] / declared-type filters.  All operations are
    monotone in every argument, which (with the finite height of [𝕃])
    guarantees termination of the fixed-point computation. *)

type t =
  | Empty
  | Const of int  (** one primitive constant; booleans are 0/1 *)
  | Types of Typeset.t  (** invariant: the set is non-empty *)
  | Any  (** ⊤ = [{Any}] *)

let empty = Empty
let any = Any
let const n = Const n
let vtrue = Const 1
let vfalse = Const 0
let null = Types Typeset.null_bit

let types ts = if Typeset.is_empty ts then Empty else Types ts
let of_class c = Types (Typeset.class_singleton c)
let is_empty = function Empty -> true | Const _ | Types _ | Any -> false

let equal a b =
  match (a, b) with
  | Empty, Empty | Any, Any -> true
  | Const x, Const y -> Int.equal x y
  | Types x, Types y -> Typeset.equal x y
  | (Empty | Const _ | Types _ | Any), _ -> false

let join a b =
  match (a, b) with
  | Empty, x | x, Empty -> x
  | Any, _ | _, Any -> Any
  | Const x, Const y -> if Int.equal x y then a else Any
  | Types x, Types y ->
      (* [Typeset.union] returns an argument physically when it already is
         the result; reuse the existing box then (the engine joins are
         mostly no-ops near the fixed point) *)
      let u = Typeset.union x y in
      if u == x then a else if u == y then b else Types u
  | Const _, Types _ | Types _, Const _ ->
      (* Mixing primitives and objects cannot happen in a well-typed
         program; the lattice join is the common top. *)
      Any

(* Pre-sharing join, for the reference engine: the [Types] case always
   re-boxes (and [union_unshared] always copies), reproducing the
   per-task transient allocation the solver paid before the physical
   sharing fast paths existed. *)
let join_unshared a b =
  match (a, b) with
  | Empty, x | x, Empty -> x
  | Any, _ | _, Any -> Any
  | Const x, Const y -> if Int.equal x y then a else Any
  | Types x, Types y -> Types (Typeset.union_unshared x y)
  | Const _, Types _ | Types _, Const _ -> Any

let leq a b =
  match (a, b) with
  | Empty, _ -> true
  | _, Any -> true
  | Const x, Const y -> Int.equal x y
  | Types x, Types y -> Typeset.subset x y
  | (Const _ | Types _ | Any), _ -> false

let type_set = function
  | Types ts -> ts
  | Empty | Const _ | Any -> Typeset.empty

let pp ppf = function
  | Empty -> Format.pp_print_string ppf "{}"
  | Const n -> Format.fprintf ppf "{%d}" n
  | Types ts -> Typeset.pp ppf ts
  | Any -> Format.pp_print_string ppf "{Any}"

let pp_named ~class_name ppf = function
  | Types ts ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf i ->
             Format.pp_print_string ppf (class_name (Skipflow_ir.Ids.Class.of_int i))))
        (Typeset.elements ts)
  | v -> pp ppf v

(* ------------------------------------------------------------------ *)
(* Filters                                                             *)
(* ------------------------------------------------------------------ *)

(** [filter_instanceof ~mask ~negated v] is the [TypeCheck] rule of
    Appendix C.  [mask] must be the set of subtypes of the checked class
    (excluding [null]).  The positive check keeps subtypes only ([null]
    fails [instanceof]); the negated check keeps everything else including
    [null].  Primitive states pass unchanged (an [instanceof] on a
    primitive is ill-typed; passing it through is sound). *)
let filter_instanceof ~(mask : Typeset.t) ~negated v =
  match v with
  | Types ts ->
      let ts' = if negated then Typeset.diff ts mask else Typeset.inter ts mask in
      if ts' == ts then v else types ts'
  | Empty -> Empty
  | Const _ | Any -> v

(** [filter_declared ~mask_with_null v] restricts an object state to the
    subtypes of a declared type (plus [null]); used by formal-parameter
    flows.  Primitive states pass unchanged. *)
let filter_declared ~(mask_with_null : Typeset.t) v =
  match v with
  | Types ts ->
      let ts' = Typeset.inter ts mask_with_null in
      if ts' == ts then v else types ts'
  | Empty -> Empty
  | Const _ | Any -> v

(** Comparison operators appearing in filtering flows.  Branch conditions
    are normalized to [==] and [<] (Appendix B.1); the negated ([inv]) and
    mirrored ([flip]) variants below arise during PVPG construction. *)
type cmp_op = Eq | Ne | Lt | Ge | Gt | Le

(** [inv op] is the operator for the [else] branch (logical negation). *)
let inv = function Eq -> Ne | Ne -> Eq | Lt -> Ge | Ge -> Lt | Gt -> Le | Le -> Gt

(** [flip op] mirrors the operands: filtering [y] with respect to [x < y]
    uses [flip (<) = (>)], i.e. keeps values of [y] greater than [x]
    (Appendix B.4). *)
let flip = function Eq -> Eq | Ne -> Ne | Lt -> Gt | Gt -> Lt | Le -> Ge | Ge -> Le

let pp_cmp_op ppf op =
  Format.pp_print_string ppf
    (match op with Eq -> "==" | Ne -> "!=" | Lt -> "<" | Ge -> ">=" | Gt -> ">" | Le -> "<=")

let int_cmp op x y =
  match op with
  | Eq -> x = y
  | Ne -> x <> y
  | Lt -> x < y
  | Ge -> x >= y
  | Gt -> x > y
  | Le -> x <= y

(** [compare_filter op vl vr] is the [Compare] function of Appendix C: the
    content of [vl] filtered with respect to [op] and [vr].

    - either operand empty → empty (both operands are needed);
    - [==] with [Any] on either side → the lower of the two states;
    - [==] otherwise → set intersection (this also implements null checks:
      [x == null] keeps [{null}]);
    - [!=] → set difference, with [Any] passing [vl] through unfiltered;
    - relational operators are defined on primitives only: [Any] anywhere →
      [vl] unfiltered; two constants → keep [vl] iff the relation holds.

    Ill-typed mixtures (a constant compared with a type set) conservatively
    return [vl]. *)
let compare_filter op vl vr =
  if is_empty vl || is_empty vr then Empty
  else
    match op with
    | Eq -> (
        match (vl, vr) with
        | Any, v | v, Any -> v
        | Const x, Const y -> if x = y then vl else Empty
        | Types x, Types y ->
            let i = Typeset.inter x y in
            if i == x then vl else if i == y then vr else types i
        | _ -> vl)
    | Ne -> (
        match (vl, vr) with
        | Any, _ -> Any
        | _, Any -> vl
        | Const x, Const y -> if x = y then Empty else vl
        | Types x, Types y ->
            (* The paper defines '≠' as plain set difference.  On type sets
               that is only sound when the right operand denotes a single
               runtime *value*: two distinct objects of the same type are
               still '≠'.  The only type that is a singleton value is
               [null], which is also the case that matters in practice
               (null checks), so we apply the difference exactly then and
               pass the state through otherwise.  The test-suite checks
               this against the concrete interpreter. *)
            if Typeset.equal y Typeset.null_bit then
              let d = Typeset.diff x y in
              if d == x then vl else types d
            else vl
        | _ -> vl)
    | Lt | Ge | Gt | Le -> (
        match (vl, vr) with
        | Any, _ | _, Any -> vl
        | Const x, Const y -> if int_cmp op x y then vl else Empty
        | _ -> vl)
