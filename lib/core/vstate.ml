(** Value states: the combined lattice [𝕃] of Appendix B.2 (Figure 11).

    A value state is either empty (⊥), a single primitive constant, a
    non-empty set of types (with [null] as a special type member), or the
    global top [Any].  Primitive constants are conceptually 1-element sets,
    so all value states can be treated uniformly as sets; [{Any}] is the top
    element sitting above both all primitive constants and all type sets.

    This module also implements the [Compare] auxiliary function of
    Appendix C, used by the filtering flows created for branch conditions,
    and the [instanceof] / declared-type filters.  All operations are
    monotone in every argument, which (with the finite height of [𝕃])
    guarantees termination of the fixed-point computation. *)

type t =
  | Empty
  | Prim of Prim.t
      (** primitive content; invariant: the payload is proper — never
          {!Prim.bot} (that is [Empty]) and never {!Prim.top} (that is
          [Any]).  Under [--pval flat] every payload is a singleton
          constant, reproducing the paper's [Const of int] exactly. *)
  | Types of Typeset.t  (** invariant: the set is non-empty *)
  | Any  (** ⊤ = [{Any}] *)

let empty = Empty
let any = Any

(* Always the fully-reduced singleton, independent of the pval mode, so
   [leq (const n) s] is the membership test under either lattice. *)
let const n = Prim (Prim.const n)
let vtrue = const 1
let vfalse = const 0
let null = Types Typeset.null_bit

(* Re-establish the properness invariant after a [Prim] operation. *)
let of_prim p =
  if Prim.is_bot p then Empty else if Prim.is_top p then Any else Prim p

let types ts = if Typeset.is_empty ts then Empty else Types ts
let of_class c = Types (Typeset.class_singleton c)
let is_empty = function Empty -> true | Prim _ | Types _ | Any -> false

let equal a b =
  match (a, b) with
  | Empty, Empty | Any, Any -> true
  | Prim x, Prim y -> Prim.equal x y
  | Types x, Types y -> Typeset.equal x y
  | (Empty | Prim _ | Types _ | Any), _ -> false

(* The primitive join is the one mode-dependent lattice point: flat
   tops out on distinct constants (paper, Figure 6); product joins in
   the reduced domain.  On singleton payloads both agree, so flat runs
   are bit-for-bit the pre-product behaviour. *)
let join_prim ~pval a b x y =
  match (pval : Pval.mode) with
  | Flat -> if Prim.equal x y then a else Any
  | Product ->
      let j = Prim.join x y in
      if j == x then a
      else if j == y then b
      else if Prim.is_top j then Any
      else Prim j

let join ~pval a b =
  match (a, b) with
  | Empty, x | x, Empty -> x
  | Any, _ | _, Any -> Any
  | Prim x, Prim y -> join_prim ~pval a b x y
  | Types x, Types y ->
      (* [Typeset.union] returns an argument physically when it already is
         the result; reuse the existing box then (the engine joins are
         mostly no-ops near the fixed point) *)
      let u = Typeset.union x y in
      if u == x then a else if u == y then b else Types u
  | Prim _, Types _ | Types _, Prim _ ->
      (* Mixing primitives and objects cannot happen in a well-typed
         program; the lattice join is the common top. *)
      Any

(* Pre-sharing join, for the reference engine: the [Types] case always
   re-boxes (and [union_unshared] always copies), reproducing the
   per-task transient allocation the solver paid before the physical
   sharing fast paths existed. *)
let join_unshared ~pval a b =
  match (a, b) with
  | Empty, x | x, Empty -> x
  | Any, _ | _, Any -> Any
  | Prim x, Prim y -> join_prim ~pval a b x y
  | Types x, Types y -> Types (Typeset.union_unshared x y)
  | Prim _, Types _ | Types _, Prim _ -> Any

let leq a b =
  match (a, b) with
  | Empty, _ -> true
  | _, Any -> true
  | Prim x, Prim y -> Prim.leq x y
  | Types x, Types y -> Typeset.subset x y
  | (Prim _ | Types _ | Any), _ -> false

let type_set = function
  | Types ts -> ts
  | Empty | Prim _ | Any -> Typeset.empty

let pp ppf = function
  | Empty -> Format.pp_print_string ppf "{}"
  | Prim p -> (
      match Prim.as_const p with
      | Some n -> Format.fprintf ppf "{%d}" n
      | None -> Format.fprintf ppf "{%a}" Prim.pp p)
  | Types ts -> Typeset.pp ppf ts
  | Any -> Format.pp_print_string ppf "{Any}"

let pp_named ~class_name ppf = function
  | Types ts ->
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf i ->
             Format.pp_print_string ppf (class_name (Skipflow_ir.Ids.Class.of_int i))))
        (Typeset.elements ts)
  | v -> pp ppf v

(* ------------------------------------------------------------------ *)
(* Filters                                                             *)
(* ------------------------------------------------------------------ *)

(** [filter_instanceof ~mask ~negated v] is the [TypeCheck] rule of
    Appendix C.  [mask] must be the set of subtypes of the checked class
    (excluding [null]).  The positive check keeps subtypes only ([null]
    fails [instanceof]); the negated check keeps everything else including
    [null].  Primitive states pass unchanged (an [instanceof] on a
    primitive is ill-typed; passing it through is sound). *)
let filter_instanceof ~(mask : Typeset.t) ~negated v =
  match v with
  | Types ts ->
      let ts' = if negated then Typeset.diff ts mask else Typeset.inter ts mask in
      if ts' == ts then v else types ts'
  | Empty -> Empty
  | Prim _ | Any -> v

(** [filter_declared ~mask_with_null v] restricts an object state to the
    subtypes of a declared type (plus [null]); used by formal-parameter
    flows.  Primitive states pass unchanged. *)
let filter_declared ~(mask_with_null : Typeset.t) v =
  match v with
  | Types ts ->
      let ts' = Typeset.inter ts mask_with_null in
      if ts' == ts then v else types ts'
  | Empty -> Empty
  | Prim _ | Any -> v

(** Comparison operators appearing in filtering flows.  Branch conditions
    are normalized to [==] and [<] (Appendix B.1); the negated ([inv]) and
    mirrored ([flip]) variants below arise during PVPG construction. *)
type cmp_op = Eq | Ne | Lt | Ge | Gt | Le

(** [inv op] is the operator for the [else] branch (logical negation). *)
let inv = function Eq -> Ne | Ne -> Eq | Lt -> Ge | Ge -> Lt | Gt -> Le | Le -> Gt

(** [flip op] mirrors the operands: filtering [y] with respect to [x < y]
    uses [flip (<) = (>)], i.e. keeps values of [y] greater than [x]
    (Appendix B.4). *)
let flip = function Eq -> Eq | Ne -> Ne | Lt -> Gt | Gt -> Lt | Le -> Ge | Ge -> Le

let pp_cmp_op ppf op =
  Format.pp_print_string ppf
    (match op with Eq -> "==" | Ne -> "!=" | Lt -> "<" | Ge -> ">=" | Gt -> ">" | Le -> "<=")

let int_cmp op x y =
  match op with
  | Eq -> x = y
  | Ne -> x <> y
  | Lt -> x < y
  | Ge -> x >= y
  | Gt -> x > y
  | Le -> x <= y

let rel_of = function
  | Lt -> Prim.Lt
  | Le -> Prim.Le
  | Gt -> Prim.Gt
  | Ge -> Prim.Ge
  | Eq | Ne -> assert false

(** [compare_filter ~pval op vl vr] is the [Compare] function of Appendix
    C: the content of [vl] filtered with respect to [op] and [vr].

    - either operand empty → empty (both operands are needed);
    - [==] with [Any] on either side → the lower of the two states;
    - [==] otherwise → intersection: type-set intersection on objects,
      {!Prim.meet} on primitives (on flat singletons that is exactly
      keep-or-empty; null checks keep [{null}]);
    - [!=] → difference where representable: a singleton right operand
      kills / endpoint-trims the left ([Any] passes [vl] through);
    - relational operators are defined on primitives only: two constants
      keep [vl] iff the relation holds; ranges narrow via {!Prim.narrow}.
      [Any] on the left narrows to the implied range only under
      [--pval product] — the single mode-gated case, which is why flat
      runs reproduce the paper's all-or-nothing filtering bit for bit.

    Ill-typed mixtures (a constant compared with a type set) conservatively
    return [vl]. *)
let compare_filter ~pval op vl vr =
  if is_empty vl || is_empty vr then Empty
  else
    match op with
    | Eq -> (
        match (vl, vr) with
        | Any, v | v, Any -> v
        | Prim x, Prim y ->
            let m = Prim.meet x y in
            if m == x then vl else if m == y then vr else of_prim m
        | Types x, Types y ->
            let i = Typeset.inter x y in
            if i == x then vl else if i == y then vr else types i
        | _ -> vl)
    | Ne -> (
        match (vl, vr) with
        | Any, _ -> Any
        | _, Any -> vl
        | Prim x, Prim y -> (
            match Prim.as_const y with
            | Some n ->
                let r = Prim.remove_const x n in
                if r == x then vl else of_prim r
            | None -> vl)
        | Types x, Types y ->
            (* The paper defines '≠' as plain set difference.  On type sets
               that is only sound when the right operand denotes a single
               runtime *value*: two distinct objects of the same type are
               still '≠'.  The only type that is a singleton value is
               [null], which is also the case that matters in practice
               (null checks), so we apply the difference exactly then and
               pass the state through otherwise.  The test-suite checks
               this against the concrete interpreter. *)
            if Typeset.equal y Typeset.null_bit then
              let d = Typeset.diff x y in
              if d == x then vl else types d
            else vl
        | _ -> vl)
    | Lt | Ge | Gt | Le -> (
        match (vl, vr) with
        | Prim x, Prim y -> (
            match (Prim.as_const x, Prim.as_const y) with
            | Some a, Some b -> if int_cmp op a b then vl else Empty
            | _ ->
                (* a non-singleton payload only exists under product *)
                let r = Prim.narrow (rel_of op) x y in
                if r == x then vl else of_prim r)
        | Any, Prim y when Pval.equal_mode pval Pval.Product ->
            of_prim (Prim.narrow (rel_of op) Prim.top y)
        | Any, _ | _, Any -> vl
        | _ -> vl)

(** Forward arithmetic transfer for the product lattice's [Arith] flows:
    interval transfer on primitive operands ({!Prim.arith}), [Empty] when
    either operand has no value yet, conservative [Any] otherwise.  Only
    built under [--pval product]. *)
let arith op a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Prim x, Prim y -> of_prim (Prim.arith op x y)
  | (Prim _ | Types _ | Any), _ -> Any
