(** Integer intervals with infinite bounds — the range half of the
    reduced-product primitive domain ({!Prim}).

    A value is either [Bot] (no integer) or a contiguous range
    [\[lo, hi\]] where a missing bound means −∞ / +∞.  The invariant
    [lo <= hi] holds for every constructed interval; {!of_bounds}
    normalizes a contradictory pair to [Bot].

    Arithmetic transfer matches the concrete interpreter semantics
    ({!Skipflow_interp}): native OCaml [+ - * / mod] on singletons
    (including 63-bit wraparound), division/remainder by a definite
    zero produces [Bot] because the concrete execution halts before a
    value flows.  Non-singleton results snap their bounds *outward* to
    a finite threshold ladder (the integers in [-64, 64] plus the
    powers of two), which keeps every ascending chain through the
    solver finite without an order-dependent widening delay — the
    dedup and reference engines stay flow-by-flow equal.  The classic
    {!widen} is still exported (and law-tested) for callers that
    iterate joins themselves. *)

type t = Bot | Itv of { lo : int option; hi : int option }

val bot : t
val top : t
val singleton : int -> t

(** [of_bounds lo hi] builds [\[lo, hi\]]; [None] is an infinite
    bound; a pair with [lo > hi] normalizes to [Bot]. *)
val of_bounds : int option -> int option -> t

val is_bot : t -> bool
val is_top : t -> bool
val mem : int -> t -> bool

(** [Some n] iff the interval is the singleton [{n}]. *)
val as_const : t -> int option

val equal : t -> t -> bool
val leq : t -> t -> bool
val join : t -> t -> t
val meet : t -> t -> t

(** Classic interval widening: a bound that grew since the previous
    iterate jumps straight to its infinity.  [widen old next] is an
    upper bound of both and stabilizes any ascending chain. *)
val widen : t -> t -> t

(** {1 Arithmetic transfer} — sound for the interpreter's semantics. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val rem : t -> t -> t

(** {1 Backward narrowing} — comparison support.

    [implied_lt r] is the set of integers that are [<] at least one
    element of [r] ("exists" semantics — exactly what a predicate
    filter on the left operand of [l < r] may keep).  Likewise for
    [le], [gt], [ge].  All return [Bot] on [Bot] input and [top] when
    the relevant bound of [r] is infinite. *)

val implied_lt : t -> t
val implied_le : t -> t
val implied_gt : t -> t
val implied_ge : t -> t

(** [remove n r]: best interval for [r \ {n}] — [Bot] when [r] is the
    singleton [{n}], an endpoint trim when [n] is an endpoint,
    otherwise [r] unchanged (interior holes are not representable). *)
val remove : int -> t -> t

val pp : Format.formatter -> t -> unit
