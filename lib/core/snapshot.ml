(** Versioned, checksummed on-disk blobs (see the interface for the
    format contract).  Layout, all integers little-endian:

    {v
    offset  size  field
    0       8     magic "SKFBLOB\x01"
    8       1     kind length K (<= 255)
    9       K     kind bytes (ASCII tag)
    9+K     4     schema version (caller-owned, per kind)
    13+K    8     payload length N
    21+K    4     CRC-32 of the payload
    25+K    N     payload
    v} *)

type error =
  | Io of { path : string; message : string }
  | Truncated of { path : string; expected : int; got : int }
  | Bad_magic of { path : string }
  | Bad_kind of { path : string; found : string; expected : string }
  | Bad_version of { path : string; found : int; expected : int }
  | Bad_checksum of { path : string }
  | Bad_payload of { path : string; message : string }

let error_message = function
  | Io { path; message } -> Printf.sprintf "%s: %s" path message
  | Truncated { path; expected; got } ->
      Printf.sprintf "%s: truncated blob (need %d bytes, have %d)" path expected got
  | Bad_magic { path } -> Printf.sprintf "%s: not a SkipFlow blob (bad magic)" path
  | Bad_kind { path; found; expected } ->
      Printf.sprintf "%s: blob kind %S where %S was expected" path found expected
  | Bad_version { path; found; expected } ->
      Printf.sprintf "%s: unsupported schema version %d (this build reads %d)" path
        found expected
  | Bad_checksum { path } -> Printf.sprintf "%s: payload checksum mismatch" path
  | Bad_payload { path; message } -> Printf.sprintf "%s: bad payload: %s" path message

let magic = "SKFBLOB\x01"

(* ------------------------------ CRC-32 -------------------------------- *)

(* IEEE 802.3, reflected polynomial; the table is built once on first
   use.  Kept dependency-free on purpose (no zlib binding in the tree). *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ------------------------------- write -------------------------------- *)

let put_u32 b v =
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let put_u64 b v =
  for i = 0 to 7 do
    Buffer.add_char b (Char.chr ((v lsr (8 * i)) land 0xFF))
  done

let encode ~kind ~version payload =
  if String.length kind > 255 then invalid_arg "Snapshot.write: kind too long";
  let b = Buffer.create (32 + String.length payload) in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr (String.length kind));
  Buffer.add_string b kind;
  put_u32 b version;
  put_u64 b (String.length payload);
  put_u32 b (crc32 payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* All blob IO goes through the durable-IO layer: [Io.write_file_atomic]
   owns the tmp-file discipline (closed and unlinked on every failure
   path, fsync per the process durability level) and the EINTR/backoff
   retries, and is where the fault-injection plans hook in. *)
let write ~path ~kind ~version payload =
  let bytes = encode ~kind ~version payload in
  match Io.write_file_atomic ~path bytes with
  | Ok () -> Ok ()
  | Error e -> Error (Io { path; message = e.Io.io_op ^ ": " ^ e.Io.io_message })

(* -------------------------------- read -------------------------------- *)

let get_u32 s off =
  let b i = Char.code s.[off + i] in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let get_u64 s off = get_u32 s off lor (get_u32 s (off + 4) lsl 32)

let read ~path ~kind ~version =
  match Io.read_file path with
  | Error e -> Error (Io { path; message = e.Io.io_message })
  | Ok s ->
      let len = String.length s in
      let need n = if len < n then Error (Truncated { path; expected = n; got = len }) else Ok () in
      let ( let* ) = Result.bind in
      let* () = need (String.length magic + 1) in
      if String.sub s 0 (String.length magic) <> magic then Error (Bad_magic { path })
      else
        let klen = Char.code s.[8] in
        let* () = need (9 + klen + 16) in
        let found_kind = String.sub s 9 klen in
        if found_kind <> kind then
          Error (Bad_kind { path; found = found_kind; expected = kind })
        else
          let found_version = get_u32 s (9 + klen) in
          if found_version <> version then
            Error (Bad_version { path; found = found_version; expected = version })
          else
            let plen = get_u64 s (13 + klen) in
            let crc = get_u32 s (21 + klen) in
            let start = 25 + klen in
            if plen < 0 || plen > len - start then
              Error (Truncated { path; expected = start + plen; got = len })
            else
              let payload = String.sub s start plen in
              if crc32 payload <> crc then Error (Bad_checksum { path })
              else Ok payload
