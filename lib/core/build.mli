(** PVPG construction: one method body (validated SSA) to its predicated
    value propagation graph (paper Section 4, Figures 7–8).

    {!run} is called by the engine each time a method becomes reachable —
    as a root, or when an invoke links it.  The context carries the
    engine-owned pieces construction needs: the global always-on
    predicate, the per-field global flows, the emit callback that
    schedules work for every edge drawn, and the run's {!Trace.t}, into
    which construction volume is accounted under the ["build."]
    counters ([build.methods], [build.flows], [build.edges]). *)

open Skipflow_ir

type ctx = {
  prog : Program.t;
  config : Config.t;
  masks : Masks.t;
  pred_on : Flow.t;
      (** the engine's always-enabled global predicate flow *)
  emit : Edges.emit;
  field_flow : Ids.Field.t -> Flow.t;
      (** the engine's global per-field flow; used to link static field
          accesses at construction time (no receiver to observe) *)
  trace : Trace.t;
      (** the run's counter registry; construction volume is accounted
          under the ["build."] counters *)
}

val run : ctx -> Program.meth -> Graph.method_graph
(** Build the PVPG for one method.
    @raise Invalid_argument if the method has no body (abstract methods
    never become reachable). *)
