(** The lattice [ℙ] of primitive values (paper, Figure 6): a flat lattice
    with bottom [Empty], one element per integer constant, and top [Any].
    Booleans are the constants 1 ([true]) and 0 ([false]); the join of two
    distinct constants is immediately [Any] (Section 3). *)

type t = Bot  (** Empty *) | Const of int | Top  (** Any *)

val equal : t -> t -> bool

val join : t -> t -> t
(** Least upper bound. *)

val leq : t -> t -> bool
(** Lattice order: [leq a b] iff [join a b = b]. *)

val meet : t -> t -> t
(** Greatest lower bound (distinct constants meet to [Bot]). *)

val is_bot : t -> bool
val pp : Format.formatter -> t -> unit

(** Which primitive lattice the analysis runs: the paper's flat
    constants ([Flat]) or the reduced product constants × intervals
    ([Product]).  Selected by [--pval] and carried in {!Config.t}. *)
type mode = Flat | Product

val equal_mode : mode -> mode -> bool
val mode_name : mode -> string
