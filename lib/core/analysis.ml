(** Top-level analysis driver: build the engine, register roots, solve to a
    fixed point, and collect metrics.  This is the entry point examples,
    tests, the CLI and the benchmark harness use. *)

open Skipflow_ir

type result = {
  config : Config.t;
  engine : Engine.t;
  metrics : Metrics.t;
  cpu_time_s : float;
      (** CPU time of graph construction + solving ([Sys.time]-based; the
          benchmark harness measures wall-clock time around [run]
          itself). *)
}

(** [run ~config prog ~roots] analyzes [prog] starting from the given root
    methods.  Root-method parameters are seeded according to
    [config.seed_root_params] (Section 5's reflection/JNI policy). *)
let run ?(config = Config.skipflow) ?random_order ?mode (prog : Program.t)
    ~(roots : Program.meth list) =
  let t0 = Sys.time () in
  let engine = Engine.create ?mode prog config in
  List.iter (fun m -> Engine.add_root engine m) roots;
  Engine.run ?random_order engine;
  let cpu_time_s = Sys.time () -. t0 in
  { config; engine; metrics = Metrics.compute engine; cpu_time_s }

(** Convenience: resolve root methods by ["Class.method"] qualified names.
    @raise Not_found if a name does not exist. *)
let roots_by_name (prog : Program.t) names =
  List.map
    (fun qname ->
      match String.split_on_char '.' qname with
      | [ cname; mname ] -> (
          match Program.find_class prog cname with
          | Some c -> (
              match Program.find_meth prog c mname with
              | Some m -> m
              | None -> raise Not_found)
          | None -> raise Not_found)
      | _ -> invalid_arg "roots_by_name: expected Class.method")
    names

let reachable_names (r : result) =
  List.map
    (fun (m : Program.meth) ->
      Program.qualified_name (Engine.prog_of r.engine) m.Program.m_id)
    (Engine.reachable_methods r.engine)
