(** Top-level analysis driver: build the engine, register roots, solve to a
    fixed point, and collect metrics.  This is the entry point examples,
    tests, the CLI and the benchmark harness use. *)

open Skipflow_ir

type result = {
  config : Config.t;
  engine : Engine.t;
  outcome : Engine.outcome;
      (** [Paused snapshot] only when [run] was called with
          [on_budget:`Pause] and a budget cap tripped *)
  metrics : Metrics.t;
  trace : Trace.t;
      (** the run's counters, and — when requested at creation — its
          phase timings and solver event stream *)
  cpu_time_s : float;
      (** CPU time of graph construction + solving ([Sys.time]-based; the
          benchmark harness measures wall-clock time around [run]
          itself). *)
}

let finish ?random_order ?on_budget ?shard_seed ~config ~trace ~t0 engine =
  let outcome =
    Trace.with_phase trace "solve" (fun () ->
        Engine.run ?random_order ?on_budget ?shard_seed engine)
  in
  let metrics = Trace.with_phase trace "metrics" (fun () -> Metrics.compute engine) in
  let cpu_time_s = Sys.time () -. t0 in
  { config; engine; outcome; metrics; trace; cpu_time_s }

(** [run ~config prog ~roots] analyzes [prog] starting from the given root
    methods.  Root-method parameters are seeded according to
    [config.seed_root_params] (Section 5's reflection/JNI policy). *)
let run ?(config = Config.skipflow) ?random_order ?on_budget ?shard_seed
    ?mode ?trace (prog : Program.t) ~(roots : Program.meth list) =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  let t0 = Sys.time () in
  let engine = Engine.create ?mode ~trace prog config in
  Trace.with_phase trace "roots" (fun () ->
      List.iter (fun m -> Engine.add_root engine m) roots);
  finish ?random_order ?on_budget ?shard_seed ~config ~trace ~t0 engine

(** [resume bytes] continues a paused solve from a [Paused] payload (or
    {!Engine.snapshot_bytes} output) to the fixed point the uninterrupted
    run would have reached.  [budget] (commonly {!Budget.unlimited})
    replaces the snapshotted budget; with neither a new budget nor
    [on_budget:`Pause] the resumed run would degrade at the very cap that
    paused it. *)
let resume ?random_order ?on_budget ?shard_seed ?budget ?trace bytes =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  let t0 = Sys.time () in
  match Engine.of_snapshot_bytes ~trace ?budget bytes with
  | Error _ as e -> e
  | Ok engine ->
      Ok
        (finish ?random_order ?on_budget ?shard_seed
           ~config:(Engine.config_of engine) ~trace ~t0 engine)

(** [rerun engine] drives an already-constructed engine (back) to its
    fixed point and recomputes metrics — the incremental-analysis path: a
    solved engine that just gained roots via {!Engine.add_root} re-drains
    from the new boundary flows only, and monotonicity guarantees the
    resulting fixed point is the one a from-scratch solve over the grown
    root set would reach. *)
let rerun ?random_order ?on_budget ?shard_seed ?trace engine =
  let trace =
    match trace with Some tr -> tr | None -> Engine.trace_of engine
  in
  let t0 = Sys.time () in
  finish ?random_order ?on_budget ?shard_seed
    ~config:(Engine.config_of engine) ~trace ~t0 engine

(** Convenience: resolve root methods by ["Class.method"] qualified names. *)
let roots_by_name (prog : Program.t) names =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | qname :: rest -> (
        match String.split_on_char '.' qname with
        | [ cname; mname ] -> (
            match Program.find_class prog cname with
            | Some c -> (
                match Program.find_meth prog c mname with
                | Some m -> go (m :: acc) rest
                | None ->
                    Error
                      (Printf.sprintf "unknown method %s in class %s" mname cname))
            | None -> Error (Printf.sprintf "unknown class %s" cname))
        | _ ->
            Error
              (Printf.sprintf "malformed root %S: expected Class.method" qname))
  in
  go [] names

let reachable_names (r : result) =
  List.map
    (fun (m : Program.meth) ->
      Program.qualified_name (Engine.prog_of r.engine) m.Program.m_id)
    (Engine.reachable_methods r.engine)
