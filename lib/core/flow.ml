(** Flows: the vertices of a predicated value propagation graph (PVPG)
    (paper, Section 4 / Appendix B.3).

    Each flow carries:
    - a {e value state} — the conservative over-approximation of the values
      the underlying base-language element can hold at runtime.  Following
      the paper's implementation note ("the actual implementation uses one
      value state per flow"), we store both the joined input [VS_in] (in
      [raw]) and the filtered output [VS_out] (in [state]); the split is
      needed operationally because a comparison filter must be re-applied
      when its {e observed} operand changes;
    - an {e enabled} bit — flows only propagate once enabled by a predicate
      edge (except under the baseline configuration, where every flow is
      enabled at creation);
    - outgoing {e use}, {e predicate} and {e observe} edges.

    Flows are created by {!Build} and driven to a fixed point by
    {!Engine}. *)

open Skipflow_ir

(** What a filter flow filters on (the [TypeCheck]/[Cond]/[PassThrough]
    rules of Figure 15). *)
type filter =
  | No_filter
  | Instanceof of { mask : Typeset.t; negated : bool; cls : Ids.Class.t }
      (** [mask] = subtypes of [cls], excluding null *)
  | Compare of { op : Vstate.cmp_op; other : t }
      (** filtered with respect to the current state of [other], which is
          connected by an observe edge *)
  | Declared of { mask_with_null : Typeset.t; cls : Ids.Class.t }
      (** formal-parameter filter: subtypes of the declared type + null *)
  | Arith of { op : Prim.binop; l : t; r : t }
      (** forward arithmetic transfer ([--pval product] only): the flow's
          VS_in is ignored and its output is [Vstate.arith op] over the
          states of the two operand flows, both connected by observe
          edges *)

(** Categories of branch sites, for the counter metrics of Table 1. *)
and check_kind = Type_check | Null_check | Prim_check

and invoke_site = {
  inv_target : Ids.Meth.t;  (** statically resolved target *)
  inv_virtual : bool;
  inv_recv : t option;  (** receiver flow in the caller; [None] for static *)
  inv_args : t list;  (** actual-argument flows, receiver excluded *)
  mutable inv_linked : Ids.Meth.Set.t;  (** callees linked so far *)
  mutable inv_seen : Typeset.t;
      (** receiver types already resolved; the deduplicated engine
          re-resolves only the delta on each notify (resolution is
          deterministic, so skipping seen types cannot change the fixed
          point) *)
}

and field_access = {
  fa_field : Ids.Field.t;
  fa_recv : t;  (** the flow of the receiver object [r], observed *)
  mutable fa_linked : Ids.Field.Set.t;  (** field-state flows linked so far *)
  mutable fa_seen : Typeset.t;
      (** receiver types whose field was already looked up (delta
          processing, as for {!invoke_site.inv_seen}) *)
}

and kind =
  | Pred_on  (** the unique always-enabled predicate [pred^on] *)
  | Source of Vstate.t  (** constants, [null], [new T], [Any] *)
  | Alloc of Ids.Class.t
      (** a [new T] source; enabling it marks [T] instantiated *)
  | Param of int  (** formal parameter [p_i] (0 = receiver for instance methods) *)
  | Phi  (** value join of a merge block *)
  | Phi_pred  (** predicate join of a merge block ([φ_pred]) *)
  | Field_load of field_access  (** a [v <- r.x] instruction *)
  | Field_store of field_access  (** an [r.x <- v] instruction *)
  | Field_state of Ids.Field.t
      (** the global per-declared-field flow returned by [LookUp] *)
  | Static_load of Ids.Field.t  (** a [v <- C.x] instruction *)
  | Static_store of Ids.Field.t  (** a [C.x <- v] instruction *)
  | Cast of Ids.Class.t
      (** a checkcast [(C) v]: a filtering flow in value position keeping
          subtypes of [C] plus [null] *)
  | Invoke of invoke_site
  | Return  (** the method's single return; for void methods its value
                state is the artificial constant 0 token (Section 5) *)
  | Filter of { check : check_kind; branch_then : bool }
      (** a filtering flow created for one branch of an [if] *)
  | All_instantiated of Ids.Class.t
      (** all instantiated subtypes of a class; feeds root-method
          parameters (reflection/JNI policy of Section 5) and saturated
          flows *)

and t = {
  id : int;
  kind : kind;
  meth : Ids.Meth.t option;  (** owning method; [None] for global flows *)
  span : Span.t option;
      (** source position of the base-language element this flow was
          created for; [None] for global/synthetic flows and for programs
          built without the frontend *)
  filter : filter;
  mutable enabled : bool;
  mutable raw : Vstate.t;  (** VS_in: join of enabled inputs *)
  mutable state : Vstate.t;  (** VS_out: [filter] applied to [raw] *)
  mutable uses : t list;  (** use-edge successors (reverse insertion order) *)
  mutable pred_out : t list;  (** predicate-edge successors *)
  mutable observers : t list;  (** observe-edge successors *)
  mutable saturated : bool;
      (** set when the type set grew past the saturation cutoff (optional
          engine feature, after Wimmer et al. 2024) *)
  mutable work : int;
      (** the deduplicated engine's scheduling bits ([wk_pending] while
          the flow sits in the worklist, plus the dirty kinds still to be
          processed); always 0 outside a drain *)
}

(** {2 Worklist scheduling bits}

    The deduplicated engine replaces boxed tasks with dirty bits on the
    flow itself: an emit that finds its bit already set is a no-op (the
    pending worklist entry will cover it). *)

let wk_pending = 1  (** the flow is in the worklist (or the random-order bag) *)

let wk_recompute = 2  (** VS_in grew; re-apply the filter and re-propagate *)

let wk_enable = 4  (** a predicate edge requested enabling *)

let wk_notify = 8  (** an observed flow changed; re-run the flow action *)

let next_id = ref 0

let make ?meth ?span ?(filter = No_filter) kind =
  incr next_id;
  {
    id = !next_id;
    kind;
    meth;
    span;
    filter;
    enabled = false;
    raw = Vstate.empty;
    state = Vstate.empty;
    uses = [];
    pred_out = [];
    observers = [];
    saturated = false;
    work = 0;
  }

let apply_filter ~pval (f : t) (v : Vstate.t) =
  match f.filter with
  | No_filter -> v
  | Instanceof { mask; negated; _ } -> Vstate.filter_instanceof ~mask ~negated v
  | Compare { op; other } -> Vstate.compare_filter ~pval op v other.state
  | Declared { mask_with_null; _ } -> Vstate.filter_declared ~mask_with_null v
  | Arith { op; l; r } -> Vstate.arith op l.state r.state

let is_invoke f = match f.kind with Invoke _ -> true | _ -> false

let kind_name f =
  match f.kind with
  | Pred_on -> "pred_on"
  | Source _ -> "source"
  | Alloc _ -> "alloc"
  | Param i -> Printf.sprintf "param%d" i
  | Phi -> "phi"
  | Phi_pred -> "phi_pred"
  | Field_load _ -> "load"
  | Field_store _ -> "store"
  | Field_state _ -> "field"
  | Static_load _ -> "static_load"
  | Static_store _ -> "static_store"
  | Cast _ -> "cast"
  | Invoke _ -> "invoke"
  | Return -> "return"
  | Filter { branch_then; _ } -> if branch_then then "filter+" else "filter-"
  | All_instantiated _ -> "all_instantiated"

let pp ppf f =
  Format.fprintf ppf "#%d:%s%s state=%a" f.id (kind_name f)
    (if f.enabled then "[on]" else "[off]")
    Vstate.pp f.state
