(** Independent fixed-point certification.

    Given a solved engine, re-check that the final flow states actually
    satisfy every inference rule of Figure 15 (Appendix C) — a defense in
    depth against worklist bookkeeping bugs (a missed notification would
    produce a state that is simply {e not} a fixed point, which this pass
    detects even when the result happens to look plausible):

    - {b Source/Alloc}: an enabled source's generated value is in its
      state; an enabled allocation's class is marked instantiated;
    - {b Propagate}: for every use edge [s ⤳ t] with [s] enabled,
      [VS_out(s) ≤ VS_in(t)], and [VS_out(t) ⊇ filter(VS_in(t))];
    - {b Predicate}: for every predicate edge [s ⤳ t] with [s] enabled and
      non-empty, [t] is enabled;
    - {b Invoke}: every enabled invoke has linked the resolution of every
      type in its receiver's state; for every linked callee the argument
      states are below the formal-parameter inputs and the callee's return
      state is below the invoke's input;
    - {b Load/Store}: every enabled field access has linked the [LookUp]
      of every receiver type, and values flow the right way across the
      per-field flow.

    [run] returns the list of violations (empty = certified).  The
    property-test suite certifies the fixed points of randomly generated
    programs under every configuration. *)

open Skipflow_ir

type violation = string

let check_flow_invariants ~pval prog (violations : violation list ref)
    (f : Flow.t) =
  let bad fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  let name () = Format.asprintf "%a" Flow.pp f in
  (* VS_out covers the filtered VS_in *)
  if not (Vstate.leq (Flow.apply_filter ~pval f f.Flow.raw) f.Flow.state) then
    bad "%s: VS_out does not cover filter(VS_in)" (name ());
  (* Source-like rules *)
  (match f.Flow.kind with
  | Flow.Source v when f.Flow.enabled ->
      if not (Vstate.leq v f.Flow.raw) then bad "%s: source value not in VS_in" (name ())
  | Flow.Alloc c when f.Flow.enabled ->
      if not (Vstate.leq (Vstate.of_class c) f.Flow.raw) then
        bad "%s: allocated class not in VS_in" (name ())
  | Flow.Return when f.Flow.enabled -> (
      match f.Flow.meth with
      | Some m when Ty.equal (Program.meth prog m).Program.m_ret_ty Ty.Void ->
          if Vstate.is_empty f.Flow.state then
            bad "%s: enabled void return without its token" (name ())
      | _ -> ())
  | _ -> ());
  if f.Flow.enabled then begin
    (* Propagate rule *)
    List.iter
      (fun (t : Flow.t) ->
        if not (Vstate.leq f.Flow.state t.Flow.raw) then
          bad "use edge %s -> %s: VS_out(s) not ≤ VS_in(t)" (name ())
            (Format.asprintf "%a" Flow.pp t))
      f.Flow.uses;
    (* Predicate rule *)
    if not (Vstate.is_empty f.Flow.state) then
      List.iter
        (fun (t : Flow.t) ->
          if not t.Flow.enabled then
            bad "predicate edge %s -> %s: target not enabled" (name ())
              (Format.asprintf "%a" Flow.pp t))
        f.Flow.pred_out
  end

(** The type-set content a receiver state denotes for linking purposes.
    Object flows only reach [Any] in degradation mode (budget exhaustion);
    there the engine conservatively resolves against every instantiated
    type, and the certifier must demand the same. *)
let recv_typeset engine (s : Vstate.t) =
  match s with Vstate.Any -> Engine.instantiated engine | _ -> Vstate.type_set s

let check_invoke engine prog violations (f : Flow.t) =
  let bad fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  match f.Flow.kind with
  | Flow.Invoke inv when f.Flow.enabled ->
      let targets =
        if inv.Flow.inv_virtual then
          match inv.Flow.inv_recv with
          | Some r ->
              Typeset.fold
                (fun ci acc ->
                  let c = Ids.Class.of_int ci in
                  if Program.is_null_class c then acc
                  else
                    match Program.resolve prog ~recv_cls:c ~target:inv.Flow.inv_target with
                    | Some m -> m :: acc
                    | None -> acc)
                (recv_typeset engine r.Flow.state)
                []
          | None -> []
        else [ Program.meth prog inv.Flow.inv_target ]
      in
      List.iter
        (fun (callee : Program.meth) ->
          if not (Ids.Meth.Set.mem callee.Program.m_id inv.Flow.inv_linked) then
            bad "invoke of %s: resolvable callee %s not linked"
              (Program.qualified_name prog inv.Flow.inv_target)
              (Program.qualified_name prog callee.Program.m_id);
          match Engine.graph_of engine callee.Program.m_id with
          | None ->
              bad "invoke: linked callee %s has no graph"
                (Program.qualified_name prog callee.Program.m_id)
          | Some cg ->
              let actuals =
                match inv.Flow.inv_recv with
                | Some r when not callee.Program.m_static -> r :: inv.Flow.inv_args
                | _ -> inv.Flow.inv_args
              in
              if
                Ids.Meth.Set.mem callee.Program.m_id inv.Flow.inv_linked
                && List.length actuals = List.length cg.Graph.g_params
              then begin
                List.iter2
                  (fun (a : Flow.t) (p : Flow.t) ->
                    if a.Flow.enabled && not (Vstate.leq a.Flow.state p.Flow.raw) then
                      bad "invoke of %s: argument state not ≤ parameter VS_in"
                        (Program.qualified_name prog callee.Program.m_id))
                  actuals cg.Graph.g_params;
                let ret = cg.Graph.g_return in
                if ret.Flow.enabled && not (Vstate.leq ret.Flow.state f.Flow.raw) then
                  bad "invoke of %s: return state not ≤ invoke VS_in"
                    (Program.qualified_name prog callee.Program.m_id)
              end)
        targets
  | _ -> ()

let check_field_access engine prog violations (f : Flow.t) =
  let bad fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  match f.Flow.kind with
  | (Flow.Field_load fa | Flow.Field_store fa) when f.Flow.enabled ->
      Typeset.iter
        (fun ci ->
          let c = Ids.Class.of_int ci in
          if not (Program.is_null_class c) then
            match Program.lookup_field prog ~recv_cls:c ~field:fa.Flow.fa_field with
            | None -> ()
            | Some fld ->
                if not (Ids.Field.Set.mem fld.Program.f_id fa.Flow.fa_linked) then
                  bad "field access %s: LookUp target not linked"
                    (Program.qualified_field_name prog fa.Flow.fa_field)
                else
                  let ff = Engine.field_flow engine fld.Program.f_id in
                  let ok =
                    match f.Flow.kind with
                    | Flow.Field_load _ -> Vstate.leq ff.Flow.state f.Flow.raw
                    | _ -> Vstate.leq f.Flow.state ff.Flow.raw
                  in
                  if not ok then
                    bad "field access %s: value states inconsistent with field flow"
                      (Program.qualified_field_name prog fa.Flow.fa_field))
        (recv_typeset engine fa.Flow.fa_recv.Flow.state)
  | _ -> ()

(** [run engine] re-checks the Figure 15 rules over the engine's fixed
    point; returns all violations found (empty list = certified). *)
let run (engine : Engine.t) : violation list =
  let prog = Engine.prog_of engine in
  let violations = ref [] in
  let degraded = Engine.is_degraded engine in
  let pval = (Engine.config_of engine).Config.pval in
  List.iter
    (fun (g : Graph.method_graph) ->
      List.iter
        (fun (f : Flow.t) ->
          (* Degradation invariant: a degraded run force-enables every
             flow of every reachable method; a disabled flow would mean
             the coarse fixed point silently kept some precision — and any
             soundness argument that relied on "everything enabled" would
             be void. *)
          if degraded && not f.Flow.enabled then
            violations :=
              Format.asprintf "%a: flow disabled in a degraded run" Flow.pp f
              :: !violations;
          check_flow_invariants ~pval prog violations f;
          check_invoke engine prog violations f;
          check_field_access engine prog violations f)
        g.Graph.g_flows)
    (Engine.graphs engine);
  List.rev !violations
