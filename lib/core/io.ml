(** The durable-IO effect layer (see the interface for the contract).

    Design notes:

    - Every logical operation (open-for-write, whole-buffer write, fsync,
      close, rename, unlink, mkdir, open-for-read, read) {e ticks} the
      installed fault plan exactly once, {e before} attempting the
      syscall; retries of the same logical operation do not tick again,
      so the operation index — and therefore the injected fault schedule
      and the crash-point enumeration — is a pure function of the
      workload, not of scheduling.
    - The crash point fires before the ticked operation runs: crashing
      at point [k] means operations [0..k-1] happened and operation [k]
      never did, which is exactly the state a [kill -9] between two
      syscalls leaves behind.
    - Injected EINTR and short writes are raised {e underneath} the
      retry/chunk machinery, so their test is that callers never see
      them. *)

(* ----------------------------- durability ----------------------------- *)

type durability = D_none | D_flush | D_fsync

let level = ref D_flush
let set_durability d = level := d
let durability () = !level

let durability_name = function
  | D_none -> "none"
  | D_flush -> "flush"
  | D_fsync -> "fsync"

(* ------------------------------- errors ------------------------------- *)

type error = { io_op : string; io_path : string; io_message : string }

let error_message e = Printf.sprintf "%s: %s: %s" e.io_path e.io_op e.io_message

(* ------------------------------ statistics ---------------------------- *)

type stats = {
  writes : int;
  appends : int;
  fsyncs : int;
  renames : int;
  retries : int;
  faults : int;
}

let s_writes = ref 0
let s_appends = ref 0
let s_fsyncs = ref 0
let s_renames = ref 0
let s_retries = ref 0
let s_faults = ref 0

let stats () =
  {
    writes = !s_writes;
    appends = !s_appends;
    fsyncs = !s_fsyncs;
    renames = !s_renames;
    retries = !s_retries;
    faults = !s_faults;
  }

let reset_stats () =
  s_writes := 0;
  s_appends := 0;
  s_fsyncs := 0;
  s_renames := 0;
  s_retries := 0;
  s_faults := 0

(* --------------------------- fault injection -------------------------- *)

type fault = F_eio | F_enospc | F_eintr | F_short_write | F_torn_rename

let fault_name = function
  | F_eio -> "eio"
  | F_enospc -> "enospc"
  | F_eintr -> "eintr"
  | F_short_write -> "short-write"
  | F_torn_rename -> "torn-rename"

let all_faults = [ F_eio; F_enospc; F_eintr; F_short_write; F_torn_rename ]

type plan = {
  p_seed : int;
  p_rate : int;
  p_faults : fault array;
  p_crash_at : int option;
  p_crash_exit : bool;
  mutable p_ops : int;
}

exception Crash_point of int

let plan ?(rate = 0) ?(faults = all_faults) ?crash_at ?(crash_exit = true)
    ~seed () =
  {
    p_seed = seed;
    p_rate = max 0 rate;
    p_faults = Array.of_list (if faults = [] then all_faults else faults);
    p_crash_at = crash_at;
    p_crash_exit = crash_exit;
    p_ops = 0;
  }

let active : plan option ref = ref None
let install p = active := Some p
let uninstall () = active := None

let with_plan p f =
  install p;
  Fun.protect ~finally:uninstall f

let ops_performed () = match !active with Some p -> p.p_ops | None -> 0
let injected () = !s_faults

(* A small integer mixer: the decision for operation [i] of a plan is a
   pure function of [(seed, i)] — the determinism the fault-plan oracle
   in [t_io] checks. *)
let mix seed i =
  let h = ref ((seed * 0x9E3779B1) lxor (i * 0x85EBCA77) lxor 0x165667B1) in
  h := !h lxor (!h lsr 15);
  h := !h * 0x2545F491;
  h := !h lxor (!h lsr 13);
  !h land max_int

let raw_decide ~seed ~rate ~faults i =
  if rate <= 0 then None
  else
    let h = mix seed i in
    if h mod rate <> 0 then None
    else Some faults.(h / rate mod Array.length faults)

let preview p ~n =
  List.init n (fun i ->
      raw_decide ~seed:p.p_seed ~rate:p.p_rate ~faults:p.p_faults i)

type op_kind =
  | Kopen_r
  | Kread
  | Kopen_w
  | Kwrite
  | Kfsync
  | Kclose
  | Krename
  | Kunlink
  | Kmkdir

(* Which faults make sense where: ENOSPC only on the write side, a short
   write only on a write, a torn rename only on a rename.  An
   inapplicable decision injects nothing (deterministically). *)
let applicable kind = function
  | F_eio | F_eintr -> true
  | F_enospc -> (
      match kind with
      | Kopen_w | Kwrite | Kfsync | Kclose | Kmkdir | Krename -> true
      | Kopen_r | Kread | Kunlink -> false)
  | F_short_write -> kind = Kwrite
  | F_torn_rename -> kind = Krename

(** One tick per logical operation: advance the op counter, fire the
    crash point if this is it, and return the (applicable) fault. *)
let tick kind =
  match !active with
  | None -> None
  | Some p ->
      let i = p.p_ops in
      p.p_ops <- i + 1;
      (match p.p_crash_at with
      | Some k when i = k ->
          if p.p_crash_exit then Unix._exit 137 else raise (Crash_point k)
      | _ -> ());
      (match raw_decide ~seed:p.p_seed ~rate:p.p_rate ~faults:p.p_faults i with
      | Some f when applicable kind f -> Some f
      | _ -> None)

(* ----------------------------- retry loops ---------------------------- *)

(* EINTR retries immediately (a signal storm is cheap to outlast);
   EAGAIN/EWOULDBLOCK backs off exponentially, bounded — past the bound
   the error is reported like any other, never spun on. *)
let with_retries f =
  let rec go ~eintr ~again ~delay =
    match f () with
    | v -> v
    | exception Unix.Unix_error (Unix.EINTR, _, _) when eintr > 0 ->
        incr s_retries;
        go ~eintr:(eintr - 1) ~again ~delay
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      when again > 0 ->
        incr s_retries;
        Unix.sleepf delay;
        go ~eintr ~again:(again - 1) ~delay:(Float.min 0.064 (delay *. 2.))
  in
  go ~eintr:200 ~again:6 ~delay:0.001

(** Run one logical operation with its planned fault applied: EIO/ENOSPC
    fail it outright; an injected EINTR fails the first attempt only —
    the retry loop must make it invisible. *)
let attempt kind ~op ~path f =
  let fault = tick kind in
  (match fault with
  | Some F_eio ->
      incr s_faults;
      raise (Unix.Unix_error (Unix.EIO, op, path))
  | Some F_enospc ->
      incr s_faults;
      raise (Unix.Unix_error (Unix.ENOSPC, op, path))
  | _ -> ());
  let pending_eintr = ref (fault = Some F_eintr) in
  with_retries (fun () ->
      if !pending_eintr then begin
        pending_eintr := false;
        incr s_faults;
        raise (Unix.Unix_error (Unix.EINTR, op, path))
      end;
      f ())

let to_error ~op ~path = function
  | Unix.Unix_error (e, failing_op, _) ->
      {
        io_op = (if failing_op = "" then op else failing_op);
        io_path = path;
        io_message = Unix.error_message e;
      }
  | Sys_error m -> { io_op = op; io_path = path; io_message = m }
  | e -> { io_op = op; io_path = path; io_message = Printexc.to_string e }

(** Total wrapper for a whole multi-op routine.  Expected IO failures
    map to [Error] after the cleanup; anything else — {!Crash_point}
    included — still runs the cleanup but propagates: an in-process
    simulated death unwinds exception-safely (no leaked fd, no stray
    temp file), while the faithful no-cleanup kill is [crash_exit]'s
    [_exit], which never unwinds at all. *)
let run_guarded ~op ~path ~on_failure f =
  match f () with
  | v -> Ok v
  | exception ((Unix.Unix_error _ | Sys_error _) as e) ->
      on_failure ();
      Error (to_error ~op ~path e)
  | exception e ->
      on_failure ();
      raise e

(* ------------------------------ primitives ---------------------------- *)

(** Write the whole buffer, absorbing short writes (real or injected) by
    continuing from the transferred offset. *)
let write_all fd path (data : string) =
  let bytes = Bytes.unsafe_of_string data in
  let len = Bytes.length bytes in
  let fault = tick Kwrite in
  (match fault with
  | Some F_eio ->
      incr s_faults;
      raise (Unix.Unix_error (Unix.EIO, "write", path))
  | Some F_enospc ->
      incr s_faults;
      raise (Unix.Unix_error (Unix.ENOSPC, "write", path))
  | _ -> ());
  let pending_eintr = ref (fault = Some F_eintr) in
  let pending_short = ref (fault = Some F_short_write) in
  let rec go off remaining =
    if remaining > 0 then begin
      let n =
        with_retries (fun () ->
            if !pending_eintr then begin
              pending_eintr := false;
              incr s_faults;
              raise (Unix.Unix_error (Unix.EINTR, "write", path))
            end;
            let ask =
              if !pending_short && remaining > 1 then begin
                pending_short := false;
                incr s_faults;
                remaining / 2
              end
              else remaining
            in
            Unix.write fd bytes off ask)
      in
      go (off + n) (remaining - n)
    end
  in
  go 0 len

let fsync_fd ~path fd =
  attempt Kfsync ~op:"fsync" ~path (fun () -> Unix.fsync fd);
  incr s_fsyncs

let fsync_dir dir =
  if !level = D_fsync then begin
    match tick Kfsync with
    | Some (F_eio | F_enospc) ->
        (* best-effort by contract: a directory that cannot be fsynced
           (some filesystems refuse) must not fail the publish *)
        incr s_faults
    | _ -> (
        match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
        | exception Unix.Unix_error _ -> ()
        | fd ->
            (try
               with_retries (fun () -> Unix.fsync fd);
               incr s_fsyncs
             with Unix.Unix_error _ -> ());
            (try Unix.close fd with Unix.Unix_error _ -> ()))
  end

(* ------------------------------ operations ---------------------------- *)

let read_file path =
  let fd = ref None in
  let close_quiet () =
    match !fd with
    | Some f ->
        fd := None;
        (try Unix.close f with Unix.Unix_error _ -> ())
    | None -> ()
  in
  run_guarded ~op:"read" ~path ~on_failure:close_quiet (fun () ->
      fd :=
        Some
          (attempt Kopen_r ~op:"open" ~path (fun () ->
               Unix.openfile path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0));
      let f = Option.get !fd in
      let fault = tick Kread in
      (match fault with
      | Some F_eio ->
          incr s_faults;
          raise (Unix.Unix_error (Unix.EIO, "read", path))
      | _ -> ());
      let pending_eintr = ref (fault = Some F_eintr) in
      let buf = Buffer.create 65536 in
      let chunk = Bytes.create 65536 in
      let rec go () =
        let n =
          with_retries (fun () ->
              if !pending_eintr then begin
                pending_eintr := false;
                incr s_faults;
                raise (Unix.Unix_error (Unix.EINTR, "read", path))
              end;
              Unix.read f chunk 0 (Bytes.length chunk))
        in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        end
      in
      go ();
      close_quiet ();
      Buffer.contents buf)

let do_rename ~src ~dst =
  (match tick Krename with
  | Some F_eio ->
      incr s_faults;
      raise (Unix.Unix_error (Unix.EIO, "rename", dst))
  | Some F_enospc ->
      incr s_faults;
      raise (Unix.Unix_error (Unix.ENOSPC, "rename", dst))
  | Some F_torn_rename ->
      (* the torn-page state a missing fsync exposes: the rename lands
         but half the data blocks never hit the platter.  Simulated by
         truncating the source before the (atomic) rename — the
         destination ends up damaged, and the reader's CRC must say so. *)
      incr s_faults;
      (match Unix.stat src with
      | exception Unix.Unix_error _ -> ()
      | st -> (
          match
            Unix.openfile src [ Unix.O_WRONLY; Unix.O_CLOEXEC ] 0o644
          with
          | exception Unix.Unix_error _ -> ()
          | fd ->
              (try Unix.ftruncate fd (st.Unix.st_size / 2)
               with Unix.Unix_error _ -> ());
              (try Unix.close fd with Unix.Unix_error _ -> ())))
  | Some F_eintr ->
      incr s_faults;
      (* rename is not interruptible in practice; treat as absorbed *)
      incr s_retries
  | Some F_short_write | None -> ());
  with_retries (fun () -> Unix.rename src dst);
  incr s_renames

let rename ~src ~dst =
  run_guarded ~op:"rename" ~path:dst ~on_failure:ignore (fun () ->
      do_rename ~src ~dst)

let unlink path =
  run_guarded ~op:"unlink" ~path ~on_failure:ignore (fun () ->
      attempt Kunlink ~op:"unlink" ~path (fun () ->
          try Unix.unlink path
          with Unix.Unix_error (Unix.ENOENT, _, _) -> ()))

let rec mkdir_p_exn path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p_exn (Filename.dirname path);
    attempt Kmkdir ~op:"mkdir" ~path (fun () ->
        try Unix.mkdir path 0o755
        with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let mkdir_p path =
  run_guarded ~op:"mkdir" ~path ~on_failure:ignore (fun () -> mkdir_p_exn path)

let write_file_atomic ~path data =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd = ref None in
  let cleanup () =
    (match !fd with
    | Some f ->
        fd := None;
        (try Unix.close f with Unix.Unix_error _ -> ())
    | None -> ());
    try Unix.unlink tmp with Unix.Unix_error _ -> ()
  in
  run_guarded ~op:"write" ~path ~on_failure:cleanup (fun () ->
      fd :=
        Some
          (attempt Kopen_w ~op:"open" ~path:tmp (fun () ->
               Unix.openfile tmp
                 [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
                 0o644));
      let f = Option.get !fd in
      write_all f tmp data;
      if !level = D_fsync then fsync_fd ~path:tmp f;
      attempt Kclose ~op:"close" ~path:tmp (fun () -> Unix.close f);
      fd := None;
      do_rename ~src:tmp ~dst:path;
      fsync_dir (Filename.dirname path);
      incr s_writes)

(* ------------------------------- appender ----------------------------- *)

type appender = {
  ap_path : string;
  ap_fd : Unix.file_descr;
  ap_buf : Buffer.t;  (** user-space buffer, used only at [D_none] *)
  mutable ap_closed : bool;
}

let open_append path =
  run_guarded ~op:"open" ~path ~on_failure:ignore (fun () ->
      mkdir_p_exn (Filename.dirname path);
      let fd =
        attempt Kopen_w ~op:"open" ~path (fun () ->
            Unix.openfile path
              [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT; Unix.O_CLOEXEC ]
              0o644)
      in
      { ap_path = path; ap_fd = fd; ap_buf = Buffer.create 256; ap_closed = false })

let drain_buffer ap =
  if Buffer.length ap.ap_buf > 0 then begin
    let data = Buffer.contents ap.ap_buf in
    Buffer.clear ap.ap_buf;
    write_all ap.ap_fd ap.ap_path data
  end

let append_line ap line =
  if ap.ap_closed then
    Error { io_op = "append"; io_path = ap.ap_path; io_message = "closed" }
  else
    run_guarded ~op:"append" ~path:ap.ap_path ~on_failure:ignore (fun () ->
        (match !level with
        | D_none ->
            Buffer.add_string ap.ap_buf line;
            Buffer.add_char ap.ap_buf '\n'
        | D_flush -> write_all ap.ap_fd ap.ap_path (line ^ "\n")
        | D_fsync ->
            write_all ap.ap_fd ap.ap_path (line ^ "\n");
            fsync_fd ~path:ap.ap_path ap.ap_fd);
        incr s_appends)

let flush_append ap =
  if ap.ap_closed then Ok ()
  else
    run_guarded ~op:"flush" ~path:ap.ap_path ~on_failure:ignore (fun () ->
        drain_buffer ap;
        if !level = D_fsync then fsync_fd ~path:ap.ap_path ap.ap_fd)

let close_append ap =
  if not ap.ap_closed then begin
    ap.ap_closed <- true;
    (try drain_buffer ap
     with Unix.Unix_error _ | Sys_error _ -> ());
    try Unix.close ap.ap_fd with Unix.Unix_error _ -> ()
  end

(* --------------------------- crash-point fork -------------------------- *)

let fork_crashing ~plan f =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (* the child is a simulated production process about to die: it
         must not run the parent's at_exit handlers or flush inherited
         channels, whether it crashes at the planned point or survives
         the workload *)
      install plan;
      (try f () with _ -> ());
      Unix._exit 0
  | pid ->
      let rec wait () =
        match Unix.waitpid [] pid with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        | _ -> ()
      in
      wait ()
