(** PVPG construction: one linear pass over a method body (paper,
    Appendix B.4, Figures 12–14).

    Basic blocks are traversed in reverse postorder and instructions top to
    bottom.  Per block, the traversal maintains

    - a mapping from variables to flows.  Because our input is already in
      SSA form with explicit phi instructions (produced by
      {!Skipflow_ir.Ssa_builder}), every variable has a canonical defining
      flow; the per-block mapping only records the {e filtering-flow
      re-definitions} introduced by branch conditions (Figure 14) plus the
      shadow-phi flows that [propagate] (Figure 13) creates when
      re-definitions collide at control-flow merges.  Explicit SSA phis are
      turned into [Phi] flows directly (the paper's dynamic collision
      detection re-derives exactly these for ordinary values, so the result
      is the same graph);
    - the current predicate [pred], updated by every invoke and branch, used
      as the source of the predicate edge every newly created flow receives.

    Merge blocks get a [φ_pred] flow that joins the predicates of all
    incoming edges and predicates the block's phi flows and subsequent
    instructions (Section 3, "Joining Values using φ Flows").

    The returned {!Graph.method_graph} records the branch sites and invoke
    sites used by the counter metrics. *)

open Skipflow_ir

type ctx = {
  prog : Program.t;
  config : Config.t;
  masks : Masks.t;
  pred_on : Flow.t;
  emit : Edges.emit;
  field_flow : Ids.Field.t -> Flow.t;
      (** the engine's global per-field flow; used to link static field
          accesses at construction time (no receiver to observe) *)
  trace : Trace.t;
      (** the run's counter registry; construction volume is accounted
          under the ["build."] counters *)
}

module VarMap = Map.Make (Int)
module VarSet = Set.Make (Int)

(* The re-definition environment is a persistent map so that entering a
   branch target shares the parent block's environment in O(1) instead of
   copying it; with the old eager [Hashtbl] copy a chain of [d] sequential
   branches cost O(d²) copying per method, which dominated construction on
   branchy code. *)
type block_state = {
  mutable map : Flow.t VarMap.t;  (** filter/shadow re-definitions, by var id *)
  mutable shadow_phis : VarSet.t;
      (** vars whose [map] entry is a shadow phi created by this merge *)
  mutable cur_pred : Flow.t;
  mutable touched : bool;  (** has any predecessor propagated into this merge? *)
}

let run ctx (meth : Program.meth) : Graph.method_graph =
  let body =
    match meth.Program.m_body with
    | Some b -> b
    | None ->
        invalid_arg
          (Printf.sprintf "Build.run: method %s has no body" meth.Program.m_name)
  in
  let c_methods = Trace.counter ctx.trace "build.methods"
  and c_flows = Trace.counter ctx.trace "build.flows"
  and c_edges = Trace.counter ctx.trace "build.edges" in
  Trace.incr c_methods;
  let emit = ctx.emit in
  let use_edge s t = Trace.incr c_edges; Edges.use_edge ~emit s t in
  let pred_edge s t = Trace.incr c_edges; Edges.pred_edge ~emit s t in
  let obs_edge s t = Trace.incr c_edges; Edges.obs_edge ~emit s t in
  let return_flow =
    Flow.make ~meth:meth.Program.m_id ?span:meth.Program.m_span Flow.Return
  in
  let g : Graph.method_graph =
    {
      g_meth = meth;
      g_body = body;
      g_params = [];
      g_return = return_flow;
      g_flows = [ return_flow ];
      g_branches = [];
      g_invokes = [];
      g_defs = [||];
    }
  in
  let register f =
    Trace.incr c_flows;
    g.g_flows <- f :: g.g_flows;
    (match f.Flow.kind with Flow.Invoke _ -> g.g_invokes <- f :: g.g_invokes | _ -> ());
    f
  in
  let mk ?filter ?span kind =
    register (Flow.make ~meth:meth.Program.m_id ?span ?filter kind)
  in
  (* canonical defining flow per SSA variable *)
  let def : Flow.t option array = Array.make body.Bl.var_count None in
  let set_def v f = def.(Ids.Var.to_int v) <- Some f in
  let def_flow v =
    match def.(Ids.Var.to_int v) with
    | Some f -> f
    | None ->
        invalid_arg
          (Printf.sprintf "Build.run: variable v%d has no defining flow"
             (Ids.Var.to_int v))
  in
  (* per-block states, created lazily (merges are touched by [propagate]
     before they are visited) *)
  let states : block_state option array = Array.make (Array.length body.Bl.blocks) None in
  let fresh_state cur_pred =
    { map = VarMap.empty; shadow_phis = VarSet.empty; cur_pred; touched = false }
  in
  let get_merge_state (bid : Ids.Block.t) =
    let i = Ids.Block.to_int bid in
    match states.(i) with
    | Some s -> s
    | None ->
        let blk = Bl.block body bid in
        assert (blk.Bl.b_kind = Bl.Merge);
        let phi_pred = mk Flow.Phi_pred in
        let s = fresh_state phi_pred in
        (* Phi flows for the block's explicit SSA phis, predicated by the
           block's φ_pred (Figure 5); their use edges are added per
           incoming edge by [propagate]. *)
        List.iter
          (fun (phi : Bl.phi) ->
            let f = mk Flow.Phi in
            pred_edge phi_pred f;
            set_def phi.Bl.phi_var f)
          blk.Bl.b_phis;
        states.(i) <- Some s;
        s
  in
  let label_state (bid : Ids.Block.t) s = states.(Ids.Block.to_int bid) <- Some s in
  let get_state (bid : Ids.Block.t) =
    match states.(Ids.Block.to_int bid) with
    | Some s -> s
    | None -> get_merge_state bid
  in
  (* variable lookup: branch-scoped re-definition, else the SSA def *)
  let lookup (s : block_state) v =
    match VarMap.find_opt (Ids.Var.to_int v) s.map with
    | Some f -> f
    | None -> def_flow v
  in
  (* ---------------- parameters (start instruction) ------------------- *)
  let entry_state = fresh_state ctx.pred_on in
  label_state body.Bl.entry entry_state;
  let param_flows =
    List.mapi
      (fun i v ->
        let filter =
          match Bl.var_ty body v with
          | Ty.Obj c ->
              Some (Flow.Declared { mask_with_null = Masks.decl ctx.masks c; cls = c })
          | _ -> None
        in
        let f = mk ?filter ?span:meth.Program.m_span (Flow.Param i) in
        pred_edge ctx.pred_on f;
        set_def v f;
        f)
      body.Bl.params
  in
  g.Graph.g_params <- param_flows;
  (* ------------------------- propagate (Fig. 13) --------------------- *)
  let propagate (b : block_state) (src : Bl.block) (tgt : Ids.Block.t) =
    let ts = get_merge_state tgt in
    let tblk = Bl.block body tgt in
    pred_edge b.cur_pred ts.cur_pred;
    (* connect this incoming edge's phi operands *)
    List.iter
      (fun (phi : Bl.phi) ->
        let pf = def_flow phi.Bl.phi_var in
        match List.assoc_opt src.Bl.b_id phi.Bl.phi_args with
        | Some arg -> use_edge (lookup b arg) pf
        | None -> ())
      tblk.Bl.b_phis;
    (* merge branch-scoped re-definitions *)
    if not ts.touched then begin
      ts.touched <- true;
      ts.map <- b.map (* persistent: sharing, not copying *)
    end
    else
      (* walk the union of both environments; a var missing on one side
         falls back to its SSA def *)
      VarMap.merge (fun _ tv pv -> Some (tv, pv)) ts.map b.map
      |> VarMap.iter (fun v (tv_opt, pv_opt) ->
             let var = Ids.Var.of_int v in
             let tv = match tv_opt with Some f -> f | None -> def_flow var in
             let pv = match pv_opt with Some f -> f | None -> def_flow var in
             if tv != pv then
               if VarSet.mem v ts.shadow_phis then
                 (* shadow phi already created for this merge: just add the
                    new operand (the isPhi branch of Figure 13) *)
                 use_edge pv tv
               else begin
                 let f = mk Flow.Phi in
                 pred_edge ts.cur_pred f;
                 use_edge tv f;
                 use_edge pv f;
                 ts.map <- VarMap.add v f ts.map;
                 ts.shadow_phis <- VarSet.add v ts.shadow_phis
               end)
  in
  (* --------------------- initBlock (Fig. 14) ------------------------- *)
  let branches = ref [] in
  let init_block (b : block_state) (tgt : Ids.Block.t) (cond : Bl.cond) ~negated
      ~span =
    let ts = fresh_state b.cur_pred (* overwritten below *) in
    ts.map <- b.map;
    (match cond with
    | Bl.InstanceOf (x, cls) ->
        let f =
          mk ?span
            ~filter:(Flow.Instanceof { mask = Masks.sub ctx.masks cls; negated; cls })
            (Flow.Filter { check = Flow.Type_check; branch_then = not negated })
        in
        pred_edge b.cur_pred f;
        use_edge (lookup b x) f;
        ts.map <- VarMap.add (Ids.Var.to_int x) f ts.map;
        ts.cur_pred <- f
    | Bl.Cmp (op0, l, r) ->
        let check =
          let object_side v = Ty.is_object (Bl.var_ty body v) in
          if object_side l || object_side r then Flow.Null_check else Flow.Prim_check
        in
        let op = (match op0 with `Eq -> Vstate.Eq | `Lt -> Vstate.Lt) in
        let op = if negated then Vstate.inv op else op in
        let lf = lookup b l and rf = lookup b r in
        let f_l =
          mk ?span
            ~filter:(Flow.Compare { op; other = rf })
            (Flow.Filter { check; branch_then = not negated })
        in
        pred_edge b.cur_pred f_l;
        use_edge lf f_l;
        obs_edge rf f_l;
        let f_r =
          mk ?span
            ~filter:(Flow.Compare { op = Vstate.flip op; other = lf })
            (Flow.Filter { check; branch_then = not negated })
        in
        pred_edge f_l f_r;
        use_edge rf f_r;
        obs_edge lf f_r;
        ts.map <- VarMap.add (Ids.Var.to_int l) f_l ts.map;
        ts.map <- VarMap.add (Ids.Var.to_int r) f_r ts.map;
        ts.cur_pred <- f_r);
    label_state tgt ts;
    ts.cur_pred
  in
  (* ------------------------ instructions (Fig. 12) ------------------- *)
  let source_value (e : Bl.expr) =
    match e with
    | Bl.Const n -> if ctx.config.Config.primitives then Vstate.const n else Vstate.any
    | Bl.Null -> Vstate.null
    | Bl.Arith _ | Bl.AnyInt -> Vstate.any
    | Bl.New _ | Bl.NewArr _ -> assert false
  in
  let process_insn (b : block_state) ~span (i : Bl.insn) =
    match i with
    | Bl.Assign (v, (Bl.New cls | Bl.NewArr (cls, _))) ->
        (* an array allocation instantiates the array class; the length is
           a primitive the analysis does not track *)
        let f = mk ?span (Flow.Alloc cls) in
        pred_edge b.cur_pred f;
        set_def v f
    | Bl.Assign (v, Bl.Arith (op0, l, r))
      when ctx.config.Config.primitives
           && Pval.equal_mode ctx.config.Config.pval Pval.Product ->
        (* product lattice: arithmetic transfers intervals instead of
           topping out; the operand flows are observed so the transfer
           re-runs when either operand's state grows *)
        let op =
          match op0 with
          | Bl.Add -> Prim.Add
          | Bl.Sub -> Prim.Sub
          | Bl.Mul -> Prim.Mul
          | Bl.Div -> Prim.Div
          | Bl.Rem -> Prim.Rem
        in
        let lf = lookup b l and rf = lookup b r in
        let f =
          mk ?span
            ~filter:(Flow.Arith { op; l = lf; r = rf })
            (Flow.Source Vstate.empty)
        in
        pred_edge b.cur_pred f;
        obs_edge lf f;
        obs_edge rf f;
        set_def v f
    | Bl.Assign (v, e) ->
        let f = mk ?span (Flow.Source (source_value e)) in
        pred_edge b.cur_pred f;
        set_def v f
    | Bl.Load { dst; recv; field } ->
        let rf = lookup b recv in
        let f =
          mk ?span (Flow.Field_load { fa_field = field; fa_recv = rf; fa_linked = Ids.Field.Set.empty; fa_seen = Typeset.empty })
        in
        pred_edge b.cur_pred f;
        obs_edge rf f;
        set_def dst f
    | Bl.Store { recv; field; src } ->
        let rf = lookup b recv in
        let f =
          mk ?span (Flow.Field_store { fa_field = field; fa_recv = rf; fa_linked = Ids.Field.Set.empty; fa_seen = Typeset.empty })
        in
        pred_edge b.cur_pred f;
        use_edge (lookup b src) f;
        obs_edge rf f
    | Bl.LoadStatic { dst; field } ->
        let f = mk ?span (Flow.Static_load field) in
        pred_edge b.cur_pred f;
        use_edge (ctx.field_flow field) f;
        set_def dst f
    | Bl.StoreStatic { field; src } ->
        let f = mk ?span (Flow.Static_store field) in
        pred_edge b.cur_pred f;
        use_edge (lookup b src) f;
        use_edge f (ctx.field_flow field)
    | Bl.ArrLoad { dst; arr; idx = _; elem } ->
        (* an array read is a load of the element pseudo-field: one element
           flow per array type, linked through the receiver's value state *)
        let rf = lookup b arr in
        let f = mk ?span (Flow.Field_load { fa_field = elem; fa_recv = rf; fa_linked = Ids.Field.Set.empty; fa_seen = Typeset.empty }) in
        pred_edge b.cur_pred f;
        obs_edge rf f;
        set_def dst f
    | Bl.ArrStore { arr; idx = _; src; elem } ->
        let rf = lookup b arr in
        let f = mk ?span (Flow.Field_store { fa_field = elem; fa_recv = rf; fa_linked = Ids.Field.Set.empty; fa_seen = Typeset.empty }) in
        pred_edge b.cur_pred f;
        use_edge (lookup b src) f;
        obs_edge rf f
    | Bl.ArrLen { dst; arr = _ } ->
        (* array lengths are opaque primitives (Any) *)
        let f = mk ?span (Flow.Source Vstate.any) in
        pred_edge b.cur_pred f;
        set_def dst f
    | Bl.Cast { dst; src; cls } ->
        (* checkcast: a filtering flow in value position that keeps
           subtypes of the cast type plus null *)
        let f =
          mk ?span
            ~filter:(Flow.Declared { mask_with_null = Masks.decl ctx.masks cls; cls })
            (Flow.Cast cls)
        in
        pred_edge b.cur_pred f;
        use_edge (lookup b src) f;
        set_def dst f
    | Bl.Invoke { dst; recv; target; args; virtual_ } ->
        let recv_f = Option.map (lookup b) recv in
        let args_f = List.map (lookup b) args in
        let f =
          mk ?span
            (Flow.Invoke
               {
                 inv_target = target;
                 inv_virtual = virtual_;
                 inv_recv = recv_f;
                 inv_args = args_f;
                 inv_linked = Ids.Meth.Set.empty;
                 inv_seen = Typeset.empty;
               })
        in
        pred_edge b.cur_pred f;
        (match recv_f with Some r -> obs_edge r f | None -> ());
        set_def dst f;
        (* the invocation becomes the predicate of the following
           statements: "Method Invocations as Predicates" (Section 3) *)
        b.cur_pred <- f
  in
  let process_term (b : block_state) (blk : Bl.block) =
    match blk.Bl.b_term with
    | None -> assert false
    | Some (Bl.Return v) ->
        (match v with
        | Some v -> use_edge (lookup b v) return_flow
        | None -> ());
        pred_edge b.cur_pred return_flow
    | Some (Bl.Throw v) ->
        (* exception values are not tracked interprocedurally (Section 5);
           the thrown object's own flows were created by earlier
           instructions, and control never reaches the return *)
        ignore (lookup b v)
    | Some (Bl.Jump t) -> propagate b blk t
    | Some (Bl.If { cond; then_; else_ }) ->
        let check =
          match cond with
          | Bl.InstanceOf _ -> Flow.Type_check
          | Bl.Cmp (_, l, r) ->
              if Ty.is_object (Bl.var_ty body l) || Ty.is_object (Bl.var_ty body r)
              then Flow.Null_check
              else Flow.Prim_check
        in
        let span = blk.Bl.b_term_span in
        let then_live = init_block b then_ cond ~negated:false ~span in
        let else_live = init_block b else_ cond ~negated:true ~span in
        branches :=
          {
            Graph.bs_kind = check;
            bs_then_live = then_live;
            bs_else_live = else_live;
            bs_span = span;
            bs_swapped = blk.Bl.b_term_swapped;
            bs_synthetic = blk.Bl.b_term_synthetic;
            bs_then_block = then_;
            bs_else_block = else_;
          }
          :: !branches
  in
  (* ------------------------------ driver ----------------------------- *)
  List.iter
    (fun (blk : Bl.block) ->
      let b = get_state blk.Bl.b_id in
      (* walk instructions and spans together without materializing the
         padded span list ([Bl.insn_spans]) — this loop runs once per
         reachable instruction per analysis, so the cons cells add up *)
      let rec walk insns spans =
        match insns with
        | [] -> ()
        | i :: is ->
            let span, ss =
              match spans with s :: ss -> (s, ss) | [] -> (None, [])
            in
            process_insn b ~span i;
            walk is ss
      in
      walk blk.Bl.b_insns blk.Bl.b_spans;
      process_term b blk)
    (Bl.reverse_postorder body);
  g.Graph.g_branches <- List.rev !branches;
  g.Graph.g_flows <- List.rev g.Graph.g_flows;
  g.Graph.g_invokes <- List.rev g.Graph.g_invokes;
  g.Graph.g_defs <- def;
  g
