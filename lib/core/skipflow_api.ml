(** The stable library facade (see the interface).  Everything here is a
    thin, exception-catching composition of {!Frontend},
    {!Skipflow_core.Analysis} and {!Skipflow_core.Trace}. *)

module Config = Skipflow_core.Config
module Trace = Skipflow_core.Trace
module Engine = Skipflow_core.Engine
module Metrics = Skipflow_core.Metrics
module Analysis = Skipflow_core.Analysis
module Budget = Skipflow_core.Budget
module Report = Skipflow_core.Report
module Io = Skipflow_core.Io
module Frontend = Skipflow_frontend.Frontend
module Diag = Skipflow_frontend.Diag

type source = [ `File of string | `Text of string ]

type error =
  | Io_error of { path : string; message : string }
  | Compile_error of {
      file : string option;
      src : string;
      diags : Diag.t list;
    }
  | Unknown_root of string
  | No_main
  | Internal_error of string

let error_message = function
  | Io_error { path; message } -> Printf.sprintf "cannot read %s: %s" path message
  | Compile_error { file; diags; _ } ->
      Printf.sprintf "%d error%s in %s"
        (List.length diags)
        (if List.length diags = 1 then "" else "s")
        (Option.value ~default:"<text>" file)
  | Unknown_root msg -> msg
  | No_main -> "no static main method found and no root given"
  | Internal_error msg -> "internal error: " ^ msg

let render_error ppf = function
  | Compile_error { file; src; diags } ->
      Diag.render_all ?file ~src ppf diags
  | e -> Format.fprintf ppf "error: %s@." (error_message e)

let exit_code_of_error = function
  | Io_error _ | Compile_error _ | Unknown_root _ | No_main -> 2
  | Internal_error _ -> 1

(** Stable machine-readable tag, one per variant — what the CLI's JSON
    error object (and the batch journal) carries. *)
let error_kind = function
  | Io_error _ -> "io_error"
  | Compile_error _ -> "compile_error"
  | Unknown_root _ -> "unknown_root"
  | No_main -> "no_main"
  | Internal_error _ -> "internal_error"

type summary = {
  config : Config.t;
  engine : Engine.t;
  outcome : Engine.outcome;
  metrics : Metrics.t;
  trace : Trace.t;
  reachable : string list;
  wall_s : float;
  cpu_s : float;
}

(* Catch-all boundary: nothing below may let an exception escape. *)
let guard f =
  try f () with
  | (Stack_overflow | Out_of_memory) as e -> raise e
  | e -> Error (Internal_error (Printexc.to_string e))

let protect = guard

let spanner_of trace =
  { Frontend.span = (fun name f -> Trace.with_phase trace name f) }

let read_source = function
  | `Text src -> Ok (None, src)
  | `File path -> (
      match Io.read_file path with
      | Ok src -> Ok (Some path, src)
      | Error e -> Error (Io_error { path; message = Io.error_message e }))

let compile ?trace source =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  guard (fun () ->
      match read_source source with
      | Error e -> Error e
      | Ok (file, src) -> (
          match Frontend.compile_diags ~spanner:(spanner_of trace) src with
          | Ok prog -> Ok (prog, src)
          | Error diags -> Error (Compile_error { file; src; diags })))

let resolve_roots prog = function
  | [] -> (
      match Frontend.main_of prog with
      | Some m -> Ok [ m ]
      | None -> Error No_main)
  | names -> (
      match Analysis.roots_by_name prog names with
      | Ok ms -> Ok ms
      | Error msg -> Error (Unknown_root msg))

let summary_of_result ~trace ~w0 ~c0 (r : Analysis.result) =
  {
    config = r.Analysis.config;
    engine = r.Analysis.engine;
    outcome = r.Analysis.outcome;
    metrics = r.Analysis.metrics;
    trace;
    reachable = Analysis.reachable_names r;
    (* clamped: gettimeofday can step backwards (NTP), and a negative
       wall time would poison every downstream rate computation *)
    wall_s = Float.max 0.0 (Unix.gettimeofday () -. w0);
    cpu_s = Float.max 0.0 (Sys.time () -. c0);
  }

let analyze_program ?config ?mode ?random_order ?on_budget ?trace prog ~roots =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  guard (fun () ->
      let w0 = Unix.gettimeofday () and c0 = Sys.time () in
      let r =
        Analysis.run ?config ?mode ?random_order ?on_budget ~trace prog ~roots
      in
      Ok (summary_of_result ~trace ~w0 ~c0 r))

let resume_snapshot ?budget ?random_order ?on_budget ?trace bytes =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  guard (fun () ->
      let w0 = Unix.gettimeofday () and c0 = Sys.time () in
      match Analysis.resume ?budget ?random_order ?on_budget ~trace bytes with
      | Error msg -> Error (Internal_error msg)
      | Ok r -> Ok (summary_of_result ~trace ~w0 ~c0 r))

let analyze ?config ?mode ?random_order ?on_budget ?trace ~source ~roots () =
  let trace = match trace with Some tr -> tr | None -> Trace.create () in
  guard (fun () ->
      let w0 = Unix.gettimeofday () and c0 = Sys.time () in
      match compile ~trace source with
      | Error e -> Error e
      | Ok (prog, _src) -> (
          match resolve_roots prog roots with
          | Error e -> Error e
          | Ok root_meths -> (
              match
                analyze_program ?config ?mode ?random_order ?on_budget ~trace
                  prog ~roots:root_meths
              with
              | Error e -> Error e
              | Ok s ->
                  Ok
                    {
                      s with
                      wall_s = Float.max 0.0 (Unix.gettimeofday () -. w0);
                      cpu_s = Float.max 0.0 (Sys.time () -. c0);
                    })))
