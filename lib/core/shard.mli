(** Static shard partition for the parallel solver ({!Engine} with
    [Config.jobs > 1]): the CHA call graph is condensed to its strongly
    connected regions and the regions are distributed over [jobs] shards
    by greedy (LPT) weight balancing, so mutually recursive methods — the
    heaviest propagation traffic — stay on one shard.

    Any partition is sound; the choice only affects throughput.  The
    result is deterministic given [(program, jobs, seed)]. *)

type t = {
  shards : int;  (** number of shards (= [jobs]) *)
  owner : int array;  (** method id -> owning shard, [0 .. shards-1] *)
  regions : int;  (** SCC regions of the call graph that were distributed *)
  weights : int array;  (** per-shard total instruction weight *)
}

val compute : ?seed:int -> jobs:int -> Skipflow_ir.Program.t -> t
(** Compute the partition.  [seed] (default 0) varies tie-breaking between
    equal-weight regions — used by the property tests to check the fixed
    point is partition-independent.  With [jobs <= 1] every method maps to
    shard 0. *)

val owner_of : t -> Skipflow_ir.Ids.Meth.t -> int
