(** Dead-code and optimization-opportunity reports — the compiler-client
    view of Section 6 ("Impact on Compiler Optimizations"): which methods a
    more precise analysis removes, which branches fold to one side, which
    virtual calls devirtualize, and which parameters are interprocedural
    constants. *)

type branch_verdict =
  | Both_live
  | Then_only  (** else branch removable *)
  | Else_only  (** then branch removable *)
  | Neither  (** the whole check is in dead code *)

type t = {
  removed_methods : string list;
      (** reachable under the baseline, dead under the precise analysis *)
  folded_branches : (string * Flow.check_kind * branch_verdict) list;
      (** per reachable method: branch sites with a one-sided verdict *)
  devirtualized : (string * string) list;
      (** (caller, unique target) for virtual sites with exactly one target *)
  constant_returns : (string * int) list;
      (** methods whose fixed-point return state is a single constant *)
}

val branch_verdict : Graph.branch_site -> branch_verdict
(** The fixed-point verdict for one branch site (liveness of its two
    filter flows). *)

val compare_runs : baseline:Engine.t -> precise:Engine.t -> t
(** What the precise analysis proves beyond the baseline, plus the precise
    run's own folding / devirtualization facts. *)

val kind_name : Flow.check_kind -> string
val verdict_name : branch_verdict -> string

val pp : Format.formatter -> t -> unit
