(** Synthetic benchmark-program generator: emits MiniJava programs built
    from the code patterns the paper's evaluation measures — live /
    dead-guarded / unused library units, the five guard patterns of
    Sections 2, 3 and 5 (constant flags, instanceof type-flags, guarded
    default allocations, constant comparisons, never-returning calls,
    never-written static switches), dynamic two-sided checks, and
    polymorphic dispatch families.  Deterministic in [params]. *)

type guard_pattern =
  | Const_flag
  | Type_flag
  | Guarded_null
  | Prim_const
  | Never_returns
  | Static_flag
  | Range_flag
      (** removable only by the interval × constant product domain *)

type params = {
  seed : int;
  live_units : int;  (** units reachable under every analysis *)
  dead_units : int;  (** units behind SkipFlow-removable guards *)
  unused_units : int;  (** units no analysis reaches *)
  unit_size : int;  (** methods per unit, >= 2 *)
  poly_families : int;
  poly_width : int;  (** implementations per dispatch family, >= 2 *)
  check_density : float;  (** probability of each dynamic-check pattern per method *)
  cross_calls : int;  (** cross-unit call sites per unit *)
  range_guards : int;
      (** dead units (taken first) guarded by a clamped-range mode
          selector, removable only under [--pval product]; [0] keeps the
          generator byte-identical to the flat-era output *)
}

val default_params : params
val generate : params -> Skipflow_frontend.Ast.program

val compile : params -> Skipflow_ir.Program.t * Skipflow_ir.Program.meth
(** Generate and compile; returns the program and its [Main.main]. *)

val source : params -> string
(** Pretty-printed MiniJava source of the generated program. *)
