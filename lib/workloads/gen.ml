(** Synthetic benchmark-program generator.

    The paper evaluates on DaCapo, Renaissance, and nine microservice
    applications — hundreds of thousands of Java methods we cannot ship.
    What the evaluation actually measures, though, is how many methods the
    two analyses keep reachable on code built from a handful of recurring
    patterns; this generator emits MiniJava programs made of exactly those
    patterns, at calibrated sizes:

    - {b library units}: classes with a chain of instance methods, wired
      into three groups — {e live} (called unconditionally from bootstrap
      code), {e dead-guarded} (called only from guard sites that SkipFlow
      proves dead but the baseline PTA cannot), and {e unused} (called from
      nowhere; removed by every analysis);
    - {b guard patterns} connecting live code to dead-guarded units
      (Section 2 / Figure 4 / Section 5 of the paper):
      [Const_flag] — a static feature-flag method returning [false];
      [Type_flag] — the Figure 2 pattern, a boolean method implemented as
      an [instanceof] test whose special subtype is never instantiated;
      [Guarded_null] — the Figure 1 pattern, a default allocation under an
      [== null] check whose argument is never null;
      [Prim_const] — the Figure 4 pattern, a constant compared against a
      constant bound; and
      [Never_returns] — code following a call to a method that never
      returns;
    - {b dynamic checks} (genuinely two-sided null / type / primitive
      branches) and {b polymorphic dispatch families} sprinkled through
      unit methods so the counter metrics of Table 1 are exercised;
    - fully deterministic: the same [params] always produce the same
      program. *)

open Skipflow_frontend
open Dsl

type guard_pattern =
  | Const_flag
  | Type_flag
  | Guarded_null
  | Prim_const
  | Never_returns
  | Static_flag
      (** a [static var boolean] field that is never written: its value
          state stays the default [false], killing the guarded branch *)
  | Range_flag
      (** a mode selector clamped to a small range ([m = 0; if (...) m =
          k] with [k <= 3]) guarding an [> 10] comparison: the flat
          constant domain joins [{0, k}] straight to [Any] and keeps the
          branch alive, while the interval × constant product proves
          [m ∈ \[0, k\]] and kills it *)

type params = {
  seed : int;
  live_units : int;
  dead_units : int;
  unused_units : int;
  unit_size : int;  (** methods per unit, >= 2 *)
  poly_families : int;
  poly_width : int;  (** implementations per dispatch family, >= 2 *)
  check_density : float;  (** probability of each dynamic-check pattern per method *)
  cross_calls : int;  (** cross-unit call sites per unit *)
  range_guards : int;
      (** how many dead units (taken first) use the [Range_flag] pattern,
          which only the interval × constant product domain can remove *)
}

let default_params =
  {
    seed = 42;
    live_units = 40;
    dead_units = 6;
    unused_units = 5;
    unit_size = 8;
    poly_families = 3;
    poly_width = 4;
    check_density = 0.35;
    cross_calls = 2;
    range_guards = 0;
  }

type group = Live | Dead | Unused

let unit_name i = Printf.sprintf "Unit%d" i
let fam_base f = Printf.sprintf "Base%d" f
let fam_impl f j = Printf.sprintf "Impl%d_%d" f j
let meth_name j = Printf.sprintf "m%d" j

let generate (p : params) : Ast.program =
  if p.unit_size < 2 then invalid_arg "Gen: unit_size must be >= 2";
  if p.poly_width < 2 then invalid_arg "Gen: poly_width must be >= 2";
  if p.poly_families < 1 then invalid_arg "Gen: poly_families must be >= 1";
  let rng = Rng.create p.seed in
  let group_of u =
    if u < p.live_units then Live
    else if u < p.live_units + p.dead_units then Dead
    else Unused
  in
  let total_units = p.live_units + p.dead_units + p.unused_units in
  (* ---- guard assignment: every dead unit is entered from exactly one
     host method; a quarter of them chain from earlier dead units ---- *)
  let patterns =
    [| Const_flag; Type_flag; Guarded_null; Prim_const; Never_returns; Static_flag |]
  in
  let guards =
    List.init p.dead_units (fun k ->
        let d = p.live_units + k in
        let host =
          if k > 0 && Rng.chance rng 0.25 then p.live_units + Rng.int rng k
          else Rng.int rng (max 1 p.live_units)
        in
        let pat = patterns.(Rng.int rng (Array.length patterns)) in
        (* the override comes after the draw so the RNG stream — and with
           it every program generated with [range_guards = 0] — is
           byte-identical to the pre-range-guard generator *)
        let pat = if k < p.range_guards then Range_flag else pat in
        (d, host, pat))
  in
  let guards_of_unit u = List.filter (fun (_, h, _) -> h = u) guards in
  (* ---- support-code accumulators ---- *)
  let flag_meths = ref [] in
  let conf_meths = ref [] in
  let static_flags = ref [] in
  let extra_classes = ref [] in
  (* [mk_guard d pat] returns (statements for the host's last method,
     extra methods for the host class) *)
  let mk_guard (d, pat) =
    let dn = unit_name d in
    let enter = expr (vcall (new_ dn) "entry" [ var "x" ]) in
    match pat with
    | Const_flag ->
        let fname = Printf.sprintf "flag%d" d in
        (if Rng.bool rng then begin
           let inner = Printf.sprintf "flagInner%d" d in
           flag_meths :=
             meth ~static:true ~ret:Ast.Tbool fname [] [ ret (scall "Flags" inner []) ]
             :: meth ~static:true ~ret:Ast.Tbool inner [] [ ret (bool_ false) ]
             :: !flag_meths
         end
         else
           flag_meths :=
             meth ~static:true ~ret:Ast.Tbool fname [] [ ret (bool_ false) ]
             :: !flag_meths);
        ([ if_ (scall "Flags" fname []) [ enter ] [] ], [])
    | Type_flag ->
        let pv = Printf.sprintf "pr%d" d in
        ( [
            decl (Ast.Tclass "Probe") pv (Some (new_ "Probe"));
            if_ (vcall (var pv) "isSpecial" []) [ enter ] [];
          ],
          [] )
    | Prim_const ->
        let cname = Printf.sprintf "level%d" d in
        let lv = Printf.sprintf "lv%d" d in
        conf_meths :=
          meth ~static:true ~ret:Ast.Tint cname [] [ ret (int (Rng.range rng 0 9)) ]
          :: !conf_meths;
        ( [
            decl Ast.Tint lv (Some (scall "Conf" cname []));
            if_ (var lv >: int 10) [ enter ] [];
          ],
          [] )
    | Range_flag ->
        let cname = Printf.sprintf "mode%d" d in
        let mv = Printf.sprintf "mv%d" d in
        conf_meths :=
          meth ~static:true ~ret:Ast.Tint cname
            [ (Ast.Tint, "x") ]
            [
              decl Ast.Tint "m" (Some (int 0));
              if_ (var "x" >: int 0) [ assign "m" (int (Rng.range rng 1 3)) ] [];
              ret (var "m");
            ]
          :: !conf_meths;
        ( [
            decl Ast.Tint mv (Some (scall "Conf" cname [ var "x" ]));
            if_ (var mv >: int 10) [ enter ] [];
          ],
          [] )
    | Never_returns ->
        ([ if_ (var "x" >: int 0) [ expr (scall "Util" "fail" []); enter ] [] ], [])
    | Static_flag ->
        let fname = Printf.sprintf "on%d" d in
        static_flags := fname :: !static_flags;
        ([ if_ (fget (var "Switches") fname) [ enter ] [] ], [])
    | Guarded_null ->
        let hbase = Printf.sprintf "HBase%d" d and hdead = Printf.sprintf "HDead%d" d in
        extra_classes :=
          cls hbase [] [ meth ~ret:Ast.Tvoid "go" [ (Ast.Tint, "x") ] [ ret_void ] ]
          :: cls ~super:hbase hdead []
               [
                 meth ~ret:Ast.Tvoid "go"
                   [ (Ast.Tint, "x") ]
                   [ expr (vcall (new_ dn) "entry" [ var "x" ]); ret_void ];
               ]
          :: !extra_classes;
        let render = Printf.sprintf "render%d" d in
        let helper =
          meth ~ret:Ast.Tvoid render
            [ (Ast.Tclass hbase, "d"); (Ast.Tint, "x") ]
            [
              if_ (var "d" ==: null_) [ assign "d" (new_ hdead) ] [];
              expr (vcall (var "d") "go" [ var "x" ]);
              ret_void;
            ]
        in
        ([ expr (vcall this render [ new_ hbase; var "x" ]) ], [ helper ])
  in
  (* ---- dynamic check patterns (both branches genuinely live) ---- *)
  let dyn_prim =
    [
      if_
        (var "a" <: var "b")
        [ assign "a" (var "a" +: int 1) ]
        [ assign "a" (var "b" -: int 1) ];
    ]
  in
  let dyn_null u =
    let un = unit_name u in
    [
      decl (Ast.Tclass un) "o" (Some null_);
      if_ (var "a" %: int 2 ==: int 0) [ assign "o" (new_ un) ] [];
      if_ (var "o" ==: null_)
        [ assign "a" (var "a" +: int 1) ]
        [ assign "a" (vcall (var "o") "entry" [ var "a" ]) ];
    ]
  in
  let dyn_type_poly f =
    let base = fam_base f in
    [
      decl (Ast.Tclass base) "t" (Some (new_ (fam_impl f 0)));
      if_ (var "a" %: int 3 ==: int 0) [ assign "t" (new_ (fam_impl f 1)) ] [];
      if_ (instanceof (var "t") (fam_impl f 0)) [ assign "a" (var "a" +: int 2) ] [];
      assign "a" (var "a" +: vcall (var "t") "run" [ var "a" ]);
    ]
  in
  let dyn_array_pool f =
    (* a handler pool: objects flow through array element flows before
       being dispatched *)
    let base = fam_base f in
    [
      decl (Ast.Tarr (Ast.Tclass base)) "pool"
        (Some (e (Skipflow_frontend.Ast.NewArr (Ast.Tclass base, int 2))));
      s (Skipflow_frontend.Ast.AssignIndex (var "pool", int 0, new_ (fam_impl f 0)));
      s (Skipflow_frontend.Ast.AssignIndex (var "pool", int 1, new_ (fam_impl f 1)));
      decl (Ast.Tclass base) "h" (Some (e (Skipflow_frontend.Ast.Index (var "pool", var "a" %: int 2))));
      if_ (var "h" <>: null_) [ assign "a" (var "a" +: vcall (var "h") "run" [ var "a" ]) ] [];
    ]
  in
  let dead_alloc f k =
    [
      decl (Ast.Tclass (fam_base f)) "z" (Some (new_ (fam_impl f k)));
      assign "a" (var "a" +: vcall (var "z") "run" [ var "a" ]);
    ]
  in
  (* ---- unit classes ---- *)
  let gen_method u j =
    let grp = group_of u in
    let last = j = p.unit_size - 1 in
    let body = ref [] in
    let push ss = body := !body @ ss in
    push
      [
        decl Ast.Tint "a" (Some (var "x" +: int (Rng.range rng 1 9)));
        decl Ast.Tint "b" (Some (var "a" *: int (Rng.range rng 2 5)));
      ];
    if Rng.chance rng p.check_density then push dyn_prim;
    if Rng.chance rng p.check_density then push (dyn_null u);
    if Rng.chance rng p.check_density then
      push (dyn_type_poly (Rng.int rng p.poly_families));
    if Rng.chance rng (p.check_density /. 2.) then
      push (dyn_array_pool (Rng.int rng p.poly_families));
    if grp = Dead && Rng.chance rng 0.4 && p.poly_width > 2 then
      push (dead_alloc (Rng.int rng p.poly_families) (Rng.range rng 2 (p.poly_width - 1)));
    if not last then
      push [ assign "a" (vcall this (meth_name (j + 1)) [ var "a" ]) ]
    else begin
      (* Cross-unit calls, respecting group reachability.  Within a group,
         only higher-numbered units may be called: unconditional call
         cycles would make the program non-terminating, which SkipFlow
         (correctly!) detects through its invoke-as-predicate rule —
         realistic benchmarks terminate. *)
      let candidates =
        match grp with
        | Live -> List.init p.live_units Fun.id
        | Dead -> List.init (p.live_units + p.dead_units) Fun.id
        | Unused -> List.init total_units Fun.id
      in
      let candidates =
        List.filter (fun t -> t > u || (grp <> Live && t < p.live_units)) candidates
      in
      if candidates <> [] then
        for _ = 1 to p.cross_calls do
          let t = Rng.pick rng candidates in
          push [ assign "a" (var "a" +: vcall (new_ (unit_name t)) "entry" [ var "a" ]) ]
        done
    end;
    let guard_extra =
      if last then List.map (fun (d, _, pat) -> mk_guard (d, pat)) (guards_of_unit u)
      else []
    in
    List.iter (fun (stmts, _) -> push stmts) guard_extra;
    push [ ret (var "a" +: var "b") ];
    ( meth ~ret:Ast.Tint (meth_name j) [ (Ast.Tint, "x") ] !body,
      List.concat_map snd guard_extra )
  in
  let gen_unit u =
    let meths = List.init p.unit_size (fun j -> gen_method u j) in
    let entry =
      meth ~ret:Ast.Tint "entry"
        [ (Ast.Tint, "x") ]
        [ ret (vcall this (meth_name 0) [ var "x" ]) ]
    in
    cls (unit_name u) []
      (entry :: List.concat_map (fun (m, extras) -> m :: extras) meths)
  in
  let units = List.init total_units gen_unit in
  (* ---- support classes ---- *)
  let families =
    List.concat_map
      (fun f ->
        cls (fam_base f) []
          [ meth ~ret:Ast.Tint "run" [ (Ast.Tint, "x") ] [ ret (var "x") ] ]
        :: List.init p.poly_width (fun j ->
               cls ~super:(fam_base f) (fam_impl f j) []
                 [
                   meth ~ret:Ast.Tint "run"
                     [ (Ast.Tint, "x") ]
                     [ ret (var "x" +: int j) ];
                 ]))
      (List.init p.poly_families Fun.id)
  in
  let probe =
    [
      cls "Probe" []
        [
          meth ~ret:Ast.Tbool "isSpecial" [] [ ret (instanceof this "SpecialProbe") ];
        ];
      cls ~super:"Probe" "SpecialProbe" [] [];
    ]
  in
  let util =
    cls "Util" []
      [
        (* Assert.fail-style: always throws, never returns (Section 5) *)
        meth ~static:true ~ret:Ast.Tvoid "fail" []
          [ s (Skipflow_frontend.Ast.Throw (new_ "UtilError")) ];
        meth ~static:true ~ret:Ast.Tint "work"
          [ (Ast.Tint, "n") ]
          [ ret (var "n" *: int 17) ];
      ]
  in
  let util_error = cls "UtilError" [] [] in
  let switches =
    (* never-written static feature switches: their value states stay at
       the default false *)
    cls "Switches" (List.map (fun f -> field ~static:true Ast.Tbool f) !static_flags) []
  in
  let flags =
    cls "Flags" []
      (meth ~static:true ~ret:Ast.Tbool "never" [] [ ret (bool_ false) ]
      :: List.rev !flag_meths)
  in
  let conf =
    cls "Conf" []
      (meth ~static:true ~ret:Ast.Tint "zero" [] [ ret (int 0) ] :: List.rev !conf_meths)
  in
  (* ---- bootstrap: cover every live unit ---- *)
  let chunk = 40 in
  let boot_count = ((max 1 p.live_units) + chunk - 1) / chunk in
  let boot =
    cls "Boot" []
      (List.init boot_count (fun k ->
           let lo = k * chunk and hi = min p.live_units ((k + 1) * chunk) in
           let calls =
             List.concat
               (List.init (hi - lo) (fun i ->
                    let u = lo + i in
                    [
                      assign "x"
                        (var "x" +: vcall (new_ (unit_name u)) "entry" [ var "x" ]);
                    ]))
           in
           meth ~static:true ~ret:Ast.Tint
             (Printf.sprintf "b%d" k)
             [ (Ast.Tint, "x") ]
             (calls @ [ ret (var "x") ])))
  in
  let main =
    cls "Main" []
      [
        meth ~static:true ~ret:Ast.Tvoid "main" []
          ([ decl Ast.Tint "x" (Some (scall "Util" "work" [ int 7 ])) ]
          @ List.init boot_count (fun k ->
                assign "x" (scall "Boot" (Printf.sprintf "b%d" k) [ var "x" ]))
          @ [ ret_void ]);
      ]
  in
  (main :: boot :: util :: util_error :: switches :: flags :: conf :: probe)
  @ families @ List.rev !extra_classes @ units

(** Generate and compile in one step; returns the program and its [main]. *)
let compile (p : params) : Skipflow_ir.Program.t * Skipflow_ir.Program.meth =
  let prog = Frontend.compile_ast (generate p) in
  match Frontend.main_of prog with
  | Some m -> (prog, m)
  | None -> invalid_arg "Gen.compile: generated program has no main"

(** Pretty-printed MiniJava source of the generated program. *)
let source (p : params) = Ast_pp.to_string (generate p)
