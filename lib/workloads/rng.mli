(** Deterministic splittable PRNG (SplitMix64) — the workload generators
    must produce byte-identical programs for a given seed. *)

type t

val create : int -> t

val split : t -> t
(** An independent child generator: further draws from the parent do not
    perturb the child's stream. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]; [n] must be positive. *)

val bool : t -> bool

val chance : t -> float -> bool
(** True with the given probability. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val pick_opt : t -> 'a list -> 'a option
(** Uniform element of the list, [None] when it is empty.  For non-empty
    lists this consumes exactly the same draw as {!pick}, so migrating a
    call site does not perturb the generated stream. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list.
    @raise Invalid_argument on an empty list — prefer {!pick_opt}. *)

val weighted : t -> (int * 'a) list -> 'a
(** Pick with probability proportional to the integer weights. *)
