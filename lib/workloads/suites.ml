(** The benchmark catalog: one synthetic workload per benchmark of the
    paper's Table 1 (DaCapo 9.12, Renaissance 0.15.0, and the nine
    microservice applications).

    For each benchmark we record the paper's measured numbers — baseline
    (PTA) reachable methods, SkipFlow's reachable-method reduction, and the
    baseline analysis time — and derive generator parameters whose {e
    shape} matches: the program's size is the paper's reachable-method
    count scaled by [scale] (default 1/20), and the fraction of
    dead-guarded code matches the paper's measured reduction.  The paper's
    own numbers are kept here so the benchmark harness can print
    paper-vs-measured columns (see EXPERIMENTS.md).

    Calibrating the dead fraction to the published reduction is not
    circular: the reduction is an {e input} to program construction (how
    much of the code the framework hides behind SkipFlow-removable guard
    patterns) and an {e output} of the analyses; the experiment verifies
    that SkipFlow actually removes that code while the baseline PTA cannot,
    that both analyses agree on the live code, and that the counter
    metrics, size proxy, and analysis time move the way Table 1 reports. *)

type bench = {
  suite : string;
  name : string;
  paper_pta_kmethods : float;  (** PTA reachable methods, thousands *)
  paper_reduction_pct : float;  (** SkipFlow reachable-method reduction, % *)
  paper_pta_time_s : float;  (** PTA analysis time, seconds *)
  paper_time_delta_pct : float;  (** SkipFlow analysis-time delta, % *)
}

let b suite name paper_pta_kmethods paper_reduction_pct paper_pta_time_s
    paper_time_delta_pct =
  {
    suite;
    name;
    paper_pta_kmethods;
    paper_reduction_pct;
    paper_pta_time_s;
    paper_time_delta_pct;
  }

let dacapo =
  [
    b "DaCapo" "fop" 96.1 7.1 27. 1.3;
    b "DaCapo" "h2" 43.3 7.6 15. 0.0;
    b "DaCapo" "jython" 74.9 6.0 24. (-7.1);
    b "DaCapo" "luindex" 31.2 3.9 8. 5.3;
    b "DaCapo" "lusearch" 29.2 3.5 11. 4.1;
    b "DaCapo" "pmd" 64.0 9.3 20. (-0.4);
    b "DaCapo" "sunflow" 56.7 52.3 19. (-35.4);
    b "DaCapo" "xalan" 49.0 17.0 16. (-0.5);
  ]

let microservices =
  [
    b "Micro" "micronaut-helloworld" 76.0 3.3 21. 2.2;
    b "Micro" "mushop-order" 167.0 7.3 38. 0.2;
    b "Micro" "mushop-payment" 83.0 4.2 15. 2.4;
    b "Micro" "mushop-user" 113.0 6.7 27. 0.8;
    b "Micro" "quarkus-helloworld" 59.6 6.0 18. 2.3;
    b "Micro" "quarkus-registry" 134.2 6.8 29. (-18.6);
    b "Micro" "quarkus-tika" 109.1 9.2 30. (-0.8);
    b "Micro" "spring-helloworld" 85.2 5.6 23. (-0.7);
    b "Micro" "spring-petclinic" 210.2 8.1 44. 0.7;
  ]

let renaissance =
  [
    b "Renaissance" "akka-uct" 38.8 6.4 12. (-1.1);
    b "Renaissance" "als" 381.6 15.8 83. 3.0;
    b "Renaissance" "chi-square" 217.8 17.2 43. (-8.2);
    b "Renaissance" "dec-tree" 385.4 15.7 86. 5.2;
    b "Renaissance" "finagle-chirper" 94.9 12.7 22. (-7.8);
    b "Renaissance" "finagle-http" 93.9 12.8 22. (-7.1);
    b "Renaissance" "fj-kmeans" 28.0 5.5 11. (-1.8);
    b "Renaissance" "future-genetic" 28.8 5.6 10. 0.0;
    b "Renaissance" "log-regression" 394.7 15.3 90. (-4.2);
    b "Renaissance" "mnemonics" 28.2 5.5 10. 1.1;
    b "Renaissance" "par-mnemonics" 28.2 5.5 10. 0.4;
    b "Renaissance" "philosophers" 30.9 4.1 7. 2.4;
    b "Renaissance" "reactors" 31.4 3.7 11. 3.1;
    b "Renaissance" "rx-scrabble" 29.0 5.2 10. (-1.0);
    b "Renaissance" "scala-doku" 29.0 5.5 10. 2.5;
    b "Renaissance" "scala-kmeans" 27.9 5.5 10. 1.0;
    b "Renaissance" "scala-stm-bench7" 32.8 4.0 11. 2.7;
    b "Renaissance" "scrabble" 28.3 5.5 10. (-1.7);
  ]

let all = dacapo @ microservices @ renaissance
let suites = [ ("DaCapo", dacapo); ("Micro", microservices); ("Renaissance", renaissance) ]

let find name = List.find_opt (fun bch -> String.equal bch.name name) all

(* a cheap stable string hash for per-benchmark seeds *)
let seed_of name =
  let h = ref 5381 in
  String.iter (fun c -> h := (!h * 33) + Char.code c) name;
  !h land 0x3FFFFFFF

(** Generator parameters reproducing the benchmark's shape at the given
    scale (default 1/20 of the paper's method counts). *)
let params_of ?(scale = 0.05) (bch : bench) : Gen.params =
  let unit_size = 10 in
  let target_methods = bch.paper_pta_kmethods *. 1000. *. scale in
  let total_units = max 4 (int_of_float (target_methods /. float_of_int unit_size)) in
  let red = bch.paper_reduction_pct /. 100. in
  let dead_units = max 1 (int_of_float (Float.round (float_of_int total_units *. red))) in
  let live_units = max 2 (total_units - dead_units) in
  let unused_units = max 1 (total_units / 7) in
  (* range-guarded units ride on top of the paper-calibrated dead
     fraction: they stay live under the flat constant domain (so the
     flat reduction still matches the paper's), and only [--pval
     product] removes them *)
  let range_guards = max 1 (dead_units / 6) in
  {
    Gen.seed = seed_of bch.name;
    live_units;
    dead_units = dead_units + range_guards;
    unused_units;
    unit_size;
    poly_families = max 1 (live_units / 60);
    poly_width = 4;
    check_density = 0.35;
    cross_calls = 2;
    range_guards;
  }
