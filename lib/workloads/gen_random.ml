(** Generator of small random — but always well-typed — MiniJava programs,
    used by the property-test suite:

    - {e soundness}: run the program in the concrete interpreter and check
      that every executed method is in SkipFlow's reachable set and every
      observed value is covered by the fixed-point value states;
    - {e precision ordering}: reachable(SkipFlow) ⊆ reachable(PTA) ⊆
      reachable(RTA) ⊆ reachable(CHA);
    - {e pipeline robustness}: parser round-trips, lowering produces valid
      SSA, the engine terminates.

    Well-typedness by construction: signatures are generated first, bodies
    only reference what exists.  Recursion is ruled out by a global order
    on {e method names} — a body of [f_k] may only call names [f_j] with
    [j > k], and overrides share their name's index, so the dynamic call
    graph is a DAG.  Loops are bounded counting loops.  (Programs may still
    halt early in the interpreter through null dereferences or fuel
    exhaustion; the trace remains a valid soundness witness.) *)

open Skipflow_frontend
open Dsl

type cfg = {
  seed : int;
  classes : int;  (** number of user classes, >= 1 *)
  meths_per_class : int;  (** fresh method names per class, >= 1 *)
  max_stmts : int;  (** statement budget per body *)
}

let default_cfg = { seed = 7; classes = 5; meths_per_class = 2; max_stmts = 6 }

type sig_ = { s_params : Ast.ty list; s_ret : Ast.ty }

type gcls = {
  g_name : string;
  g_super : int option;
  g_abstract : bool;
  mutable g_children : int list;
  mutable g_fields : (string * Ast.ty) list;
  mutable g_meths : (int * sig_) list;  (** fresh names declared here *)
  mutable g_overrides : (int * sig_) list;
  mutable g_visible : (int * sig_) list;  (** declared + inherited *)
}

let cls_name i = Printf.sprintf "R%d" i
let mname k = Printf.sprintf "f%d" k

let generate (c : cfg) : Ast.program =
  let rng = Rng.create c.seed in
  let n = max 1 c.classes in
  (* ---- hierarchy ---- *)
  let classes =
    Array.init n (fun i ->
        let super = if i > 0 && Rng.chance rng 0.45 then Some (Rng.int rng i) else None in
        {
          g_name = cls_name i;
          g_super = super;
          g_abstract = i > 0 && Rng.chance rng 0.12;
          g_children = [];
          g_fields = [];
          g_meths = [];
          g_overrides = [];
          g_visible = [];
        })
  in
  Array.iteri
    (fun i g ->
      match g.g_super with
      | Some s -> classes.(s).g_children <- i :: classes.(s).g_children
      | None -> ())
    classes;
  let rec concrete_subs i =
    let self = if classes.(i).g_abstract then [] else [ i ] in
    self @ List.concat_map concrete_subs classes.(i).g_children
  in
  let random_ty ?(void = false) () =
    Rng.weighted rng
      ([ (4, Ast.Tint); (2, Ast.Tbool); (3, Ast.Tclass (cls_name (Rng.int rng n))) ]
      @ if void then [ (2, Ast.Tvoid) ] else [])
  in
  (* ---- signatures: fresh names in class order, then overrides ---- *)
  let next_name = ref 0 in
  Array.iter
    (fun g ->
      for _ = 1 to max 1 c.meths_per_class do
        let k = !next_name in
        incr next_name;
        let s_params = List.init (Rng.int rng 3) (fun _ -> random_ty ()) in
        g.g_meths <- (k, { s_params; s_ret = random_ty ~void:true () }) :: g.g_meths
      done)
    classes;
  (* visibility (declaration order: supers precede subclasses) *)
  Array.iteri
    (fun i g ->
      let inherited =
        match g.g_super with Some s -> classes.(s).g_visible | None -> []
      in
      (* overrides: redeclare some inherited names with the same signature *)
      List.iter
        (fun (k, sg) ->
          if Rng.chance rng 0.3 then g.g_overrides <- (k, sg) :: g.g_overrides)
        inherited;
      g.g_visible <-
        g.g_meths @ List.filter (fun (k, _) -> not (List.mem_assoc k g.g_meths)) inherited;
      ignore i)
    classes;
  (* ---- fields (instance); plus an occasional static int counter ---- *)
  let static_fields = ref [] in
  Array.iteri
    (fun i g ->
      for j = 0 to Rng.int rng 3 - 1 do
        let ty =
          if Rng.bool rng then Ast.Tint else Ast.Tclass (cls_name (Rng.int rng n))
        in
        g.g_fields <- (Printf.sprintf "fd%d_%d" i j, ty) :: g.g_fields
      done;
      if Rng.chance rng 0.3 then
        static_fields := (g.g_name, Printf.sprintf "sf%d" i) :: !static_fields)
    classes;
  let visible_fields i =
    let rec go i acc =
      let acc = classes.(i).g_fields @ acc in
      match classes.(i).g_super with Some s -> go s acc | None -> acc
    in
    go i []
  in
  (* ---- bodies ---- *)
  (* environment: locals/params in scope with their types *)
  let gen_body ~self_cls ~self_idx (sg : sig_) : (Ast.ty * string) list * Ast.stmt list =
    let params = List.mapi (fun i t -> (t, Printf.sprintf "p%d" i)) sg.s_params in
    let locals = ref (List.map (fun (t, x) -> (x, t)) params) in
    (match self_cls with
    | Some i -> locals := ("this", Ast.Tclass (cls_name i)) :: !locals
    | None -> ());
    let tmp = ref 0 in
    let fresh () =
      incr tmp;
      Printf.sprintf "t%d" !tmp
    in
    let evar x = if String.equal x "this" then this else var x in
    let ints () =
      List.filter_map (fun (x, t) -> if t = Ast.Tint then Some x else None) !locals
    in
    let objs_of cname =
      List.filter_map
        (fun (x, t) -> if t = Ast.Tclass cname then Some x else None)
        !locals
    in
    let all_objs () =
      List.filter_map
        (fun (x, t) -> match t with Ast.Tclass cn -> Some (x, cn) | _ -> None)
        !locals
    in
    let rec int_expr depth =
      let atoms =
        [ (3, `Const) ] @ (if ints () <> [] then [ (4, `Local) ] else [])
        @ if depth > 0 then [ (3, `Arith) ] else []
      in
      match Rng.weighted rng atoms with
      | `Const -> int (Rng.range rng (-10) 50)
      | `Local -> (
          (* the atom is only offered when an int local exists, but the
             guard is non-local: stay total with an explicit fallback *)
          match Rng.pick_opt rng (ints ()) with
          | Some x -> var x
          | None -> int 0)
      | `Arith ->
          let op = Rng.pick rng [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Rem ] in
          binop op (int_expr (depth - 1)) (int_expr (depth - 1))
    in
    let cls_index cname = int_of_string (String.sub cname 1 (String.length cname - 1)) in
    let obj_expr cname =
      let subs = concrete_subs (cls_index cname) in
      let choices =
        [ (2, `Null) ]
        @ (if subs <> [] then [ (5, `New) ] else [])
        @ if objs_of cname <> [] then [ (4, `Local) ] else []
      in
      match Rng.weighted rng choices with
      | `Null -> null_
      | `New -> (
          match Rng.pick_opt rng subs with
          | Some s -> new_ (cls_name s)
          | None -> null_)
      | `Local -> (
          match Rng.pick_opt rng (objs_of cname) with
          | Some x -> evar x
          | None -> null_)
    in
    let bool_expr () =
      match Rng.int rng 4 with
      | 0 -> binop (Rng.pick rng [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ]) (int_expr 1) (int_expr 1)
      | 1 -> binop (Rng.pick rng [ Ast.Eq; Ast.Ne ]) (int_expr 1) (int_expr 1)
      | 2 -> (
          match all_objs () with
          | [] -> bool_ (Rng.bool rng)
          | objs ->
              let x, _ = Rng.pick rng objs in
              binop (Rng.pick rng [ Ast.Eq; Ast.Ne ]) (evar x) null_)
      | _ -> (
          match all_objs () with
          | [] -> bool_ (Rng.bool rng)
          | objs ->
              let x, _ = Rng.pick rng objs in
              instanceof (evar x) (cls_name (Rng.int rng n)))
    in
    (* a call to a strictly-later method name on some object in scope *)
    let call_expr () =
      let candidates =
        List.concat_map
          (fun (x, cn) ->
            List.filter_map
              (fun (k, sg) -> if k > self_idx then Some (x, cn, k, sg) else None)
              classes.(cls_index cn).g_visible)
          (all_objs ())
      in
      match candidates with
      | [] -> None
      | _ ->
          let x, _, k, sg = Rng.pick rng candidates in
          let args =
            List.map
              (fun t ->
                match t with
                | Ast.Tint -> int_expr 1
                | Ast.Tbool -> bool_ (Rng.bool rng)
                | Ast.Tclass cn -> obj_expr cn
                | Ast.Tvoid | Ast.Tarr _ -> assert false)
              sg.s_params
          in
          Some (vcall (evar x) (mname k) args, sg.s_ret)
    in
    let rec stmts budget depth =
      if budget <= 0 then []
      else
        let choice =
          Rng.weighted rng
            [
              (3, `IntDecl); (3, `ObjDecl); (2, `Call); (2, `If); (1, `While);
              (2, `FieldSet); (2, `FieldGet); (2, `Assign); (2, `IntArr);
              (1, `Cast); (1, `Throw); (1, `Static);
            ]
        in
        let stmt =
          match choice with
          | `IntDecl ->
              let x = fresh () in
              let s = decl Ast.Tint x (Some (int_expr 2)) in
              locals := (x, Ast.Tint) :: !locals;
              [ s ]
          | `ObjDecl ->
              let cn = cls_name (Rng.int rng n) in
              let x = fresh () in
              let s = decl (Ast.Tclass cn) x (Some (obj_expr cn)) in
              locals := (x, Ast.Tclass cn) :: !locals;
              [ s ]
          | `Assign -> (
              match ints () with
              | [] -> []
              | is -> [ assign (Rng.pick rng is) (int_expr 2) ])
          | `Call -> (
              match call_expr () with Some (e, _) -> [ expr e ] | None -> [])
          | `If ->
              if depth <= 0 then []
              else begin
                (* evaluate in source order and restore the local scope
                   around each branch: branch declarations must not leak *)
                let cond = bool_expr () in
                let saved = !locals in
                let thn = stmts (budget / 2) (depth - 1) in
                locals := saved;
                let els =
                  if Rng.bool rng then stmts (budget / 2) (depth - 1) else []
                in
                locals := saved;
                [ if_ cond thn els ]
              end
          | `While ->
              if depth <= 0 then []
              else begin
                let i = fresh () in
                let di = decl Ast.Tint i (Some (int 0)) in
                locals := (i, Ast.Tint) :: !locals;
                let saved = !locals in
                let body = stmts (budget / 2) (depth - 1) in
                locals := saved;
                [
                  di;
                  while_
                    (var i <: int (Rng.range rng 1 4))
                    (body @ [ assign i (var i +: int 1) ]);
                ]
              end
          | `FieldSet -> (
              match
                List.concat_map
                  (fun (x, cn) ->
                    List.map (fun f -> (x, f)) (visible_fields (cls_index cn)))
                  (all_objs ())
              with
              | [] -> []
              | cands -> (
                  let x, (fname, fty) = Rng.pick rng cands in
                  match fty with
                  | Ast.Tint -> [ fset (evar x) fname (int_expr 1) ]
                  | Ast.Tclass cn -> [ fset (evar x) fname (obj_expr cn) ]
                  | _ -> []))
          | `IntArr ->
              (* an int array with a write and a read; random indices may
                 go out of bounds at runtime, which simply halts the
                 interpreter *)
              let a = fresh () in
              let da =
                decl (Ast.Tarr Ast.Tint) a
                  (Some (e (Ast.NewArr (Ast.Tint, int (Rng.range rng 1 5)))))
              in
              let i1 = int (Rng.int rng 5) and i2 = int (Rng.int rng 5) in
              (* build the stored value before extending the scope with [t]:
                 the store statement precedes t's declaration *)
              let stored = int_expr 1 in
              let t = fresh () in
              locals := (t, Ast.Tint) :: !locals;
              [
                da;
                s (Ast.AssignIndex (var a, i1, stored));
                decl Ast.Tint t
                  (Some (e (Ast.Index (var a, i2)) -: fget (var a) "length"));
              ]
          | `Cast -> (
              match all_objs () with
              | [] -> []
              | objs ->
                  let x, _cn = Rng.pick rng objs in
                  let target = cls_name (Rng.int rng n) in
                  let t = fresh () in
                  locals := (t, Ast.Tclass target) :: !locals;
                  [ decl (Ast.Tclass target) t (Some (e (Ast.Cast (Ast.Tclass target, evar x)))) ])
          | `Throw -> (
              (* conditional throw: keeps most runs alive while exercising
                 abrupt termination *)
              match all_objs () with
              | [] -> []
              | objs ->
                  let x, _ = Rng.pick rng objs in
                  [
                    if_
                      (binop Ast.Eq (int_expr 1) (int 77))
                      [ s (Ast.Throw (evar x)) ]
                      [];
                  ])
          | `Static -> (
              match !static_fields with
              | [] -> []
              | sfs ->
                  let cn, fn = Rng.pick rng sfs in
                  let stored = int_expr 1 in
                  let t = fresh () in
                  locals := (t, Ast.Tint) :: !locals;
                  [
                    s (Ast.AssignField (var cn, fn, stored));
                    decl Ast.Tint t (Some (fget (var cn) fn));
                  ])
          | `FieldGet -> (
              match
                List.concat_map
                  (fun (x, cn) ->
                    List.filter_map
                      (fun (fname, fty) ->
                        if fty = Ast.Tint then Some (x, fname) else None)
                      (visible_fields (cls_index cn)))
                  (all_objs ())
              with
              | [] -> []
              | cands ->
                  let x, fname = Rng.pick rng cands in
                  let t = fresh () in
                  let s = decl Ast.Tint t (Some (fget (evar x) fname)) in
                  locals := (t, Ast.Tint) :: !locals;
                  [ s ])
        in
        stmt @ stmts (budget - 1) depth
    in
    let body = stmts (max 1 c.max_stmts) 2 in
    let final =
      match sg.s_ret with
      | Ast.Tvoid -> [ ret_void ]
      | Ast.Tint -> [ ret (int_expr 1) ]
      | Ast.Tbool -> [ ret (bool_expr ()) ]
      | Ast.Tclass cn -> [ ret (obj_expr cn) ]
      | Ast.Tarr _ -> assert false (* this generator does not emit arrays *)
    in
    (List.map (fun (t, x) -> (t, x)) params, body @ final)
  in
  (* ---- emit classes ---- *)
  let emitted =
    Array.to_list
      (Array.mapi
         (fun i g ->
           let meths =
             List.rev_map
               (fun (k, sg) ->
                 let params, body = gen_body ~self_cls:(Some i) ~self_idx:k sg in
                 meth ~ret:sg.s_ret (mname k) params body)
               (g.g_meths @ g.g_overrides)
           in
           let statics =
             List.filter_map
               (fun (cn, fn) ->
                 if String.equal cn g.g_name then Some (field ~static:true Ast.Tint fn)
                 else None)
               !static_fields
           in
           cls ?super:(Option.map cls_name g.g_super) ~abstract:g.g_abstract g.g_name
             (statics @ List.map (fun (x, t) -> field t x) (List.rev g.g_fields))
             meths)
         classes)
  in
  (* ---- main: instantiate a few concrete classes and kick off calls ---- *)
  let main_body =
    let stmts = ref [] in
    let locals = ref [] in
    let concrete =
      List.filter (fun i -> not classes.(i).g_abstract) (List.init n Fun.id)
    in
    let nobj = Rng.range rng 1 (min 4 (max 1 (List.length concrete))) in
    (if concrete <> [] then
       for j = 0 to nobj - 1 do
         let i = Rng.pick rng concrete in
         let x = Printf.sprintf "o%d" j in
         stmts := decl (Ast.Tclass (cls_name i)) x (Some (new_ (cls_name i))) :: !stmts;
         locals := (x, i) :: !locals
       done);
    let calls = ref [] in
    let ncalls = Rng.range rng 2 8 in
    for _ = 1 to ncalls do
      match !locals with
      | [] -> ()
      | ls -> (
          let x, i = Rng.pick rng ls in
          match classes.(i).g_visible with
          | [] -> ()
          | vis ->
              let k, sg = Rng.pick rng vis in
              let args =
                List.map
                  (fun t ->
                    match t with
                    | Ast.Tint -> int (Rng.range rng (-5) 20)
                    | Ast.Tbool -> bool_ (Rng.bool rng)
                    | Ast.Tclass cn -> (
                        (* prefer a local of that exact class, else null *)
                        match
                          List.find_opt (fun (_, j) -> cls_name j = cn) !locals
                        with
                        | Some (y, _) -> var y
                        | None -> null_)
                    | Ast.Tvoid | Ast.Tarr _ -> assert false)
                  sg.s_params
              in
              calls := expr (vcall (var x) (mname k) args) :: !calls)
    done;
    List.rev !stmts @ List.rev !calls @ [ ret_void ]
  in
  let main = cls "Main" [] [ meth ~static:true ~ret:Ast.Tvoid "main" [] main_body ] in
  main :: emitted

(** Generate, compile, and return the program with its main. *)
let compile (c : cfg) : Skipflow_ir.Program.t * Skipflow_ir.Program.meth =
  let prog = Frontend.compile_ast (generate c) in
  (prog, Option.get (Frontend.main_of prog))
