(** Deterministic splittable PRNG (SplitMix64).

    The workload generators must be reproducible: the same seed always
    yields byte-identical programs, independently of OCaml's [Random]
    state, so that benchmark numbers and property-test failures can be
    replayed.  SplitMix64 (Steele, Lea, Flood 2014) is small, fast, and
    passes BigCrush for this use. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [split t] derives an independent generator; streams from the parent
    and the child do not interfere, so adding generation steps in one
    component does not perturb another. *)
let split t = { state = next_int64 t }

(** [int t n] is uniform in [\[0, n)].  [n] must be positive. *)
let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int n))

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** [chance t p] is true with probability [p]. *)
let chance t p = int t 1_000_000 < int_of_float (p *. 1_000_000.)

(** [range t lo hi] is uniform in [\[lo, hi\]] inclusive. *)
let range t lo hi = lo + int t (hi - lo + 1)

(** [pick_opt t xs] selects a uniform element of [xs], or [None] when the
    list is empty.  Total: generator code should prefer this and handle
    [None] with an explicit fallback.  For non-empty lists it consumes
    exactly the same draw as {!pick}, so migrating a call site does not
    perturb the generated stream. *)
let pick_opt t xs =
  match xs with [] -> None | _ -> Some (List.nth xs (int t (List.length xs)))

(** [pick t xs] selects a uniform element of the non-empty list [xs]. *)
let pick t xs =
  match pick_opt t xs with Some x -> x | None -> invalid_arg "Rng.pick: empty"

(** [weighted t choices] picks among [(weight, value)] pairs with
    probability proportional to weight; zero-weight entries are never
    picked. *)
let weighted t choices =
  let total = List.fold_left (fun a (w, _) -> a + w) 0 choices in
  if total <= 0 then invalid_arg "Rng.weighted";
  let n = int t total in
  let rec go n = function
    | [] -> invalid_arg "Rng.weighted"
    | (w, v) :: rest -> if n < w then v else go (n - w) rest
  in
  go n choices
