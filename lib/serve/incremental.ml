(** Incremental re-analysis: classify each mutation into the cheapest
    strategy whose result is provably the from-scratch fixed point, and
    fall back to a full solve whenever the incremental state is suspect.
    See the interface for the correctness argument per strategy. *)

open Skipflow_ir
module C = Skipflow_core
module Api = Skipflow_api

type state = {
  source : string;
  roots : string list;
  engine : C.Engine.t;
  snapshot : string;
  metrics : C.Metrics.t;
  reachable : string list;
  meth_hashes : (string * string) list;
  hier_hash : string;
  generation : int;
}

type strategy =
  | Resident
  | Memo
  | Reuse
  | Redrain of int
  | Full of string

let strategy_name = function
  | Resident -> "resident"
  | Memo -> "memo"
  | Reuse -> "reuse"
  | Redrain _ -> "redrain"
  | Full _ -> "full"

let strategy_reason = function Full reason -> Some reason | _ -> None

(* ---------------------------- fingerprints ---------------------------- *)

let meth_fingerprints (prog : Program.t) =
  let acc = ref [] in
  Program.iter_meths prog (fun (m : Program.meth) ->
      let qname = Program.qualified_name prog m.Program.m_id in
      (* [Ir_pp] prints cross-references (classes, methods, fields) by
         name and locals by per-body ids, so the rendering — unlike the
         raw IR with its global tables — is stable across recompiles of
         an edited source.  The signature is appended because the body
         printer does not show declared types. *)
      let rendering =
        Format.asprintf "%a|%a->%a" (Ir_pp.pp_meth prog) m
          (Format.pp_print_list (Program.pp_ty prog))
          m.Program.m_param_tys (Program.pp_ty prog) m.Program.m_ret_ty
      in
      acc := (qname, Digest.to_hex (Digest.string rendering)) :: !acc);
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let hierarchy_fingerprint (prog : Program.t) =
  let b = Buffer.create 1024 in
  let ty t = Buffer.add_string b (Ty.to_string ~class_name:(Program.class_name prog) t) in
  (* declaration order, deliberately: equal fingerprints then guarantee
     equal id assignment between the two compiles, which the reuse path
     relies on when it keeps the resident engine for a newer source *)
  Program.iter_classes prog (fun (c : Program.cls) ->
      Buffer.add_string b c.Program.c_name;
      Buffer.add_char b '<';
      Buffer.add_string b
        (match c.Program.c_super with
        | Some s -> Program.class_name prog s
        | None -> "-");
      Buffer.add_string b (if c.Program.c_abstract then "!a" else "");
      List.iter
        (fun (f : Program.field) ->
          Buffer.add_char b ';';
          Buffer.add_string b f.Program.f_name;
          Buffer.add_char b ':';
          ty f.Program.f_ty;
          if f.Program.f_static then Buffer.add_string b "!s")
        c.Program.c_fields;
      List.iter
        (fun (m : Program.meth) ->
          Buffer.add_char b '|';
          Buffer.add_string b m.Program.m_name;
          if m.Program.m_static then Buffer.add_string b "!s";
          Buffer.add_char b '(';
          List.iter
            (fun t ->
              ty t;
              Buffer.add_char b ',')
            m.Program.m_param_tys;
          Buffer.add_char b ')';
          ty m.Program.m_ret_ty;
          Buffer.add_string b
            (match m.Program.m_body with Some _ -> "" | None -> "!n"))
        c.Program.c_methods;
      Buffer.add_char b '\n');
  Digest.to_hex (Digest.string (Buffer.contents b))

let reachable_names engine =
  let prog = C.Engine.prog_of engine in
  List.map
    (fun (m : Program.meth) -> Program.qualified_name prog m.Program.m_id)
    (C.Engine.reachable_methods engine)

(* ------------------------------ the memo ------------------------------ *)

module Memo = struct
  type t = { cap : int; mutable items : (string * string) list }

  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: take (n - 1) rest

  let create cap = { cap; items = [] }
  let entries m = m.items
  let restore cap items = { cap; items = take cap items }

  (* no LRU refresh: lookups must be side-effect free so that a request
     that ultimately fails leaves the memo byte-identical — journal
     replay skips failed requests, and any memo drift would change
     strategy decisions between an interrupted and a straight session *)
  let peek m key = List.assoc_opt key m.items

  let add m (key, v) =
    m.items <- take m.cap ((key, v) :: List.remove_assoc key m.items)

  (* the memory ceiling's first relief valve: memo entries are pure
     caches, dropping them costs recomputation, never correctness *)
  let clear m = m.items <- []
end

let memo_key ~config ~mode ~roots ~source =
  let scope =
    Printf.sprintf "serve;mode=%s;roots=%s"
      (match mode with C.Engine.Dedup -> "dedup" | C.Engine.Reference -> "ref")
      (String.concat "," roots)
  in
  C.Cache.key ~config ~scope ~source

(* ----------------------------- persistence ---------------------------- *)

type frozen = {
  fr_source : string;
  fr_roots : string list;
  fr_snapshot : string;
  fr_meth_hashes : (string * string) list;
  fr_hier_hash : string;
  fr_generation : int;
}

let freeze st =
  Marshal.to_string
    {
      fr_source = st.source;
      fr_roots = st.roots;
      fr_snapshot = st.snapshot;
      fr_meth_hashes = st.meth_hashes;
      fr_hier_hash = st.hier_hash;
      fr_generation = st.generation;
    }
    []

let thaw bytes =
  match (Marshal.from_string bytes 0 : frozen) with
  | exception _ -> Error "cannot decode serve state payload"
  | fr -> (
      match
        C.Engine.of_snapshot_bytes ~budget:C.Budget.unlimited fr.fr_snapshot
      with
      | Error message -> Error message
      | Ok engine ->
          Ok
            {
              source = fr.fr_source;
              roots = fr.fr_roots;
              engine;
              snapshot = fr.fr_snapshot;
              metrics = C.Metrics.compute engine;
              reachable = reachable_names engine;
              meth_hashes = fr.fr_meth_hashes;
              hier_hash = fr.fr_hier_hash;
              generation = fr.fr_generation;
            })

(* ----------------------------- operations ----------------------------- *)

type outcome = {
  o_state : state;
  o_strategy : strategy;
  o_verified : bool;
  o_memo_adds : (string * string) list;
      (* memo writes to apply if (and only if) the caller commits *)
}

let deadline_budget deadline_ms =
  C.Budget.make ~max_seconds:(float_of_int deadline_ms /. 1000.) ()

let with_deadline config = function
  | None -> (config, `Degrade)
  | Some ms -> ({ config with C.Config.budget = deadline_budget ms }, `Pause)

let certify engine = C.Verify.run engine = []

let solve_full ?(reason = "cold start") ~config ~mode ~deadline_ms ~generation
    ~source ~roots () =
  let config', on_budget = with_deadline config deadline_ms in
  match
    Api.analyze ~config:config' ~mode ~on_budget ~source:(`Text source) ~roots
      ()
  with
  | Error e -> Error (Protocol.Api_error e)
  | Ok s -> (
      match (s.Api.outcome, deadline_ms) with
      | C.Engine.Paused _, Some deadline_ms ->
          Error (Protocol.Deadline_exceeded { deadline_ms })
      | C.Engine.Paused _, None ->
          (* unreachable: without a deadline the engine degrades *)
          Error (Protocol.Api_error (Api.Internal_error "paused without deadline"))
      | C.Engine.Completed, _ ->
          let prog = C.Engine.prog_of s.Api.engine in
          let st =
            {
              source;
              roots;
              engine = s.Api.engine;
              snapshot = C.Engine.snapshot_bytes s.Api.engine;
              metrics = s.Api.metrics;
              reachable = s.Api.reachable;
              meth_hashes = meth_fingerprints prog;
              hier_hash = hierarchy_fingerprint prog;
              generation = generation + 1;
            }
          in
          Ok
            {
              o_state = st;
              o_strategy = Full reason;
              o_verified = false;
              o_memo_adds =
                [ (memo_key ~config ~mode ~roots ~source, freeze st) ];
            })

let edit ~config ~mode ~deadline_ms ~memo st ~source =
  if String.equal source st.source then
    Ok { o_state = st; o_strategy = Resident; o_verified = false; o_memo_adds = [] }
  else begin
    (* on commit, memoize the pre-edit state too, so reverting this edit
       is a hit *)
    let pre_add =
      (memo_key ~config ~mode ~roots:st.roots ~source:st.source, freeze st)
    in
    let full reason =
      match
        solve_full ~reason ~config ~mode ~deadline_ms
          ~generation:st.generation ~source ~roots:st.roots ()
      with
      | Error _ as e -> e
      | Ok o -> Ok { o with o_memo_adds = pre_add :: o.o_memo_adds }
    in
    match Memo.peek memo (memo_key ~config ~mode ~roots:st.roots ~source) with
    | Some bytes -> (
        match thaw bytes with
        | Ok mst when certify mst.engine ->
            Ok
              {
                o_state = { mst with generation = st.generation + 1 };
                o_strategy = Memo;
                o_verified = true;
                o_memo_adds =
                  [ pre_add;
                    (* re-adding the hit refreshes its LRU position *)
                    (memo_key ~config ~mode ~roots:st.roots ~source, bytes);
                  ];
              }
        | Ok _ | Error _ ->
            (* suspect memo entry: drop to a full solve *)
            full "memo entry failed restoration or verification")
    | None -> (
        match Api.compile (`Text source) with
        | Error e -> Error (Protocol.Api_error e)
        | Ok (prog, _) ->
            let hier = hierarchy_fingerprint prog in
            let hashes = meth_fingerprints prog in
            if not (String.equal hier st.hier_hash) then
              full "class hierarchy changed"
            else begin
              (* equal hierarchy fingerprints imply the same method-name
                 set, so the diff is exactly the hash mismatches *)
              let changed =
                List.filter
                  (fun (n, h) ->
                    match List.assoc_opt n st.meth_hashes with
                    | Some h' -> not (String.equal h h')
                    | None -> true)
                  hashes
              in
              let touched_reachable =
                List.filter (fun (n, _) -> List.mem n st.reachable) changed
              in
              match touched_reachable with
              | [] ->
                  (* every edited body is outside the reachable set: the
                     fixed point is generated only from reachable bodies
                     plus the (unchanged) hierarchy, so the resident
                     engine already holds the new program's fixed point *)
                  if certify st.engine then begin
                    let st' =
                      {
                        st with
                        source;
                        meth_hashes = hashes;
                        generation = st.generation + 1;
                      }
                    in
                    Ok
                      {
                        o_state = st';
                        o_strategy = Reuse;
                        o_verified = true;
                        o_memo_adds =
                          [ pre_add;
                            ( memo_key ~config ~mode ~roots:st.roots ~source,
                              freeze st' );
                          ];
                      }
                  end
                  else full "resident engine failed verification"
              | (name, _) :: _ ->
                  full
                    (Printf.sprintf "%d reachable method(s) changed (%s)"
                       (List.length touched_reachable) name)
            end)
  end

let analyze_roots ~config ~mode ~deadline_ms ~memo st ~roots =
  let prog = C.Engine.prog_of st.engine in
  match Api.resolve_roots prog roots with
  | Error e -> Error (Protocol.Api_error e)
  | Ok meths -> (
      let requested =
        Ids.Meth.Set.of_list (List.map (fun m -> m.Program.m_id) meths)
      in
      let current = C.Engine.roots st.engine in
      let memo_hit () =
        match Memo.peek memo (memo_key ~config ~mode ~roots ~source:st.source) with
        | None -> None
        | Some bytes -> (
            match thaw bytes with
            | Ok mst when certify mst.engine ->
                Some
                  {
                    o_state = { mst with generation = st.generation + 1 };
                    o_strategy = Memo;
                    o_verified = true;
                    o_memo_adds =
                      [ (memo_key ~config ~mode ~roots ~source:st.source, bytes) ];
                  }
            | Ok _ | Error _ -> None)
      in
      if Ids.Meth.Set.equal requested current then
        Ok
          {
            o_state = st;
            o_strategy = Resident;
            o_verified = false;
            o_memo_adds = [];
          }
      else
        match memo_hit () with
        | Some o -> Ok o
        | None ->
      if not (Ids.Meth.Set.subset current requested) then
        (* the root set shrank: retraction, which a monotone engine
           cannot replay — full solve *)
        solve_full ~reason:"root set shrank or was replaced" ~config ~mode
          ~deadline_ms ~generation:st.generation ~source:st.source ~roots ()
      else begin
        let added =
          List.filter
            (fun (m : Program.meth) ->
              not (Ids.Meth.Set.mem m.Program.m_id current))
            meths
        in
        let budget, on_budget =
          match deadline_ms with
          | None -> (config.C.Config.budget, `Degrade)
          | Some ms -> (deadline_budget ms, `Pause)
        in
        (* mutate a clone: a deadline trip (or any failure) rolls back by
           keeping the resident state untouched *)
        let clone = C.Engine.clone ~budget st.engine in
        List.iter (fun m -> C.Engine.add_root clone m) added;
        let r = C.Analysis.rerun ~on_budget clone in
        match (r.C.Analysis.outcome, deadline_ms) with
        | C.Engine.Paused _, Some deadline_ms ->
            Error (Protocol.Deadline_exceeded { deadline_ms })
        | C.Engine.Paused _, None ->
            Error
              (Protocol.Api_error (Api.Internal_error "paused without deadline"))
        | C.Engine.Completed, _ ->
            if certify r.C.Analysis.engine then begin
              let st' =
                {
                  st with
                  roots;
                  engine = r.C.Analysis.engine;
                  snapshot = C.Engine.snapshot_bytes r.C.Analysis.engine;
                  metrics = r.C.Analysis.metrics;
                  reachable = reachable_names r.C.Analysis.engine;
                  generation = st.generation + 1;
                }
              in
              Ok
                {
                  o_state = st';
                  o_strategy = Redrain (List.length added);
                  o_verified = true;
                  o_memo_adds =
                    [ ( memo_key ~config ~mode ~roots ~source:st.source,
                        freeze st' );
                    ];
                }
            end
            else
              solve_full ~reason:"re-drained engine failed verification"
                ~config ~mode ~deadline_ms ~generation:st.generation
                ~source:st.source ~roots ()
      end)

(* ------------------------ equality certification ---------------------- *)

let same_fixed_point a b =
  let sorted e = List.sort String.compare (reachable_names e) in
  let sa = sorted a and sb = sorted b in
  if sa <> sb then
    Error
      (Printf.sprintf "reachable sets differ (%d vs %d methods)"
         (List.length sa) (List.length sb))
  else begin
    let prog_b = C.Engine.prog_of b in
    let by_name = Hashtbl.create 64 in
    List.iter
      (fun (g : C.Graph.method_graph) ->
        Hashtbl.replace by_name
          (Program.qualified_name prog_b g.C.Graph.g_meth.Program.m_id)
          g)
      (C.Engine.graphs b);
    let prog_a = C.Engine.prog_of a in
    let err = ref None in
    let fail fmt = Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt in
    List.iter
      (fun (ga : C.Graph.method_graph) ->
        let name =
          Program.qualified_name prog_a ga.C.Graph.g_meth.Program.m_id
        in
        match Hashtbl.find_opt by_name name with
        | None -> fail "%s: no counterpart graph" name
        | Some gb ->
            let fa = ga.C.Graph.g_flows and fb = gb.C.Graph.g_flows in
            if List.length fa <> List.length fb then
              fail "%s: %d vs %d flows" name (List.length fa) (List.length fb)
            else
              List.iteri
                (fun i ((x : C.Flow.t), (y : C.Flow.t)) ->
                  if C.Flow.kind_name x <> C.Flow.kind_name y then
                    fail "%s: flow %d kind %s vs %s" name i
                      (C.Flow.kind_name x) (C.Flow.kind_name y)
                  else if x.C.Flow.enabled <> y.C.Flow.enabled then
                    fail "%s: flow %d enabled bit differs" name i
                  else if not (C.Vstate.equal x.C.Flow.state y.C.Flow.state)
                  then fail "%s: flow %d value state differs" name i
                  else if not (C.Vstate.equal x.C.Flow.raw y.C.Flow.raw) then
                    fail "%s: flow %d raw state differs" name i)
                (List.combine fa fb))
      (C.Engine.graphs a);
    match !err with None -> Ok () | Some m -> Error m
  end
