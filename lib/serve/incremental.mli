(** Incremental re-analysis for the serve daemon.

    The resident {!state} is a program source, its solved engine at the
    fixed point, and the content fingerprints an edit is diffed against.
    The fixed-point solver is monotone — facts are only ever added — so
    an arbitrary edit cannot be re-solved in place with {e exact}
    equality to a fresh run (retraction).  Instead, each request is
    classified into the cheapest strategy whose result is {e provably}
    the from-scratch fixed point, falling back to a full solve whenever
    the incremental state is suspect:

    - {b resident}: the request changes nothing (byte-identical source,
      identical root set) — serve the resident fixed point.
    - {b reuse}: the class hierarchy fingerprint is unchanged and every
      edited method is outside the resident reachable set.  The fixed
      point is generated only from reachable bodies plus the hierarchy,
      so it is {e exactly} the new program's fixed point (this is the
      paper's headline effect turned into an incremental win: the more
      code SkipFlow proves unreachable, the more edits are free).
    - {b redrain}: the root set grew.  {!Skipflow_core.Engine.add_root}
      on a clone of the resident engine re-drains the worklist from the
      new roots' boundary flows only; monotone chaotic iteration from
      the old fixed point — a pre-fixpoint of the grown constraint
      system — reaches the grown system's least fixed point.
    - {b memo}: the (source, roots, config) content hash — the PR 5
      {!Skipflow_core.Cache.key} machinery — hits the bounded in-memory
      memo of previously solved states (toggling edits, A→B→A).
    - {b full}: everything else, and any incremental result that fails
      the {!Skipflow_core.Verify} certifier.

    All mutating operations build a {e candidate} state on a clone and
    leave the resident state untouched until the candidate is committed
    by the caller — a deadline trip or failure rolls back by simply
    keeping the old state. *)

module C = Skipflow_core
module Api = Skipflow_api

type state = {
  source : string;  (** the accepted program source text *)
  roots : string list;  (** requested root names ([] = static main) *)
  engine : C.Engine.t;  (** solved, at the fixed point *)
  snapshot : string;  (** {!C.Engine.snapshot_bytes} of [engine] *)
  metrics : C.Metrics.t;
  reachable : string list;  (** qualified names, discovery order *)
  meth_hashes : (string * string) list;
      (** qualified name → body fingerprint, sorted by name, for the
          {e newest accepted} source (on the reuse path this can be newer
          than the engine's program — the fixed points coincide) *)
  hier_hash : string;  (** class-hierarchy fingerprint *)
  generation : int;  (** bumped by every committed mutation *)
}

type strategy =
  | Resident
  | Memo
  | Reuse
  | Redrain of int  (** number of roots added *)
  | Full of string  (** why incremental was not applicable *)

val strategy_name : strategy -> string
(** ["resident" | "memo" | "reuse" | "redrain" | "full"]. *)

val strategy_reason : strategy -> string option
(** The fallback reason, for [Full]. *)

(** {1 Fingerprints} *)

val meth_fingerprints : Skipflow_ir.Program.t -> (string * string) list
(** Per-method content hashes of the lowered bodies (rendered through
    {!Skipflow_ir.Ir_pp}, which prints cross-references by name and
    per-body local ids — stable across recompiles of edited sources),
    sorted by qualified name. *)

val hierarchy_fingerprint : Skipflow_ir.Program.t -> string
(** A digest of everything the fixed point depends on {e besides}
    reachable bodies: class names, supers, abstractness, field and
    method signatures, and which methods have bodies, in declaration
    order. *)

(** {1 The memo} *)

module Memo : sig
  type t
  (** A bounded LRU from {!C.Cache.key} content hashes to solved states
      (engines kept as frozen bytes, so entries are self-contained
      values that survive serialization into the serve snapshot). *)

  val create : int -> t

  val peek : t -> string -> string option
  (** Side-effect-free lookup (no LRU refresh): a request that fails
      after a lookup must leave the memo byte-identical, or journal
      replay — which skips failed requests — would drift. *)

  val add : t -> string * string -> unit
  (** Insert or refresh [(key, frozen bytes)] at the front, evicting
      beyond the capacity.  Callers apply an {!outcome}'s
      [o_memo_adds] through this exactly when they commit it. *)

  val entries : t -> (string * string) list
  (** [(key, frozen state bytes)], most recently used first — the
      serializable image persisted into the serve snapshot. *)

  val restore : int -> (string * string) list -> t

  val clear : t -> unit
  (** Drop every entry (capacity kept) — the memory ceiling's first
      relief valve; costs recomputation, never correctness. *)
end

val memo_key : config:C.Config.t -> mode:C.Engine.mode -> roots:string list -> source:string -> string
(** The content-hash identity of a solved state ({!C.Cache.key} with the
    daemon's scope discipline). *)

(** {1 Operations} *)

type outcome = {
  o_state : state;  (** the candidate; caller commits or discards *)
  o_strategy : strategy;
  o_verified : bool;  (** the {!C.Verify} certifier ran and passed *)
  o_memo_adds : (string * string) list;
      (** memo writes to apply (via {!Memo.add}) iff the caller commits
          the candidate; operations never mutate the memo themselves *)
}

val solve_full :
  ?reason:string ->
  config:C.Config.t ->
  mode:C.Engine.mode ->
  deadline_ms:int option ->
  generation:int ->
  source:string ->
  roots:string list ->
  unit ->
  (outcome, Protocol.error) result
(** Compile and solve from scratch.  With a deadline the solve runs
    under a wall-clock budget with [on_budget:`Pause]; a pause is
    returned as {!Protocol.Deadline_exceeded} (the caller keeps its old
    state — rollback is the default). *)

val edit :
  config:C.Config.t ->
  mode:C.Engine.mode ->
  deadline_ms:int option ->
  memo:Memo.t ->
  state ->
  source:string ->
  (outcome, Protocol.error) result
(** Classify and apply a source edit: resident / memo / reuse / full.
    [memo] is only read ({!Memo.peek}); the writes — including the
    pre-edit state, so reverting an edit is a hit — come back in
    [o_memo_adds] for the caller to apply on commit. *)

val analyze_roots :
  config:C.Config.t ->
  mode:C.Engine.mode ->
  deadline_ms:int option ->
  memo:Memo.t ->
  state ->
  roots:string list ->
  (outcome, Protocol.error) result
(** Re-analyze under a new root set: resident when unchanged, an
    incremental re-drain when it grew, a full solve otherwise. *)

(** {1 Persistence} *)

val freeze : state -> string
(** Serialize a state (the engine as its snapshot bytes). *)

val thaw : string -> (state, string) result
(** Rebuild a frozen state; the engine is restored from its snapshot
    bytes with an unlimited budget.  [Error] on undecodable bytes. *)

(** {1 Equality certification} *)

val same_fixed_point : C.Engine.t -> C.Engine.t -> (unit, string) result
(** Flow-by-flow equality of two solved engines over possibly distinct
    (but identically shaped) programs: equal reachable qualified-name
    sets, and per method equal flow counts, kinds, enabled bits, and
    value states ([state] and [raw]).  [Error] names the first
    difference.  This is the oracle the serve tests run between
    incremental and from-scratch solves. *)
