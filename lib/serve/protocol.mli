(** The serve-mode wire protocol: schema-versioned JSONL over
    stdin/stdout or a Unix socket.

    One request per line, one response per line.  A request is a JSON
    object [{"op": ..., "id": ..., ...}]; the response echoes the [id]
    and is either [{"ok": true, "result": {...}}] or [{"ok": false,
    "error": {"kind", "message", "exit_code", ...}}].  Parsing never
    raises: a torn, truncated, or malformed line is a {!Parse_error}
    {e response}, not a daemon crash — the structured-error counterpart
    of {!Skipflow_api.protect}.

    The error objects here are shared with the one-shot CLI
    ([--format json]): {!api_error_json} is the exact document
    [skipflow analyze] prints on failure, so batch tooling can treat the
    two surfaces uniformly. *)

module Api = Skipflow_api

val schema_version : int
(** The protocol schema version, stamped on every response.  A request
    carrying a different ["schema_version"] is rejected with a
    {!Parse_error}. *)

(** {1 Requests} *)

type request =
  | Analyze of { roots : string list option }
      (** re-analyze; [Some names] replaces the root set (growing it is
          incremental — see {!Incremental}), [None] serves the resident
          fixed point *)
  | Lint of { only : string list option }
      (** fixed-point-driven checks on the resident engine *)
  | Profile  (** engine statistics and counters of the resident solve *)
  | Edit of { source : string }
      (** replace the program source and re-analyze incrementally *)
  | Health  (** liveness, generation, and resident-state probes *)
  | Shutdown  (** snapshot, flush, and exit cleanly *)

type envelope = {
  req_id : int option;  (** echoed verbatim in the response *)
  req_deadline_ms : int option;  (** per-request deadline override *)
  req : request;
}

(** {1 Errors} *)

type error =
  | Api_error of Api.error  (** a facade error, passed through *)
  | Parse_error of string  (** malformed request line *)
  | Unknown_op of string  (** unrecognized ["op"] *)
  | No_program
      (** [analyze]/[lint]/[profile] before any program was loaded *)
  | Deadline_exceeded of { deadline_ms : int }
      (** the request's budget tripped; resident state was rolled back *)
  | Overloaded of { retry_after_ms : int }
      (** the bounded request queue is full; retry after the hint *)
  | Shutting_down  (** received after a [shutdown] request *)

val error_kind : error -> string
(** Stable machine-readable tags: the {!Api.error_kind} tags plus
    ["parse_error"], ["unknown_op"], ["no_program"],
    ["deadline_exceeded"], ["overloaded"], ["shutting_down"]. *)

val error_message : error -> string

val exit_code_of_error : error -> int
(** The exit-code contract extended to serve errors: client/input errors
    ({!Parse_error}, {!Unknown_op}, {!No_program}) map to 2 like the
    facade's input errors; {!Deadline_exceeded} to 3 (the budget-trip
    convention); transient conditions ({!Overloaded}, {!Shutting_down})
    to 1. *)

(** {1 Parsing and serialization} *)

val parse_request : string -> (envelope, error) result
(** Parse one request line.  Never raises; every malformed input maps to
    {!Parse_error} and an unrecognized ["op"] to {!Unknown_op}. *)

val request_id : string -> int option
(** Best-effort extraction of the ["id"] field from a raw request line,
    so error responses can echo it even when {!parse_request} rejects
    the request.  [None] when the line is not valid JSON or has no
    integer id. *)

val api_error_fields : Api.error -> (string * Skipflow_checks.Json.t) list
(** The ["kind"] / ["message"] / ["exit_code"] fields (plus ["diags"]
    for compile errors) of a facade error — the body of every error
    object, CLI and serve alike. *)

val api_error_json : Api.error -> Skipflow_checks.Json.t
(** The one-shot CLI's machine-readable failure document:
    [{"schema_version", "error": {...}}].  [skipflow analyze --format
    json] prints exactly this. *)

val error_json : error -> Skipflow_checks.Json.t
(** The serve response's ["error"] member.  {!Overloaded} adds a
    ["retry_after_ms"] field; {!Deadline_exceeded} a ["deadline_ms"]. *)

val response_ok : id:int option -> Skipflow_checks.Json.t -> Skipflow_checks.Json.t
val response_error : id:int option -> error -> Skipflow_checks.Json.t

val response_line : Skipflow_checks.Json.t -> string
(** Compact single-line rendering, newline-terminated (JSONL). *)
